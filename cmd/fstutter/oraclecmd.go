package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"failstutter/internal/experiments"
	"failstutter/internal/oracle"
)

// cmdOracle runs each experiment with the profiling plane on, derives the
// analytic predictions for it, and prints the predicted-vs-simulated
// conformance table. Each experiment's report lands in dir as
// <ID>.oracle.json, byte-deterministic for a given seed regardless of
// -shards or -parallel. The conformance rows are also registered as
// oracle instruments before the metrics artifacts are emitted, so a
// -metrics-out CSV/JSON dump carries the residuals alongside the raw
// metrics. Out-of-band rows warn by default; with gate set they exit 1.
func cmdOracle(cfg experiments.Config, ids []string, dir string, gate bool, sink artifactSink) {
	cfg.Profile = true
	single := len(ids) == 1
	failures := 0
	for _, id := range ids {
		if !oracle.Covers(id) {
			fail(fmt.Errorf("oracle: no predictor for experiment %s (covered: %s)",
				id, strings.Join(oracle.Covered(), " ")))
		}
		e, err := experiments.Get(id)
		if err != nil {
			fail(err)
		}
		tbl := e.Run(cfg)
		in := oracle.Input{Table: tbl, Seed: cfg.Seed, Quick: cfg.Quick}
		if tel := tbl.Telemetry; tel != nil {
			in.Metrics = tel.Metrics
		}
		rep, err := oracle.Analyze(in)
		if err != nil {
			fail(err)
		}
		if err := rep.WriteText(os.Stdout); err != nil {
			fail(err)
		}
		writeArtifact(filepath.Join(dir, tbl.ID+".oracle.json"), rep.WriteJSON)
		oracle.Record(rep, in.Metrics)
		sink.emit(tbl, single)
		failures += rep.Failures()
	}
	if failures > 0 {
		if gate {
			fmt.Fprintf(os.Stderr, "fstutter oracle: %d conformance rows out of band\n", failures)
			os.Exit(1)
		}
		fmt.Println("warn: conformance rows out of band (gate off; failing would need -gate)")
	}
}

// Command fstutter runs the fail-stutter reproduction suite: every
// quantitative claim from "Fail-Stutter Fault Tolerance" (HotOS 2001)
// regenerated as a table.
//
// Usage:
//
//	fstutter list                 # show every experiment and its claim
//	fstutter run E01 E03 A2      # run selected experiments
//	fstutter e7                   # bare id: same as `run E07`
//	fstutter all                  # run the full suite
//	fstutter profile E05          # critical-path + SLO + barrier-cost artifacts
//	fstutter oracle E01 E23       # predicted-vs-simulated conformance report
//	fstutter bench -out B.json    # wall-clock benchmark artifact
//	fstutter perfdiff old new     # diff two bench artifacts, gate on regress
//
// Flags (accepted before or after the subcommand):
//
//	-seed N           random seed (default 42)
//	-quick            shrink workloads for a fast pass (the test suite's mode)
//	-parallel N       experiment fan-out for `all` (default GOMAXPROCS);
//	                  every experiment runs in virtual time, so the tables
//	                  are byte-identical at any fan-out
//	-shards N         shard count for sharded-kernel experiments (0 = one
//	                  per core); results are byte-identical at any value
//	-sweep-workers N  barrier sweep worker-pool size for fleet experiments
//	                  (0 = GOMAXPROCS); results are byte-identical at any value
//	-trace-out PATH   write Chrome trace-event JSON (open in Perfetto or
//	                  chrome://tracing); a directory gets <ID>.trace.json
//	                  per experiment, a .json path is used verbatim when
//	                  exactly one experiment runs
//	-metrics-out DIR  write <ID>.metrics.json and <ID>.metrics.csv
//	-audit            print the verdict audit timeline per experiment and,
//	                  with an output directory, write <ID>.audit.json
//	-out PATH         `profile` artifact directory (default profiles/), or
//	                  `bench` output file (default stdout)
//	-top N            rows in the `profile` hot-frame table (default 15)
//	-slo SECONDS      `profile` SLO latency threshold (0 = auto: 5x median)
//	-samples N        wall-clock samples per benchmark for `bench` (default 5)
//	-threshold R      `perfdiff` rate-ratio threshold (default 0.8)
//	-gate             `perfdiff` exits 1 on regression, `oracle` exits 1 on
//	                  out-of-band rows, instead of warning
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"failstutter/internal/experiments"
	"failstutter/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", 42, "random seed for all stochastic components")
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	format := flag.String("format", "text", "output format: text or csv")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines for `all` (1 = serial; tables are identical either way)")
	shards := flag.Int("shards", 0,
		"shard count for experiments on the sharded kernel (0 = one per core; results are identical at any value)")
	sweepWorkers := flag.Int("sweep-workers", 0,
		"barrier sweep worker-pool size for fleet experiments (0 = GOMAXPROCS; results are identical at any value)")
	traceOut := flag.String("trace-out", "", "write Chrome trace-event JSON to this directory (or .json file for a single experiment)")
	metricsOut := flag.String("metrics-out", "", "write metrics JSON and CSV dumps to this directory")
	audit := flag.Bool("audit", false, "print the verdict audit timeline per experiment")
	out := flag.String("out", "", "output location for 'profile' (directory, default profiles/) and 'bench' (file, default stdout)")
	topN := flag.Int("top", 15, "rows in the 'profile' hot-frame table")
	sloThresh := flag.Float64("slo", 0, "'profile' SLO latency threshold in virtual seconds (0 = auto: 5x median)")
	samples := flag.Int("samples", 5, "wall-clock samples per benchmark for 'bench'")
	threshold := flag.Float64("threshold", 0.8, "'perfdiff' rate-ratio threshold: new/old throughput below this is a regression")
	gate := flag.Bool("gate", false, "'perfdiff' exits 1 on regression instead of warning")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cmd := args[0]
	operands := parseInterleaved(args[1:])

	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "fstutter: unknown format %q\n", *format)
		os.Exit(2)
	}
	asCSV = *format == "csv"
	cfg := experiments.Config{
		Seed: *seed, Quick: *quick,
		Trace:        *traceOut != "",
		Audit:        *audit,
		Metrics:      *metricsOut != "",
		Shards:       *shards,
		SweepWorkers: *sweepWorkers,
	}
	sink := artifactSink{traceOut: *traceOut, metricsOut: *metricsOut, audit: *audit}

	switch cmd {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
			fmt.Printf("     paper: %s\n", e.PaperClaim)
		}
		return
	case "all":
		// RunAll fans the virtual-time experiments across -parallel
		// workers and returns tables in display order; output is
		// deterministic for a given seed regardless of parallelism.
		for _, tbl := range experiments.RunAll(cfg, *parallel) {
			printTable(tbl)
			sink.emit(tbl, false)
		}
		return
	case "run":
		if len(operands) == 0 {
			fmt.Fprintln(os.Stderr, "fstutter run: at least one experiment id required")
			os.Exit(2)
		}
	case "profile":
		if len(operands) == 0 {
			fmt.Fprintln(os.Stderr, "fstutter profile: at least one experiment id required")
			os.Exit(2)
		}
		dir := *out
		if dir == "" {
			dir = "profiles"
		}
		cmdProfile(cfg, resolveIDs(operands), dir, *sloThresh, *topN)
		return
	case "oracle":
		if len(operands) == 0 {
			fmt.Fprintln(os.Stderr, "fstutter oracle: at least one experiment id required")
			os.Exit(2)
		}
		dir := *out
		if dir == "" {
			dir = "oracle"
		}
		cmdOracle(cfg, resolveIDs(operands), dir, *gate, sink)
		return
	case "perfdiff":
		if len(operands) != 2 {
			fmt.Fprintln(os.Stderr, "fstutter perfdiff: usage: fstutter perfdiff <old.json> <new.json> [-threshold R] [-gate]")
			os.Exit(2)
		}
		cmdPerfDiff(operands[0], operands[1], *threshold, *gate)
		return
	case "bench":
		cmdBench(cfg, *samples, *out)
		return
	default:
		// A bare experiment id ("E07", "e7", "a2") is shorthand for
		// `run <ID>`.
		if _, ok := normalizeID(cmd); !ok {
			fmt.Fprintf(os.Stderr, "fstutter: unknown command %q\n", cmd)
			usage()
			os.Exit(2)
		}
		operands = append([]string{cmd}, operands...)
	}

	ids := resolveIDs(operands)
	single := len(ids) == 1
	for _, id := range ids {
		e, err := experiments.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tbl := e.Run(cfg)
		printTable(tbl)
		sink.emit(tbl, single)
	}
}

// resolveIDs normalizes each operand to a canonical experiment id,
// exiting 2 (a usage error, like any other bad operand) on the first
// unknown one, listing the valid ids.
func resolveIDs(operands []string) []string {
	ids := make([]string, len(operands))
	for i, raw := range operands {
		id, ok := normalizeID(raw)
		if !ok {
			fmt.Fprintf(os.Stderr, "fstutter: unknown experiment %q (valid: %s)\n",
				raw, strings.Join(experiments.IDs(), " "))
			os.Exit(2)
		}
		ids[i] = id
	}
	return ids
}

// normalizeID resolves user spellings of experiment ids: case-insensitive
// and tolerant of unpadded E-series numbers (e7 -> E07).
func normalizeID(raw string) (string, bool) {
	id := strings.ToUpper(raw)
	if _, err := experiments.Get(id); err == nil {
		return id, true
	}
	if len(id) > 1 {
		if n, err := strconv.Atoi(id[1:]); err == nil {
			padded := fmt.Sprintf("%c%02d", id[0], n)
			if _, err := experiments.Get(padded); err == nil {
				return padded, true
			}
			bare := fmt.Sprintf("%c%d", id[0], n)
			if _, err := experiments.Get(bare); err == nil {
				return bare, true
			}
		}
	}
	return "", false
}

// artifactSink writes one experiment's telemetry artifacts to the
// locations selected by the output flags.
type artifactSink struct {
	traceOut   string
	metricsOut string
	audit      bool
}

// emit writes the table's artifacts. Experiments without telemetry
// wiring still produce valid (empty) artifacts, so downstream tooling
// can glob the output directory without special cases. single marks a
// lone-experiment invocation, where a -trace-out ending in .json names
// the output file directly.
func (k artifactSink) emit(tbl *experiments.Table, single bool) {
	var tr *trace.Tracer
	var al *trace.AuditLog
	var reg *trace.Registry
	if tel := tbl.Telemetry; tel != nil {
		tr, al, reg = tel.Tracer, tel.Audit, tel.Metrics
	}
	if k.traceOut != "" {
		path := filepath.Join(k.traceOut, tbl.ID+".trace.json")
		if single && strings.HasSuffix(k.traceOut, ".json") {
			path = k.traceOut
		}
		writeArtifact(path, tr.WriteChromeTrace)
	}
	if k.metricsOut != "" {
		writeArtifact(filepath.Join(k.metricsOut, tbl.ID+".metrics.json"), reg.WriteJSON)
		writeArtifact(filepath.Join(k.metricsOut, tbl.ID+".metrics.csv"), reg.WriteCSV)
	}
	if k.audit {
		fmt.Printf("-- %s verdict audit trail --\n", tbl.ID)
		if err := al.WriteText(os.Stdout); err != nil {
			fail(err)
		}
		fmt.Println()
		if dir := k.auditDir(); dir != "" {
			writeArtifact(filepath.Join(dir, tbl.ID+".audit.json"), al.WriteJSON)
		}
	}
}

// auditDir picks where <ID>.audit.json lands: alongside the metrics if
// requested, else alongside the traces (when -trace-out names a
// directory), else nowhere (stdout only).
func (k artifactSink) auditDir() string {
	if k.metricsOut != "" {
		return k.metricsOut
	}
	if k.traceOut != "" && !strings.HasSuffix(k.traceOut, ".json") {
		return k.traceOut
	}
	return ""
}

// writeArtifact creates path (and its directory) and streams write into
// it, exiting on any error — a missing artifact must not fail silently.
func writeArtifact(path string, write func(w io.Writer) error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fail(err)
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fstutter:", err)
	os.Exit(1)
}

// parseInterleaved reparses flags that appear after the subcommand (so
// `fstutter all -quick -seed 42` works, not just `fstutter -quick all`)
// and returns the non-flag operands in order.
func parseInterleaved(args []string) []string {
	var operands []string
	for len(args) > 0 {
		flag.CommandLine.Parse(args)
		args = flag.CommandLine.Args()
		if len(args) == 0 {
			break
		}
		operands = append(operands, args[0])
		args = args[1:]
	}
	return operands
}

// asCSV selects CSV table output, set from the -format flag.
var asCSV bool

func printTable(tbl *experiments.Table) {
	if asCSV {
		fmt.Print(tbl.CSV())
		return
	}
	fmt.Println(tbl.Format())
}

func usage() {
	fmt.Fprintf(os.Stderr, `fstutter — fail-stutter fault tolerance reproduction suite

usage:
  fstutter [flags] list
  fstutter [flags] run <id>...
  fstutter [flags] <id>         (bare id: run one experiment, e.g. 'fstutter e7')
  fstutter [flags] all
  fstutter [flags] profile <id>...
  fstutter [flags] oracle <id>...
  fstutter [flags] bench
  fstutter [flags] perfdiff <old.json> <new.json>

flags (before or after the subcommand):
  -seed N           random seed (default 42)
  -quick            shrink workloads for a fast pass
  -format FMT       text (default) or csv
  -parallel N       worker goroutines for 'all' (default GOMAXPROCS)
  -shards N         shard count for sharded-kernel experiments (default:
                    one per core; tables are identical at any value)
  -sweep-workers N  barrier sweep worker-pool size for fleet experiments
                    (default: GOMAXPROCS; tables are identical at any value)
  -trace-out PATH   Chrome trace-event JSON: directory for <ID>.trace.json,
                    or a .json file when running a single experiment
  -metrics-out DIR  metrics registry dumps: <ID>.metrics.json + .csv
  -audit            print the verdict audit timeline (and write
                    <ID>.audit.json next to metrics or traces)
  -out PATH         'profile' artifact directory (default profiles/):
                    <ID>.profile.json + .folded.txt + .critpath.txt + .slo.json
                    + .barrier.json (sharded experiments: barrier cost profile);
                    'oracle' artifact directory (default oracle/): <ID>.oracle.json;
                    or 'bench' artifact file (default stdout)
  -top N            rows in the 'profile' hot-frame table (default 15)
  -slo SECONDS      'profile' SLO latency threshold (0 = auto: 5x median)
  -samples N        wall-clock samples per benchmark for 'bench' (default 5)
  -threshold R      'perfdiff' throughput-ratio threshold (default 0.8)
  -gate             'perfdiff' exits 1 on regression, 'oracle' exits 1 on
                    out-of-band conformance rows, instead of warning
`)
}

// Command fstutter runs the fail-stutter reproduction suite: every
// quantitative claim from "Fail-Stutter Fault Tolerance" (HotOS 2001)
// regenerated as a table.
//
// Usage:
//
//	fstutter list                 # show every experiment and its claim
//	fstutter run E01 E03 A2      # run selected experiments
//	fstutter all                  # run the full suite
//
// Flags:
//
//	-seed N    random seed (default 42)
//	-quick     shrink workloads for a fast pass (the test suite's mode)
package main

import (
	"flag"
	"fmt"
	"os"

	"failstutter/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "random seed for all stochastic components")
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	format := flag.String("format", "text", "output format: text or csv")
	flag.Usage = usage
	flag.Parse()
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "fstutter: unknown format %q\n", *format)
		os.Exit(2)
	}
	asCSV = *format == "csv"

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick}

	switch args[0] {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
			fmt.Printf("     paper: %s\n", e.PaperClaim)
		}
	case "all":
		for _, e := range experiments.All() {
			runOne(e, cfg)
		}
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "fstutter run: at least one experiment id required")
			os.Exit(2)
		}
		for _, id := range args[1:] {
			e, err := experiments.Get(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runOne(e, cfg)
		}
	default:
		fmt.Fprintf(os.Stderr, "fstutter: unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}
}

// asCSV selects CSV table output, set from the -format flag.
var asCSV bool

func runOne(e experiments.Experiment, cfg experiments.Config) {
	tbl := e.Run(cfg)
	if asCSV {
		fmt.Print(tbl.CSV())
		return
	}
	fmt.Println(tbl.Format())
}

func usage() {
	fmt.Fprintf(os.Stderr, `fstutter — fail-stutter fault tolerance reproduction suite

usage:
  fstutter [flags] list
  fstutter [flags] run <id>...
  fstutter [flags] all

flags:
  -seed N        random seed (default 42)
  -quick         shrink workloads for a fast pass
  -format FMT    text (default) or csv
`)
}

// Command fstutter runs the fail-stutter reproduction suite: every
// quantitative claim from "Fail-Stutter Fault Tolerance" (HotOS 2001)
// regenerated as a table.
//
// Usage:
//
//	fstutter list                 # show every experiment and its claim
//	fstutter run E01 E03 A2      # run selected experiments
//	fstutter all                  # run the full suite
//
// Flags (accepted before or after the subcommand):
//
//	-seed N      random seed (default 42)
//	-quick       shrink workloads for a fast pass (the test suite's mode)
//	-parallel N  experiment fan-out for `all` (default GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"failstutter/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "random seed for all stochastic components")
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	format := flag.String("format", "text", "output format: text or csv")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines for `all` (1 = serial; tables are identical either way)")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cmd := args[0]
	operands := parseInterleaved(args[1:])

	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "fstutter: unknown format %q\n", *format)
		os.Exit(2)
	}
	asCSV = *format == "csv"
	cfg := experiments.Config{Seed: *seed, Quick: *quick}

	switch cmd {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
			fmt.Printf("     paper: %s\n", e.PaperClaim)
		}
	case "all":
		// RunAll fans the virtual-time experiments across -parallel
		// workers and returns tables in display order; output is
		// deterministic for a given seed regardless of parallelism.
		for _, tbl := range experiments.RunAll(cfg, *parallel) {
			printTable(tbl)
		}
	case "run":
		if len(operands) == 0 {
			fmt.Fprintln(os.Stderr, "fstutter run: at least one experiment id required")
			os.Exit(2)
		}
		for _, id := range operands {
			e, err := experiments.Get(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			printTable(e.Run(cfg))
		}
	default:
		fmt.Fprintf(os.Stderr, "fstutter: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
}

// parseInterleaved reparses flags that appear after the subcommand (so
// `fstutter all -quick -seed 42` works, not just `fstutter -quick all`)
// and returns the non-flag operands in order.
func parseInterleaved(args []string) []string {
	var operands []string
	for len(args) > 0 {
		flag.CommandLine.Parse(args)
		args = flag.CommandLine.Args()
		if len(args) == 0 {
			break
		}
		operands = append(operands, args[0])
		args = args[1:]
	}
	return operands
}

// asCSV selects CSV table output, set from the -format flag.
var asCSV bool

func printTable(tbl *experiments.Table) {
	if asCSV {
		fmt.Print(tbl.CSV())
		return
	}
	fmt.Println(tbl.Format())
}

func usage() {
	fmt.Fprintf(os.Stderr, `fstutter — fail-stutter fault tolerance reproduction suite

usage:
  fstutter [flags] list
  fstutter [flags] run <id>...
  fstutter [flags] all

flags (before or after the subcommand):
  -seed N        random seed (default 42)
  -quick         shrink workloads for a fast pass
  -format FMT    text (default) or csv
  -parallel N    worker goroutines for 'all' (default GOMAXPROCS)
`)
}

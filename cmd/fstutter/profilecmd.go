package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"failstutter/internal/experiments"
	"failstutter/internal/profile"
	"failstutter/internal/sim"
	"failstutter/internal/trace"
)

// cmdProfile runs each experiment with the profiling plane on and emits
// its artifacts into dir: the folded flame stacks (<ID>.folded.txt),
// the critical-path text report (<ID>.critpath.txt), the full profile
// JSON (<ID>.profile.json), and the SLO availability analysis
// (<ID>.slo.json); experiments on the sharded kernel additionally get
// the barrier cost profile (<ID>.barrier.json). The critical-path and
// barrier reports also print to stdout. All artifacts are
// byte-deterministic at a fixed seed and shard count.
func cmdProfile(cfg experiments.Config, ids []string, dir string, sloThreshold float64, topN int) {
	cfg.Profile = true
	meta := runMeta(cfg)
	for _, id := range ids {
		e, err := experiments.Get(id)
		if err != nil {
			fail(err)
		}
		tbl := e.Run(cfg)
		tel := tbl.Telemetry
		if tel != nil && tel.Tracer != nil {
			rep := profile.Analyze(tel.Tracer, tel.Metrics)
			slo := profile.AnalyzeSLO(tel.Tracer, profile.SLOConfig{Threshold: sloThreshold})
			rep.Meta, slo.Meta = meta, meta

			fmt.Printf("== %s: profile ==\n", tbl.ID)
			if err := rep.WriteText(os.Stdout, topN); err != nil {
				fail(err)
			}
			fmt.Printf("slo: %s availability %.4f (%d/%d within %.4gs threshold",
				slo.Category, slo.Availability, slo.Within, slo.Offered, slo.Threshold)
			if slo.Auto {
				fmt.Print(", auto")
			}
			fmt.Println(")")

			writeArtifact(filepath.Join(dir, tbl.ID+".folded.txt"), rep.WriteFolded)
			writeArtifact(filepath.Join(dir, tbl.ID+".profile.json"), rep.WriteJSON)
			writeArtifact(filepath.Join(dir, tbl.ID+".slo.json"), slo.WriteJSON)
			writeArtifact(filepath.Join(dir, tbl.ID+".critpath.txt"), func(w io.Writer) error {
				return rep.WriteText(w, topN)
			})
		}

		brep := barrierPass(cfg, e)
		if brep != nil {
			brep.Meta = meta
			if err := brep.WriteText(os.Stdout); err != nil {
				fail(err)
			}
			writeArtifact(filepath.Join(dir, tbl.ID+".barrier.json"), brep.WriteJSON)
		}
		if (tel == nil || tel.Tracer == nil) && brep == nil {
			fail(fmt.Errorf("experiment %s produced no telemetry to profile", id))
		}
	}
}

// runMeta builds the artifact header stamp for the current invocation:
// the run identity plus the parallelism it executes under.
func runMeta(cfg experiments.Config) profile.RunMeta {
	return profile.RunMeta{
		Seed: cfg.Seed, Quick: cfg.Quick,
		Shards:     cfg.ShardCount(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// barrierPass reruns an experiment with every telemetry plane off at
// the configured shard count, collecting each sharded kernel's barrier
// cost profile. Telemetry no longer constrains the schedule — traced
// runs use per-shard collectors — but the barrier numbers should
// measure the kernel itself, so this pass keeps the collectors out of
// the loop. Experiments that never build a sharded kernel return nil
// and emit no artifact. The JSON artifact holds only the deterministic
// fields; the wall-clock window/barrier split goes to stdout.
func barrierPass(cfg experiments.Config, e experiments.Experiment) *profile.BarrierReport {
	cfg.Profile, cfg.Trace, cfg.Audit, cfg.Metrics = false, false, false, false
	rep := &profile.BarrierReport{Experiment: e.ID}
	cfg.ObserveBarrier = func(run string, st sim.BarrierStats, perShard []uint64) {
		rep.Runs = append(rep.Runs, profile.BarrierRun{
			Run:            run,
			Shards:         len(perShard),
			Windows:        st.Windows,
			Fired:          st.Fired,
			Delivered:      st.Delivered,
			SoloWindows:    st.SoloWindows,
			MaxWindowFired: st.MaxWindowFired,
			PerShardFired:  perShard,
			WindowNanos:    st.WindowNanos,
			BarrierNanos:   st.BarrierNanos,
			DeliverNanos:   st.DeliverNanos,
			SweepNanos:     st.SweepNanos,
		})
	}
	e.Run(cfg)
	if len(rep.Runs) == 0 {
		return nil
	}
	return rep
}

// cmdPerfDiff diffs two benchmark artifacts through the repo's own
// detection plane and prints the verdict table. With gate set, a
// regression exits 1 (the CI failure mode); otherwise the diff is
// warn-only.
func cmdPerfDiff(oldPath, newPath string, threshold float64, gate bool) {
	oldA, err := profile.ReadBenchFile(oldPath)
	if err != nil {
		fail(err)
	}
	newA, err := profile.ReadBenchFile(newPath)
	if err != nil {
		fail(err)
	}
	rep := profile.PerfDiff(oldA, newA, profile.PerfDiffConfig{Threshold: threshold})
	if err := rep.WriteText(os.Stdout); err != nil {
		fail(err)
	}
	if rep.Failed() {
		if gate {
			os.Exit(1)
		}
		fmt.Println("warn: performance regression detected (gate off; failing would need -gate)")
	}
}

// benchTargets are the representative workloads `fstutter bench` times:
// a RAID scenario, the disk plane, the DHT, the scheduler engine, and
// the sharded fleet — one per major subsystem, all in quick mode so a
// full sample set runs in seconds.
var benchTargets = []string{"E01", "E05", "E14", "E23", "E32"}

// benchSuites are the plane-level workloads timed end to end at the
// configured shard count: every experiment of the sharded switch fabric
// and of the cluster plane, run back to back as one op. These are the
// suites the shard-count flag exists for, so their wall-clock is the
// number the "-shards pays off" question is answered with.
var benchSuites = []struct {
	name string
	ids  []string
}{
	{"suite/switch", []string{"E10", "E11", "E12"}},
	{"suite/cluster", []string{"E14", "E15", "E23", "E24", "E29"}},
}

// megaFleetDisks is the full-scale fleet the dedicated bench entries
// run: the datacenter configuration the sharded kernel exists for.
const megaFleetDisks = 1 << 20

// resolveWorkers maps the SweepWorkers zero default to its effective
// value for display.
func resolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// cmdBench measures each target experiment samples times with the
// testing package's benchmark driver and writes a canonical benchmark
// artifact to outPath (stdout when empty). Unlike every other artifact,
// ns/op is wall-clock: this is the one command whose output measures the
// implementation rather than the simulation.
//
// On top of the quick-mode experiment targets, the mega-fleet scenario
// runs at full scale (~1M disks) twice — one shard, then one shard per
// core — recording wall-clock ns per run, the sharded configuration's
// events/sec, and the serial-vs-sharded speedup. These runs cost tens of
// seconds each, so they are capped at two samples regardless of
// -samples.
func cmdBench(cfg experiments.Config, samples int, outPath string) {
	cfg.Quick = true
	sweepWorkers := cfg.SweepWorkers
	if sweepWorkers <= 0 {
		sweepWorkers = runtime.GOMAXPROCS(0)
	}
	art := &profile.BenchArtifact{
		Schema: profile.BenchSchema, Seed: cfg.Seed, Quick: true,
		Shards:       cfg.ShardCount(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		SweepWorkers: sweepWorkers,
	}
	for _, id := range benchTargets {
		e, err := experiments.Get(id)
		if err != nil {
			fail(err)
		}
		b := profile.Bench{Name: "experiment/" + id, Unit: "ns/op"}
		for i := 0; i < samples; i++ {
			res := testing.Benchmark(func(tb *testing.B) {
				for n := 0; n < tb.N; n++ {
					e.Run(cfg)
				}
			})
			b.Samples = append(b.Samples, float64(res.NsPerOp()))
		}
		fmt.Fprintf(os.Stderr, "bench %-16s median %.4g ns/op over %d samples\n",
			b.Name, b.Median(), samples)
		art.Benchmarks = append(art.Benchmarks, b)
	}

	for _, suite := range benchSuites {
		runs := make([]experiments.Experiment, len(suite.ids))
		for i, id := range suite.ids {
			e, err := experiments.Get(id)
			if err != nil {
				fail(err)
			}
			runs[i] = e
		}
		b := profile.Bench{Name: suite.name, Unit: "ns/op"}
		for i := 0; i < samples; i++ {
			res := testing.Benchmark(func(tb *testing.B) {
				for n := 0; n < tb.N; n++ {
					for _, e := range runs {
						e.Run(cfg)
					}
				}
			})
			b.Samples = append(b.Samples, float64(res.NsPerOp()))
		}
		fmt.Fprintf(os.Stderr, "bench %-16s (%d shards) median %.4g ns/op over %d samples\n",
			b.Name, cfg.ShardCount(), b.Median(), samples)
		art.Benchmarks = append(art.Benchmarks, b)
	}

	fleetSamples := samples
	if fleetSamples > 2 {
		fleetSamples = 2
	}
	type fleetConfig struct {
		name      string
		shards    int
		workers   int
		rebalance bool
		traced    bool
		samples   int
	}
	configs := []fleetConfig{
		// The headline pair: fully serial (one shard, one sweep worker)
		// versus the configured parallelism with load-balanced placement.
		{name: "fleet/1M/serial", shards: 1, workers: 1, samples: fleetSamples},
		{name: "fleet/1M/sharded", shards: cfg.ShardCount(), workers: cfg.SweepWorkers,
			rebalance: true, samples: fleetSamples},
		// The tracing tax at fleet scale: the same sharded configuration
		// with per-shard collectors and the flight recorder on.
		{name: "fleet/1M/traced", shards: cfg.ShardCount(), workers: cfg.SweepWorkers,
			rebalance: true, traced: true, samples: fleetSamples},
	}
	// The sweep-worker scaling axis: same sharded kernel, barrier pool
	// doubling from 1 to GOMAXPROCS. One sample each — the axis maps the
	// scaling curve, it is not a regression baseline.
	for w := 1; w <= runtime.GOMAXPROCS(0); w *= 2 {
		configs = append(configs, fleetConfig{
			name:   fmt.Sprintf("fleet/1M/sharded/w=%d", w),
			shards: cfg.ShardCount(), workers: w, rebalance: true, samples: 1,
		})
	}
	medians := map[string]float64{}
	for _, c := range configs {
		b := profile.Bench{Name: c.name, Unit: "ns/op"}
		rates := profile.Bench{Name: c.name + "/events", Unit: "events/s"}
		for i := 0; i < c.samples; i++ {
			var events uint64
			res := testing.Benchmark(func(tb *testing.B) {
				for n := 0; n < tb.N; n++ {
					var tel *experiments.Telemetry
					if c.traced {
						rc := experiments.FleetRecorder(cfg.Seed)
						tel = &experiments.Telemetry{
							Tracer:   trace.NewTracer(),
							Metrics:  trace.NewRegistry(),
							Recorder: &rc,
						}
						tel.Tracer.SetFlightRecorder(rc)
					}
					r := experiments.RunFleetScenario(experiments.FleetParams{
						Disks: megaFleetDisks, Shards: c.shards, Seed: cfg.Seed,
						SweepWorkers: c.workers, Rebalance: c.rebalance,
						Telemetry: tel,
					})
					events = r.Events
				}
			})
			ns := float64(res.NsPerOp())
			b.Samples = append(b.Samples, ns)
			rates.Samples = append(rates.Samples, float64(events)/(ns/1e9))
		}
		fmt.Fprintf(os.Stderr, "bench %-24s (%d disks, %d shards, %d sweep workers) median %.4g ns/run, %.3g events/sec\n",
			b.Name, megaFleetDisks, c.shards, resolveWorkers(c.workers), b.Median(), rates.Median())
		medians[c.name] = b.Median()
		art.Benchmarks = append(art.Benchmarks, b, rates)
	}
	if s, p := medians["fleet/1M/serial"], medians["fleet/1M/sharded"]; s > 0 && p > 0 {
		fmt.Fprintf(os.Stderr, "bench fleet/1M speedup: sharded is %.2fx serial wall-clock\n", s/p)
	}
	if p, tr := medians["fleet/1M/sharded"], medians["fleet/1M/traced"]; p > 0 && tr > 0 {
		fmt.Fprintf(os.Stderr, "bench fleet/1M tracing tax: traced is %.2fx sharded wall-clock\n", tr/p)
	}

	if outPath == "" {
		if err := art.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	writeArtifact(outPath, art.WriteJSON)
}

package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"failstutter/internal/experiments"
	"failstutter/internal/profile"
)

// cmdProfile runs each experiment with the profiling plane on and emits
// four artifacts per experiment into dir: the folded flame stacks
// (<ID>.folded.txt), the critical-path text report (<ID>.critpath.txt),
// the full profile JSON (<ID>.profile.json), and the SLO availability
// analysis (<ID>.slo.json). The critical-path report also prints to
// stdout. All artifacts are byte-deterministic at a fixed seed.
func cmdProfile(cfg experiments.Config, ids []string, dir string, sloThreshold float64, topN int) {
	cfg.Profile = true
	for _, id := range ids {
		e, err := experiments.Get(id)
		if err != nil {
			fail(err)
		}
		tbl := e.Run(cfg)
		tel := tbl.Telemetry
		if tel == nil || tel.Tracer == nil {
			fail(fmt.Errorf("experiment %s produced no telemetry to profile", id))
		}
		rep := profile.Analyze(tel.Tracer, tel.Metrics)
		slo := profile.AnalyzeSLO(tel.Tracer, profile.SLOConfig{Threshold: sloThreshold})

		fmt.Printf("== %s: profile ==\n", tbl.ID)
		if err := rep.WriteText(os.Stdout, topN); err != nil {
			fail(err)
		}
		fmt.Printf("slo: %s availability %.4f (%d/%d within %.4gs threshold",
			slo.Category, slo.Availability, slo.Within, slo.Offered, slo.Threshold)
		if slo.Auto {
			fmt.Print(", auto")
		}
		fmt.Println(")")

		writeArtifact(filepath.Join(dir, tbl.ID+".folded.txt"), rep.WriteFolded)
		writeArtifact(filepath.Join(dir, tbl.ID+".profile.json"), rep.WriteJSON)
		writeArtifact(filepath.Join(dir, tbl.ID+".slo.json"), slo.WriteJSON)
		writeArtifact(filepath.Join(dir, tbl.ID+".critpath.txt"), func(w io.Writer) error {
			return rep.WriteText(w, topN)
		})
	}
}

// cmdPerfDiff diffs two benchmark artifacts through the repo's own
// detection plane and prints the verdict table. With gate set, a
// regression exits 1 (the CI failure mode); otherwise the diff is
// warn-only.
func cmdPerfDiff(oldPath, newPath string, threshold float64, gate bool) {
	oldA, err := profile.ReadBenchFile(oldPath)
	if err != nil {
		fail(err)
	}
	newA, err := profile.ReadBenchFile(newPath)
	if err != nil {
		fail(err)
	}
	rep := profile.PerfDiff(oldA, newA, profile.PerfDiffConfig{Threshold: threshold})
	if err := rep.WriteText(os.Stdout); err != nil {
		fail(err)
	}
	if rep.Failed() {
		if gate {
			os.Exit(1)
		}
		fmt.Println("warn: performance regression detected (gate off; failing would need -gate)")
	}
}

// benchTargets are the representative workloads `fstutter bench` times:
// a RAID scenario, the disk plane, the DHT, and the scheduler engine —
// one per major subsystem, all in quick mode so a full sample set runs
// in seconds.
var benchTargets = []string{"E01", "E05", "E14", "E23"}

// cmdBench measures each target experiment samples times with the
// testing package's benchmark driver and writes a canonical benchmark
// artifact to outPath (stdout when empty). Unlike every other artifact,
// ns/op is wall-clock: this is the one command whose output measures the
// implementation rather than the simulation.
func cmdBench(cfg experiments.Config, samples int, outPath string) {
	cfg.Quick = true
	art := &profile.BenchArtifact{Schema: profile.BenchSchema, Seed: cfg.Seed, Quick: true}
	for _, id := range benchTargets {
		e, err := experiments.Get(id)
		if err != nil {
			fail(err)
		}
		b := profile.Bench{Name: "experiment/" + id, Unit: "ns/op"}
		for i := 0; i < samples; i++ {
			res := testing.Benchmark(func(tb *testing.B) {
				for n := 0; n < tb.N; n++ {
					e.Run(cfg)
				}
			})
			b.Samples = append(b.Samples, float64(res.NsPerOp()))
		}
		fmt.Fprintf(os.Stderr, "bench %-16s median %.4g ns/op over %d samples\n",
			b.Name, b.Median(), samples)
		art.Benchmarks = append(art.Benchmarks, b)
	}
	if outPath == "" {
		if err := art.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	writeArtifact(outPath, art.WriteJSON)
}

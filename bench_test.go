// Benchmarks: one per experiment in the reproduction suite. Each
// iteration regenerates the experiment's table in quick mode and reports
// its headline metrics, so `go test -bench=. -benchmem` doubles as a
// one-shot reproduction of every quantitative claim in the paper (see
// EXPERIMENTS.md for the paper-vs-measured record and
// `go run ./cmd/fstutter all` for the full-scale tables).
package failstutter_test

import (
	"runtime"
	"testing"

	"failstutter/internal/experiments"
)

// BenchmarkSuiteQuickSerial regenerates the entire quick-mode suite on one
// worker: the whole-suite wall-clock number tracked across PRs.
func BenchmarkSuiteQuickSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunAll(benchCfg, 1)
	}
}

// BenchmarkSuiteQuickParallel is the same suite fanned across GOMAXPROCS
// workers. Every experiment runs in virtual time, so the fan-out changes
// wall-clock only — the tables are byte-identical to the serial run.
func BenchmarkSuiteQuickParallel(b *testing.B) {
	p := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		experiments.RunAll(benchCfg, p)
	}
}

// BenchmarkClusterSuite regenerates just the five cluster-backed
// experiments (E14, E15, E23, E24, E29) — the ones that burned real
// wall-clock seconds before the cluster plane moved onto the virtual-time
// kernel.
func BenchmarkClusterSuite(b *testing.B) {
	var exps []experiments.Experiment
	for _, id := range []string{"E14", "E15", "E23", "E24", "E29"} {
		e, err := experiments.Get(id)
		if err != nil {
			b.Fatal(err)
		}
		exps = append(exps, e)
	}
	for i := 0; i < b.N; i++ {
		for _, e := range exps {
			e.Run(benchCfg)
		}
	}
}

// benchCfg mirrors the test suite's quick configuration.
var benchCfg = experiments.Config{Seed: 42, Quick: true}

// runExperiment executes the experiment b.N times and republishes the
// selected metrics from the final run.
func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var tbl *experiments.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = e.Run(benchCfg)
	}
	b.StopTimer()
	for _, m := range metrics {
		if v, ok := tbl.Metric(m); ok {
			b.ReportMetric(v, m)
		} else {
			b.Fatalf("experiment %s missing metric %q", id, m)
		}
	}
}

func BenchmarkE01ScenarioFailStop(b *testing.B) {
	runExperiment(b, "E01", "throughput", "predicted")
}

func BenchmarkE02ScenarioGauged(b *testing.B) {
	runExperiment(b, "E02", "throughput_static", "throughput_drift")
}

func BenchmarkE03ScenarioAdaptive(b *testing.B) {
	runExperiment(b, "E03", "throughput_static", "throughput_dyn_adaptive", "bookkeeping_adaptive")
}

func BenchmarkE04StripeTracksSlowest(b *testing.B) {
	runExperiment(b, "E04", "throughput_50", "predicted_50")
}

func BenchmarkE05BadBlockRemap(b *testing.B) {
	runExperiment(b, "E05", "healthy_bw", "bw_2")
}

func BenchmarkE06SCSITimeouts(b *testing.B) {
	runExperiment(b, "E06", "errors_per_day", "chain_loss_frac")
}

func BenchmarkE07ThermalRecal(b *testing.B) {
	runExperiment(b, "E07", "miss_b0.5_r3", "miss_b4_r3")
}

func BenchmarkE08ZoneGeometry(b *testing.B) {
	runExperiment(b, "E08", "zone_ratio")
}

func BenchmarkE09CacheMasking(b *testing.B) {
	runExperiment(b, "E09", "max_slowdown")
}

func BenchmarkE10TransposeFlowControl(b *testing.B) {
	runExperiment(b, "E10", "slowdown_n1_s0.33")
}

func BenchmarkE11SwitchUnfairness(b *testing.B) {
	runExperiment(b, "E11", "global_slowdown", "rate_ratio")
}

func BenchmarkE12DeadlockRecovery(b *testing.B) {
	runExperiment(b, "E12", "time_0", "time_2")
}

func BenchmarkE13AgedFileSystem(b *testing.B) {
	runExperiment(b, "E13", "age_ratio", "fresh_identical")
}

func BenchmarkE14DHTGarbageCollection(b *testing.B) {
	runExperiment(b, "E14", "puts_healthy", "puts_gc_sync", "puts_gc_adaptive")
}

func BenchmarkE15SortCPUHog(b *testing.B) {
	runExperiment(b, "E15", "slowdown_static-partition", "slowdown_work-queue")
}

func BenchmarkE16MemoryHog(b *testing.B) {
	runExperiment(b, "E16", "max_stretch")
}

func BenchmarkE17MemoryBankConflict(b *testing.B) {
	runExperiment(b, "E17", "eff_50")
}

func BenchmarkE18PromotionThreshold(b *testing.B) {
	runExperiment(b, "E18", "promoted_stall2_T15", "promoted_stall10_T5")
}

func BenchmarkE19NotificationPolicy(b *testing.B) {
	runExperiment(b, "E19", "every_p8", "persistent_p8")
}

func BenchmarkE20Availability(b *testing.B) {
	runExperiment(b, "E20", "availability_failstop", "availability_failstutter")
}

func BenchmarkE21IncrementalGrowth(b *testing.B) {
	runExperiment(b, "E21", "throughput_static", "throughput_adaptive")
}

func BenchmarkE22FailurePrediction(b *testing.B) {
	runExperiment(b, "E22", "lead_60", "false_positive_samples")
}

func BenchmarkE23SlowdownReissue(b *testing.B) {
	runExperiment(b, "E23", "makespan_ms_work-queue", "makespan_ms_reissue", "wasted_reissue")
}

func BenchmarkE24SchedulerComparison(b *testing.B) {
	runExperiment(b, "E24", "mid_ms_static-partition", "mid_ms_work-queue")
}

func BenchmarkE25RiverDistributedQueue(b *testing.B) {
	runExperiment(b, "E25", "frac_credit-based", "frac_round-robin")
}

func BenchmarkE26GraduatedDeclustering(b *testing.B) {
	runExperiment(b, "E26", "static_0.50", "graduated_0.50")
}

func BenchmarkE27RunTimeVariance(b *testing.B) {
	runExperiment(b, "E27", "median", "worst")
}

func BenchmarkE28MeasurementSpread(b *testing.B) {
	runExperiment(b, "E28", "median_frac", "worst_frac")
}

func BenchmarkE29BSPBarrierTax(b *testing.B) {
	runExperiment(b, "E29", "slowdown_static", "slowdown_elastic")
}

func BenchmarkE31WindVolume(b *testing.B) {
	runExperiment(b, "E31", "writes_adaptive_stutter", "writes_static_stutter")
}

func BenchmarkE32FleetPeerDetection(b *testing.B) {
	runExperiment(b, "E32", "events_2048", "lag_ticks_2048")
}

func BenchmarkE30DesignDiversity(b *testing.B) {
	runExperiment(b, "E30", "crash_survived_homogeneous", "crash_survived_diverse")
}

func BenchmarkA1DetectorAblation(b *testing.B) {
	runExperiment(b, "A1", "lag_ewma-fast0.8", "lag_ewma-fast0.1")
}

func BenchmarkA2RegaugeInterval(b *testing.B) {
	runExperiment(b, "A2", "throughput_0.1", "throughput_4")
}

func BenchmarkA3PeerVsAbsolute(b *testing.B) {
	runExperiment(b, "A3", "abs_fleet_flags", "peer_fleet_flags")
}

func BenchmarkA4PullDepth(b *testing.B) {
	runExperiment(b, "A4", "stall_d1", "stall_d32")
}

module failstutter

go 1.22

// Package failstutter is the public API of a Go toolkit implementing the
// fail-stutter fault model of Arpaci-Dusseau & Arpaci-Dusseau (HotOS
// 2001): an extension of fail-stop in which components may deliver less
// performance than their specification without having failed absolutely.
//
// The toolkit's layers are re-exported here as a stable facade over the
// internal packages:
//
//   - the model: performance specifications, the Nominal / PerfFaulty /
//     AbsoluteFaulty classification, and the promotion threshold T that
//     turns sustained silence into an absolute fault (Spec, Verdict);
//   - detection and notification: spec-relative, history-relative and
//     peer-relative stutter detectors, hysteresis for persistence, and
//     the registry that publishes persistent state (NewSpecDetector,
//     NewEWMADetector, NewPeerSet, NewHysteresis, NewRegistry,
//     Controller);
//   - fail-stutter-tolerant storage: the paper's RAID-10 worked example
//     with static, install-time-gauged, and continuously-adaptive
//     striping (NewMirrorPair, NewArray, StaticEqual, GaugedProportional,
//     AdaptivePull, AdaptiveWave);
//   - fail-stutter-tolerant computation: a virtual-time worker pool with
//     schedulers from static partitioning to detect-and-avoid migration,
//     plus a replicated DHT with hinted handoff (NewPool, Schedulers,
//     NewDHT);
//   - the River mechanisms the paper's related work discusses
//     (NewRiverQueue, NewGraduatedDecluster) and the WiND network storage
//     volume its future work proposes (NewWindVolume), whose placement
//     consults the notification registry.
//
// Everything — devices, RAID, River, WiND, and the cluster runtime —
// runs on the deterministic discrete-event kernel in Sim, so every result
// is a pure function of its configuration. The Experiments function
// exposes the full reproduction suite (see EXPERIMENTS.md).
package failstutter

import (
	"failstutter/internal/cluster"
	"failstutter/internal/core"
	"failstutter/internal/detect"
	"failstutter/internal/device"
	"failstutter/internal/experiments"
	"failstutter/internal/raid"
	"failstutter/internal/river"
	"failstutter/internal/sim"
	"failstutter/internal/spec"
	"failstutter/internal/wind"
)

// Model layer.
type (
	// Spec is a component performance specification: expected rate,
	// tolerance band, and the promotion threshold T.
	Spec = spec.Spec
	// Verdict classifies a component: Nominal, PerfFaulty or
	// AbsoluteFaulty.
	Verdict = spec.Verdict
)

// Verdict values.
const (
	Nominal        = spec.Nominal
	PerfFaulty     = spec.PerfFaulty
	AbsoluteFaulty = spec.AbsoluteFaulty
)

// Simulation kernel.
type (
	// Simulator is the deterministic discrete-event kernel used by the
	// device, RAID and availability experiments.
	Simulator = sim.Simulator
	// Station is a FCFS server with a time-varying rate — the primitive
	// every simulated device builds on.
	Station = sim.Station
	// RNG is the seeded random stream used throughout.
	RNG = sim.RNG
)

// NewSimulator returns a simulator with its clock at zero.
func NewSimulator() *Simulator { return sim.New() }

// NewRNG returns a deterministic random stream for the given seed.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// Detection layer.
type (
	// Detector turns a (time, rate) observation stream into verdicts.
	Detector = detect.Detector
	// Registry is the notification plane publishing verdict transitions.
	Registry = detect.Registry
	// RegistryEvent is one published verdict transition.
	RegistryEvent = detect.Event
	// Controller wires probes, detectors and the registry together.
	Controller = core.Controller
	// AttachConfig configures monitoring for one component.
	AttachConfig = core.AttachConfig
	// EWMAConfig parameterizes a history-relative detector.
	EWMAConfig = detect.EWMAConfig
	// PeerConfig parameterizes fleet-relative detection.
	PeerConfig = detect.PeerConfig
	// PeerSet compares each fleet member against its peers.
	PeerSet = detect.PeerSet
)

// Notification policies for AttachConfig.
const (
	NotifyPersistent = core.NotifyPersistent
	NotifyEvery      = core.NotifyEvery
)

// NewSpecDetector classifies against an absolute performance spec.
func NewSpecDetector(s Spec) Detector { return detect.NewSpecDetector(s) }

// NewEWMADetector classifies against the component's own smoothed history.
func NewEWMADetector(cfg EWMAConfig) Detector { return detect.NewEWMADetector(cfg) }

// NewPeerSet classifies fleet members against each other.
func NewPeerSet(cfg PeerConfig) *PeerSet { return detect.NewPeerSet(cfg) }

// NewHysteresis debounces a detector: enterAfter consecutive faulty
// verdicts to report, exitAfter nominal ones to recover.
func NewHysteresis(inner Detector, enterAfter, exitAfter int) Detector {
	return detect.NewHysteresis(inner, enterAfter, exitAfter)
}

// NewRegistry returns an empty notification registry.
func NewRegistry() *Registry { return detect.NewRegistry() }

// NewController returns a fail-stutter control plane on the simulator.
func NewController(s *Simulator) *Controller { return core.NewController(s) }

// Devices.
type (
	// Disk is a simulated drive with zones, remapped blocks and aging.
	Disk = device.Disk
	// DiskParams configures a Disk.
	DiskParams = device.DiskParams
	// DiskZone is one radial zone of a disk's geometry.
	DiskZone = device.Zone
	// Switch is a crossbar with bounded buffers and HOL blocking.
	Switch = device.Switch
	// SwitchParams configures a Switch.
	SwitchParams = device.SwitchParams
)

// NewDisk builds a simulated disk.
func NewDisk(s *Simulator, p DiskParams) (*Disk, error) { return device.NewDisk(s, p) }

// HawkParams returns parameters modelled on the paper's Seagate Hawk.
func HawkParams(name string) DiskParams { return device.HawkParams(name) }

// NewSwitch builds a simulated crossbar switch.
func NewSwitch(s *Simulator, p SwitchParams) *Switch { return device.NewSwitch(s, p) }

// Storage layer (the Section 3.2 worked example).
type (
	// MirrorPair is a RAID-1 pair whose write rate is the min of its
	// members.
	MirrorPair = raid.MirrorPair
	// Array is a RAID-10 array striping blocks over mirror pairs.
	Array = raid.Array
	// Striper is a placement policy for striped writes.
	Striper = raid.Striper
	// StripeResult summarizes one striped write job.
	StripeResult = raid.Result
	// StaticEqual is scenario 1: equal shares, fail-stop assumptions.
	StaticEqual = raid.StaticEqual
	// GaugedProportional is scenario 2: install-time gauged ratios.
	GaugedProportional = raid.GaugedProportional
	// AdaptivePull is scenario 3 in work-conserving form.
	AdaptivePull = raid.AdaptivePull
	// AdaptiveWave is scenario 3 in literal re-gauge-every-interval form.
	AdaptiveWave = raid.AdaptiveWave
	// SparePool holds hot spares for reconstruction.
	SparePool = raid.SparePool
	// ReconEvent describes a completed hot-spare rebuild.
	ReconEvent = raid.ReconEvent
)

// NewSparePool builds a pool of hot-spare disks.
func NewSparePool(disks ...*Disk) *SparePool { return raid.NewSparePool(disks...) }

// EnableReconstruction arms hot-spare rebuild on every pair of the array.
func EnableReconstruction(a *Array, pool *SparePool, chunkBlocks int64, onComplete func(ReconEvent)) {
	raid.EnableReconstruction(a, pool, chunkBlocks, onComplete)
}

// NewMirrorPair builds a mirrored pair over two disks.
func NewMirrorPair(s *Simulator, id int, a, b *Disk) *MirrorPair {
	return raid.NewMirrorPair(s, id, a, b)
}

// NewArray builds a RAID-10 array over the pairs.
func NewArray(s *Simulator, pairs []*MirrorPair, blockBytes float64) *Array {
	return raid.NewArray(s, pairs, blockBytes)
}

// WriteAndMeasure runs a striper to completion and reports throughput,
// per-pair placement and bookkeeping cost.
func WriteAndMeasure(s *Simulator, a *Array, st Striper, blocks int64) (StripeResult, error) {
	return raid.WriteAndMeasure(s, a, st, blocks)
}

// Cluster layer (virtual time).
type (
	// Pool is a set of workers with injectable slowdowns.
	Pool = cluster.Pool
	// Worker is one compute node.
	Worker = cluster.Worker
	// Task is one schedulable unit of work.
	Task = cluster.Task
	// Scheduler runs a task set on a pool.
	Scheduler = cluster.Scheduler
	// SchedulerReport summarizes a scheduled run.
	SchedulerReport = cluster.Report
	// DHT is a replicated hash table with optional stutter awareness.
	DHT = cluster.DHT
	// DHTParams configures a DHT.
	DHTParams = cluster.DHTParams
)

// NewPool builds n workers on the simulator with the given work-unit
// quantum (the virtual time one unit costs at speed 1).
func NewPool(s *Simulator, n int, quantum float64) *Pool { return cluster.NewPool(s, n, quantum) }

// Schedulers returns the standard comparison set, least to most
// fail-stutter aware.
func Schedulers() []Scheduler { return cluster.Schedulers() }

// UniformTasks builds n tasks of equal size.
func UniformTasks(n, units int) []Task { return cluster.UniformTasks(n, units) }

// NewDHT builds a replicated hash table on the simulator.
func NewDHT(s *Simulator, p DHTParams) *DHT { return cluster.NewDHT(s, p) }

// WiND layer (Section 5's target system, prototyped): a replicated
// network storage volume whose placement consults the registry.
type (
	// WindVolume is a monitored, replicated network block store.
	WindVolume = wind.Volume
	// WindVolumeParams configures a WindVolume.
	WindVolumeParams = wind.VolumeParams
	// WindNodeParams configures one storage node (disk behind a link).
	WindNodeParams = wind.NodeParams
	// WindPolicy selects static or registry-driven adaptive placement.
	WindPolicy = wind.Policy
)

// WiND placement policies.
const (
	WindStatic   = wind.Static
	WindAdaptive = wind.Adaptive
)

// NewWindVolume builds a volume and its monitoring plane on the
// simulator.
func NewWindVolume(s *Simulator, p WindVolumeParams, mkNode func(i int) WindNodeParams) (*WindVolume, error) {
	return wind.NewVolume(s, p, mkNode)
}

// River layer (Section 4's precursor system, rebuilt).
type (
	// RiverQueue is River's distributed queue: back-pressure balancing
	// over consumers of varying speed.
	RiverQueue = river.DQ
	// RiverQueueParams configures a RiverQueue.
	RiverQueueParams = river.DQParams
	// RiverPolicy selects the queue's routing discipline.
	RiverPolicy = river.Policy
	// GraduatedDecluster is River's mirrored-read mechanism.
	GraduatedDecluster = river.GD
	// GraduatedDeclusterParams configures a GraduatedDecluster.
	GraduatedDeclusterParams = river.GDParams
)

// River routing policies.
const (
	RiverRoundRobin  = river.RoundRobin
	RiverRandom      = river.RandomChoice
	RiverCreditBased = river.CreditBased
)

// NewRiverQueue builds a distributed queue on the simulator.
func NewRiverQueue(s *Simulator, p RiverQueueParams) *RiverQueue { return river.NewDQ(s, p) }

// NewGraduatedDecluster builds a mirrored-read set on the simulator.
func NewGraduatedDecluster(s *Simulator, p GraduatedDeclusterParams) *GraduatedDecluster {
	return river.NewGD(s, p)
}

// Experiments.
type (
	// Experiment is one registered reproduction of a paper claim.
	Experiment = experiments.Experiment
	// ExperimentConfig parameterizes a run of the suite.
	ExperimentConfig = experiments.Config
	// ResultTable is an experiment's regenerated output.
	ResultTable = experiments.Table
)

// Experiments returns the full reproduction suite in display order.
func Experiments() []Experiment { return experiments.All() }

// GetExperiment looks up one experiment by id (e.g. "E03").
func GetExperiment(id string) (Experiment, error) { return experiments.Get(id) }

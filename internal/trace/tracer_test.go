package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestTracerSpanLifecycle(t *testing.T) {
	tr := NewTracer()
	track := tr.Track("disk-0")
	if track != 0 {
		t.Fatalf("first track id = %d, want 0", track)
	}
	if again := tr.Track("disk-0"); again != track {
		t.Fatalf("re-registering track gave %d, want %d", again, track)
	}
	root := tr.Begin(track, "write", "disk", 0, 1.0)
	child := tr.BeginArg(track, "service", "station", root, 1.5, 42)
	tr.End(child, 2.0)
	tr.End(root, 2.5)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("len(spans) = %d, want 2", len(spans))
	}
	if spans[0].Name != "write" || spans[0].Start != 1.0 || spans[0].End != 2.5 {
		t.Fatalf("root span = %+v", spans[0])
	}
	if spans[1].Parent != root || spans[1].Arg != 42 || !spans[1].HasArg {
		t.Fatalf("child span = %+v", spans[1])
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	track := tr.Track("x")
	id := tr.Begin(track, "a", "b", 0, 0)
	if id != 0 {
		t.Fatalf("nil tracer Begin = %d, want 0", id)
	}
	tr.End(id, 1)
	tr.Instant(track, "i", "c", 2)
	tr.Flush(3)
	tr.Rebase(4)
	if tr.Len() != 0 || tr.Spans() != nil || tr.Tracks() != nil {
		t.Fatal("nil tracer not inert")
	}
}

func TestTracerEndIsIdempotentAndIgnoresZero(t *testing.T) {
	tr := NewTracer()
	track := tr.Track("t")
	id := tr.Begin(track, "a", "c", 0, 1)
	tr.End(0, 5)   // no-op
	tr.End(999, 5) // unknown: no-op
	tr.End(id, 2)  // closes
	tr.End(id, 9)  // already closed: no-op
	if got := tr.Spans()[0].End; got != 2 {
		t.Fatalf("End = %v, want 2 (second End ignored)", got)
	}
}

func TestTracerFlushClosesOpenSpans(t *testing.T) {
	tr := NewTracer()
	track := tr.Track("t")
	open := tr.Begin(track, "abandoned", "c", 0, 1)
	closed := tr.Begin(track, "done", "c", 0, 1)
	tr.End(closed, 3)
	if !tr.Spans()[0].Open() {
		t.Fatal("span not open before flush")
	}
	tr.Flush(10)
	spans := tr.Spans()
	if spans[0].End != 10 {
		t.Fatalf("flushed End = %v, want 10", spans[0].End)
	}
	if spans[1].End != 3 {
		t.Fatalf("already-closed span End = %v, want 3 (flush must not touch it)", spans[1].End)
	}
	_ = open
}

func TestTracerRebaseLaysRunsOutSequentially(t *testing.T) {
	tr := NewTracer()
	track := tr.Track("t")
	a := tr.Begin(track, "run1", "c", 0, 0)
	tr.End(a, 5)
	tr.Rebase(6) // second sub-run restarts its clock at 0
	b := tr.Begin(track, "run2", "c", 0, 0)
	tr.End(b, 5)
	spans := tr.Spans()
	if spans[0].Start != 0 || spans[0].End != 5 {
		t.Fatalf("run1 = [%v, %v]", spans[0].Start, spans[0].End)
	}
	if spans[1].Start != 6 || spans[1].End != 11 {
		t.Fatalf("run2 = [%v, %v], want [6, 11]", spans[1].Start, spans[1].End)
	}
}

func TestTracerInstant(t *testing.T) {
	tr := NewTracer()
	track := tr.Track("t")
	tr.Instant(track, "fail", "station", 7)
	s := tr.Spans()[0]
	if !s.Instant || s.Start != 7 || s.End != 7 {
		t.Fatalf("instant = %+v", s)
	}
	if s.Open() {
		t.Fatal("instant reported open")
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			track := tr.Track("worker")
			for i := 0; i < 100; i++ {
				id := tr.Begin(track, "task", "cluster", 0, float64(i))
				tr.End(id, float64(i)+0.5)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("len = %d, want 800", tr.Len())
	}
	for _, s := range tr.Spans() {
		if s.Open() {
			t.Fatalf("span %d still open", s.ID)
		}
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	tr := NewTracer()
	disk := tr.Track("disk-0")
	pair := tr.Track(`pair "0"`) // quote in a track name must be escaped
	w := tr.Begin(pair, "mirrored-write", "raid", 0, 0.001)
	s := tr.BeginArg(disk, "service", "station", w, 0.002, 7)
	tr.Instant(disk, "fail", "station", 0.003)
	tr.End(s, 0.004)
	tr.End(w, 0.005)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Name string  `json:"name"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 2 thread_name metadata + 2 complete + 1 instant
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(doc.TraceEvents))
	}
	var phases []string
	for _, e := range doc.TraceEvents {
		phases = append(phases, e.Ph)
	}
	if got := strings.Join(phases, ""); got != "MMXXi" && got != "MMXiX" {
		t.Fatalf("phase sequence = %q", got)
	}
	// The service span carries its parent link and arg in args, in µs ts.
	svc := doc.TraceEvents[3]
	if svc.Name != "service" || svc.Ts != 2000 || svc.Dur != 2000 {
		t.Fatalf("service event = %+v", svc)
	}
	if svc.Args["parent"].(float64) != float64(w) || svc.Args["arg"].(float64) != 7 {
		t.Fatalf("service args = %+v", svc.Args)
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	build := func() *bytes.Buffer {
		tr := NewTracer()
		a := tr.Track("a")
		for i := 0; i < 50; i++ {
			id := tr.Begin(a, "op", "c", 0, float64(i)*0.1)
			tr.End(id, float64(i)*0.1+0.05)
		}
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if !bytes.Equal(build().Bytes(), build().Bytes()) {
		t.Fatal("chrome trace output not byte-identical across identical runs")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"displayTimeUnit":"ms","traceEvents":[]}` + "\n"
	if buf.String() != want {
		t.Fatalf("empty trace = %q, want %q", buf.String(), want)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// A nil tracer exports the same valid empty document.
	buf.Reset()
	var nilTr *Tracer
	if err := nilTr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Fatalf("nil trace = %q", buf.String())
	}
}

func TestWriteChromeTraceNoScientificNotation(t *testing.T) {
	tr := NewTracer()
	track := tr.Track("t")
	// 2000 s → 2e9 µs: naive %v formatting would print "2e+09".
	id := tr.Begin(track, "long", "c", 0, 0)
	tr.End(id, 2000)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dur":2000000000`) {
		t.Fatalf("dur not in plain decimal: %s", buf.String())
	}
}

func TestWriteChromeTraceUnflushedOpenSpan(t *testing.T) {
	tr := NewTracer()
	track := tr.Track("t")
	tr.Begin(track, "open", "c", 0, 1)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatalf("NaN leaked into JSON: %s", buf.String())
	}
	if !strings.Contains(buf.String(), `"dur":0`) {
		t.Fatalf("open span should export zero duration: %s", buf.String())
	}
}

func TestSpanOpen(t *testing.T) {
	s := Span{End: math.NaN()}
	if !s.Open() {
		t.Fatal("NaN-end span not open")
	}
	s.End = 1
	if s.Open() {
		t.Fatal("closed span reported open")
	}
}

package trace

import (
	"fmt"
	"math"
)

// RecorderConfig bounds a tracer for fleet scale. A flight-recorder
// tracer tracks open spans exactly (memory proportional to spans in
// flight, not spans ever recorded) and, as spans complete, retains only
// two bounded deterministic selections:
//
//   - a ring of the Ring most recent completions, selected by the total
//     order (end time, track name, per-track begin sequence) — the
//     "what just happened" view an incident timeline needs;
//   - a reservoir of Reservoir completions sampled uniformly over the
//     whole run by hashed priority — the unbiased view a latency or
//     utilization profile needs.
//
// Both selections are pure functions of placement-invariant keys, so
// per-shard recorders merge exactly: re-selecting over the union of
// per-shard retentions with the same bounds yields byte-for-byte the
// single-shard selection. Exact recorded counts remain available via
// Tracer.Recorded even though most spans are dropped.
type RecorderConfig struct {
	// Ring is how many of the most recently completed spans to retain.
	Ring int
	// Reservoir is the size of the deterministic uniform sample of all
	// completed spans.
	Reservoir int
	// Seed drives the reservoir's sampling priorities. Collectors that
	// will be merged (the per-shard recorders of one run) must share one
	// seed — fork it once from the experiment's root RNG — because the
	// priorities are part of the merge contract.
	Seed uint64
}

// SetFlightRecorder switches the tracer into flight-recorder mode. It
// must be called on a fresh tracer, before any span is recorded: the
// retention policy is part of the tracer's identity for the whole run.
// In this mode parent links are not exported — sampling cannot promise a
// span's parent survived selection.
func (t *Tracer) SetFlightRecorder(cfg RecorderConfig) {
	if t == nil {
		return
	}
	if cfg.Ring <= 0 && cfg.Reservoir <= 0 {
		panic("trace: flight recorder needs a positive ring or reservoir bound")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fr != nil || len(t.spans) > 0 {
		panic("trace: SetFlightRecorder requires a fresh tracer")
	}
	t.fr = &flightRecorder{cfg: cfg}
}

// FlightRecording reports whether the tracer is in flight-recorder mode.
func (t *Tracer) FlightRecording() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fr != nil
}

const (
	// frSlotBits splits a flight-recorder local id into an arena slot
	// (low bits) and a reuse generation (the bits up to localIDBits), so
	// a stale End cannot close a recycled slot.
	frSlotBits = 24
	frSlotMask = SpanID(1)<<frSlotBits - 1
	frMaxSlots = 1<<frSlotBits - 2
)

// frOpen is one in-flight span slot in the recorder's arena.
type frOpen struct {
	span Span
	seq  uint64
	gen  uint16
	live bool
}

// frEntry is one retained completion, carrying the placement-invariant
// keys the selections and the merge are ordered by: the resolved track
// name, the span's begin sequence on that track, and the merge epoch
// (which sub-run fed it into a destination recorder).
type frEntry struct {
	span  Span
	name  string
	seq   uint64
	epoch uint32
	prio  uint64
}

// flightRecorder holds the bounded retention state. All methods run
// under the owning Tracer's mutex.
type flightRecorder struct {
	cfg RecorderConfig

	open []frOpen
	free []int32
	// trackSeq numbers each track's begins — the placement-invariant
	// per-track sequence every selection key is built on.
	trackSeq []uint64

	// ring is a min-heap under frRingLess holding the cfg.Ring largest
	// (i.e. most recent) completions; res is a max-heap under frResLess
	// holding the cfg.Reservoir smallest priorities. Heap contents are a
	// pure function of the retired multiset, so retire order — which is
	// placement-dependent only for flush — cannot leak into the result.
	ring []frEntry
	res  []frEntry

	// epoch counts Merge batches fed into this recorder, keeping retained
	// identities from different sub-runs distinct.
	epoch uint32
	// recorded counts every span and instant ever recorded (or merged
	// in), retained or not.
	recorded uint64
}

// nextSeq returns track's next begin sequence, growing the table as
// tracks register.
func (f *flightRecorder) nextSeq(track TrackID) uint64 {
	for int(track) >= len(f.trackSeq) {
		f.trackSeq = append(f.trackSeq, 0)
	}
	s := f.trackSeq[track]
	f.trackSeq[track] = s + 1
	return s
}

// begin opens a span in the arena and returns its local id
// (generation<<frSlotBits | slot+1). start is already offset-adjusted.
func (f *flightRecorder) begin(track TrackID, name, cat string, start float64, arg int64, hasArg bool) SpanID {
	f.recorded++
	seq := f.nextSeq(track)
	var slot int32
	if n := len(f.free); n > 0 {
		slot = f.free[n-1]
		f.free = f.free[:n-1]
	} else {
		if len(f.open) > frMaxSlots {
			panic(fmt.Sprintf("trace: flight recorder exceeds %d concurrently open spans", frMaxSlots))
		}
		f.open = append(f.open, frOpen{})
		slot = int32(len(f.open) - 1)
	}
	o := &f.open[slot]
	o.gen++
	o.live = true
	o.seq = seq
	o.span = Span{
		Track: track, Name: name, Cat: cat,
		Start: start, End: math.NaN(), Arg: arg, HasArg: hasArg,
	}
	return SpanID(uint64(o.gen))<<frSlotBits | SpanID(slot+1)
}

// end closes the open span with the given local id, retiring it through
// the selections. Unknown, stale, or already-closed ids are no-ops,
// matching the plain tracer's End contract. end is offset-adjusted.
func (f *flightRecorder) end(local SpanID, end float64, tracks []string) {
	slot := int64(local&frSlotMask) - 1
	if slot < 0 || slot >= int64(len(f.open)) {
		return
	}
	o := &f.open[slot]
	if !o.live || uint16(local>>frSlotBits) != o.gen {
		return
	}
	o.live = false
	sp := o.span
	sp.End = end
	f.retire(frEntry{span: sp, name: tracks[sp.Track], seq: o.seq, epoch: f.epoch})
	o.span = Span{}
	f.free = append(f.free, int32(slot))
}

// instant records and immediately retires a marker event. at is
// offset-adjusted.
func (f *flightRecorder) instant(track TrackID, name, cat string, at float64, tracks []string) {
	f.recorded++
	seq := f.nextSeq(track)
	f.retire(frEntry{
		span: Span{Track: track, Name: name, Cat: cat, Start: at, End: at, Instant: true},
		name: tracks[track], seq: seq, epoch: f.epoch,
	})
}

// flush retires every open span at the given (offset-adjusted) end time.
func (f *flightRecorder) flush(end float64, tracks []string) {
	for slot := range f.open {
		o := &f.open[slot]
		if !o.live {
			continue
		}
		o.live = false
		sp := o.span
		sp.End = end
		f.retire(frEntry{span: sp, name: tracks[sp.Track], seq: o.seq, epoch: f.epoch})
		o.span = Span{}
		f.free = append(f.free, int32(slot))
	}
}

// retire feeds one completion through both selections.
func (f *flightRecorder) retire(e frEntry) {
	if f.cfg.Ring > 0 {
		if len(f.ring) < f.cfg.Ring {
			f.ring = append(f.ring, e)
			frSiftUp(f.ring, len(f.ring)-1, frRingHeapLess)
		} else if frRingLess(f.ring[0], e) {
			f.ring[0] = e
			frSiftDown(f.ring, 0, frRingHeapLess)
		}
	}
	if f.cfg.Reservoir > 0 {
		e.prio = frPriority(f.cfg.Seed, e.name, e.seq)
		if len(f.res) < f.cfg.Reservoir {
			f.res = append(f.res, e)
			frSiftUp(f.res, len(f.res)-1, frResHeapLess)
		} else if frResLess(e, f.res[0]) {
			f.res[0] = e
			frSiftDown(f.res, 0, frResHeapLess)
		}
	}
}

// snapshot returns the retained selection — ring ∪ reservoir, deduplicated
// by retained identity — in canonical (start, track name, begin sequence,
// epoch) order.
func (f *flightRecorder) snapshot(tracks []string) []frEntry {
	type key struct {
		name  string
		seq   uint64
		epoch uint32
	}
	out := make([]frEntry, 0, len(f.ring)+len(f.res))
	seen := make(map[key]bool, len(f.ring))
	for _, e := range f.ring {
		seen[key{e.name, e.seq, e.epoch}] = true
		out = append(out, e)
	}
	for _, e := range f.res {
		if !seen[key{e.name, e.seq, e.epoch}] {
			out = append(out, e)
		}
	}
	sortEntries(out)
	return out
}

// frRingLess is the recency total order: by end time, then track name,
// then the track's begin sequence, then epoch. Strict for distinct
// retained spans — two spans on one track never share a sequence.
func frRingLess(a, b frEntry) bool {
	if a.span.End != b.span.End {
		return a.span.End < b.span.End
	}
	if a.name != b.name {
		return a.name < b.name
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.epoch < b.epoch
}

// frRingHeapLess roots the ring heap at its smallest (least recent)
// entry — the one a newer completion evicts.
func frRingHeapLess(a, b frEntry) bool { return frRingLess(a, b) }

// frResLess is the reservoir total order: ascending hashed priority with
// the same deterministic tie-break chain.
func frResLess(a, b frEntry) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	if a.name != b.name {
		return a.name < b.name
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.epoch < b.epoch
}

// frResHeapLess roots the reservoir heap at its largest priority — the
// entry a lower-priority completion evicts.
func frResHeapLess(a, b frEntry) bool { return frResLess(b, a) }

// frSiftUp restores heap order after appending at index i.
func frSiftUp(h []frEntry, i int, less func(a, b frEntry) bool) {
	for i > 0 {
		p := (i - 1) / 2
		if !less(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// frSiftDown restores heap order after replacing the entry at index i.
func frSiftDown(h []frEntry, i int, less func(a, b frEntry) bool) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && less(h[r], h[l]) {
			m = r
		}
		if !less(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// frPriority hashes a retained span's placement-invariant identity with
// the sampling seed: FNV-1a over the key material, then a splitmix64
// finalizer so consecutive sequences on one track land uniformly. The
// merge epoch is deliberately NOT hashed: per-shard recorders select
// with epoch 0 and the destination re-selects after stamping its own
// epoch, so the priority must be identical before and after the stamp or
// hierarchical selection would disagree with single-collector selection.
// Epoch collisions (the same track and sequence in two merged sub-runs)
// tie on priority and resolve deterministically by the epoch tie-break.
func frPriority(seed uint64, name string, seq uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= seed
	h *= prime64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= seq
	h *= prime64
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

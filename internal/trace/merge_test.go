package trace

import (
	"bytes"
	"math"
	"testing"
)

// chromeBytes renders the tracer's chrome trace for byte comparison.
func chromeBytes(t *testing.T, tr *Tracer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	return buf.Bytes()
}

func TestShardTracerIDsAreGloballyUnique(t *testing.T) {
	shards := []*Tracer{NewShardTracer(0), NewShardTracer(1), NewShardTracer(7)}
	seen := make(map[SpanID]bool)
	for _, tr := range shards {
		tk := tr.Track("t")
		for i := 0; i < 100; i++ {
			id := tr.Begin(tk, "s", "c", 0, float64(i))
			if id == 0 {
				t.Fatal("allocated span id 0")
			}
			if seen[id] {
				t.Fatalf("span id %d allocated twice across shards", id)
			}
			seen[id] = true
		}
	}
	// A plain tracer's ids live in the zero-qualifier space and must not
	// collide with any shard's.
	plain := NewTracer()
	tk := plain.Track("t")
	for i := 0; i < 100; i++ {
		if id := plain.Begin(tk, "s", "c", 0, float64(i)); seen[id] {
			t.Fatalf("plain tracer id %d collides with a shard id", id)
		}
	}
}

func TestEndIgnoresForeignCollectorIDs(t *testing.T) {
	a, b := NewShardTracer(0), NewShardTracer(1)
	ta, tb := a.Track("x"), b.Track("x")
	ida := a.Begin(ta, "s", "c", 0, 1)
	idb := b.Begin(tb, "s", "c", 0, 1)
	a.End(idb, 2) // foreign id: must not close a's span
	b.End(ida, 2)
	if !a.Spans()[0].Open() || !b.Spans()[0].Open() {
		t.Fatal("a foreign collector's id closed a span")
	}
	a.End(ida, 3)
	if a.Spans()[0].End != 3 {
		t.Fatal("own id failed to close after foreign-id attempt")
	}
}

// TestTracerMergePlacementInvariant is the core contract: recording the
// same per-track streams on one collector or split across two, then
// merging, must yield byte-identical exports.
func TestTracerMergePlacementInvariant(t *testing.T) {
	// record writes the same logical telemetry, with each track directed
	// to pick(track)'s collector.
	record := func(pick func(track string) *Tracer) {
		for i := 0; i < 40; i++ {
			name := []string{"disk-0", "disk-1", "disk-2"}[i%3]
			tr := pick(name)
			tk := tr.Track(name)
			id := tr.BeginArg(tk, "write", "disk", 0, float64(i)*0.25, int64(i))
			tr.End(id, float64(i)*0.25+0.1)
			if i%5 == 0 {
				tr.Instant(tk, "mark", "disk", float64(i)*0.25+0.05)
			}
		}
	}

	one := NewShardTracer(0)
	record(func(string) *Tracer { return one })
	one.Flush(10)
	single := NewTracer()
	single.Merge(one)

	s0, s1 := NewShardTracer(0), NewShardTracer(1)
	record(func(track string) *Tracer {
		if track == "disk-1" {
			return s1
		}
		return s0
	})
	s0.Flush(10)
	s1.Flush(10)
	split := NewTracer()
	split.Merge(s0, s1)

	if got, want := chromeBytes(t, split), chromeBytes(t, single); !bytes.Equal(got, want) {
		t.Fatalf("merged trace differs by placement:\n--- split across 2 collectors\n%s\n--- single collector\n%s", got, want)
	}
}

func TestTracerMergeRemapsParents(t *testing.T) {
	p := NewShardTracer(3)
	tk := p.Track("t")
	root := p.Begin(tk, "root", "c", 0, 1)
	child := p.Begin(tk, "child", "c", root, 2)
	p.End(child, 3)
	p.End(root, 4)

	dst := NewTracer()
	dst.Merge(p)
	spans := dst.Spans()
	if len(spans) != 2 {
		t.Fatalf("merged %d spans, want 2", len(spans))
	}
	if spans[0].ID != 1 || spans[1].ID != 2 {
		t.Fatalf("merged ids not dense: %d, %d", spans[0].ID, spans[1].ID)
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatalf("child parent = %d, want remapped root id %d", spans[1].Parent, spans[0].ID)
	}
	// The part is untouched: its span ids still carry the shard qualifier.
	if p.Spans()[0].ID == spans[0].ID {
		t.Fatal("merge mutated the part's span ids")
	}
}

func TestTracerMergeAppliesDstOffset(t *testing.T) {
	p := NewShardTracer(0)
	tk := p.Track("t")
	p.End(p.Begin(tk, "s", "c", 0, 1), 2)

	dst := NewTracer()
	dst.Rebase(100)
	dst.Merge(p)
	sp := dst.Spans()[0]
	if sp.Start != 101 || sp.End != 102 {
		t.Fatalf("merged span at [%g,%g], want [101,102]", sp.Start, sp.End)
	}
}

func TestRegistryMergeMatchesSingleRegistry(t *testing.T) {
	// feed writes the same observations through pick(shard)'s registry.
	// Values are dyadic so the float folds are exact under any addition
	// order: in production each instrument key has one shard-local
	// writer, but this test deliberately folds one key across four parts
	// to exercise the accumulation itself.
	feed := func(pick func(i int) *Registry) {
		for i := 0; i < 32; i++ {
			r := pick(i % 4)
			r.Counter("events", L("shard", "all")).Inc()
			h := r.Histogram("lat", 1e-3, 10, 24)
			h.Observe(0.25 * float64(i+1))
			if i == 7 {
				h.Observe(math.NaN())
			}
			m := r.Meter("avail", 0.5)
			m.Offered()
			m.Completed(0.125 * float64(i+1))
			r.Series("depth", L("comp", "d")).Add(float64(i), float64(i%5))
		}
	}

	ref := NewRegistry()
	feed(func(int) *Registry { return ref })
	single := NewRegistry()
	single.Merge(ref)

	parts := []*Registry{NewRegistry(), NewRegistry(), NewRegistry(), NewRegistry()}
	feed(func(i int) *Registry { return parts[i] })
	merged := NewRegistry()
	merged.Merge(parts[0], parts[1], parts[2], parts[3])

	var a, b bytes.Buffer
	if err := single.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merged registry differs from single-registry reference:\n--- single\n%s\n--- merged\n%s", a.Bytes(), b.Bytes())
	}
	// Exact folds, spot-checked.
	if got := merged.Counter("events", L("shard", "all")).Value(); got != 32 {
		t.Fatalf("merged counter = %d, want 32", got)
	}
	h := merged.Histogram("lat", 1e-3, 10, 24)
	if h.Count() != 32 || h.NaNCount() != 1 {
		t.Fatalf("merged histogram count=%d nan=%d, want 32/1", h.Count(), h.NaNCount())
	}
	if h.Min() != 0.25 || h.Max() != 8 {
		t.Fatalf("merged histogram min=%g max=%g", h.Min(), h.Max())
	}
}

func TestHistogramMergeLayoutMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched bucket layouts did not panic")
		}
	}()
	NewHistogram(1, 10, 4).Merge(NewHistogram(1, 20, 4))
}

func TestMeterMergeThresholdMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched thresholds did not panic")
		}
	}()
	NewAvailabilityMeter(1).Merge(NewAvailabilityMeter(2))
}

func TestSeriesMergeInterleavesAndPartWinsTies(t *testing.T) {
	s := &Series{}
	s.Add(1, 10)
	s.Add(3, 30)
	p := &Series{}
	p.Add(2, 20)
	p.Add(3, 99)
	p.Add(4, 40)
	s.merge(p)
	wantT := []float64{1, 2, 3, 4}
	wantV := []float64{10, 20, 99, 40}
	if len(s.Times) != len(wantT) {
		t.Fatalf("merged %d samples, want %d", len(s.Times), len(wantT))
	}
	for i := range wantT {
		if s.Times[i] != wantT[i] || s.Values[i] != wantV[i] {
			t.Fatalf("sample %d = (%g,%g), want (%g,%g)", i, s.Times[i], s.Values[i], wantT[i], wantV[i])
		}
	}
}

func TestAuditMergeOrderIsPlacementInvariant(t *testing.T) {
	rec := func(time float64, comp string) AuditRecord {
		return AuditRecord{Time: time, Component: comp, Detector: "spec", Kind: AuditTransition, From: "nominal", To: "perf-faulty"}
	}
	a, b := NewAuditLog(), NewAuditLog()
	a.Add(rec(1, "disk-0"))
	a.Add(rec(2, "disk-0"))
	b.Add(rec(1, "disk-1"))
	b.Add(rec(2, "disk-1"))

	ab, ba := NewAuditLog(), NewAuditLog()
	ab.Merge(a, b)
	ba.Merge(b, a)
	var x, y bytes.Buffer
	if err := ab.WriteJSON(&x); err != nil {
		t.Fatal(err)
	}
	if err := ba.WriteJSON(&y); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(x.Bytes(), y.Bytes()) {
		t.Fatalf("audit merge depends on part order:\n%s\nvs\n%s", x.Bytes(), y.Bytes())
	}
	got := ab.Records()
	want := []struct {
		t float64
		c string
	}{{1, "disk-0"}, {1, "disk-1"}, {2, "disk-0"}, {2, "disk-1"}}
	for i, w := range want {
		if got[i].Time != w.t || got[i].Component != w.c {
			t.Fatalf("record %d = (%g,%s), want (%g,%s)", i, got[i].Time, got[i].Component, w.t, w.c)
		}
	}
}

// recordFRLoad drives count spans across the picked collectors: many
// tracks, deterministic times, a few instants.
func recordFRLoad(count int, pick func(i int) *Tracer) {
	for i := 0; i < count; i++ {
		name := []string{"disk-0", "disk-1", "disk-2", "disk-3"}[i%4]
		tr := pick(i % 4)
		tk := tr.Track(name)
		id := tr.Begin(tk, "write", "disk", 0, float64(i)*0.5)
		tr.End(id, float64(i)*0.5+0.25)
		if i%17 == 0 {
			tr.Instant(tk, "mark", "disk", float64(i)*0.5)
		}
	}
}

func TestFlightRecorderMergePlacementInvariant(t *testing.T) {
	cfg := RecorderConfig{Ring: 32, Reservoir: 16, Seed: 0xfeedface}

	one := NewShardTracer(0)
	one.SetFlightRecorder(cfg)
	recordFRLoad(500, func(int) *Tracer { return one })
	one.Flush(1000)
	single := NewTracer()
	single.SetFlightRecorder(cfg)
	single.Merge(one)

	parts := make([]*Tracer, 4)
	for i := range parts {
		parts[i] = NewShardTracer(i)
		parts[i].SetFlightRecorder(cfg)
	}
	recordFRLoad(500, func(i int) *Tracer { return parts[i] })
	for _, p := range parts {
		p.Flush(1000)
	}
	split := NewTracer()
	split.SetFlightRecorder(cfg)
	split.Merge(parts[0], parts[1], parts[2], parts[3])

	if got, want := chromeBytes(t, split), chromeBytes(t, single); !bytes.Equal(got, want) {
		t.Fatalf("flight-recorder merge differs by placement:\n--- 4 collectors\n%s\n--- 1 collector\n%s", got, want)
	}
	if single.Recorded() != split.Recorded() {
		t.Fatalf("recorded counts differ: %d vs %d", single.Recorded(), split.Recorded())
	}
	// ~530 recorded, bounded retention.
	if single.Recorded() < 500 {
		t.Fatalf("recorded = %d, want >= 500", single.Recorded())
	}
	if single.Len() > cfg.Ring+cfg.Reservoir {
		t.Fatalf("retained %d spans, bound is %d", single.Len(), cfg.Ring+cfg.Reservoir)
	}
}

func TestFlightRecorderReservoirSeedDeterminism(t *testing.T) {
	run := func(seed uint64) []Span {
		tr := NewShardTracer(0)
		tr.SetFlightRecorder(RecorderConfig{Reservoir: 8, Seed: seed})
		recordFRLoad(300, func(int) *Tracer { return tr })
		tr.Flush(1000)
		return tr.Spans()
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed, different sample sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("reservoir sample identical under different seeds — seed is not driving selection")
	}
}

func TestFlightRecorderRingKeepsMostRecent(t *testing.T) {
	tr := NewTracer()
	tr.SetFlightRecorder(RecorderConfig{Ring: 4})
	tk := tr.Track("t")
	for i := 0; i < 20; i++ {
		tr.End(tr.Begin(tk, "s", "c", 0, float64(i)), float64(i)+0.5)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := float64(16 + i); sp.Start != want {
			t.Fatalf("ring span %d starts at %g, want %g (most recent 4)", i, sp.Start, want)
		}
	}
	if tr.Recorded() != 20 {
		t.Fatalf("recorded = %d, want 20", tr.Recorded())
	}
}

func TestFlightRecorderSlotReuseRejectsStaleEnd(t *testing.T) {
	tr := NewTracer()
	tr.SetFlightRecorder(RecorderConfig{Ring: 8})
	tk := tr.Track("t")
	id1 := tr.Begin(tk, "a", "c", 0, 1)
	tr.End(id1, 2)
	id2 := tr.Begin(tk, "b", "c", 0, 3) // reuses id1's slot with a new generation
	if id1 == id2 {
		t.Fatal("slot reuse produced a duplicate id")
	}
	tr.End(id1, 99) // stale: must not close id2's span
	tr.End(id2, 4)
	for _, sp := range tr.Spans() {
		if sp.Name == "b" && sp.End != 4 {
			t.Fatalf("stale End corrupted reused slot: %+v", sp)
		}
	}
}

func TestSetFlightRecorderRequiresFreshTracer(t *testing.T) {
	tr := NewTracer()
	tr.End(tr.Begin(tr.Track("t"), "s", "c", 0, 1), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("SetFlightRecorder on a used tracer did not panic")
		}
	}()
	tr.SetFlightRecorder(RecorderConfig{Ring: 4})
}

// Package trace provides the observation plane used by every experiment:
// counters, latency histograms, time-stamped series, and an availability
// meter implementing Gray & Reuter's definition quoted by the paper — "the
// fraction of the offered load that is processed with acceptable response
// times".
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta; negative deltas panic since counters are monotonic.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Histogram accumulates values into logarithmic buckets spanning
// [min, max). Values below the first boundary go to bucket 0; values at or
// above the last go to the overflow bucket. It also tracks exact count,
// sum, min and max so means are not quantized.
type Histogram struct {
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
	nan    uint64
}

// NewHistogram builds a histogram with the given number of logarithmic
// buckets between lo and hi (both positive, lo < hi).
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if lo <= 0 || hi <= lo || buckets < 1 {
		panic("trace: NewHistogram requires 0 < lo < hi and buckets >= 1")
	}
	bounds := make([]float64, buckets+1)
	ratio := math.Pow(hi/lo, 1/float64(buckets))
	bounds[0] = lo
	for i := 1; i <= buckets; i++ {
		bounds[i] = bounds[i-1] * ratio
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, buckets+2), // +under, +overflow
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records a value. NaN values are counted separately (see
// NaNCount) and excluded from the buckets, count, sum, min and max: a
// NaN would otherwise poison the running sum forever while landing
// silently in a boundary bucket.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		h.nan++
		return
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	// idx is the number of boundaries <= v is inserted before; bucket 0 is
	// the underflow bucket.
	h.counts[idx]++
}

// Count returns the number of non-NaN observations.
func (h *Histogram) Count() uint64 { return h.count }

// NaNCount returns the number of NaN observations, which are tracked
// apart from every other statistic.
func (h *Histogram) NaNCount() uint64 { return h.nan }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact mean of observations, or NaN when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or +Inf when empty.
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation, or -Inf when empty.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an estimate of the q-quantile from bucket boundaries.
// Within a bucket it interpolates linearly; results are exact at bucket
// edges. Returns NaN when empty or q outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	target := q * float64(h.count)
	cum := 0.0
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			lo, hi := h.bucketEdges(i)
			if math.IsInf(lo, -1) {
				return h.min
			}
			if math.IsInf(hi, 1) {
				return h.max
			}
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.max
}

// bucketEdges returns the value range covered by counts[i].
func (h *Histogram) bucketEdges(i int) (lo, hi float64) {
	switch {
	case i == 0:
		return math.Inf(-1), h.bounds[0]
	case i == len(h.counts)-1:
		return h.bounds[len(h.bounds)-1], math.Inf(1)
	default:
		return h.bounds[i-1], h.bounds[i]
	}
}

// String renders a compact summary.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram(empty)"
	}
	return fmt.Sprintf("histogram(n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g)",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
}

// Series is a time-stamped sequence of samples, e.g. a component's
// observed rate over time.
type Series struct {
	Times  []float64
	Values []float64
}

// Add appends a sample. Timestamps must be non-decreasing; violations
// panic because they always indicate a recording bug. A sample at the
// same timestamp as the previous one overwrites it (latest wins), so
// memory and At's lookup stay O(distinct timestamps) even when a probe
// fires many times at one instant.
func (s *Series) Add(t, v float64) {
	if n := len(s.Times); n > 0 {
		last := s.Times[n-1]
		if t < last {
			panic(fmt.Sprintf("trace: series timestamp %v before %v", t, last))
		}
		if t == last {
			s.Values[n-1] = v
			return
		}
	}
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Times) }

// At returns the latest value recorded at or before t, or NaN if none.
func (s *Series) At(t float64) float64 {
	idx := sort.SearchFloat64s(s.Times, t)
	// idx is the first index with Times[idx] >= t; step back unless exact.
	// Timestamps are strictly increasing (Add collapses duplicates), so no
	// equal-run scan is needed.
	if idx < len(s.Times) && s.Times[idx] == t {
		return s.Values[idx]
	}
	if idx == 0 {
		return math.NaN()
	}
	return s.Values[idx-1]
}

// Last returns the most recent value, or NaN when empty.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	return s.Values[len(s.Values)-1]
}

// Sparkline renders the series as a fixed-width unicode strip, handy in
// CLI output.
func (s *Series) Sparkline(width int) string {
	if len(s.Values) == 0 || width <= 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	// NaN samples must not enter the min/max scan: a single NaN would
	// poison every comparison and flatten the scaling. They render as
	// gaps instead.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s.Values {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		idx := 0
		if width > 1 {
			// Include both endpoints so the first and last samples render.
			idx = i * (len(s.Values) - 1) / (width - 1)
		}
		v := s.Values[idx]
		if math.IsNaN(v) {
			b.WriteRune(' ')
			continue
		}
		level := 0
		if hi > lo {
			level = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		b.WriteRune(ramp[level])
	}
	return b.String()
}

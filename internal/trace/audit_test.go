package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestEvidenceString(t *testing.T) {
	e := Evidence{
		Signal: "window-median", Observed: 31.2,
		RefKind: "peer-median", Reference: 98.4,
		Threshold: 0.5, Margin: 31.2 - 0.5*98.4,
	}
	s := e.String()
	for _, want := range []string{"window-median=31.2", "0.50 x peer-median=98.4", "margin -18"} {
		if !strings.Contains(s, want) {
			t.Fatalf("evidence %q missing %q", s, want)
		}
	}
	if (Evidence{}).String() != "no evidence" {
		t.Fatalf("empty evidence = %q", (Evidence{}).String())
	}
}

func TestAuditLogNilSafe(t *testing.T) {
	var l *AuditLog
	l.Add(AuditRecord{})
	if l.Len() != 0 || l.Records() != nil {
		t.Fatal("nil log not inert")
	}
}

func TestAuditLogWriteText(t *testing.T) {
	l := NewAuditLog()
	l.Add(AuditRecord{
		Time: 412.0, Component: "disk-3", Detector: "window",
		Kind: AuditTransition, From: "nominal", To: "perf-faulty",
		Streak: 3, Need: 3,
		Evidence: Evidence{Signal: "window-median", Observed: 31.2, RefKind: "peer-median", Reference: 98.4, Threshold: 0.5, Margin: -18},
	})
	l.Add(AuditRecord{
		Time: 410.0, Component: "disk-3", Detector: "window",
		Kind: AuditDebounce, From: "nominal", To: "perf-faulty", Streak: 1, Need: 3,
	})
	l.Add(AuditRecord{
		Time: 500.0, Component: "disk-3", Detector: "spec",
		Kind: AuditLatch, From: "perf-faulty", To: "absolute-faulty",
	})
	var buf bytes.Buffer
	if err := l.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"t=   412.0s", "disk-3", "nominal -> perf-faulty (streak 3/3)",
		"suppressed (streak 1/3)", "LATCHED", "[window]", "window-median=31.2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestAuditLogWriteTextEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewAuditLog().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no verdict transitions") {
		t.Fatalf("empty timeline = %q", buf.String())
	}
}

func TestAuditLogWriteJSON(t *testing.T) {
	l := NewAuditLog()
	l.Add(AuditRecord{
		Time: 1.5, Component: "c", Detector: "ewma", Kind: AuditTransition,
		From: "nominal", To: "perf-faulty",
		Evidence: Evidence{Signal: "ewma-fast", Observed: math.NaN(), Reference: math.Inf(1)},
	})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("invalid JSON (%v):\n%s", err, buf.String())
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	ev := recs[0]["evidence"].(map[string]any)
	if ev["observed"] != nil || ev["reference"] != nil {
		t.Fatalf("NaN/Inf must export as null: %+v", ev)
	}
	if recs[0]["component"] != "c" || recs[0]["kind"] != "transition" {
		t.Fatalf("record = %+v", recs[0])
	}

	// Empty log is a valid empty array.
	buf.Reset()
	if err := NewAuditLog().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("empty JSON = %q", buf.String())
	}
}

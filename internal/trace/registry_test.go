package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("reissues", L("pair", "0"))
	c1.Inc()
	c2 := r.Counter("reissues", L("pair", "0"))
	if c1 != c2 {
		t.Fatal("same name+labels gave distinct counters")
	}
	if c2.Value() != 1 {
		t.Fatalf("value = %d", c2.Value())
	}
	other := r.Counter("reissues", L("pair", "1"))
	if other == c1 {
		t.Fatal("distinct labels gave the same counter")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestRegistryLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	a := r.Series("rate", L("run", "0"), L("pair", "1"))
	b := r.Series("rate", L("pair", "1"), L("run", "0"))
	if a != b {
		t.Fatal("label order changed identity")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Series("x")
}

func TestRegistryNilHandsOutUnregisteredInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	c.Inc()
	s := r.Series("b")
	s.Add(1, 2)
	h := r.Histogram("c", 1, 10, 4)
	h.Observe(5)
	m := r.Meter("d", 1)
	m.Offered()
	if r.Len() != 0 {
		t.Fatal("nil registry registered something")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil registry JSON invalid: %v", err)
	}
	buf.Reset()
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "kind,name,labels,field,time,value") {
		t.Fatalf("nil registry CSV = %q", buf.String())
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("reissues", L("policy", "adaptive")).Add(3)
	s := r.Series("rate", L("pair", "0"))
	s.Add(0, 100)
	s.Add(1, 90)
	r.Histogram("latency", 0.001, 10, 20).Observe(0.5)
	m := r.Meter("avail", 0.5, L("design", "least-queue"))
	m.Offered()
	m.Completed(0.1)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Value  uint64            `json:"value"`
		} `json:"counters"`
		Histograms []struct {
			Name  string  `json:"name"`
			Count uint64  `json:"count"`
			Mean  float64 `json:"mean"`
		} `json:"histograms"`
		Series []struct {
			Name   string    `json:"name"`
			Times  []float64 `json:"times"`
			Values []float64 `json:"values"`
		} `json:"series"`
		Meters []struct {
			Name         string  `json:"name"`
			Availability float64 `json:"availability"`
		} `json:"meters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON (%v):\n%s", err, buf.String())
	}
	if len(doc.Counters) != 1 || doc.Counters[0].Value != 3 || doc.Counters[0].Labels["policy"] != "adaptive" {
		t.Fatalf("counters = %+v", doc.Counters)
	}
	if len(doc.Series) != 1 || len(doc.Series[0].Times) != 2 || doc.Series[0].Values[1] != 90 {
		t.Fatalf("series = %+v", doc.Series)
	}
	if len(doc.Histograms) != 1 || doc.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v", doc.Histograms)
	}
	if len(doc.Meters) != 1 || doc.Meters[0].Availability != 1 {
		t.Fatalf("meters = %+v", doc.Meters)
	}
}

func TestRegistryWriteCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("n", L("k", "v")).Inc()
	s := r.Series("rate")
	s.Add(0.5, 10)
	s.Add(1.5, 20)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "kind,name,labels,field,time,value" {
		t.Fatalf("header = %q", lines[0])
	}
	want := []string{
		"counter,n,k=v,value,,1",
		"series,rate,,sample,0.5,10",
		"series,rate,,sample,1.5,20",
	}
	if len(lines) != 1+len(want) {
		t.Fatalf("rows:\n%s", buf.String())
	}
	for i, w := range want {
		if lines[i+1] != w {
			t.Fatalf("row %d = %q, want %q", i+1, lines[i+1], w)
		}
	}
}

func TestRegistryExportDeterministic(t *testing.T) {
	build := func(order []int) (*bytes.Buffer, *bytes.Buffer) {
		r := NewRegistry()
		// Register in varying order; exports sort by key.
		for _, i := range order {
			switch i {
			case 0:
				r.Counter("a", L("x", "1")).Inc()
			case 1:
				r.Counter("b").Add(2)
			case 2:
				r.Series("s", L("x", "2")).Add(1, 1)
			}
		}
		var j, c bytes.Buffer
		if err := r.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return &j, &c
	}
	j1, c1 := build([]int{0, 1, 2})
	j2, c2 := build([]int{2, 1, 0})
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatalf("JSON depends on registration order:\n%s\nvs\n%s", j1, j2)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatalf("CSV depends on registration order:\n%s\nvs\n%s", c1, c2)
	}
}

func TestCSVFieldQuoting(t *testing.T) {
	if got := csvField("plain"); got != "plain" {
		t.Fatalf("plain = %q", got)
	}
	if got := csvField(`a,b"c`); got != `"a,b""c"` {
		t.Fatalf("quoted = %q", got)
	}
}

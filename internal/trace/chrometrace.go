package trace

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// WriteChromeTrace exports the recorded spans as Chrome trace-event JSON
// (the "JSON Array Format" with a displayTimeUnit wrapper), loadable in
// Perfetto or chrome://tracing.
//
// Layout: one process (pid 1) with one thread per track; thread names are
// emitted as ph:"M" metadata. Intervals export as ph:"X" complete events,
// instants as ph:"i" thread-scoped instant events. Times are seconds in
// the tracer's base, exported as microseconds. Parent links and integer
// payloads ride in args (span/parent ids), which keeps the format trivial
// and byte-deterministic — no flow-event binding steps.
//
// Output is byte-deterministic for a given span sequence: floats are
// formatted with strconv ('f', shortest), never scientific notation, and
// fields are emitted in a fixed order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	sep := func() {
		if first {
			bw.WriteString("\n")
			first = false
		} else {
			bw.WriteString(",\n")
		}
	}
	var tracks []string
	var spans []Span
	if t != nil {
		tracks = t.Tracks()
		spans = t.Spans()
	}
	for i, name := range tracks {
		sep()
		bw.WriteString(`{"ph":"M","pid":1,"tid":`)
		bw.WriteString(strconv.Itoa(i + 1))
		bw.WriteString(`,"name":"thread_name","args":{"name":`)
		bw.WriteString(strconv.Quote(name))
		bw.WriteString(`}}`)
	}
	for _, s := range spans {
		sep()
		if s.Instant {
			bw.WriteString(`{"ph":"i","pid":1,"tid":`)
			bw.WriteString(strconv.Itoa(int(s.Track) + 1))
			bw.WriteString(`,"ts":`)
			writeMicros(bw, s.Start)
			bw.WriteString(`,"s":"t","name":`)
			bw.WriteString(strconv.Quote(s.Name))
			bw.WriteString(`,"cat":`)
			bw.WriteString(strconv.Quote(s.Cat))
			bw.WriteString(`}`)
			continue
		}
		end := s.End
		if math.IsNaN(end) {
			end = s.Start // unflushed open span: export as zero-duration
		}
		bw.WriteString(`{"ph":"X","pid":1,"tid":`)
		bw.WriteString(strconv.Itoa(int(s.Track) + 1))
		bw.WriteString(`,"ts":`)
		writeMicros(bw, s.Start)
		bw.WriteString(`,"dur":`)
		writeMicros(bw, end-s.Start)
		bw.WriteString(`,"name":`)
		bw.WriteString(strconv.Quote(s.Name))
		bw.WriteString(`,"cat":`)
		bw.WriteString(strconv.Quote(s.Cat))
		bw.WriteString(`,"args":{"span":`)
		bw.WriteString(strconv.FormatInt(int64(s.ID), 10))
		if s.Parent != 0 {
			bw.WriteString(`,"parent":`)
			bw.WriteString(strconv.FormatInt(int64(s.Parent), 10))
		}
		if s.HasArg {
			bw.WriteString(`,"arg":`)
			bw.WriteString(strconv.FormatInt(s.Arg, 10))
		}
		bw.WriteString(`}}`)
	}
	if !first {
		bw.WriteString("\n")
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// writeMicros renders seconds as microseconds in plain decimal notation.
// Negative near-zero durations (float cancellation) clamp to 0.
func writeMicros(bw *bufio.Writer, seconds float64) {
	us := seconds * 1e6
	if us < 0 {
		us = 0
	}
	bw.WriteString(strconv.FormatFloat(us, 'f', -1, 64))
}

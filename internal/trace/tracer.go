package trace

import (
	"math"
	"sync"
)

// SpanID identifies one recorded span. The zero value means "no span" and
// is safe to End, parent from, or carry through request structs: every
// Tracer method treats it as a no-op, so call sites only need a single
// nil-tracer check to stay allocation-free when tracing is off.
//
// A shard collector (NewShardTracer) qualifies its ids with the shard
// index in the bits above localIDBits, so ids allocated by different
// shards never collide and Merge can remap parent links globally. Plain
// tracers keep the qualifier zero, leaving their ids — and every golden
// artifact recorded through them — unchanged.
type SpanID int64

const (
	// localIDBits is the width of a collector's local span index; the
	// shard qualifier occupies the bits above it.
	localIDBits = 40
	localIDMask = SpanID(1)<<localIDBits - 1
)

// TrackID identifies one timeline (a station, a disk, a cluster worker) in
// the exported trace. Tracks are registered once per component via Track
// and cached by the component, so the per-span hot path never touches the
// name table.
type TrackID int32

// Span is one recorded interval (or instant) on a track, in the tracer's
// time base — virtual seconds for the simulator, wall-clock seconds since
// the tracer's epoch for the cluster runtime.
type Span struct {
	ID     SpanID
	Parent SpanID // 0 = no parent
	Track  TrackID
	Name   string
	Cat    string
	Start  float64
	End    float64 // NaN while the span is still open
	Arg    int64   // caller payload (block number, task id); valid when HasArg
	HasArg bool
	// Instant marks a zero-duration marker event rather than an interval.
	Instant bool
}

// Open reports whether the span has not been ended yet.
func (s Span) Open() bool { return !s.Instant && math.IsNaN(s.End) }

// Tracer records causal spans. It is safe for concurrent use (the
// wall-clock cluster workers record from many goroutines); the simulator
// paths are single-threaded and pay one uncontended lock per span.
//
// All methods are nil-receiver safe as a backstop, but hot paths should
// guard with an explicit `if tracer != nil` so the disabled path costs one
// predictable branch and zero allocations.
type Tracer struct {
	mu      sync.Mutex
	spans   []Span
	tracks  []string
	trackIx map[string]TrackID
	// offset is added to every recorded time: experiments that run several
	// independent simulations (each restarting at t=0) rebase between runs
	// so the exported timeline lays the runs out end to end.
	offset float64
	// qual is OR-ed into every allocated span id: zero for a plain tracer,
	// (shard+1)<<localIDBits for a per-shard collector.
	qual SpanID
	// fr, when non-nil, puts the tracer in flight-recorder mode: open
	// spans are tracked exactly, completed spans pass through a bounded
	// deterministic selection instead of being retained wholesale.
	fr *flightRecorder
}

// NewTracer builds an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{trackIx: make(map[string]TrackID)}
}

// NewShardTracer builds a per-shard collector: a tracer whose span ids
// carry shard+1 in their high bits, so ids allocated concurrently by
// different shards' collectors are globally unique and Merge can stitch
// parent links across them.
func NewShardTracer(shard int) *Tracer {
	if shard < 0 {
		panic("trace: shard index must be non-negative")
	}
	t := NewTracer()
	t.qual = SpanID(shard+1) << localIDBits
	return t
}

// Track returns the track id for the given name, registering it on first
// use. Equal names share a track, so a device and its underlying station
// can interleave spans on one timeline. On a nil tracer it returns 0.
func (t *Tracer) Track(name string) TrackID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trackLocked(name)
}

// trackLocked is Track with t.mu already held.
func (t *Tracer) trackLocked(name string) TrackID {
	if id, ok := t.trackIx[name]; ok {
		return id
	}
	id := TrackID(len(t.tracks))
	t.tracks = append(t.tracks, name)
	t.trackIx[name] = id
	return id
}

// Tracks returns the registered track names in registration order.
func (t *Tracer) Tracks() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.tracks))
	copy(out, t.tracks)
	return out
}

// Begin opens a span at the given time and returns its id. parent may be
// 0 for a root span.
func (t *Tracer) Begin(track TrackID, name, cat string, parent SpanID, start float64) SpanID {
	if t == nil {
		return 0
	}
	return t.begin(track, name, cat, parent, start, 0, false)
}

// BeginArg is Begin with an integer payload (a block number, a task id)
// exported in the span's args.
func (t *Tracer) BeginArg(track TrackID, name, cat string, parent SpanID, start float64, arg int64) SpanID {
	if t == nil {
		return 0
	}
	return t.begin(track, name, cat, parent, start, arg, true)
}

func (t *Tracer) begin(track TrackID, name, cat string, parent SpanID, start float64, arg int64, hasArg bool) SpanID {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fr != nil {
		return t.qual | t.fr.begin(track, name, cat, start+t.offset, arg, hasArg)
	}
	id := t.qual | SpanID(len(t.spans)+1)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Track: track, Name: name, Cat: cat,
		Start: start + t.offset, End: math.NaN(), Arg: arg, HasArg: hasArg,
	})
	return id
}

// End closes the span at the given time. Ending span 0, an unknown span,
// or an already-closed span is a no-op, so completion callbacks never need
// to know whether tracing was on when their request was issued.
func (t *Tracer) End(id SpanID, end float64) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id&^localIDMask != t.qual {
		// Another collector's id: never ours to close.
		return
	}
	if t.fr != nil {
		t.fr.end(id&localIDMask, end+t.offset, t.tracks)
		return
	}
	i := int(id&localIDMask) - 1
	if i < 0 || i >= len(t.spans) || !math.IsNaN(t.spans[i].End) {
		return
	}
	t.spans[i].End = end + t.offset
}

// Instant records a zero-duration marker event (a failure, a repair, a
// producer stall) on the track.
func (t *Tracer) Instant(track TrackID, name, cat string, at float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	at += t.offset
	if t.fr != nil {
		t.fr.instant(track, name, cat, at, t.tracks)
		return
	}
	id := t.qual | SpanID(len(t.spans)+1)
	t.spans = append(t.spans, Span{
		ID: id, Track: track, Name: name, Cat: cat,
		Start: at, End: at, Instant: true,
	})
}

// Flush closes every still-open span at the given time — requests
// abandoned by a failing station, or in flight when a run halts, would
// otherwise export with an undefined duration.
func (t *Tracer) Flush(now float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := now + t.offset
	if t.fr != nil {
		t.fr.flush(end, t.tracks)
		return
	}
	for i := range t.spans {
		if math.IsNaN(t.spans[i].End) {
			t.spans[i].End = end
		}
	}
}

// Rebase shifts the time base for all subsequent spans forward to at
// (in already-rebased trace time). Experiments running several
// simulations in sequence call Flush(end) then Rebase(end+gap) so each
// sub-run occupies its own stretch of the exported timeline instead of
// overlaying the others at t=0.
func (t *Tracer) Rebase(at float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.offset = at
}

// Len returns the number of retained spans (including instants): every
// recorded span for a plain tracer, the bounded selection for a
// flight-recorder tracer (see Recorded for the exact recorded count).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fr != nil {
		return len(t.fr.snapshot(t.tracks))
	}
	return len(t.spans)
}

// Spans returns a copy of the retained spans: record order for a plain
// tracer; for a flight-recorder tracer, the retained selection in
// canonical (start, track name, begin sequence) order with dense ids and
// parent links cut (sampling cannot promise the parent survived).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fr != nil {
		ents := t.fr.snapshot(t.tracks)
		out := make([]Span, len(ents))
		for i, e := range ents {
			sp := e.span
			sp.ID = SpanID(i + 1)
			sp.Parent = 0
			out[i] = sp
		}
		return out
	}
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Recorded returns the total spans and instants ever recorded, counting
// spans a flight recorder later dropped. Equal to Len for a plain tracer.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fr != nil {
		return t.fr.recorded
	}
	return uint64(len(t.spans))
}

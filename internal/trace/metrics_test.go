package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0.001, 1000, 30)
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 10 {
		t.Fatalf("count/sum = %d/%v", h.Count(), h.Sum())
	}
	if h.Mean() != 2.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 4 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

// Regression: a NaN observation used to land in a boundary bucket while
// poisoning the running sum (and thus Mean) forever, yet leaving min/max
// untouched — an inconsistent record. NaNs are now counted apart and
// excluded from every other statistic.
func TestHistogramNaNObservations(t *testing.T) {
	h := NewHistogram(0.001, 1000, 30)
	h.Observe(1)
	h.Observe(math.NaN())
	h.Observe(3)
	if h.NaNCount() != 1 {
		t.Fatalf("NaNCount = %d, want 1", h.NaNCount())
	}
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2 (NaN excluded)", h.Count())
	}
	if h.Sum() != 4 || h.Mean() != 2 {
		t.Fatalf("sum/mean = %v/%v, want 4/2", h.Sum(), h.Mean())
	}
	if h.Min() != 1 || h.Max() != 3 {
		t.Fatalf("min/max = %v/%v, want 1/3", h.Min(), h.Max())
	}
	var bucketed uint64
	for _, c := range h.counts {
		bucketed += c
	}
	if bucketed != 2 {
		t.Fatalf("bucketed observations = %d, want 2 (NaN kept out of buckets)", bucketed)
	}
	if q := h.Quantile(0.5); math.IsNaN(q) {
		t.Fatalf("median after NaN = %v, want a real value", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 10, 4)
	if !math.IsNaN(h.Mean()) || !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram stats not NaN")
	}
	if h.String() != "histogram(empty)" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h := NewHistogram(1, 100, 10)
	h.Observe(0.5)  // underflow
	h.Observe(5000) // overflow
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0.5 || h.Max() != 5000 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Quantiles at the extremes fall back to exact min/max.
	if h.Quantile(0) != 0.5 {
		t.Fatalf("q0 = %v, want 0.5", h.Quantile(0))
	}
	if h.Quantile(1) != 5000 {
		t.Fatalf("q1 = %v, want 5000", h.Quantile(1))
	}
}

func TestHistogramQuantileApproximation(t *testing.T) {
	h := NewHistogram(0.1, 1000, 200)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	p50 := h.Quantile(0.5)
	if p50 < 400 || p50 > 600 {
		t.Fatalf("p50 = %v, want ~500", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900 || p99 > 1050 {
		t.Fatalf("p99 = %v, want ~990", p99)
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	h := NewHistogram(0.01, 100, 40)
	f := func(raw []uint16, a, b uint8) bool {
		for _, v := range raw {
			h.Observe(float64(v%1000) + 0.5)
		}
		if h.Count() == 0 {
			return true
		}
		q1 := float64(a%101) / 100
		q2 := float64(b%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return h.Quantile(q1) <= h.Quantile(q2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramInvalidArgsPanics(t *testing.T) {
	cases := []struct {
		lo, hi float64
		n      int
	}{
		{0, 10, 5}, {5, 5, 5}, {1, 10, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v,%v,%d) did not panic", c.lo, c.hi, c.n)
				}
			}()
			NewHistogram(c.lo, c.hi, c.n)
		}()
	}
}

func TestSeriesAddAndAt(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(4, 40)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if got := s.At(2); got != 20 {
		t.Fatalf("At(2) = %v", got)
	}
	if got := s.At(3); got != 20 {
		t.Fatalf("At(3) = %v, want step value 20", got)
	}
	if got := s.At(100); got != 40 {
		t.Fatalf("At(100) = %v", got)
	}
	if !math.IsNaN(s.At(0.5)) {
		t.Fatal("At before first sample not NaN")
	}
	if s.Last() != 40 {
		t.Fatalf("Last = %v", s.Last())
	}
}

func TestSeriesDuplicateTimestampTakesLatest(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(1, 11)
	if got := s.At(1); got != 11 {
		t.Fatalf("At(1) = %v, want 11 (latest)", got)
	}
}

// Regression: equal-timestamp samples used to append unboundedly, so a
// probe firing many times at one instant grew memory and made At's
// equal-run scan O(duplicates). Add now collapses them in place.
func TestSeriesDuplicateTimestampsCollapse(t *testing.T) {
	var s Series
	s.Add(0, 1)
	for i := 0; i < 1000; i++ {
		s.Add(5, float64(i))
	}
	s.Add(7, 42)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicates collapsed)", s.Len())
	}
	if got := s.At(5); got != 999 {
		t.Fatalf("At(5) = %v, want 999 (latest duplicate)", got)
	}
	if got := s.At(6); got != 999 {
		t.Fatalf("At(6) = %v, want 999", got)
	}
	if s.Last() != 42 {
		t.Fatalf("Last = %v", s.Last())
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	var s Series
	s.Add(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	s.Add(4, 2)
}

func TestSeriesEmptyLast(t *testing.T) {
	var s Series
	if !math.IsNaN(s.Last()) {
		t.Fatal("empty Last not NaN")
	}
}

func TestSparkline(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i))
	}
	sl := s.Sparkline(8)
	if len([]rune(sl)) != 8 {
		t.Fatalf("sparkline width = %d, want 8", len([]rune(sl)))
	}
	if !strings.ContainsRune(sl, '▁') || !strings.ContainsRune(sl, '█') {
		t.Fatalf("sparkline %q missing extremes", sl)
	}
	var empty Series
	if empty.Sparkline(8) != "" {
		t.Fatal("empty sparkline not empty string")
	}
}

// Regression: a single NaN sample used to poison the min/max scaling scan
// (every comparison against NaN is false), flattening the whole strip.
// NaNs now skip the scan and render as gaps.
func TestSparklineNaNSamples(t *testing.T) {
	var s Series
	s.Add(0, 0)
	s.Add(1, math.NaN())
	s.Add(2, 2)
	s.Add(3, 4)
	sl := []rune(s.Sparkline(4))
	if len(sl) != 4 {
		t.Fatalf("width = %d", len(sl))
	}
	if sl[1] != ' ' {
		t.Fatalf("NaN sample rendered %q, want gap", sl[1])
	}
	// Scaling must still span the real values: first is the ramp bottom,
	// last the ramp top.
	if sl[0] != '▁' || sl[3] != '█' {
		t.Fatalf("sparkline %q lost scaling to NaN", string(sl))
	}
}

func TestSparklineAllNaN(t *testing.T) {
	var s Series
	s.Add(0, math.NaN())
	s.Add(1, math.NaN())
	if got := s.Sparkline(3); got != "   " {
		t.Fatalf("all-NaN sparkline = %q, want gaps", got)
	}
}

func TestSparklineConstantSeries(t *testing.T) {
	var s Series
	s.Add(0, 5)
	s.Add(1, 5)
	if got := s.Sparkline(4); got != "▁▁▁▁" {
		t.Fatalf("constant sparkline = %q", got)
	}
}

func TestAvailabilityMeter(t *testing.T) {
	a := NewAvailabilityMeter(1.0)
	for i := 0; i < 10; i++ {
		a.Offered()
	}
	for i := 0; i < 6; i++ {
		a.Completed(0.5) // within threshold
	}
	for i := 0; i < 2; i++ {
		a.Completed(3.0) // too slow
	}
	// 2 requests never complete at all.
	if got := a.Availability(); got != 0.6 {
		t.Fatalf("availability = %v, want 0.6", got)
	}
	if a.OfferedCount() != 10 || a.CompletedCount() != 8 {
		t.Fatalf("offered/completed = %d/%d", a.OfferedCount(), a.CompletedCount())
	}
	if a.Latency().Count() != 8 {
		t.Fatalf("latency count = %d", a.Latency().Count())
	}
	if a.Threshold() != 1.0 {
		t.Fatalf("threshold = %v", a.Threshold())
	}
}

func TestAvailabilityEmptyNaN(t *testing.T) {
	a := NewAvailabilityMeter(1)
	if !math.IsNaN(a.Availability()) {
		t.Fatal("availability with no load not NaN")
	}
}

func TestAvailabilityInvalidThresholdPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero threshold did not panic")
		}
	}()
	NewAvailabilityMeter(0)
}

// Property: availability is always in [0, 1] and decreases (weakly) as the
// threshold tightens over the same completions.
func TestAvailabilityBoundsProperty(t *testing.T) {
	f := func(lats []uint16) bool {
		loose := NewAvailabilityMeter(10)
		tight := NewAvailabilityMeter(1)
		for _, l := range lats {
			lat := float64(l%200) / 10 // 0..19.9
			loose.Offered()
			tight.Offered()
			loose.Completed(lat)
			tight.Completed(lat)
		}
		if len(lats) == 0 {
			return true
		}
		al, at := loose.Availability(), tight.Availability()
		return al >= 0 && al <= 1 && at >= 0 && at <= 1 && at <= al
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

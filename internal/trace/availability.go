package trace

import "math"

// AvailabilityMeter implements the paper's availability metric (Section
// 3.3, after Gray & Reuter): the fraction of offered load processed with
// acceptable response time. Every offered request is recorded; a request
// is "available" only if it completed within the threshold. Requests that
// never complete (dropped by a failed component) count against
// availability.
type AvailabilityMeter struct {
	threshold float64
	offered   uint64
	completed uint64
	within    uint64
	latency   *Histogram
}

// NewAvailabilityMeter builds a meter with the given acceptable-response
// threshold in seconds.
func NewAvailabilityMeter(threshold float64) *AvailabilityMeter {
	if threshold <= 0 || math.IsNaN(threshold) {
		panic("trace: availability threshold must be positive")
	}
	return &AvailabilityMeter{
		threshold: threshold,
		latency:   NewHistogram(threshold/1000, threshold*1000, 60),
	}
}

// Offered records that a request was submitted.
func (a *AvailabilityMeter) Offered() { a.offered++ }

// Completed records a request finishing with the given response time.
func (a *AvailabilityMeter) Completed(latency float64) {
	a.completed++
	a.latency.Observe(latency)
	if latency <= a.threshold {
		a.within++
	}
}

// Threshold returns the acceptable-response threshold.
func (a *AvailabilityMeter) Threshold() float64 { return a.threshold }

// OfferedCount returns the number of offered requests.
func (a *AvailabilityMeter) OfferedCount() uint64 { return a.offered }

// CompletedCount returns the number of completed requests.
func (a *AvailabilityMeter) CompletedCount() uint64 { return a.completed }

// Availability returns within-threshold completions divided by offered
// load, or NaN if nothing was offered.
func (a *AvailabilityMeter) Availability() float64 {
	if a.offered == 0 {
		return math.NaN()
	}
	return float64(a.within) / float64(a.offered)
}

// Latency exposes the completion-latency histogram.
func (a *AvailabilityMeter) Latency() *Histogram { return a.latency }

package trace

import (
	"fmt"
	"sort"
)

// This file is the deterministic merge layer: per-shard collectors
// (tracers, registries, audit logs) fold into one destination collector
// whose exported artifacts are byte-identical at any shard count. The
// contract every merge follows:
//
//   - ordering keys are placement-invariant — start time, track name,
//     per-track begin sequence, metric key, (time, component) — never
//     record order, shard index, or map iteration;
//   - numeric folds are exact integer/float accumulations in canonical
//     key order, so float rounding cannot depend on shard count;
//   - merging N parts into an empty destination commutes with having
//     recorded everything on one collector.

// sortEntries orders retained completions canonically: by start time,
// then track name, then the track's begin sequence, then merge epoch.
// Each track records on exactly one collector per sub-run, so the key is
// a strict total order over any one merge batch.
func sortEntries(ents []frEntry) {
	sort.Slice(ents, func(i, j int) bool {
		a, b := ents[i], ents[j]
		if a.span.Start != b.span.Start {
			return a.span.Start < b.span.Start
		}
		if a.name != b.name {
			return a.name < b.name
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.epoch < b.epoch
	})
}

// tracerExport is one collector's contribution to a merge: its retained
// entries keyed for canonical ordering, its track-name table, and its
// exact recorded count.
type tracerExport struct {
	ents     []frEntry
	tracks   []string
	recorded uint64
}

// exportEntries snapshots the tracer's retained spans with their
// placement-invariant merge keys. A plain tracer derives each span's
// per-track begin sequence lazily here (record order within one track is
// the begin order), so the recording hot path pays nothing for it.
func (t *Tracer) exportEntries() tracerExport {
	t.mu.Lock()
	defer t.mu.Unlock()
	tracks := make([]string, len(t.tracks))
	copy(tracks, t.tracks)
	if t.fr != nil {
		return tracerExport{ents: t.fr.snapshot(t.tracks), tracks: tracks, recorded: t.fr.recorded}
	}
	ents := make([]frEntry, len(t.spans))
	seqs := make([]uint64, len(t.tracks))
	for i, sp := range t.spans {
		seq := seqs[sp.Track]
		seqs[sp.Track] = seq + 1
		ents[i] = frEntry{span: sp, name: t.tracks[sp.Track], seq: seq}
	}
	return tracerExport{ents: ents, tracks: tracks, recorded: uint64(len(t.spans))}
}

// Merge folds the parts' spans into t in canonical (start, track name,
// begin sequence) order. Track names are unioned into t's table in
// sorted order; span ids are reissued densely under t's shard qualifier
// with parent links remapped across parts (a parent that was never
// retained becomes 0). Parts should be Flushed first — an open span
// merges with its NaN end time intact.
//
// A flight-recorder destination instead feeds every part entry through
// its own bounded selection under a fresh merge epoch, adding the parts'
// exact recorded counts to its own; because the selection is a pure
// function of (bounds, seed, keys), merging per-shard recorders
// reproduces the single-shard selection byte for byte.
//
// The parts are left untouched; merging a nil part or t itself is a
// no-op.
func (t *Tracer) Merge(parts ...*Tracer) {
	if t == nil {
		return
	}
	exports := make([]tracerExport, 0, len(parts))
	total := 0
	for _, p := range parts {
		if p == nil || p == t {
			continue
		}
		ex := p.exportEntries()
		exports = append(exports, ex)
		total += len(ex.ents)
	}
	nameSet := make(map[string]bool)
	for _, ex := range exports {
		for _, n := range ex.tracks {
			nameSet[n] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	all := make([]frEntry, 0, total)
	for _, ex := range exports {
		all = append(all, ex.ents...)
	}
	sortEntries(all)

	t.mu.Lock()
	defer t.mu.Unlock()
	// Register the union in sorted order even when no spans survived:
	// empty tracks still appear in the exported timeline, and their order
	// must not depend on shard placement.
	for _, n := range names {
		t.trackLocked(n)
	}
	if t.fr != nil {
		t.fr.epoch++
		for _, ex := range exports {
			t.fr.recorded += ex.recorded
		}
		for _, e := range all {
			sp := e.span
			sp.ID, sp.Parent = 0, 0
			sp.Track = t.trackIx[e.name]
			sp.Start += t.offset
			sp.End += t.offset
			t.fr.retire(frEntry{span: sp, name: e.name, seq: e.seq, epoch: t.fr.epoch})
		}
		return
	}
	base := len(t.spans)
	remap := make(map[SpanID]SpanID, len(all))
	for i, e := range all {
		if e.span.ID != 0 {
			remap[e.span.ID] = t.qual | SpanID(base+i+1)
		}
	}
	for i, e := range all {
		sp := e.span
		sp.ID = t.qual | SpanID(base+i+1)
		sp.Parent = remap[e.span.Parent] // zero-value miss cuts the link
		sp.Track = t.trackIx[e.name]
		sp.Start += t.offset
		sp.End += t.offset
		t.spans = append(t.spans, sp)
	}
}

// Merge folds the parts' histograms bucket-by-bucket into h: counts,
// exact count/sum/NaN tallies add, min/max fold (the empty sentinels
// +Inf/-Inf make that safe). The bucket layouts must match — merging
// across layouts would silently misbin, so it panics instead. The
// receiver keeps its own bounds slice; p is read-only.
func (h *Histogram) Merge(p *Histogram) {
	if len(h.bounds) != len(p.bounds) ||
		h.bounds[0] != p.bounds[0] || h.bounds[len(h.bounds)-1] != p.bounds[len(p.bounds)-1] {
		panic(fmt.Sprintf("trace: Histogram.Merge bucket layout mismatch ([%g,%g]x%d vs [%g,%g]x%d)",
			h.bounds[0], h.bounds[len(h.bounds)-1], len(h.bounds)-1,
			p.bounds[0], p.bounds[len(p.bounds)-1], len(p.bounds)-1))
	}
	for i, c := range p.counts {
		h.counts[i] += c
	}
	h.count += p.count
	h.sum += p.sum
	h.nan += p.nan
	if p.min < h.min {
		h.min = p.min
	}
	if p.max > h.max {
		h.max = p.max
	}
}

// clone deep-copies the histogram. Reconstructing the bounds from lo/hi
// would re-run the ratio recurrence and drift in the last ulp, so the
// clone copies the bounds verbatim.
func (h *Histogram) clone() *Histogram {
	c := *h
	c.bounds = append([]float64(nil), h.bounds...)
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}

// merge folds p's samples into s by timestamp (two-pointer). Where both
// sides sampled the same instant the incoming part wins, matching Add's
// latest-wins collapse — the part's sample is the later write in the
// merged timeline.
func (s *Series) merge(p *Series) {
	if p.Len() == 0 {
		return
	}
	if s.Len() == 0 || p.Times[0] > s.Times[len(s.Times)-1] {
		s.Times = append(s.Times, p.Times...)
		s.Values = append(s.Values, p.Values...)
		return
	}
	nt := make([]float64, 0, len(s.Times)+len(p.Times))
	nv := make([]float64, 0, len(s.Values)+len(p.Values))
	i, j := 0, 0
	for i < len(s.Times) && j < len(p.Times) {
		switch {
		case s.Times[i] < p.Times[j]:
			nt = append(nt, s.Times[i])
			nv = append(nv, s.Values[i])
			i++
		case s.Times[i] > p.Times[j]:
			nt = append(nt, p.Times[j])
			nv = append(nv, p.Values[j])
			j++
		default:
			nt = append(nt, p.Times[j])
			nv = append(nv, p.Values[j])
			i++
			j++
		}
	}
	nt = append(nt, s.Times[i:]...)
	nv = append(nv, s.Values[i:]...)
	nt = append(nt, p.Times[j:]...)
	nv = append(nv, p.Values[j:]...)
	s.Times, s.Values = nt, nv
}

// Merge folds p into a: offered/completed/within add and the latency
// histograms merge. The thresholds must agree — "within threshold" is
// not refoldable across different thresholds — so a mismatch panics.
func (a *AvailabilityMeter) Merge(p *AvailabilityMeter) {
	if a.threshold != p.threshold {
		panic(fmt.Sprintf("trace: AvailabilityMeter.Merge threshold mismatch (%g vs %g)", a.threshold, p.threshold))
	}
	a.offered += p.offered
	a.completed += p.completed
	a.within += p.within
	a.latency.Merge(p.latency)
}

// clone deep-copies the meter.
func (a *AvailabilityMeter) clone() *AvailabilityMeter {
	c := *a
	c.latency = a.latency.clone()
	return &c
}

// Merge folds the parts' instruments into r, matching by registry key
// (name plus sorted labels) in each part's sorted-key order: counters
// add, histograms and meters fold exactly (panicking on layout or
// threshold mismatches), series merge by timestamp with the part
// winning ties, and oracle stats overwrite (a conformance row has one
// writer). Instruments new to r are registered with deep copies, never
// aliased, so the parts stay independent. Merging a nil part or r
// itself is a no-op.
func (r *Registry) Merge(parts ...*Registry) {
	if r == nil {
		return
	}
	for _, p := range parts {
		if p == nil || p == r {
			continue
		}
		for _, pe := range p.sortedEntries() {
			r.mergeEntry(pe)
		}
	}
}

func (r *Registry) mergeEntry(pe *entry) {
	e := r.lookup(pe.kind, pe.name, pe.labels)
	switch pe.kind {
	case kindCounter:
		if pe.c == nil {
			return
		}
		if e.c == nil {
			e.c = &Counter{}
		}
		e.c.Add(pe.c.Value())
	case kindHistogram:
		if pe.h == nil {
			return
		}
		if e.h == nil {
			e.h = pe.h.clone()
		} else {
			e.h.Merge(pe.h)
		}
	case kindSeries:
		if pe.s == nil {
			return
		}
		if e.s == nil {
			e.s = &Series{}
		}
		e.s.merge(pe.s)
	case kindMeter:
		if pe.m == nil {
			return
		}
		if e.m == nil {
			e.m = pe.m.clone()
		} else {
			e.m.Merge(pe.m)
		}
	case kindOracle:
		if pe.o == nil {
			return
		}
		if e.o == nil {
			e.o = &OracleStat{}
		}
		*e.o = *pe.o
	}
}

// Merge appends the parts' records to l in one deterministically ordered
// batch: the concatenation is stably sorted by (time, component), so the
// merged trail cannot depend on which shard's detector recorded first.
// Records already in l (written directly by barrier-context or serial
// detectors) keep their position; the merged batch lands after them.
// Times are taken as-is — audit records carry experiment-rebased times
// already. Merging a nil part or l itself is a no-op.
func (l *AuditLog) Merge(parts ...*AuditLog) {
	if l == nil {
		return
	}
	var batch []AuditRecord
	for _, p := range parts {
		if p == nil || p == l {
			continue
		}
		batch = append(batch, p.Records()...)
	}
	if len(batch) == 0 {
		return
	}
	sort.SliceStable(batch, func(i, j int) bool {
		if batch[i].Time != batch[j].Time {
			return batch[i].Time < batch[j].Time
		}
		return batch[i].Component < batch[j].Component
	})
	l.mu.Lock()
	l.recs = append(l.recs, batch...)
	l.mu.Unlock()
}

package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
)

// Evidence captures the quantitative basis for a detector verdict at the
// moment it was issued: the observed signal, the reference it was judged
// against, and the threshold multiplier separating nominal from faulty.
type Evidence struct {
	Signal    string  // what was measured, e.g. "rate", "window-median", "theil-sen-decline"
	Observed  float64 // the measured value
	RefKind   string  // what it was compared to, e.g. "spec-min", "self-baseline", "peer-median"
	Reference float64 // the comparison value
	Threshold float64 // multiplier on Reference that the verdict used
	Margin    float64 // Observed - Threshold*Reference; negative = below the bar
}

// String renders the evidence on one line, e.g.
// "window-median=31.2 vs 0.50 x peer-median=98.4 (margin -17.9)".
func (e Evidence) String() string {
	if e.Signal == "" {
		return "no evidence"
	}
	return fmt.Sprintf("%s=%.4g vs %.2f x %s=%.4g (margin %+.4g)",
		e.Signal, e.Observed, e.Threshold, e.RefKind, e.Reference, e.Margin)
}

// Audit record kinds.
const (
	AuditTransition = "transition" // verdict actually changed
	AuditDebounce   = "debounce"   // hysteresis suppressed a change this step
	AuditLatch      = "latch"      // absolute fault latched permanently
)

// AuditRecord is one entry in the verdict audit trail. From/To hold
// verdict names as strings ("nominal", "perf-faulty", "absolute-faulty")
// so this package stays a leaf with no dependency on the spec package.
type AuditRecord struct {
	Time      float64
	Component string
	Detector  string // detector family, e.g. "spec", "ewma", "window", "trend", "peer"
	Kind      string // AuditTransition, AuditDebounce, or AuditLatch
	From, To  string
	Streak    int // consecutive agreeing observations (hysteresis)
	Need      int // streak length required to act (hysteresis)
	Evidence  Evidence
}

// AuditLog collects verdict audit records. Safe for concurrent use; nil
// receivers are no-ops so detectors can carry an optional log.
type AuditLog struct {
	mu   sync.Mutex
	recs []AuditRecord
}

// NewAuditLog builds an empty audit log.
func NewAuditLog() *AuditLog { return &AuditLog{} }

// Add appends one record. No-op on a nil log.
func (l *AuditLog) Add(r AuditRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.recs = append(l.recs, r)
	l.mu.Unlock()
}

// Len returns the number of records.
func (l *AuditLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Records returns a copy of the records in append order.
func (l *AuditLog) Records() []AuditRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]AuditRecord, len(l.recs))
	copy(out, l.recs)
	return out
}

// WriteText renders the audit trail as a human-readable timeline, one
// line per record:
//
//	t=   412.0s  disk-3      nominal -> perf-faulty  [window]  window-median=31.2 vs 0.50 x peer-median=98.4 (margin -17.9)
func (l *AuditLog) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	recs := l.Records()
	if len(recs) == 0 {
		fmt.Fprintln(bw, "(no verdict transitions recorded)")
		return bw.Flush()
	}
	for _, r := range recs {
		var action string
		switch r.Kind {
		case AuditDebounce:
			action = fmt.Sprintf("%s -> %s suppressed (streak %d/%d)", r.From, r.To, r.Streak, r.Need)
		case AuditLatch:
			action = fmt.Sprintf("%s -> %s LATCHED", r.From, r.To)
		default:
			action = fmt.Sprintf("%s -> %s", r.From, r.To)
			if r.Need > 0 {
				action += fmt.Sprintf(" (streak %d/%d)", r.Streak, r.Need)
			}
		}
		fmt.Fprintf(bw, "t=%8.1fs  %-12s  %-46s  [%s]  %s\n",
			r.Time, r.Component, action, r.Detector, r.Evidence)
	}
	return bw.Flush()
}

// WriteJSON dumps the audit trail as a JSON array, byte-deterministic for
// a given record sequence. NaN/Inf evidence fields export as null.
func (l *AuditLog) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	recs := l.Records()
	bw.WriteString("[")
	for i, r := range recs {
		if i == 0 {
			bw.WriteString("\n")
		} else {
			bw.WriteString(",\n")
		}
		bw.WriteString(`{"time":`)
		writeJSONNum(bw, r.Time)
		bw.WriteString(`,"component":`)
		bw.WriteString(strconv.Quote(r.Component))
		bw.WriteString(`,"detector":`)
		bw.WriteString(strconv.Quote(r.Detector))
		bw.WriteString(`,"kind":`)
		bw.WriteString(strconv.Quote(r.Kind))
		bw.WriteString(`,"from":`)
		bw.WriteString(strconv.Quote(r.From))
		bw.WriteString(`,"to":`)
		bw.WriteString(strconv.Quote(r.To))
		bw.WriteString(`,"streak":`)
		bw.WriteString(strconv.Itoa(r.Streak))
		bw.WriteString(`,"need":`)
		bw.WriteString(strconv.Itoa(r.Need))
		bw.WriteString(`,"evidence":{"signal":`)
		bw.WriteString(strconv.Quote(r.Evidence.Signal))
		bw.WriteString(`,"observed":`)
		writeJSONNum(bw, r.Evidence.Observed)
		bw.WriteString(`,"ref_kind":`)
		bw.WriteString(strconv.Quote(r.Evidence.RefKind))
		bw.WriteString(`,"reference":`)
		writeJSONNum(bw, r.Evidence.Reference)
		bw.WriteString(`,"threshold":`)
		writeJSONNum(bw, r.Evidence.Threshold)
		bw.WriteString(`,"margin":`)
		writeJSONNum(bw, r.Evidence.Margin)
		bw.WriteString(`}}`)
	}
	if len(recs) > 0 {
		bw.WriteString("\n")
	}
	bw.WriteString("]\n")
	return bw.Flush()
}

// writeJSONNum renders a float as a JSON number; NaN and Inf (not
// representable in JSON) become null.
func writeJSONNum(bw *bufio.Writer, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		bw.WriteString("null")
		return
	}
	bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}

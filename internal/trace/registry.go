package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one key=value dimension on a registered metric.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindHistogram
	kindSeries
	kindMeter
	kindOracle
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	case kindSeries:
		return "series"
	case kindOracle:
		return "oracle"
	default:
		return "meter"
	}
}

type entry struct {
	kind   metricKind
	name   string
	labels []Label
	key    string

	c *Counter
	h *Histogram
	s *Series
	m *AvailabilityMeter
	o *OracleStat
}

// OracleStat is one predicted-vs-observed conformance result: an analytic
// prediction, the simulated observation, their relative residual, and the
// tolerance band the residual was judged against. The oracle plane
// records one per conformance row so the registry's CSV/JSON dumps carry
// the full predicted-vs-simulated record next to the raw metrics.
type OracleStat struct {
	predicted, observed, residual, band float64
}

// Set records the conformance result. residual is the relative residual
// (observed/predicted - 1, or observed - predicted when the prediction is
// zero) and band is the tolerance it was judged against.
func (o *OracleStat) Set(predicted, observed, residual, band float64) {
	o.predicted, o.observed, o.residual, o.band = predicted, observed, residual, band
}

// Predicted returns the analytic prediction.
func (o *OracleStat) Predicted() float64 { return o.predicted }

// Observed returns the simulated observation.
func (o *OracleStat) Observed() float64 { return o.observed }

// Residual returns the recorded residual.
func (o *OracleStat) Residual() float64 { return o.residual }

// Band returns the tolerance band.
func (o *OracleStat) Band() float64 { return o.band }

// Registry is a named, labeled metrics registry. Experiments register
// counters, histograms, series and availability meters against it; the
// runner then dumps everything as JSON or CSV per experiment. Lookups are
// get-or-create: asking for the same name+labels twice returns the same
// instrument, so components need not coordinate registration.
//
// A nil *Registry hands out fresh unregistered instruments, so metric
// call sites need no enabled/disabled branching.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byKey   map[string]*entry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry)}
}

// metricKey renders name{k=v,...} with labels sorted by key — the
// registry identity and the stable export order.
func metricKey(name string, labels []Label) (string, []Label) {
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	if len(sorted) == 0 {
		return name, sorted
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String(), sorted
}

func (r *Registry) lookup(kind metricKind, name string, labels []Label) *entry {
	key, sorted := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("trace: metric %q already registered as %s, requested as %s", key, e.kind, kind))
		}
		return e
	}
	e := &entry{kind: kind, name: name, labels: sorted, key: key}
	r.entries = append(r.entries, e)
	r.byKey[key] = e
	return e
}

// Counter returns the counter registered under name+labels, creating it
// on first use. A nil registry returns a fresh unregistered counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	e := r.lookup(kindCounter, name, labels)
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// Histogram returns the histogram registered under name+labels, creating
// it with the given bucket layout on first use (later calls reuse the
// existing layout). A nil registry returns a fresh unregistered histogram.
func (r *Registry) Histogram(name string, lo, hi float64, buckets int, labels ...Label) *Histogram {
	if r == nil {
		return NewHistogram(lo, hi, buckets)
	}
	e := r.lookup(kindHistogram, name, labels)
	if e.h == nil {
		e.h = NewHistogram(lo, hi, buckets)
	}
	return e.h
}

// Series returns the series registered under name+labels, creating it on
// first use. A nil registry returns a fresh unregistered series.
func (r *Registry) Series(name string, labels ...Label) *Series {
	if r == nil {
		return &Series{}
	}
	e := r.lookup(kindSeries, name, labels)
	if e.s == nil {
		e.s = &Series{}
	}
	return e.s
}

// Meter returns the availability meter registered under name+labels,
// creating it with the given threshold on first use. A nil registry
// returns a fresh unregistered meter.
func (r *Registry) Meter(name string, threshold float64, labels ...Label) *AvailabilityMeter {
	if r == nil {
		return NewAvailabilityMeter(threshold)
	}
	e := r.lookup(kindMeter, name, labels)
	if e.m == nil {
		e.m = NewAvailabilityMeter(threshold)
	}
	return e.m
}

// Oracle returns the oracle conformance stat registered under name+labels,
// creating it on first use. A nil registry returns a fresh unregistered
// stat.
func (r *Registry) Oracle(name string, labels ...Label) *OracleStat {
	if r == nil {
		return &OracleStat{}
	}
	e := r.lookup(kindOracle, name, labels)
	if e.o == nil {
		e.o = &OracleStat{}
	}
	return e.o
}

// Len returns the number of registered instruments.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// VisitSeries calls fn for every registered series with the given name,
// in deterministic sorted-key order. The profiling plane uses this to
// fold sampled queue-depth and backlog series back into per-component
// summaries without reparsing the exported JSON.
func (r *Registry) VisitSeries(name string, fn func(labels []Label, s *Series)) {
	if r == nil {
		return
	}
	for _, e := range r.sortedEntries() {
		if e.kind == kindSeries && e.name == name && e.s != nil {
			fn(e.labels, e.s)
		}
	}
}

// sortedEntries snapshots the entries ordered by key for export.
func (r *Registry) sortedEntries() []*entry {
	r.mu.Lock()
	out := make([]*entry, len(r.entries))
	copy(out, r.entries)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// WriteJSON dumps every registered instrument, grouped by kind and sorted
// by key, as byte-deterministic JSON (NaN/Inf export as null).
func (r *Registry) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var entries []*entry
	if r != nil {
		entries = r.sortedEntries()
	}
	writeGroup := func(title string, kind metricKind, body func(*entry)) {
		bw.WriteString(strconv.Quote(title))
		bw.WriteString(":[")
		first := true
		for _, e := range entries {
			if e.kind != kind {
				continue
			}
			if first {
				bw.WriteString("\n")
				first = false
			} else {
				bw.WriteString(",\n")
			}
			bw.WriteString(`{"name":`)
			bw.WriteString(strconv.Quote(e.name))
			bw.WriteString(`,"labels":{`)
			for i, l := range e.labels {
				if i > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(strconv.Quote(l.Key))
				bw.WriteByte(':')
				bw.WriteString(strconv.Quote(l.Value))
			}
			bw.WriteString(`}`)
			body(e)
			bw.WriteString(`}`)
		}
		if !first {
			bw.WriteString("\n")
		}
		bw.WriteString("]")
	}
	bw.WriteString("{")
	writeGroup("counters", kindCounter, func(e *entry) {
		bw.WriteString(`,"value":`)
		bw.WriteString(strconv.FormatUint(e.c.Value(), 10))
	})
	bw.WriteString(",\n")
	writeGroup("histograms", kindHistogram, func(e *entry) {
		h := e.h
		bw.WriteString(`,"count":`)
		bw.WriteString(strconv.FormatUint(h.Count(), 10))
		bw.WriteString(`,"nan_count":`)
		bw.WriteString(strconv.FormatUint(h.NaNCount(), 10))
		bw.WriteString(`,"sum":`)
		writeJSONNum(bw, h.Sum())
		bw.WriteString(`,"mean":`)
		writeJSONNum(bw, h.Mean())
		bw.WriteString(`,"min":`)
		writeJSONNum(bw, h.Min())
		bw.WriteString(`,"max":`)
		writeJSONNum(bw, h.Max())
		bw.WriteString(`,"p50":`)
		writeJSONNum(bw, h.Quantile(0.5))
		bw.WriteString(`,"p99":`)
		writeJSONNum(bw, h.Quantile(0.99))
	})
	bw.WriteString(",\n")
	writeGroup("series", kindSeries, func(e *entry) {
		s := e.s
		bw.WriteString(`,"times":[`)
		for i, t := range s.Times {
			if i > 0 {
				bw.WriteByte(',')
			}
			writeJSONNum(bw, t)
		}
		bw.WriteString(`],"values":[`)
		for i, v := range s.Values {
			if i > 0 {
				bw.WriteByte(',')
			}
			writeJSONNum(bw, v)
		}
		bw.WriteString(`]`)
	})
	bw.WriteString(",\n")
	writeGroup("meters", kindMeter, func(e *entry) {
		m := e.m
		bw.WriteString(`,"threshold":`)
		writeJSONNum(bw, m.Threshold())
		bw.WriteString(`,"offered":`)
		bw.WriteString(strconv.FormatUint(m.OfferedCount(), 10))
		bw.WriteString(`,"completed":`)
		bw.WriteString(strconv.FormatUint(m.CompletedCount(), 10))
		bw.WriteString(`,"availability":`)
		writeJSONNum(bw, m.Availability())
		bw.WriteString(`,"latency_mean":`)
		writeJSONNum(bw, m.Latency().Mean())
		bw.WriteString(`,"latency_p99":`)
		writeJSONNum(bw, m.Latency().Quantile(0.99))
	})
	bw.WriteString(",\n")
	writeGroup("oracles", kindOracle, func(e *entry) {
		o := e.o
		bw.WriteString(`,"predicted":`)
		writeJSONNum(bw, o.Predicted())
		bw.WriteString(`,"observed":`)
		writeJSONNum(bw, o.Observed())
		bw.WriteString(`,"residual":`)
		writeJSONNum(bw, o.Residual())
		bw.WriteString(`,"band":`)
		writeJSONNum(bw, o.Band())
	})
	bw.WriteString("}\n")
	return bw.Flush()
}

// WriteCSV dumps every registered instrument in long format
// (kind,name,labels,field,time,value), one row per scalar field and one
// row per series sample, sorted by key. The labels column joins sorted
// pairs with ';'.
func (r *Registry) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("kind,name,labels,field,time,value\n")
	var entries []*entry
	if r != nil {
		entries = r.sortedEntries()
	}
	row := func(e *entry, field string, t, v string) {
		bw.WriteString(e.kind.String())
		bw.WriteByte(',')
		bw.WriteString(csvField(e.name))
		bw.WriteByte(',')
		parts := make([]string, len(e.labels))
		for i, l := range e.labels {
			parts[i] = l.Key + "=" + l.Value
		}
		bw.WriteString(csvField(strings.Join(parts, ";")))
		bw.WriteByte(',')
		bw.WriteString(field)
		bw.WriteByte(',')
		bw.WriteString(t)
		bw.WriteByte(',')
		bw.WriteString(v)
		bw.WriteByte('\n')
	}
	num := func(v float64) string {
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			row(e, "value", "", strconv.FormatUint(e.c.Value(), 10))
		case kindHistogram:
			h := e.h
			row(e, "count", "", strconv.FormatUint(h.Count(), 10))
			row(e, "sum", "", num(h.Sum()))
			row(e, "mean", "", num(h.Mean()))
			row(e, "min", "", num(h.Min()))
			row(e, "max", "", num(h.Max()))
			row(e, "p50", "", num(h.Quantile(0.5)))
			row(e, "p99", "", num(h.Quantile(0.99)))
		case kindSeries:
			for i := range e.s.Times {
				row(e, "sample", num(e.s.Times[i]), num(e.s.Values[i]))
			}
		case kindMeter:
			m := e.m
			row(e, "threshold", "", num(m.Threshold()))
			row(e, "offered", "", strconv.FormatUint(m.OfferedCount(), 10))
			row(e, "completed", "", strconv.FormatUint(m.CompletedCount(), 10))
			row(e, "availability", "", num(m.Availability()))
			row(e, "latency_mean", "", num(m.Latency().Mean()))
			row(e, "latency_p99", "", num(m.Latency().Quantile(0.99)))
		case kindOracle:
			o := e.o
			row(e, "predicted", "", num(o.Predicted()))
			row(e, "observed", "", num(o.Observed()))
			row(e, "residual", "", num(o.Residual()))
			row(e, "band", "", num(o.Band()))
		}
	}
	return bw.Flush()
}

// csvField quotes a field when it contains a comma, quote, or newline.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

package cluster

import (
	"failstutter/internal/spec"
	"failstutter/internal/trace"
)

// flagDetector adapts an inline peer-relative flag (the DHT's adaptive
// detector, detect-avoid's migration flags) to the detect.Detector
// interface so detect.Audited can log its transitions with evidence. The
// flag decision itself stays where it was — in the sampling loop that owns
// the fleet-median computation — and this adapter just reports the state
// and the numbers behind it.
type flagDetector struct {
	flagged   *bool
	threshold float64
	// rate and med hold the last sample's evidence: the component's rate
	// and the fleet median it was judged against.
	rate, med float64
}

// Observe implements detect.Detector; the caller stores the fleet median
// separately before observing.
func (f *flagDetector) Observe(now, rate float64) { f.rate = rate }

// Verdict implements detect.Detector, reading the live flag.
func (f *flagDetector) Verdict(now float64) spec.Verdict {
	if *f.flagged {
		return spec.PerfFaulty
	}
	return spec.Nominal
}

// DetectorName implements detect.NamedDetector for audit records.
func (f *flagDetector) DetectorName() string { return "peer-relative" }

// Explain implements detect.Explainer: the sampled rate against the
// threshold fraction of the fleet median.
func (f *flagDetector) Explain() trace.Evidence {
	return trace.Evidence{
		Signal: "sample-rate", Observed: f.rate,
		RefKind: "fleet-median", Reference: f.med,
		Threshold: f.threshold,
		Margin:    f.rate - f.threshold*f.med,
	}
}

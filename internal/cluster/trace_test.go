package cluster

import (
	"strings"
	"testing"

	"failstutter/internal/sim"
	"failstutter/internal/trace"
)

// countSpans tallies closed interval spans and instants by name for the
// given category.
func countSpans(tr *trace.Tracer, cat string) map[string]int {
	out := map[string]int{}
	for _, sp := range tr.Spans() {
		if sp.Cat == cat {
			out[sp.Name]++
		}
	}
	return out
}

func TestBSPSuperstepSpans(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 4, 50e-6)
	tr := trace.NewTracer()
	p.SetTracer(tr)
	RunBSP(p, BSPParams{Rounds: 3, UnitsPerWorkerRound: 20})
	got := countSpans(tr, "bsp")
	for _, name := range []string{"superstep-0", "superstep-1", "superstep-2"} {
		if got[name] != 1 {
			t.Fatalf("span %q recorded %d times, want 1 (all: %v)", name, got[name], got)
		}
	}
	// Every superstep span must be closed at its barrier: an open span
	// would report NaN end and break the critical-path walk.
	for _, sp := range tr.Spans() {
		if sp.Cat == "bsp" && !(sp.End >= sp.Start) {
			t.Fatalf("superstep span %q left open (end %v)", sp.Name, sp.End)
		}
	}
}

func TestDHTPutSpansAndHintInstants(t *testing.T) {
	s := sim.New()
	d := NewDHT(s, DHTParams{
		Nodes: 4, Replication: 2, OpQuantum: opQ,
		Adaptive: true, SampleEvery: 1e-3,
	})
	tr := trace.NewTracer()
	d.SetTracer(tr)
	cancel := d.StartGC(0, 20e-3, 15e-3)
	defer cancel()
	d.RunLoad(4, 100e-3)
	got := countSpans(tr, "dht")
	if int64(got["put"]) != d.Puts() {
		t.Fatalf("recorded %d put spans for %d acknowledged puts", got["put"], d.Puts())
	}
	if d.Hints() == 0 {
		t.Fatal("scenario produced no hinted handoffs; test is vacuous")
	}
	if got["hinted-handoff"] == 0 {
		t.Fatal("no hinted-handoff instants despite hints > 0")
	}
	for _, sp := range tr.Spans() {
		if sp.Cat == "dht" && sp.Name == "put" && !(sp.End >= sp.Start) {
			t.Fatalf("put span %d left open (end %v)", sp.ID, sp.End)
		}
	}
}

func TestDHTAuditRecordsFlagTransitions(t *testing.T) {
	s := sim.New()
	d := NewDHT(s, DHTParams{
		Nodes: 4, Replication: 2, OpQuantum: opQ,
		Adaptive: true, SampleEvery: 1e-3,
	})
	log := trace.NewAuditLog()
	d.EnableAudit(log)
	cancel := d.StartGC(0, 20e-3, 15e-3)
	d.RunLoad(8, 150e-3)
	cancel()
	d.Settle()
	recs := log.Records()
	var sawFlag, sawRecover bool
	for _, r := range recs {
		if r.Component != "node-0" || r.Detector != "peer-relative" {
			continue
		}
		if r.From == "nominal" && strings.Contains(r.To, "perf") {
			sawFlag = true
			if r.Evidence.Signal != "sample-rate" {
				t.Fatalf("flag record carries evidence signal %q, want sample-rate", r.Evidence.Signal)
			}
		}
		if strings.Contains(r.From, "perf") && r.To == "nominal" {
			sawRecover = true
		}
	}
	if !sawFlag {
		t.Fatalf("audit trail missing node-0 nominal -> perf-faulty transition (records: %d)", len(recs))
	}
	if !sawRecover {
		t.Fatalf("audit trail missing node-0 recovery transition (records: %d)", len(recs))
	}
}

func TestSchedulerInstants(t *testing.T) {
	// Reissue under a mid-job stall must emit "reissue" instants.
	s := sim.New()
	p := NewPool(s, 4, q)
	tr := trace.NewTracer()
	p.SetTracer(tr)
	s.After(10e-3, func() { p.Workers()[0].SetSpeed(0.02) })
	rep := Reissue{TimeoutFactor: 3}.Run(p, UniformTasks(60, 20))
	if rep.Duplicates == 0 {
		t.Fatal("reissue scenario launched no duplicates; test is vacuous")
	}
	got := countSpans(tr, "sched")
	if got["reissue"]+got["clone"] == 0 {
		t.Fatalf("no reissue/clone instants recorded (spans: %v)", got)
	}

	// Detect-avoid under a degraded worker must emit a "migrate" instant.
	s2 := sim.New()
	p2 := NewPool(s2, 4, q)
	tr2 := trace.NewTracer()
	p2.SetTracer(tr2)
	p2.Workers()[0].SetSpeed(0.1)
	DetectAvoid{}.Run(p2, UniformTasks(60, 40))
	if countSpans(tr2, "sched")["migrate"] == 0 {
		t.Fatal("detect-avoid migration recorded no migrate instant")
	}
}

func TestDetectAvoidAuditRecordsFlag(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 4, q)
	log := trace.NewAuditLog()
	p.Workers()[0].SetSpeed(0.1)
	DetectAvoid{Audit: log}.Run(p, UniformTasks(60, 40))
	saw := false
	for _, r := range log.Records() {
		if r.Component == "worker-0" && r.From == "nominal" && strings.Contains(r.To, "perf") {
			saw = true
			if r.Evidence.RefKind != "fleet-median" {
				t.Fatalf("evidence refkind %q, want fleet-median", r.Evidence.RefKind)
			}
		}
	}
	if !saw {
		t.Fatalf("no worker-0 flag transition in audit trail (%d records)", log.Len())
	}
}

// TestClusterTracingDeterministic asserts the traced run is byte-identical
// across repetitions and that tracing does not perturb the simulation.
func TestClusterTracingDeterministic(t *testing.T) {
	run := func(traced bool) (string, sim.Duration) {
		s := sim.New()
		p := NewPool(s, 4, q)
		var tr *trace.Tracer
		if traced {
			tr = trace.NewTracer()
			p.SetTracer(tr)
		}
		s.After(10e-3, func() { p.Workers()[0].SetSpeed(0.02) })
		rep := Reissue{TimeoutFactor: 3}.Run(p, UniformTasks(60, 20))
		var sb strings.Builder
		if tr != nil {
			if err := tr.WriteChromeTrace(&sb); err != nil {
				t.Fatal(err)
			}
		}
		return sb.String(), rep.Makespan
	}
	j1, m1 := run(true)
	j2, m2 := run(true)
	if j1 != j2 {
		t.Fatal("traced cluster run not byte-identical across repetitions")
	}
	_, m0 := run(false)
	if m0 != m1 || m1 != m2 {
		t.Fatalf("tracing perturbed the makespan: %v / %v / %v", m0, m1, m2)
	}
}

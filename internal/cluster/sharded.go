package cluster

import (
	"fmt"
	"sort"

	"failstutter/internal/sim"
)

// This file is the barrier engine: the sharded counterpart of engine.run.
//
// A serial scheduler run is a chain of completion events — worker finishes,
// engine claims the task and hands the worker its next one, all at the
// same instant. Sharded, the engine's ledger is global state no window may
// touch, so the chain is split at the coordinator's barrier:
//
//   - during a window, a finishing worker only appends (time, worker) to
//     its own shard's completion buffer — no locks, no shared state;
//   - at the barrier, the buffers are merged and settled in (time, worker)
//     order — a placement-invariant total order — claiming tasks, charging
//     waste, and running any monitor ticks that fell inside the window in
//     time order with the completions;
//   - every follow-up dispatch lands at the window horizon, the earliest
//     instant the barrier may schedule into, on the target worker's own
//     kernel.
//
// The horizon dispatch means a sharded makespan trails its serial
// counterpart by at most one lookahead per dispatch chain — a bounded,
// deterministic skew — in exchange for every window running all shards in
// parallel. Monitors ride a real event chain on shard 0 so windows keep
// coming while every pending completion sits inside a stalled station, and
// when the job finishes mid-window the still-running executions are cut at
// the horizon, their partial progress charged to waste shard-locally.

// completionRec is one execution completion recorded shard-locally during
// a window: the event time and the finishing worker. Worker IDs never
// depend on the partition, so (at, w) orders the merged stream identically
// at every shard count.
type completionRec struct {
	at sim.Time
	w  int
}

// runSharded drives the job through the coordinator's safe windows,
// starting (and timing the makespan) at start — the current time for an
// immediate job, a window horizon for one deferred by a gauge phase.
func (e *engine) runSharded(start sim.Time) Report {
	ss := e.p.ss
	e.start = start
	e.startUnits = snapshotUnits(e.p)
	if e.left == 0 {
		e.doneAt = start
		e.finished = true
	} else {
		e.comp = make([][]completionRec, ss.Shards())
		e.cutWaste = make([]float64, ss.Shards())
		if e.needSample {
			e.sampled = snapshotUnits(e.p)
		}
		for _, w := range e.p.workers {
			w := w
			w.finish = func(*Worker) {
				e.comp[w.shard] = append(e.comp[w.shard], completionRec{at: w.sim.Now(), w: w.id})
			}
		}
		e.curNow = start
		for i := range e.p.workers {
			e.dispatchShardedAt(i, start)
		}
		if e.monitor != nil {
			e.nextMon = start + e.monitorPeriod
			// The monitor must be a real event chain — on shard 0, the
			// conventional home for coordinator bookkeeping — not just
			// barrier arithmetic: when every pending completion sits in a
			// stalled station the event queue would otherwise drain and no
			// further window (hence no further tick) would ever run. The
			// chain's events carry no logic; the barrier replays the tick
			// instants in order against the completion stream.
			ctrl := ss.Shard(0)
			var tick func()
			tick = func() {
				if e.finished {
					return
				}
				ctrl.After(e.monitorPeriod, tick)
			}
			ctrl.At(e.nextMon, tick)
		}
		if e.needSample {
			// Per-worker throughput samples are taken at tick times on each
			// worker's own shard: reading UnitsDone cross-shard at the
			// barrier would observe however far that shard happened to run
			// its window — a placement-dependent value.
			for _, w := range e.p.workers {
				w := w
				var tick func()
				tick = func() {
					if e.finished {
						return
					}
					e.sampled[w.id] = w.UnitsDone()
					w.sim.After(e.monitorPeriod, tick)
				}
				w.sim.At(start+e.monitorPeriod, tick)
			}
		}
		ss.SetBarrier(e.barrierSettle)
		ss.Run()
		ss.SetBarrier(nil)
		for _, w := range e.p.workers {
			w.finish = nil
		}
		if !e.finished {
			panic(fmt.Sprintf(
				"cluster: %s job stalled with %d of %d tasks unclaimed (a fully stalled worker holds work no policy will replicate)",
				e.name, e.left, len(e.byID)))
		}
		for _, wu := range e.cutWaste {
			e.wasted += wu
		}
	}
	return Report{
		Scheduler:      e.name,
		Makespan:       e.doneAt - e.start,
		Tasks:          len(e.byID),
		PerWorkerUnits: perWorkerUnits(e.p, e.startUnits),
		WastedUnits:    e.wasted,
		Duplicates:     e.dups,
	}
}

// barrierSettle runs after every safe window: it merges the shards'
// completion buffers and settles completions and monitor ticks in one
// time-ordered stream (completions first on a tie — the serial engine
// claims a completion before a monitor scheduled at the same instant can
// reissue it).
func (e *engine) barrierSettle(h sim.Time) {
	e.hNow = h
	merged := e.mergedComp[:0]
	for shard := range e.comp {
		merged = append(merged, e.comp[shard]...)
		e.comp[shard] = e.comp[shard][:0]
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].at != merged[j].at {
			return merged[i].at < merged[j].at
		}
		return merged[i].w < merged[j].w
	})
	e.mergedComp = merged
	i := 0
	for {
		monPending := e.monitor != nil && !e.finished && e.nextMon < h
		switch {
		case i < len(merged) && (!monPending || merged[i].at <= e.nextMon):
			e.settleCompletion(merged[i], h)
			i++
		case monPending:
			e.curNow = e.nextMon
			e.monitor(e.nextMon)
			e.nextMon += e.monitorPeriod
		default:
			return
		}
	}
}

// settleCompletion applies one merged completion record: claim or waste,
// then re-dispatch at the horizon. Records settled after the job finished
// — executions that completed later in the finish window — charge their
// full size to waste; the serial engine would have stopped before they
// completed and charged only their partial progress, a bounded difference
// the cut protocol documents.
func (e *engine) settleCompletion(rec completionRec, h sim.Time) {
	id := e.cur[rec.w]
	e.cur[rec.w] = -1
	e.curNow = rec.at
	if e.finished {
		e.wasted += float64(e.byID[id].Units)
		return
	}
	if !e.claimed[id] {
		e.claimed[id] = true
		e.left--
		e.durations = append(e.durations, rec.at-e.execStart[rec.w])
		if e.left == 0 {
			e.completeSharded(rec.at, h)
			return
		}
	} else {
		e.wasted += float64(e.byID[id].Units)
	}
	e.dispatchShardedAt(rec.w, h)
}

// completeSharded records the finish and cuts every still-running
// execution at the horizon: a cut event on the worker's own kernel cancels
// the in-flight request, credits its partial progress to the worker (the
// serial run's post-stop ServedInCurrent would have counted it) and
// charges it to a shard-local waste accumulator, summed after the run.
func (e *engine) completeSharded(at, h sim.Time) {
	e.doneAt = at
	e.finished = true
	for i, w := range e.p.workers {
		if e.cur[i] < 0 {
			continue
		}
		w := w
		w.sim.At(h, func() {
			if served, ok := w.st.CancelCurrent(); ok {
				w.doneUnits += served
				e.cutWaste[w.shard] += served
			}
		})
	}
}

// dispatchShardedAt hands worker i its next task per the policy, starting
// the execution at the given instant — immediately when the worker's clock
// is already there (initial dispatch), via a scheduled event otherwise
// (barrier dispatch at the horizon).
func (e *engine) dispatchShardedAt(i int, at sim.Time) {
	if e.finished {
		return
	}
	t, ok := e.next(i)
	if !ok {
		e.idle[i] = true
		return
	}
	e.idle[i] = false
	e.cur[i] = t.ID
	e.execStart[i] = at
	if e.firstStart[t.ID] < 0 {
		e.firstStart[t.ID] = at
	}
	w := e.p.workers[i]
	units := float64(t.Units)
	if at > w.sim.Now() {
		w.sim.At(at, func() { w.exec(units) })
	} else {
		w.exec(units)
	}
}

// gaugeSharded is GaugedPartition's probe phase on a sharded pool: probe
// every worker, record each speed on the worker's own shard, and stop the
// coordinator at the horizon of the window that saw the last probe finish.
// That horizon — a placement-invariant instant — is returned as the main
// job's start time; fault events the caller scheduled for later stay
// queued, exactly as the serial gauge's Stop leaves them.
func gaugeSharded(p *Pool, probe int) ([]float64, sim.Time) {
	ss := p.ss
	n := p.Size()
	speeds := make([]float64, n)
	fin := make([]bool, n)
	t0 := ss.Now()
	for _, w := range p.workers {
		w := w
		w.finish = func(*Worker) {
			speeds[w.id] = float64(probe) / (w.sim.Now() - t0)
			fin[w.id] = true
		}
	}
	for _, w := range p.workers {
		w.exec(float64(probe))
	}
	var stopAt sim.Time
	stopped := false
	ss.SetBarrier(func(h sim.Time) {
		if stopped {
			return
		}
		for _, f := range fin {
			if !f {
				return
			}
		}
		stopped = true
		stopAt = h
		ss.Stop()
	})
	ss.Run()
	ss.SetBarrier(nil)
	for _, w := range p.workers {
		w.finish = nil
	}
	if !stopped {
		panic("cluster: gauged-partition probe stalled (a probed worker never finished)")
	}
	return speeds, stopAt
}

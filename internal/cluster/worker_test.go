package cluster

import (
	"sync/atomic"
	"testing"
	"time"
)

const q = 50 * time.Microsecond

func TestWorkerExecutesUnits(t *testing.T) {
	w := NewWorker(0, q)
	t0 := time.Now()
	n := w.runUnits(100, nil)
	elapsed := time.Since(t0)
	if n != 100 {
		t.Fatalf("ran %d units", n)
	}
	if w.UnitsDone() != 100 {
		t.Fatalf("UnitsDone = %d", w.UnitsDone())
	}
	// 100 units at 50us each = 5ms minimum; sleeping overshoots, never
	// undershoots.
	if elapsed < 5*time.Millisecond {
		t.Fatalf("100 units took %v, impossibly fast", elapsed)
	}
}

func TestWorkerSpeedScales(t *testing.T) {
	slow := NewWorker(0, q)
	slow.SetSpeed(0.25)
	fast := NewWorker(1, q)
	fast.SetSpeed(2)
	t0 := time.Now()
	slow.runUnits(50, nil)
	slowTime := time.Since(t0)
	t0 = time.Now()
	fast.runUnits(50, nil)
	fastTime := time.Since(t0)
	// Nominal: slow 10ms, fast 1.25ms. Sleep overhead compresses the
	// ratio; it must still be clearly ordered.
	if slowTime < 2*fastTime {
		t.Fatalf("slow %v vs fast %v: speed scaling ineffective", slowTime, fastTime)
	}
}

func TestWorkerStallAndResume(t *testing.T) {
	w := NewWorker(0, q)
	w.SetSpeed(0)
	done := make(chan struct{})
	go func() {
		w.runUnits(10, nil)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("stalled worker made progress")
	case <-time.After(5 * time.Millisecond):
	}
	w.SetSpeed(1)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("worker did not resume")
	}
}

func TestWorkerAbort(t *testing.T) {
	w := NewWorker(0, q)
	var stop atomic.Bool
	go func() {
		time.Sleep(2 * time.Millisecond)
		stop.Store(true)
	}()
	n := w.runUnits(100000, stop.Load)
	if n >= 100000 {
		t.Fatal("abort ignored")
	}
}

func TestWorkerAbortWhileStalled(t *testing.T) {
	w := NewWorker(0, q)
	w.SetSpeed(0)
	var stop atomic.Bool
	done := make(chan int)
	go func() { done <- w.runUnits(10, stop.Load) }()
	time.Sleep(2 * time.Millisecond)
	stop.Store(true)
	select {
	case n := <-done:
		if n != 0 {
			t.Fatalf("stalled worker ran %d units", n)
		}
	case <-time.After(time.Second):
		t.Fatal("abort did not release stalled worker")
	}
}

func TestWorkerInvalidSpeedPanics(t *testing.T) {
	w := NewWorker(0, q)
	defer func() {
		if recover() == nil {
			t.Fatal("negative speed did not panic")
		}
	}()
	w.SetSpeed(-1)
}

func TestPoolHogRestores(t *testing.T) {
	p := NewPool(2, q)
	p.Hog(1, 0.1, 5*time.Millisecond)
	if s := p.Workers()[1].Speed(); s != 0.1 {
		t.Fatalf("hogged speed = %v", s)
	}
	time.Sleep(30 * time.Millisecond)
	if s := p.Workers()[1].Speed(); s != 1 {
		t.Fatalf("speed after hog = %v", s)
	}
}

func TestPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty pool did not panic")
		}
	}()
	NewPool(0, q)
}

package cluster

import (
	"math"
	"testing"

	"failstutter/internal/sim"
)

// q is the test work-unit quantum: 50 virtual microseconds per unit.
const q = sim.Duration(50e-6)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestWorkerExecutesUnits(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 1, q)
	w := p.Workers()[0]
	w.exec(100)
	s.Run()
	if w.UnitsDone() != 100 {
		t.Fatalf("UnitsDone = %v", w.UnitsDone())
	}
	if w.TasksDone() != 1 {
		t.Fatalf("TasksDone = %d", w.TasksDone())
	}
	// 100 units at 50 virtual microseconds each: exactly 5ms of virtual
	// time, not "at least" — no sleep overshoot exists here.
	if !near(s.Now(), 100*q) {
		t.Fatalf("100 units took %v virtual seconds, want %v", s.Now(), 100*q)
	}
}

func TestWorkerSpeedScales(t *testing.T) {
	run := func(speed float64) sim.Duration {
		s := sim.New()
		p := NewPool(s, 1, q)
		p.Workers()[0].SetSpeed(speed)
		p.Workers()[0].exec(50)
		s.Run()
		return s.Now()
	}
	slow := run(0.25)
	fast := run(2)
	// Exact ratio 8: 50q/0.25 vs 50q/2.
	if !near(slow, 8*fast) {
		t.Fatalf("slow %v vs fast %v: want an exact 8x ratio", slow, fast)
	}
}

func TestWorkerStallAndResume(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 1, q)
	w := p.Workers()[0]
	w.SetSpeed(0)
	w.exec(10)
	s.After(1, func() { w.SetSpeed(1) })
	s.Run()
	if w.UnitsDone() != 10 {
		t.Fatalf("UnitsDone = %v after resume", w.UnitsDone())
	}
	// Stalled for exactly 1 virtual second, then 10 units at full speed.
	if !near(s.Now(), 1+10*q) {
		t.Fatalf("stall+resume finished at %v, want %v", s.Now(), 1+10*q)
	}
}

func TestWorkerPartialProgressVisible(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 1, q)
	w := p.Workers()[0]
	w.exec(100)
	s.RunUntil(25 * q)
	if !near(w.UnitsDone(), 25) {
		t.Fatalf("UnitsDone mid-execution = %v, want 25", w.UnitsDone())
	}
	if !w.Busy() {
		t.Fatal("worker not busy mid-execution")
	}
}

func TestWorkerInvalidSpeedPanics(t *testing.T) {
	s := sim.New()
	w := NewPool(s, 1, q).Workers()[0]
	defer func() {
		if recover() == nil {
			t.Fatal("negative speed did not panic")
		}
	}()
	w.SetSpeed(-1)
}

func TestWorkerDispatchWhileBusyPanics(t *testing.T) {
	s := sim.New()
	w := NewPool(s, 1, q).Workers()[0]
	w.exec(10)
	defer func() {
		if recover() == nil {
			t.Fatal("double dispatch did not panic")
		}
	}()
	w.exec(10)
}

func TestPoolHogRestores(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 2, q)
	p.Hog(1, 0.1, 5e-3)
	if sp := p.Workers()[1].Speed(); sp != 0.1 {
		t.Fatalf("hogged speed = %v", sp)
	}
	s.Run() // fires the restore event
	if sp := p.Workers()[1].Speed(); sp != 1 {
		t.Fatalf("speed after hog = %v", sp)
	}
	if !near(s.Now(), 5e-3) {
		t.Fatalf("hog restored at %v, want 5ms", s.Now())
	}
}

func TestPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty pool did not panic")
		}
	}()
	NewPool(sim.New(), 0, q)
}

// TestWorkerStepZeroAlloc pins the steady-state worker step path —
// exec -> station completion -> finish hook — at zero allocations,
// matching the Station pipeline discipline.
func TestWorkerStepZeroAlloc(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 1, q)
	w := p.Workers()[0]
	step := func() {
		w.exec(1)
		s.Run()
	}
	step() // warm the simulator arena and heap
	if n := testing.AllocsPerRun(200, step); n != 0 {
		t.Fatalf("worker step path allocates %v per execution, want 0", n)
	}
}

func BenchmarkWorkerStep(b *testing.B) {
	s := sim.New()
	p := NewPool(s, 1, q)
	w := p.Workers()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.exec(1)
		s.Run()
	}
}

// BenchmarkClusterScale shows the design goal the goroutine runtime could
// not meet: thousands of workers on one OS thread, one event per task.
func BenchmarkClusterScale(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New()
		p := NewPool(s, 2000, q)
		WorkQueue{}.Run(p, UniformTasks(10000, 5))
	}
}

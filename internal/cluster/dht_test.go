package cluster

import (
	"testing"

	"failstutter/internal/sim"
)

// opQ is the test operation quantum: 50 virtual microseconds per op.
const opQ = sim.Duration(50e-6)

func TestDHTBasicPuts(t *testing.T) {
	s := sim.New()
	d := NewDHT(s, DHTParams{Nodes: 4, Replication: 2, OpQuantum: opQ})
	for i := 0; i < 100; i++ {
		d.Put(uint64(i), nil)
	}
	s.Run()
	if d.Puts() != 100 {
		t.Fatalf("puts = %d", d.Puts())
	}
	if d.Hints() != 0 {
		t.Fatalf("sync mode produced %d hints", d.Hints())
	}
	// Every put lands Replication copies: total node work = 200 ops.
	var total float64
	for i := 0; i < 4; i++ {
		total += d.Node(i).UnitsDone()
	}
	if total != 200 {
		t.Fatalf("node ops = %v, want 200", total)
	}
}

func TestDHTPutAckOrdering(t *testing.T) {
	s := sim.New()
	d := NewDHT(s, DHTParams{Nodes: 4, Replication: 2, OpQuantum: opQ})
	acked := false
	d.Put(1, func() { acked = true })
	if acked {
		t.Fatal("ack fired before the simulator ran")
	}
	s.Run()
	if !acked {
		t.Fatal("ack never fired")
	}
}

func TestDHTReplicaPlacementSpread(t *testing.T) {
	d := NewDHT(sim.New(), DHTParams{Nodes: 8, Replication: 2, OpQuantum: opQ})
	counts := make([]int, 8)
	for k := uint64(0); k < 4000; k++ {
		for _, r := range d.replicas(k) {
			counts[r]++
		}
	}
	for i, c := range counts {
		// 4000 keys * 2 replicas / 8 nodes = 1000 each; allow wide noise.
		if c < 700 || c > 1300 {
			t.Fatalf("node %d holds %d replicas, want ~1000", i, c)
		}
	}
}

func TestDHTReplicasDistinct(t *testing.T) {
	d := NewDHT(sim.New(), DHTParams{Nodes: 4, Replication: 2, OpQuantum: opQ})
	for k := uint64(0); k < 100; k++ {
		reps := d.replicas(k)
		if reps[0] == reps[1] {
			t.Fatalf("key %d replicas collide: %v", k, reps)
		}
	}
}

// Gribble's observation (E14): untimely GC on one node makes it the
// bottleneck of the whole replicated structure under synchronous
// replication.
func TestDHTGCCollapsesSyncThroughput(t *testing.T) {
	run := func(gc bool) int64 {
		s := sim.New()
		d := NewDHT(s, DHTParams{Nodes: 4, Replication: 2, OpQuantum: opQ})
		if gc {
			cancel := d.StartGC(0, 40e-3, 35e-3)
			defer cancel()
		}
		return d.RunLoad(8, 400e-3)
	}
	healthy := run(false)
	gced := run(true)
	if gced*10 > healthy*8 {
		t.Fatalf("GC did not hurt sync throughput: healthy %d vs GC %d", healthy, gced)
	}
}

func TestDHTAdaptiveRidesOutGC(t *testing.T) {
	run := func(adaptive bool) (puts, hints int64) {
		s := sim.New()
		d := NewDHT(s, DHTParams{
			Nodes: 4, Replication: 2, OpQuantum: opQ,
			Adaptive: adaptive, SampleEvery: 1e-3,
		})
		cancel := d.StartGC(0, 40e-3, 35e-3)
		defer cancel()
		p := d.RunLoad(8, 400e-3)
		return p, d.Hints()
	}
	syncPuts, _ := run(false)
	adPuts, adHints := run(true)
	if adPuts*100 < syncPuts*115 {
		t.Fatalf("adaptive %d puts not clearly better than sync %d under GC", adPuts, syncPuts)
	}
	if adHints == 0 {
		t.Fatal("adaptive mode recorded no hinted handoffs")
	}
}

func TestDHTFlagsClearAfterRecovery(t *testing.T) {
	s := sim.New()
	d := NewDHT(s, DHTParams{
		Nodes: 4, Replication: 2, OpQuantum: opQ,
		Adaptive: true, SampleEvery: 1e-3,
	})
	cancel := d.StartGC(0, 20e-3, 15e-3)
	d.RunLoad(8, 150e-3)
	if !d.Flagged(0) {
		t.Fatal("GC-ing node never flagged under load")
	}
	cancel()
	// Once the GC schedule is disarmed and the hinted backlog drains, the
	// flag must clear.
	d.Settle()
	if d.Flagged(0) {
		t.Fatal("node 0 still flagged after GC stopped and the backlog drained")
	}
}

func TestDHTDeterministic(t *testing.T) {
	run := func() (int64, int64) {
		s := sim.New()
		d := NewDHT(s, DHTParams{
			Nodes: 4, Replication: 2, OpQuantum: opQ,
			Adaptive: true, SampleEvery: 1e-3,
		})
		cancel := d.StartGC(0, 40e-3, 35e-3)
		defer cancel()
		puts := d.RunLoad(8, 300e-3)
		return puts, d.Hints()
	}
	p1, h1 := run()
	p2, h2 := run()
	if p1 != p2 || h1 != h2 {
		t.Fatalf("DHT load not deterministic: %d/%d vs %d/%d puts/hints", p1, h1, p2, h2)
	}
}

func TestDHTValidation(t *testing.T) {
	bad := []DHTParams{
		{},
		{Nodes: 2, Replication: 3, OpQuantum: opQ},
		{Nodes: 2, Replication: 1},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad params %d accepted", i)
				}
			}()
			NewDHT(sim.New(), p)
		}()
	}
}

func BenchmarkDHTLoad(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New()
		d := NewDHT(s, DHTParams{Nodes: 8, Replication: 2, OpQuantum: opQ})
		d.RunLoad(16, 100e-3)
	}
}

package cluster

import (
	"testing"
	"time"
)

const opQ = 50 * time.Microsecond

func TestDHTBasicPuts(t *testing.T) {
	d := NewDHT(DHTParams{Nodes: 4, Replication: 2, OpQuantum: opQ})
	defer d.Stop()
	for i := 0; i < 100; i++ {
		d.Put(uint64(i))
	}
	if d.Puts() != 100 {
		t.Fatalf("puts = %d", d.Puts())
	}
	if d.Hints() != 0 {
		t.Fatalf("sync mode produced %d hints", d.Hints())
	}
	// Every put lands Replication copies: total node work = 200 ops.
	var total int64
	for i := 0; i < 4; i++ {
		total += d.Node(i).UnitsDone()
	}
	if total != 200 {
		t.Fatalf("node ops = %d, want 200", total)
	}
}

func TestDHTReplicaPlacementSpread(t *testing.T) {
	d := NewDHT(DHTParams{Nodes: 8, Replication: 2, OpQuantum: opQ})
	defer d.Stop()
	counts := make([]int, 8)
	for k := uint64(0); k < 4000; k++ {
		for _, r := range d.replicas(k) {
			counts[r]++
		}
	}
	for i, c := range counts {
		// 4000 keys * 2 replicas / 8 nodes = 1000 each; allow wide noise.
		if c < 700 || c > 1300 {
			t.Fatalf("node %d holds %d replicas, want ~1000", i, c)
		}
	}
}

func TestDHTReplicasDistinct(t *testing.T) {
	d := NewDHT(DHTParams{Nodes: 4, Replication: 2, OpQuantum: opQ})
	defer d.Stop()
	for k := uint64(0); k < 100; k++ {
		reps := d.replicas(k)
		if reps[0] == reps[1] {
			t.Fatalf("key %d replicas collide: %v", k, reps)
		}
	}
}

// Gribble's observation (E14): untimely GC on one node makes it the
// bottleneck of the whole replicated structure under synchronous
// replication.
func TestDHTGCCollapsesSyncThroughput(t *testing.T) {
	run := func(gc bool) int64 {
		d := NewDHT(DHTParams{Nodes: 4, Replication: 2, OpQuantum: opQ})
		defer d.Stop()
		if gc {
			cancel := d.StartGC(0, 40*time.Millisecond, 35*time.Millisecond)
			defer cancel()
		}
		return d.RunLoad(8, 400*time.Millisecond)
	}
	healthy := run(false)
	gced := run(true)
	if gced*10 > healthy*8 {
		t.Fatalf("GC did not hurt sync throughput: healthy %d vs GC %d", healthy, gced)
	}
}

func TestDHTAdaptiveRidesOutGC(t *testing.T) {
	run := func(adaptive bool) (puts, hints int64) {
		d := NewDHT(DHTParams{
			Nodes: 4, Replication: 2, OpQuantum: opQ,
			Adaptive: adaptive, SampleEvery: time.Millisecond,
		})
		defer d.Stop()
		cancel := d.StartGC(0, 40*time.Millisecond, 35*time.Millisecond)
		defer cancel()
		p := d.RunLoad(8, 400*time.Millisecond)
		return p, d.Hints()
	}
	syncPuts, _ := run(false)
	adPuts, adHints := run(true)
	if adPuts*100 < syncPuts*115 {
		t.Fatalf("adaptive %d puts not clearly better than sync %d under GC", adPuts, syncPuts)
	}
	if adHints == 0 {
		t.Fatal("adaptive mode recorded no hinted handoffs")
	}
}

func TestDHTFlagsClearAfterRecovery(t *testing.T) {
	d := NewDHT(DHTParams{
		Nodes: 4, Replication: 2, OpQuantum: opQ,
		Adaptive: true, SampleEvery: time.Millisecond,
	})
	defer d.Stop()
	cancel := d.StartGC(0, 20*time.Millisecond, 15*time.Millisecond)
	d.RunLoad(8, 150*time.Millisecond)
	cancel()
	// Once load stops and the hinted backlog drains, the flag must clear.
	// Under load the node may legitimately stay flagged: hinted writes
	// arrive at its full service rate, so the backlog only drains in
	// quiet periods.
	deadline := time.Now().Add(5 * time.Second)
	for d.Flagged(0) {
		if time.Now().After(deadline) {
			t.Fatal("node 0 still flagged long after GC stopped and load ended")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDHTValidation(t *testing.T) {
	bad := []DHTParams{
		{},
		{Nodes: 2, Replication: 3, OpQuantum: opQ},
		{Nodes: 2, Replication: 1},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad params %d accepted", i)
				}
			}()
			NewDHT(p)
		}()
	}
}

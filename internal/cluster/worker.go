// Package cluster implements a distributed runtime exhibiting and
// tolerating fail-stutter faults: a pool of workers with injectable
// per-worker slowdowns and stalls, six scheduling policies of increasing
// stutter-awareness (static partition, gauged partition, pull-based work
// queue, hedged tail execution, Shasha-Turek slow-down reissue, and
// detect-and-avoid migration), a bulk-synchronous computation whose
// barriers pay the straggler tax, and a replicated hash table whose nodes
// suffer garbage-collection pauses, after Gribble et al.
//
// The runtime executes on the internal/sim virtual-time kernel: each
// worker is a queueing Station whose speed multiplier is the injection
// point for CPU hogs, stutter, and crashes, and every barrier, completion
// claim, and replication ack is a simulator event. Runs are therefore
// deterministic — byte-identical for a given configuration — and scale to
// thousands of workers without burning an OS thread per node.
package cluster

import (
	"fmt"

	"failstutter/internal/sim"
	"failstutter/internal/trace"
)

// Worker is one compute node: it executes abstract work units, each
// costing quantum/speed of virtual time. Speed is adjustable at any
// moment — the injection point for CPU hogs, stutter, and crashes (speed
// permanently 0 is indistinguishable from a very long stall, matching the
// model's view that a stall beyond T *is* a failure).
type Worker struct {
	id int
	st *sim.Station

	// sim is the kernel the worker's station runs on — the pool's lone
	// simulator in a serial pool, the worker's home shard in a sharded one.
	// shard is that home shard's index (0 in a serial pool).
	sim   *sim.Simulator
	shard int

	// req is the single reusable request for this worker's executions: a
	// worker serves one task at a time, so the steady-state step path
	// (exec -> station completion -> dispatch -> exec) allocates nothing.
	req sim.Request

	// doneUnits accumulates the sizes of completed executions; tasksDone
	// counts them.
	doneUnits float64
	tasksDone int64

	// finish, when non-nil, is invoked each time an execution completes —
	// the dispatch hook a running job installs.
	finish func(*Worker)
}

func newWorker(s *sim.Simulator, id int, quantum sim.Duration) *Worker {
	if quantum <= 0 {
		panic("cluster: quantum must be positive")
	}
	w := &Worker{id: id, sim: s}
	w.st = sim.NewStation(s, fmt.Sprintf("worker-%d", id), 1/quantum)
	w.req.OnDone = w.reqDone
	return w
}

// ID returns the worker's index.
func (w *Worker) ID() int { return w.id }

// Speed returns the current speed multiplier.
func (w *Worker) Speed() float64 { return w.st.Multiplier() }

// SetSpeed sets the speed multiplier; zero stalls the worker, preserving
// progress on the execution in flight. Negative or non-finite speeds
// panic.
func (w *Worker) SetSpeed(s float64) { w.st.SetMultiplier(s) }

// UnitsDone returns the cumulative work units executed, including partial
// progress on the execution in flight — the smooth counter detectors
// probe.
func (w *Worker) UnitsDone() float64 { return w.doneUnits + w.st.ServedInCurrent() }

// TasksDone returns completed executions (including executions that later
// lost the completion race).
func (w *Worker) TasksDone() int64 { return w.tasksDone }

// Station returns the worker's underlying queueing station.
func (w *Worker) Station() *sim.Station { return w.st }

// Busy reports whether an execution is in flight.
func (w *Worker) Busy() bool { return w.st.InService() != nil }

// exec starts an execution of the given number of units. The worker must
// be idle: jobs dispatch one task at a time per worker.
func (w *Worker) exec(units float64) {
	if w.st.InService() != nil {
		panic(fmt.Sprintf("cluster: worker %d dispatched while busy", w.id))
	}
	w.req.Size = units
	w.st.Submit(&w.req)
}

// reqDone is the station completion callback, bound once at construction.
func (w *Worker) reqDone(r *sim.Request) {
	w.doneUnits += r.Size
	w.tasksDone++
	if w.finish != nil {
		w.finish(w)
	}
}

// Pool is a set of workers sharing one simulator and work-unit quantum.
// A sharded pool (NewShardedPool) additionally spreads its workers across
// the coordinator's shards; jobs running on it dispatch at window barriers
// instead of completion instants.
type Pool struct {
	sim     *sim.Simulator
	ss      *sim.ShardedSimulator // nil in a serial pool
	workers []*Worker
	quantum sim.Duration
	// tracer, when non-nil, also records job-level activity (BSP
	// supersteps, scheduler reissue/clone/migrate decisions) alongside the
	// per-worker station spans.
	tracer *trace.Tracer
}

// NewPool builds n workers on the simulator with the given quantum (the
// virtual time one work unit costs at speed 1).
func NewPool(s *sim.Simulator, n int, quantum sim.Duration) *Pool {
	if n < 1 {
		panic("cluster: pool needs at least one worker")
	}
	p := &Pool{sim: s, quantum: quantum}
	for i := 0; i < n; i++ {
		p.workers = append(p.workers, newWorker(s, i, quantum))
	}
	return p
}

// NewShardedPool builds n workers on the sharded coordinator, placing
// worker i on the shard its identity ("worker-<i>") hashes to. Jobs run on
// such a pool through the barrier engine: completions are recorded
// shard-locally during each safe window and settled — claims, waste,
// re-dispatch — at the barrier in (time, worker) order, so results are
// byte-identical at every shard count.
func NewShardedPool(ss *sim.ShardedSimulator, n int, quantum sim.Duration) *Pool {
	if n < 1 {
		panic("cluster: pool needs at least one worker")
	}
	p := &Pool{sim: ss.Shard(0), ss: ss, quantum: quantum}
	for i := 0; i < n; i++ {
		home := ss.ShardFor(fmt.Sprintf("worker-%d", i))
		w := newWorker(ss.Shard(home), i, quantum)
		w.shard = home
		p.workers = append(p.workers, w)
	}
	return p
}

// Sim returns the simulator the pool runs on. For a sharded pool this is
// shard 0's kernel — fine for reading time before a run, wrong for
// scheduling mid-run injections on workers living on other shards; use
// SetSpeedAt for those.
func (p *Pool) Sim() *sim.Simulator { return p.sim }

// Sharded returns the sharded coordinator, or nil for a serial pool.
func (p *Pool) Sharded() *sim.ShardedSimulator { return p.ss }

// Workers returns the pool members.
func (p *Pool) Workers() []*Worker { return p.workers }

// SetTracer attaches a span tracer to every worker's station, recording
// each execution's queue/service intervals on a "worker-<id>" track in
// virtual time, and to the pool itself, so jobs running on it (BSP,
// schedulers) emit their own spans. A nil tracer detaches.
//
// On a sharded pool whose coordinator has per-shard collectors installed
// (sim.ShardedSimulator.SetTelemetry), the attachment redirects: each
// worker's station records into its home shard's collector — the only
// placement where window-time appends stay race-free and lock-free — and
// the pool's own job-level spans (BSP supersteps, scheduler decisions,
// all recorded single-threaded in barrier context) land on shard 0's
// collector. MergeTelemetry then folds everything back into the tracer
// passed here.
func (p *Pool) SetTracer(t *trace.Tracer) {
	if t != nil && p.ss != nil && p.ss.ShardTracer(0) != nil {
		p.tracer = p.ss.ShardTracer(0)
		for _, w := range p.workers {
			w.st.SetTracer(p.ss.ShardTracer(w.shard))
		}
		return
	}
	p.tracer = t
	for _, w := range p.workers {
		w.st.SetTracer(t)
	}
}

// Tracer returns the attached span tracer, or nil when tracing is off.
func (p *Pool) Tracer() *trace.Tracer { return p.tracer }

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Quantum returns the pool's work-unit quantum.
func (p *Pool) Quantum() sim.Duration { return p.quantum }

// Hog degrades worker i to the given speed for the given virtual
// duration, then restores it — the "competing job" interference of the
// survey's NOW-Sort observation. The restore is a simulator event.
func (p *Pool) Hog(i int, speed float64, d sim.Duration) {
	w := p.workers[i]
	w.SetSpeed(speed)
	w.sim.After(d, func() { w.SetSpeed(1) })
}

// SetSpeedAt schedules a speed change for worker i at the given virtual
// time on the worker's own kernel — the one place such an injection is
// safe in a sharded pool, where a foreign shard's clock must not be used
// to time another worker's fault.
func (p *Pool) SetSpeedAt(i int, at sim.Time, speed float64) {
	w := p.workers[i]
	w.sim.At(at, func() { w.SetSpeed(speed) })
}

// snapshotUnits captures every worker's cumulative units.
func snapshotUnits(p *Pool) []float64 {
	out := make([]float64, p.Size())
	for i, w := range p.workers {
		out[i] = w.UnitsDone()
	}
	return out
}

// perWorkerUnits returns the units each worker executed since the
// snapshot.
func perWorkerUnits(p *Pool, before []float64) []float64 {
	out := make([]float64, p.Size())
	for i, w := range p.workers {
		out[i] = w.UnitsDone() - before[i]
	}
	return out
}

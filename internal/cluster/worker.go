// Package cluster implements a real-concurrency (goroutine-based)
// distributed runtime exhibiting and tolerating fail-stutter faults: a
// pool of workers with injectable per-worker slowdowns and stalls, five
// scheduling policies of increasing stutter-awareness (static partition,
// pull-based work queue, hedged tail execution, Shasha-Turek slow-down
// reissue, and detect-and-avoid migration), and a replicated hash table
// whose nodes suffer garbage-collection pauses, after Gribble et al.
//
// Unlike the device substrate, nothing here runs on virtual time: workers
// are goroutines metering work in small real-time quanta, so the
// algorithms face true concurrency, preemption, and timer noise. All
// experiment assertions on this package are therefore ratio-based with
// generous margins.
package cluster

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"failstutter/internal/trace"
)

// Worker is one compute node: it executes abstract work units, each
// costing Quantum/speed of wall-clock time. Speed is adjustable at any
// moment from other goroutines — the injection point for CPU hogs,
// stutter, and crashes (speed permanently 0 is indistinguishable from a
// very long stall, matching the model's view that a stall beyond T *is* a
// failure).
type Worker struct {
	id      int
	quantum time.Duration

	speedBits atomic.Uint64 // float64 bits
	unitsDone atomic.Int64
	tasksDone atomic.Int64

	// tracer/track/epoch record task spans in wall-clock seconds since
	// epoch. Plain fields: Pool.SetTracer must be called before a
	// scheduler's Run spawns worker goroutines (the Tracer itself is
	// mutex-protected once recording starts).
	tracer *trace.Tracer
	track  trace.TrackID
	epoch  time.Time
}

// traceNow returns the worker's trace timestamp: wall-clock seconds since
// the pool's tracing epoch.
func (w *Worker) traceNow() float64 { return time.Since(w.epoch).Seconds() }

// NewWorker builds a worker with the given id and work-unit quantum at
// speed 1.
func NewWorker(id int, quantum time.Duration) *Worker {
	if quantum <= 0 {
		panic("cluster: quantum must be positive")
	}
	w := &Worker{id: id, quantum: quantum}
	w.speedBits.Store(math.Float64bits(1))
	return w
}

// ID returns the worker's index.
func (w *Worker) ID() int { return w.id }

// Speed returns the current speed multiplier.
func (w *Worker) Speed() float64 { return math.Float64frombits(w.speedBits.Load()) }

// SetSpeed sets the speed multiplier; zero stalls the worker. Negative or
// non-finite speeds panic.
func (w *Worker) SetSpeed(s float64) {
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		panic(fmt.Sprintf("cluster: invalid speed %v", s))
	}
	w.speedBits.Store(math.Float64bits(s))
}

// UnitsDone returns the cumulative work units executed — the counter
// detectors probe.
func (w *Worker) UnitsDone() int64 { return w.unitsDone.Load() }

// TasksDone returns completed task executions (including executions that
// later lost the completion race).
func (w *Worker) TasksDone() int64 { return w.tasksDone.Load() }

// minSleep is the shortest span worth handing to time.Sleep: OS timer
// granularity makes shorter sleeps wildly inaccurate, so sub-minSleep
// unit costs are accumulated as debt and paid in batches.
const minSleep = time.Millisecond

// runUnits executes up to units work units, polling abort (if non-nil)
// and the current speed between units; it returns the number of units
// actually executed. Per-unit costs below the sleep granularity are
// batched through a debt accumulator, so wall-clock time tracks
// units/speed closely without per-unit timer noise. A stalled worker naps
// in small slices so it notices both speed recovery and aborts promptly.
func (w *Worker) runUnits(units int, abort func() bool) int {
	var debt time.Duration
	pay := func() {
		if debt > 0 {
			time.Sleep(debt)
			debt = 0
		}
	}
	for u := 0; u < units; u++ {
		if abort != nil && abort() {
			pay()
			return u
		}
		sp := w.Speed()
		for sp == 0 {
			pay()
			time.Sleep(minSleep)
			if abort != nil && abort() {
				return u
			}
			sp = w.Speed()
		}
		debt += time.Duration(float64(w.quantum) / sp)
		if debt >= minSleep {
			pay()
		}
		w.unitsDone.Add(1)
	}
	pay()
	return units
}

// Pool is a set of workers sharing one quantum.
type Pool struct {
	workers []*Worker
	quantum time.Duration
}

// NewPool builds n workers with the given quantum.
func NewPool(n int, quantum time.Duration) *Pool {
	if n < 1 {
		panic("cluster: pool needs at least one worker")
	}
	p := &Pool{quantum: quantum}
	for i := 0; i < n; i++ {
		p.workers = append(p.workers, NewWorker(i, quantum))
	}
	return p
}

// Workers returns the pool members.
func (p *Pool) Workers() []*Worker { return p.workers }

// SetTracer attaches a span tracer to every worker, recording each task
// execution on a "worker-<id>" track in wall-clock seconds since this
// call. Call before handing the pool to a scheduler: worker goroutines
// read the tracer field without synchronization.
func (p *Pool) SetTracer(t *trace.Tracer) {
	epoch := time.Now()
	for _, w := range p.workers {
		w.tracer = t
		w.epoch = epoch
		if t != nil {
			w.track = t.Track(fmt.Sprintf("worker-%d", w.id))
		}
	}
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Quantum returns the pool's work-unit quantum.
func (p *Pool) Quantum() time.Duration { return p.quantum }

// Hog degrades worker i to the given speed for the given duration, then
// restores it — the "competing job" interference of the survey's NOW-Sort
// observation. It returns immediately; the restore happens on a timer.
func (p *Pool) Hog(i int, speed float64, d time.Duration) {
	w := p.workers[i]
	w.SetSpeed(speed)
	time.AfterFunc(d, func() { w.SetSpeed(1) })
}

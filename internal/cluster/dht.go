package cluster

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"failstutter/internal/stats"
)

// DHTParams configures a replicated in-memory hash table in the style of
// Gribble et al.'s distributed data structures: every key is stored on
// Replication consecutive nodes, and a put is acknowledged according to
// the replication mode.
type DHTParams struct {
	// Nodes is the number of storage bricks.
	Nodes int
	// Replication is the number of copies per key (>= 1).
	Replication int
	// OpQuantum is the service time of one operation at node speed 1.
	OpQuantum time.Duration
	// Adaptive enables fail-stutter awareness: a peer-relative detector
	// watches node throughput, and puts touching a flagged replica are
	// acknowledged without waiting for it; the write is still delivered
	// (hinted handoff) and counted as redundancy debt in Hints.
	Adaptive bool
	// SampleEvery is the adaptive detector's sampling period (default
	// 20 op quanta).
	SampleEvery time.Duration
	// Threshold is the peer-relative fraction below which a node is
	// flagged (default 0.5).
	Threshold float64
}

// DHT is the running structure. Create with NewDHT, drive with Put or
// RunLoad, and always Stop it.
type DHT struct {
	p     DHTParams
	nodes []*dhtNode
	flags []atomic.Bool
	hints atomic.Int64
	puts  atomic.Int64
	stop  chan struct{}
	wg    sync.WaitGroup
}

type dhtNode struct {
	w   *Worker
	ops chan func()
	// outstanding counts enqueued-but-unfinished operations, including
	// the one in service — channel length alone misses it, and a node
	// blocked on its only op would otherwise look idle to the detector.
	outstanding atomic.Int64
}

// NewDHT builds and starts the node goroutines.
func NewDHT(p DHTParams) *DHT {
	if p.Nodes < 1 || p.Replication < 1 || p.Replication > p.Nodes || p.OpQuantum <= 0 {
		panic("cluster: invalid DHT params")
	}
	if p.Threshold <= 0 {
		p.Threshold = 0.5
	}
	if p.SampleEvery <= 0 {
		p.SampleEvery = 20 * p.OpQuantum
	}
	d := &DHT{p: p, stop: make(chan struct{})}
	d.flags = make([]atomic.Bool, p.Nodes)
	for i := 0; i < p.Nodes; i++ {
		n := &dhtNode{
			w:   NewWorker(i, p.OpQuantum),
			ops: make(chan func(), 1<<16),
		}
		d.nodes = append(d.nodes, n)
		d.wg.Add(1)
		go func(n *dhtNode) {
			defer d.wg.Done()
			for fn := range n.ops {
				n.w.runUnits(1, nil)
				fn()
				n.outstanding.Add(-1)
			}
		}(n)
	}
	if p.Adaptive {
		d.wg.Add(1)
		go d.detectorLoop()
	}
	return d
}

// Node returns the i'th node's worker, the injection point for GC pauses
// and slowdowns.
func (d *DHT) Node(i int) *Worker { return d.nodes[i].w }

// Puts returns completed (acknowledged) puts.
func (d *DHT) Puts() int64 { return d.puts.Load() }

// Hints returns the number of replica writes acknowledged before
// delivery under the adaptive mode — the redundancy debt taken on to ride
// out a stutter.
func (d *DHT) Hints() int64 { return d.hints.Load() }

// Flagged reports whether node i is currently considered
// performance-faulty by the detector.
func (d *DHT) Flagged(i int) bool { return d.flags[i].Load() }

// replicas returns the node indices holding the key.
func (d *DHT) replicas(key uint64) []int {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(key >> (8 * i))
	}
	h.Write(buf[:])
	base := int(h.Sum64() % uint64(d.p.Nodes))
	out := make([]int, d.p.Replication)
	for i := range out {
		out[i] = (base + i) % d.p.Nodes
	}
	return out
}

// Put stores the key and blocks until acknowledged per the replication
// mode.
func (d *DHT) Put(key uint64) {
	reps := d.replicas(key)
	var syncReps, asyncReps []int
	if d.p.Adaptive {
		for _, r := range reps {
			if d.flags[r].Load() {
				asyncReps = append(asyncReps, r)
			} else {
				syncReps = append(syncReps, r)
			}
		}
		if len(syncReps) == 0 {
			// Every replica is stuttering: no healthy copy to anchor on,
			// fall back to synchronous semantics.
			syncReps, asyncReps = reps, nil
		}
	} else {
		syncReps = reps
	}
	var wg sync.WaitGroup
	wg.Add(len(syncReps))
	for _, r := range syncReps {
		d.nodes[r].outstanding.Add(1)
		d.nodes[r].ops <- wg.Done
	}
	for _, r := range asyncReps {
		d.hints.Add(1)
		d.nodes[r].outstanding.Add(1)
		d.nodes[r].ops <- func() {}
	}
	wg.Wait()
	d.puts.Add(1)
}

// detectorLoop is the adaptive mode's peer-relative stutter detector.
func (d *DHT) detectorLoop() {
	defer d.wg.Done()
	last := make([]int64, d.p.Nodes)
	for i, n := range d.nodes {
		last[i] = n.w.UnitsDone()
	}
	rates := make([]float64, d.p.Nodes)
	medScratch := make([]float64, d.p.Nodes)
	tick := time.NewTicker(d.p.SampleEvery)
	defer tick.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-tick.C:
			for i, n := range d.nodes {
				cur := n.w.UnitsDone()
				rates[i] = float64(cur - last[i])
				last[i] = cur
			}
			// rates stays index-aligned with the nodes below, so the
			// in-place median works on a reused scratch copy.
			med := stats.MedianInPlace(medScratch[:copy(medScratch, rates)])
			for i := range rates {
				backlog := d.nodes[i].outstanding.Load()
				switch {
				case backlog == 0:
					// Nothing outstanding: no evidence of ongoing stutter;
					// the next put will re-probe the node.
					d.flags[i].Store(false)
				case med <= 0:
					// Fleet idle but this node has a backlog: keep the
					// current assessment.
				default:
					// Flag divergent nodes that have work they are failing
					// to do. Recovery requires both a healthy rate and a
					// drained backlog — unflagging onto a mountain of
					// hinted writes would stall every subsequent
					// synchronous put behind them.
					slow := rates[i] < d.p.Threshold*med
					d.flags[i].Store(slow || backlog > 16)
				}
			}
		}
	}
}

// RunLoad drives the table with the given number of closed-loop client
// goroutines for the duration, using sequential keys per client (uniform
// placement). It returns the number of acknowledged puts.
func (d *DHT) RunLoad(clients int, duration time.Duration) int64 {
	start := d.puts.Load()
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key := uint64(c) << 32
			for time.Now().Before(deadline) {
				d.Put(key)
				key++
			}
		}(c)
	}
	wg.Wait()
	return d.puts.Load() - start
}

// StartGC injects periodic garbage-collection pauses on node i: every
// period the node stalls completely for pause. Returns a cancel func.
func (d *DHT) StartGC(i int, period, pause time.Duration) func() {
	stop := make(chan struct{})
	w := d.nodes[i].w
	go func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				w.SetSpeed(1)
				return
			case <-tick.C:
				w.SetSpeed(0)
				select {
				case <-stop:
					w.SetSpeed(1)
					return
				case <-time.After(pause):
					w.SetSpeed(1)
				}
			}
		}
	}()
	return func() { close(stop) }
}

// Stop shuts down the node goroutines. Pending queued operations are
// executed first; callers must not Put after Stop.
func (d *DHT) Stop() {
	close(d.stop)
	for _, n := range d.nodes {
		close(n.ops)
	}
	d.wg.Wait()
}

package cluster

import (
	"fmt"

	"failstutter/internal/detect"
	"failstutter/internal/sim"
	"failstutter/internal/stats"
	"failstutter/internal/trace"
)

// DHTParams configures a replicated in-memory hash table in the style of
// Gribble et al.'s distributed data structures: every key is stored on
// Replication consecutive nodes, and a put is acknowledged according to
// the replication mode.
type DHTParams struct {
	// Nodes is the number of storage bricks.
	Nodes int
	// Replication is the number of copies per key (>= 1).
	Replication int
	// OpQuantum is the virtual service time of one operation at node
	// speed 1.
	OpQuantum sim.Duration
	// Adaptive enables fail-stutter awareness: a peer-relative detector
	// watches node throughput, and puts touching a flagged replica are
	// acknowledged without waiting for it; the write is still delivered
	// (hinted handoff) and counted as redundancy debt in Hints.
	Adaptive bool
	// SampleEvery is the adaptive detector's sampling period (default
	// 20 op quanta).
	SampleEvery sim.Duration
	// Threshold is the peer-relative fraction below which a node is
	// flagged (default 0.5).
	Threshold float64
}

// DHT is the running structure, entirely event-driven on its simulator:
// node service, replication acks, GC pauses, and the detector are all
// simulator events. Create with NewDHT, then drive with RunLoad, or with
// Put followed by running the simulator.
type DHT struct {
	p     DHTParams
	sim   *sim.Simulator
	ss    *sim.ShardedSimulator // non-nil when built with NewShardedDHT
	nodes []*DHTNode
	flags []bool
	hints int64
	puts  int64

	// Detector state (adaptive mode), persistent across RunLoad calls.
	lastUnits  []float64
	rates      []float64
	medScratch []float64

	// tracer, when non-nil, records one "put" span per ack group on the
	// "dht" track (issue to acknowledgment) plus hinted-handoff instants.
	tracer *trace.Tracer
	track  trace.TrackID

	// audited, when non-nil, logs the adaptive detector's flag transitions
	// per node with peer-relative evidence.
	audited []*detect.Audited
	audDet  []*flagDetector

	// Freelists keep the steady-state put path allocation-free: one op
	// per replica write, one ack group per put.
	opFree  []*dhtOp
	ackFree []*ackGroup

	repScratch []int
}

// DHTNode is one storage brick: a queueing station serving one operation
// per OpQuantum at speed 1. Speed is the injection point for GC pauses
// and slowdowns.
type DHTNode struct {
	st *sim.Station
	// gcGen serializes overlapping GC schedules: a pause-recovery event
	// only restores speed if no newer stall has started since.
	gcGen int
	// syncHead/syncTail is the intrusive FIFO of synchronous replica
	// writes pending on this node. When the detector flags the node these
	// are released as hinted handoffs: acknowledged immediately, still
	// delivered — otherwise every client blocked on the stutterer at flag
	// time would stay blocked for the whole stall.
	syncHead, syncTail *dhtOp
}

// SetSpeed sets the node's speed multiplier; zero stalls it, preserving
// progress on the operation in service.
func (n *DHTNode) SetSpeed(s float64) { n.st.SetMultiplier(s) }

// Speed returns the node's current speed multiplier.
func (n *DHTNode) Speed() float64 { return n.st.Multiplier() }

// UnitsDone returns the node's cumulative operations served, including
// partial progress on the one in service — the smooth counter the
// detector probes.
func (n *DHTNode) UnitsDone() float64 {
	return float64(n.st.Completed()) + n.st.ServedInCurrent()
}

// Outstanding returns enqueued-but-unfinished operations, including the
// one in service — queue length alone misses it, and a node blocked on
// its only op would otherwise look idle to the detector.
func (n *DHTNode) Outstanding() int {
	out := n.st.QueueLen()
	if n.st.InService() != nil {
		out++
	}
	return out
}

// Station returns the node's underlying queueing station.
func (n *DHTNode) Station() *sim.Station { return n.st }

// dhtOp is one replica write: a reusable unit-size request bound to its
// node's station, linked to the put's ack group (nil for hinted writes).
type dhtOp struct {
	d     *DHT
	req   sim.Request
	group *ackGroup

	// node is the brick this write targets; prev/next/linked thread the
	// op through that node's pending-sync list while group is owed.
	node       int
	prev, next *dhtOp
	linked     bool
}

// ackGroup counts down outstanding synchronous replica writes for one
// put and fires the caller's callback on the last ack.
type ackGroup struct {
	need  int
	onAck func()
	// span is the put's open tracer span, zero when tracing is off.
	span trace.SpanID
}

// NewDHT builds the table on the simulator.
func NewDHT(s *sim.Simulator, p DHTParams) *DHT {
	if p.Nodes < 1 || p.Replication < 1 || p.Replication > p.Nodes || p.OpQuantum <= 0 {
		panic("cluster: invalid DHT params")
	}
	if p.Threshold <= 0 {
		p.Threshold = 0.5
	}
	if p.SampleEvery <= 0 {
		p.SampleEvery = 20 * p.OpQuantum
	}
	d := &DHT{
		p:          p,
		sim:        s,
		flags:      make([]bool, p.Nodes),
		lastUnits:  make([]float64, p.Nodes),
		rates:      make([]float64, p.Nodes),
		medScratch: make([]float64, p.Nodes),
		repScratch: make([]int, p.Replication),
	}
	for i := 0; i < p.Nodes; i++ {
		d.nodes = append(d.nodes, &DHTNode{
			st: sim.NewStation(s, fmt.Sprintf("node-%d", i), 1/p.OpQuantum),
		})
	}
	return d
}

// NewShardedDHT builds the table under a sharded coordinator, pinned as a
// group to the shard its identity ("dht") hashes to. The pin is load-borne,
// not incidental: a synchronous put's ack path closes the moment the last
// replica write completes — a zero-latency interaction that admits no
// positive lookahead — so the bricks cannot be split across shards. Running
// under the coordinator still matters: the table shares the fleet's window
// clock with whatever else the experiment runs, and its results are
// trivially byte-identical at every shard count.
func NewShardedDHT(ss *sim.ShardedSimulator, p DHTParams) *DHT {
	d := NewDHT(ss.Shard(ss.ShardFor("dht")), p)
	d.ss = ss
	return d
}

// Sim returns the simulator the table runs on — its home shard's kernel
// when built with NewShardedDHT.
func (d *DHT) Sim() *sim.Simulator { return d.sim }

// SetTracer attaches a span tracer: every node's station records its
// queue/service spans, each put records an ack-group span on the "dht"
// track from issue to acknowledgment (the key as the span arg), and every
// hinted-handoff release is an instant. A nil tracer detaches.
func (d *DHT) SetTracer(t *trace.Tracer) {
	// A sharded DHT lives entirely on its home shard; with per-shard
	// collectors installed, its spans record there and MergeTelemetry
	// folds them into the tracer passed here.
	if t != nil && d.ss != nil {
		if st := d.ss.ShardTracer(d.ss.ShardFor("dht")); st != nil {
			t = st
		}
	}
	d.tracer = t
	if t != nil {
		d.track = t.Track("dht")
	}
	for _, n := range d.nodes {
		n.st.SetTracer(t)
	}
}

// EnableAudit logs the adaptive detector's per-node flag transitions to
// the given audit trail, wrapping each node's flag in a detect.Audited
// transition logger with the sampled rate and fleet median as evidence.
func (d *DHT) EnableAudit(log *trace.AuditLog) {
	// Same redirect as SetTracer: node verdicts are issued on the home
	// shard, so they record into its audit collector and reach the log
	// passed here through the deterministic (time, component) merge.
	if log != nil && d.ss != nil {
		if sa := d.ss.ShardAudit(d.ss.ShardFor("dht")); sa != nil {
			log = sa
		}
	}
	n := len(d.nodes)
	d.audDet = make([]*flagDetector, n)
	d.audited = make([]*detect.Audited, n)
	for i := 0; i < n; i++ {
		d.audDet[i] = &flagDetector{flagged: &d.flags[i], threshold: d.p.Threshold}
		d.audited[i] = detect.NewAudited(d.audDet[i], log, fmt.Sprintf("node-%d", i))
	}
}

// Node returns the i'th storage brick.
func (d *DHT) Node(i int) *DHTNode { return d.nodes[i] }

// Puts returns completed (acknowledged) puts.
func (d *DHT) Puts() int64 { return d.puts }

// Hints returns the number of replica writes acknowledged before
// delivery under the adaptive mode — the redundancy debt taken on to
// ride out a stutter.
func (d *DHT) Hints() int64 { return d.hints }

// Flagged reports whether node i is currently considered
// performance-faulty by the detector.
func (d *DHT) Flagged(i int) bool { return d.flags[i] }

// replicas fills the reused scratch slice with the node indices holding
// the key: FNV-64a over the key's little-endian bytes picks the base,
// then Replication consecutive nodes.
func (d *DHT) replicas(key uint64) []int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(key >> (8 * i)))
		h *= prime64
	}
	base := int(h % uint64(d.p.Nodes))
	for i := range d.repScratch {
		d.repScratch[i] = (base + i) % d.p.Nodes
	}
	return d.repScratch
}

func (d *DHT) getOp() *dhtOp {
	if n := len(d.opFree); n > 0 {
		op := d.opFree[n-1]
		d.opFree = d.opFree[:n-1]
		return op
	}
	op := &dhtOp{d: d}
	op.req.Size = 1
	op.req.OnDone = op.done
	return op
}

func (op *dhtOp) done(*sim.Request) {
	d := op.d
	if op.linked {
		d.unlink(op)
	}
	g := op.group
	op.group = nil
	d.opFree = append(d.opFree, op)
	if g != nil {
		d.groupAck(g)
	}
}

// groupAck counts one replica ack against the group, completing the put
// on the last one.
func (d *DHT) groupAck(g *ackGroup) {
	g.need--
	if g.need != 0 {
		return
	}
	d.puts++
	if g.span != 0 {
		d.tracer.End(g.span, d.sim.Now())
		g.span = 0
	}
	cb := g.onAck
	g.onAck = nil
	d.ackFree = append(d.ackFree, g)
	if cb != nil {
		cb()
	}
}

// unlink removes op from its node's pending-sync list.
func (d *DHT) unlink(op *dhtOp) {
	n := d.nodes[op.node]
	if op.prev != nil {
		op.prev.next = op.next
	} else {
		n.syncHead = op.next
	}
	if op.next != nil {
		op.next.prev = op.prev
	} else {
		n.syncTail = op.prev
	}
	op.prev, op.next = nil, nil
	op.linked = false
}

// link appends op to its node's pending-sync list.
func (d *DHT) link(op *dhtOp) {
	n := d.nodes[op.node]
	op.prev = n.syncTail
	op.next = nil
	op.linked = true
	if n.syncTail != nil {
		n.syncTail.next = op
	} else {
		n.syncHead = op
	}
	n.syncTail = op
}

// releaseSync converts every synchronous write pending on node i into a
// hinted handoff: the ack is granted now, the write itself stays queued
// for delivery. Called on the flag transition so clients blocked on the
// stutterer resume immediately. The list is detached first: an ack
// callback may issue new puts, and if every replica of a new key is
// flagged its fallback-sync writes must not be converted in the same
// sweep.
func (d *DHT) releaseSync(i int) {
	if d.tracer != nil {
		d.tracer.Instant(d.track, "hinted-handoff", "dht", d.sim.Now())
	}
	n := d.nodes[i]
	op := n.syncHead
	n.syncHead, n.syncTail = nil, nil
	for op != nil {
		next := op.next
		op.prev, op.next, op.linked = nil, nil, false
		g := op.group
		op.group = nil
		d.hints++
		d.groupAck(g)
		op = next
	}
}

// Put stores the key, delivering one write per replica, and schedules
// onAck for the instant the put is acknowledged per the replication
// mode. onAck may be nil. The write happens as the simulator runs.
func (d *DHT) Put(key uint64, onAck func()) {
	reps := d.replicas(key)
	healthy := len(reps)
	if d.p.Adaptive {
		healthy = 0
		for _, r := range reps {
			if !d.flags[r] {
				healthy++
			}
		}
	}
	// Every replica stuttering means there is no healthy copy to anchor
	// on: fall back to synchronous semantics on the full set.
	allSync := healthy == len(reps) || healthy == 0
	var g *ackGroup
	if n := len(d.ackFree); n > 0 {
		g = d.ackFree[n-1]
		d.ackFree = d.ackFree[:n-1]
	} else {
		g = &ackGroup{}
	}
	if allSync {
		g.need = len(reps)
	} else {
		g.need = healthy
	}
	g.onAck = onAck
	if d.tracer != nil {
		g.span = d.tracer.BeginArg(d.track, "put", "dht", 0, d.sim.Now(), int64(key))
	}
	for _, r := range reps {
		op := d.getOp()
		op.node = r
		if allSync || !d.flags[r] {
			op.group = g
			d.link(op)
		} else {
			d.hints++
		}
		d.nodes[r].st.Submit(&op.req)
	}
}

// sample is one detector tick: peer-relative throughput comparison, with
// flag hysteresis on backlog.
func (d *DHT) sample() {
	for i, n := range d.nodes {
		cur := n.UnitsDone()
		d.rates[i] = cur - d.lastUnits[i]
		d.lastUnits[i] = cur
	}
	// rates stays index-aligned with the nodes below, so the in-place
	// median works on a reused scratch copy.
	med := stats.MedianInPlace(d.medScratch[:copy(d.medScratch, d.rates)])
	for i := range d.rates {
		backlog := d.nodes[i].Outstanding()
		switch {
		case backlog == 0:
			// Nothing outstanding: no evidence of ongoing stutter; the
			// next put will re-probe the node.
			d.flags[i] = false
		case med <= 0:
			// Fleet idle but this node has a backlog: keep the current
			// assessment.
		default:
			// Flag divergent nodes that have work they are failing to do.
			// Recovery requires both a healthy rate and a drained backlog
			// — unflagging onto a mountain of hinted writes would stall
			// every subsequent synchronous put behind them.
			slow := d.rates[i] < d.p.Threshold*med
			flag := slow || backlog > 16
			if flag && !d.flags[i] {
				d.releaseSync(i)
			}
			d.flags[i] = flag
		}
	}
	if d.audited != nil {
		now := d.sim.Now()
		for i, a := range d.audited {
			d.audDet[i].med = med
			a.Observe(now, d.rates[i])
		}
	}
}

// RunLoad drives the table with the given number of closed-loop clients
// for the virtual duration, using sequential keys per client (uniform
// placement). Each client issues its next put the instant the previous
// one is acknowledged. The simulator runs until every put issued before
// the deadline has been acknowledged; it returns the number of
// acknowledged puts.
func (d *DHT) RunLoad(clients int, duration sim.Duration) int64 {
	if clients < 1 || duration <= 0 {
		panic("cluster: RunLoad needs at least one client and a positive duration")
	}
	s := d.sim
	start := d.puts
	deadline := s.Now() + duration
	active := clients
	loadRunning := true
	for c := 0; c < clients; c++ {
		key := uint64(c) << 32
		var onAck func()
		issue := func() { d.Put(key, onAck) }
		onAck = func() {
			if s.Now() < deadline {
				key++
				issue()
				return
			}
			active--
			if active == 0 {
				loadRunning = false
				if d.ss == nil {
					s.Stop()
				}
			}
		}
		issue()
	}
	if d.p.Adaptive {
		// Seed the rate baseline at load start so the first sample
		// measures this load's first window, then tick until the load
		// drains. Stale ticks from a previous load are dead: their
		// captured flag is false.
		for i, n := range d.nodes {
			d.lastUnits[i] = n.UnitsDone()
		}
		var tick func()
		tick = func() {
			if !loadRunning {
				return
			}
			d.sample()
			if loadRunning {
				s.After(d.p.SampleEvery, tick)
			}
		}
		s.After(d.p.SampleEvery, tick)
	}
	if d.ss != nil {
		// Sharded: the home shard's kernel is driven by the coordinator,
		// and an armed GC schedule would keep its event chain alive forever,
		// so the run is stopped from the barrier the moment the last client
		// acknowledges. Counters are untouched by anything after that ack —
		// stale load ticks see loadRunning false — so the extra events the
		// final window runs change nothing.
		d.ss.SetBarrier(func(h sim.Time) {
			if active == 0 {
				d.ss.Stop()
			}
		})
		d.ss.Run()
		d.ss.SetBarrier(nil)
	} else {
		s.Run()
	}
	if active != 0 {
		panic(fmt.Sprintf("cluster: DHT load stalled with %d clients blocked (is a replica permanently at speed 0?)", active))
	}
	return d.puts - start
}

// Settle drains all outstanding node work (any still-armed GC schedule
// must be cancelled first, or the drain never finishes) and, in adaptive
// mode, takes one detector sample so flags reflect the drained state.
func (d *DHT) Settle() {
	if d.ss != nil {
		d.ss.Run()
	} else {
		d.sim.Run()
	}
	if d.p.Adaptive {
		d.sample()
	}
}

// StartGC injects periodic garbage-collection pauses on node i: every
// period of virtual time the node stalls completely for pause, matching
// the paper's Section 2 observation of a GC-ing brick stalling
// synchronous replication. Returns a cancel func that restores full
// speed and disarms the schedule.
func (d *DHT) StartGC(i int, period, pause sim.Duration) func() {
	if period <= 0 || pause <= 0 {
		panic("cluster: StartGC needs positive period and pause")
	}
	n := d.nodes[i]
	cancelled := false
	var stall func()
	stall = func() {
		if cancelled {
			return
		}
		n.SetSpeed(0)
		n.gcGen++
		gen := n.gcGen
		d.sim.After(pause, func() {
			if !cancelled && n.gcGen == gen {
				n.SetSpeed(1)
			}
		})
		d.sim.After(period, stall)
	}
	d.sim.After(period, stall)
	return func() {
		if cancelled {
			return
		}
		cancelled = true
		n.SetSpeed(1)
	}
}

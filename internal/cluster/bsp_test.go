package cluster

import (
	"strings"
	"testing"

	"failstutter/internal/sim"
)

func TestBSPCompletesAllWork(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 4, q)
	r := RunBSP(p, BSPParams{Rounds: 3, UnitsPerWorkerRound: 40})
	var sum float64
	for _, u := range r.PerWorkerUnits {
		sum += u
	}
	if sum != 3*4*40 {
		t.Fatalf("executed %v units, want %d", sum, 3*4*40)
	}
	if !strings.Contains(r.String(), "static") {
		t.Fatalf("report string %q", r.String())
	}
	// All healthy: each round is exactly 40q, barriers cost nothing.
	if !near(r.Makespan, 3*40*q) {
		t.Fatalf("makespan = %v, want %v", r.Makespan, 3*40*q)
	}
}

func TestBSPElasticCompletesAllWork(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 4, q)
	r := RunBSP(p, BSPParams{Rounds: 3, UnitsPerWorkerRound: 40, Elastic: true})
	var sum float64
	for _, u := range r.PerWorkerUnits {
		sum += u
	}
	if sum != 3*4*40 {
		t.Fatalf("executed %v units, want %d", sum, 3*4*40)
	}
	if !strings.Contains(r.String(), "elastic") {
		t.Fatalf("report string %q", r.String())
	}
}

func TestBSPBarrierGatedBySlowWorker(t *testing.T) {
	// One worker at quarter speed: static BSP pays exactly 4x on every
	// round; elastic BSP redistributes within rounds and stays close to
	// healthy.
	run := func(elastic bool) sim.Duration {
		s := sim.New()
		p := NewPool(s, 4, q)
		p.Workers()[0].SetSpeed(0.25)
		return RunBSP(p, BSPParams{Rounds: 4, UnitsPerWorkerRound: 60, Elastic: elastic, Grain: 20}).Makespan
	}
	static := run(false)
	elastic := run(true)
	if !near(static, 4*60*q/0.25) {
		t.Fatalf("static makespan = %v, want exactly %v", static, 4*60*q/0.25)
	}
	if elastic*2 > static {
		t.Fatalf("elastic BSP %v not clearly below static %v with a slow worker",
			elastic, static)
	}
}

func TestBSPElasticSkewsWorkToFastWorkers(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 4, q)
	p.Workers()[0].SetSpeed(0.2)
	r := RunBSP(p, BSPParams{Rounds: 2, UnitsPerWorkerRound: 60, Elastic: true, Grain: 20})
	slow := r.PerWorkerUnits[0]
	for i, u := range r.PerWorkerUnits[1:] {
		if slow >= u {
			t.Fatalf("slow worker did %v units, healthy worker %d did %v", slow, i+1, u)
		}
	}
}

func TestBSPDeterministic(t *testing.T) {
	run := func() BSPReport {
		s := sim.New()
		p := NewPool(s, 4, q)
		p.Hog(0, 0.25, 3e-3)
		return RunBSP(p, BSPParams{Rounds: 4, UnitsPerWorkerRound: 60, Elastic: true, Grain: 20})
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Fatalf("BSP not deterministic: %v vs %v", a.Makespan, b.Makespan)
	}
	for i := range a.PerWorkerUnits {
		if a.PerWorkerUnits[i] != b.PerWorkerUnits[i] {
			t.Fatalf("per-worker units differ at %d: %v vs %v", i, a.PerWorkerUnits[i], b.PerWorkerUnits[i])
		}
	}
}

func TestBSPInvalidParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid BSP params did not panic")
		}
	}()
	RunBSP(NewPool(sim.New(), 2, q), BSPParams{})
}

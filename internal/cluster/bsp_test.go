package cluster

import (
	"strings"
	"testing"
	"time"
)

func TestBSPCompletesAllWork(t *testing.T) {
	p := NewPool(4, q)
	r := RunBSP(p, BSPParams{Rounds: 3, UnitsPerWorkerRound: 40})
	var sum int64
	for _, u := range r.PerWorkerUnits {
		sum += u
	}
	if sum != 3*4*40 {
		t.Fatalf("executed %d units, want %d", sum, 3*4*40)
	}
	if !strings.Contains(r.String(), "static") {
		t.Fatalf("report string %q", r.String())
	}
}

func TestBSPElasticCompletesAllWork(t *testing.T) {
	p := NewPool(4, q)
	r := RunBSP(p, BSPParams{Rounds: 3, UnitsPerWorkerRound: 40, Elastic: true})
	var sum int64
	for _, u := range r.PerWorkerUnits {
		sum += u
	}
	if sum != 3*4*40 {
		t.Fatalf("executed %d units, want %d", sum, 3*4*40)
	}
	if !strings.Contains(r.String(), "elastic") {
		t.Fatalf("report string %q", r.String())
	}
}

func TestBSPBarrierGatedBySlowWorker(t *testing.T) {
	// One worker at quarter speed: static BSP pays ~4x on every round;
	// elastic BSP redistributes within rounds and stays close to healthy.
	run := func(elastic bool) time.Duration {
		p := NewPool(4, q)
		p.Workers()[0].SetSpeed(0.25)
		return RunBSP(p, BSPParams{Rounds: 4, UnitsPerWorkerRound: 60, Elastic: elastic, Grain: 20}).Makespan
	}
	static := run(false)
	elastic := run(true)
	if elastic*2 > static {
		t.Fatalf("elastic BSP %v not clearly below static %v with a slow worker",
			elastic, static)
	}
}

func TestBSPElasticSkewsWorkToFastWorkers(t *testing.T) {
	p := NewPool(4, q)
	p.Workers()[0].SetSpeed(0.2)
	r := RunBSP(p, BSPParams{Rounds: 2, UnitsPerWorkerRound: 60, Elastic: true, Grain: 20})
	slow := r.PerWorkerUnits[0]
	for i, u := range r.PerWorkerUnits[1:] {
		if slow >= u {
			t.Fatalf("slow worker did %d units, healthy worker %d did %d", slow, i+1, u)
		}
	}
}

func TestBSPInvalidParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid BSP params did not panic")
		}
	}()
	RunBSP(NewPool(2, q), BSPParams{})
}

package cluster

import (
	"testing"
	"time"
)

func sumUnits(r Report) int64 {
	var s int64
	for _, u := range r.PerWorkerUnits {
		s += u
	}
	return s
}

func TestUniformTasks(t *testing.T) {
	ts := UniformTasks(5, 7)
	if len(ts) != 5 {
		t.Fatalf("len = %d", len(ts))
	}
	for i, task := range ts {
		if task.ID != i || task.Units != 7 {
			t.Fatalf("task %d = %+v", i, task)
		}
	}
}

func TestStaticPartitionCompletesAll(t *testing.T) {
	p := NewPool(4, q)
	tasks := UniformTasks(40, 5)
	r := StaticPartition{}.Run(p, tasks)
	if r.Tasks != 40 {
		t.Fatalf("tasks = %d", r.Tasks)
	}
	if got := sumUnits(r); got != 200 {
		t.Fatalf("units executed = %d, want 200", got)
	}
	if r.WastedUnits != 0 || r.Duplicates != 0 {
		t.Fatalf("static run wasted %d / dup %d", r.WastedUnits, r.Duplicates)
	}
}

func TestWorkQueueCompletesAll(t *testing.T) {
	p := NewPool(4, q)
	r := WorkQueue{}.Run(p, UniformTasks(40, 5))
	if got := sumUnits(r); got != 200 {
		t.Fatalf("units executed = %d, want 200", got)
	}
}

// The paper's headline compute claim (NOW-Sort, E15): one slow node halves
// a statically partitioned job, while a pull-based design sheds the
// imbalance.
func TestWorkQueueBeatsStaticUnderSlowWorker(t *testing.T) {
	run := func(s Scheduler) time.Duration {
		p := NewPool(4, q)
		p.Workers()[0].SetSpeed(0.2)
		// Tasks must cost well over the ~1 ms sleep floor at nominal
		// speed, or the floor flattens every speed ratio.
		return s.Run(p, UniformTasks(60, 40)).Makespan
	}
	static := run(StaticPartition{})
	queue := run(WorkQueue{})
	if queue*2 > static {
		t.Fatalf("work queue %v not clearly faster than static %v under a slow worker",
			queue, static)
	}
}

func TestGaugedPartitionHandlesStaticSkew(t *testing.T) {
	run := func(s Scheduler) time.Duration {
		p := NewPool(4, q)
		p.Workers()[0].SetSpeed(0.25)
		return s.Run(p, UniformTasks(60, 40)).Makespan
	}
	static := run(StaticPartition{})
	gauged := run(GaugedPartition{ProbeUnits: 40})
	if gauged*3 > static*2 {
		t.Fatalf("gauged %v not clearly faster than static %v under static skew",
			gauged, static)
	}
}

func TestHedgedClonesTail(t *testing.T) {
	// One worker stalls completely mid-run. Hedged must still finish (the
	// stranded task is cloned; the stalled execution aborts on claim).
	p := NewPool(4, q)
	go func() {
		time.Sleep(5 * time.Millisecond)
		p.Workers()[0].SetSpeed(0)
	}()
	done := make(chan Report, 1)
	go func() { done <- Hedged{}.Run(p, UniformTasks(60, 10)) }()
	select {
	case r := <-done:
		if r.Duplicates == 0 {
			t.Fatal("hedged run cloned nothing despite a stalled worker")
		}
		p.Workers()[0].SetSpeed(1) // release the aborting goroutine
	case <-time.After(10 * time.Second):
		t.Fatal("hedged run hung on a stalled worker")
	}
}

func TestReissueBeatsWorkQueueUnderMidJobStall(t *testing.T) {
	run := func(s Scheduler) time.Duration {
		p := NewPool(4, q)
		// Worker 0 drops to 2% speed 10 ms in and stays degraded.
		go func() {
			time.Sleep(10 * time.Millisecond)
			p.Workers()[0].SetSpeed(0.02)
		}()
		r := s.Run(p, UniformTasks(60, 20))
		return r.Makespan
	}
	queue := run(WorkQueue{})
	reissue := run(Reissue{TimeoutFactor: 3})
	if reissue*3 > queue*2 {
		t.Fatalf("reissue %v not clearly faster than work queue %v under a degraded straggler",
			reissue, queue)
	}
}

func TestReissueExactlyOnceAccounting(t *testing.T) {
	p := NewPool(4, q)
	go func() {
		time.Sleep(5 * time.Millisecond)
		p.Workers()[0].SetSpeed(0.05)
	}()
	totalUnits := int64(60 * 10)
	r := Reissue{TimeoutFactor: 2}.Run(p, UniformTasks(60, 10))
	p.Workers()[0].SetSpeed(1)
	// Work conservation: executed units = required units + wasted units.
	if got := sumUnits(r); got != totalUnits+r.WastedUnits {
		t.Fatalf("executed %d != required %d + wasted %d", got, totalUnits, r.WastedUnits)
	}
}

func TestDetectAvoidMigratesFromStutterer(t *testing.T) {
	run := func(s Scheduler) time.Duration {
		p := NewPool(4, q)
		p.Workers()[0].SetSpeed(0.1)
		return s.Run(p, UniformTasks(60, 40)).Makespan
	}
	static := run(StaticPartition{})
	da := run(DetectAvoid{})
	if da*2 > static {
		t.Fatalf("detect-avoid %v not clearly faster than static %v", da, static)
	}
}

func TestDetectAvoidNoFalseMigrationWhenHealthy(t *testing.T) {
	p := NewPool(4, q)
	r := DetectAvoid{}.Run(p, UniformTasks(40, 5))
	if got := sumUnits(r); got != 200 {
		t.Fatalf("units executed = %d, want 200", got)
	}
	// With all workers healthy the split should stay roughly even.
	for i, u := range r.PerWorkerUnits {
		if u < 20 || u > 80 {
			t.Fatalf("healthy run units badly skewed: worker %d did %d of 200", i, u)
		}
	}
}

func TestSchedulersListOrdered(t *testing.T) {
	ss := Schedulers()
	if len(ss) != 6 {
		t.Fatalf("scheduler set = %d entries", len(ss))
	}
	if ss[0].Name() != "static-partition" || ss[len(ss)-1].Name() != "detect-avoid" {
		t.Fatalf("unexpected ordering: %s .. %s", ss[0].Name(), ss[len(ss)-1].Name())
	}
}

func TestSortReports(t *testing.T) {
	rs := []Report{
		{Scheduler: "b", Makespan: 2 * time.Second},
		{Scheduler: "a", Makespan: time.Second},
	}
	SortReports(rs)
	if rs[0].Scheduler != "a" {
		t.Fatalf("sorted = %v", rs)
	}
}

package cluster

import (
	"math"
	"testing"

	"failstutter/internal/sim"
)

func sumUnits(r Report) float64 {
	var s float64
	for _, u := range r.PerWorkerUnits {
		s += u
	}
	return s
}

func TestUniformTasks(t *testing.T) {
	ts := UniformTasks(5, 7)
	if len(ts) != 5 {
		t.Fatalf("len = %d", len(ts))
	}
	for i, task := range ts {
		if task.ID != i || task.Units != 7 {
			t.Fatalf("task %d = %+v", i, task)
		}
	}
}

func TestStaticPartitionCompletesAll(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 4, q)
	tasks := UniformTasks(40, 5)
	r := StaticPartition{}.Run(p, tasks)
	if r.Tasks != 40 {
		t.Fatalf("tasks = %d", r.Tasks)
	}
	if got := sumUnits(r); got != 200 {
		t.Fatalf("units executed = %v, want 200", got)
	}
	if r.WastedUnits != 0 || r.Duplicates != 0 {
		t.Fatalf("static run wasted %v / dup %d", r.WastedUnits, r.Duplicates)
	}
	// 10 tasks of 5 units per worker, all healthy: exactly 50q.
	if !near(r.Makespan, 50*q) {
		t.Fatalf("makespan = %v, want %v", r.Makespan, 50*q)
	}
}

func TestWorkQueueCompletesAll(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 4, q)
	r := WorkQueue{}.Run(p, UniformTasks(40, 5))
	if got := sumUnits(r); got != 200 {
		t.Fatalf("units executed = %v, want 200", got)
	}
}

// The paper's headline compute claim (NOW-Sort, E15): one slow node
// roughly halves a statically partitioned job, while a pull-based design
// sheds the imbalance.
func TestWorkQueueBeatsStaticUnderSlowWorker(t *testing.T) {
	run := func(sched Scheduler) sim.Duration {
		s := sim.New()
		p := NewPool(s, 4, q)
		p.Workers()[0].SetSpeed(0.2)
		return sched.Run(p, UniformTasks(60, 40)).Makespan
	}
	static := run(StaticPartition{})
	queue := run(WorkQueue{})
	// Static is gated by the slow worker's full share: exactly
	// 15 tasks x 40 units / 0.2 speed.
	if !near(static, 15*40*q/0.2) {
		t.Fatalf("static makespan = %v, want %v", static, 15*40*q/0.2)
	}
	if queue*2 > static {
		t.Fatalf("work queue %v not clearly faster than static %v under a slow worker",
			queue, static)
	}
}

func TestGaugedPartitionHandlesStaticSkew(t *testing.T) {
	run := func(sched Scheduler) sim.Duration {
		s := sim.New()
		p := NewPool(s, 4, q)
		p.Workers()[0].SetSpeed(0.25)
		return sched.Run(p, UniformTasks(60, 40)).Makespan
	}
	static := run(StaticPartition{})
	gauged := run(GaugedPartition{ProbeUnits: 40})
	if gauged*3 > static*2 {
		t.Fatalf("gauged %v not clearly faster than static %v under static skew",
			gauged, static)
	}
}

func TestHedgedClonesTail(t *testing.T) {
	// One worker stalls completely mid-run. Hedged must still finish: the
	// stranded task is cloned elsewhere and the stalled execution's
	// partial progress is flushed to waste at completion.
	s := sim.New()
	p := NewPool(s, 4, q)
	s.After(5e-3, func() { p.Workers()[0].SetSpeed(0) })
	r := Hedged{}.Run(p, UniformTasks(60, 10))
	if r.Duplicates == 0 {
		t.Fatal("hedged run cloned nothing despite a stalled worker")
	}
	if got, want := sumUnits(r), 600+r.WastedUnits; math.Abs(got-want) > 1e-6 {
		t.Fatalf("executed %v != required 600 + wasted %v", got, r.WastedUnits)
	}
}

func TestReissueBeatsWorkQueueUnderMidJobStall(t *testing.T) {
	run := func(sched Scheduler) sim.Duration {
		s := sim.New()
		p := NewPool(s, 4, q)
		// Worker 0 drops to 2% speed 10 virtual ms in and stays degraded.
		s.After(10e-3, func() { p.Workers()[0].SetSpeed(0.02) })
		return sched.Run(p, UniformTasks(60, 20)).Makespan
	}
	queue := run(WorkQueue{})
	reissue := run(Reissue{TimeoutFactor: 3})
	if reissue*3 > queue*2 {
		t.Fatalf("reissue %v not clearly faster than work queue %v under a degraded straggler",
			reissue, queue)
	}
}

func TestReissueExactlyOnceAccounting(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 4, q)
	s.After(5e-3, func() { p.Workers()[0].SetSpeed(0.05) })
	r := Reissue{TimeoutFactor: 2}.Run(p, UniformTasks(60, 10))
	// Work conservation: executed units = required units + wasted units
	// (to float rounding — partial progress is flushed at completion).
	if got, want := sumUnits(r), 600+r.WastedUnits; math.Abs(got-want) > 1e-6 {
		t.Fatalf("executed %v != required 600 + wasted %v", got, r.WastedUnits)
	}
}

func TestDetectAvoidMigratesFromStutterer(t *testing.T) {
	run := func(sched Scheduler) sim.Duration {
		s := sim.New()
		p := NewPool(s, 4, q)
		p.Workers()[0].SetSpeed(0.1)
		return sched.Run(p, UniformTasks(60, 40)).Makespan
	}
	static := run(StaticPartition{})
	da := run(DetectAvoid{})
	if da*2 > static {
		t.Fatalf("detect-avoid %v not clearly faster than static %v", da, static)
	}
}

func TestDetectAvoidNoFalseMigrationWhenHealthy(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 4, q)
	r := DetectAvoid{}.Run(p, UniformTasks(40, 5))
	if got := sumUnits(r); got != 200 {
		t.Fatalf("units executed = %v, want 200", got)
	}
	// With all workers healthy the split stays exactly even.
	for i, u := range r.PerWorkerUnits {
		if u != 50 {
			t.Fatalf("healthy run migrated work: worker %d did %v of 200", i, u)
		}
	}
}

// TestStalledJobPanics: a policy with no replication cannot finish when a
// worker holding work stalls to speed zero forever — the engine must say
// so loudly rather than return a bogus report.
func TestStalledJobPanics(t *testing.T) {
	s := sim.New()
	p := NewPool(s, 2, q)
	p.Workers()[0].SetSpeed(0)
	defer func() {
		if recover() == nil {
			t.Fatal("stalled static job did not panic")
		}
	}()
	StaticPartition{}.Run(p, UniformTasks(4, 5))
}

// TestSchedulersDeterministic: identical configurations produce bitwise
// identical reports, including under mid-run faults and speculation.
func TestSchedulersDeterministic(t *testing.T) {
	run := func(sched Scheduler) Report {
		s := sim.New()
		p := NewPool(s, 4, q)
		s.After(7e-3, func() { p.Workers()[1].SetSpeed(0.05) })
		return sched.Run(p, UniformTasks(48, 12))
	}
	for _, sched := range Schedulers() {
		a, b := run(sched), run(sched)
		if a.Makespan != b.Makespan || a.WastedUnits != b.WastedUnits || a.Duplicates != b.Duplicates {
			t.Fatalf("%s not deterministic: %+v vs %+v", sched.Name(), a, b)
		}
		for i := range a.PerWorkerUnits {
			if a.PerWorkerUnits[i] != b.PerWorkerUnits[i] {
				t.Fatalf("%s per-worker units differ at %d: %v vs %v",
					sched.Name(), i, a.PerWorkerUnits[i], b.PerWorkerUnits[i])
			}
		}
	}
}

func TestSchedulersListOrdered(t *testing.T) {
	ss := Schedulers()
	if len(ss) != 6 {
		t.Fatalf("scheduler set = %d entries", len(ss))
	}
	if ss[0].Name() != "static-partition" || ss[len(ss)-1].Name() != "detect-avoid" {
		t.Fatalf("unexpected ordering: %s .. %s", ss[0].Name(), ss[len(ss)-1].Name())
	}
}

func TestSortReports(t *testing.T) {
	rs := []Report{
		{Scheduler: "b", Makespan: 2},
		{Scheduler: "a", Makespan: 1},
	}
	SortReports(rs)
	if rs[0].Scheduler != "a" {
		t.Fatalf("sorted = %v", rs)
	}
}

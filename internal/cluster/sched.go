package cluster

import (
	"fmt"
	"sort"

	"failstutter/internal/detect"
	"failstutter/internal/sim"
	"failstutter/internal/stats"
	"failstutter/internal/trace"
)

// Task is one unit of schedulable work. IDs must be dense in [0, n) for a
// task set of n tasks — they index the completion ledger.
type Task struct {
	ID    int
	Units int
}

// UniformTasks builds n tasks of equal size.
func UniformTasks(n, units int) []Task {
	ts := make([]Task, n)
	for i := range ts {
		ts[i] = Task{ID: i, Units: units}
	}
	return ts
}

// Report summarizes one scheduled run.
type Report struct {
	Scheduler      string
	Makespan       sim.Duration
	Tasks          int
	PerWorkerUnits []float64
	// WastedUnits is work executed for tasks whose completion had already
	// been claimed by another replica — the replication cost of hedging
	// and reissue. Executions in flight when the job completes contribute
	// their partial progress.
	WastedUnits float64
	// Duplicates is the number of extra executions launched.
	Duplicates int64
}

func (r Report) String() string {
	return fmt.Sprintf("%s: %d tasks in %.3fs (wasted %.0f units, %d duplicate launches)",
		r.Scheduler, r.Tasks, r.Makespan, r.WastedUnits, r.Duplicates)
}

// Scheduler runs a task set on a pool and reports. Run drives the pool's
// simulator until every task is claimed, then stops it; fault events the
// caller scheduled beforehand fire during the run, and events scheduled
// after the completion instant are left unfired.
type Scheduler interface {
	Name() string
	Run(p *Pool, tasks []Task) Report
}

// engine is the shared dispatch core behind every scheduler: a completion
// ledger with at-most-once claims (the "reconciling properly so as to
// avoid work replication" of Shasha & Turek), per-worker dispatch driven
// by execution-completion events, and policy hooks for where the next
// task comes from. Everything is indexed by dense task ID — no map
// iteration anywhere, so execution order is a pure function of the
// configuration.
type engine struct {
	name string
	p    *Pool

	byID    []Task // tasks indexed by ID
	claimed []bool
	left    int
	wasted  float64
	dups    int64

	// Per-worker execution state.
	cur       []int // task ID in flight, -1 when idle
	execStart []sim.Time
	idle      []bool

	// Central-queue policies (work-queue, hedged, reissue).
	pending []Task
	phead   int

	// Per-worker-queue policies (static/gauged partition, detect-avoid).
	queues [][]Task
	qhead  []int

	// Speculation (hedged, reissue).
	cloneWhenIdle bool
	maxClones     int
	clones        []int
	firstStart    []sim.Time // first dispatch time per task, -1 before

	// durations holds winning execution times for the reissue monitor's
	// median; medScratch is its reusable in-place-median copy.
	durations  []float64
	medScratch []float64

	// next returns worker w's next task, or ok=false to idle the worker.
	next func(w int) (Task, bool)
	// monitor, when non-nil, runs every monitorPeriod of virtual time
	// until the job completes (reissue timeouts, detect-avoid sampling),
	// with the tick's virtual time — the kernel clock in a serial run, the
	// tick instant in a sharded one, where the barrier replays ticks.
	monitor       func(now sim.Time)
	monitorPeriod sim.Duration

	// Sharded-run state (see sharded.go): per-shard completion buffers and
	// cut-waste accumulators, the merge scratch, per-worker throughput
	// samples taken at tick times on each worker's own shard, the next
	// unprocessed monitor tick, and the barrier's current event time and
	// dispatch horizon.
	comp       [][]completionRec
	mergedComp []completionRec
	cutWaste   []float64
	sampled    []float64
	needSample bool
	nextMon    sim.Time
	curNow     sim.Time
	hNow       sim.Time

	startUnits []float64
	start      sim.Time
	doneAt     sim.Time
	finished   bool

	// tr, when non-nil, records the scheduler's duplication decisions
	// (reissue, clone, migrate) as instants on the "sched" track.
	tr      *trace.Tracer
	trTrack trace.TrackID
}

func newEngine(name string, p *Pool, tasks []Task) *engine {
	n := len(tasks)
	e := &engine{
		name:       name,
		p:          p,
		byID:       make([]Task, n),
		claimed:    make([]bool, n),
		left:       n,
		cur:        make([]int, p.Size()),
		execStart:  make([]sim.Time, p.Size()),
		idle:       make([]bool, p.Size()),
		clones:     make([]int, n),
		firstStart: make([]sim.Time, n),
	}
	for _, t := range tasks {
		if t.ID < 0 || t.ID >= n || t.Units < 1 {
			panic(fmt.Sprintf("cluster: invalid task %+v in a set of %d", t, n))
		}
		e.byID[t.ID] = t
	}
	for i := range e.cur {
		e.cur[i] = -1
	}
	for i := range e.firstStart {
		e.firstStart[i] = -1
	}
	if t := p.tracer; t != nil {
		e.tr = t
		e.trTrack = t.Track("sched")
	}
	return e
}

// instant records a scheduler decision on the "sched" track when tracing
// is on. In a sharded run the decision is made at the barrier, where no
// kernel clock is authoritative; curNow carries the event time being
// settled.
func (e *engine) instant(name string) {
	if e.tr == nil {
		return
	}
	at := e.p.sim.Now()
	if e.p.ss != nil {
		at = e.curNow
	}
	e.tr.Instant(e.trTrack, name, "sched", at)
}

// unitsNow returns worker i's cumulative units for monitor sampling: the
// live counter in a serial run, the latest tick-time sample in a sharded
// one — reading the live counter cross-shard would yield a value dependent
// on how far the worker's shard happened to run, i.e. on placement.
func (e *engine) unitsNow(i int) float64 {
	if e.p.ss != nil {
		return e.sampled[i]
	}
	return e.p.workers[i].UnitsDone()
}

// contiguousQueues splits tasks into per-worker contiguous equal-count
// chunks.
func contiguousQueues(tasks []Task, n int) [][]Task {
	qs := make([][]Task, n)
	for i := 0; i < n; i++ {
		lo := i * len(tasks) / n
		hi := (i + 1) * len(tasks) / n
		qs[i] = append([]Task(nil), tasks[lo:hi]...)
	}
	return qs
}

// run drives the job to completion on the pool's simulator.
func (e *engine) run() Report {
	if e.p.ss != nil {
		return e.runSharded(e.p.ss.Now())
	}
	s := e.p.sim
	e.start = s.Now()
	e.startUnits = snapshotUnits(e.p)
	if e.left == 0 {
		e.doneAt = e.start
		e.finished = true
	} else {
		for _, w := range e.p.workers {
			w.finish = e.onFinish
		}
		for i := range e.p.workers {
			e.dispatch(i)
		}
		if e.monitor != nil {
			var tick func()
			tick = func() {
				if e.finished {
					return
				}
				e.monitor(s.Now())
				if !e.finished {
					s.After(e.monitorPeriod, tick)
				}
			}
			s.After(e.monitorPeriod, tick)
		}
		s.Run()
		for _, w := range e.p.workers {
			w.finish = nil
		}
		if !e.finished {
			panic(fmt.Sprintf(
				"cluster: %s job stalled with %d of %d tasks unclaimed (a fully stalled worker holds work no policy will replicate)",
				e.name, e.left, len(e.byID)))
		}
	}
	return Report{
		Scheduler:      e.name,
		Makespan:       e.doneAt - e.start,
		Tasks:          len(e.byID),
		PerWorkerUnits: perWorkerUnits(e.p, e.startUnits),
		WastedUnits:    e.wasted,
		Duplicates:     e.dups,
	}
}

// dispatch hands worker w its next task per the policy, or idles it.
func (e *engine) dispatch(w int) {
	if e.finished {
		return
	}
	t, ok := e.next(w)
	if !ok {
		e.idle[w] = true
		return
	}
	e.idle[w] = false
	e.cur[w] = t.ID
	now := e.p.sim.Now()
	e.execStart[w] = now
	if e.firstStart[t.ID] < 0 {
		e.firstStart[t.ID] = now
	}
	e.p.workers[w].exec(float64(t.Units))
}

// wake re-dispatches idle workers (lowest id first) after new work
// appears: a monitor requeue or a backlog migration. In a sharded run the
// wake happens at the barrier and the dispatches land at the window
// horizon.
func (e *engine) wake() {
	for i := range e.p.workers {
		if e.finished {
			return
		}
		if !e.idle[i] {
			continue
		}
		if e.p.ss != nil {
			e.dispatchShardedAt(i, e.hNow)
		} else {
			e.dispatch(i)
		}
	}
}

// onFinish settles one completed execution: first finisher claims the
// task, later replicas count as waste, and the worker is re-dispatched.
func (e *engine) onFinish(w *Worker) {
	i := w.id
	id := e.cur[i]
	e.cur[i] = -1
	if !e.claimed[id] {
		e.claimed[id] = true
		e.left--
		e.durations = append(e.durations, e.p.sim.Now()-e.execStart[i])
		if e.left == 0 {
			e.complete()
			return
		}
	} else {
		e.wasted += float64(e.byID[id].Units)
	}
	e.dispatch(i)
}

// complete records the makespan, charges in-flight duplicates' partial
// progress to waste, and stops the simulator.
func (e *engine) complete() {
	e.doneAt = e.p.sim.Now()
	e.finished = true
	for i, w := range e.p.workers {
		if e.cur[i] >= 0 {
			e.wasted += w.st.ServedInCurrent()
		}
	}
	e.p.sim.Stop()
}

// popOwn pops worker w's next unclaimed task from its own queue.
func (e *engine) popOwn(w int) (Task, bool) {
	for e.qhead[w] < len(e.queues[w]) {
		t := e.queues[w][e.qhead[w]]
		e.qhead[w]++
		if e.claimed[t.ID] {
			continue
		}
		return t, true
	}
	return Task{}, false
}

// popPending pops the next unclaimed task from the central queue.
func (e *engine) popPending() (Task, bool) {
	for e.phead < len(e.pending) {
		t := e.pending[e.phead]
		e.phead++
		if e.claimed[t.ID] {
			continue
		}
		return t, true
	}
	return Task{}, false
}

// cloneOldest picks the oldest-started unclaimed in-flight task with
// clone budget remaining (ties broken by task ID), charging the budget.
func (e *engine) cloneOldest() (Task, bool) {
	best := -1
	for id := range e.byID {
		if e.firstStart[id] < 0 || e.claimed[id] || e.clones[id] >= e.maxClones {
			continue
		}
		if best < 0 || e.firstStart[id] < e.firstStart[best] {
			best = id
		}
	}
	if best < 0 {
		return Task{}, false
	}
	e.clones[best]++
	e.dups++
	e.instant("clone")
	return e.byID[best], true
}

// meanUnits is the average task size, the natural time scale for probe
// sizes and monitor periods.
func meanUnits(tasks []Task) float64 {
	if len(tasks) == 0 {
		return 1
	}
	total := 0.0
	for _, t := range tasks {
		total += float64(t.Units)
	}
	return total / float64(len(tasks))
}

// StaticPartition divides the task list into contiguous equal-count
// chunks, one per worker, with no later rebalancing: the fail-stop-design
// baseline whose "parallel-performance assumption" the paper's
// introduction criticizes.
type StaticPartition struct{}

// Name implements Scheduler.
func (StaticPartition) Name() string { return "static-partition" }

// Run implements Scheduler.
func (StaticPartition) Run(p *Pool, tasks []Task) Report {
	e := newEngine("static-partition", p, tasks)
	e.queues = contiguousQueues(tasks, p.Size())
	e.qhead = make([]int, p.Size())
	e.next = e.popOwn
	return e.run()
}

// GaugedPartition is the scenario-2 analogue for compute: measure each
// worker's speed once with a probe task, then partition proportionally.
// Correct for static speed differences, broken by anything dynamic.
type GaugedPartition struct {
	// ProbeUnits is the per-worker microbenchmark size (default: a
	// quarter of the mean task size, at least one unit).
	ProbeUnits int
}

// Name implements Scheduler.
func (GaugedPartition) Name() string { return "gauged-partition" }

// Run implements Scheduler.
func (g GaugedPartition) Run(p *Pool, tasks []Task) Report {
	probe := g.ProbeUnits
	if probe <= 0 {
		probe = int(meanUnits(tasks) / 4)
		if probe < 1 {
			probe = 1
		}
	}
	// Gauge all workers concurrently; probe work is real work the gauge
	// pays for (it counts toward units done, not toward the makespan —
	// the job is timed from the post-gauge partition, as an install-time
	// microbenchmark would be).
	n := p.Size()
	var speeds []float64
	var startAt sim.Time
	if p.ss != nil {
		speeds, startAt = gaugeSharded(p, probe)
	} else {
		s := p.sim
		speeds = make([]float64, n)
		t0 := s.Now()
		remaining := n
		for _, w := range p.workers {
			w.finish = func(w *Worker) {
				speeds[w.id] = float64(probe) / (s.Now() - t0)
				remaining--
				if remaining == 0 {
					s.Stop()
				}
			}
		}
		for _, w := range p.workers {
			w.exec(float64(probe))
		}
		s.Run()
		for _, w := range p.workers {
			w.finish = nil
		}
		if remaining != 0 {
			panic("cluster: gauged-partition probe stalled (a probed worker never finished)")
		}
	}

	// Proportional contiguous split by measured speed.
	total := 0.0
	for _, sp := range speeds {
		total += sp
	}
	e := newEngine("gauged-partition", p, tasks)
	e.queues = make([][]Task, n)
	e.qhead = make([]int, n)
	idx := 0
	for i := range p.workers {
		count := int(float64(len(tasks)) * speeds[i] / total)
		if i == n-1 || idx+count > len(tasks) {
			count = len(tasks) - idx
		}
		e.queues[i] = append([]Task(nil), tasks[idx:idx+count]...)
		idx += count
	}
	e.next = e.popOwn
	if p.ss != nil {
		// The gauge stopped the coordinator mid-stream; the job starts at
		// the horizon of the window that observed the last probe finish —
		// the placement-invariant analogue of "the instant the gauge ends".
		return e.runSharded(startAt)
	}
	return e.run()
}

// WorkQueue is the River-style central queue: every idle worker pulls the
// next task, so placement follows current rates automatically. No
// duplication: a stalled worker still strands the one task it holds.
type WorkQueue struct{}

// Name implements Scheduler.
func (WorkQueue) Name() string { return "work-queue" }

// Run implements Scheduler.
func (WorkQueue) Run(p *Pool, tasks []Task) Report {
	e := newEngine("work-queue", p, tasks)
	e.pending = tasks
	e.next = func(w int) (Task, bool) { return e.popPending() }
	return e.run()
}

// speculative is the shared policy behind Hedged and Reissue: a pull
// queue plus a duplication rule. cloneWhenIdle clones the oldest
// unclaimed in-flight task when a worker has nothing else to do (hedged
// tail execution); a positive timeoutFactor additionally monitors
// in-flight ages and requeues tasks exceeding factor x the median
// completed duration (Shasha-Turek slow-down reissue). maxClones bounds
// duplication per task.
type speculative struct {
	name          string
	timeoutFactor float64
	checkEvery    sim.Duration
	maxClones     int
}

func (sp speculative) Run(p *Pool, tasks []Task) Report {
	e := newEngine(sp.name, p, tasks)
	e.pending = append([]Task(nil), tasks...)
	e.cloneWhenIdle = true
	e.maxClones = sp.maxClones
	e.next = func(w int) (Task, bool) {
		if t, ok := e.popPending(); ok {
			return t, true
		}
		return e.cloneOldest()
	}
	if sp.timeoutFactor > 0 {
		period := sp.checkEvery
		if period <= 0 {
			period = meanUnits(tasks) * p.quantum / 4
		}
		e.monitorPeriod = period
		e.medScratch = make([]float64, 0, len(tasks))
		e.monitor = func(now sim.Time) {
			if len(e.durations) < 3 {
				return
			}
			med := stats.MedianInPlace(append(e.medScratch[:0], e.durations...))
			limit := sp.timeoutFactor * med
			requeued := false
			for id := range e.byID {
				if e.firstStart[id] < 0 || e.claimed[id] || e.clones[id] >= e.maxClones {
					continue
				}
				if now-e.firstStart[id] > limit {
					e.clones[id]++
					e.dups++
					e.pending = append(e.pending, e.byID[id])
					e.instant("reissue")
					requeued = true
				}
			}
			if requeued {
				e.wake()
			}
		}
	}
	return e.run()
}

// Hedged is a work queue with tail cloning: when the queue is empty, idle
// workers re-execute the oldest unclaimed in-flight task, bounding the
// job on a straggler's last task. MaxClones bounds per-task duplication
// (default 1 extra copy).
type Hedged struct {
	MaxClones int
}

// Name implements Scheduler.
func (Hedged) Name() string { return "hedged" }

// Run implements Scheduler.
func (h Hedged) Run(p *Pool, tasks []Task) Report {
	mc := h.MaxClones
	if mc <= 0 {
		mc = 1
	}
	return speculative{name: "hedged", maxClones: mc}.Run(p, tasks)
}

// Reissue implements Shasha & Turek's response to slow-down failures:
// monitor in-flight executions, and when one exceeds TimeoutFactor x the
// median completed duration, issue the work again elsewhere; the
// completion claim reconciles duplicates. Unlike Hedged it acts even
// while other work remains, trading duplication for tail latency.
type Reissue struct {
	TimeoutFactor float64
	MaxClones     int
	// CheckEvery is the monitor's virtual-time period (default: a quarter
	// of the mean task's nominal duration).
	CheckEvery sim.Duration
}

// Name implements Scheduler.
func (Reissue) Name() string { return "reissue" }

// Run implements Scheduler.
func (r Reissue) Run(p *Pool, tasks []Task) Report {
	tf := r.TimeoutFactor
	if tf <= 0 {
		tf = 3
	}
	mc := r.MaxClones
	if mc <= 0 {
		mc = 1
	}
	return speculative{
		name: "reissue", timeoutFactor: tf, checkEvery: r.CheckEvery, maxClones: mc,
	}.Run(p, tasks)
}

// DetectAvoid is the fail-stutter-model scheduler: static per-worker
// queues (the low-overhead design), plus a peer-relative detector
// sampling each worker's throughput; when a worker is flagged as
// performance-faulty its backlog migrates to healthy workers. It
// demonstrates the model's detect -> notify -> adapt loop rather than
// relying on pull-based placement.
type DetectAvoid struct {
	// SampleEvery is the detector's virtual-time sampling period
	// (default: a quarter of the mean task's nominal duration).
	SampleEvery sim.Duration
	// Threshold is the peer-relative rate fraction below which a worker
	// is flagged (default 0.5).
	Threshold float64
	// Audit, when non-nil, logs every flag transition with its
	// peer-relative evidence via detect.Audited wrappers.
	Audit *trace.AuditLog
}

// Name implements Scheduler.
func (DetectAvoid) Name() string { return "detect-avoid" }

// Run implements Scheduler.
func (d DetectAvoid) Run(p *Pool, tasks []Task) Report {
	thr := d.Threshold
	if thr <= 0 {
		thr = 0.5
	}
	sample := d.SampleEvery
	if sample <= 0 {
		sample = meanUnits(tasks) * p.quantum / 4
	}
	n := p.Size()
	e := newEngine("detect-avoid", p, tasks)
	e.queues = contiguousQueues(tasks, n)
	e.qhead = make([]int, n)
	e.next = e.popOwn

	flagged := make([]bool, n)
	slowStreak := make([]int, n)
	last := snapshotUnits(p)
	rates := make([]float64, n)
	medScratch := make([]float64, n)

	// Optional audit: a detect.Audited wrapper per worker over the live
	// flag, logging nominal <-> perf-faulty transitions with the sampled
	// rate and fleet median as evidence.
	var audDet []*flagDetector
	var audited []*detect.Audited
	if d.Audit != nil {
		audDet = make([]*flagDetector, n)
		audited = make([]*detect.Audited, n)
		for i := 0; i < n; i++ {
			audDet[i] = &flagDetector{flagged: &flagged[i], threshold: thr}
			audited[i] = detect.NewAudited(audDet[i], d.Audit, fmt.Sprintf("worker-%d", i))
		}
	}

	sweep := func(med float64) {
		for i := range rates {
			if flagged[i] {
				continue
			}
			// Require consecutive slow samples with a real backlog before
			// flagging: a single divergent sample (and workers that simply
			// finished) must not trigger migration.
			if rates[i] >= thr*med || e.qhead[i] == len(e.queues[i]) {
				slowStreak[i] = 0
				continue
			}
			slowStreak[i]++
			if slowStreak[i] < 2 {
				continue
			}
			flagged[i] = true
			// Migrate the stutterer's backlog to healthy workers,
			// round-robin. With no healthy destination the backlog stays
			// put — a degraded worker is still better than no worker.
			var dsts []int
			for dst := 0; dst < n; dst++ {
				if dst != i && !flagged[dst] {
					dsts = append(dsts, dst)
				}
			}
			if len(dsts) > 0 {
				backlog := e.queues[i][e.qhead[i]:]
				e.queues[i] = e.queues[i][:e.qhead[i]]
				for j, t := range backlog {
					dst := dsts[j%len(dsts)]
					e.queues[dst] = append(e.queues[dst], t)
				}
				e.instant("migrate")
				e.wake()
			}
			return // at most one migration per tick keeps this simple
		}
	}

	e.monitorPeriod = sample
	e.needSample = true
	e.monitor = func(now sim.Time) {
		for i := range p.workers {
			cur := e.unitsNow(i)
			rates[i] = cur - last[i]
			last[i] = cur
		}
		// rates must stay index-aligned with the workers below, so the
		// in-place median works on a reused scratch copy.
		med := stats.MedianInPlace(medScratch[:copy(medScratch, rates)])
		if med > 0 {
			sweep(med)
		}
		if audited != nil {
			for i, a := range audited {
				audDet[i].med = med
				a.Observe(now, rates[i])
			}
		}
	}
	return e.run()
}

// Schedulers returns the standard comparison set used by the experiments,
// ordered from least to most fail-stutter aware.
func Schedulers() []Scheduler {
	return []Scheduler{
		StaticPartition{},
		GaugedPartition{},
		WorkQueue{},
		Hedged{},
		Reissue{},
		DetectAvoid{},
	}
}

// SortReports orders reports by makespan, fastest first — a convenience
// for experiment tables.
func SortReports(rs []Report) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Makespan < rs[j].Makespan })
}

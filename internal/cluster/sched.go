package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"failstutter/internal/stats"
	"failstutter/internal/trace"
)

// Task is one unit of schedulable work.
type Task struct {
	ID    int
	Units int
}

// UniformTasks builds n tasks of equal size.
func UniformTasks(n, units int) []Task {
	ts := make([]Task, n)
	for i := range ts {
		ts[i] = Task{ID: i, Units: units}
	}
	return ts
}

// Report summarizes one scheduled run.
type Report struct {
	Scheduler      string
	Makespan       time.Duration
	Tasks          int
	PerWorkerUnits []int64
	// WastedUnits is work executed for tasks whose completion had already
	// been claimed by another replica — the replication cost of hedging
	// and reissue.
	WastedUnits int64
	// Duplicates is the number of extra executions launched.
	Duplicates int64
}

func (r Report) String() string {
	return fmt.Sprintf("%s: %d tasks in %v (wasted %d units, %d duplicate launches)",
		r.Scheduler, r.Tasks, r.Makespan.Round(time.Millisecond), r.WastedUnits, r.Duplicates)
}

// Scheduler runs a task set on a pool and reports.
type Scheduler interface {
	Name() string
	Run(p *Pool, tasks []Task) Report
}

// taskBoard is the shared completion ledger: at-most-once completion per
// task via an atomic claim, the "reconciling properly so as to avoid work
// replication" of Shasha & Turek.
type taskBoard struct {
	claimed []atomic.Bool
	left    atomic.Int64
	wasted  atomic.Int64
	dups    atomic.Int64
}

func newTaskBoard(n int) *taskBoard {
	b := &taskBoard{claimed: make([]atomic.Bool, n)}
	b.left.Store(int64(n))
	return b
}

// execute runs task t on worker w, aborting early if another execution
// claims it first. It returns true if this execution won. Every scheduler
// funnels task executions through here, so this is also the single span
// touch point for the whole cluster runtime.
func (b *taskBoard) execute(w *Worker, t Task) bool {
	var span trace.SpanID
	if w.tracer != nil {
		span = w.tracer.BeginArg(w.track, "task", "cluster", 0, w.traceNow(), int64(t.ID))
	}
	ran := w.runUnits(t.Units, func() bool { return b.claimed[t.ID].Load() })
	w.tasksDone.Add(1)
	if w.tracer != nil {
		w.tracer.End(span, w.traceNow())
	}
	if ran < t.Units || !b.claimed[t.ID].CompareAndSwap(false, true) {
		b.wasted.Add(int64(ran))
		return false
	}
	b.left.Add(-1)
	return true
}

func (b *taskBoard) done() bool { return b.left.Load() == 0 }

func perWorkerUnits(p *Pool, before []int64) []int64 {
	out := make([]int64, p.Size())
	for i, w := range p.Workers() {
		out[i] = w.UnitsDone() - before[i]
	}
	return out
}

func snapshotUnits(p *Pool) []int64 {
	out := make([]int64, p.Size())
	for i, w := range p.Workers() {
		out[i] = w.UnitsDone()
	}
	return out
}

// StaticPartition divides the task list into contiguous equal-count
// chunks, one per worker, with no later rebalancing: the fail-stop-design
// baseline whose "parallel-performance assumption" the paper's
// introduction criticizes.
type StaticPartition struct{}

// Name implements Scheduler.
func (StaticPartition) Name() string { return "static-partition" }

// Run implements Scheduler.
func (StaticPartition) Run(p *Pool, tasks []Task) Report {
	board := newTaskBoard(len(tasks))
	before := snapshotUnits(p)
	start := time.Now()
	var wg sync.WaitGroup
	n := p.Size()
	for i, w := range p.Workers() {
		lo := i * len(tasks) / n
		hi := (i + 1) * len(tasks) / n
		wg.Add(1)
		go func(w *Worker, chunk []Task) {
			defer wg.Done()
			for _, t := range chunk {
				board.execute(w, t)
			}
		}(w, tasks[lo:hi])
	}
	wg.Wait()
	return Report{
		Scheduler:      "static-partition",
		Makespan:       time.Since(start),
		Tasks:          len(tasks),
		PerWorkerUnits: perWorkerUnits(p, before),
	}
}

// WorkQueue is the River-style central queue: every idle worker pulls the
// next task, so placement follows current rates automatically. No
// duplication: a stalled worker still strands the one task it holds.
type WorkQueue struct{}

// Name implements Scheduler.
func (WorkQueue) Name() string { return "work-queue" }

// Run implements Scheduler.
func (WorkQueue) Run(p *Pool, tasks []Task) Report {
	board := newTaskBoard(len(tasks))
	before := snapshotUnits(p)
	start := time.Now()
	ch := make(chan Task, len(tasks))
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	var wg sync.WaitGroup
	for _, w := range p.Workers() {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			for t := range ch {
				board.execute(w, t)
			}
		}(w)
	}
	wg.Wait()
	return Report{
		Scheduler:      "work-queue",
		Makespan:       time.Since(start),
		Tasks:          len(tasks),
		PerWorkerUnits: perWorkerUnits(p, before),
	}
}

// speculative is the shared engine behind Hedged and Reissue: a pull
// queue plus a duplication rule. cloneWhenIdle clones the oldest
// unclaimed in-flight task when a worker has nothing else to do (hedged
// tail execution); cloneOnTimeout watches in-flight ages and requeues
// tasks that exceed factor x the median completed duration (Shasha-Turek
// slow-down reissue). MaxClones bounds duplication per task.
type speculative struct {
	name           string
	cloneWhenIdle  bool
	cloneOnTimeout bool
	timeoutFactor  float64
	maxClones      int
}

type inflightEntry struct {
	task    Task
	started time.Time
	clones  int
}

func (s speculative) Run(p *Pool, tasks []Task) Report {
	board := newTaskBoard(len(tasks))
	before := snapshotUnits(p)
	start := time.Now()

	var mu sync.Mutex
	pending := make([]Task, len(tasks))
	copy(pending, tasks)
	inflight := make(map[int]*inflightEntry)
	var durations []float64 // seconds of completed executions

	// next returns the next task to run, or ok=false when the runner
	// should exit (everything claimed or soon will be).
	next := func() (Task, bool) {
		mu.Lock()
		defer mu.Unlock()
		for len(pending) > 0 {
			t := pending[0]
			pending = pending[1:]
			if board.claimed[t.ID].Load() {
				continue
			}
			if inflight[t.ID] == nil {
				inflight[t.ID] = &inflightEntry{task: t, started: time.Now()}
			}
			// A pending entry that is already in flight is a monitor
			// requeue; its clone budget was charged when it was enqueued.
			return t, true
		}
		if s.cloneWhenIdle {
			// Clone the oldest unclaimed in-flight task with clone budget.
			var best *inflightEntry
			for _, e := range inflight {
				if board.claimed[e.task.ID].Load() || e.clones >= s.maxClones {
					continue
				}
				if best == nil || e.started.Before(best.started) {
					best = e
				}
			}
			if best != nil {
				best.clones++
				board.dups.Add(1)
				return best.task, true
			}
		}
		return Task{}, false
	}

	finish := func(t Task, won bool, took time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if won {
			durations = append(durations, took.Seconds())
			delete(inflight, t.ID)
		}
	}

	stop := make(chan struct{})
	if s.cloneOnTimeout {
		go func() {
			tick := time.NewTicker(p.Quantum() * 10)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					mu.Lock()
					if len(durations) >= 3 {
						// durations is append-only and only consumed here,
						// so the in-place median may freely reorder it.
						med := stats.MedianInPlace(durations)
						limit := time.Duration(s.timeoutFactor * med * float64(time.Second))
						for _, e := range inflight {
							if e.clones < s.maxClones &&
								!board.claimed[e.task.ID].Load() &&
								time.Since(e.started) > limit {
								e.clones++
								board.dups.Add(1)
								pending = append(pending, e.task)
							}
						}
					}
					mu.Unlock()
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for _, w := range p.Workers() {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			for {
				if board.done() {
					return
				}
				t, ok := next()
				if !ok {
					if board.done() {
						return
					}
					time.Sleep(p.Quantum())
					continue
				}
				t0 := time.Now()
				won := board.execute(w, t)
				finish(t, won, time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	return Report{
		Scheduler:      s.name,
		Makespan:       time.Since(start),
		Tasks:          len(tasks),
		PerWorkerUnits: perWorkerUnits(p, before),
		WastedUnits:    board.wasted.Load(),
		Duplicates:     board.dups.Load(),
	}
}

// Hedged is a work queue with tail cloning: when the queue is empty, idle
// workers re-execute the oldest unclaimed in-flight task, bounding the
// job on a straggler's last task. MaxClones bounds per-task duplication
// (default 1 extra copy).
type Hedged struct {
	MaxClones int
}

// Name implements Scheduler.
func (Hedged) Name() string { return "hedged" }

// Run implements Scheduler.
func (h Hedged) Run(p *Pool, tasks []Task) Report {
	mc := h.MaxClones
	if mc <= 0 {
		mc = 1
	}
	return speculative{name: "hedged", cloneWhenIdle: true, maxClones: mc}.Run(p, tasks)
}

// Reissue implements Shasha & Turek's response to slow-down failures:
// monitor in-flight executions, and when one exceeds TimeoutFactor x the
// median completed duration, issue the work again elsewhere; an atomic
// completion claim reconciles duplicates. Unlike Hedged it acts even
// while other work remains, trading duplication for tail latency.
type Reissue struct {
	TimeoutFactor float64
	MaxClones     int
}

// Name implements Scheduler.
func (Reissue) Name() string { return "reissue" }

// Run implements Scheduler.
func (r Reissue) Run(p *Pool, tasks []Task) Report {
	tf := r.TimeoutFactor
	if tf <= 0 {
		tf = 3
	}
	mc := r.MaxClones
	if mc <= 0 {
		mc = 1
	}
	return speculative{
		name: "reissue", cloneWhenIdle: true, cloneOnTimeout: true,
		timeoutFactor: tf, maxClones: mc,
	}.Run(p, tasks)
}

// DetectAvoid is the fail-stutter-model scheduler: static per-worker
// queues (the low-overhead design), plus a peer-relative detector
// sampling each worker's throughput; when a worker is flagged as
// performance-faulty its backlog migrates to healthy workers. It
// demonstrates the model's detect -> notify -> adapt loop rather than
// relying on pull-based placement.
type DetectAvoid struct {
	// SampleEvery is the detector's sampling period (default 10 quanta).
	SampleEvery time.Duration
	// Threshold is the peer-relative rate fraction below which a worker
	// is flagged (default 0.5).
	Threshold float64
}

// Name implements Scheduler.
func (DetectAvoid) Name() string { return "detect-avoid" }

// Run implements Scheduler.
func (d DetectAvoid) Run(p *Pool, tasks []Task) Report {
	thr := d.Threshold
	if thr <= 0 {
		thr = 0.5
	}
	sample := d.SampleEvery
	if sample <= 0 {
		sample = 10 * p.Quantum()
	}
	board := newTaskBoard(len(tasks))
	before := snapshotUnits(p)
	start := time.Now()

	n := p.Size()
	var mu sync.Mutex
	queues := make([][]Task, n)
	for i := range queues {
		lo := i * len(tasks) / n
		hi := (i + 1) * len(tasks) / n
		queues[i] = append(queues[i], tasks[lo:hi]...)
	}
	flagged := make([]bool, n)
	slowStreak := make([]int, n)

	pop := func(i int) (Task, bool) {
		mu.Lock()
		defer mu.Unlock()
		if len(queues[i]) == 0 {
			return Task{}, false
		}
		t := queues[i][0]
		queues[i] = queues[i][1:]
		return t, true
	}

	// Detector: peer-relative throughput comparison, exactly the
	// PeerSet policy but on wall-clock counters.
	stop := make(chan struct{})
	go func() {
		last := snapshotUnits(p)
		rates := make([]float64, n)
		medScratch := make([]float64, n)
		tick := time.NewTicker(sample)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				cur := snapshotUnits(p)
				for i := range rates {
					rates[i] = float64(cur[i] - last[i])
				}
				last = cur
				// rates must stay index-aligned with the workers below, so
				// the in-place median works on a reused scratch copy.
				med := stats.MedianInPlace(medScratch[:copy(medScratch, rates)])
				if med <= 0 {
					continue
				}
				mu.Lock()
				for i := range rates {
					if flagged[i] {
						continue
					}
					// Require consecutive slow samples with a real backlog
					// before flagging: single-sample noise (and workers
					// that simply finished) must not trigger migration.
					if rates[i] >= thr*med || len(queues[i]) == 0 {
						slowStreak[i] = 0
						continue
					}
					slowStreak[i]++
					if slowStreak[i] < 2 {
						continue
					}
					flagged[i] = true
					// Migrate the stutterer's backlog to healthy workers,
					// round-robin. With no healthy destination the backlog
					// stays put — a degraded worker is still better than
					// no worker.
					var dsts []int
					for d := 0; d < n; d++ {
						if d != i && !flagged[d] {
							dsts = append(dsts, d)
						}
					}
					if len(dsts) > 0 {
						backlog := queues[i]
						queues[i] = nil
						for j, t := range backlog {
							dst := dsts[j%len(dsts)]
							queues[dst] = append(queues[dst], t)
						}
					}
					break // at most one migration per tick keeps this simple
				}
				mu.Unlock()
			}
		}
	}()

	var wg sync.WaitGroup
	for i, w := range p.Workers() {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			for {
				t, ok := pop(i)
				if !ok {
					if board.done() {
						return
					}
					// Idle but the job is unfinished (e.g. a flagged
					// worker still holds work, or migration is pending):
					// nap briefly and re-check.
					time.Sleep(p.Quantum())
					continue
				}
				board.execute(w, t)
			}
		}(i, w)
	}
	wg.Wait()
	close(stop)
	return Report{
		Scheduler:      "detect-avoid",
		Makespan:       time.Since(start),
		Tasks:          len(tasks),
		PerWorkerUnits: perWorkerUnits(p, before),
	}
}

// Schedulers returns the standard comparison set used by the experiments,
// ordered from least to most fail-stutter aware.
func Schedulers() []Scheduler {
	return []Scheduler{
		StaticPartition{},
		GaugedPartition{},
		WorkQueue{},
		Hedged{},
		Reissue{},
		DetectAvoid{},
	}
}

// GaugedPartition is the scenario-2 analogue for compute: measure each
// worker's speed once with a probe task, then partition proportionally.
// Correct for static speed differences, broken by anything dynamic.
type GaugedPartition struct {
	// ProbeUnits is the per-worker microbenchmark size (default 20).
	ProbeUnits int
}

// Name implements Scheduler.
func (GaugedPartition) Name() string { return "gauged-partition" }

// Run implements Scheduler.
func (g GaugedPartition) Run(p *Pool, tasks []Task) Report {
	probe := g.ProbeUnits
	if probe <= 0 {
		probe = 20
	}
	// Gauge all workers in parallel.
	speeds := make([]float64, p.Size())
	var gw sync.WaitGroup
	for i, w := range p.Workers() {
		gw.Add(1)
		go func(i int, w *Worker) {
			defer gw.Done()
			t0 := time.Now()
			w.runUnits(probe, nil)
			speeds[i] = float64(probe) / time.Since(t0).Seconds()
		}(i, w)
	}
	gw.Wait()

	board := newTaskBoard(len(tasks))
	before := snapshotUnits(p)
	start := time.Now()
	// Proportional contiguous split by measured speed.
	total := 0.0
	for _, s := range speeds {
		total += s
	}
	var wg sync.WaitGroup
	idx := 0
	for i, w := range p.Workers() {
		count := int(float64(len(tasks)) * speeds[i] / total)
		if i == p.Size()-1 {
			count = len(tasks) - idx
		}
		if idx+count > len(tasks) {
			count = len(tasks) - idx
		}
		chunk := tasks[idx : idx+count]
		idx += count
		wg.Add(1)
		go func(w *Worker, chunk []Task) {
			defer wg.Done()
			for _, t := range chunk {
				board.execute(w, t)
			}
		}(w, chunk)
	}
	wg.Wait()
	return Report{
		Scheduler:      "gauged-partition",
		Makespan:       time.Since(start),
		Tasks:          len(tasks),
		PerWorkerUnits: perWorkerUnits(p, before),
	}
}

// SortReports orders reports by makespan, fastest first — a convenience
// for experiment tables.
func SortReports(rs []Report) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Makespan < rs[j].Makespan })
}

package cluster

import (
	"fmt"
	"sort"

	"failstutter/internal/sim"
	"failstutter/internal/trace"
)

// BSPParams configures a bulk-synchronous parallel computation: Rounds
// supersteps, each ending in a barrier. This is the "static use of
// parallelism" the paper's introduction singles out: because every round
// waits for the slowest participant, a single performance-faulty node
// taxes every round of the whole machine.
type BSPParams struct {
	// Rounds is the number of barrier-separated supersteps.
	Rounds int
	// UnitsPerWorkerRound is each worker's share of one round's work.
	UnitsPerWorkerRound int
	// Elastic, when true, pools each round's work and lets workers pull
	// it in Grain-sized pieces: the barrier remains (the algorithm
	// requires it) but within a round fast workers absorb a straggler's
	// share, so the straggler delays the barrier only by its final grain.
	Elastic bool
	// Grain is the pull granularity for the elastic variant (default 20
	// units).
	Grain int
}

// BSPReport summarizes a BSP run.
type BSPReport struct {
	Params   BSPParams
	Makespan sim.Duration
	// PerWorkerUnits is the work each worker actually executed.
	PerWorkerUnits []float64
}

func (r BSPReport) String() string {
	kind := "static"
	if r.Params.Elastic {
		kind = "elastic"
	}
	return fmt.Sprintf("bsp(%s): %d rounds in %.3fs", kind, r.Params.Rounds, r.Makespan)
}

// RunBSP executes the computation on the pool's simulator and returns
// when the final barrier clears. Barriers are pure events — a round ends
// at the instant its last worker finishes — so a straggler's tax on each
// round is exact, with no polling or OS scheduling in between.
func RunBSP(p *Pool, params BSPParams) BSPReport {
	if params.Rounds < 1 || params.UnitsPerWorkerRound < 1 {
		panic(fmt.Sprintf("cluster: invalid BSP params %+v", params))
	}
	grain := params.Grain
	if grain < 1 {
		grain = 20
	}
	if p.ss != nil {
		return runBSPSharded(p, params, grain)
	}
	s := p.sim
	n := p.Size()
	start := s.Now()
	before := snapshotUnits(p)

	var (
		round     int
		barrier   int     // workers yet to reach the current round's barrier
		remaining float64 // elastic: pooled units left in the current round
		done      bool
		doneAt    sim.Time
	)

	// Each superstep is one span on the "bsp" track, opened when the round
	// is dispatched and closed the instant its barrier clears — the span
	// length *is* the straggler tax made visible.
	tr := p.tracer
	var bspTrack trace.TrackID
	var roundSpan trace.SpanID
	if tr != nil {
		bspTrack = tr.Track("bsp")
	}
	barrierClear := func() {
		if tr != nil {
			tr.End(roundSpan, s.Now())
		}
	}

	finishJob := func() {
		done = true
		doneAt = s.Now()
		s.Stop()
	}

	var startRound func()

	if params.Elastic {
		// Pull a grain from the round's pool; leave the barrier only when
		// the pool is empty.
		pull := func(w *Worker) {
			if remaining <= 0 {
				barrier--
				if barrier == 0 {
					barrierClear()
					round++
					if round == params.Rounds {
						finishJob()
						return
					}
					startRound()
				}
				return
			}
			g := float64(grain)
			if g > remaining {
				g = remaining
			}
			remaining -= g
			w.exec(g)
		}
		startRound = func() {
			barrier = n
			remaining = float64(params.UnitsPerWorkerRound) * float64(n)
			if tr != nil {
				roundSpan = tr.Begin(bspTrack, fmt.Sprintf("superstep-%d", round), "bsp", 0, s.Now())
			}
			for _, w := range p.workers {
				pull(w)
			}
		}
		for _, w := range p.workers {
			w.finish = pull
		}
	} else {
		// Each worker owns its full per-round share; the barrier clears
		// when the slowest finishes.
		arrive := func(*Worker) {
			barrier--
			if barrier == 0 {
				barrierClear()
				round++
				if round == params.Rounds {
					finishJob()
					return
				}
				startRound()
			}
		}
		startRound = func() {
			barrier = n
			if tr != nil {
				roundSpan = tr.Begin(bspTrack, fmt.Sprintf("superstep-%d", round), "bsp", 0, s.Now())
			}
			for _, w := range p.workers {
				w.exec(float64(params.UnitsPerWorkerRound))
			}
		}
		for _, w := range p.workers {
			w.finish = arrive
		}
	}

	startRound()
	s.Run()
	for _, w := range p.workers {
		w.finish = nil
	}
	if !done {
		panic(fmt.Sprintf("cluster: BSP stalled in round %d with %d workers short of the barrier", round, barrier))
	}
	return BSPReport{
		Params:         params,
		Makespan:       doneAt - start,
		PerWorkerUnits: perWorkerUnits(p, before),
	}
}

// runBSPSharded is the barrier-engine form of RunBSP: workers record
// superstep arrivals shard-locally, the coordinator's barrier settles them
// in (time, worker) order — elastic pulls are granted in that order, the
// placement-invariant analogue of completion order — and the next round
// (or next grain) is dispatched at the window horizon. A round therefore
// ends at the exact event time its last worker arrived, while the next
// begins at most one lookahead later; once the final round clears, nothing
// is dispatched and the coordinator drains naturally.
func runBSPSharded(p *Pool, params BSPParams, grain int) BSPReport {
	ss := p.ss
	n := p.Size()
	start := ss.Now()
	before := snapshotUnits(p)

	comp := make([][]completionRec, ss.Shards())
	for _, w := range p.workers {
		w := w
		w.finish = func(*Worker) {
			comp[w.shard] = append(comp[w.shard], completionRec{at: w.sim.Now(), w: w.id})
		}
	}

	var (
		round     int
		barrier   int
		remaining float64
		done      bool
		doneAt    sim.Time
	)

	tr := p.tracer
	var bspTrack trace.TrackID
	var roundSpan trace.SpanID
	if tr != nil {
		bspTrack = tr.Track("bsp")
	}

	execAt := func(w *Worker, at sim.Time, units float64) {
		if at > w.sim.Now() {
			w.sim.At(at, func() { w.exec(units) })
		} else {
			w.exec(units)
		}
	}
	startRoundAt := func(at sim.Time) {
		barrier = n
		if params.Elastic {
			remaining = float64(params.UnitsPerWorkerRound) * float64(n)
		}
		if tr != nil {
			roundSpan = tr.Begin(bspTrack, fmt.Sprintf("superstep-%d", round), "bsp", 0, at)
		}
		for _, w := range p.workers {
			if params.Elastic {
				g := float64(grain)
				if g > remaining {
					g = remaining
				}
				if g <= 0 {
					barrier--
					continue
				}
				remaining -= g
				execAt(w, at, g)
			} else {
				execAt(w, at, float64(params.UnitsPerWorkerRound))
			}
		}
	}
	// arrive settles one worker's barrier arrival at event time at,
	// dispatching the next round (when one remains) at horizon h.
	arrive := func(at, h sim.Time) {
		barrier--
		if barrier != 0 {
			return
		}
		if tr != nil {
			tr.End(roundSpan, at)
		}
		round++
		if round == params.Rounds {
			done = true
			doneAt = at
			return
		}
		startRoundAt(h)
	}

	var merged []completionRec
	ss.SetBarrier(func(h sim.Time) {
		merged = merged[:0]
		for shard := range comp {
			merged = append(merged, comp[shard]...)
			comp[shard] = comp[shard][:0]
		}
		sort.Slice(merged, func(i, j int) bool {
			if merged[i].at != merged[j].at {
				return merged[i].at < merged[j].at
			}
			return merged[i].w < merged[j].w
		})
		for _, rec := range merged {
			if params.Elastic && remaining > 0 {
				g := float64(grain)
				if g > remaining {
					g = remaining
				}
				remaining -= g
				execAt(p.workers[rec.w], h, g)
				continue
			}
			arrive(rec.at, h)
		}
	})

	startRoundAt(start)
	ss.Run()
	ss.SetBarrier(nil)
	for _, w := range p.workers {
		w.finish = nil
	}
	if !done {
		panic(fmt.Sprintf("cluster: BSP stalled in round %d with %d workers short of the barrier", round, barrier))
	}
	return BSPReport{
		Params:         params,
		Makespan:       doneAt - start,
		PerWorkerUnits: perWorkerUnits(p, before),
	}
}

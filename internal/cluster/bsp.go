package cluster

import (
	"fmt"
	"sync"
	"time"
)

// BSPParams configures a bulk-synchronous parallel computation: Rounds
// supersteps, each ending in a barrier. This is the "static use of
// parallelism" the paper's introduction singles out: because every round
// waits for the slowest participant, a single performance-faulty node
// taxes every round of the whole machine.
type BSPParams struct {
	// Rounds is the number of barrier-separated supersteps.
	Rounds int
	// UnitsPerWorkerRound is each worker's share of one round's work.
	UnitsPerWorkerRound int
	// Elastic, when true, pools each round's work and lets workers pull
	// it in Grain-sized pieces: the barrier remains (the algorithm
	// requires it) but within a round fast workers absorb a straggler's
	// share, so the straggler delays the barrier only by its final grain.
	Elastic bool
	// Grain is the pull granularity for the elastic variant (default 20
	// units).
	Grain int
}

// BSPReport summarizes a BSP run.
type BSPReport struct {
	Params   BSPParams
	Makespan time.Duration
	// PerWorkerUnits is the work each worker actually executed.
	PerWorkerUnits []int64
}

func (r BSPReport) String() string {
	kind := "static"
	if r.Params.Elastic {
		kind = "elastic"
	}
	return fmt.Sprintf("bsp(%s): %d rounds in %v", kind, r.Params.Rounds,
		r.Makespan.Round(time.Millisecond))
}

// RunBSP executes the computation on the pool and reports.
func RunBSP(p *Pool, params BSPParams) BSPReport {
	if params.Rounds < 1 || params.UnitsPerWorkerRound < 1 {
		panic(fmt.Sprintf("cluster: invalid BSP params %+v", params))
	}
	grain := params.Grain
	if grain < 1 {
		grain = 20
	}
	before := snapshotUnits(p)
	start := time.Now()
	n := p.Size()
	for round := 0; round < params.Rounds; round++ {
		var wg sync.WaitGroup
		if !params.Elastic {
			for _, w := range p.Workers() {
				wg.Add(1)
				go func(w *Worker) {
					defer wg.Done()
					w.runUnits(params.UnitsPerWorkerRound, nil)
				}(w)
			}
		} else {
			total := params.UnitsPerWorkerRound * n
			grains := make(chan int, total/grain+1)
			for rem := total; rem > 0; rem -= grain {
				g := grain
				if rem < grain {
					g = rem
				}
				grains <- g
			}
			close(grains)
			for _, w := range p.Workers() {
				wg.Add(1)
				go func(w *Worker) {
					defer wg.Done()
					for g := range grains {
						w.runUnits(g, nil)
					}
				}(w)
			}
		}
		wg.Wait() // the barrier
	}
	return BSPReport{
		Params:         params,
		Makespan:       time.Since(start),
		PerWorkerUnits: perWorkerUnits(p, before),
	}
}

// Package spec implements performance specifications, the piece Section
// 3.1 of the paper identifies as necessary to define a performance fault:
// "A component should be considered performance-faulty if it has not
// absolutely failed ... and when its performance is less than that of its
// performance specification."
//
// A Spec pairs an expected service rate with a tolerance band and a
// promotion timeout T: a component delivering nothing for longer than T is
// promoted from performance-faulty to absolutely failed, resolving the
// paper's "arbitrarily slow" ambiguity.
package spec

import (
	"fmt"
	"math"
)

// Verdict classifies a component's current behaviour against its spec.
type Verdict int

const (
	// Nominal: performing within the specification's tolerance.
	Nominal Verdict = iota
	// PerfFaulty: working, but below the acceptable rate — the paper's
	// performance fault.
	PerfFaulty
	// AbsoluteFaulty: stopped (or silent beyond the promotion timeout) —
	// the classic fail-stop fault.
	AbsoluteFaulty
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Nominal:
		return "nominal"
	case PerfFaulty:
		return "perf-faulty"
	case AbsoluteFaulty:
		return "absolute-faulty"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Spec is a component performance specification. The paper notes a
// trade-off: the simpler the stated model ("this disk delivers 10 MB/s"),
// the more often reality will be declared faulty. Tolerance widens the
// acceptable band to tune that trade-off.
type Spec struct {
	// ExpectedRate is the nominal service rate in component units/second.
	ExpectedRate float64
	// Tolerance is the accepted fractional shortfall: with 0.2, anything
	// above 80% of ExpectedRate is nominal.
	Tolerance float64
	// PromotionTimeout is T: a component making no progress for longer
	// than T is treated as absolutely failed. Zero disables promotion.
	PromotionTimeout float64
}

// Validate reports whether the spec's fields are coherent.
func (s Spec) Validate() error {
	switch {
	case s.ExpectedRate <= 0 || math.IsNaN(s.ExpectedRate) || math.IsInf(s.ExpectedRate, 0):
		return fmt.Errorf("spec: expected rate %v must be positive and finite", s.ExpectedRate)
	case s.Tolerance < 0 || s.Tolerance >= 1 || math.IsNaN(s.Tolerance):
		return fmt.Errorf("spec: tolerance %v must be in [0, 1)", s.Tolerance)
	case s.PromotionTimeout < 0 || math.IsNaN(s.PromotionTimeout):
		return fmt.Errorf("spec: promotion timeout %v must be non-negative", s.PromotionTimeout)
	}
	return nil
}

// MinAcceptable returns the lowest rate the spec accepts as nominal.
func (s Spec) MinAcceptable() float64 {
	return s.ExpectedRate * (1 - s.Tolerance)
}

// JudgeRate classifies an instantaneous rate observation, without the
// temporal context needed for promotion: a zero rate is performance-faulty
// here, not absolute, because only sustained silence (see Tracker) can
// justify promotion.
func (s Spec) JudgeRate(observed float64) Verdict {
	if observed < s.MinAcceptable() {
		return PerfFaulty
	}
	return Nominal
}

// Tracker adds the temporal dimension: it watches a stream of
// (time, rate) observations and applies the promotion timeout. It is the
// spec-side half of fault classification; detectors in internal/detect add
// statistical smoothing on top.
type Tracker struct {
	spec         Spec
	lastProgress float64
	sawAnything  bool
	lastRate     float64
	lastTime     float64
}

// NewTracker builds a tracker for the given spec. It panics on an invalid
// spec, which always indicates a configuration bug.
func NewTracker(s Spec) *Tracker {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return &Tracker{spec: s}
}

// Spec returns the tracked specification.
func (t *Tracker) Spec() Spec { return t.spec }

// Observe records the component's service rate at time now. Observations
// must be delivered in non-decreasing time order.
func (t *Tracker) Observe(now, rate float64) {
	if t.sawAnything && now < t.lastTime {
		panic(fmt.Sprintf("spec: observation at %v before %v", now, t.lastTime))
	}
	if !t.sawAnything {
		t.lastProgress = now
	}
	t.sawAnything = true
	t.lastTime = now
	t.lastRate = rate
	if rate > 0 {
		t.lastProgress = now
	}
}

// Verdict classifies the component as of time now, applying the promotion
// timeout to sustained silence. Before any observation the component is
// nominal (innocent until measured).
func (t *Tracker) Verdict(now float64) Verdict {
	if !t.sawAnything {
		return Nominal
	}
	if t.spec.PromotionTimeout > 0 && now-t.lastProgress > t.spec.PromotionTimeout {
		return AbsoluteFaulty
	}
	return t.spec.JudgeRate(t.lastRate)
}

// LastRate returns the most recently observed rate (zero before any
// observation) — the raw signal behind the tracker's verdict, exposed so
// audit trails can record the evidence.
func (t *Tracker) LastRate() float64 { return t.lastRate }

// Deficit returns how far the last observed rate falls below the expected
// rate, as a fraction of expected (0 when at or above spec).
func (t *Tracker) Deficit() float64 {
	if !t.sawAnything {
		return 0
	}
	d := 1 - t.lastRate/t.spec.ExpectedRate
	if d < 0 {
		return 0
	}
	return d
}

package spec

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestVerdictString(t *testing.T) {
	cases := map[Verdict]string{
		Nominal:        "nominal",
		PerfFaulty:     "perf-faulty",
		AbsoluteFaulty: "absolute-faulty",
		Verdict(9):     "verdict(9)",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Fatalf("String(%d) = %q, want %q", int(v), v.String(), want)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{ExpectedRate: 10, Tolerance: 0.2, PromotionTimeout: 5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{ExpectedRate: 0, Tolerance: 0.2},
		{ExpectedRate: -1, Tolerance: 0.2},
		{ExpectedRate: 10, Tolerance: 1},
		{ExpectedRate: 10, Tolerance: -0.1},
		{ExpectedRate: 10, Tolerance: 0.1, PromotionTimeout: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestMinAcceptable(t *testing.T) {
	s := Spec{ExpectedRate: 100, Tolerance: 0.25}
	if got := s.MinAcceptable(); got != 75 {
		t.Fatalf("MinAcceptable = %v, want 75", got)
	}
}

func TestJudgeRate(t *testing.T) {
	s := Spec{ExpectedRate: 100, Tolerance: 0.2}
	if s.JudgeRate(80) != Nominal {
		t.Fatal("rate at boundary should be nominal")
	}
	if s.JudgeRate(79.9) != PerfFaulty {
		t.Fatal("rate below boundary should be perf-faulty")
	}
	if s.JudgeRate(120) != Nominal {
		t.Fatal("faster than spec should be nominal")
	}
	if s.JudgeRate(0) != PerfFaulty {
		t.Fatal("instantaneous zero should be perf-faulty, not absolute")
	}
}

func TestTrackerPromotion(t *testing.T) {
	tr := NewTracker(Spec{ExpectedRate: 10, Tolerance: 0.2, PromotionTimeout: 5})
	tr.Observe(0, 10)
	if v := tr.Verdict(1); v != Nominal {
		t.Fatalf("verdict = %v, want nominal", v)
	}
	tr.Observe(2, 0)
	if v := tr.Verdict(4); v != PerfFaulty {
		t.Fatalf("short stall verdict = %v, want perf-faulty", v)
	}
	if v := tr.Verdict(8); v != AbsoluteFaulty {
		t.Fatalf("stall beyond T verdict = %v, want absolute", v)
	}
	// Progress resets the promotion clock.
	tr.Observe(9, 10)
	if v := tr.Verdict(13); v != Nominal {
		t.Fatalf("verdict after recovery = %v, want nominal", v)
	}
}

func TestTrackerPromotionDisabled(t *testing.T) {
	tr := NewTracker(Spec{ExpectedRate: 10, Tolerance: 0.2})
	tr.Observe(0, 0)
	if v := tr.Verdict(1e9); v != PerfFaulty {
		t.Fatalf("verdict with T=0 = %v, want perf-faulty forever", v)
	}
}

func TestTrackerBeforeObservation(t *testing.T) {
	tr := NewTracker(Spec{ExpectedRate: 10, Tolerance: 0.2, PromotionTimeout: 1})
	if v := tr.Verdict(100); v != Nominal {
		t.Fatalf("unobserved component verdict = %v, want nominal", v)
	}
	if tr.Deficit() != 0 {
		t.Fatal("unobserved deficit not 0")
	}
}

func TestTrackerDeficit(t *testing.T) {
	tr := NewTracker(Spec{ExpectedRate: 100, Tolerance: 0.1})
	tr.Observe(0, 60)
	if d := tr.Deficit(); d != 0.4 {
		t.Fatalf("deficit = %v, want 0.4", d)
	}
	tr.Observe(1, 150)
	if d := tr.Deficit(); d != 0 {
		t.Fatalf("deficit above spec = %v, want 0", d)
	}
}

func TestTrackerOutOfOrderPanics(t *testing.T) {
	tr := NewTracker(Spec{ExpectedRate: 10, Tolerance: 0.1})
	tr.Observe(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order observation did not panic")
		}
	}()
	tr.Observe(4, 1)
}

func TestNewTrackerInvalidSpecPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("invalid spec did not panic")
		}
		if !strings.Contains(r.(error).Error(), "expected rate") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	NewTracker(Spec{})
}

// Property: classification is monotone in the observed rate — a faster
// component is never judged worse.
func TestJudgeMonotoneProperty(t *testing.T) {
	s := Spec{ExpectedRate: 100, Tolerance: 0.3}
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return s.JudgeRate(hi) <= s.JudgeRate(lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: verdict never regresses from AbsoluteFaulty while silence
// continues.
func TestPromotionSticksDuringSilenceProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		tr := NewTracker(Spec{ExpectedRate: 10, Tolerance: 0.1, PromotionTimeout: 3})
		tr.Observe(0, 0)
		now := 0.0
		promoted := false
		for _, s := range steps {
			now += float64(s%5) + 0.5
			v := tr.Verdict(now)
			if promoted && v != AbsoluteFaulty {
				return false
			}
			if v == AbsoluteFaulty {
				promoted = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package experiments

import (
	"fmt"

	"failstutter/internal/faults"
	"failstutter/internal/raid"
	"failstutter/internal/sim"
)

// Scenario parameters shared by E01-E03: N mirror pairs writing D blocks,
// with N-1 pairs at B and one pair at b < B (the paper's notation).
const (
	scenarioPairs = 4
	scenarioB     = 1e6    // healthy pair bandwidth, bytes/s
	scenarioSmall = 0.25e6 // slow pair bandwidth, bytes/s
)

func scenarioRates() []float64 {
	rates := make([]float64, scenarioPairs)
	for i := range rates {
		rates[i] = scenarioB
	}
	rates[scenarioPairs-1] = scenarioSmall
	return rates
}

func init() {
	register(Experiment{
		ID:    "E01",
		Title: "Scenario 1: fail-stop design tracks the slow pair",
		PaperClaim: "with N-1 pairs at B and one at b, equal striping yields " +
			"perceived throughput N*b (Section 3.2, scenario 1)",
		Run: runE01,
	})
	register(Experiment{
		ID:    "E02",
		Title: "Scenario 2: install-time gauging recovers (N-1)B+b, until drift",
		PaperClaim: "proportional striping from install-time ratios yields " +
			"(N-1)*B + b; 'if any disk does not perform as expected over time, " +
			"performance again tracks the slow disk' (Section 3.2, scenario 2)",
		Run: runE02,
	})
	register(Experiment{
		ID:    "E03",
		Title: "Scenario 3: continuous adaptation holds full bandwidth",
		PaperClaim: "continually gauging and writing in proportion to current " +
			"rates delivers the full available bandwidth under a wide range of " +
			"performance faults, at the cost of increased bookkeeping (Section 3.2)",
		Run: runE03,
	})
	register(Experiment{
		ID:    "E04",
		Title: "Striping tracks the slowest disk",
		PaperClaim: "if performance of a single disk is consistently lower than " +
			"the rest, the performance of the entire storage system tracks the " +
			"single slow disk (Section 1)",
		Run: runE04,
	})
	register(Experiment{
		ID:    "E21",
		Title: "Incremental growth: old parts as perf-faulty new parts",
		PaperClaim: "adding faster components is handled naturally, because the " +
			"older components simply appear to be performance-faulty versions " +
			"of the new ones (Section 3.3, manageability)",
		Run: runE21,
	})
	register(Experiment{
		ID:    "A2",
		Title: "Ablation: adaptive re-gauge interval vs throughput and bookkeeping",
		PaperClaim: "because these proportions may change over time, the " +
			"controller must record where each block is written (Section 3.2)",
		Run: runA2,
	})
}

func runE01(cfg Config) *Table {
	blocks := scale(cfg, 2000, 20000)
	t := NewTable("E01", "Scenario 1: fail-stop design tracks the slow pair",
		"throughput = N*b when one pair runs at b",
		"design", "measured", "paper-predicted")
	tel := cfg.telemetry()
	t.Telemetry = tel
	res := runStriperT(tel, "static-equal", scenarioRates(), blocks, raid.StaticEqual{}, nil)
	predicted := float64(scenarioPairs) * scenarioSmall
	t.AddRow("static-equal (fail-stop)", mb(res.Throughput), mb(predicted))
	t.SetMetric("throughput", res.Throughput)
	t.SetMetric("predicted", predicted)
	t.SetMetric("rel_error", relErr(res.Throughput, predicted))
	t.AddNote("N=%d pairs, B=%s, b=%s, D=%d blocks", scenarioPairs, mb(scenarioB), mb(scenarioSmall), blocks)
	return t
}

func runE02(cfg Config) *Table {
	blocks := scale(cfg, 4000, 40000)
	t := NewTable("E02", "Scenario 2: install-time gauging",
		"throughput = (N-1)*B + b under static faults; drift reverts to tracking the slow disk",
		"condition", "design", "measured", "paper-predicted")

	tel := cfg.telemetry()
	t.Telemetry = tel

	// Static fault: gauging sees the slow pair and compensates.
	res := runStriperT(tel, "gauged-static", scenarioRates(), blocks, raid.GaugedProportional{ProbeBlocks: 32}, nil)
	predicted := float64(scenarioPairs-1)*scenarioB + scenarioSmall
	t.AddRow("static slow pair", "gauged-proportional", mb(res.Throughput), mb(predicted))
	t.SetMetric("throughput_static", res.Throughput)
	t.SetMetric("predicted_static", predicted)
	t.SetMetric("rel_error_static", relErr(res.Throughput, predicted))

	// Drift after gauging: all pairs healthy at install, one degrades
	// mid-job; the frozen ratios revert the design to scenario-1 behaviour.
	healthy := make([]float64, scenarioPairs)
	for i := range healthy {
		healthy[i] = scenarioB
	}
	// Gauging 32 probe blocks per pair takes ~0.6 s of simulated time; the
	// step lands early in the measured job so most of it runs degraded.
	drift := func(s *sim.Simulator, a *raid.Array) {
		faults.StepAt{At: 2, Factor: scenarioSmall / scenarioB}.
			Install(s, a.Pairs()[0].A.Composite())
	}
	resDrift := runStriperT(tel, "gauged-drift", healthy, blocks, raid.GaugedProportional{ProbeBlocks: 32}, drift)
	t.AddRow("drift after gauge", "gauged-proportional", mb(resDrift.Throughput), "between N*b and (N-1)B+b")
	t.SetMetric("throughput_drift", resDrift.Throughput)
	return t
}

func runE03(cfg Config) *Table {
	blocks := scale(cfg, 6000, 40000)
	t := NewTable("E03", "Scenario 3: continuous adaptation",
		"full available bandwidth under static and dynamic faults",
		"condition", "design", "measured", "available bandwidth")

	tel := cfg.telemetry()
	t.Telemetry = tel

	available := float64(scenarioPairs-1)*scenarioB + scenarioSmall
	res := runStriperT(tel, "adaptive-static", scenarioRates(), blocks, raid.AdaptivePull{Depth: 2}, nil)
	t.AddRow("static slow pair", "adaptive-pull", mb(res.Throughput), mb(available))
	t.SetMetric("throughput_static", res.Throughput)
	t.SetMetric("available_static", available)

	// Dynamic fault: a pair spends 75% of its time at 5% speed (a severe
	// recurring stutter — background scrubs, thermal recals).
	oscillate := func(s *sim.Simulator, a *raid.Array) {
		faults.PeriodicStall{Period: 2, Duration: 1.5, Factor: 0.05, Until: 1e6}.
			Install(s, a.Pairs()[0].A.Composite())
	}
	healthy := make([]float64, scenarioPairs)
	for i := range healthy {
		healthy[i] = scenarioB
	}
	// Average available bandwidth: pair 0 delivers 0.25 + 0.75*0.05 of B.
	availDyn := float64(scenarioPairs-1)*scenarioB + 0.2875*scenarioB
	resStatic := runStriperT(tel, "static-oscillating", healthy, blocks, raid.StaticEqual{}, oscillate)
	resAdapt := runStriperT(tel, "adaptive-oscillating", healthy, blocks, raid.AdaptivePull{Depth: 2}, oscillate)
	resWave := runStriperT(tel, "wave-oscillating", healthy, blocks, raid.AdaptiveWave{Interval: 0.25, WaveBlocks: 400}, oscillate)
	t.AddRow("oscillating pair", "static-equal", mb(resStatic.Throughput), mb(availDyn))
	t.AddRow("oscillating pair", "adaptive-pull", mb(resAdapt.Throughput), mb(availDyn))
	t.AddRow("oscillating pair", "adaptive-wave", mb(resWave.Throughput), mb(availDyn))
	t.SetMetric("throughput_dyn_static", resStatic.Throughput)
	t.SetMetric("throughput_dyn_adaptive", resAdapt.Throughput)
	t.SetMetric("throughput_dyn_wave", resWave.Throughput)
	t.SetMetric("bookkeeping_adaptive", float64(resAdapt.Bookkeeping))
	t.AddNote("adaptive bookkeeping grows one entry per block placed; static uses none")
	return t
}

func runE04(cfg Config) *Table {
	blocks := scale(cfg, 1500, 15000)
	t := NewTable("E04", "Striping tracks the slowest disk",
		"array throughput is proportional to the slowest member's rate",
		"slow-disk deficit", "array throughput", "slowest-disk prediction")
	tel := cfg.telemetry()
	t.Telemetry = tel
	for _, deficit := range []float64{0, 0.1, 0.25, 0.5, 0.75} {
		rates := []float64{scenarioB, scenarioB, scenarioB, scenarioB * (1 - deficit)}
		res := runStriperT(tel, fmt.Sprintf("deficit-%.0f%%", deficit*100), rates, blocks, raid.StaticEqual{}, nil)
		predicted := 4 * scenarioB * (1 - deficit)
		t.AddRow(fmt.Sprintf("%.0f%%", deficit*100), mb(res.Throughput), mb(predicted))
		t.SetMetric(fmt.Sprintf("throughput_%.0f", deficit*100), res.Throughput)
		t.SetMetric(fmt.Sprintf("predicted_%.0f", deficit*100), predicted)
	}
	return t
}

func runE21(cfg Config) *Table {
	blocks := scale(cfg, 3000, 30000)
	t := NewTable("E21", "Incremental growth",
		"a fail-stutter design uses heterogeneous old+new parts at their actual rates",
		"design", "measured", "ideal")
	// Two old pairs at 0.5 MB/s, two newer pairs at 2 MB/s.
	tel := cfg.telemetry()
	t.Telemetry = tel
	rates := []float64{0.5e6, 0.5e6, 2e6, 2e6}
	ideal := 5e6
	static := runStriperT(tel, "static-equal", rates, blocks, raid.StaticEqual{}, nil)
	adaptive := runStriperT(tel, "adaptive-pull", rates, blocks, raid.AdaptivePull{Depth: 2}, nil)
	t.AddRow("static-equal (fail-stop)", mb(static.Throughput), mb(ideal))
	t.AddRow("adaptive-pull (fail-stutter)", mb(adaptive.Throughput), mb(ideal))
	t.SetMetric("throughput_static", static.Throughput)
	t.SetMetric("throughput_adaptive", adaptive.Throughput)
	t.SetMetric("ideal", ideal)
	t.AddNote("static is pinned at 4x the old pairs' rate (%s); no operator tuning was configured for either design", mb(4*0.5e6))
	return t
}

func runA2(cfg Config) *Table {
	blocks := scale(cfg, 3000, 20000)
	t := NewTable("A2", "Ablation: re-gauge interval",
		"faster re-gauging tracks dynamic faults better; bookkeeping is one record per block either way",
		"re-gauge interval", "throughput", "bookkeeping entries", "reissued")
	oscillate := func(s *sim.Simulator, a *raid.Array) {
		faults.PeriodicStall{Period: 2, Duration: 1, Factor: 0.2, Until: 1e6}.
			Install(s, a.Pairs()[0].A.Composite())
	}
	healthy := make([]float64, scenarioPairs)
	for i := range healthy {
		healthy[i] = scenarioB
	}
	tel := cfg.telemetry()
	t.Telemetry = tel
	for _, interval := range []float64{0.1, 0.25, 0.5, 1, 2, 4} {
		res := runStriperT(tel, fmt.Sprintf("wave-%.2gs", interval), healthy, blocks, raid.AdaptiveWave{Interval: interval, WaveBlocks: 400}, oscillate)
		t.AddRow(fmt.Sprintf("%.2g s", interval), mb(res.Throughput),
			fmt.Sprintf("%d", res.Bookkeeping), fmt.Sprintf("%d", res.Reissued))
		t.SetMetric(fmt.Sprintf("throughput_%.2g", interval), res.Throughput)
	}
	return t
}

// relErr returns |a-b| / b.
func relErr(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

package experiments

import (
	"fmt"

	"failstutter/internal/river"
	"failstutter/internal/sim"
	"failstutter/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "E25",
		Title: "River distributed queue: back-pressure sheds slow consumers",
		PaperClaim: "River provides mechanisms to enable consistent and high " +
			"performance in spite of erratic performance in underlying " +
			"components (Section 4)",
		Run: runE25,
	})
	register(Experiment{
		ID:    "E26",
		Title: "Graduated declustering: mirrored reads degrade gracefully",
		PaperClaim: "a system that handles performance faults naturally works " +
			"well with heterogeneously-performing parts (Sections 3.3 and 4; " +
			"River's storage mechanism)",
		Run: runE26,
	})
}

func runE25(cfg Config) *Table {
	records := scale(cfg, 4000, 40000)
	t := NewTable("E25", "River distributed queue",
		"back-pressure balancing approaches available bandwidth; static routing tracks the slow consumer",
		"routing policy", "one consumer at 10%", "throughput vs ideal")
	// Ideal with one of four consumers at 10%: 3.1 consumer-equivalents.
	tel := cfg.telemetry()
	t.Telemetry = tel
	const consumers, rate = 4, 100.0
	available := float64(records) / (3.1 * rate)
	for _, policy := range []river.Policy{river.RoundRobin, river.RandomChoice, river.CreditBased} {
		s := sim.New()
		dq := river.NewDQ(s, river.DQParams{
			Consumers: consumers, ConsumerRate: rate, QueueCap: 4,
			Policy: policy, RNG: sim.NewRNG(cfg.Seed).Fork("e25"),
		})
		if tel != nil {
			dq.SetTracer(tel.Tracer)
		}
		dq.ConsumerComposite(0).Set("slow", 0.1)
		makespan := 0.0
		dq.Produce(records, func(m sim.Duration) { makespan = m; s.Stop() })
		s.Run()
		if tel != nil {
			tel.Metrics.Series("dq-makespan", trace.L("policy", policy.String())).Add(0, makespan)
			tel.endRun(s)
		}
		frac := available / makespan
		t.AddRow(policy.String(),
			fmt.Sprintf("%.1f s", makespan),
			fmt.Sprintf("%.0f%% of available", frac*100))
		t.SetMetric("makespan_"+policy.String(), makespan)
		t.SetMetric("frac_"+policy.String(), frac)
	}
	t.AddNote("%d records, 4 consumers at %g rec/s nominal, queue depth 4", records, rate)
	return t
}

func runE26(cfg Config) *Table {
	perPartition := scale(cfg, 400, 4000)
	t := NewTable("E26", "Graduated declustering",
		"one slow disk halves the static design's read; graduated spreads the deficit over all mirrors",
		"slow-disk speed", "static makespan", "graduated makespan", "graduated vs fluid ideal")
	tel := cfg.telemetry()
	t.Telemetry = tel
	const partitions = 8
	run := func(graduated bool, factor float64) (float64, *river.GD) {
		s := sim.New()
		g := river.NewGD(s, river.GDParams{
			Partitions: partitions, PartitionRecords: perPartition,
			DiskRate: 100, Graduated: graduated, Window: 2,
		})
		if tel != nil {
			g.SetTracer(tel.Tracer)
		}
		if factor < 1 {
			g.DiskComposite(0).Set("slow", factor)
		}
		makespan := 0.0
		g.Run(func(m sim.Duration, _ []sim.Duration) { makespan = m; s.Stop() })
		s.Run()
		if tel != nil {
			mode := "static"
			if graduated {
				mode = "graduated"
			}
			tel.Metrics.Series("gd-makespan",
				trace.L("mode", mode), trace.L("factor", fmt.Sprintf("%.2f", factor))).Add(0, makespan)
			tel.endRun(s)
		}
		return makespan, g
	}
	for _, factor := range []float64{1, 0.5, 0.25, 0.1} {
		staticSpan, _ := run(false, factor)
		gradSpan, gg := run(true, factor)
		fluid := gg.DegradedIdeal(factor)
		t.AddRow(fmt.Sprintf("%.0f%%", factor*100),
			fmt.Sprintf("%.1f s", staticSpan),
			fmt.Sprintf("%.1f s", gradSpan),
			fmt.Sprintf("%.2fx", gradSpan/fluid))
		t.SetMetric(fmt.Sprintf("static_%.2f", factor), staticSpan)
		t.SetMetric(fmt.Sprintf("graduated_%.2f", factor), gradSpan)
		t.SetMetric(fmt.Sprintf("fluid_%.2f", factor), fluid)
	}
	t.AddNote("%d partitions mirrored ring-wise; the static design reads each partition from its primary only", partitions)
	return t
}

package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"failstutter/internal/profile"
	"failstutter/internal/trace"
)

// TestClusterTraceGolden pins the E23 cluster-plane Chrome trace at seed
// 42 byte-for-byte: worker station spans, scheduler reissue/clone
// instants, and the sub-run layout. Refresh with
// `go test ./internal/experiments/ -run ClusterTraceGolden -update`
// after verifying the new timeline in Perfetto.
func TestClusterTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := runObserved(t, "E23").Telemetry.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "E23.trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("E23 Chrome trace diverged from %s (len %d vs %d); "+
			"inspect in Perfetto and refresh with -update if intended",
			path, buf.Len(), len(want))
	}
}

// TestClusterSpanCoverage checks the cluster plane emits the spans the
// profiler depends on: scheduler instants in E23, BSP supersteps in E29,
// DHT puts and audit records in E14.
func TestClusterSpanCoverage(t *testing.T) {
	countCat := func(tr *trace.Tracer, cat string) int {
		n := 0
		for _, sp := range tr.Spans() {
			if sp.Cat == cat {
				n++
			}
		}
		return n
	}
	if tel := runObserved(t, "E23").Telemetry; countCat(tel.Tracer, "sched") == 0 {
		t.Error("E23: no scheduler reissue/clone instants recorded")
	}
	if tel := runObserved(t, "E29").Telemetry; countCat(tel.Tracer, "bsp") == 0 {
		t.Error("E29: no BSP superstep spans recorded")
	}
	tel := runObserved(t, "E14").Telemetry
	if countCat(tel.Tracer, "dht") == 0 {
		t.Error("E14: no DHT spans recorded")
	}
	// The adaptive run's peer-relative detector must leave an audit
	// trail of its hinted-handoff flag transitions.
	saw := false
	for _, r := range tel.Audit.Records() {
		if r.Detector == "peer-relative" && strings.Contains(r.To, "perf") {
			saw = true
		}
	}
	if !saw {
		t.Error("E14: adaptive DHT detector left no flag transition in the audit trail")
	}
}

// profiled is the quick test config with the profiling plane on.
var profiled = Config{Seed: 42, Quick: true, Profile: true}

// TestProfilePlane exercises the full pipeline on real experiments:
// Profile implies Trace+Metrics, the station sampler populates
// queue-depth series, and the derived artifacts are byte-deterministic.
func TestProfilePlane(t *testing.T) {
	render := func(id string) [4]string {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		tbl := e.Run(profiled)
		tel := tbl.Telemetry
		if tel == nil || !tel.Profile || tel.Tracer == nil || tel.Metrics == nil {
			t.Fatalf("%s: Profile config did not attach tracer+metrics telemetry", id)
		}
		rep := profile.Analyze(tel.Tracer, tel.Metrics)
		slo := profile.AnalyzeSLO(tel.Tracer, profile.SLOConfig{})
		var j, f, x, s strings.Builder
		if err := rep.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteFolded(&f); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteText(&x, 10); err != nil {
			t.Fatal(err)
		}
		if err := slo.WriteJSON(&s); err != nil {
			t.Fatal(err)
		}
		return [4]string{j.String(), f.String(), x.String(), s.String()}
	}

	for _, id := range []string{"E01", "E05", "E23"} {
		a, b := render(id), render(id)
		if a != b {
			t.Fatalf("%s: profile artifacts not byte-identical across runs", id)
		}
		if len(a[1]) == 0 {
			t.Fatalf("%s: folded stacks empty", id)
		}
	}

	// The sampler must have recorded occupancy for at least one station,
	// and the profile analyses must see the same merged data at any shard
	// count: the derived artifacts carry no meta stamp here, so they must
	// be byte-identical between one shard and eight.
	for _, id := range []string{"E23", "E32"} {
		renderAt := func(shards int) [4]string {
			e, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			tbl := e.Run(Config{Seed: 42, Quick: true, Profile: true, Shards: shards})
			tel := tbl.Telemetry
			rep := profile.Analyze(tel.Tracer, tel.Metrics)
			slo := profile.AnalyzeSLO(tel.Tracer, profile.SLOConfig{})
			var j, f, x, s strings.Builder
			if err := rep.WriteJSON(&j); err != nil {
				t.Fatal(err)
			}
			if err := rep.WriteFolded(&f); err != nil {
				t.Fatal(err)
			}
			if err := rep.WriteText(&x, 10); err != nil {
				t.Fatal(err)
			}
			if err := slo.WriteJSON(&s); err != nil {
				t.Fatal(err)
			}
			return [4]string{j.String(), f.String(), x.String(), s.String()}
		}
		if one, eight := renderAt(1), renderAt(8); one != eight {
			t.Fatalf("%s: profile analyses differ between -shards=1 and -shards=8", id)
		}
	}

	// The sampler must have recorded occupancy for at least one station,
	// and the profiler must surface it as queue stats.
	tbl, _ := Get("E23")
	tel := tbl.Run(profiled).Telemetry
	sawSeries := false
	tel.Metrics.VisitSeries("queue-depth", func(_ []trace.Label, s *trace.Series) {
		if s.Len() > 0 {
			sawSeries = true
		}
	})
	if !sawSeries {
		t.Fatal("E23: profiling run recorded no queue-depth samples")
	}
	rep := profile.Analyze(tel.Tracer, tel.Metrics)
	sawQueue := false
	for _, c := range rep.Components {
		if c.Queue != nil && c.Queue.Samples > 0 {
			sawQueue = true
		}
	}
	if !sawQueue {
		t.Fatal("E23: no component carries sampled queue stats")
	}
}

package experiments

import (
	"fmt"

	"failstutter/internal/detect"
	"failstutter/internal/sim"
	"failstutter/internal/spec"
	"failstutter/internal/trace"
)

// E32 is the datacenter-scale capstone of the sharded kernel: a fleet of
// up to a million simulated disks, partitioned across shards, each a
// closed-loop station draining work at a heterogeneous base rate, with
// detect.PeerSet sweeping the whole fleet every virtual second from the
// conservative barrier. A small fraction of disks stutter (rate x0.25)
// or fail outright mid-run; the peer-relative detector must flag the
// divergent disks — and only them — without any absolute specification,
// at fleet sizes where per-spec tracking is operationally absurd.
//
// Everything in the table and telemetry depends only on virtual time and
// per-disk RNG streams, so the output is byte-identical at any shard
// count; wall-clock throughput (the events/sec headline) is measured
// separately by `fstutter bench`.

func init() {
	register(Experiment{
		ID:    "E32",
		Title: "Million-disk fleet: peer detection at datacenter scale",
		PaperClaim: "in a system of hundreds or thousands of disks, it is " +
			"likely that a number of them will perform at levels beneath " +
			"their peers (Section 2.3); techniques that scale to such " +
			"fleets must compare components against each other, not " +
			"against a static specification (Section 3.2)",
		Run: runE32,
	})
}

// fleetTick is the virtual-time interval between fleet sweeps, and also
// the sharded kernel's lookahead bound: the fleet's disks never interact
// within a tick, so any positive lookahead is safe, and one tick per
// window keeps every barrier aligned with a sweep.
const fleetTick = sim.Duration(1)

// FleetParams configures one fleet scenario run.
type FleetParams struct {
	// Disks is the fleet size.
	Disks int
	// Shards is the shard count for the underlying kernel (minimum 1).
	Shards int
	// Seed drives every per-disk stream (forked by disk identity).
	Seed uint64
	// Ticks is the number of fleet sweeps; faults inject after a third of
	// them. Zero means the default 12.
	Ticks int
	// SweepWorkers sizes the barrier's worker pool: the fleet sweep's
	// observe and classify phases fan across this many workers. Zero means
	// GOMAXPROCS. The result is byte-identical at any value.
	SweepWorkers int
	// Rebalance load-balances disks across shards before construction: an
	// analytic per-disk event-cost model (built from a pure RNG pre-pass,
	// so the main pass's draws are untouched) feeds
	// sim.RecommendPlacement, and the plan is installed with SetPlacement.
	// Placement is just another partition, so results are unchanged; only
	// the per-shard wall-clock balance moves.
	Rebalance bool
	// ObserveBarrier, when non-nil, enables the kernel's barrier cost
	// counters and receives the profile after the run.
	ObserveBarrier func(st sim.BarrierStats, perShard []uint64)
	// Telemetry, when non-nil, traces the fleet: per-shard collectors are
	// installed on the kernel and every disk station records into its home
	// shard's collector. Fleet runs are expected to set Telemetry.Recorder
	// (the flight-recorder bound) — retaining every span of a million-disk
	// run wholesale is exactly what the recorder exists to avoid.
	Telemetry *Telemetry
}

// FleetResult is the scenario's virtual-time outcome. Every field is
// byte-deterministic for given params regardless of shard count.
type FleetResult struct {
	// Events is the total kernel events executed on behalf of disks:
	// completions, fault injections, and sweeps. Per-shard sampler
	// bookkeeping events are excluded — their count scales with the shard
	// count, and this figure must not.
	Events uint64
	// InjectedStutter and InjectedFail count the faulty disks.
	InjectedStutter int
	InjectedFail    int
	// DetectedStutter / DetectedFail count injected faults the final
	// sweep classifies as performance-faulty / absolutely-failed.
	DetectedStutter int
	DetectedFail    int
	// FalseAlarms counts healthy disks flagged at the final sweep.
	FalseAlarms int
	// MeanLagTicks is the mean sweeps-after-injection before a detected
	// fault was first flagged.
	MeanLagTicks float64
	// FlaggedPerSweep records how many disks any sweep flagged, one entry
	// per tick — the series the telemetry plane exports.
	FlaggedPerSweep []int
}

// fleetDisk is one simulated disk: a closed-loop station that always has
// a request in flight, so it drains work at exactly its effective rate.
type fleetDisk struct {
	st  *sim.Station
	req sim.Request
	// done accumulates completed request sizes; done + ServedInCurrent is
	// the disk's exact cumulative work counter.
	done float64
	// prev is the counter at the previous sweep.
	prev float64
}

// RunFleetScenario runs one fleet scenario on a sharded kernel and
// returns its outcome. Exported so `fstutter bench` can time the
// million-disk configuration directly at full scale.
func RunFleetScenario(p FleetParams) FleetResult {
	if p.Ticks == 0 {
		p.Ticks = 12
	}
	if p.Shards < 1 {
		p.Shards = 1
	}
	faultTick := p.Ticks / 3
	const (
		stutterFrac = 1.0 / 512
		failFrac    = 1.0 / 1024
		stutterMult = 0.25
	)
	ss := sim.NewSharded(p.Shards, fleetTick)
	ss.SetBarrierParallelism(p.SweepWorkers)
	pool := ss.BarrierPool()
	defer pool.Close()
	if p.ObserveBarrier != nil {
		ss.Profile()
	}
	root := sim.NewRNG(p.Seed).Fork("e32")
	if p.Rebalance {
		ss.SetPlacement(sim.RecommendPlacement(fleetLoadModel(root, p), p.Shards))
	}
	p.Telemetry.attachSharded(ss)

	disks := make([]fleetDisk, p.Disks)
	ids := make([]string, p.Disks)
	// faultKind: 0 healthy, 1 stutter, 2 fail. flagTick is the sweep a
	// faulty disk was first flagged at, -1 until then.
	faultKind := make([]uint8, p.Disks)
	flagTick := make([]int32, p.Disks)
	byShard := make([][]int32, p.Shards)
	res := FleetResult{}
	for i := range disks {
		ids[i] = fmt.Sprintf("d%07d", i)
		flagTick[i] = -1
		rng := root.Fork(ids[i])
		shard := ss.ShardFor(ids[i])
		byShard[shard] = append(byShard[shard], int32(i))
		sh := ss.Shard(shard)
		rate := 80 + 40*rng.Float64()
		d := &disks[i]
		d.st = sim.NewStation(sh, ids[i], rate)
		if tr := ss.ShardTracer(shard); tr != nil {
			d.st.SetTracer(tr)
		}
		// Two completions per tick: the closed loop resubmits the same
		// request object, so steady state allocates nothing.
		d.req.Size = rate * 0.5
		d.req.OnDone = func(r *sim.Request) {
			d.done += r.Size
			d.st.Submit(r)
		}
		d.st.Submit(&d.req)
		switch u := rng.Float64(); {
		case u < failFrac:
			faultKind[i] = 2
			res.InjectedFail++
			sh.At(float64(faultTick)+0.5, d.st.Fail)
		case u < failFrac+stutterFrac:
			faultKind[i] = 1
			res.InjectedStutter++
			sh.At(float64(faultTick)+0.5, func() { d.st.SetMultiplier(stutterMult) })
		}
	}

	// Per-shard samplers: at every tick each shard snapshots its own
	// disks' work counters into samples — shard-local writes only, so the
	// parallel window needs no synchronization.
	samples := make([]float64, p.Disks)
	for shard := 0; shard < p.Shards; shard++ {
		local := byShard[shard]
		sh := ss.Shard(shard)
		var sample func()
		sample = func() {
			for _, i := range local {
				d := &disks[i]
				cum := d.done + d.st.ServedInCurrent()
				samples[i] = (cum - d.prev) / fleetTick
				d.prev = cum
			}
			if sh.Now()+fleetTick <= float64(p.Ticks) {
				sh.After(fleetTick, sample)
			}
		}
		sh.At(fleetTick, sample)
	}

	// The barrier drains every tick's samples into the fleet sweep: all
	// shards have sampled tick k once the window horizon passes k. The
	// sweep itself fans across the kernel's barrier pool — observe all,
	// rebuild the median mirror by parallel sort + k-way merge, classify
	// all — with every reduction in dense disk order, so the outcome is
	// byte-identical at any worker count. Only the serial bookkeeping loop
	// below reads the verdicts.
	ps := detect.NewPeerSet(detect.PeerConfig{
		WindowSamples: 4, Threshold: 0.7, MinPeers: 4, PromotionTimeout: 2.5,
	})
	for _, id := range ids {
		ps.Register(id)
	}
	verdicts := make([]spec.Verdict, p.Disks)
	sweep := 1
	lagSum, lagN := 0, 0
	ss.SetBarrier(func(h sim.Time) {
		for sweep <= p.Ticks && float64(sweep) < h {
			now := float64(sweep)
			ps.SweepObserve(pool, now, samples)
			flagged := ps.SweepVerdicts(pool, now, verdicts)
			for i, v := range verdicts {
				if v == spec.Nominal {
					continue
				}
				if faultKind[i] != 0 && flagTick[i] < 0 {
					flagTick[i] = int32(sweep)
					lagSum += sweep - faultTick
					lagN++
				}
				if sweep == p.Ticks {
					switch {
					case faultKind[i] == 2 && v == spec.AbsoluteFaulty:
						res.DetectedFail++
					case faultKind[i] == 1 && v == spec.PerfFaulty:
						res.DetectedStutter++
					case faultKind[i] == 0:
						res.FalseAlarms++
					}
				}
			}
			res.FlaggedPerSweep = append(res.FlaggedPerSweep, flagged)
			sweep++
		}
	})
	ss.RunUntil(float64(p.Ticks))
	if lagN > 0 {
		res.MeanLagTicks = float64(lagSum) / float64(lagN)
	}
	// Each shard's sampler chain fires exactly once per tick; subtract
	// that bookkeeping so Events is byte-identical at any shard count.
	res.Events = ss.EventsFired() - uint64(p.Shards)*uint64(p.Ticks)
	if p.ObserveBarrier != nil {
		p.ObserveBarrier(*ss.Profile(), ss.PerShardFired())
	}
	p.Telemetry.endSharded(ss)
	return res
}

// Flight-recorder bounds for traced fleet runs: enough retained spans to
// reconstruct incident timelines and latency profiles, small enough that
// tracing a 2^20-disk run costs megabytes of retention instead of the
// ~25M spans it records.
const (
	fleetRing      = 2048
	fleetReservoir = 2048
)

// FleetRecorder builds the flight-recorder configuration traced fleet
// runs share: the ring/reservoir bounds above with a sampling seed
// forked from the experiment seed, so the retained selection is
// deterministic and byte-identical at any shard count.
func FleetRecorder(seed uint64) trace.RecorderConfig {
	return trace.RecorderConfig{
		Ring:      fleetRing,
		Reservoir: fleetReservoir,
		Seed:      sim.NewRNG(seed).Fork("e32-flight-recorder").Uint64(),
	}
}

// fleetLoadModel predicts each disk's kernel-event cost before the fleet
// is built, by replaying the construction loop's per-disk RNG draws:
// Fork is pure (it hashes, never consumes parent state), so this pre-pass
// leaves the main pass's streams untouched. The model counts completions
// — two per tick at full rate — plus the injection event: a failed disk
// stops at the fault tick, a stuttered one drops to a quarter rate (one
// completion every two ticks), a healthy one runs full the whole way.
// The units are approximate event counts, but RecommendPlacement only
// needs the ratios.
func fleetLoadModel(root *sim.RNG, p FleetParams) []sim.Load {
	faultTick := p.Ticks / 3
	const (
		stutterFrac = 1.0 / 512
		failFrac    = 1.0 / 1024
	)
	loads := make([]sim.Load, p.Disks)
	for i := range loads {
		id := fmt.Sprintf("d%07d", i)
		rng := root.Fork(id)
		rng.Float64() // rate draw; cost depends only on the fault draw
		cost := 2 * float64(p.Ticks)
		switch u := rng.Float64(); {
		case u < failFrac:
			cost = 2*float64(faultTick) + 1
		case u < failFrac+stutterFrac:
			cost = 2*float64(faultTick) + 0.5*float64(p.Ticks-faultTick) + 1
		}
		loads[i] = sim.Load{ID: id, Cost: cost}
	}
	return loads
}

func runE32(cfg Config) *Table {
	t := NewTable("E32", "Fleet-scale peer detection",
		"peer-relative medians pick the divergent disks out of a fleet with no absolute spec; "+
			"the sharded kernel makes the fleet size a core-count problem, not a feasibility one",
		"disks", "events", "stutter found", "fail found", "false alarms", "detection lag")
	tel := cfg.telemetry()
	t.Telemetry = tel
	if tel != nil && tel.Tracer != nil {
		// Fleet traces run under the flight recorder: exact counts stay in
		// the merged registry, while span retention is bounded no matter
		// how many disks the fleet has. One seed for the whole experiment —
		// the destination tracer and every per-shard collector must agree
		// on sampling priorities for the merge to be placement-invariant.
		rc := FleetRecorder(cfg.Seed)
		tel.Recorder = &rc
		tel.Tracer.SetFlightRecorder(rc)
	}
	fleets := []int{512, 2048}
	if !cfg.Quick {
		fleets = []int{1 << 14, 1 << 17, 1 << 20}
	}
	var prevRecorded uint64
	for _, n := range fleets {
		var obs func(sim.BarrierStats, []uint64)
		if cfg.ObserveBarrier != nil {
			run := fmt.Sprintf("fleet-%d", n)
			obs = func(st sim.BarrierStats, perShard []uint64) {
				cfg.ObserveBarrier(run, st, perShard)
			}
		}
		r := RunFleetScenario(FleetParams{
			Disks: n, Shards: cfg.ShardCount(), Seed: cfg.Seed,
			SweepWorkers: cfg.SweepWorkers, ObserveBarrier: obs,
			Telemetry: tel,
		})
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%d/%d", r.DetectedStutter, r.InjectedStutter),
			fmt.Sprintf("%d/%d", r.DetectedFail, r.InjectedFail),
			fmt.Sprintf("%d", r.FalseAlarms),
			fmt.Sprintf("%.2f ticks", r.MeanLagTicks))
		t.SetMetric(fmt.Sprintf("events_%d", n), float64(r.Events))
		t.SetMetric(fmt.Sprintf("detected_stutter_%d", n), float64(r.DetectedStutter))
		t.SetMetric(fmt.Sprintf("injected_stutter_%d", n), float64(r.InjectedStutter))
		t.SetMetric(fmt.Sprintf("detected_fail_%d", n), float64(r.DetectedFail))
		t.SetMetric(fmt.Sprintf("injected_fail_%d", n), float64(r.InjectedFail))
		t.SetMetric(fmt.Sprintf("false_alarms_%d", n), float64(r.FalseAlarms))
		t.SetMetric(fmt.Sprintf("lag_ticks_%d", n), r.MeanLagTicks)
		if tel != nil && tel.Metrics != nil {
			run := fmt.Sprintf("fleet-%d", n)
			tel.Metrics.Counter("fleet-events", trace.L("run", run)).Add(r.Events)
			series := tel.Metrics.Series("fleet-flagged", trace.L("run", run))
			for k, f := range r.FlaggedPerSweep {
				series.Add(float64(k+1), float64(f))
			}
			if tel.Tracer != nil {
				// Exact span volume vs what the recorder retained: the gap
				// is the whole point of the flight recorder.
				rec := tel.Tracer.Recorded()
				tel.Metrics.Counter("fleet-trace-recorded", trace.L("run", run)).Add(rec - prevRecorded)
				prevRecorded = rec
				tel.Metrics.Counter("fleet-trace-retained", trace.L("run", run)).Add(uint64(tel.Tracer.Len()))
			}
		}
	}
	t.AddNote("disks are closed-loop stations at heterogeneous base rates; 1-in-512 stutter to 25%% and 1-in-1024 fail-stop mid-run")
	t.AddNote("one PeerSet sweep per virtual second from the conservative barrier: observe all, then classify all — the phase discipline the million-member median cache is built for")
	return t
}

package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden telemetry artifacts under testdata/.
var update = flag.Bool("update", false, "rewrite golden files")

// observed is the quick test config with every telemetry flag on.
var observed = Config{Seed: 42, Quick: true, Trace: true, Audit: true, Metrics: true}

func runObserved(t *testing.T, id string) *Table {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tbl := e.Run(observed)
	if tbl.Telemetry == nil {
		t.Fatalf("experiment %s ran with telemetry flags but Table.Telemetry is nil", id)
	}
	return tbl
}

// artifacts serializes every telemetry artifact of a table into one byte
// stream, for byte-level comparisons.
func artifacts(t *testing.T, tbl *Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	tel := tbl.Telemetry
	if err := tel.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tel.Audit.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tel.Metrics.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tel.Metrics.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTelemetryOffByDefault checks the zero-cost default: without flags no
// Telemetry is attached, and enabling every flag leaves the formatted table
// byte-identical — observability must never perturb results.
func TestTelemetryOffByDefault(t *testing.T) {
	for _, id := range []string{"E01", "E03", "E05", "E22"} {
		plain := runByID(t, id)
		if plain.Telemetry != nil {
			t.Fatalf("%s: telemetry attached with all flags off", id)
		}
		traced := runObserved(t, id)
		if plain.Format() != traced.Format() {
			t.Fatalf("%s: telemetry flags changed the formatted table", id)
		}
	}
}

// TestTelemetryDeterministic runs telemetry-heavy experiments twice at the
// same seed and requires byte-identical artifacts: traces, audit trails,
// and metric dumps are part of the reproducibility contract.
func TestTelemetryDeterministic(t *testing.T) {
	for _, id := range []string{"E03", "E05", "E20", "E22"} {
		a := artifacts(t, runObserved(t, id))
		b := artifacts(t, runObserved(t, id))
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: telemetry artifacts differ between identical runs", id)
		}
	}
}

// TestTelemetryArtifactsPopulated spot-checks that the wiring reaches each
// artifact type: spans from the RAID pipeline, audit records from the
// detection experiments, metrics from the adaptive-striping runs.
func TestTelemetryArtifactsPopulated(t *testing.T) {
	if tel := runObserved(t, "E05").Telemetry; tel.Tracer.Len() == 0 {
		t.Error("E05: no spans recorded")
	}
	if tel := runObserved(t, "E22").Telemetry; tel.Audit.Len() == 0 {
		t.Error("E22: no audit records")
	}
	if tel := runObserved(t, "E01").Telemetry; tel.Metrics.Len() == 0 {
		t.Error("E01: no metrics registered")
	}
}

// TestTelemetryGolden pins the E05 Chrome trace at seed 42 byte-for-byte.
// A change here means the exported timeline moved: verify it in Perfetto,
// then refresh with `go test ./internal/experiments/ -run Golden -update`.
func TestTelemetryGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := runObserved(t, "E05").Telemetry.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "E05.trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("E05 Chrome trace diverged from %s (len %d vs %d); "+
			"inspect in Perfetto and refresh with -update if intended",
			path, buf.Len(), len(want))
	}
}

package experiments

import (
	"fmt"

	"failstutter/internal/faults"
	"failstutter/internal/raid"
	"failstutter/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E30",
		Title: "Design diversity: a belt and suspenders",
		PaperClaim: "by including components of different makes and " +
			"manufacturers, problems that occur when a collection of identical " +
			"components suffer from an identical design flaw are avoided ... " +
			"'a belt and suspenders, not two belts or two suspenders' " +
			"(Section 3.3, reliability)",
		Run: runE30,
	})
	register(Experiment{
		ID:    "A4",
		Title: "Ablation: adaptive pull depth",
		PaperClaim: "deeper outstanding-block windows amortize issue latency " +
			"but strand more work on a stalled pair (design note on scenario 3)",
		Run: runA4,
	})
}

// runE30 builds two four-pair arrays from two disk "vendors" and fires a
// correlated vendor-A firmware fault. In the homogeneous array each pair
// is two vendor-A disks (two belts); in the diverse array each pair mixes
// vendors (belt and suspenders).
func runE30(cfg Config) *Table {
	blocks := scale(cfg, 4000, 20000)
	t := NewTable("E30", "Design diversity",
		"a correlated design flaw takes out every identical component at once",
		"pairing", "fault type", "outcome")

	build := func(diverse bool) (*sim.Simulator, *raid.Array, []*faults.Composite) {
		s := sim.New()
		var vendorA []*faults.Composite
		pairs := make([]*raid.MirrorPair, 4)
		for i := range pairs {
			a := flatDisk(s, fmt.Sprintf("e30-p%d-a", i), 1e6)
			b := flatDisk(s, fmt.Sprintf("e30-p%d-b", i), 1e6)
			// Homogeneous: both members are vendor A. Diverse: member A
			// only.
			vendorA = append(vendorA, a.Composite())
			if !diverse {
				vendorA = append(vendorA, b.Composite())
			}
			pairs[i] = raid.NewMirrorPair(s, i, a, b)
		}
		return s, raid.NewArray(s, pairs, blockBytes), vendorA
	}

	// Fault 1: the vendor-A firmware bug is a performance fault — every
	// vendor-A disk stalls for 5 s at t=2 (a pathological internal
	// scrub). Mirrored WRITES must land on both members, so only the read
	// path can exploit diversity: reads ride the healthy vendor.
	for _, diverse := range []bool{false, true} {
		s, a, vendorA := build(diverse)
		// Lay down data first, then measure a 10 s read phase spanning
		// the stall.
		if _, err := raid.WriteAndMeasure(s, a, raid.StaticEqual{}, blocks); err != nil {
			panic(err)
		}
		start := s.Now()
		for _, c := range vendorA {
			faults.Interval{Start: start + 2, End: start + 7, Factor: 0}.Install(s, c)
		}
		// Closed-loop readers, two outstanding reads per pair.
		var done int64
		for _, p := range a.Pairs() {
			p := p
			next := int64(0)
			var issue func()
			issue = func() {
				if s.Now()-start >= 10 {
					return
				}
				blk := next % (blocks / int64(len(a.Pairs())))
				next++
				// Hedge after 50 ms (~12x the nominal read time): the
				// fail-stutter read path. With diverse pairs the hedge
				// lands on the healthy vendor; with homogeneous pairs it
				// lands on an equally stalled twin.
				p.ReadBlock(blk, 0.05, func(float64) {
					done++
					issue()
				}, nil)
			}
			issue()
			issue()
		}
		s.RunUntil(start + 10)
		label := pairingLabel(diverse)
		readBW := float64(done) * blockBytes / 10
		t.AddRow(label, "correlated 5 s stall",
			fmt.Sprintf("read throughput %s over the stall window", mb(readBW)))
		t.SetMetric("stall_throughput_"+pairingSlug(diverse), readBW)
	}

	// Fault 2: the bug is fatal — every vendor-A disk dies at t=2.
	for _, diverse := range []bool{false, true} {
		s, a, vendorA := build(diverse)
		for _, c := range vendorA {
			faults.CrashAt{At: 2}.Install(s, c)
		}
		res, err := raid.WriteAndMeasure(s, a, raid.AdaptivePull{Depth: 2}, blocks)
		label := pairingLabel(diverse)
		lost := uint64(0)
		for _, p := range a.Pairs() {
			lost += p.BlocksLost()
		}
		switch {
		case err != nil:
			t.AddRow(label, "correlated crash", "DATA LOSS: every pair lost both members")
			t.SetMetric("crash_survived_"+pairingSlug(diverse), 0)
		default:
			t.AddRow(label, "correlated crash",
				fmt.Sprintf("survived on the other vendor (%s)", mb(res.Throughput)))
			t.SetMetric("crash_survived_"+pairingSlug(diverse), 1)
			t.SetMetric("crash_throughput_"+pairingSlug(diverse), res.Throughput)
		}
	}
	t.AddNote("identical fault schedule; only the pairing policy differs")
	return t
}

func pairingSlug(diverse bool) string {
	if diverse {
		return "diverse"
	}
	return "homogeneous"
}

func pairingLabel(diverse bool) string {
	if diverse {
		return "diverse (A+B per pair)"
	}
	return "homogeneous (A+A per pair)"
}

func runA4(cfg Config) *Table {
	blocks := scale(cfg, 4000, 20000)
	t := NewTable("A4", "Ablation: adaptive pull depth",
		"depth trades issue overhead against work stranded on a stalled pair",
		"depth", "static slow pair", "pair stalls 2 s periodically")
	oscillate := func(s *sim.Simulator, a *raid.Array) {
		faults.PeriodicStall{Period: 4, Duration: 2, Factor: 0, Until: 1e6}.
			Install(s, a.Pairs()[0].A.Composite())
	}
	for _, depth := range []int{1, 2, 8, 32} {
		static := runStriper(scenarioRates(), blocks, raid.AdaptivePull{Depth: depth}, nil)
		healthy := make([]float64, scenarioPairs)
		for i := range healthy {
			healthy[i] = scenarioB
		}
		stalling := runStriper(healthy, blocks, raid.AdaptivePull{Depth: depth}, oscillate)
		t.AddRow(fmt.Sprintf("%d", depth), mb(static.Throughput), mb(stalling.Throughput))
		t.SetMetric(fmt.Sprintf("static_d%d", depth), static.Throughput)
		t.SetMetric(fmt.Sprintf("stall_d%d", depth), stalling.Throughput)
	}
	t.AddNote("a full stall (factor 0) holds `depth` blocks hostage per episode; under purely static faults depth is nearly free")
	return t
}

package experiments

import (
	"fmt"

	"failstutter/internal/device"
	"failstutter/internal/sim"
	"failstutter/internal/workload"
)

// switchWire is the one-way wire latency of the experiment fabrics, and
// with it the sharded coordinator's lookahead: the minimum cross-port
// delay. At 0.1 ms it is ~1% of the smallest message drain time, so the
// handshake cost stays a rounding term in every measured ratio.
const switchWire = 1e-4

// shardedNet builds the coordinator the switch experiments run on —
// always the sharded kernel, at whatever -shards says (1 included), with
// lookahead derived from the fabric's wire latency. Traced runs install
// per-shard telemetry collectors, merged deterministically at the end of
// each sub-run.
func shardedNet(cfg Config, tel *Telemetry) *sim.ShardedSimulator {
	ss := cfg.newSharded(cfg.ShardCount(), switchWire)
	tel.attachSharded(ss)
	return ss
}

func transposeSwitch(ss *sim.ShardedSimulator, ports int) *device.Switch {
	return device.NewShardedSwitch(ss, device.SwitchParams{
		Ports:       ports,
		LinkRate:    1e6,
		DrainRate:   1e6,
		BufferBytes: 512 * 1024,
		WireLatency: switchWire,
	})
}

func init() {
	register(Experiment{
		ID:    "E10",
		Title: "Slow receivers collapse the all-to-all transpose",
		PaperClaim: "once a receiver falls behind, messages accumulate and " +
			"cause contention, reducing transpose performance by almost a " +
			"factor of three (Brewer & Kuszmaul, Section 2.1.3)",
		Run: runE10,
	})
	register(Experiment{
		ID:    "E11",
		Title: "Switch unfairness under load",
		PaperClaim: "under load, certain routes receive preference; nodes " +
			"behind disfavored links appear slower, causing a 50% slowdown to " +
			"a global transfer (Section 2.1.3)",
		Run: runE11,
	})
	register(Experiment{
		ID:    "E12",
		Title: "Deadlock-recovery freezes",
		PaperClaim: "deadlock-detection hardware triggers and halts all switch " +
			"traffic for two seconds (Section 2.1.3)",
		Run: runE12,
	})
}

func runE10(cfg Config) *Table {
	ports := int(scale(cfg, 8, 16))
	msg := 16 * 1024.0
	t := NewTable("E10", "All-to-all transpose vs slow receivers",
		"one slow receiver cuts aggregate bandwidth ~3x",
		"slow receivers", "receiver speed", "aggregate bandwidth", "slowdown")
	tel := cfg.telemetry()
	t.Telemetry = tel
	base := 0.0
	for _, tc := range []struct {
		slow  int
		speed float64
	}{
		{0, 1}, {1, 0.5}, {1, 0.33}, {1, 0.1}, {2, 0.33}, {4, 0.33},
	} {
		name := fmt.Sprintf("slow%d-%.2f", tc.slow, tc.speed)
		ss := shardedNet(cfg, tel)
		sw := transposeSwitch(ss, ports)
		if tel != nil {
			sw.SetTracer(tel.Tracer)
			tel.attachProfileSharded(ss, tel.nextRun(name))
		}
		for i := 0; i < tc.slow; i++ {
			sw.ReceiverComposite(i).Set("slow", tc.speed)
		}
		bw := workload.TransposeShardedBandwidth(ss, sw, msg)
		tel.endSharded(ss)
		cfg.observeBarrier(fmt.Sprintf("transpose-slow%d-%.2f", tc.slow, tc.speed), ss)
		if tc.slow == 0 {
			base = bw
		}
		slowdown := base / bw
		t.AddRow(fmt.Sprintf("%d", tc.slow), fmt.Sprintf("%.0f%%", tc.speed*100),
			mb(bw), fmt.Sprintf("%.2fx", slowdown))
		t.SetMetric(fmt.Sprintf("slowdown_n%d_s%.2f", tc.slow, tc.speed), slowdown)
	}
	return t
}

func runE11(cfg Config) *Table {
	// The Myrinet observation has two parts. First, under load certain
	// routes receive preference, so "the nodes behind disfavored links
	// appear 'slower' to a sender, even though they are fully capable of
	// receiving data at link rate". Second, that distorted signal cost a
	// *global adaptive data transfer* 50%: the application balanced its
	// data across routes according to the rates it observed under
	// contention, so the favored routes were assigned far more than their
	// true share and became the critical path.
	const ports = 5 // 4 measured routes + 1 hot contention port
	t := NewTable("E11", "Switch unfairness misleads adaptive placement",
		"disfavored links appear slower; the misled global transfer slows ~50%",
		"configuration", "observed route rates", "transfer makespan", "vs balanced")

	tel := cfg.telemetry()
	t.Telemetry = tel

	// Phase 1: measure per-route progress while all routes push through a
	// contended port for a fixed window.
	measure := func(unfair bool) []float64 {
		name := "measure-fair"
		if unfair {
			name = "measure-unfair"
		}
		ss := shardedNet(cfg, tel)
		sw := device.NewShardedSwitch(ss, device.SwitchParams{
			Ports: ports, LinkRate: 1e6, DrainRate: 0.4e6, BufferBytes: 32 * 1024,
			WireLatency: switchWire,
		})
		if tel != nil {
			sw.SetTracer(tel.Tracer)
			tel.attachProfileSharded(ss, tel.nextRun(name))
		}
		if unfair {
			sw.Sender(0).SetWeight(8)
			sw.Sender(1).SetWeight(8)
		}
		for i := 0; i < 4; i++ {
			var batch []device.Message
			for k := 0; k < 400; k++ {
				batch = append(batch, device.Message{Dst: 4, Size: 8 * 1024})
			}
			sw.Sender(i).Enqueue(batch, nil)
		}
		ss.RunUntil(10)
		tel.endSharded(ss)
		cfg.observeBarrier(name, ss)
		rates := make([]float64, 4)
		for i := range rates {
			rates[i] = sw.Sender(i).BytesSent() / 10
		}
		return rates
	}

	// Phase 2: an adaptive global transfer splits its data across the
	// four routes in proportion to the observed rates; each route then
	// delivers its share at the true (equal) link rate. Makespan is the
	// largest share divided by the true rate.
	const totalBytes = 40e6
	const trueRate = 1e6
	makespan := func(rates []float64) float64 {
		sum := 0.0
		for _, r := range rates {
			sum += r
		}
		worst := 0.0
		for _, r := range rates {
			share := totalBytes * r / sum
			if span := share / trueRate; span > worst {
				worst = span
			}
		}
		return worst
	}
	balanced := totalBytes / 4 / trueRate

	for _, unfair := range []bool{false, true} {
		rates := measure(unfair)
		span := makespan(rates)
		label := "fair arbitration"
		if unfair {
			label = "unfair arbitration"
		}
		rstr := ""
		for i, r := range rates {
			if i > 0 {
				rstr += " / "
			}
			rstr += fmt.Sprintf("%.0f KB/s", r/1e3)
		}
		t.AddRow(label, rstr, fmt.Sprintf("%.1f s", span),
			fmt.Sprintf("%.2fx", span/balanced))
		if unfair {
			t.SetMetric("global_slowdown", span/balanced)
			t.SetMetric("rate_ratio", maxOver(rates)/minOver(rates))
		} else {
			t.SetMetric("fair_slowdown", span/balanced)
		}
	}
	t.AddNote("routes are identical; only the arbitration weights differ — the 'slow' nodes were fully capable")
	return t
}

func maxOver(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func minOver(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func runE12(cfg Config) *Table {
	ports := 8
	msg := 128 * 1024.0 // per-port payload ~0.9 s of drain: freezes land mid-flight
	t := NewTable("E12", "Deadlock-recovery freezes",
		"each recovery halts all traffic for two seconds",
		"freezes", "transpose time", "added delay")
	tel := cfg.telemetry()
	t.Telemetry = tel
	base := 0.0
	for _, freezes := range []int{0, 1, 2, 3} {
		ss := shardedNet(cfg, tel)
		sw := transposeSwitch(ss, ports)
		if tel != nil {
			sw.SetTracer(tel.Tracer)
			tel.attachProfileSharded(ss, tel.nextRun(fmt.Sprintf("freeze-%d", freezes)))
		}
		// Space freezes so each lands while the (stretched) transfer is
		// still in flight: completion after k freezes is base + 2k.
		for i := 0; i < freezes; i++ {
			sw.FreezeAt(0.3+2.1*float64(i), 2.0)
		}
		elapsed := workload.TransposeSharded(ss, sw, msg)
		tel.endSharded(ss)
		cfg.observeBarrier(fmt.Sprintf("freeze-%d", freezes), ss)
		if freezes == 0 {
			base = elapsed
		}
		t.AddRow(fmt.Sprintf("%d", freezes), fmt.Sprintf("%.2f s", elapsed),
			fmt.Sprintf("%.2f s", elapsed-base))
		t.SetMetric(fmt.Sprintf("time_%d", freezes), elapsed)
	}
	t.AddNote("added delay tracks 2 s per freeze, as the deadlock-recovery hardware dictates")
	return t
}

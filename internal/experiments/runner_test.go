package experiments

import (
	"testing"
)

// virtualTime returns the experiments whose results are pure functions of
// the seed (everything but the wall-clock goroutine benchmarks, which are
// nondeterministic run to run even serially — see Experiment.WallClock).
func virtualTime() []Experiment {
	var out []Experiment
	for _, e := range All() {
		if !e.WallClock {
			out = append(out, e)
		}
	}
	return out
}

// TestRunAllDeterministic asserts that the parallel runner produces
// byte-identical tables to the serial path for several seeds: same rows,
// same notes, same metrics, same formatting, in the same display order.
func TestRunAllDeterministic(t *testing.T) {
	list := virtualTime()
	if len(list) < 25 {
		t.Fatalf("only %d virtual-time experiments registered", len(list))
	}
	for _, seed := range []uint64{1, 42, 1337} {
		cfg := Config{Seed: seed, Quick: true}
		serial := runExperiments(list, cfg, 1)
		par := runExperiments(list, cfg, 8)
		for i, e := range list {
			if serial[i] == nil || par[i] == nil {
				t.Fatalf("seed %d: experiment %s returned a nil table", seed, e.ID)
			}
			if serial[i].ID != e.ID || par[i].ID != e.ID {
				t.Fatalf("seed %d: table order broken at %d: serial %s, parallel %s, want %s",
					seed, i, serial[i].ID, par[i].ID, e.ID)
			}
			if got, want := par[i].Format(), serial[i].Format(); got != want {
				t.Errorf("seed %d: experiment %s text output differs between parallel and serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					seed, e.ID, want, got)
			}
			if got, want := par[i].CSV(), serial[i].CSV(); got != want {
				t.Errorf("seed %d: experiment %s CSV output differs between parallel and serial", seed, e.ID)
			}
		}
		if t.Failed() {
			break // one seed's divergence is enough diagnostics
		}
	}
}

// TestRunAllIncludesWallClock asserts RunAll covers the full registry in
// display order, wall-clock experiments included.
func TestRunAllIncludesWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiments take seconds; skipped in -short")
	}
	tables := RunAll(Config{Seed: 42, Quick: true}, 4)
	all := All()
	if len(tables) != len(all) {
		t.Fatalf("RunAll returned %d tables, want %d", len(tables), len(all))
	}
	for i, e := range all {
		if tables[i] == nil {
			t.Fatalf("experiment %s returned a nil table", e.ID)
		}
		if tables[i].ID != e.ID {
			t.Fatalf("table %d is %s, want %s (display order must be preserved)", i, tables[i].ID, e.ID)
		}
	}
}

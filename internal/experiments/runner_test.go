package experiments

import (
	"testing"
)

// TestRunAllDeterministic asserts that the parallel runner produces
// byte-identical tables to the serial path for several seeds: same rows,
// same notes, same metrics, same formatting, in the same display order.
// Since the cluster plane moved onto the virtual-time kernel this covers
// the entire registry — no experiment is exempt.
func TestRunAllDeterministic(t *testing.T) {
	list := All()
	if len(list) < 30 {
		t.Fatalf("only %d experiments registered", len(list))
	}
	for _, seed := range []uint64{1, 42, 1337} {
		cfg := Config{Seed: seed, Quick: true}
		serial := runExperiments(list, cfg, 1)
		par := runExperiments(list, cfg, 8)
		for i, e := range list {
			if serial[i] == nil || par[i] == nil {
				t.Fatalf("seed %d: experiment %s returned a nil table", seed, e.ID)
			}
			if serial[i].ID != e.ID || par[i].ID != e.ID {
				t.Fatalf("seed %d: table order broken at %d: serial %s, parallel %s, want %s",
					seed, i, serial[i].ID, par[i].ID, e.ID)
			}
			if got, want := par[i].Format(), serial[i].Format(); got != want {
				t.Errorf("seed %d: experiment %s text output differs between parallel and serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					seed, e.ID, want, got)
			}
			if got, want := par[i].CSV(), serial[i].CSV(); got != want {
				t.Errorf("seed %d: experiment %s CSV output differs between parallel and serial", seed, e.ID)
			}
		}
		if t.Failed() {
			break // one seed's divergence is enough diagnostics
		}
	}
}

// TestRunAllRepeatable asserts the cluster-backed experiments — the ones
// that used to be wall-clock and vary run to run — now produce
// byte-identical tables across repeated runs at several seeds.
func TestRunAllRepeatable(t *testing.T) {
	var clusterExps []Experiment
	for _, id := range []string{"E14", "E15", "E23", "E24", "E29"} {
		e, err := Get(id)
		if err != nil {
			t.Fatalf("missing cluster experiment %s: %v", id, err)
		}
		clusterExps = append(clusterExps, e)
	}
	for _, seed := range []uint64{1, 42, 1337} {
		cfg := Config{Seed: seed, Quick: true}
		first := runExperiments(clusterExps, cfg, 4)
		second := runExperiments(clusterExps, cfg, 4)
		for i, e := range clusterExps {
			if got, want := second[i].Format(), first[i].Format(); got != want {
				t.Errorf("seed %d: experiment %s differs between repeated runs:\n--- first ---\n%s\n--- second ---\n%s",
					seed, e.ID, want, got)
			}
		}
	}
}

// TestRunAllCoversRegistry asserts RunAll covers the full registry in
// display order.
func TestRunAllCoversRegistry(t *testing.T) {
	tables := RunAll(Config{Seed: 42, Quick: true}, 4)
	all := All()
	if len(tables) != len(all) {
		t.Fatalf("RunAll returned %d tables, want %d", len(tables), len(all))
	}
	for i, e := range all {
		if tables[i] == nil {
			t.Fatalf("experiment %s returned a nil table", e.ID)
		}
		if tables[i].ID != e.ID {
			t.Fatalf("table %d is %s, want %s (display order must be preserved)", i, tables[i].ID, e.ID)
		}
	}
}

package experiments

import (
	"fmt"

	"failstutter/internal/cluster"
	"failstutter/internal/sim"
	"failstutter/internal/workload"
)

// clusterQuantum is the virtual time one work unit (or one DHT operation)
// costs at node speed 1: 50 microseconds of virtual time.
const clusterQuantum = sim.Duration(50e-6)

// clusterLookahead is the sharded coordinator's window for the cluster
// plane, derived from the worker quantum — the minimum interval at which a
// worker's state can matter to anyone else. Cross-worker coordination
// happens at barriers (not via lookahead-bounded sends), so the value only
// sets the dispatch granularity: each completion's follow-up dispatch lands
// at most one quantum later than it would serially.
const clusterLookahead = clusterQuantum

// shardedCluster builds the coordinator the cluster experiments run on,
// always at the configured shard count: traced runs install per-shard
// telemetry collectors whose deterministic merge keeps every artifact
// byte-identical at any count, so tracing no longer forces one shard.
func shardedCluster(cfg Config, tel *Telemetry) *sim.ShardedSimulator {
	ss := cfg.newSharded(cfg.ShardCount(), clusterLookahead)
	tel.attachSharded(ss)
	return ss
}

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "DHT: garbage collection makes one node the bottleneck",
		PaperClaim: "untimely garbage collection causes one node to fall " +
			"behind its mirror in a replicated update; one machine " +
			"over-saturates and thus is the bottleneck (Gribble et al., " +
			"Section 2.2.1)",
		Run: runE14,
	})
	register(Experiment{
		ID:    "E15",
		Title: "Distributed sort: one loaded node halves throughput",
		PaperClaim: "a node with excess CPU load reduces global sorting " +
			"performance by a factor of two (NOW-Sort, Section 2.2.2)",
		Run: runE15,
	})
	register(Experiment{
		ID:    "E23",
		Title: "Slow-down failures: reissue and reconcile",
		PaperClaim: "run transactions correctly in the presence of slow-down " +
			"failures by issuing new processes to do the work elsewhere, " +
			"reconciling so as to avoid work replication (Shasha & Turek, " +
			"Section 4)",
		Run: runE23,
	})
	register(Experiment{
		ID:    "E29",
		Title: "Bulk-synchronous parallelism: every barrier pays the straggler",
		PaperClaim: "particularly vulnerable are systems that make static uses " +
			"of parallelism, usually assuming that all components perform " +
			"identically (Section 1; CM-5 parallel applications, Section 2.1.3)",
		Run: runE29,
	})
	register(Experiment{
		ID:    "E24",
		Title: "Scheduler comparison across fault scenarios",
		PaperClaim: "new adaptive algorithms, which can cope with this more " +
			"difficult class of failures, must be designed ... and different " +
			"approaches need to be evaluated (Section 5)",
		Run: runE24,
	})
}

// fmtVirt formats a virtual duration for table display.
func fmtVirt(d sim.Duration) string { return fmt.Sprintf("%.3fs", d) }

// clusterRunT runs one scheduler over one task set as a labeled,
// telemetry-attached sub-run: worker stations trace to tel.Tracer, the
// profiling sampler records occupancy, and a DetectAvoid scheduler logs
// its flag decisions to the audit trail. setup (may be nil) configures
// the pool — fault injection — before the job starts. With tel == nil
// this is exactly a bare scheduler run.
func clusterRunT(cfg Config, tel *Telemetry, name string, sched cluster.Scheduler, tasks []cluster.Task, setup func(*cluster.Pool)) cluster.Report {
	ss := shardedCluster(cfg, tel)
	p := cluster.NewShardedPool(ss, 4, clusterQuantum)
	if tel != nil {
		run := tel.nextRun(name)
		p.SetTracer(tel.Tracer)
		tel.attachProfileSharded(ss, run)
		if da, ok := sched.(cluster.DetectAvoid); ok && tel.Audit != nil {
			da.Audit = tel.Audit
			sched = da
		}
	}
	if setup != nil {
		setup(p)
	}
	r := sched.Run(p, tasks)
	tel.endSharded(ss)
	cfg.observeBarrier(name, ss)
	return r
}

func runE14(cfg Config) *Table {
	dur := sim.Duration(scale(cfg, 300, 1500)) * 1e-3
	t := NewTable("E14", "DHT under garbage collection",
		"one GC-ing node bottlenecks synchronous replication; adaptive acks ride it out",
		"configuration", "puts", "relative", "hinted handoffs")
	tel := cfg.telemetry()
	t.Telemetry = tel
	run := func(name string, gc, adaptive bool) (int64, int64) {
		ss := shardedCluster(cfg, tel)
		d := cluster.NewShardedDHT(ss, cluster.DHTParams{
			Nodes: 4, Replication: 2, OpQuantum: clusterQuantum,
			Adaptive: adaptive, SampleEvery: 1e-3,
		})
		if tel != nil {
			d.SetTracer(tel.Tracer)
			tel.attachProfileSharded(ss, tel.nextRun(name))
			if tel.Audit != nil && adaptive {
				d.EnableAudit(tel.Audit)
			}
		}
		if gc {
			cancel := d.StartGC(0, 40e-3, 35e-3)
			defer cancel()
		}
		puts := d.RunLoad(8, dur)
		tel.endSharded(ss)
		cfg.observeBarrier(name, ss)
		return puts, d.Hints()
	}
	healthy, _ := run("healthy-sync", false, false)
	gcSync, _ := run("gc-sync", true, false)
	gcAdaptive, hints := run("gc-adaptive", true, true)
	t.AddRow("no GC, synchronous", fmt.Sprintf("%d", healthy), "1.00x", "0")
	t.AddRow("GC on node 0, synchronous", fmt.Sprintf("%d", gcSync),
		fmt.Sprintf("%.2fx", float64(gcSync)/float64(healthy)), "0")
	t.AddRow("GC on node 0, adaptive", fmt.Sprintf("%d", gcAdaptive),
		fmt.Sprintf("%.2fx", float64(gcAdaptive)/float64(healthy)), fmt.Sprintf("%d", hints))
	t.SetMetric("puts_healthy", float64(healthy))
	t.SetMetric("puts_gc_sync", float64(gcSync))
	t.SetMetric("puts_gc_adaptive", float64(gcAdaptive))
	t.SetMetric("hints", float64(hints))
	t.AddNote("adaptive mode detects the stutterer peer-relatively and defers its ack (hinted handoff), trading redundancy debt for availability")
	return t
}

// sortTasks builds the distributed-sort task set: partitions of a record
// space with n log n cost scaling. One unit is one record's share of the
// sort; virtual time has no timer floor, so records map to units 1:1.
func sortTasks(partitions, recordsPerPartition int) []cluster.Task {
	tasks := make([]cluster.Task, partitions)
	for i := range tasks {
		tasks[i] = cluster.Task{
			ID:    i,
			Units: workload.SortUnits(recordsPerPartition, recordsPerPartition),
		}
	}
	return tasks
}

func runE15(cfg Config) *Table {
	// Paper-scale record counts: NOW-Sort partitions a keyspace across
	// nodes; we sort 2^18 (quick) / 2^20 (full) records in 64 partitions.
	records := int(scale(cfg, 1<<18, 1<<20))
	const partitions = 64
	tasks := func() []cluster.Task { return sortTasks(partitions, records/partitions) }
	t := NewTable("E15", "Distributed sort with a CPU hog",
		"static design: 2x slowdown from one loaded node; pull-based sheds it",
		"scheduler", "no hog", "hog on node 0", "hog slowdown")
	tel := cfg.telemetry()
	t.Telemetry = tel
	schedulers := []cluster.Scheduler{
		cluster.StaticPartition{},
		cluster.GaugedPartition{},
		cluster.WorkQueue{},
		cluster.DetectAvoid{},
	}
	for _, sched := range schedulers {
		base := clusterRunT(cfg, tel, sched.Name()+"-healthy", sched, tasks(), nil).Makespan
		// The hog halves node 0's effective CPU for the whole job.
		hogged := clusterRunT(cfg, tel, sched.Name()+"-hog", sched, tasks(), func(p *cluster.Pool) {
			p.Workers()[0].SetSpeed(0.5)
		}).Makespan
		ratio := hogged / base
		t.AddRow(sched.Name(), fmtVirt(base), fmtVirt(hogged), fmt.Sprintf("%.2fx", ratio))
		t.SetMetric("healthy_ms_"+sched.Name(), base*1e3)
		t.SetMetric("hog_ms_"+sched.Name(), hogged*1e3)
		t.SetMetric("slowdown_"+sched.Name(), ratio)
	}
	t.AddNote("%d records in %d partitions, sized via the n log n sort cost model; hog implemented as a 50%% CPU share", records, partitions)
	return t
}

func runE23(cfg Config) *Table {
	nTasks := 48
	units := int(scale(cfg, 2048, 8192))
	// The slow-down failure strikes a quarter of the way into the
	// healthy-case job.
	degradeAt := sim.Duration(nTasks*units) * clusterQuantum / 4 / 4
	t := NewTable("E23", "Slow-down failures: reissue and reconcile",
		"reissue bounds the tail; reconciliation bounds wasted work",
		"scheduler", "makespan", "wasted units", "duplicate launches")
	tel := cfg.telemetry()
	t.Telemetry = tel
	for _, sched := range []cluster.Scheduler{
		cluster.WorkQueue{},
		cluster.Hedged{MaxClones: 1},
		cluster.Reissue{TimeoutFactor: 3, MaxClones: 1},
	} {
		// Worker 0 suffers a severe slow-down failure partway into the job.
		r := clusterRunT(cfg, tel, sched.Name(), sched, cluster.UniformTasks(nTasks, units),
			func(p *cluster.Pool) {
				p.SetSpeedAt(0, degradeAt, 0.02)
			})
		t.AddRow(r.Scheduler, fmtVirt(r.Makespan),
			fmt.Sprintf("%.0f", r.WastedUnits), fmt.Sprintf("%d", r.Duplicates))
		t.SetMetric("makespan_ms_"+r.Scheduler, r.Makespan*1e3)
		t.SetMetric("wasted_"+r.Scheduler, r.WastedUnits)
		t.SetMetric("dups_"+r.Scheduler, float64(r.Duplicates))
	}
	totalUnits := nTasks * units
	t.AddNote("total required work %d units; wasted work stays a small fraction thanks to the completion claim", totalUnits)
	t.SetMetric("total_units", float64(totalUnits))
	return t
}

func runE29(cfg Config) *Table {
	rounds := int(scale(cfg, 4, 8))
	units := int(scale(cfg, 4096, 16384))
	grain := units / 16
	t := NewTable("E29", "Bulk-synchronous parallelism under a slow node",
		"a static BSP machine pays the straggler at every barrier; elastic rounds contain it",
		"design", "healthy", "one node at 25%", "slowdown")
	tel := cfg.telemetry()
	t.Telemetry = tel
	runBSP := func(name string, params cluster.BSPParams, slowSpeed float64) sim.Duration {
		ss := shardedCluster(cfg, tel)
		p := cluster.NewShardedPool(ss, 4, clusterQuantum)
		if tel != nil {
			p.SetTracer(tel.Tracer)
			tel.attachProfileSharded(ss, tel.nextRun(name))
		}
		if slowSpeed > 0 {
			p.Workers()[0].SetSpeed(slowSpeed)
		}
		r := cluster.RunBSP(p, params)
		tel.endSharded(ss)
		cfg.observeBarrier(name, ss)
		return r.Makespan
	}
	for _, elastic := range []bool{false, true} {
		name := "static rounds"
		if elastic {
			name = "elastic rounds"
		}
		key0 := "static"
		if elastic {
			key0 = "elastic"
		}
		params := cluster.BSPParams{Rounds: rounds, UnitsPerWorkerRound: units, Elastic: elastic, Grain: grain}
		healthy := runBSP(key0+"-healthy", params, 0)
		slow := runBSP(key0+"-slow", params, 0.25)
		ratio := slow / healthy
		t.AddRow(name, fmtVirt(healthy), fmtVirt(slow), fmt.Sprintf("%.2fx", ratio))
		key := "static"
		if elastic {
			key = "elastic"
		}
		t.SetMetric("healthy_ms_"+key, healthy*1e3)
		t.SetMetric("slow_ms_"+key, slow*1e3)
		t.SetMetric("slowdown_"+key, ratio)
	}
	t.AddNote("the barrier is inherent to the algorithm; the design choice is whether work within a round is fixed or pulled")
	return t
}

func runE24(cfg Config) *Table {
	nTasks := 48
	units := int(scale(cfg, 2048, 8192))
	degradeAt := sim.Duration(nTasks*units) * clusterQuantum / 4 / 4
	t := NewTable("E24", "Scheduler comparison",
		"increasing fail-stutter awareness narrows the gap to fault-free performance",
		"scheduler", "healthy", "static slow node", "mid-job degradation")
	tel := cfg.telemetry()
	t.Telemetry = tel
	for _, sched := range cluster.Schedulers() {
		healthy := clusterRunT(cfg, tel, sched.Name()+"-healthy", sched,
			cluster.UniformTasks(nTasks, units), nil).Makespan

		static := clusterRunT(cfg, tel, sched.Name()+"-static", sched,
			cluster.UniformTasks(nTasks, units), func(p *cluster.Pool) {
				p.Workers()[0].SetSpeed(0.25)
			}).Makespan

		mid := clusterRunT(cfg, tel, sched.Name()+"-mid", sched,
			cluster.UniformTasks(nTasks, units), func(p *cluster.Pool) {
				p.SetSpeedAt(0, degradeAt, 0.1)
			}).Makespan

		t.AddRow(sched.Name(), fmtVirt(healthy), fmtVirt(static), fmtVirt(mid))
		t.SetMetric("healthy_ms_"+sched.Name(), healthy*1e3)
		t.SetMetric("static_ms_"+sched.Name(), static*1e3)
		t.SetMetric("mid_ms_"+sched.Name(), mid*1e3)
	}
	return t
}

package experiments

import (
	"fmt"
	"testing"
)

// TestFleetSweepWorkerInvariant is the tentpole's determinism matrix:
// E32's table and telemetry artifacts must be byte-identical across
// sweep worker counts 1, 2, and 8 at every shard count and seed in the
// spread. The worker count may only trade wall-clock for cores — any
// divergence means the parallel sweep's reductions leaked goroutine
// order into the results.
func TestFleetSweepWorkerInvariant(t *testing.T) {
	e, err := Get("E32")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 42, 1337} {
		for _, shards := range []int{1, 2, 8} {
			run := func(workers int) (string, string, string) {
				cfg := Config{
					Seed: seed, Quick: true, Trace: true, Audit: true, Metrics: true,
					Shards: shards, SweepWorkers: workers,
				}
				tbl := e.Run(cfg)
				art := telemetryArtifacts(t, tbl)
				if art == "" {
					t.Fatalf("seed %d shards %d workers %d: E32 produced no telemetry artifacts",
						seed, shards, workers)
				}
				return tbl.Format(), tbl.CSV(), art
			}
			refFmt, refCSV, refArt := run(1)
			for _, workers := range []int{2, 8} {
				gotFmt, gotCSV, gotArt := run(workers)
				if gotFmt != refFmt {
					t.Errorf("seed %d shards %d: E32 table differs between -sweep-workers=1 and =%d:\n--- w=1 ---\n%s\n--- w=%d ---\n%s",
						seed, shards, workers, refFmt, workers, gotFmt)
				}
				if gotCSV != refCSV {
					t.Errorf("seed %d shards %d: E32 CSV differs between -sweep-workers=1 and =%d",
						seed, shards, workers)
				}
				if gotArt != refArt {
					t.Errorf("seed %d shards %d: E32 telemetry artifacts differ between -sweep-workers=1 and =%d (%d vs %d bytes)",
						seed, shards, workers, len(refArt), len(gotArt))
				}
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestFleetScenarioSweepWorkerInvariant checks RunFleetScenario's result
// struct directly across the workers x shards grid, including worker and
// shard counts that do not divide the fleet evenly.
func TestFleetScenarioSweepWorkerInvariant(t *testing.T) {
	for _, seed := range []uint64{1, 42, 1337} {
		ref := RunFleetScenario(FleetParams{Disks: 2048, Shards: 1, Seed: seed, SweepWorkers: 1})
		if ref.InjectedStutter+ref.InjectedFail == 0 {
			t.Fatalf("seed %d: no faults injected — fleet too small to exercise detection", seed)
		}
		for _, shards := range []int{1, 3, 8} {
			for _, workers := range []int{2, 3, 8} {
				got := RunFleetScenario(FleetParams{
					Disks: 2048, Shards: shards, Seed: seed, SweepWorkers: workers,
				})
				if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", ref) {
					t.Errorf("seed %d: fleet result differs at shards=%d workers=%d:\n ref: %+v\n got: %+v",
						seed, shards, workers, ref, got)
				}
			}
		}
	}
}

// TestFleetRebalanceInvariant checks that load-balanced placement is
// observationally invisible: the rebalanced run must produce the exact
// result of the hashed-placement run — placement is just another
// partition under the kernel's determinism protocol.
func TestFleetRebalanceInvariant(t *testing.T) {
	for _, seed := range []uint64{42, 1337} {
		ref := RunFleetScenario(FleetParams{Disks: 2048, Shards: 4, Seed: seed})
		got := RunFleetScenario(FleetParams{Disks: 2048, Shards: 4, Seed: seed, Rebalance: true})
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", ref) {
			t.Errorf("seed %d: rebalanced fleet result differs:\n hashed:     %+v\n rebalanced: %+v",
				seed, ref, got)
		}
	}
}

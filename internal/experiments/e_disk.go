package experiments

import (
	"fmt"

	"failstutter/internal/device"
	"failstutter/internal/faults"
	"failstutter/internal/sim"
	"failstutter/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "E05",
		Title: "Bad-block remapping degrades 'identical' disks",
		PaperClaim: "most disks deliver 5.5 MB/s on sequential reads, but one " +
			"with 3x the block faults delivered only 5.0 MB/s — remappings " +
			"transparent to users and file systems (Section 2.1.2)",
		Run: runE05,
	})
	register(Experiment{
		ID:    "E06",
		Title: "SCSI timeouts and correlated bus resets",
		PaperClaim: "timeouts and parity errors are 49% of all errors (87% " +
			"excluding network), roughly two per day, and resets affect every " +
			"disk on the degraded chain (Section 2.1.2)",
		Run: runE06,
	})
	register(Experiment{
		ID:    "E07",
		Title: "Thermal recalibrations vs streaming deadlines",
		PaperClaim: "disks in the Tiger video server went off-line at random " +
			"intervals for short periods, apparently due to thermal " +
			"recalibrations (Section 2.1.2)",
		Run: runE07,
	})
	register(Experiment{
		ID:    "E08",
		Title: "Multi-zone geometry: 2x bandwidth across one disk",
		PaperClaim: "disks have multiple zones, with performance across zones " +
			"differing by up to a factor of two (Section 2.1.2)",
		Run: runE08,
	})
	register(Experiment{
		ID:    "E13",
		Title: "Aged file-system layout halves sequential reads",
		PaperClaim: "sequential file read performance across aged file systems " +
			"varies by up to a factor of two; recreated afresh, performance is " +
			"identical across all drives (Section 2.2.1)",
		Run: runE13,
	})
}

func runE05(cfg Config) *Table {
	blocks := scale(cfg, 20000, 200000)
	t := NewTable("E05", "Bad-block remapping",
		"5.5 MB/s healthy vs 5.0 MB/s with 3x block faults",
		"remapped blocks", "sequential read", "deficit")
	tel := cfg.telemetry()
	t.Telemetry = tel
	var healthyBW float64
	for i, remapFrac := range []float64{0, 0.004, 0.012, 0.04} {
		p := device.HawkParams(fmt.Sprintf("hawk-%d", i))
		p.RemappedBlocks = int64(remapFrac * float64(p.CapacityBlocks))
		p.RemapSeed = cfg.Seed + uint64(i)
		s := sim.New()
		d := device.MustDisk(s, p)
		if tel != nil {
			d.SetTracer(tel.Tracer)
			tel.attachProfile(s, tel.nextRun(p.Name))
		}
		bw := d.SequentialReadBandwidth(0, blocks)
		if tel != nil {
			tel.Metrics.Series("seq-read-bw", trace.L("disk", p.Name)).Add(0, bw)
			tel.endRun(s)
		}
		if i == 0 {
			healthyBW = bw
		}
		deficit := 1 - bw/healthyBW
		t.AddRow(fmt.Sprintf("%.1f%% of disk", remapFrac*100), mb(bw),
			fmt.Sprintf("%.1f%%", deficit*100))
		t.SetMetric(fmt.Sprintf("bw_%d", i), bw)
	}
	t.SetMetric("healthy_bw", healthyBW)
	t.AddNote("the paper's faulty drive: 3x baseline faults -> 9%% deficit (5.5 -> 5.0 MB/s)")
	return t
}

func runE06(cfg Config) *Table {
	// Part 1: error census over the study horizon. The farm study's error
	// mix: SCSI timeouts+parity 49% of all errors, network 44%, other 7%.
	days := scale(cfg, 14, 180)
	t := NewTable("E06", "SCSI timeouts and bus resets",
		"~2 timeout/parity errors per day; resets stall the whole chain",
		"quantity", "value")
	rng := sim.NewRNG(cfg.Seed).Fork("e06")
	horizon := float64(days) * 86400
	// Farm-wide timeout/parity arrivals at 2/day (the measured average).
	s := sim.New()
	scsiErrors := 0
	dummy := faults.NewComposite(noopTarget{})
	faults.PoissonStalls{
		MeanInterval: 43200, Duration: 2, RNG: rng.Fork("scsi"),
		Until:   horizon,
		OnStall: func(sim.Time) { scsiErrors++ },
	}.Install(s, dummy)
	s.RunUntil(horizon)
	// Synthesize the remaining error categories at the study's ratios:
	// for every 49 timeout/parity errors the farm logged ~44 network and
	// ~7 other errors.
	networkErrors := int(float64(scsiErrors)*44/49 + 0.5)
	otherErrors := int(float64(scsiErrors)*7/49 + 0.5)
	total := scsiErrors + networkErrors + otherErrors
	t.AddRow("study horizon", fmt.Sprintf("%d days", days))
	t.AddRow("SCSI timeout/parity errors", fmt.Sprintf("%d (%.1f/day)", scsiErrors, float64(scsiErrors)/float64(days)))
	t.AddRow("share of all errors", fmt.Sprintf("%.0f%%", 100*float64(scsiErrors)/float64(total)))
	t.AddRow("share excluding network", fmt.Sprintf("%.0f%%", 100*float64(scsiErrors)/float64(scsiErrors+otherErrors)))
	t.SetMetric("errors_per_day", float64(scsiErrors)/float64(days))
	t.SetMetric("share_all", float64(scsiErrors)/float64(total))
	t.SetMetric("share_no_network", float64(scsiErrors)/float64(scsiErrors+otherErrors))

	// Part 2: impact of correlated resets on one 8-disk chain streaming
	// for a day: every member stalls for each reset.
	s2 := sim.New()
	chainDisks := make([]*device.Disk, 8)
	comps := make([]*faults.Composite, 8)
	for i := range chainDisks {
		chainDisks[i] = flatDisk(s2, fmt.Sprintf("chain-%d", i), 5.5e6)
		comps[i] = chainDisks[i].Composite()
	}
	resets := 0
	faults.ChainResets{
		MeanInterval: 43200, Duration: 2, RNG: rng.Fork("chain"),
		Until:   86400,
		OnReset: func(sim.Time) { resets++ },
	}.InstallGroup(s2, comps)
	// Saturate each disk with large sequential reads.
	const chunk = 16384 // blocks per request (~64 MB)
	for _, d := range chainDisks {
		d := d
		var refill func(block int64)
		refill = func(block int64) {
			if block+chunk > d.Params().CapacityBlocks {
				block = 0
			}
			d.Read(block, chunk, func(float64) { refill(block + chunk) })
		}
		refill(0)
	}
	s2.RunUntil(86400)
	var delivered float64
	for _, d := range chainDisks {
		delivered += d.BytesCompleted()
	}
	idealBytes := 8 * 5.5e6 * 86400.0
	t.AddRow("chain resets in 1 day", fmt.Sprintf("%d", resets))
	t.AddRow("chain throughput vs ideal", fmt.Sprintf("%.3f%% lost", 100*(1-delivered/idealBytes)))
	t.SetMetric("resets_day", float64(resets))
	t.SetMetric("chain_loss_frac", 1-delivered/idealBytes)
	t.AddNote("each reset stalls all 8 disks for 2 s: correlated, chain-wide performance fault")
	return t
}

// noopTarget lets injectors run for pure event counting.
type noopTarget struct{}

func (noopTarget) SetMultiplier(float64) {}
func (noopTarget) Fail()                 {}

func runE07(cfg Config) *Table {
	t := NewTable("E07", "Thermal recalibration vs streaming deadlines",
		"random short off-line periods break unbuffered streams; buffering rides them out",
		"client buffer", "recal 0.5 s", "recal 1.5 s", "recal 3.0 s")
	tel := cfg.telemetry()
	t.Telemetry = tel
	seconds := scale(cfg, 300, 3600)
	for _, buffer := range []float64{0.5, 1, 2, 4} {
		row := []string{fmt.Sprintf("%.1f s", buffer)}
		for _, recal := range []float64{0.5, 1.5, 3.0} {
			s := sim.New()
			d := flatDisk(s, "video", 5.5e6)
			if tel != nil {
				d.SetTracer(tel.Tracer)
				tel.attachProfile(s, tel.nextRun(fmt.Sprintf("b%v-r%v", buffer, recal)))
			}
			faults.PeriodicStall{
				Period: 30, Duration: recal, Jitter: 5,
				RNG:   sim.NewRNG(cfg.Seed).Fork(fmt.Sprintf("recal-%v-%v", buffer, recal)),
				Until: float64(seconds) + 10,
			}.Install(s, d.Composite())
			meter := tel.meter("stream-deadline", buffer,
				trace.L("buffer", fmt.Sprintf("%.1fs", buffer)),
				trace.L("recal", fmt.Sprintf("%.1fs", recal)))
			// A 2 MB/s stream in 0.5 MB requests every 0.25 s.
			n := int(float64(seconds) / 0.25)
			for i := 0; i < n; i++ {
				at := float64(i) * 0.25
				s.At(at, func() {
					meter.Offered()
					blk := int64(i%1000) * 128
					d.Read(blk, 128, func(lat float64) { meter.Completed(lat) })
				})
			}
			s.Run()
			tel.endRun(s)
			miss := 1 - meter.Availability()
			row = append(row, fmt.Sprintf("%.2f%% missed", miss*100))
			t.SetMetric(fmt.Sprintf("miss_b%v_r%v", buffer, recal), miss)
		}
		t.AddRow(row...)
	}
	t.AddNote("deadline = client buffer depth; a recalibration longer than the buffer drops frames")
	return t
}

func runE08(cfg Config) *Table {
	blocks := scale(cfg, 20000, 100000)
	t := NewTable("E08", "Multi-zone geometry",
		"bandwidth differs up to 2x across zones of one disk",
		"zone", "position", "sequential read")
	p := device.DiskParams{
		Name:           "zoned",
		CapacityBlocks: 1 << 22,
		BlockBytes:     blockBytes,
		Zones: []device.Zone{
			{CapacityFrac: 0.3, Bandwidth: 10e6},
			{CapacityFrac: 0.4, Bandwidth: 7.5e6},
			{CapacityFrac: 0.3, Bandwidth: 5e6},
		},
		SeekTime:    0.002,
		AgingFactor: 1,
	}
	positions := []struct {
		name string
		frac float64
	}{
		{"outer", 0.0}, {"middle", 0.45}, {"inner", 0.75},
	}
	tel := cfg.telemetry()
	t.Telemetry = tel
	var outer, inner float64
	for _, pos := range positions {
		s := sim.New()
		d := device.MustDisk(s, p)
		if tel != nil {
			d.SetTracer(tel.Tracer)
			tel.attachProfile(s, tel.nextRun(pos.name))
		}
		start := int64(pos.frac * float64(p.CapacityBlocks))
		bw := d.SequentialReadBandwidth(start, int64(blocks))
		if tel != nil {
			tel.Metrics.Series("seq-read-bw", trace.L("zone", pos.name)).Add(0, bw)
			tel.endRun(s)
		}
		t.AddRow(pos.name, fmt.Sprintf("%.0f%% of capacity", pos.frac*100), mb(bw))
		t.SetMetric("bw_"+pos.name, bw)
		if pos.name == "outer" {
			outer = bw
		}
		if pos.name == "inner" {
			inner = bw
		}
	}
	t.SetMetric("zone_ratio", outer/inner)
	t.AddNote("outer/inner ratio = %.2f (paper: up to 2x)", outer/inner)
	return t
}

func runE13(cfg Config) *Table {
	blocks := scale(cfg, 20000, 100000)
	t := NewTable("E13", "Aged file-system layout",
		"aged layouts vary up to 2x; fresh layouts are identical",
		"drive", "layout", "sequential read")
	tel := cfg.telemetry()
	t.Telemetry = tel
	agings := []float64{1.0, 0.85, 0.65, 0.5}
	var fresh, worst float64
	for i, ag := range agings {
		p := device.HawkParams(fmt.Sprintf("aged-%d", i))
		p.AgingFactor = ag
		s := sim.New()
		d := device.MustDisk(s, p)
		if tel != nil {
			d.SetTracer(tel.Tracer)
			tel.attachProfile(s, tel.nextRun(p.Name))
		}
		bw := d.SequentialReadBandwidth(0, blocks)
		if tel != nil {
			tel.Metrics.Series("seq-read-bw", trace.L("disk", p.Name)).Add(0, bw)
			tel.endRun(s)
		}
		label := "aged"
		if ag == 1 {
			label = "fresh"
			fresh = bw
		}
		worst = bw
		t.AddRow(fmt.Sprintf("disk %d", i), label, mb(bw))
		t.SetMetric(fmt.Sprintf("bw_%d", i), bw)
	}
	t.SetMetric("age_ratio", fresh/worst)
	// Recreate afresh: all drives back to aging 1.0.
	var bws []float64
	for i := 0; i < len(agings); i++ {
		p := device.HawkParams(fmt.Sprintf("fresh-%d", i))
		d := device.MustDisk(sim.New(), p)
		bws = append(bws, d.SequentialReadBandwidth(0, blocks))
	}
	identical := true
	for _, bw := range bws[1:] {
		if relErr(bw, bws[0]) > 1e-9 {
			identical = false
		}
	}
	t.AddRow("all drives", "recreated afresh", mb(bws[0]))
	if identical {
		t.AddNote("after recreating file systems afresh, all drives measure identically")
		t.SetMetric("fresh_identical", 1)
	} else {
		t.SetMetric("fresh_identical", 0)
	}
	return t
}

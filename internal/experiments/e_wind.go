package experiments

import (
	"fmt"

	"failstutter/internal/device"
	"failstutter/internal/faults"
	"failstutter/internal/sim"
	"failstutter/internal/spec"
	"failstutter/internal/wind"
)

func init() {
	register(Experiment{
		ID:    "E31",
		Title: "WiND: the full fail-stutter loop in a network storage volume",
		PaperClaim: "as a first step in this direction, we are exploring the " +
			"construction of fail-stutter-tolerant storage in the Wisconsin " +
			"Network Disks (WiND) project ... investigating the adaptive " +
			"software techniques central to robust and manageable storage " +
			"(Section 5)",
		Run: runE31,
	})
}

func windNodeParams(i int) wind.NodeParams {
	return wind.NodeParams{
		Disk: device.DiskParams{
			Name:           fmt.Sprintf("e31-disk-%d", i),
			CapacityBlocks: 1 << 22,
			BlockBytes:     blockBytes,
			Zones:          []device.Zone{{CapacityFrac: 1, Bandwidth: 1e6}},
			SeekTime:       0.0005,
			AgingFactor:    1,
		},
		LinkBandwidth: 10e6,
		LinkLatency:   0.0002,
	}
}

func runE31(cfg Config) *Table {
	horizon := float64(scale(cfg, 25, 120))
	t := NewTable("E31", "WiND network storage volume",
		"detection + notification + adaptive placement ride out both fault classes",
		"policy", "fault", "writes completed", "diverted", "bookkeeping")
	run := func(policy wind.Policy, inject func(*sim.Simulator, *wind.Volume)) (uint64, uint64, int) {
		s := sim.New()
		v, err := wind.NewVolume(s, wind.VolumeParams{
			Nodes:        6,
			Replication:  2,
			BlockBytes:   blockBytes,
			Policy:       policy,
			Spec:         spec.Spec{ExpectedRate: 1e6, Tolerance: 0.4, PromotionTimeout: 8},
			HedgeAfter:   0.05,
			WriteTimeout: 0.5,
		}, windNodeParams)
		if err != nil {
			panic(err)
		}
		if inject != nil {
			inject(s, v)
		}
		for w := 0; w < 4; w++ {
			var loop func()
			loop = func() {
				if s.Now() >= horizon {
					return
				}
				v.Write(loop)
			}
			loop()
		}
		s.RunUntil(horizon)
		return v.Written(), v.Diverted(), v.Bookkeeping()
	}
	scenarios := []struct {
		name   string
		inject func(*sim.Simulator, *wind.Volume)
	}{
		{"none", nil},
		{"node 0 at 5% from t=2", func(s *sim.Simulator, v *wind.Volume) {
			faults.StepAt{At: 2, Factor: 0.05}.Install(s, v.Node(0).Disk().Composite())
		}},
		{"node 0 crashes at t=2", func(s *sim.Simulator, v *wind.Volume) {
			faults.CrashAt{At: 2}.Install(s, v.Node(0).Disk().Composite())
		}},
	}
	for _, sc := range scenarios {
		for _, policy := range []wind.Policy{wind.Static, wind.Adaptive} {
			written, diverted, book := run(policy, sc.inject)
			t.AddRow(policy.String(), sc.name,
				fmt.Sprintf("%d", written), fmt.Sprintf("%d", diverted), fmt.Sprintf("%d", book))
			key := fmt.Sprintf("%s_%s", policy, metricName(sc.name))
			t.SetMetric("writes_"+key, float64(written))
			t.SetMetric("diverted_"+key, float64(diverted))
		}
	}
	t.AddNote("4 closed-loop writers over %g simulated seconds; replication 2 across 6 nodes", horizon)
	t.AddNote("a stutterer costs more than a corpse: the crashed node promotes and is avoided for good, while the slow node drains, looks idle-healthy, attracts probe traffic, and stalls it — the recovery-probing tax")
	return t
}

// metricName normalizes a scenario label into a metric key fragment.
func metricName(s string) string {
	switch s {
	case "none":
		return "healthy"
	case "node 0 at 5% from t=2":
		return "stutter"
	default:
		return "crash"
	}
}

// Package experiments regenerates every quantitative claim in the paper
// as a table: the Section 3.2 RAID-10 scenarios, each surveyed
// performance-fault phenomenon from Section 2, the Section 3 model
// mechanisms (promotion threshold, notification policy), the Section 3.3
// benefits (availability, incremental growth, failure prediction), the
// Section 4 related-work baselines (Shasha-Turek reissue, River-style
// work queues), and three design ablations. See EXPERIMENTS.md for the
// paper-vs-measured record.
package experiments

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Table is one experiment's regenerated output: labelled rows plus named
// scalar metrics that tests and EXPERIMENTS.md key on.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Columns    []string
	Rows       [][]string
	Notes      []string
	metrics    map[string]float64
	// Telemetry carries the experiment's observability artifacts (spans,
	// audit trail, metrics registry) when the run was configured with any
	// of the Config telemetry flags; nil otherwise. It never affects the
	// formatted table.
	Telemetry *Telemetry
}

// NewTable builds an empty table with the given identity and columns.
func NewTable(id, title, claim string, columns ...string) *Table {
	return &Table{
		ID: id, Title: title, PaperClaim: claim,
		Columns: columns,
		metrics: make(map[string]float64),
	}
}

// AddRow appends a row; the cell count must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: table %s row has %d cells, want %d",
			t.ID, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// SetMetric records a named scalar result.
func (t *Table) SetMetric(key string, v float64) { t.metrics[key] = v }

// Metric returns a named scalar result; ok is false if absent.
func (t *Table) Metric(key string) (v float64, ok bool) {
	v, ok = t.metrics[key]
	return
}

// MustMetric returns a named scalar result, panicking if absent — used by
// tests where absence is itself a failure.
func (t *Table) MustMetric(key string) float64 {
	v, ok := t.metrics[key]
	if !ok {
		panic(fmt.Sprintf("experiments: table %s has no metric %q", t.ID, key))
	}
	return v
}

// MetricKeys returns the metric names, sorted.
func (t *Table) MetricKeys() []string {
	keys := make([]string, 0, len(t.metrics))
	for k := range t.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CSV renders the table as RFC-4180 CSV: a header row, the data rows,
// then one `metric,<name>,<value>` row per metric. Notes are omitted.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := append([]string{"experiment"}, t.Columns...)
	if err := w.Write(header); err != nil {
		panic(err) // strings.Builder cannot fail; a write error is a bug
	}
	for _, row := range t.Rows {
		if err := w.Write(append([]string{t.ID}, row...)); err != nil {
			panic(err)
		}
	}
	for _, k := range t.MetricKeys() {
		v := strconv.FormatFloat(t.metrics[k], 'g', -1, 64)
		if err := w.Write([]string{t.ID, "metric:" + k, v}); err != nil {
			panic(err)
		}
	}
	w.Flush()
	return b.String()
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, k := range t.MetricKeys() {
		v := t.metrics[k]
		fmt.Fprintf(&b, "metric %s = %.6g\n", k, v)
	}
	return b.String()
}

package experiments

import (
	"fmt"

	"failstutter/internal/detect"
	"failstutter/internal/profile"
	"failstutter/internal/raid"
	"failstutter/internal/sim"
	"failstutter/internal/trace"
)

// Telemetry gathers one experiment's observability artifacts: causal spans
// (Tracer), the verdict audit trail (Audit), and labeled metrics
// (Metrics). Each Run builds its own Telemetry, so artifacts stay
// per-experiment even when the runner fans experiments across workers.
// Any field may be nil when the corresponding flag is off.
type Telemetry struct {
	Tracer  *trace.Tracer
	Audit   *trace.AuditLog
	Metrics *trace.Registry
	// Profile marks that the profiling plane is on: sub-runs install a
	// station occupancy sampler so the profiler can reconstruct
	// queue-depth and backlog profiles alongside the span DAG.
	Profile bool
	// Recorder, when non-nil, bounds the tracing plane with a flight
	// recorder (fleet-scale experiments set it before their first
	// sub-run): the destination tracer and every per-shard collector get
	// the same ring/reservoir/seed configuration, which is what makes the
	// merged selection byte-identical at any shard count.
	Recorder *trace.RecorderConfig

	runSeq int
	clock  float64
}

// telemetry builds a fresh Telemetry per the config's observability
// flags, or nil when all of them are off — the nil fast path keeps the
// default run byte-identical to a build without this plane. Profile
// implies Trace and Metrics: the profiler needs the span DAG and a
// registry for its sampled series.
func (cfg Config) telemetry() *Telemetry {
	if !cfg.Trace && !cfg.Audit && !cfg.Metrics && !cfg.Profile {
		return nil
	}
	tel := &Telemetry{Profile: cfg.Profile}
	if cfg.Trace || cfg.Profile {
		tel.Tracer = trace.NewTracer()
	}
	if cfg.Audit {
		tel.Audit = trace.NewAuditLog()
	}
	if cfg.Metrics || cfg.Profile {
		tel.Metrics = trace.NewRegistry()
	}
	return tel
}

// attachProfile installs the profiling plane's station sampler on one
// sub-run's simulator, recording queue-depth and backlog series labeled
// with the run. A no-op unless profiling is on.
func (tel *Telemetry) attachProfile(s *sim.Simulator, run string) {
	if tel == nil || !tel.Profile {
		return
	}
	s.SetStationProbe(profile.StationSampler(tel.Metrics, run))
}

// attachSharded installs per-shard telemetry collectors on one sub-run's
// coordinator, feeding this telemetry's sinks (and flight-recorder
// bound, if set). Components wired afterwards record shard-locally; the
// sub-run's endSharded folds everything back. A no-op when telemetry is
// off.
func (tel *Telemetry) attachSharded(ss *sim.ShardedSimulator) {
	if tel == nil {
		return
	}
	ss.SetTelemetry(sim.TelemetrySinks{
		Tracer:         tel.Tracer,
		Metrics:        tel.Metrics,
		Audit:          tel.Audit,
		FlightRecorder: tel.Recorder,
	})
}

// attachProfileSharded is attachProfile for a sharded sub-run: each
// shard's kernel samples station occupancy into that shard's metrics
// collector, so the probe's appends stay shard-local during the parallel
// window. Requires attachSharded first.
func (tel *Telemetry) attachProfileSharded(ss *sim.ShardedSimulator, run string) {
	if tel == nil || !tel.Profile {
		return
	}
	for i := 0; i < ss.Shards(); i++ {
		ss.Shard(i).SetStationProbe(profile.StationSampler(ss.ShardMetrics(i), run))
	}
}

// nextRun labels one sub-run (one simulator instance) within the
// experiment, e.g. "3-adaptive-pull". Metric labels and span layout use
// it to keep sub-runs distinguishable.
func (tel *Telemetry) nextRun(name string) string {
	tel.runSeq++
	return fmt.Sprintf("%d-%s", tel.runSeq, name)
}

// endRun closes a sub-run at the simulator's final virtual time: open
// spans are flushed, and the time base advances so the next sub-run lays
// out after this one (with a 1 s gap) instead of overlaying it at t=0.
func (tel *Telemetry) endRun(s *sim.Simulator) {
	if tel == nil || tel.Tracer == nil {
		return
	}
	now := s.Now()
	tel.Tracer.Flush(now)
	tel.clock += now + 1
	tel.Tracer.Rebase(tel.clock)
}

// endSharded closes a sharded sub-run: the coordinator's per-shard
// collectors flush and fold into the telemetry sinks in canonical merge
// order, then the time base advances exactly as endRun does. The fold
// happens at the maximum shard clock — the one end-of-run instant that
// reads the same at every shard count — so the next sub-run's layout is
// placement-invariant too.
func (tel *Telemetry) endSharded(ss *sim.ShardedSimulator) {
	if tel == nil {
		return
	}
	end := ss.MergeTelemetry()
	if tel.Tracer == nil {
		return
	}
	tel.Tracer.Flush(end)
	tel.clock += end + 1
	tel.Tracer.Rebase(tel.clock)
}

// meter returns a labeled availability meter from the metrics registry,
// or a fresh unregistered one when telemetry (or the metrics flag) is
// off — call sites measure identically either way, the registry just
// doesn't export the unregistered instrument.
func (tel *Telemetry) meter(name string, threshold float64, labels ...trace.Label) *trace.AvailabilityMeter {
	if tel == nil {
		return trace.NewAvailabilityMeter(threshold)
	}
	return tel.Metrics.Meter(name, threshold, labels...)
}

// auditDetector attaches the audit trail to det for the named component.
// Hysteresis detectors log their full debounce state machine in place;
// anything else is wrapped in an Audited transition logger. With
// telemetry (or the audit flag) off, det is returned untouched.
func (tel *Telemetry) auditDetector(det detect.Detector, component string) detect.Detector {
	if tel == nil || tel.Audit == nil {
		return det
	}
	if h, ok := det.(*detect.Hysteresis); ok {
		h.EnableAudit(tel.Audit, component)
		return h
	}
	return detect.NewAudited(det, tel.Audit, component)
}

// pairRateInterval is the virtual-time sampling period for per-pair
// service-rate series.
const pairRateInterval = 0.25

// watchPairs samples each mirror pair's cumulative bytes every
// pairRateInterval of virtual time, recording per-pair service rates as
// "pair-rate" series labeled with the run and pair index. The sampling
// event keeps rescheduling itself until the run's s.Stop().
func (tel *Telemetry) watchPairs(s *sim.Simulator, a *raid.Array, run string) {
	if tel == nil || tel.Metrics == nil {
		return
	}
	pairs := a.Pairs()
	series := make([]*trace.Series, len(pairs))
	last := make([]float64, len(pairs))
	for i := range pairs {
		series[i] = tel.Metrics.Series("pair-rate",
			trace.L("run", run), trace.L("pair", fmt.Sprintf("%d", i)))
	}
	var tick func()
	tick = func() {
		now := s.Now()
		for i, p := range pairs {
			cur := p.A.BytesCompleted() + p.B.BytesCompleted()
			series[i].Add(now, (cur-last[i])/pairRateInterval)
			last[i] = cur
		}
		s.At(now+pairRateInterval, tick)
	}
	s.At(s.Now()+pairRateInterval, tick)
}

// runStriperT is runStriper with telemetry: the array's causal spans go
// to tel.Tracer, per-pair rates are sampled into tel.Metrics, and
// summary counters are recorded when the job completes. A nil tel is
// exactly runStriper.
func runStriperT(tel *Telemetry, name string, rates []float64, blocks int64,
	st raid.Striper, setup func(*sim.Simulator, *raid.Array)) raid.Result {
	if tel == nil {
		return runStriper(rates, blocks, st, setup)
	}
	s := sim.New()
	a := buildArray(s, rates)
	if setup != nil {
		setup(s, a)
	}
	run := tel.nextRun(name)
	a.SetTracer(tel.Tracer)
	tel.attachProfile(s, run)
	tel.watchPairs(s, a, run)
	res, err := raid.WriteAndMeasure(s, a, st, blocks)
	if err != nil {
		panic(fmt.Sprintf("experiments: striper run failed: %v", err))
	}
	tel.endRun(s)
	if tel.Metrics != nil {
		tel.Metrics.Counter("blocks", trace.L("run", run)).Add(uint64(res.Blocks))
		tel.Metrics.Counter("reissued", trace.L("run", run)).Add(uint64(res.Reissued))
		tel.Metrics.Counter("bookkeeping", trace.L("run", run)).Add(uint64(res.Bookkeeping))
	}
	return res
}

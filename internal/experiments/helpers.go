package experiments

import (
	"fmt"

	"failstutter/internal/device"
	"failstutter/internal/raid"
	"failstutter/internal/sim"
)

// blockBytes is the logical block size used by the storage experiments.
const blockBytes = 4096

// mb formats bytes/s as MB/s.
func mb(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f MB/s", bytesPerSec/1e6)
}

// flatDisk builds a constant-bandwidth disk (bandwidth in bytes/s).
func flatDisk(s *sim.Simulator, name string, bw float64) *device.Disk {
	return device.MustDisk(s, device.DiskParams{
		Name:           name,
		CapacityBlocks: 1 << 24,
		BlockBytes:     blockBytes,
		Zones:          []device.Zone{{CapacityFrac: 1, Bandwidth: bw}},
		SeekTime:       0.002,
		AgingFactor:    1,
	})
}

// buildArray builds a RAID-10 array with one mirror pair per entry of
// rates (both members at that bandwidth in bytes/s).
func buildArray(s *sim.Simulator, rates []float64) *raid.Array {
	pairs := make([]*raid.MirrorPair, len(rates))
	for i, r := range rates {
		a := flatDisk(s, fmt.Sprintf("p%d-a", i), r)
		b := flatDisk(s, fmt.Sprintf("p%d-b", i), r)
		pairs[i] = raid.NewMirrorPair(s, i, a, b)
	}
	return raid.NewArray(s, pairs, blockBytes)
}

// runStriper builds a fresh array from rates, applies setup (may be nil)
// for fault injection, runs the striper over the given number of blocks,
// and returns the result.
func runStriper(rates []float64, blocks int64, st raid.Striper, setup func(*sim.Simulator, *raid.Array)) raid.Result {
	s := sim.New()
	a := buildArray(s, rates)
	if setup != nil {
		setup(s, a)
	}
	res, err := raid.WriteAndMeasure(s, a, st, blocks)
	if err != nil {
		panic(fmt.Sprintf("experiments: striper run failed: %v", err))
	}
	return res
}

// scale picks between the quick and full parameter.
func scale(cfg Config, quick, full int64) int64 {
	if cfg.Quick {
		return quick
	}
	return full
}

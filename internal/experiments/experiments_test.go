package experiments

import (
	"strings"
	"testing"
)

var quick = Config{Seed: 42, Quick: true}

func runByID(t *testing.T, id string) *Table {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tbl := e.Run(quick)
	if tbl.ID != id {
		t.Fatalf("experiment %s produced table %s", id, tbl.ID)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("experiment %s produced no rows", id)
	}
	return tbl
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08", "E09",
		"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18",
		"E19", "E20", "E21", "E22", "E23", "E24", "E25", "E26", "E27",
		"E28", "E29", "E30", "E31", "E32", "A1", "A2", "A3", "A4",
	}
	if len(ids) != len(want) {
		t.Fatalf("registered %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids[%d] = %s, want %s (%v)", i, ids[i], id, ids)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTableFormat(t *testing.T) {
	tbl := NewTable("X1", "title", "claim", "a", "b")
	tbl.AddRow("1", "2")
	tbl.AddNote("note %d", 7)
	tbl.SetMetric("m", 3.5)
	out := tbl.Format()
	for _, want := range []string{"X1", "title", "claim", "note 7", "metric m = 3.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("X1", "title", "claim", "a", "b")
	tbl.AddRow("1", "with,comma")
	tbl.SetMetric("m", 3.5)
	out := tbl.CSV()
	want := "experiment,a,b\nX1,1,\"with,comma\"\nX1,metric:m,3.5\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tbl := NewTable("X1", "t", "c", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("row mismatch did not panic")
		}
	}()
	tbl.AddRow("only-one")
}

func TestE01FailStopTracksSlowPair(t *testing.T) {
	tbl := runByID(t, "E01")
	if re := tbl.MustMetric("rel_error"); re > 0.05 {
		t.Fatalf("static throughput misses N*b by %.1f%%", re*100)
	}
}

func TestE02GaugedRecoversAndDriftBreaks(t *testing.T) {
	tbl := runByID(t, "E02")
	if re := tbl.MustMetric("rel_error_static"); re > 0.08 {
		t.Fatalf("gauged throughput misses (N-1)B+b by %.1f%%", re*100)
	}
	drift := tbl.MustMetric("throughput_drift")
	static := tbl.MustMetric("predicted_static")
	if drift > 0.7*static {
		t.Fatalf("post-gauge drift barely hurt: %v vs healthy prediction %v", drift, static)
	}
}

func TestE03AdaptiveHoldsBandwidth(t *testing.T) {
	tbl := runByID(t, "E03")
	if got, avail := tbl.MustMetric("throughput_static"), tbl.MustMetric("available_static"); got < 0.88*avail {
		t.Fatalf("adaptive static throughput %v below 88%% of available %v", got, avail)
	}
	adaptive := tbl.MustMetric("throughput_dyn_adaptive")
	static := tbl.MustMetric("throughput_dyn_static")
	if adaptive < 1.2*static {
		t.Fatalf("adaptive %v not clearly above static %v under oscillation", adaptive, static)
	}
	if tbl.MustMetric("bookkeeping_adaptive") <= 0 {
		t.Fatal("adaptive reported no bookkeeping cost")
	}
}

func TestE04ThroughputTracksSlowest(t *testing.T) {
	tbl := runByID(t, "E04")
	for _, d := range []string{"0", "10", "25", "50", "75"} {
		got := tbl.MustMetric("throughput_" + d)
		want := tbl.MustMetric("predicted_" + d)
		if relErr(got, want) > 0.05 {
			t.Fatalf("deficit %s%%: throughput %v vs predicted %v", d, got, want)
		}
	}
}

func TestE05RemapDeficit(t *testing.T) {
	tbl := runByID(t, "E05")
	prev := tbl.MustMetric("bw_0")
	for i := 1; i < 4; i++ {
		cur := tbl.MustMetric(metricKey("bw_", i))
		if cur >= prev {
			t.Fatalf("bandwidth not monotone in remap density: bw_%d=%v bw_%d=%v", i-1, prev, i, cur)
		}
		prev = cur
	}
	// The paper's ~9% deficit should bracket within the sweep.
	healthy := tbl.MustMetric("healthy_bw")
	mid := tbl.MustMetric("bw_2")
	deficit := 1 - mid/healthy
	if deficit < 0.03 || deficit > 0.5 {
		t.Fatalf("mid-sweep remap deficit %.1f%% not in a plausible band", deficit*100)
	}
}

func metricKey(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

func TestE06ErrorRatesAndChainStalls(t *testing.T) {
	tbl := runByID(t, "E06")
	perDay := tbl.MustMetric("errors_per_day")
	if perDay < 1 || perDay > 3 {
		t.Fatalf("timeout rate %.2f/day, want ~2", perDay)
	}
	if s := tbl.MustMetric("share_all"); s < 0.4 || s > 0.6 {
		t.Fatalf("share of all errors %.2f, want ~0.49", s)
	}
	if s := tbl.MustMetric("share_no_network"); s < 0.8 || s > 0.95 {
		t.Fatalf("share excluding network %.2f, want ~0.87", s)
	}
	if loss := tbl.MustMetric("chain_loss_frac"); loss <= 0 || loss > 0.05 {
		t.Fatalf("chain throughput loss %.4f implausible for rare 2s resets", loss)
	}
}

func TestE07BufferingAbsorbsRecalibrations(t *testing.T) {
	tbl := runByID(t, "E07")
	// With a 4 s buffer even 3 s recals are absorbed; with 0.5 s buffer a
	// 3 s recal drops frames.
	deep := tbl.MustMetric("miss_b4_r3")
	shallow := tbl.MustMetric("miss_b0.5_r3")
	if deep > 0.001 {
		t.Fatalf("4 s buffer still missed %.2f%%", deep*100)
	}
	if shallow <= deep {
		t.Fatalf("shallow buffer %.4f not worse than deep %.4f", shallow, deep)
	}
}

func TestE08ZoneRatio(t *testing.T) {
	tbl := runByID(t, "E08")
	if r := tbl.MustMetric("zone_ratio"); r < 1.8 || r > 2.2 {
		t.Fatalf("outer/inner ratio %.2f, want ~2", r)
	}
}

func TestE09CacheMaskingSlowdown(t *testing.T) {
	tbl := runByID(t, "E09")
	max := tbl.MustMetric("max_slowdown")
	if max < 1.3 || max > 1.7 {
		t.Fatalf("max cache-masking slowdown %.2fx, want ~1.4x (paper: up to 40%%)", max)
	}
	if r := tbl.MustMetric("ratio_ws2.0"); r != 1 {
		t.Fatalf("cache-resident workload differs: %v", r)
	}
}

func TestE10TransposeCollapse(t *testing.T) {
	tbl := runByID(t, "E10")
	mid := tbl.MustMetric("slowdown_n1_s0.33")
	if mid < 2 || mid > 4.5 {
		t.Fatalf("one receiver at 33%%: slowdown %.2fx, want ~3x", mid)
	}
	severe := tbl.MustMetric("slowdown_n1_s0.10")
	if severe <= mid {
		t.Fatalf("slower receiver did not hurt more: %.2f vs %.2f", severe, mid)
	}
}

func TestE11Unfairness(t *testing.T) {
	tbl := runByID(t, "E11")
	if sd := tbl.MustMetric("global_slowdown"); sd < 1.3 {
		t.Fatalf("misled adaptive transfer slowdown %.2fx, want ~1.5x", sd)
	}
	if fair := tbl.MustMetric("fair_slowdown"); fair > 1.1 {
		t.Fatalf("fair arbitration slowdown %.2fx, want ~1x", fair)
	}
	if rr := tbl.MustMetric("rate_ratio"); rr < 1.5 {
		t.Fatalf("observed route-rate disparity %.2fx, want a clear distortion", rr)
	}
}

func TestE12FreezeCost(t *testing.T) {
	tbl := runByID(t, "E12")
	base := tbl.MustMetric("time_0")
	for _, n := range []int{1, 2, 3} {
		got := tbl.MustMetric(metricKey("time_", n))
		added := got - base
		want := 2 * float64(n)
		if added < want*0.9 || added > want*1.3 {
			t.Fatalf("%d freezes added %.2f s, want ~%.0f s", n, added, want)
		}
	}
}

func TestE13AgedLayouts(t *testing.T) {
	tbl := runByID(t, "E13")
	if r := tbl.MustMetric("age_ratio"); r < 1.8 || r > 2.2 {
		t.Fatalf("fresh/aged ratio %.2f, want ~2", r)
	}
	if tbl.MustMetric("fresh_identical") != 1 {
		t.Fatal("recreated-fresh drives not identical")
	}
}

func TestE16MemoryHogStretch(t *testing.T) {
	tbl := runByID(t, "E16")
	max := tbl.MustMetric("max_stretch")
	if max < 30 || max > 85 {
		t.Fatalf("max stretch %.1fx, want the paper's tens-of-x regime", max)
	}
	if s := tbl.MustMetric("stretch_hog0"); s != 1 {
		t.Fatalf("no-hog stretch %v, want 1", s)
	}
}

func TestE17VectorEfficiency(t *testing.T) {
	tbl := runByID(t, "E17")
	if e := tbl.MustMetric("eff_50"); e != 0.5 {
		t.Fatalf("efficiency at 50%% perturbation = %v, want 0.5 (factor of two)", e)
	}
	if e := tbl.MustMetric("eff_0"); e != 1 {
		t.Fatalf("unperturbed efficiency = %v", e)
	}
}

func TestE18PromotionMatrix(t *testing.T) {
	tbl := runByID(t, "E18")
	// Short stall, generous T: stays a performance fault.
	if tbl.MustMetric("promoted_stall2_T15") != 0 {
		t.Fatal("2 s stall promoted under T=15")
	}
	// Short stall, hair-trigger T: promoted (the cost of a small T).
	if tbl.MustMetric("promoted_stall10_T5") != 1 {
		t.Fatal("10 s stall not promoted under T=5")
	}
	// Permanent silence always promotes eventually.
	if tbl.MustMetric("promoted_stall+Inf_T40") != 1 {
		t.Fatal("permanent silence not promoted under T=40")
	}
}

func TestE19NotificationCost(t *testing.T) {
	tbl := runByID(t, "E19")
	every := tbl.MustMetric("every_p8")
	persistent := tbl.MustMetric("persistent_p8")
	if every < 10 {
		t.Fatalf("notify-every produced only %v messages for frequent blips", every)
	}
	if persistent != 0 {
		t.Fatalf("notify-persistent produced %v messages for transient blips", persistent)
	}
	if d := tbl.MustMetric("persistent_detect_delay"); d < 0 || d > 15 {
		t.Fatalf("persistent policy detection delay %v s", d)
	}
}

func TestE20AvailabilityGap(t *testing.T) {
	tbl := runByID(t, "E20")
	fs := tbl.MustMetric("availability_failstop")
	fst := tbl.MustMetric("availability_failstutter")
	if fst < 0.95 {
		t.Fatalf("fail-stutter design availability %.3f, want ~1", fst)
	}
	if fs > fst-0.1 {
		t.Fatalf("fail-stop design %.3f not clearly below fail-stutter %.3f", fs, fst)
	}
}

func TestE21IncrementalGrowth(t *testing.T) {
	tbl := runByID(t, "E21")
	static := tbl.MustMetric("throughput_static")
	adaptive := tbl.MustMetric("throughput_adaptive")
	ideal := tbl.MustMetric("ideal")
	if adaptive < 0.85*ideal {
		t.Fatalf("adaptive %.3g below 85%% of ideal %.3g", adaptive, ideal)
	}
	if static > 0.5*ideal {
		t.Fatalf("static %.3g suspiciously high against ideal %.3g", static, ideal)
	}
}

func TestE22PredictionLeadTime(t *testing.T) {
	tbl := runByID(t, "E22")
	for _, d := range []string{"20", "60", "180"} {
		lead := tbl.MustMetric("lead_" + d)
		if lead <= 0 {
			t.Fatalf("drift %s s: no ewma lead time before crash", d)
		}
		if lt := tbl.MustMetric("lead_trend_" + d); lt <= 0 {
			t.Fatalf("drift %s s: no trend lead time before crash", d)
		}
	}
	// On the slow 180 s drift the trend detector should flag no later
	// than the threshold-based one: it keys on the slope, not the level.
	if tbl.MustMetric("lead_trend_180") < tbl.MustMetric("lead_180") {
		t.Fatal("trend detector gave less warning than ewma on a slow drift")
	}
	if fp := tbl.MustMetric("false_positive_samples"); fp > 10 {
		t.Fatalf("healthy component flagged on %v samples", fp)
	}
	// Longer drifts give longer warning.
	if tbl.MustMetric("lead_180") <= tbl.MustMetric("lead_20") {
		t.Fatal("lead time not increasing with drift duration")
	}
}

func TestA1DetectorTradeoffs(t *testing.T) {
	tbl := runByID(t, "A1")
	// Faster EWMA reacts no slower than slow EWMA.
	fast := tbl.MustMetric("lag_ewma-fast0.8")
	slow := tbl.MustMetric("lag_ewma-fast0.1")
	if fast < 0 || slow < 0 {
		t.Fatal("a detector missed an unmistakable 60% drop")
	}
	if fast > slow {
		t.Fatalf("fast EWMA lag %v exceeds slow EWMA lag %v", fast, slow)
	}
	// The hair-trigger spec detector must show more false positives than
	// the hysteresis one.
	hair := tbl.MustMetric("fp_spec-tol0.05-(hair-trigger)")
	debounced := tbl.MustMetric("fp_spec-tol0.3-+-hysteresis-3")
	if hair <= debounced {
		t.Fatalf("hair-trigger fp %v not above debounced fp %v", hair, debounced)
	}
}

func TestA2RegaugeInterval(t *testing.T) {
	tbl := runByID(t, "A2")
	fast := tbl.MustMetric("throughput_0.1")
	slow := tbl.MustMetric("throughput_4")
	if fast < slow {
		t.Fatalf("fast re-gauge %v worse than slow %v under oscillation", fast, slow)
	}
}

func TestA3PeerVsAbsolute(t *testing.T) {
	tbl := runByID(t, "A3")
	if tbl.MustMetric("abs_fleet_flags") < 7 {
		t.Fatal("absolute specs failed to (wrongly) flag the fleet-wide shift")
	}
	if tbl.MustMetric("peer_fleet_flags") != 0 {
		t.Fatal("peer detection flagged a benign fleet-wide shift")
	}
	if tbl.MustMetric("abs_single_flags") != 1 || tbl.MustMetric("peer_single_flags") != 1 {
		t.Fatal("single divergent component not flagged exactly once by each")
	}
}

// Cluster-backed experiments run on the virtual-time kernel; the shape
// assertions below are exact-repeatable for a given configuration.

func TestE14DHTShapes(t *testing.T) {
	tbl := runByID(t, "E14")
	healthy := tbl.MustMetric("puts_healthy")
	gcSync := tbl.MustMetric("puts_gc_sync")
	gcAdaptive := tbl.MustMetric("puts_gc_adaptive")
	if gcSync > 0.8*healthy {
		t.Fatalf("GC did not bottleneck sync replication: %v vs %v", gcSync, healthy)
	}
	if gcAdaptive < 1.15*gcSync {
		t.Fatalf("adaptive %v not clearly above sync %v under GC", gcAdaptive, gcSync)
	}
	if tbl.MustMetric("hints") <= 0 {
		t.Fatal("adaptive run recorded no hinted handoffs")
	}
}

func TestE15SortHogShapes(t *testing.T) {
	tbl := runByID(t, "E15")
	static := tbl.MustMetric("slowdown_static-partition")
	queue := tbl.MustMetric("slowdown_work-queue")
	if static < 1.5 {
		t.Fatalf("static hog slowdown %.2fx, want ~2x", static)
	}
	if queue > static*0.8 {
		t.Fatalf("work queue slowdown %.2fx not clearly below static %.2fx", queue, static)
	}
}

func TestE23ReissueShapes(t *testing.T) {
	tbl := runByID(t, "E23")
	wq := tbl.MustMetric("makespan_ms_work-queue")
	reissue := tbl.MustMetric("makespan_ms_reissue")
	if reissue > 0.75*wq {
		t.Fatalf("reissue %v ms not clearly below work queue %v ms", reissue, wq)
	}
	wasted := tbl.MustMetric("wasted_reissue")
	total := tbl.MustMetric("total_units")
	if wasted > 0.25*total {
		t.Fatalf("reconciliation failed: wasted %v of %v units", wasted, total)
	}
}

func TestE24AllSchedulersComplete(t *testing.T) {
	tbl := runByID(t, "E24")
	if len(tbl.Rows) != 6 {
		t.Fatalf("scheduler comparison has %d rows, want 6", len(tbl.Rows))
	}
	// The most stutter-aware schedulers must beat static under mid-job
	// degradation.
	static := tbl.MustMetric("mid_ms_static-partition")
	wq := tbl.MustMetric("mid_ms_work-queue")
	if wq > static {
		t.Fatalf("work queue %v ms worse than static %v ms under degradation", wq, static)
	}
}

func TestE30DesignDiversity(t *testing.T) {
	tbl := runByID(t, "E30")
	homog := "homogeneous"
	diverse := "diverse"
	// The correlated crash kills every homogeneous pair (data loss) but
	// the diverse array survives on the other vendor.
	if tbl.MustMetric("crash_survived_"+homog) != 0 {
		t.Fatal("homogeneous array survived a correlated vendor crash")
	}
	if tbl.MustMetric("crash_survived_"+diverse) != 1 {
		t.Fatal("diverse array did not survive a correlated vendor crash")
	}
	// Under the correlated stall, the diverse array keeps writing (its
	// mirrors absorb the stall) and finishes faster.
	hs := tbl.MustMetric("stall_throughput_" + homog)
	ds := tbl.MustMetric("stall_throughput_" + diverse)
	if ds <= hs {
		t.Fatalf("diverse stall throughput %v not above homogeneous %v", ds, hs)
	}
}

func TestA4DepthAblation(t *testing.T) {
	tbl := runByID(t, "A4")
	// Under static faults depth hardly matters.
	if relErr(tbl.MustMetric("static_d1"), tbl.MustMetric("static_d32")) > 0.1 {
		t.Fatal("depth changed static-fault throughput materially")
	}
	// Under full stalls, shallow windows strand less work.
	if tbl.MustMetric("stall_d1") < tbl.MustMetric("stall_d32") {
		t.Fatal("depth-1 window not at least as good as depth-32 under stalls")
	}
}

func TestE31WindLoop(t *testing.T) {
	tbl := runByID(t, "E31")
	// Healthy: policies equivalent (within granularity).
	sH := tbl.MustMetric("writes_static_healthy")
	aH := tbl.MustMetric("writes_adaptive_healthy")
	if relErr(aH, sH) > 0.15 {
		t.Fatalf("healthy adaptive %v vs static %v diverge", aH, sH)
	}
	// Stutter: adaptive clearly ahead, with diversions recorded.
	sS := tbl.MustMetric("writes_static_stutter")
	aS := tbl.MustMetric("writes_adaptive_stutter")
	if aS < 1.5*sS {
		t.Fatalf("adaptive %v not clearly above static %v under stutter", aS, sS)
	}
	if tbl.MustMetric("diverted_adaptive_stutter") == 0 {
		t.Fatal("no diversions under stutter")
	}
	// Crash: closed-loop static writers wedge on the dead node; adaptive
	// keeps going after promotion.
	sC := tbl.MustMetric("writes_static_crash")
	aC := tbl.MustMetric("writes_adaptive_crash")
	if aC < 1.5*sC {
		t.Fatalf("adaptive %v not clearly above static %v after crash", aC, sC)
	}
}

func TestE32FleetDetection(t *testing.T) {
	tbl := runByID(t, "E32")
	// The 2048-disk quick fleet injects faults of both kinds; the sweep
	// must find all of them and nothing else.
	if tbl.MustMetric("injected_stutter_2048") == 0 || tbl.MustMetric("injected_fail_2048") == 0 {
		t.Fatal("quick fleet injected no faults — fleet too small for the fractions")
	}
	for _, kind := range []string{"stutter", "fail"} {
		got := tbl.MustMetric("detected_" + kind + "_2048")
		want := tbl.MustMetric("injected_" + kind + "_2048")
		if got != want {
			t.Fatalf("detected %s %v of %v injected", kind, got, want)
		}
	}
	if fa := tbl.MustMetric("false_alarms_2048"); fa != 0 {
		t.Fatalf("%v healthy disks flagged at the final sweep", fa)
	}
	if lag := tbl.MustMetric("lag_ticks_2048"); lag <= 0 || lag > 6 {
		t.Fatalf("detection lag %v ticks out of range", lag)
	}
	if tbl.MustMetric("events_2048") < 10*2048 {
		t.Fatalf("suspiciously few events: %v", tbl.MustMetric("events_2048"))
	}
}

func TestE29BSPBarrierTax(t *testing.T) {
	tbl := runByID(t, "E29")
	static := tbl.MustMetric("slowdown_static")
	elastic := tbl.MustMetric("slowdown_elastic")
	if static < 2 {
		t.Fatalf("static BSP slowdown %.2fx, want the straggler tax (~4x)", static)
	}
	if elastic > static*0.6 {
		t.Fatalf("elastic BSP %.2fx not clearly below static %.2fx", elastic, static)
	}
}

func TestE25DQPolicies(t *testing.T) {
	tbl := runByID(t, "E25")
	cb := tbl.MustMetric("frac_credit-based")
	rr := tbl.MustMetric("frac_round-robin")
	if cb < 0.8 {
		t.Fatalf("credit-based achieved %.2f of available bandwidth", cb)
	}
	if rr > cb/2 {
		t.Fatalf("round-robin %.2f not clearly below credit-based %.2f", rr, cb)
	}
}

func TestE26GracefulDegradation(t *testing.T) {
	tbl := runByID(t, "E26")
	// At a 50% slow disk the static design roughly doubles while the
	// graduated design stays near the fluid ideal.
	static := tbl.MustMetric("static_0.50")
	grad := tbl.MustMetric("graduated_0.50")
	fluid := tbl.MustMetric("fluid_0.50")
	if grad*1.5 > static {
		t.Fatalf("graduated %v not clearly below static %v", grad, static)
	}
	if grad > 1.3*fluid {
		t.Fatalf("graduated %v far from fluid ideal %v", grad, fluid)
	}
	// Healthy case: both designs match.
	if relErr(tbl.MustMetric("static_1.00"), tbl.MustMetric("graduated_1.00")) > 0.2 {
		t.Fatal("healthy static and graduated diverge")
	}
}

func TestE27RunTimeVariance(t *testing.T) {
	tbl := runByID(t, "E27")
	if med := tbl.MustMetric("median"); med > 1.5 {
		t.Fatalf("median multiplier %v; pathologies should be the tail", med)
	}
	worst := tbl.MustMetric("worst")
	if worst < 2.5 || worst > 3.0 {
		t.Fatalf("worst multiplier %v, want approaching 3x", worst)
	}
}

func TestE28MeasurementSpread(t *testing.T) {
	tbl := runByID(t, "E28")
	if best := tbl.MustMetric("best_frac"); best < 0.97 {
		t.Fatalf("best trial %.2f of peak, want ~1", best)
	}
	if med := tbl.MustMetric("median_frac"); med < 0.7 {
		t.Fatalf("median trial %.2f of peak; cluster near peak missing", med)
	}
	worst := tbl.MustMetric("worst_frac")
	if worst > 0.6 || worst < 0.08 {
		t.Fatalf("worst trial %.2f of peak, want the wide low tail (~0.15-0.5)", worst)
	}
}

// Every registered experiment must run clean in quick mode and format
// without panicking.
func TestAllExperimentsRunAndFormat(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(quick)
			out := tbl.Format()
			if !strings.Contains(out, e.ID) {
				t.Fatalf("format output missing id:\n%s", out)
			}
			if len(tbl.MetricKeys()) == 0 {
				t.Fatalf("experiment %s exposes no metrics", e.ID)
			}
		})
	}
}

package experiments

import (
	"sync"
	"sync/atomic"
)

// RunAll executes every registered experiment and returns the tables in
// display order (the order of All()). parallelism is the number of worker
// goroutines experiments are fanned across; values below 1 are treated
// as 1.
//
// Every experiment owns an independent Simulator and seeded RNG, so the
// virtual-time experiments are embarrassingly parallel and their tables
// are byte-identical for a given seed regardless of parallelism. The
// wall-clock experiments (Experiment.WallClock: the internal/cluster
// goroutine benchmarks) measure real CPU shares and sleep timings, so
// they always run exclusively, one at a time, after the parallel batch —
// running them alongside other experiments would distort the very load
// ratios they measure.
func RunAll(cfg Config, parallelism int) []*Table {
	return runExperiments(All(), cfg, parallelism)
}

// runExperiments fans list across parallelism workers (wall-clock entries
// excluded, see RunAll) and returns tables positionally aligned with list.
func runExperiments(list []Experiment, cfg Config, parallelism int) []*Table {
	if parallelism < 1 {
		parallelism = 1
	}
	tables := make([]*Table, len(list))
	var fan, exclusive []int
	for i, e := range list {
		if e.WallClock || parallelism == 1 {
			exclusive = append(exclusive, i)
		} else {
			fan = append(fan, i)
		}
	}
	if len(fan) > 0 {
		workers := parallelism
		if workers > len(fan) {
			workers = len(fan)
		}
		// Experiments have very unequal costs, so workers pull the next
		// index from a shared counter instead of taking fixed slices.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					n := int(next.Add(1)) - 1
					if n >= len(fan) {
						return
					}
					i := fan[n]
					tables[i] = list[i].Run(cfg)
				}
			}()
		}
		wg.Wait()
	}
	for _, i := range exclusive {
		tables[i] = list[i].Run(cfg)
	}
	return tables
}

package experiments

import (
	"sync"
	"sync/atomic"
)

// RunAll executes every registered experiment and returns the tables in
// display order (the order of All()). parallelism is the number of worker
// goroutines experiments are fanned across; values below 1 are treated
// as 1.
//
// Every experiment owns an independent Simulator and seeded RNG, so the
// whole suite is embarrassingly parallel and the tables are byte-identical
// for a given seed regardless of parallelism.
func RunAll(cfg Config, parallelism int) []*Table {
	return runExperiments(All(), cfg, parallelism)
}

// runExperiments fans list across parallelism workers and returns tables
// positionally aligned with list.
func runExperiments(list []Experiment, cfg Config, parallelism int) []*Table {
	if parallelism < 1 {
		parallelism = 1
	}
	tables := make([]*Table, len(list))
	if parallelism == 1 {
		for i, e := range list {
			tables[i] = e.Run(cfg)
		}
		return tables
	}
	workers := parallelism
	if workers > len(list) {
		workers = len(list)
	}
	// Experiments have very unequal costs, so workers pull the next index
	// from a shared counter instead of taking fixed slices.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(list) {
					return
				}
				tables[n] = list[n].Run(cfg)
			}
		}()
	}
	wg.Wait()
	return tables
}

package experiments

import (
	"fmt"
	"math"
	"strings"

	"failstutter/internal/core"
	"failstutter/internal/detect"
	"failstutter/internal/faults"
	"failstutter/internal/sim"
	"failstutter/internal/spec"
	"failstutter/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Promotion threshold T: performance fault vs absolute fault",
		PaperClaim: "if the disk request takes longer than T seconds to " +
			"service, consider it absolutely failed; performance faults fill " +
			"in the rest of the regime (Section 3.1)",
		Run: runE18,
	})
	register(Experiment{
		ID:    "E19",
		Title: "Notification policy: every blip vs persistent state",
		PaperClaim: "erratic performance may occur quite frequently, and thus " +
			"distributing that information may be overly expensive; export " +
			"state for persistently faulty components (Section 3.1)",
		Run: runE19,
	})
	register(Experiment{
		ID:    "E20",
		Title: "Availability under a single performance fault",
		PaperClaim: "a system that only utilizes the fail-stop model is likely " +
			"to deliver poor performance under even a single performance " +
			"failure; handling them keeps availability high (Section 3.3)",
		Run: runE20,
	})
	register(Experiment{
		ID:    "E22",
		Title: "Stutter as an early indicator of impending failure",
		PaperClaim: "erratic performance may be an early indicator of " +
			"impending failure (Section 3.3, reliability)",
		Run: runE22,
	})
	register(Experiment{
		ID:    "A1",
		Title: "Ablation: detector parameters vs lag and false positives",
		PaperClaim: "the designer must have a good model of how often " +
			"performance faults occur and how long they last (Section 3.1)",
		Run: runA1,
	})
	register(Experiment{
		ID:    "A3",
		Title: "Ablation: peer-relative vs absolute-spec detection",
		PaperClaim: "a performance failure from the perspective of one " +
			"component may not manifest itself to others (Section 3.1)",
		Run: runA3,
	})
}

// saturated builds a station kept permanently busy, returning a work
// counter for probing. Requests are 0.01 s of nominal work: coarse
// requests quantize the sampled rate into plateaus that hide gradual
// drift from slope-based detectors.
func saturated(s *sim.Simulator, name string, rate float64) (*sim.Station, func() float64) {
	st := sim.NewStation(s, name, rate)
	chunk := rate / 100
	var refill func()
	refill = func() {
		st.SubmitFunc(chunk, func(*sim.Request) { refill() })
	}
	refill()
	return st, func() float64 { return float64(st.Completed()) * chunk }
}

func runE18(cfg Config) *Table {
	t := NewTable("E18", "Promotion threshold T",
		"stalls shorter than T remain performance faults; longer stalls promote to absolute",
		"stall length", "T=5s", "T=15s", "T=40s")
	tel := cfg.telemetry()
	t.Telemetry = tel
	stalls := []float64{2, 10, 30, math.Inf(1)} // Inf = never recovers
	thresholds := []float64{5, 15, 40}
	for _, stall := range stalls {
		label := fmt.Sprintf("%.0f s", stall)
		if math.IsInf(stall, 1) {
			label = "never recovers"
		}
		row := []string{label}
		for _, T := range thresholds {
			s := sim.New()
			st, counter := saturated(s, "d0", 100)
			// Stall at t=30 for the given length.
			s.At(30, func() { st.SetMultiplier(0) })
			if !math.IsInf(stall, 1) {
				s.At(30+stall, func() { st.SetMultiplier(1) })
			}
			det := tel.auditDetector(detect.NewSpecDetector(spec.Spec{
				ExpectedRate: 100, Tolerance: 0.3, PromotionTimeout: T,
			}), fmt.Sprintf("d0/stall=%v,T=%v", stall, T))
			promoted := false
			detect.NewProbe(s, 1, counter, func(now, rate float64) {
				det.Observe(now, rate)
				if det.Verdict(now) == spec.AbsoluteFaulty {
					promoted = true
				}
			})
			s.RunUntil(120)
			verdict := "perf-fault, recovered"
			if promoted {
				verdict = "promoted to absolute"
			}
			row = append(row, verdict)
			key := fmt.Sprintf("promoted_stall%v_T%v", stall, T)
			v := 0.0
			if promoted {
				v = 1
			}
			t.SetMetric(key, v)
		}
		t.AddRow(row...)
	}
	t.AddNote("ground truth: finite stalls are transient (promotion wastes a working component); 'never recovers' is dead (failing to promote strands its work)")
	return t
}

func runE19(cfg Config) *Table {
	horizon := float64(scale(cfg, 300, 3000))
	t := NewTable("E19", "Notification policy",
		"publishing every blip floods the system; persistent-only stays quiet",
		"blip period", "notify-every msgs", "notify-persistent msgs")
	tel := cfg.telemetry()
	t.Telemetry = tel
	for _, period := range []float64{4, 8, 16, 32} {
		counts := make(map[core.NotifyPolicy]uint64)
		for _, policy := range []core.NotifyPolicy{core.NotifyEvery, core.NotifyPersistent} {
			s := sim.New()
			ctl := core.NewController(s)
			st, counter := saturated(s, "d0", 100)
			id := fmt.Sprintf("d0/period=%.0f,policy=%s", period, policy)
			cfg19 := core.AttachConfig{
				Interval: 1,
				Detector: detect.NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.3}),
				Policy:   policy,
			}
			if tel != nil {
				cfg19.Audit = tel.Audit
				cfg19.Metrics = tel.Metrics
				cfg19.MetricsLabels = []trace.Label{trace.L("experiment", "E19")}
			}
			ctl.Watch(id, counter, cfg19)
			// One bad sample every `period` seconds: transient blips.
			faults.PeriodicStall{Period: period, Duration: 1, Factor: 0.1, Until: horizon}.
				Install(s, faults.NewComposite(st))
			s.RunUntil(horizon)
			counts[policy] = ctl.Registry().Notifications()
		}
		t.AddRow(fmt.Sprintf("%.0f s", period),
			fmt.Sprintf("%d", counts[core.NotifyEvery]),
			fmt.Sprintf("%d", counts[core.NotifyPersistent]))
		t.SetMetric(fmt.Sprintf("every_p%.0f", period), float64(counts[core.NotifyEvery]))
		t.SetMetric(fmt.Sprintf("persistent_p%.0f", period), float64(counts[core.NotifyPersistent]))
	}
	// A genuinely persistent fault must still be published promptly.
	s := sim.New()
	ctl := core.NewController(s)
	st, counter := saturated(s, "d0", 100)
	cfg19 := core.AttachConfig{
		Interval: 1,
		Detector: detect.NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.3}),
		Policy:   core.NotifyPersistent,
	}
	if tel != nil {
		cfg19.Audit = tel.Audit
		cfg19.Metrics = tel.Metrics
		cfg19.MetricsLabels = []trace.Label{trace.L("experiment", "E19")}
	}
	ctl.Watch("d0/persistent-onset", counter, cfg19)
	s.At(50, func() { st.SetMultiplier(0.2) })
	var publishedAt float64 = -1
	ctl.Registry().Subscribe(func(e detect.Event) {
		if e.To == spec.PerfFaulty && publishedAt < 0 {
			publishedAt = e.At
		}
	})
	s.RunUntil(100)
	t.SetMetric("persistent_detect_delay", publishedAt-50)
	t.AddNote("persistent policy still publishes a real fault %.0f s after onset", publishedAt-50)
	return t
}

// dispatcher policies for E20.
type dispatchPolicy int

const (
	roundRobin dispatchPolicy = iota
	leastQueue
)

func runE20(cfg Config) *Table {
	count := int(scale(cfg, 2000, 20000))
	t := NewTable("E20", "Availability (Gray & Reuter)",
		"fraction of offered load with acceptable response time, one server stuttering",
		"dispatch design", "availability", "p99 response")
	tel := cfg.telemetry()
	t.Telemetry = tel
	run := func(policy dispatchPolicy, name string) (float64, float64) {
		s := sim.New()
		servers := make([]*sim.Station, 4)
		for i := range servers {
			servers[i] = sim.NewStation(s, fmt.Sprintf("srv-%d", i), 100)
			if tel != nil {
				servers[i].SetTracer(tel.Tracer)
			}
		}
		// Server 0 degrades to 10% for the middle half of the run.
		startT := float64(count) * 0.01 * 0.25
		endT := float64(count) * 0.01 * 0.75
		s.At(startT, func() { servers[0].SetMultiplier(0.1) })
		s.At(endT, func() { servers[0].SetMultiplier(1) })

		meter := tel.meter("dispatch", 0.5, trace.L("policy", name))
		next := 0
		for i := 0; i < count; i++ {
			at := float64(i) * 0.01 // 100 req/s offered over 4 servers
			s.At(at, func() {
				meter.Offered()
				var target *sim.Station
				switch policy {
				case roundRobin:
					target = servers[next%len(servers)]
					next++
				case leastQueue:
					target = servers[0]
					best := target.QueueLen()
					if target.InService() != nil {
						best++
					}
					for _, srv := range servers[1:] {
						q := srv.QueueLen()
						if srv.InService() != nil {
							q++
						}
						if q < best {
							best = q
							target = srv
						}
					}
				}
				target.SubmitFunc(1, func(r *sim.Request) { // 10 ms nominal service
					meter.Completed(r.Latency())
				})
			})
		}
		s.Run()
		tel.endRun(s)
		return meter.Availability(), meter.Latency().Quantile(0.99)
	}
	availRR, p99RR := run(roundRobin, "round-robin")
	availLQ, p99LQ := run(leastQueue, "least-queue")
	t.AddRow("round-robin (fail-stop design)", fmt.Sprintf("%.1f%%", availRR*100), fmt.Sprintf("%.2f s", p99RR))
	t.AddRow("least-queue (fail-stutter design)", fmt.Sprintf("%.1f%%", availLQ*100), fmt.Sprintf("%.2f s", p99LQ))
	t.SetMetric("availability_failstop", availRR)
	t.SetMetric("availability_failstutter", availLQ)
	t.AddNote("identical offered load and fault schedule; only the dispatch design differs")
	return t
}

func runE22(cfg Config) *Table {
	t := NewTable("E22", "Failure prediction from stutter",
		"performance decline precedes death; detection yields replacement lead time",
		"drift duration", "detector", "flagged", "crash at", "lead time")
	tel := cfg.telemetry()
	t.Telemetry = tel
	detectors := []struct {
		name string
		mk   func() detect.Detector
	}{
		{"ewma", func() detect.Detector {
			return detect.NewHysteresis(detect.NewEWMADetector(detect.EWMAConfig{
				FastAlpha: 0.4, SlowAlpha: 0.02, Threshold: 0.75,
			}), 3, 3)
		}},
		{"trend", func() detect.Detector {
			return detect.NewTrendDetector(detect.TrendConfig{
				WindowSamples: 20, DeclineFrac: 0.1,
			})
		}},
	}
	for _, driftLen := range []float64{20, 60, 180} {
		for _, dd := range detectors {
			s := sim.New()
			st, counter := saturated(s, "dying", 100)
			comp := faults.NewComposite(st)
			crashAt := 50 + driftLen
			faults.LinearDrift{Start: 50, End: crashAt, From: 1, To: 0.25, Steps: 40}.Install(s, comp)
			faults.CrashAt{At: crashAt}.Install(s, comp)
			det := tel.auditDetector(dd.mk(), fmt.Sprintf("dying/%s,drift=%.0fs", dd.name, driftLen))
			flaggedAt := -1.0
			detect.NewProbe(s, 1, counter, func(now, rate float64) {
				det.Observe(now, rate)
				if flaggedAt < 0 && det.Verdict(now) == spec.PerfFaulty {
					flaggedAt = now
				}
			})
			s.RunUntil(crashAt + 10)
			lead := crashAt - flaggedAt
			t.AddRow(fmt.Sprintf("%.0f s", driftLen), dd.name,
				fmt.Sprintf("t=%.0f s", flaggedAt),
				fmt.Sprintf("t=%.0f s", crashAt),
				fmt.Sprintf("%.0f s", lead))
			if dd.name == "ewma" {
				t.SetMetric(fmt.Sprintf("lead_%v", driftLen), lead)
			} else {
				t.SetMetric(fmt.Sprintf("lead_trend_%v", driftLen), lead)
			}
		}
	}
	// Control: healthy-but-noisy component must not be flagged.
	s := sim.New()
	st, counter := saturated(s, "healthy", 100)
	faults.RandomWalk{
		Interval: 2, Sigma: 0.03, Min: 0.9, Max: 1.0,
		RNG: sim.NewRNG(cfg.Seed).Fork("e22"), Until: 300,
	}.Install(s, faults.NewComposite(st))
	det := tel.auditDetector(detect.NewHysteresis(detect.NewEWMADetector(detect.EWMAConfig{
		FastAlpha: 0.4, SlowAlpha: 0.02, Threshold: 0.75,
	}), 3, 3), "healthy/control")
	false1 := 0
	detect.NewProbe(s, 1, counter, func(now, rate float64) {
		det.Observe(now, rate)
		if det.Verdict(now) == spec.PerfFaulty {
			false1++
		}
	})
	s.RunUntil(300)
	t.SetMetric("false_positive_samples", float64(false1))
	t.AddNote("healthy component with +/-5%% noise: flagged on %d of 300 samples", false1)
	return t
}

// syntheticTrace feeds a detector a healthy segment, then (optionally) a
// degraded segment, and returns (lag until first PerfFaulty verdict after
// the step, false positives during the healthy segment).
func syntheticTrace(d detect.Detector, rng *sim.RNG, healthyN int, faultN int, faultLevel float64) (lag int, falsePos int) {
	now := 0.0
	lag = -1
	for i := 0; i < healthyN; i++ {
		d.Observe(now, 100*(1+rng.Norm(0, 0.05)))
		if d.Verdict(now) == spec.PerfFaulty {
			falsePos++
		}
		now++
	}
	for i := 0; i < faultN; i++ {
		d.Observe(now, 100*faultLevel*(1+rng.Norm(0, 0.05)))
		if lag < 0 && d.Verdict(now) == spec.PerfFaulty {
			lag = i + 1
		}
		now++
	}
	return lag, falsePos
}

func runA1(cfg Config) *Table {
	t := NewTable("A1", "Detector ablation",
		"reactive detectors catch faults sooner but fire on noise",
		"detector", "detection lag (samples)", "false positives / 400 healthy")
	tel := cfg.telemetry()
	t.Telemetry = tel
	rng := sim.NewRNG(cfg.Seed).Fork("a1")
	type entry struct {
		name string
		mk   func() detect.Detector
	}
	entries := []entry{
		{"ewma fast=0.8", func() detect.Detector {
			return detect.NewEWMADetector(detect.EWMAConfig{FastAlpha: 0.8, SlowAlpha: 0.02, Threshold: 0.7})
		}},
		{"ewma fast=0.4", func() detect.Detector {
			return detect.NewEWMADetector(detect.EWMAConfig{FastAlpha: 0.4, SlowAlpha: 0.02, Threshold: 0.7})
		}},
		{"ewma fast=0.1", func() detect.Detector {
			return detect.NewEWMADetector(detect.EWMAConfig{FastAlpha: 0.1, SlowAlpha: 0.02, Threshold: 0.7})
		}},
		{"window 5", func() detect.Detector {
			return detect.NewWindowDetector(detect.WindowConfig{BaselineSamples: 50, RecentSamples: 5, Threshold: 0.7})
		}},
		{"window 25", func() detect.Detector {
			return detect.NewWindowDetector(detect.WindowConfig{BaselineSamples: 50, RecentSamples: 25, Threshold: 0.7})
		}},
		{"spec tol=0.3 + hysteresis 3", func() detect.Detector {
			return detect.NewHysteresis(detect.NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.3}), 3, 3)
		}},
		{"spec tol=0.05 (hair trigger)", func() detect.Detector {
			return detect.NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.05})
		}},
	}
	for _, e := range entries {
		lag, _ := syntheticTrace(tel.auditDetector(e.mk(), e.name+"/fault"), rng.Fork(e.name+"-fault"), 400, 100, 0.4)
		_, falsePos := syntheticTrace(tel.auditDetector(e.mk(), e.name+"/healthy"), rng.Fork(e.name+"-healthy"), 400, 0, 1)
		lagStr := fmt.Sprintf("%d", lag)
		if lag < 0 {
			lagStr = "missed"
		}
		t.AddRow(e.name, lagStr, fmt.Sprintf("%d", falsePos))
		slug := strings.NewReplacer(" ", "-", "=", "").Replace(e.name)
		t.SetMetric("lag_"+slug, float64(lag))
		t.SetMetric("fp_"+slug, float64(falsePos))
	}
	t.AddNote("fault: step to 40%% of baseline with 5%% multiplicative noise")
	return t
}

func runA3(cfg Config) *Table {
	t := NewTable("A3", "Peer-relative vs absolute-spec detection",
		"fleet-wide shifts fool absolute specs; divergent components fool neither",
		"scenario", "absolute-spec flags", "peer-relative flags")
	const n = 8
	run := func(fleetShift bool) (absFlags, peerFlags int) {
		rng := sim.NewRNG(cfg.Seed).Fork(fmt.Sprintf("a3-%v", fleetShift))
		abs := make([]detect.Detector, n)
		for i := range abs {
			abs[i] = detect.NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.3})
		}
		peers := detect.NewPeerSet(detect.PeerConfig{WindowSamples: 5, Threshold: 0.7, MinPeers: 3})
		now := 0.0
		for step := 0; step < 100; step++ {
			for i := 0; i < n; i++ {
				rate := 100 * (1 + rng.Norm(0, 0.03))
				if step >= 50 {
					if fleetShift {
						rate *= 0.5 // everyone slowed by a workload change
					} else if i == 0 {
						rate *= 0.3 // one divergent component
					}
				}
				abs[i].Observe(now, rate)
				peers.Observe(fmt.Sprintf("c%d", i), now, rate)
			}
			now++
		}
		for i := 0; i < n; i++ {
			if abs[i].Verdict(now) == spec.PerfFaulty {
				absFlags++
			}
			if peers.Verdict(fmt.Sprintf("c%d", i), now) == spec.PerfFaulty {
				peerFlags++
			}
		}
		return absFlags, peerFlags
	}
	absShift, peerShift := run(true)
	absSingle, peerSingle := run(false)
	t.AddRow("fleet-wide 50% shift (benign)", fmt.Sprintf("%d of %d", absShift, n), fmt.Sprintf("%d of %d", peerShift, n))
	t.AddRow("single component at 30%", fmt.Sprintf("%d of %d", absSingle, n), fmt.Sprintf("%d of %d", peerSingle, n))
	t.SetMetric("abs_fleet_flags", float64(absShift))
	t.SetMetric("peer_fleet_flags", float64(peerShift))
	t.SetMetric("abs_single_flags", float64(absSingle))
	t.SetMetric("peer_single_flags", float64(peerSingle))
	t.AddNote("the paper's point: a shared shift is not a component fault; peer comparison encodes that")
	return t
}

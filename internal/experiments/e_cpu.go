package experiments

import (
	"fmt"

	"failstutter/internal/device"
)

func init() {
	register(Experiment{
		ID:    "E09",
		Title: "Cache fault masking on 'identical' processors",
		PaperClaim: "chips sold as identical Vikings had caches partially " +
			"disabled (16 KB 4-way spec behaving as 4 KB direct-mapped), with " +
			"application differences up to 40% (Section 2.1.1)",
		Run: runE09,
	})
	register(Experiment{
		ID:    "E16",
		Title: "Memory hog vs interactive response",
		PaperClaim: "response time of an interactive job is up to 40 times " +
			"worse when competing with a memory-intensive process (Section 2.2.2)",
		Run: runE16,
	})
	register(Experiment{
		ID:    "E17",
		Title: "Scalar-vector memory-bank interference",
		PaperClaim: "perturbations to a vector reference stream can reduce " +
			"memory system efficiency by up to a factor of two (Section 2.2.2)",
		Run: runE17,
	})
}

func vikingCPU(masked bool) *device.CPU {
	p := device.CPUParams{
		Name:            "viking",
		ClockGHz:        0.05,
		BaseCPI:         1.2,
		MemRefsPerInstr: 0.25,
		Cache: device.CacheSpec{
			SizeKB:            16,
			Assoc:             4,
			MissPenaltyCycles: 20,
			ColdMissRate:      0.01,
			LocalityFactor:    0.12,
		},
	}
	if masked {
		p.MaskedFraction = 0.75
		p.MaskedAssoc = 1
	}
	return device.MustCPU(p)
}

func runE09(cfg Config) *Table {
	t := NewTable("E09", "Cache fault masking",
		"identical-spec parts differ up to ~40% at application level",
		"working set", "healthy (16K 4-way)", "masked (4K direct)", "slowdown")
	healthy := vikingCPU(false)
	masked := vikingCPU(true)
	maxRatio := 0.0
	for _, ws := range []float64{2, 4.5, 6, 8, 12, 16} {
		app := device.AppProfile{Instructions: 1e9, WorkingSetKB: ws}
		th := healthy.RunTime(app)
		tm := masked.RunTime(app)
		ratio := tm / th
		if ratio > maxRatio {
			maxRatio = ratio
		}
		t.AddRow(fmt.Sprintf("%.1f KB", ws),
			fmt.Sprintf("%.2f s", th),
			fmt.Sprintf("%.2f s", tm),
			fmt.Sprintf("%.0f%%", (ratio-1)*100))
		t.SetMetric(fmt.Sprintf("ratio_ws%.1f", ws), ratio)
	}
	t.SetMetric("max_slowdown", maxRatio)
	t.AddNote("max application slowdown %.0f%% (paper: up to 40%%)", (maxRatio-1)*100)
	return t
}

func runE16(cfg Config) *Table {
	t := NewTable("E16", "Memory hog",
		"interactive response up to 40x worse under memory pressure",
		"hog resident set", "free for interactive job", "response stretch")
	mem := device.MemorySystem{TotalMB: 128, PageFaultStretch: 80}
	const interactiveWs = 32
	maxStretch := 0.0
	for _, hog := range []float64{0, 64, 96, 104, 112, 120} {
		stretch := mem.ResponseStretch(interactiveWs, hog)
		if stretch > maxStretch {
			maxStretch = stretch
		}
		free := mem.TotalMB - hog
		if free < 0 {
			free = 0
		}
		t.AddRow(fmt.Sprintf("%.0f MB", hog), fmt.Sprintf("%.0f MB", free),
			fmt.Sprintf("%.1fx", stretch))
		t.SetMetric(fmt.Sprintf("stretch_hog%.0f", hog), stretch)
	}
	t.SetMetric("max_stretch", maxStretch)
	t.AddNote("interactive working set %d MB of %0.f MB total; paging costs %gx a resident access",
		interactiveWs, mem.TotalMB, mem.PageFaultStretch)
	return t
}

func runE17(cfg Config) *Table {
	t := NewTable("E17", "Scalar-vector memory interference",
		"perturbation halves memory system efficiency",
		"perturbation probability", "stream efficiency")
	v := device.VectorMemory{BankBusyCycles: 3}
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1} {
		eff := v.Efficiency(p)
		t.AddRow(fmt.Sprintf("%.0f%%", p*100), fmt.Sprintf("%.0f%%", eff*100))
		t.SetMetric(fmt.Sprintf("eff_%.0f", p*100), eff)
	}
	t.SetMetric("halving_point", 0.5)
	t.AddNote("at 50%% perturbation the stream delivers half its unperturbed bandwidth")
	return t
}

package experiments

import (
	"bytes"
	"fmt"
	"testing"
)

// telemetryArtifacts renders every telemetry artifact the CLI would write
// for one table — Chrome trace JSON, metrics JSON and CSV, audit JSON —
// concatenated into one byte string for equality checks.
func telemetryArtifacts(t *testing.T, tbl *Table) string {
	t.Helper()
	tel := tbl.Telemetry
	if tel == nil {
		return "" // not every experiment attaches telemetry
	}
	var buf bytes.Buffer
	if tel.Tracer != nil {
		if err := tel.Tracer.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("trace export: %v", err)
		}
	}
	if tel.Metrics != nil {
		if err := tel.Metrics.WriteJSON(&buf); err != nil {
			t.Fatalf("metrics JSON export: %v", err)
		}
		if err := tel.Metrics.WriteCSV(&buf); err != nil {
			t.Fatalf("metrics CSV export: %v", err)
		}
	}
	if tel.Audit != nil {
		if err := tel.Audit.WriteJSON(&buf); err != nil {
			t.Fatalf("audit export: %v", err)
		}
	}
	return buf.String()
}

// TestFleetShardCountInvariant asserts the sharded kernel's core
// contract on the fleet experiment: E32's table AND its telemetry
// artifacts are byte-identical at shard counts 1, 2, and 8, for several
// seeds. The shard count may only trade wall-clock for cores.
func TestFleetShardCountInvariant(t *testing.T) {
	e, err := Get("E32")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 42, 1337} {
		run := func(shards int) (string, string, string) {
			cfg := Config{Seed: seed, Quick: true, Trace: true, Audit: true, Metrics: true, Shards: shards}
			tbl := e.Run(cfg)
			art := telemetryArtifacts(t, tbl)
			if art == "" {
				t.Fatalf("seed %d shards %d: E32 produced no telemetry artifacts", seed, shards)
			}
			return tbl.Format(), tbl.CSV(), art
		}
		refFmt, refCSV, refArt := run(1)
		for _, shards := range []int{2, 8} {
			gotFmt, gotCSV, gotArt := run(shards)
			if gotFmt != refFmt {
				t.Errorf("seed %d: E32 table differs between -shards=1 and -shards=%d:\n--- shards=1 ---\n%s\n--- shards=%d ---\n%s",
					seed, shards, refFmt, shards, gotFmt)
			}
			if gotCSV != refCSV {
				t.Errorf("seed %d: E32 CSV differs between -shards=1 and -shards=%d", seed, shards)
			}
			if gotArt != refArt {
				t.Errorf("seed %d: E32 telemetry artifacts differ between -shards=1 and -shards=%d (%d vs %d bytes)",
					seed, shards, len(refArt), len(gotArt))
			}
		}
		if t.Failed() {
			break
		}
	}
}

// TestTracedPlanesShardCountInvariant extends the byte-identity contract
// to fully traced runs of the other sharded planes: one switch-fabric
// experiment (E10) and one cluster experiment (E23), with every
// telemetry flag on — including the profiling plane, so per-shard
// station samplers are in the loop — must emit byte-identical tables
// and artifacts at shard counts 1, 2, and 8 across several seeds.
func TestTracedPlanesShardCountInvariant(t *testing.T) {
	for _, id := range []string{"E10", "E23"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []uint64{1, 42, 1337} {
			run := func(shards int) (string, string) {
				cfg := Config{Seed: seed, Quick: true, Trace: true, Audit: true,
					Metrics: true, Profile: true, Shards: shards}
				tbl := e.Run(cfg)
				art := telemetryArtifacts(t, tbl)
				if art == "" {
					t.Fatalf("%s seed %d shards %d: no telemetry artifacts", id, seed, shards)
				}
				return tbl.Format(), art
			}
			refFmt, refArt := run(1)
			for _, shards := range []int{2, 8} {
				gotFmt, gotArt := run(shards)
				if gotFmt != refFmt {
					t.Errorf("%s seed %d: table differs between -shards=1 and -shards=%d",
						id, seed, shards)
				}
				if gotArt != refArt {
					t.Errorf("%s seed %d: traced artifacts differ between -shards=1 and -shards=%d (%d vs %d bytes)",
						id, seed, shards, len(refArt), len(gotArt))
				}
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestFleetScenarioShardCountInvariant checks RunFleetScenario's result
// struct directly — every field, including the per-sweep flagged series —
// across a shard-count spread that includes counts that do not divide the
// fleet evenly.
func TestFleetScenarioShardCountInvariant(t *testing.T) {
	for _, seed := range []uint64{1, 42, 1337} {
		ref := RunFleetScenario(FleetParams{Disks: 2048, Shards: 1, Seed: seed})
		if ref.InjectedStutter+ref.InjectedFail == 0 {
			t.Fatalf("seed %d: no faults injected — fleet too small to exercise detection", seed)
		}
		for _, shards := range []int{2, 3, 8} {
			got := RunFleetScenario(FleetParams{Disks: 2048, Shards: shards, Seed: seed})
			if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", ref) {
				t.Errorf("seed %d: fleet result differs at shards=%d:\n shards=1: %+v\n shards=%d: %+v",
					seed, shards, ref, shards, got)
			}
		}
	}
}

// TestRunAllShardCountInvariant extends the determinism suite across the
// shard axis: the full registry's tables and metrics artifacts must be
// byte-identical for -shards=1 and -shards=8 at the reference seed.
// Experiments off the sharded kernel must ignore the setting entirely;
// the sharded planes — the fleet (E32), the switch fabric (E10–E12),
// and the cluster (E14/E15/E23/E24/E29) — must honor it without
// observable effect.
func TestRunAllShardCountInvariant(t *testing.T) {
	run := func(shards int) []*Table {
		return RunAll(Config{Seed: 42, Quick: true, Metrics: true, Shards: shards}, 4)
	}
	ref := run(1)
	got := run(8)
	if len(ref) != len(got) {
		t.Fatalf("table count differs: %d vs %d", len(ref), len(got))
	}
	for i := range ref {
		if gotF, refF := got[i].Format(), ref[i].Format(); gotF != refF {
			t.Errorf("experiment %s table differs between -shards=1 and -shards=8:\n--- shards=1 ---\n%s\n--- shards=8 ---\n%s",
				ref[i].ID, refF, gotF)
		}
		if gotA, refA := telemetryArtifacts(t, got[i]), telemetryArtifacts(t, ref[i]); gotA != refA {
			t.Errorf("experiment %s metrics artifacts differ between -shards=1 and -shards=8", ref[i].ID)
		}
	}
}

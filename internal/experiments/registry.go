package experiments

import (
	"fmt"
	"runtime"
	"sort"
)

// Config parameterizes a run of the suite.
type Config struct {
	// Seed drives every random stream; identical seeds reproduce
	// identical virtual-time results exactly.
	Seed uint64
	// Quick shrinks workload sizes and wall-clock durations so the full
	// suite runs in seconds — used by tests and benches. Full runs (the
	// CLI default) use the paper-scale parameters.
	Quick bool
	// Trace records causal spans for each experiment's simulations,
	// exportable as Chrome trace-event JSON via Table.Telemetry.
	Trace bool
	// Audit records every verdict state-machine decision with evidence.
	Audit bool
	// Metrics records labeled counters/histograms/series in a registry.
	Metrics bool
	// Profile enables the profiling plane: implies Trace and Metrics,
	// and additionally samples station occupancy (queue depth, backlog)
	// on every transition so the profiler can reconstruct queue
	// profiles. Critical-path, folded-stack, and SLO artifacts derive
	// from the resulting telemetry.
	Profile bool
	// Shards is the shard count for experiments that run on the sharded
	// parallel kernel (currently the E32 fleet experiment); 0 means one
	// shard per core. Tables and telemetry are byte-identical at any
	// value — the setting only trades wall-clock for cores.
	Shards int
}

// ShardCount resolves the Shards setting: the configured count, or
// GOMAXPROCS when unset.
func (cfg Config) ShardCount() int {
	if cfg.Shards > 0 {
		return cfg.Shards
	}
	return runtime.GOMAXPROCS(0)
}

// Observability reports whether any telemetry flag is set.
func (cfg Config) Observability() bool {
	return cfg.Trace || cfg.Audit || cfg.Metrics || cfg.Profile
}

// Experiment is one registered reproduction. Every experiment runs on its
// own virtual-time simulator, so results are deterministic and RunAll may
// fan experiments across workers freely.
type Experiment struct {
	ID         string
	Title      string
	PaperClaim string
	Run        func(cfg Config) *Table
}

var registry = map[string]Experiment{}

// register adds an experiment at package init; duplicate ids panic.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %s", e.ID))
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e, nil
}

// All returns every experiment, ordered by id (the E-series then the
// A-series ablations).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// E-series before A-series, numeric within series.
		pi, pj := out[i].ID[0], out[j].ID[0]
		if pi != pj {
			return pi == 'E'
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// IDs returns every registered id in display order.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

package experiments

import (
	"fmt"
	"runtime"
	"sort"

	"failstutter/internal/sim"
)

// Config parameterizes a run of the suite.
type Config struct {
	// Seed drives every random stream; identical seeds reproduce
	// identical virtual-time results exactly.
	Seed uint64
	// Quick shrinks workload sizes and wall-clock durations so the full
	// suite runs in seconds — used by tests and benches. Full runs (the
	// CLI default) use the paper-scale parameters.
	Quick bool
	// Trace records causal spans for each experiment's simulations,
	// exportable as Chrome trace-event JSON via Table.Telemetry.
	Trace bool
	// Audit records every verdict state-machine decision with evidence.
	Audit bool
	// Metrics records labeled counters/histograms/series in a registry.
	Metrics bool
	// Profile enables the profiling plane: implies Trace and Metrics,
	// and additionally samples station occupancy (queue depth, backlog)
	// on every transition so the profiler can reconstruct queue
	// profiles. Critical-path, folded-stack, and SLO artifacts derive
	// from the resulting telemetry.
	Profile bool
	// Shards is the shard count for experiments that run on the sharded
	// parallel kernel — the fleet (E32), the switch fabric (E10–E12), and
	// the cluster plane (E14/E15/E23/E24/E29); 0 means one shard per
	// core. Tables and telemetry are byte-identical at any value — the
	// setting only trades wall-clock for cores.
	Shards int
	// SweepWorkers sizes the barrier worker pool experiments fan
	// fleet-wide sweeps across (E32); 0 means GOMAXPROCS. Like Shards, the
	// setting only trades wall-clock for cores — output is byte-identical
	// at any value.
	SweepWorkers int
	// ObserveBarrier, when non-nil, receives every sharded kernel's
	// post-run barrier cost profile, tagged with a run label. Setting it
	// enables the kernel's profile counters at construction. `fstutter
	// profile` uses the hook to build the barrier report; everything in
	// the stats is deterministic except the two wall-clock nanosecond
	// fields.
	ObserveBarrier func(run string, st sim.BarrierStats, perShard []uint64)
}

// ShardCount resolves the Shards setting: the configured count, or
// GOMAXPROCS when unset.
func (cfg Config) ShardCount() int {
	if cfg.Shards > 0 {
		return cfg.Shards
	}
	return runtime.GOMAXPROCS(0)
}

// newSharded builds a sharded kernel for an experiment, enabling the
// barrier cost counters when a profile hook is installed (they must be
// on before the run; collection costs two clock reads per window).
func (cfg Config) newSharded(shards int, lookahead sim.Duration) *sim.ShardedSimulator {
	ss := sim.NewSharded(shards, lookahead)
	if cfg.ObserveBarrier != nil {
		ss.Profile()
	}
	return ss
}

// observeBarrier reports one sharded kernel's post-run barrier profile
// to the configured hook, if any.
func (cfg Config) observeBarrier(run string, ss *sim.ShardedSimulator) {
	if cfg.ObserveBarrier != nil {
		cfg.ObserveBarrier(run, *ss.Profile(), ss.PerShardFired())
	}
}

// Observability reports whether any telemetry flag is set.
func (cfg Config) Observability() bool {
	return cfg.Trace || cfg.Audit || cfg.Metrics || cfg.Profile
}

// Experiment is one registered reproduction. Every experiment runs on its
// own virtual-time simulator, so results are deterministic and RunAll may
// fan experiments across workers freely.
type Experiment struct {
	ID         string
	Title      string
	PaperClaim string
	Run        func(cfg Config) *Table
}

var registry = map[string]Experiment{}

// register adds an experiment at package init; duplicate ids panic.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %s", e.ID))
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e, nil
}

// All returns every experiment, ordered by id (the E-series then the
// A-series ablations).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// E-series before A-series, numeric within series.
		pi, pj := out[i].ID[0], out[j].ID[0]
		if pi != pj {
			return pi == 'E'
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// IDs returns every registered id in display order.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

package experiments

import (
	"fmt"
	"sort"

	"failstutter/internal/device"
	"failstutter/internal/faults"
	"failstutter/internal/sim"
	"failstutter/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E27",
		Title: "Non-deterministic run times on one processor",
		PaperClaim: "a program, executed twice on the same processor under " +
			"identical conditions, has run times that vary by up to a factor " +
			"of three (Kushman's UltraSPARC study, Section 2.1.1)",
		Run: runE27,
	})
	register(Experiment{
		ID:    "E28",
		Title: "Repeated-measurement variance under background interference",
		PaperClaim: "typically a cluster of measurements gave near-peak " +
			"results, while the other measurements were spread relatively " +
			"widely down to as low as 15-20% of peak performance (Vesta, " +
			"Section 2.1.2)",
		Run: runE28,
	})
}

func runE27(cfg Config) *Table {
	trials := int(scale(cfg, 200, 2000))
	t := NewTable("E27", "Non-deterministic run times",
		"identical executions vary up to 3x from predictor-state pathologies",
		"statistic", "run-time multiplier")
	pred := device.FetchPredictor{PathologyRange: 3}
	rng := sim.NewRNG(cfg.Seed).Fork("e27")
	factors := make([]float64, trials)
	for i := range factors {
		factors[i] = pred.RunFactor(rng.Float64())
	}
	sort.Float64s(factors)
	// Already sorted: read the quantiles straight off rather than paying
	// stats.Quantile's copy-and-resort.
	med := stats.QuantileSorted(factors, 0.5)
	p95 := stats.QuantileSorted(factors, 0.95)
	worst := factors[len(factors)-1]
	t.AddRow("median", fmt.Sprintf("%.2fx", med))
	t.AddRow("95th percentile", fmt.Sprintf("%.2fx", p95))
	t.AddRow("worst observed", fmt.Sprintf("%.2fx", worst))
	t.SetMetric("median", med)
	t.SetMetric("p95", p95)
	t.SetMetric("worst", worst)
	t.AddNote("%d executions of one binary on one simulated UltraSPARC; most runs sit near 1x, the tail reaches the pathological alignments", trials)
	return t
}

func runE28(cfg Config) *Table {
	trials := int(scale(cfg, 30, 120))
	t := NewTable("E28", "Repeated-measurement variance",
		"a cluster of near-peak measurements plus a wide low tail",
		"statistic", "fraction of peak")
	rng := sim.NewRNG(cfg.Seed).Fork("e28")
	const bytesPerTrial = 8e6
	measure := func(interfere bool) float64 {
		s := sim.New()
		srv := sim.NewStation(s, "fileserver", 5.5e6)
		if interfere {
			// An unlucky trial shares the server with co-scheduled load:
			// one or two interference bursts of random depth and length.
			comp := faults.NewComposite(srv)
			bursts := 1 + rng.Intn(3)
			for b := 0; b < bursts; b++ {
				start := rng.Uniform(0, 1.2)
				length := rng.Uniform(0.5, 3.0)
				depth := rng.Uniform(0.02, 0.35)
				faults.Interval{Start: start, End: start + length, Factor: depth}.Install(s, comp)
			}
		}
		var makespan float64
		srv.SubmitFunc(bytesPerTrial, func(r *sim.Request) {
			makespan = r.Latency()
			s.Stop()
		})
		s.Run()
		return bytesPerTrial / makespan
	}
	peak := measure(false)
	fracs := make([]float64, trials)
	for i := range fracs {
		// The Vesta pattern: most trials run unloaded, a minority collide
		// with background activity.
		interfere := rng.Float64() < 0.35
		fracs[i] = measure(interfere) / peak
	}
	sort.Float64s(fracs)
	nearPeak := 0
	for _, f := range fracs {
		if f > 0.9 {
			nearPeak++
		}
	}
	medianFrac := stats.QuantileSorted(fracs, 0.5) // fracs is already sorted
	t.AddRow("best", fmt.Sprintf("%.0f%%", fracs[len(fracs)-1]*100))
	t.AddRow("median", fmt.Sprintf("%.0f%%", medianFrac*100))
	t.AddRow("worst", fmt.Sprintf("%.0f%%", fracs[0]*100))
	t.AddRow("trials above 90% of peak", fmt.Sprintf("%d of %d", nearPeak, trials))
	t.SetMetric("best_frac", fracs[len(fracs)-1])
	t.SetMetric("median_frac", medianFrac)
	t.SetMetric("worst_frac", fracs[0])
	t.SetMetric("near_peak_count", float64(nearPeak))
	t.AddNote("each trial times an identical %0.f MB read; interference bursts model co-scheduled cluster load", bytesPerTrial/1e6)
	return t
}

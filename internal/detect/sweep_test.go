package detect

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"failstutter/internal/spec"
)

// testPool is a throwaway Parallel executor for tests: real goroutines,
// no reuse machinery, so the tests exercise the sweep engine's contract
// without depending on the sim package's pool.
type testPool struct{ n int }

func (p testPool) Workers() int { return p.n }
func (p testPool) Do(fn func(worker int)) {
	var wg sync.WaitGroup
	for w := 1; w < p.n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	fn(0)
	wg.Wait()
}

// TestSweepMatchesSerial drives two identical fleets — one through the
// per-id Observe/Verdict path, one through SweepObserve/SweepVerdicts on
// a multi-worker pool — and requires identical verdicts and flag counts
// at every sweep. Fleet sizes straddle the incremental cutoff and the
// parallel-rebuild threshold so every maintenance mode is crossed.
func TestSweepMatchesSerial(t *testing.T) {
	for _, peers := range []int{64, peerIncrementalCutoff + 50, peerParallelRebuildMin + 100} {
		for _, workers := range []int{1, 2, 3, 8} {
			t.Run(fmt.Sprintf("peers=%d/workers=%d", peers, workers), func(t *testing.T) {
				cfg := PeerConfig{WindowSamples: 4, Threshold: 0.7, MinPeers: 4, PromotionTimeout: 2.5}
				serial := NewPeerSet(cfg)
				swept := NewPeerSet(cfg)
				ids := make([]string, peers)
				for i := range ids {
					ids[i] = fmt.Sprintf("d%05d", i)
					if got := swept.Register(ids[i]); got != i {
						t.Fatalf("Register(%q) = %d, want dense index %d", ids[i], got, i)
					}
				}
				if swept.MemberCount() != peers {
					t.Fatalf("MemberCount() = %d, want %d", swept.MemberCount(), peers)
				}
				pool := testPool{n: workers}
				rng := rand.New(rand.NewSource(int64(peers)))
				rates := make([]float64, peers)
				verdicts := make([]spec.Verdict, peers)
				for round := 0; round < 8; round++ {
					now := float64(round + 1)
					for i := range rates {
						r := 90 + 20*rng.Float64()
						switch {
						case i%53 == 0 && round >= 3:
							r *= 0.2 // persistent stragglers
						case i%71 == 0 && round >= 4:
							r = 0 // silent members heading for promotion
						}
						rates[i] = r
					}
					for i, id := range ids {
						serial.Observe(id, now, rates[i])
					}
					swept.SweepObserve(pool, now, rates)
					flagged := swept.SweepVerdicts(pool, now, verdicts)
					count := 0
					for i, id := range ids {
						want := serial.Verdict(id, now)
						if verdicts[i] != want {
							t.Fatalf("round %d member %d: sweep verdict %v, serial %v", round, i, verdicts[i], want)
						}
						if want != spec.Nominal {
							count++
						}
					}
					if flagged != count {
						t.Fatalf("round %d: sweep flag count %d, serial %d", round, flagged, count)
					}
				}
			})
		}
	}
}

// TestSweepThenObserveKeepsMirrorConsistent interleaves a sweep with
// later per-id Observe calls on a small fleet: the sweep defers mirror
// maintenance, so a subsequent incremental Observe must not corrupt the
// stale mirror. Verdicts after the mix must match a serially-driven twin.
func TestSweepThenObserveKeepsMirrorConsistent(t *testing.T) {
	cfg := PeerConfig{WindowSamples: 3, Threshold: 0.7, MinPeers: 4}
	mixed := NewPeerSet(cfg)
	serial := NewPeerSet(cfg)
	const peers = 40
	ids := make([]string, peers)
	rates := make([]float64, peers)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%03d", i)
		mixed.Register(ids[i])
		rates[i] = 100 + float64(i%7)
	}
	rates[7] = 10 // one straggler
	mixed.SweepObserve(testPool{n: 4}, 1, rates)
	for i, id := range ids {
		serial.Observe(id, 1, rates[i])
	}
	// Per-id observes after the sweep: the dirty mirror must survive them.
	for i, id := range ids {
		mixed.Observe(id, 2, rates[i])
		serial.Observe(id, 2, rates[i])
	}
	for _, id := range ids {
		if got, want := mixed.Verdict(id, 2), serial.Verdict(id, 2); got != want {
			t.Fatalf("member %s after sweep+observe mix: verdict %v, want %v", id, got, want)
		}
	}
}

// TestParallelRebuildBitIdentical is the merge-rebuild property test: on
// fleets of 10k random streams, the parallel sorted-run merge must
// reproduce the serial rebuild's mirror bit for bit (math.Float64bits
// equality, not approximate), at every worker count.
func TestParallelRebuildBitIdentical(t *testing.T) {
	const peers = 10_000
	for trial := 0; trial < 3; trial++ {
		cfg := PeerConfig{WindowSamples: 4, Threshold: 0.7, MinPeers: 4}
		a := NewPeerSet(cfg)
		b := NewPeerSet(cfg)
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		rates := make([]float64, peers)
		for i := 0; i < peers; i++ {
			id := fmt.Sprintf("s%05d", i)
			a.Register(id)
			b.Register(id)
		}
		for round := 0; round < 3; round++ {
			for i := range rates {
				// Quantized rates force plenty of exact duplicates — the
				// stress case for merge tie-breaking.
				rates[i] = math.Floor(rng.Float64()*64) / 8
			}
			a.SweepObserve(Serial, float64(round), rates)
			b.SweepObserve(Serial, float64(round), rates)
		}
		a.rebuildMeds()
		for _, workers := range []int{2, 3, 5, 8, 16} {
			b.medsDirty = true
			b.rebuildMedsParallel(testPool{n: workers})
			if len(a.meds) != len(b.meds) {
				t.Fatalf("trial %d workers %d: mirror lengths differ (%d vs %d)",
					trial, workers, len(a.meds), len(b.meds))
			}
			for i := range a.meds {
				if math.Float64bits(a.meds[i]) != math.Float64bits(b.meds[i]) {
					t.Fatalf("trial %d workers %d: mirror[%d] differs: serial %v, parallel %v",
						trial, workers, i, a.meds[i], b.meds[i])
				}
			}
			if b.medsDirty {
				t.Fatalf("trial %d workers %d: parallel rebuild left the mirror dirty", trial, workers)
			}
		}
	}
}

// TestSweepSizePanics pins the engine's length contracts.
func TestSweepSizePanics(t *testing.T) {
	p := NewPeerSet(PeerConfig{WindowSamples: 2, Threshold: 0.5, MinPeers: 2})
	p.Register("a")
	p.Register("b")
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic on mismatched slice length", name)
			}
		}()
		fn()
	}
	expectPanic("SweepObserve", func() { p.SweepObserve(nil, 1, make([]float64, 3)) })
	expectPanic("SweepVerdicts", func() { p.SweepVerdicts(nil, 1, make([]spec.Verdict, 1)) })
}

// BenchmarkPeerSetParallelSweep times one full monitoring sweep — observe
// every member, classify every member — at fleet sizes 2^14 and 2^20
// across worker counts. ns/op divided by fleet size is the per-disk
// sweep cost the tentpole optimizes.
func BenchmarkPeerSetParallelSweep(b *testing.B) {
	for _, peers := range []int{1 << 14, 1 << 20} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("P=%d/w=%d", peers, workers), func(b *testing.B) {
				p := NewPeerSet(PeerConfig{WindowSamples: 4, Threshold: 0.7, MinPeers: 4})
				rates := make([]float64, peers)
				verdicts := make([]spec.Verdict, peers)
				for i := 0; i < peers; i++ {
					p.Register(fmt.Sprintf("disk%07d", i))
				}
				pool := testPool{n: workers}
				for k := 0; k < 4; k++ {
					for i := range rates {
						rates[i] = 100 + float64((i+k)%13)
					}
					p.SweepObserve(pool, float64(k), rates)
				}
				p.SweepVerdicts(pool, 3, verdicts)
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					now := float64(4 + n)
					for i := range rates {
						rate := 100 + float64((i+n)%13)
						if i%1000 == 0 {
							rate = 5
						}
						rates[i] = rate
					}
					p.SweepObserve(pool, now, rates)
					if p.SweepVerdicts(pool, now, verdicts) == 0 {
						b.Fatal("sweep flagged nothing; straggler injection broken")
					}
				}
			})
		}
	}
}

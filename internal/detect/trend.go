package detect

import (
	"fmt"
	"math"

	"failstutter/internal/spec"
	"failstutter/internal/stats"
)

// TrendConfig parameterizes a TrendDetector.
type TrendConfig struct {
	// WindowSamples is how many recent (time, rate) points the robust
	// slope is fitted over.
	WindowSamples int
	// DeclineFrac is the sustained fractional decline per window that
	// fires the detector: with 0.1, losing 10% of the window-median rate
	// over one window span is a performance fault in the making.
	DeclineFrac float64
	// PromotionTimeout promotes sustained silence; zero disables.
	PromotionTimeout float64
}

// TrendDetector flags components whose rate is *declining*, not merely
// low: the Theil-Sen slope over a sliding window is compared against a
// fraction of the window's median level. It is the "erratic performance
// may be an early indicator of impending failure" detector — a healthy
// but slow component never fires, a wearing-out component fires while
// still inside its tolerance band, buying replacement lead time.
//
// The W*(W-1)/2 pairwise slopes are cached in a bounded ring: each
// observation computes only the W-1 slopes to the new point (the slopes
// of the evicted point expire in place), and the median of slopes runs
// as a quickselect over a reusable scratch buffer, cached between
// observations. The estimate is the exact Theil-Sen median — identical
// to recomputing all pairs and sorting — at O(W) incremental cost and
// zero steady-state allocation.
type TrendDetector struct {
	cfg          TrendConfig
	times        *stats.Window
	rates        *stats.Window
	lastProgress float64
	sawAnything  bool

	step    int       // total observations so far = index of the next point
	pairs   []float64 // W rows x (W-1) cols: slope(point r, older point s)
	zeroDX  int       // live pairs with zero time delta (skipped by the estimate)
	scratch []float64 // reusable buffer for the median-of-slopes quickselect
	slope   float64   // cached Slope() result; valid while slopeOK
	slopeOK bool
}

// NewTrendDetector validates cfg and builds the detector.
func NewTrendDetector(cfg TrendConfig) *TrendDetector {
	if cfg.WindowSamples < 4 || cfg.DeclineFrac <= 0 || cfg.PromotionTimeout < 0 {
		panic(fmt.Sprintf("detect: invalid trend config %+v", cfg))
	}
	w := cfg.WindowSamples
	return &TrendDetector{
		cfg:     cfg,
		times:   stats.NewWindow(w),
		rates:   stats.NewWindow(w),
		pairs:   make([]float64, w*(w-1)),
		scratch: make([]float64, 0, w*(w-1)/2),
	}
}

// row returns the slope-cache row for global point index p: the slopes
// from p to each older point s, stored at column s-p+W-1.
func (d *TrendDetector) row(p int) []float64 {
	w := d.cfg.WindowSamples
	return d.pairs[(p%w)*(w-1):][: w-1 : w-1]
}

// Observe implements Detector.
func (d *TrendDetector) Observe(now, rate float64) {
	if !d.sawAnything {
		d.lastProgress = now
		d.sawAnything = true
	}
	if rate > 0 {
		d.lastProgress = now
	}
	w := d.cfg.WindowSamples
	t := d.step
	// The point evicted by this observation takes its pairs with it;
	// settle its zero-dx accounting before the windows advance.
	if t >= w && d.zeroDX > 0 {
		oldTime := d.times.At(0)
		for i := 1; i < d.times.Len(); i++ {
			if d.times.At(i) == oldTime {
				d.zeroDX--
			}
		}
	}
	d.times.Observe(now)
	d.rates.Observe(rate)
	// Cache the slope from every surviving older point to the new one.
	n := d.times.Len()
	row := d.row(t)
	for i := 0; i < n-1; i++ {
		x := d.times.At(i)
		s := t - (n - 1) + i // global index of the i-th oldest point
		if now == x {
			d.zeroDX++
		}
		row[s-t+w-1] = (rate - d.rates.At(i)) / (now - x)
	}
	d.step++
	d.slopeOK = false
}

// Slope returns the current robust rate slope (units/s per second), or
// NaN before at least two distinct-time points arrive. The value is
// computed lazily and cached until the next observation.
func (d *TrendDetector) Slope() float64 {
	if !d.slopeOK {
		d.slope = d.computeSlope()
		d.slopeOK = true
	}
	return d.slope
}

// computeSlope gathers the live cached slopes into the scratch buffer
// and takes their median in place — the exact Theil-Sen estimate.
func (d *TrendDetector) computeSlope() float64 {
	n := d.times.Len()
	if n < 2 {
		return math.NaN()
	}
	w := d.cfg.WindowSamples
	newest := d.step - 1
	oldest := d.step - n
	buf := d.scratch[:0]
	if d.zeroDX == 0 {
		// Fast path: every pair is valid; each row's live suffix copies over
		// wholesale.
		for p := oldest + 1; p <= newest; p++ {
			row := d.row(p)
			buf = append(buf, row[oldest-p+w-1:]...)
		}
	} else {
		for p := oldest + 1; p <= newest; p++ {
			row := d.row(p)
			tp := d.times.At(p - oldest)
			for s := oldest; s < p; s++ {
				if d.times.At(s-oldest) == tp {
					continue // zero time delta: no defined slope
				}
				buf = append(buf, row[s-p+w-1])
			}
		}
	}
	if len(buf) == 0 {
		return math.NaN()
	}
	return stats.MedianInPlace(buf)
}

// Verdict implements Detector.
func (d *TrendDetector) Verdict(now float64) spec.Verdict {
	if !d.sawAnything {
		return spec.Nominal
	}
	if d.cfg.PromotionTimeout > 0 && now-d.lastProgress > d.cfg.PromotionTimeout {
		return spec.AbsoluteFaulty
	}
	if !d.times.Full() {
		return spec.Nominal
	}
	span := d.times.At(d.times.Len()-1) - d.times.At(0)
	if span <= 0 {
		return spec.Nominal
	}
	level := d.rates.Median()
	if level <= 0 {
		return spec.PerfFaulty // the whole window is silence
	}
	slope := d.Slope()
	// Fire when the fitted decline across one window span exceeds the
	// configured fraction of the current level.
	if -slope*span > d.cfg.DeclineFrac*level {
		return spec.PerfFaulty
	}
	return spec.Nominal
}

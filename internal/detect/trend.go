package detect

import (
	"fmt"

	"failstutter/internal/spec"
	"failstutter/internal/stats"
)

// TrendConfig parameterizes a TrendDetector.
type TrendConfig struct {
	// WindowSamples is how many recent (time, rate) points the robust
	// slope is fitted over.
	WindowSamples int
	// DeclineFrac is the sustained fractional decline per window that
	// fires the detector: with 0.1, losing 10% of the window-median rate
	// over one window span is a performance fault in the making.
	DeclineFrac float64
	// PromotionTimeout promotes sustained silence; zero disables.
	PromotionTimeout float64
}

// TrendDetector flags components whose rate is *declining*, not merely
// low: the Theil-Sen slope over a sliding window is compared against a
// fraction of the window's median level. It is the "erratic performance
// may be an early indicator of impending failure" detector — a healthy
// but slow component never fires, a wearing-out component fires while
// still inside its tolerance band, buying replacement lead time.
type TrendDetector struct {
	cfg          TrendConfig
	times        *stats.Window
	rates        *stats.Window
	lastProgress float64
	sawAnything  bool
}

// NewTrendDetector validates cfg and builds the detector.
func NewTrendDetector(cfg TrendConfig) *TrendDetector {
	if cfg.WindowSamples < 4 || cfg.DeclineFrac <= 0 || cfg.PromotionTimeout < 0 {
		panic(fmt.Sprintf("detect: invalid trend config %+v", cfg))
	}
	return &TrendDetector{
		cfg:   cfg,
		times: stats.NewWindow(cfg.WindowSamples),
		rates: stats.NewWindow(cfg.WindowSamples),
	}
}

// Observe implements Detector.
func (d *TrendDetector) Observe(now, rate float64) {
	if !d.sawAnything {
		d.lastProgress = now
		d.sawAnything = true
	}
	if rate > 0 {
		d.lastProgress = now
	}
	d.times.Observe(now)
	d.rates.Observe(rate)
}

// Slope returns the current robust rate slope (units/s per second), or
// NaN before the window fills.
func (d *TrendDetector) Slope() float64 {
	return stats.TheilSen(d.times.Values(), d.rates.Values())
}

// Verdict implements Detector.
func (d *TrendDetector) Verdict(now float64) spec.Verdict {
	if !d.sawAnything {
		return spec.Nominal
	}
	if d.cfg.PromotionTimeout > 0 && now-d.lastProgress > d.cfg.PromotionTimeout {
		return spec.AbsoluteFaulty
	}
	if !d.times.Full() {
		return spec.Nominal
	}
	ts := d.times.Values()
	span := ts[len(ts)-1] - ts[0]
	if span <= 0 {
		return spec.Nominal
	}
	level := d.rates.Median()
	if level <= 0 {
		return spec.PerfFaulty // the whole window is silence
	}
	slope := d.Slope()
	// Fire when the fitted decline across one window span exceeds the
	// configured fraction of the current level.
	if -slope*span > d.cfg.DeclineFrac*level {
		return spec.PerfFaulty
	}
	return spec.Nominal
}

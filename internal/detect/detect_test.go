package detect

import (
	"math"
	"testing"

	"failstutter/internal/spec"
)

func feedConstant(d Detector, from, to, step, rate float64) float64 {
	now := from
	for ; now <= to; now += step {
		d.Observe(now, rate)
	}
	return now - step
}

func TestSpecDetector(t *testing.T) {
	d := NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.2, PromotionTimeout: 10})
	d.Observe(0, 100)
	if v := d.Verdict(1); v != spec.Nominal {
		t.Fatalf("verdict = %v", v)
	}
	d.Observe(2, 50)
	if v := d.Verdict(3); v != spec.PerfFaulty {
		t.Fatalf("verdict = %v", v)
	}
	if d.Deficit() != 0.5 {
		t.Fatalf("deficit = %v", d.Deficit())
	}
	d.Observe(4, 0)
	if v := d.Verdict(20); v != spec.AbsoluteFaulty {
		t.Fatalf("promotion missing: %v", v)
	}
}

func TestEWMAConfigValidate(t *testing.T) {
	bad := []EWMAConfig{
		{FastAlpha: 0, SlowAlpha: 0.1, Threshold: 0.5},
		{FastAlpha: 0.5, SlowAlpha: 0, Threshold: 0.5},
		{FastAlpha: 0.1, SlowAlpha: 0.5, Threshold: 0.5}, // slow > fast
		{FastAlpha: 0.5, SlowAlpha: 0.1, Threshold: 1},
		{FastAlpha: 0.5, SlowAlpha: 0.1, Threshold: 0.5, PromotionTimeout: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	good := EWMAConfig{FastAlpha: 0.5, SlowAlpha: 0.05, Threshold: 0.7, PromotionTimeout: 5}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestEWMADetectorFlagsDrop(t *testing.T) {
	d := NewEWMADetector(EWMAConfig{FastAlpha: 0.5, SlowAlpha: 0.02, Threshold: 0.7})
	now := feedConstant(d, 0, 50, 1, 100)
	if v := d.Verdict(now); v != spec.Nominal {
		t.Fatalf("healthy verdict = %v", v)
	}
	// Sustained 50% drop: fast EWMA tracks down quickly, slow baseline
	// lags, detector fires.
	for i := 0; i < 10; i++ {
		now++
		d.Observe(now, 50)
	}
	if v := d.Verdict(now); v != spec.PerfFaulty {
		t.Fatalf("dropped verdict = %v (recent %v baseline %v)", v, d.Recent(), d.Baseline())
	}
}

func TestEWMADetectorIgnoresSingleBlip(t *testing.T) {
	d := NewEWMADetector(EWMAConfig{FastAlpha: 0.2, SlowAlpha: 0.02, Threshold: 0.6})
	now := feedConstant(d, 0, 50, 1, 100)
	now++
	d.Observe(now, 40) // one bad sample: fast moves to 88, above 0.6*baseline
	if v := d.Verdict(now); v != spec.Nominal {
		t.Fatalf("single blip fired detector: %v", v)
	}
}

func TestEWMADetectorPromotion(t *testing.T) {
	d := NewEWMADetector(EWMAConfig{FastAlpha: 0.5, SlowAlpha: 0.05, Threshold: 0.7, PromotionTimeout: 5})
	now := feedConstant(d, 0, 10, 1, 100)
	for i := 0; i < 3; i++ {
		now++
		d.Observe(now, 0)
	}
	if v := d.Verdict(now + 10); v != spec.AbsoluteFaulty {
		t.Fatalf("silent component not promoted: %v", v)
	}
}

func TestEWMADetectorRecovery(t *testing.T) {
	d := NewEWMADetector(EWMAConfig{FastAlpha: 0.5, SlowAlpha: 0.05, Threshold: 0.7})
	now := feedConstant(d, 0, 30, 1, 100)
	for i := 0; i < 5; i++ {
		now++
		d.Observe(now, 30)
	}
	if v := d.Verdict(now); v != spec.PerfFaulty {
		t.Fatalf("not faulty during drop: %v", v)
	}
	for i := 0; i < 20; i++ {
		now++
		d.Observe(now, 100)
	}
	if v := d.Verdict(now); v != spec.Nominal {
		t.Fatalf("did not recover: %v", v)
	}
}

func TestEWMADetectorBeforeData(t *testing.T) {
	d := NewEWMADetector(EWMAConfig{FastAlpha: 0.5, SlowAlpha: 0.05, Threshold: 0.7})
	if v := d.Verdict(100); v != spec.Nominal {
		t.Fatalf("unobserved verdict = %v", v)
	}
}

func TestWindowDetectorGaugeThenDetect(t *testing.T) {
	d := NewWindowDetector(WindowConfig{BaselineSamples: 10, RecentSamples: 5, Threshold: 0.7})
	now := 0.0
	for i := 0; i < 10; i++ {
		d.Observe(now, 100)
		now++
	}
	if !d.Gauged() {
		t.Fatal("not gauged after baseline samples")
	}
	if d.Baseline() != 100 {
		t.Fatalf("baseline = %v", d.Baseline())
	}
	for i := 0; i < 5; i++ {
		d.Observe(now, 100)
		now++
	}
	if v := d.Verdict(now); v != spec.Nominal {
		t.Fatalf("healthy verdict = %v", v)
	}
	for i := 0; i < 5; i++ {
		d.Observe(now, 40)
		now++
	}
	if v := d.Verdict(now); v != spec.PerfFaulty {
		t.Fatalf("degraded verdict = %v", v)
	}
}

func TestWindowDetectorMedianRobustness(t *testing.T) {
	d := NewWindowDetector(WindowConfig{BaselineSamples: 4, RecentSamples: 5, Threshold: 0.7})
	now := 0.0
	for i := 0; i < 4; i++ {
		d.Observe(now, 100)
		now++
	}
	// Two outliers in a window of five: median still healthy.
	for _, r := range []float64{100, 0, 100, 0, 100} {
		d.Observe(now, r)
		now++
	}
	if v := d.Verdict(now); v != spec.Nominal {
		t.Fatalf("minority outliers fired detector: %v", v)
	}
}

func TestWindowDetectorUngaugedNominal(t *testing.T) {
	d := NewWindowDetector(WindowConfig{BaselineSamples: 100, RecentSamples: 5, Threshold: 0.7})
	d.Observe(0, 10)
	if v := d.Verdict(1); v != spec.Nominal {
		t.Fatalf("ungauged verdict = %v", v)
	}
	if !math.IsNaN(d.Baseline()) {
		t.Fatal("ungauged baseline not NaN")
	}
}

func TestPeerSetFlagsDivergentMember(t *testing.T) {
	p := NewPeerSet(PeerConfig{WindowSamples: 5, Threshold: 0.6, MinPeers: 3})
	now := 0.0
	for i := 0; i < 10; i++ {
		p.Observe("a", now, 100)
		p.Observe("b", now, 100)
		p.Observe("c", now, 100)
		p.Observe("slow", now, 30)
		now++
	}
	if v := p.Verdict("slow", now); v != spec.PerfFaulty {
		t.Fatalf("divergent member verdict = %v", v)
	}
	for _, id := range []string{"a", "b", "c"} {
		if v := p.Verdict(id, now); v != spec.Nominal {
			t.Fatalf("healthy member %s verdict = %v", id, v)
		}
	}
}

func TestPeerSetQuietOnFleetWideShift(t *testing.T) {
	// The key property: when the whole fleet slows (workload change), no
	// one is flagged.
	p := NewPeerSet(PeerConfig{WindowSamples: 5, Threshold: 0.6, MinPeers: 3})
	now := 0.0
	for i := 0; i < 10; i++ {
		for _, id := range []string{"a", "b", "c", "d"} {
			p.Observe(id, now, 100)
		}
		now++
	}
	for i := 0; i < 10; i++ {
		for _, id := range []string{"a", "b", "c", "d"} {
			p.Observe(id, now, 20) // everyone slowed 5x together
		}
		now++
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		if v := p.Verdict(id, now); v != spec.Nominal {
			t.Fatalf("fleet-wide shift flagged %s: %v", id, v)
		}
	}
}

func TestPeerSetTooFewPeers(t *testing.T) {
	p := NewPeerSet(PeerConfig{WindowSamples: 3, Threshold: 0.6, MinPeers: 3})
	p.Observe("a", 0, 100)
	p.Observe("b", 0, 10)
	if v := p.Verdict("b", 1); v != spec.Nominal {
		t.Fatalf("verdict with too few peers = %v", v)
	}
}

func TestPeerSetPromotion(t *testing.T) {
	p := NewPeerSet(PeerConfig{WindowSamples: 3, Threshold: 0.6, MinPeers: 2, PromotionTimeout: 5})
	p.Observe("a", 0, 100)
	p.Observe("b", 0, 100)
	p.Observe("b", 1, 0)
	p.Observe("b", 2, 0)
	if v := p.Verdict("b", 20); v != spec.AbsoluteFaulty {
		t.Fatalf("silent peer not promoted: %v", v)
	}
}

func TestPeerSetMembersSorted(t *testing.T) {
	p := NewPeerSet(PeerConfig{WindowSamples: 3, Threshold: 0.6, MinPeers: 2})
	p.Observe("z", 0, 1)
	p.Observe("a", 0, 1)
	m := p.Members()
	if len(m) != 2 || m[0] != "a" || m[1] != "z" {
		t.Fatalf("members = %v", m)
	}
}

func TestPeerAdapterImplementsDetector(t *testing.T) {
	p := NewPeerSet(PeerConfig{WindowSamples: 3, Threshold: 0.6, MinPeers: 2})
	var d Detector = p.ComponentDetector("x")
	d.Observe(0, 100)
	p.Observe("y", 0, 100)
	if v := d.Verdict(1); v != spec.Nominal {
		t.Fatalf("adapter verdict = %v", v)
	}
}

package detect

import (
	"sort"

	"failstutter/internal/spec"
)

// Event records a published state transition for a component.
type Event struct {
	At        float64
	Component string
	From, To  spec.Verdict
}

// Registry is the notification plane of the fail-stutter model: components
// (or their controllers) publish verdict changes; interested agents
// subscribe. The registry counts notifications so experiments can compare
// the cost of publishing every blip against publishing only persistent
// transitions (experiment E19).
type Registry struct {
	states map[string]spec.Verdict
	subs   []func(Event)
	events []Event
	ids    []string // sorted component ids; nil after a membership change
}

// NewRegistry returns an empty registry; unknown components are nominal.
func NewRegistry() *Registry {
	return &Registry{states: make(map[string]spec.Verdict)}
}

// Subscribe registers a callback invoked on every published transition.
func (r *Registry) Subscribe(fn func(Event)) { r.subs = append(r.subs, fn) }

// Update publishes the component's verdict at the given time. Unchanged
// verdicts are free: no event is recorded and no subscriber runs.
func (r *Registry) Update(now float64, component string, v spec.Verdict) {
	prev, known := r.states[component]
	if prev == v { // covers unknown components publishing nominal
		return
	}
	if !known {
		r.ids = nil // membership changed; cached sorted ids are stale
	}
	r.states[component] = v
	ev := Event{At: now, Component: component, From: prev, To: v}
	r.events = append(r.events, ev)
	for _, fn := range r.subs {
		fn(ev)
	}
}

// State returns the last published verdict for the component (nominal if
// never published).
func (r *Registry) State(component string) spec.Verdict { return r.states[component] }

// Notifications returns the number of published transitions so far — the
// notification traffic a real system would put on the wire.
func (r *Registry) Notifications() uint64 { return uint64(len(r.events)) }

// Events returns a copy of the published transitions in order.
func (r *Registry) Events() []Event {
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Faulty returns the ids of components currently reported as other than
// nominal, sorted. The full sorted id slice is cached between membership
// changes, so repeated calls only filter — they never re-sort.
func (r *Registry) Faulty() []string {
	if r.ids == nil {
		r.ids = make([]string, 0, len(r.states))
		for id := range r.states {
			r.ids = append(r.ids, id)
		}
		sort.Strings(r.ids)
	}
	var out []string
	for _, id := range r.ids {
		if r.states[id] != spec.Nominal {
			out = append(out, id)
		}
	}
	return out
}

package detect

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"failstutter/internal/spec"
	"failstutter/internal/stats"
)

func sameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// Property: across >= 10k random streams (including repeated timestamps
// and zero rates), the incremental slope cache produces bit-identical
// Theil-Sen estimates to recomputing every pairwise slope and sorting.
func TestTrendDetectorSlopeMatchesTheilSenProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for stream := 0; stream < 10000; stream++ {
		w := 4 + rng.Intn(5)
		d := NewTrendDetector(TrendConfig{WindowSamples: w, DeclineFrac: 0.1})
		now := 0.0
		steps := 2 + rng.Intn(3*w)
		for i := 0; i < steps; i++ {
			if rng.Intn(4) != 0 {
				now += rng.ExpFloat64() // else: repeat the timestamp (dx == 0 pairs)
			}
			rate := math.Abs(rng.NormFloat64()) * 100
			if rng.Intn(8) == 0 {
				rate = 0
			}
			d.Observe(now, rate)
			want := stats.TheilSen(d.times.Values(), d.rates.Values())
			if got := d.Slope(); !sameFloat(got, want) {
				t.Fatalf("stream %d step %d (w=%d): Slope = %v, want %v\ntimes %v\nrates %v",
					stream, i, w, got, want, d.times.Values(), d.rates.Values())
			}
			// Cached value stays stable between observations.
			if got := d.Slope(); !sameFloat(got, want) {
				t.Fatalf("stream %d: cached Slope changed between calls", stream)
			}
		}
	}
}

// refPeerVerdict replicates the pre-cache PeerSet algorithm: every
// peer's window median recomputed from scratch on every verdict.
func refPeerVerdict(p *PeerSet, id string, now float64) spec.Verdict {
	m := p.members[id]
	if m == nil || !m.sawAnything {
		return spec.Nominal
	}
	if p.cfg.PromotionTimeout > 0 && now-m.lastProgress > p.cfg.PromotionTimeout {
		return spec.AbsoluteFaulty
	}
	if len(p.members) < p.cfg.MinPeers || m.window.Len() == 0 {
		return spec.Nominal
	}
	var meds []float64
	for other, om := range p.members {
		if other == id || om.window.Len() == 0 {
			continue
		}
		meds = append(meds, stats.Median(om.window.Values()))
	}
	if len(meds) == 0 {
		return spec.Nominal
	}
	ref := stats.Median(meds)
	if math.IsNaN(ref) {
		return spec.Nominal
	}
	if stats.Median(m.window.Values()) < p.cfg.Threshold*ref {
		return spec.PerfFaulty
	}
	return spec.Nominal
}

// Property: the cached-median PeerSet issues the same verdicts as the
// full-recompute reference under random fleets and observation orders.
func TestPeerSetMatchesRecomputeReferenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for stream := 0; stream < 2000; stream++ {
		pool := 2 + rng.Intn(9)
		ids := make([]string, pool)
		for i := range ids {
			ids[i] = fmt.Sprintf("c%02d", i)
		}
		p := NewPeerSet(PeerConfig{
			WindowSamples:    1 + rng.Intn(5),
			Threshold:        0.5 + rng.Float64()*0.4,
			MinPeers:         2 + rng.Intn(3),
			PromotionTimeout: float64(rng.Intn(3)) * 5,
		})
		now := 0.0
		for op := 0; op < 60; op++ {
			now += rng.Float64()
			id := ids[rng.Intn(pool)]
			rate := math.Abs(rng.NormFloat64()) * 100
			if rng.Intn(6) == 0 {
				rate = 0
			}
			p.Observe(id, now, rate)
			probe := ids[rng.Intn(pool)]
			at := now + float64(rng.Intn(4))
			if got, want := p.Verdict(probe, at), refPeerVerdict(p, probe, at); got != want {
				t.Fatalf("stream %d op %d: Verdict(%s, %v) = %v, want %v",
					stream, op, probe, at, got, want)
			}
		}
		// Cached member ids match a fresh sort.
		want := make([]string, 0, len(p.members))
		for id := range p.members {
			want = append(want, id)
		}
		sort.Strings(want)
		got := p.Members()
		if len(got) != len(want) {
			t.Fatalf("stream %d: Members len %d, want %d", stream, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("stream %d: Members = %v, want %v", stream, got, want)
			}
		}
	}
}

// The steady-state Observe and Verdict paths of every detector family
// must be allocation-free: detection has to be cheap enough to run on
// every completion event.
func TestDetectorSteadyStatePathsDoNotAllocate(t *testing.T) {
	now := 100.0
	check := func(name string, fn func()) {
		t.Helper()
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("%s steady-state path allocates %v per run", name, n)
		}
	}

	sd := NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.3, PromotionTimeout: 10})
	check("SpecDetector", func() {
		now++
		sd.Observe(now, 100)
		_ = sd.Verdict(now)
	})

	ed := NewEWMADetector(EWMAConfig{FastAlpha: 0.4, SlowAlpha: 0.02, Threshold: 0.7, PromotionTimeout: 10})
	check("EWMADetector", func() {
		now++
		ed.Observe(now, 100)
		_ = ed.Verdict(now)
	})

	wd := NewWindowDetector(WindowConfig{BaselineSamples: 8, RecentSamples: 16, Threshold: 0.7, PromotionTimeout: 10})
	for i := 0; i < 64; i++ {
		wd.Observe(float64(i), 100)
	}
	check("WindowDetector", func() {
		now++
		wd.Observe(now, 100)
		_ = wd.Verdict(now)
	})

	td := NewTrendDetector(TrendConfig{WindowSamples: 32, DeclineFrac: 0.1, PromotionTimeout: 10})
	for i := 0; i < 64; i++ {
		td.Observe(float64(i), 100)
	}
	check("TrendDetector", func() {
		now++
		td.Observe(now, 100)
		_ = td.Verdict(now)
		_ = td.Slope()
	})

	ps := NewPeerSet(PeerConfig{WindowSamples: 16, Threshold: 0.7, MinPeers: 4, PromotionTimeout: 10})
	ids := []string{"a", "b", "c", "d", "e", "f"}
	for k := 0; k < 32; k++ {
		for _, id := range ids {
			ps.Observe(id, float64(k), 100)
		}
	}
	_ = ps.Members() // populate the sorted-id cache
	check("PeerSet", func() {
		now++
		for _, id := range ids {
			ps.Observe(id, now, 100)
		}
		for _, id := range ids {
			_ = ps.Verdict(id, now)
		}
		_ = ps.Members()
	})

	hy := NewHysteresis(NewEWMADetector(EWMAConfig{FastAlpha: 0.4, SlowAlpha: 0.02, Threshold: 0.7}), 3, 3)
	check("Hysteresis", func() {
		now++
		hy.Observe(now, 100)
		_ = hy.Verdict(now)
	})

	reg := NewRegistry()
	reg.Update(0, "x", spec.PerfFaulty)
	check("Registry unchanged update", func() {
		now++
		reg.Update(now, "x", spec.PerfFaulty)
	})
}

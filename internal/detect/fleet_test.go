package detect

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"failstutter/internal/spec"
	"failstutter/internal/stats"
)

// TestPeerSetLargeFleetMatchesBruteForce drives a fleet past the
// incremental cutoff into deferred-rebuild mode and cross-checks every
// verdict against an independent brute-force reference: window medians
// recomputed from the raw samples, exclude-one fleet medians from a fresh
// sort. The two sorted-mirror maintenance modes must be observationally
// identical.
func TestPeerSetLargeFleetMatchesBruteForce(t *testing.T) {
	const (
		peers  = peerIncrementalCutoff + 40
		window = 5
		rounds = 9
	)
	cfg := PeerConfig{WindowSamples: window, Threshold: 0.7, MinPeers: 4}
	p := NewPeerSet(cfg)
	rng := rand.New(rand.NewSource(11))
	ids := make([]string, peers)
	samples := make([][]float64, peers)
	for i := range ids {
		ids[i] = fmt.Sprintf("d%04d", i)
	}
	for k := 0; k < rounds; k++ {
		now := float64(k)
		for i, id := range ids {
			rate := 90 + 20*rng.Float64()
			if i%97 == 0 {
				rate *= 0.3 // a few persistent stragglers to flag
			}
			samples[i] = append(samples[i], rate)
			p.Observe(id, now, rate)
		}
	}
	now := float64(rounds)

	// Brute-force reference, recomputed from scratch.
	meds := make([]float64, peers)
	for i := range meds {
		s := samples[i]
		if len(s) > window {
			s = s[len(s)-window:]
		}
		meds[i] = stats.Median(s)
	}
	sorted := append([]float64(nil), meds...)
	sort.Float64s(sorted)
	for i, id := range ids {
		j := stats.SearchSorted(sorted, meds[i])
		rest := append(append([]float64(nil), sorted[:j]...), sorted[j+1:]...)
		ref := stats.Median(rest)
		want := spec.Nominal
		if meds[i] < cfg.Threshold*ref {
			want = spec.PerfFaulty
		}
		if got := p.Verdict(id, now); got != want {
			t.Fatalf("member %s: verdict %v, brute force says %v (med %v, ref %v)",
				id, got, want, meds[i], ref)
		}
	}
}

// TestPeerSetInterleavedAcrossCutoff interleaves Observe and Verdict while
// the fleet grows through the cutoff: every verdict issued mid-growth must
// match a brute-force reference over the members seen so far, proving the
// mode switch has no observable seam.
func TestPeerSetInterleavedAcrossCutoff(t *testing.T) {
	cfg := PeerConfig{WindowSamples: 3, Threshold: 0.7, MinPeers: 4}
	p := NewPeerSet(cfg)
	rng := rand.New(rand.NewSource(12))
	var meds []float64
	for i := 0; i < peerIncrementalCutoff+30; i++ {
		rate := 90 + 20*rng.Float64()
		if i%50 == 0 {
			rate *= 0.2
		}
		id := fmt.Sprintf("d%04d", i)
		p.Observe(id, 0, rate)
		meds = append(meds, rate) // window of 1 sample: median is the rate
		if i < 4 || i%7 != 0 {
			continue
		}
		probe := rng.Intn(i + 1)
		sorted := append([]float64(nil), meds...)
		sort.Float64s(sorted)
		j := stats.SearchSorted(sorted, meds[probe])
		rest := append(append([]float64(nil), sorted[:j]...), sorted[j+1:]...)
		want := spec.Nominal
		if meds[probe] < cfg.Threshold*stats.Median(rest) {
			want = spec.PerfFaulty
		}
		if got := p.Verdict(fmt.Sprintf("d%04d", probe), 0); got != want {
			t.Fatalf("at fleet size %d, member %d: verdict %v, want %v", i+1, probe, got, want)
		}
	}
}

// TestPeerSetMillionMemberSweepNoAllocs is the tentpole's complexity
// claim, pinned: one full monitoring sweep — observe every member, then
// classify every member — over a million-disk fleet performs zero heap
// allocations. The first sweep (AllocsPerRun's warm-up call) grows the
// reusable medians buffer; steady state must stay flat.
func TestPeerSetMillionMemberSweepNoAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("million-member fleet build is slow; skipped in -short")
	}
	const peers = 1 << 20
	cfg := PeerConfig{WindowSamples: 4, Threshold: 0.7, MinPeers: 4}
	p := NewPeerSet(cfg)
	ids := make([]string, peers)
	for i := range ids {
		ids[i] = fmt.Sprintf("disk%07d", i)
	}
	for k := 0; k < 4; k++ {
		now := float64(k)
		for i, id := range ids {
			p.Observe(id, now, 100+float64((i+k)%13))
		}
	}
	faulty := 0
	round := 4
	sweep := func() {
		now := float64(round)
		round++
		for i, id := range ids {
			rate := 100 + float64((i+round)%13)
			if i%1000 == 0 {
				rate = 5 // stragglers the sweep must still flag
			}
			p.Observe(id, now, rate)
		}
		for _, id := range ids {
			if p.Verdict(id, now) != spec.Nominal {
				faulty++
			}
		}
	}
	if n := testing.AllocsPerRun(1, sweep); n != 0 {
		t.Fatalf("million-member sweep allocates %v per run, want 0", n)
	}
	if faulty == 0 {
		t.Fatal("sweep flagged nothing; straggler injection broken")
	}
}

package detect_test

import (
	"fmt"

	"failstutter/internal/detect"
	"failstutter/internal/spec"
)

// A spec detector with hysteresis: three consecutive bad samples report a
// persistent performance fault; a single blip stays quiet.
func ExampleNewHysteresis() {
	det := detect.NewHysteresis(
		detect.NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.2}),
		3, 3)

	rates := []float64{100, 100, 40, 100, 40, 40, 40}
	for i, r := range rates {
		now := float64(i)
		det.Observe(now, r)
		fmt.Printf("t=%v rate=%v -> %v\n", now, r, det.Verdict(now))
	}
	// Output:
	// t=0 rate=100 -> nominal
	// t=1 rate=100 -> nominal
	// t=2 rate=40 -> nominal
	// t=3 rate=100 -> nominal
	// t=4 rate=40 -> nominal
	// t=5 rate=40 -> nominal
	// t=6 rate=40 -> perf-faulty
}

// Peer-relative detection flags only the component that diverges from its
// fleet, staying quiet when everyone shifts together.
func ExampleNewPeerSet() {
	peers := detect.NewPeerSet(detect.PeerConfig{
		WindowSamples: 3, Threshold: 0.6, MinPeers: 3,
	})
	for t := 0.0; t < 5; t++ {
		peers.Observe("a", t, 100)
		peers.Observe("b", t, 100)
		peers.Observe("c", t, 100)
		peers.Observe("slow", t, 30)
	}
	for _, id := range peers.Members() {
		fmt.Printf("%s: %v\n", id, peers.Verdict(id, 5))
	}
	// Output:
	// a: nominal
	// b: nominal
	// c: nominal
	// slow: perf-faulty
}

// The registry publishes only transitions, so steady state is free.
func ExampleRegistry() {
	reg := detect.NewRegistry()
	reg.Subscribe(func(e detect.Event) {
		fmt.Printf("t=%v %s: %v -> %v\n", e.At, e.Component, e.From, e.To)
	})
	reg.Update(1, "disk-0", spec.Nominal)    // no change: silent
	reg.Update(2, "disk-0", spec.PerfFaulty) // published
	reg.Update(3, "disk-0", spec.PerfFaulty) // unchanged: silent
	reg.Update(4, "disk-0", spec.Nominal)    // published
	fmt.Println("notifications:", reg.Notifications())
	// Output:
	// t=2 disk-0: nominal -> perf-faulty
	// t=4 disk-0: perf-faulty -> nominal
	// notifications: 2
}

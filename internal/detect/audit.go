package detect

import (
	"math"

	"failstutter/internal/spec"
	"failstutter/internal/trace"
)

// Explainer is implemented by detectors that can report the quantitative
// evidence behind their current verdict: what was observed, what it was
// compared against, and with what threshold. Audit trails call it at the
// moment of a verdict transition.
type Explainer interface {
	Explain() trace.Evidence
}

// EvidenceOf returns d's current evidence, or a zero Evidence ("no
// evidence") for detectors that cannot explain themselves.
func EvidenceOf(d Detector) trace.Evidence {
	if e, ok := d.(Explainer); ok {
		return e.Explain()
	}
	return trace.Evidence{}
}

// NamedDetector lets detector implementations outside this package report
// their family name in audit records.
type NamedDetector interface {
	DetectorName() string
}

// DetectorName returns the detector family name for audit records.
func DetectorName(d Detector) string {
	switch v := d.(type) {
	case *SpecDetector:
		return "spec"
	case *EWMADetector:
		return "ewma"
	case *WindowDetector:
		return "window"
	case *TrendDetector:
		return "trend"
	case *peerAdapter:
		return "peer"
	case *Hysteresis:
		return DetectorName(v.inner)
	case *Audited:
		return DetectorName(v.Detector)
	case NamedDetector:
		return v.DetectorName()
	default:
		return "detector"
	}
}

// margin computes observed - threshold*reference, the signed distance to
// the verdict boundary (negative = below the bar).
func margin(observed, threshold, reference float64) float64 {
	return observed - threshold*reference
}

// Explain implements Explainer: the last observed rate against the spec's
// minimum acceptable rate.
func (d *SpecDetector) Explain() trace.Evidence {
	s := d.tracker.Spec()
	obs := d.tracker.LastRate()
	ref := s.MinAcceptable()
	return trace.Evidence{
		Signal: "rate", Observed: obs,
		RefKind: "spec-min", Reference: ref,
		Threshold: 1, Margin: margin(obs, 1, ref),
	}
}

// Explain implements Explainer: the fast EWMA against a fraction of the
// component's own slow baseline.
func (d *EWMADetector) Explain() trace.Evidence {
	obs, ref := d.fast.Value(), d.slow.Value()
	return trace.Evidence{
		Signal: "ewma-fast", Observed: obs,
		RefKind: "self-baseline", Reference: ref,
		Threshold: d.cfg.Threshold, Margin: margin(obs, d.cfg.Threshold, ref),
	}
}

// Explain implements Explainer: the recent window median against a
// fraction of the install-time gauged baseline median.
func (d *WindowDetector) Explain() trace.Evidence {
	obs := math.NaN()
	if d.recent.Len() > 0 {
		obs = d.recent.Median()
	}
	ref := d.Baseline()
	return trace.Evidence{
		Signal: "window-median", Observed: obs,
		RefKind: "gauged-baseline", Reference: ref,
		Threshold: d.cfg.Threshold, Margin: margin(obs, d.cfg.Threshold, ref),
	}
}

// Explain implements Explainer: the fitted decline across one window span
// against a fraction of the window's median level.
func (d *TrendDetector) Explain() trace.Evidence {
	obs := math.NaN()
	ref := math.NaN()
	if d.times.Len() > 0 {
		span := d.times.At(d.times.Len()-1) - d.times.At(0)
		if s := d.Slope(); span > 0 && !math.IsNaN(s) {
			obs = -s * span
		}
		ref = d.rates.Median()
	}
	return trace.Evidence{
		Signal: "theil-sen-decline", Observed: obs,
		RefKind: "window-level", Reference: ref,
		Threshold: d.cfg.DeclineFrac, Margin: margin(obs, d.cfg.DeclineFrac, ref),
	}
}

// Explain implements Explainer: the member's window median against a
// fraction of the exclude-one fleet median.
func (a *peerAdapter) Explain() trace.Evidence {
	m := a.set.members[a.id]
	obs, ref := math.NaN(), math.NaN()
	if m != nil {
		obs = m.med
		ref = a.set.peerMedian(m)
	}
	return trace.Evidence{
		Signal: "window-median", Observed: obs,
		RefKind: "peer-median", Reference: ref,
		Threshold: a.set.cfg.Threshold, Margin: margin(obs, a.set.cfg.Threshold, ref),
	}
}

// Explain implements Explainer by delegating to the wrapped detector.
func (h *Hysteresis) Explain() trace.Evidence { return EvidenceOf(h.inner) }

// Audited wraps a raw (non-debounced) detector and logs every verdict
// transition with evidence. Use it for detectors run without Hysteresis;
// hysteresis-wrapped detectors get richer records (including suppressed
// debounce steps) via Hysteresis.EnableAudit instead.
type Audited struct {
	Detector
	log       *trace.AuditLog
	component string
	last      spec.Verdict
}

// NewAudited wraps d, logging transitions for the named component. A nil
// log records nothing (the wrapper stays inert).
func NewAudited(d Detector, log *trace.AuditLog, component string) *Audited {
	return &Audited{Detector: d, log: log, component: component}
}

// Observe implements Detector: it forwards the observation and logs any
// resulting verdict change.
func (a *Audited) Observe(now, rate float64) {
	a.Detector.Observe(now, rate)
	if a.log == nil {
		return
	}
	v := a.Detector.Verdict(now)
	if v == a.last {
		return
	}
	a.log.Add(trace.AuditRecord{
		Time: now, Component: a.component,
		Detector: DetectorName(a.Detector), Kind: trace.AuditTransition,
		From: a.last.String(), To: v.String(),
		Evidence: EvidenceOf(a.Detector),
	})
	a.last = v
}

// Package detect implements stutter detection: the statistical machinery
// that turns a stream of per-component rate observations into the
// fail-stutter model's classifications (nominal, performance-faulty,
// absolutely failed).
//
// Detectors come in three flavours, ablated against each other in the
// experiment suite:
//
//   - SpecDetector compares against an absolute performance specification
//     (internal/spec);
//   - EWMADetector compares a component against its own smoothed history,
//     needing no a-priori spec;
//   - PeerSet compares each component against the median of its peers,
//     which stays quiet when the whole fleet shifts together (a workload
//     change) and fires only on divergent components.
//
// Hysteresis wraps any detector to distinguish persistent faults from
// transient blips; only persistent transitions need to be published, per
// the paper's notification discussion ("erratic performance may occur
// quite frequently, and thus distributing that information may be overly
// expensive").
package detect

import (
	"fmt"
	"math"
	"sort"

	"failstutter/internal/spec"
	"failstutter/internal/stats"
)

// Detector consumes (time, rate) observations for one component and
// classifies it.
type Detector interface {
	// Observe records the component's service rate at the given time.
	// Times must be non-decreasing.
	Observe(now, rate float64)
	// Verdict classifies the component as of the given time.
	Verdict(now float64) spec.Verdict
}

// SpecDetector classifies against an absolute performance specification.
type SpecDetector struct {
	tracker *spec.Tracker
}

// NewSpecDetector builds a detector for the given spec.
func NewSpecDetector(s spec.Spec) *SpecDetector {
	return &SpecDetector{tracker: spec.NewTracker(s)}
}

// Observe implements Detector.
func (d *SpecDetector) Observe(now, rate float64) { d.tracker.Observe(now, rate) }

// Verdict implements Detector.
func (d *SpecDetector) Verdict(now float64) spec.Verdict { return d.tracker.Verdict(now) }

// Deficit exposes the tracked shortfall fraction.
func (d *SpecDetector) Deficit() float64 { return d.tracker.Deficit() }

// EWMAConfig parameterizes an EWMADetector.
type EWMAConfig struct {
	// FastAlpha smooths the recent-rate estimate (higher = more reactive).
	FastAlpha float64
	// SlowAlpha smooths the long-term baseline (lower = steadier).
	SlowAlpha float64
	// Threshold is the fraction of baseline below which the component is
	// performance-faulty, e.g. 0.7.
	Threshold float64
	// PromotionTimeout is T: continuous zero rate longer than this is an
	// absolute fault. Zero disables promotion.
	PromotionTimeout float64
}

// Validate checks the configuration.
func (c EWMAConfig) Validate() error {
	switch {
	case c.FastAlpha <= 0 || c.FastAlpha > 1:
		return fmt.Errorf("detect: fast alpha %v outside (0,1]", c.FastAlpha)
	case c.SlowAlpha <= 0 || c.SlowAlpha > 1:
		return fmt.Errorf("detect: slow alpha %v outside (0,1]", c.SlowAlpha)
	case c.SlowAlpha > c.FastAlpha:
		return fmt.Errorf("detect: slow alpha %v exceeds fast alpha %v", c.SlowAlpha, c.FastAlpha)
	case c.Threshold <= 0 || c.Threshold >= 1:
		return fmt.Errorf("detect: threshold %v outside (0,1)", c.Threshold)
	case c.PromotionTimeout < 0:
		return fmt.Errorf("detect: negative promotion timeout")
	}
	return nil
}

// EWMADetector flags a component whose fast-smoothed rate falls below a
// fraction of its own slow-smoothed baseline. It needs no absolute spec,
// so it tolerates heterogeneous hardware — but it also normalizes slow
// drift into the baseline, which the ablation experiments quantify.
type EWMADetector struct {
	cfg          EWMAConfig
	fast         *stats.EWMA
	slow         *stats.EWMA
	lastProgress float64
	sawAnything  bool
}

// NewEWMADetector validates cfg and builds the detector.
func NewEWMADetector(cfg EWMAConfig) *EWMADetector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &EWMADetector{
		cfg:  cfg,
		fast: stats.NewEWMA(cfg.FastAlpha),
		slow: stats.NewEWMA(cfg.SlowAlpha),
	}
}

// Observe implements Detector.
func (d *EWMADetector) Observe(now, rate float64) {
	if !d.sawAnything {
		d.lastProgress = now
		d.sawAnything = true
	}
	d.fast.Observe(rate)
	// The baseline only absorbs healthy observations: folding stall samples
	// into it would erode the reference the detector compares against.
	if rate > 0 {
		d.slow.Observe(rate)
		d.lastProgress = now
	}
}

// Verdict implements Detector.
func (d *EWMADetector) Verdict(now float64) spec.Verdict {
	if !d.sawAnything || !d.slow.Initialized() {
		return spec.Nominal
	}
	if d.cfg.PromotionTimeout > 0 && now-d.lastProgress > d.cfg.PromotionTimeout {
		return spec.AbsoluteFaulty
	}
	if d.fast.Value() < d.cfg.Threshold*d.slow.Value() {
		return spec.PerfFaulty
	}
	return spec.Nominal
}

// Baseline returns the slow-smoothed reference rate (NaN before data).
func (d *EWMADetector) Baseline() float64 { return d.slow.Value() }

// Recent returns the fast-smoothed recent rate (NaN before data).
func (d *EWMADetector) Recent() float64 { return d.fast.Value() }

// WindowConfig parameterizes a WindowDetector.
type WindowConfig struct {
	// BaselineSamples is how many initial samples form the gauged
	// baseline (its median becomes the reference).
	BaselineSamples int
	// RecentSamples is the sliding-window length compared against the
	// baseline.
	RecentSamples int
	// Threshold is the fraction of baseline-median below which the recent
	// median is performance-faulty.
	Threshold float64
	// PromotionTimeout promotes sustained silence; zero disables.
	PromotionTimeout float64
}

// WindowDetector gauges a baseline once (install-time gauging, the
// paper's scenario-2 design) and compares a recent sliding median against
// it. Robust to single-sample noise; blind to slow baseline drift by
// construction, which is exactly what scenario 2's failure mode requires.
type WindowDetector struct {
	cfg          WindowConfig
	baseline     []float64
	baselineMed  float64
	recent       *stats.Window
	lastProgress float64
	sawAnything  bool
}

// NewWindowDetector validates cfg and builds the detector.
func NewWindowDetector(cfg WindowConfig) *WindowDetector {
	if cfg.BaselineSamples < 1 || cfg.RecentSamples < 1 ||
		cfg.Threshold <= 0 || cfg.Threshold >= 1 || cfg.PromotionTimeout < 0 {
		panic(fmt.Sprintf("detect: invalid window config %+v", cfg))
	}
	return &WindowDetector{cfg: cfg, recent: stats.NewWindow(cfg.RecentSamples)}
}

// Observe implements Detector.
func (d *WindowDetector) Observe(now, rate float64) {
	if !d.sawAnything {
		d.lastProgress = now
		d.sawAnything = true
	}
	if rate > 0 {
		d.lastProgress = now
	}
	if len(d.baseline) < d.cfg.BaselineSamples {
		d.baseline = append(d.baseline, rate)
		if len(d.baseline) == d.cfg.BaselineSamples {
			d.baselineMed = stats.Median(d.baseline)
		}
		return
	}
	d.recent.Observe(rate)
}

// Gauged reports whether the baseline has been established.
func (d *WindowDetector) Gauged() bool { return len(d.baseline) == d.cfg.BaselineSamples }

// Baseline returns the gauged reference rate (NaN before gauging).
func (d *WindowDetector) Baseline() float64 {
	if !d.Gauged() {
		return math.NaN()
	}
	return d.baselineMed
}

// Verdict implements Detector.
func (d *WindowDetector) Verdict(now float64) spec.Verdict {
	if !d.sawAnything {
		return spec.Nominal
	}
	if d.cfg.PromotionTimeout > 0 && now-d.lastProgress > d.cfg.PromotionTimeout {
		return spec.AbsoluteFaulty
	}
	if !d.Gauged() || d.recent.Len() == 0 {
		return spec.Nominal
	}
	if d.recent.Median() < d.cfg.Threshold*d.baselineMed {
		return spec.PerfFaulty
	}
	return spec.Nominal
}

// PeerConfig parameterizes a PeerSet.
type PeerConfig struct {
	// WindowSamples is the per-component sliding window length.
	WindowSamples int
	// Threshold is the fraction of the peer median below which a
	// component is performance-faulty.
	Threshold float64
	// MinPeers is the minimum fleet size before any verdicts are issued
	// (comparing against too few peers is meaningless).
	MinPeers int
	// PromotionTimeout promotes sustained silence; zero disables.
	PromotionTimeout float64
}

// PeerSet classifies each component of a fleet against the median of its
// peers' recent rates. A fleet-wide slowdown (workload shift, shared
// bottleneck) moves the median too, so nothing is flagged; only divergent
// components fire — the property ablation A3 measures.
//
// Each member's window median is cached on Observe and mirrored into one
// ascending array of fleet medians; a verdict reads the exclude-one fleet
// median straight off that array by index arithmetic
// (stats.QuantileSortedExcluding), so no per-verdict copy exists at any
// fleet size.
//
// The sorted mirror is maintained in one of two modes, switched on fleet
// size. Small fleets (≤ peerIncrementalCutoff members) update it
// incrementally on every Observe — O(P) memmove, cheap at that scale, and
// verdicts stay exact under any interleaving of Observe and Verdict calls.
// Above the cutoff the per-Observe memmove would dominate (a million-disk
// sweep would move terabytes), so Observe only updates the member's cached
// median and marks the mirror dirty; the next Verdict rebuilds it with one
// O(P log P) sort into a reusable buffer. Large fleets should therefore
// sweep in phases — observe every member, then read every verdict — which
// is exactly what the fleet experiments' barrier hook does; a full sweep
// at P=1M is one sort plus P binary searches, with zero allocation.
type PeerSet struct {
	cfg     PeerConfig
	members map[string]*peerMember
	list    []*peerMember // members in insertion order, the rebuild source
	meds    []float64     // every member's cached window median, ascending
	// medsDirty marks the mirror stale (large-fleet mode); the next verdict
	// rebuilds it.
	medsDirty bool
	sorter    medsSorter // boxed once via pointer receiver: 0-alloc rebuilds
	ids       []string   // sorted member ids; nil after a membership change

	// Parallel sweep-engine scratch (sweep.go), reused across sweeps:
	// per-worker sorted runs with their sorters and merge cursors, and the
	// per-worker flag counters reduced in global member order.
	runs       []float64
	runSorters []medsSorter
	runHeads   []int
	runEnds    []int
	flagCounts []int
}

// peerIncrementalCutoff is the fleet size above which PeerSet switches
// from incremental sorted-mirror maintenance to deferred rebuild. Around
// this point one O(P log P) sort per sweep undercuts P O(P) memmoves.
const peerIncrementalCutoff = 512

// medsSorter sorts the meds mirror in place under the sort.Float64s order
// (NaNs first), matching stats.SortedInsert so the two maintenance modes
// produce identical arrays. Pointer receiver: handing &p.sorter to
// sort.Sort boxes a pointer, which never allocates.
type medsSorter struct{ s []float64 }

func (m *medsSorter) Len() int      { return len(m.s) }
func (m *medsSorter) Swap(i, j int) { m.s[i], m.s[j] = m.s[j], m.s[i] }
func (m *medsSorter) Less(i, j int) bool {
	a, b := m.s[i], m.s[j]
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

type peerMember struct {
	window       *stats.Window
	med          float64 // cached window.Median(), maintained by Observe
	lastProgress float64
	sawAnything  bool
	idx          int32 // dense sweep index: position in list
}

// NewPeerSet validates cfg and builds an empty fleet.
func NewPeerSet(cfg PeerConfig) *PeerSet {
	if cfg.WindowSamples < 1 || cfg.Threshold <= 0 || cfg.Threshold >= 1 ||
		cfg.MinPeers < 2 || cfg.PromotionTimeout < 0 {
		panic(fmt.Sprintf("detect: invalid peer config %+v", cfg))
	}
	return &PeerSet{cfg: cfg, members: make(map[string]*peerMember)}
}

// Observe records a rate sample for the named component.
func (p *PeerSet) Observe(id string, now, rate float64) {
	m := p.members[id]
	fresh := m == nil
	if fresh {
		m = p.addMember(id)
	}
	if !m.sawAnything {
		m.lastProgress = now
		m.sawAnything = true
	}
	if rate > 0 {
		m.lastProgress = now
	}
	m.window.Observe(rate)
	med := m.window.Median()
	if len(p.members) > peerIncrementalCutoff || p.medsDirty {
		// Large fleet — or a sweep already deferred maintenance: the mirror
		// is (or will be) stale, so incremental upkeep would corrupt it.
		// Defer to the next verdict's rebuild instead.
		p.medsDirty = true
	} else {
		if !fresh {
			p.meds = stats.SortedRemove(p.meds, m.med)
		}
		p.meds = stats.SortedInsert(p.meds, med)
	}
	m.med = med
}

// addMember creates and indexes a fresh member.
func (p *PeerSet) addMember(id string) *peerMember {
	m := &peerMember{
		window: stats.NewWindow(p.cfg.WindowSamples),
		idx:    int32(len(p.list)),
	}
	p.members[id] = m
	p.list = append(p.list, m)
	p.ids = nil // membership changed; cached sorted ids are stale
	return m
}

// rebuildMeds regenerates the ascending medians mirror from every member's
// cached median: one copy in insertion order, one in-place sort, no
// allocation once the buffer has grown to fleet size.
func (p *PeerSet) rebuildMeds() {
	if cap(p.meds) < len(p.list) {
		p.meds = make([]float64, len(p.list), 2*len(p.list))
	}
	p.meds = p.meds[:len(p.list)]
	for i, m := range p.list {
		p.meds[i] = m.med
	}
	p.sorter.s = p.meds
	sort.Sort(&p.sorter)
	p.medsDirty = false
}

// Members returns the component ids in sorted order. The slice is cached
// until membership changes; callers must not modify it.
func (p *PeerSet) Members() []string {
	if p.ids == nil {
		p.ids = make([]string, 0, len(p.members))
		for id := range p.members {
			p.ids = append(p.ids, id)
		}
		sort.Strings(p.ids)
	}
	return p.ids
}

// peerMedian computes the median of all members' cached recent medians,
// excluding the given member. The member's entry is located by binary
// search (duplicates are interchangeable — excluding any one of them
// leaves the same multiset) and skipped by index arithmetic: no copy at
// any fleet size.
func (p *PeerSet) peerMedian(m *peerMember) float64 {
	if len(p.meds) <= 1 {
		return math.NaN()
	}
	j := stats.SearchSorted(p.meds, m.med)
	return stats.QuantileSortedExcluding(p.meds, j, 0.5)
}

// Verdict classifies the named component as of the given time.
func (p *PeerSet) Verdict(id string, now float64) spec.Verdict {
	m := p.members[id]
	if m == nil {
		return spec.Nominal
	}
	if v, done := p.quickVerdict(m, now); done {
		return v
	}
	if p.medsDirty {
		p.rebuildMeds()
	}
	return p.classify(m)
}

// quickVerdict resolves the verdicts that need no fleet median: unseen
// members, silence promotion, and too-small fleets. done reports whether
// the verdict is final.
func (p *PeerSet) quickVerdict(m *peerMember, now float64) (v spec.Verdict, done bool) {
	if !m.sawAnything {
		return spec.Nominal, true
	}
	if p.cfg.PromotionTimeout > 0 && now-m.lastProgress > p.cfg.PromotionTimeout {
		return spec.AbsoluteFaulty, true
	}
	if len(p.members) < p.cfg.MinPeers || m.window.Len() == 0 {
		return spec.Nominal, true
	}
	return spec.Nominal, false
}

// classify compares the member's cached median against the exclude-one
// fleet median. The sorted mirror must be clean: callers rebuild before
// classifying (the parallel sweep rebuilds once, then fans classify
// read-only across workers).
func (p *PeerSet) classify(m *peerMember) spec.Verdict {
	ref := p.peerMedian(m)
	if math.IsNaN(ref) {
		return spec.Nominal
	}
	if m.med < p.cfg.Threshold*ref {
		return spec.PerfFaulty
	}
	return spec.Nominal
}

// ComponentDetector adapts one member of a PeerSet to the Detector
// interface.
func (p *PeerSet) ComponentDetector(id string) Detector {
	return &peerAdapter{set: p, id: id}
}

type peerAdapter struct {
	set *PeerSet
	id  string
}

func (a *peerAdapter) Observe(now, rate float64)        { a.set.Observe(a.id, now, rate) }
func (a *peerAdapter) Verdict(now float64) spec.Verdict { return a.set.Verdict(a.id, now) }

package detect

import (
	"fmt"

	"failstutter/internal/sim"
)

// Probe periodically samples a cumulative work counter (bytes completed,
// blocks written, tasks finished) on the simulation clock, converts the
// delta to a rate, and feeds a sink — typically a Detector plus a
// Registry update. It is how simulated components get watched without the
// component knowing about detection.
//
// A probe reschedules itself forever (until Stop): simulations containing
// probes must be driven with Simulator.RunUntil, not Run, which would
// never drain the event queue.
type Probe struct {
	s        *sim.Simulator
	interval sim.Duration
	counter  func() float64
	sink     func(now, rate float64)

	last    float64
	stopped bool
	samples uint64
}

// NewProbe starts sampling immediately (first sample one interval from
// now). counter must be monotonically non-decreasing.
func NewProbe(s *sim.Simulator, interval sim.Duration, counter func() float64, sink func(now, rate float64)) *Probe {
	if interval <= 0 {
		panic(fmt.Sprintf("detect: probe interval %v must be positive", interval))
	}
	p := &Probe{s: s, interval: interval, counter: counter, sink: sink, last: counter()}
	p.schedule()
	return p
}

func (p *Probe) schedule() {
	p.s.After(p.interval, func() {
		if p.stopped {
			return
		}
		cur := p.counter()
		delta := cur - p.last
		if delta < 0 {
			panic("detect: probe counter decreased")
		}
		p.last = cur
		p.samples++
		p.sink(p.s.Now(), delta/p.interval)
		p.schedule()
	})
}

// Stop halts sampling after any in-flight tick.
func (p *Probe) Stop() { p.stopped = true }

// Samples returns the number of samples delivered so far.
func (p *Probe) Samples() uint64 { return p.samples }

package detect

import (
	"math"
	"testing"

	"failstutter/internal/spec"
	"failstutter/internal/trace"
)

func TestHysteresisAuditDebounceAndTransition(t *testing.T) {
	inner := NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.2})
	h := NewHysteresis(inner, 3, 2)
	log := trace.NewAuditLog()
	h.EnableAudit(log, "disk-3")

	// Healthy observations: steady-state agreement records nothing.
	h.Observe(1, 100)
	h.Observe(2, 100)
	if log.Len() != 0 {
		t.Fatalf("healthy observations recorded %d entries", log.Len())
	}

	// Two slow observations: suppressed (streak 1/3, 2/3); third fires.
	h.Observe(3, 10)
	h.Observe(4, 10)
	h.Observe(5, 10)
	recs := log.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3 (2 debounce + 1 transition)", len(recs))
	}
	if recs[0].Kind != trace.AuditDebounce || recs[0].Streak != 1 || recs[0].Need != 3 {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].Kind != trace.AuditDebounce || recs[1].Streak != 2 {
		t.Fatalf("rec1 = %+v", recs[1])
	}
	if recs[2].Kind != trace.AuditTransition || recs[2].From != "nominal" || recs[2].To != "perf-faulty" {
		t.Fatalf("rec2 = %+v", recs[2])
	}
	if recs[2].Detector != "spec" {
		t.Fatalf("detector = %q", recs[2].Detector)
	}
	// Evidence is attached: last observed rate vs spec minimum.
	ev := recs[2].Evidence
	if ev.Signal != "rate" || ev.Observed != 10 || ev.Reference != 80 {
		t.Fatalf("evidence = %+v", ev)
	}
	if ev.Margin != 10-80.0 {
		t.Fatalf("margin = %v", ev.Margin)
	}

	// Recovery: one nominal suppressed, second flips back.
	h.Observe(6, 100)
	h.Observe(7, 100)
	recs = log.Records()
	if len(recs) != 5 {
		t.Fatalf("records = %d, want 5", len(recs))
	}
	if recs[3].Kind != trace.AuditDebounce || recs[3].From != "perf-faulty" || recs[3].To != "nominal" {
		t.Fatalf("rec3 = %+v", recs[3])
	}
	if recs[4].Kind != trace.AuditTransition || recs[4].To != "nominal" {
		t.Fatalf("rec4 = %+v", recs[4])
	}
}

func TestHysteresisAuditLatch(t *testing.T) {
	inner := NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.2, PromotionTimeout: 5})
	h := NewHysteresis(inner, 2, 2)
	log := trace.NewAuditLog()
	h.EnableAudit(log, "srv-0")
	h.Observe(0, 100)
	h.Observe(1, 0)
	// Silence past the promotion timeout, detected between observations.
	if got := h.Verdict(10); got != spec.AbsoluteFaulty {
		t.Fatalf("verdict = %v", got)
	}
	recs := log.Records()
	last := recs[len(recs)-1]
	if last.Kind != trace.AuditLatch || last.To != "absolute-faulty" {
		t.Fatalf("latch record = %+v", last)
	}
	// Latched: no further records.
	n := log.Len()
	h.Observe(11, 100)
	if log.Len() != n {
		t.Fatal("latched detector kept recording")
	}
}

func TestHysteresisAuditDisabledByDefault(t *testing.T) {
	inner := NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.2})
	h := NewHysteresis(inner, 1, 1)
	h.Observe(1, 1) // transitions without a log attached: must not panic
	if h.Verdict(1) != spec.PerfFaulty {
		t.Fatal("verdict wrong")
	}
}

func TestAuditedRawDetector(t *testing.T) {
	log := trace.NewAuditLog()
	a := NewAudited(NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.2}), log, "d0")
	a.Observe(1, 100)
	a.Observe(2, 50) // nominal -> perf-faulty immediately (no debounce)
	a.Observe(3, 50) // unchanged: no record
	a.Observe(4, 100)
	recs := log.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].To != "perf-faulty" || recs[1].To != "nominal" {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].Evidence.Observed != 50 {
		t.Fatalf("evidence = %+v", recs[0].Evidence)
	}
}

func TestAuditedNilLogInert(t *testing.T) {
	a := NewAudited(NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.2}), nil, "d0")
	a.Observe(1, 10)
	if a.Verdict(1) != spec.PerfFaulty {
		t.Fatal("wrapper changed verdict")
	}
}

func TestExplainers(t *testing.T) {
	// Every detector family yields self-consistent evidence.
	ew := NewEWMADetector(EWMAConfig{FastAlpha: 0.5, SlowAlpha: 0.1, Threshold: 0.7})
	for i := 0; i < 20; i++ {
		ew.Observe(float64(i), 100)
	}
	ev := ew.Explain()
	if ev.Signal != "ewma-fast" || ev.RefKind != "self-baseline" || ev.Threshold != 0.7 {
		t.Fatalf("ewma evidence = %+v", ev)
	}
	if math.Abs(ev.Margin-(ev.Observed-0.7*ev.Reference)) > 1e-12 {
		t.Fatalf("ewma margin inconsistent: %+v", ev)
	}

	wd := NewWindowDetector(WindowConfig{BaselineSamples: 4, RecentSamples: 4, Threshold: 0.5})
	for i := 0; i < 10; i++ {
		wd.Observe(float64(i), 100)
	}
	ev = wd.Explain()
	if ev.Signal != "window-median" || ev.RefKind != "gauged-baseline" || ev.Reference != 100 {
		t.Fatalf("window evidence = %+v", ev)
	}

	td := NewTrendDetector(TrendConfig{WindowSamples: 5, DeclineFrac: 0.1})
	for i := 0; i < 8; i++ {
		td.Observe(float64(i), 100-10*float64(i))
	}
	ev = td.Explain()
	if ev.Signal != "theil-sen-decline" || ev.Observed <= 0 {
		t.Fatalf("trend evidence = %+v (expected positive decline)", ev)
	}

	ps := NewPeerSet(PeerConfig{WindowSamples: 4, Threshold: 0.5, MinPeers: 2})
	for i := 0; i < 6; i++ {
		ps.Observe("a", float64(i), 100)
		ps.Observe("b", float64(i), 10)
	}
	det := ps.ComponentDetector("b")
	ev = EvidenceOf(det)
	if ev.Signal != "window-median" || ev.RefKind != "peer-median" || ev.Observed != 10 || ev.Reference != 100 {
		t.Fatalf("peer evidence = %+v", ev)
	}

	// Hysteresis delegates to its inner detector.
	h := NewHysteresis(ew, 2, 2)
	if EvidenceOf(h).Signal != "ewma-fast" {
		t.Fatal("hysteresis did not delegate evidence")
	}

	// Unknown detectors yield "no evidence" rather than failing.
	if EvidenceOf(dummyDetector{}).Signal != "" {
		t.Fatal("unknown detector produced evidence")
	}
}

type dummyDetector struct{}

func (dummyDetector) Observe(now, rate float64)        {}
func (dummyDetector) Verdict(now float64) spec.Verdict { return spec.Nominal }

func TestDetectorName(t *testing.T) {
	cases := []struct {
		d    Detector
		want string
	}{
		{NewSpecDetector(spec.Spec{ExpectedRate: 1}), "spec"},
		{NewEWMADetector(EWMAConfig{FastAlpha: 0.5, SlowAlpha: 0.1, Threshold: 0.7}), "ewma"},
		{NewWindowDetector(WindowConfig{BaselineSamples: 1, RecentSamples: 1, Threshold: 0.5}), "window"},
		{NewTrendDetector(TrendConfig{WindowSamples: 4, DeclineFrac: 0.1}), "trend"},
		{NewPeerSet(PeerConfig{WindowSamples: 2, Threshold: 0.5, MinPeers: 2}).ComponentDetector("x"), "peer"},
		{NewHysteresis(NewSpecDetector(spec.Spec{ExpectedRate: 1}), 1, 1), "spec"},
		{NewAudited(NewEWMADetector(EWMAConfig{FastAlpha: 0.5, SlowAlpha: 0.1, Threshold: 0.7}), nil, "x"), "ewma"},
		{dummyDetector{}, "detector"},
	}
	for _, c := range cases {
		if got := DetectorName(c.d); got != c.want {
			t.Fatalf("DetectorName(%T) = %q, want %q", c.d, got, c.want)
		}
	}
}

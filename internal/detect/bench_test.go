package detect

import (
	"testing"

	"failstutter/internal/spec"
)

func BenchmarkSpecDetectorObserve(b *testing.B) {
	d := NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.3, PromotionTimeout: 10})
	for i := 0; i < b.N; i++ {
		d.Observe(float64(i), 100)
	}
}

func BenchmarkEWMADetectorObserve(b *testing.B) {
	d := NewEWMADetector(EWMAConfig{FastAlpha: 0.4, SlowAlpha: 0.02, Threshold: 0.7})
	for i := 0; i < b.N; i++ {
		d.Observe(float64(i), 100)
	}
}

func BenchmarkWindowDetectorObserveVerdict(b *testing.B) {
	d := NewWindowDetector(WindowConfig{BaselineSamples: 32, RecentSamples: 16, Threshold: 0.7})
	for i := 0; i < b.N; i++ {
		now := float64(i)
		d.Observe(now, 100)
		d.Verdict(now)
	}
}

func BenchmarkTrendDetectorObserveVerdict(b *testing.B) {
	d := NewTrendDetector(TrendConfig{WindowSamples: 20, DeclineFrac: 0.1})
	for i := 0; i < b.N; i++ {
		now := float64(i)
		d.Observe(now, 100)
		d.Verdict(now)
	}
}

func BenchmarkPeerSetVerdict(b *testing.B) {
	p := NewPeerSet(PeerConfig{WindowSamples: 8, Threshold: 0.7, MinPeers: 4})
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, id := range ids {
		for k := 0; k < 8; k++ {
			p.Observe(id, float64(k), 100+float64(i))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Verdict(ids[i%len(ids)], 10)
	}
}

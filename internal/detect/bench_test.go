package detect

import (
	"fmt"
	"testing"

	"failstutter/internal/spec"
)

func BenchmarkSpecDetectorObserve(b *testing.B) {
	d := NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.3, PromotionTimeout: 10})
	for i := 0; i < b.N; i++ {
		d.Observe(float64(i), 100)
	}
}

func BenchmarkEWMADetectorObserve(b *testing.B) {
	d := NewEWMADetector(EWMAConfig{FastAlpha: 0.4, SlowAlpha: 0.02, Threshold: 0.7})
	for i := 0; i < b.N; i++ {
		d.Observe(float64(i), 100)
	}
}

func BenchmarkWindowDetectorObserveVerdict(b *testing.B) {
	d := NewWindowDetector(WindowConfig{BaselineSamples: 32, RecentSamples: 16, Threshold: 0.7})
	for i := 0; i < b.N; i++ {
		now := float64(i)
		d.Observe(now, 100)
		d.Verdict(now)
	}
}

func BenchmarkTrendDetectorObserveVerdict(b *testing.B) {
	d := NewTrendDetector(TrendConfig{WindowSamples: 20, DeclineFrac: 0.1})
	for i := 0; i < b.N; i++ {
		now := float64(i)
		d.Observe(now, 100)
		d.Verdict(now)
	}
}

func BenchmarkPeerSetVerdict(b *testing.B) {
	p := NewPeerSet(PeerConfig{WindowSamples: 8, Threshold: 0.7, MinPeers: 4})
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, id := range ids {
		for k := 0; k < 8; k++ {
			p.Observe(id, float64(k), 100+float64(i))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Verdict(ids[i%len(ids)], 10)
	}
}

// benchPeerFleetSweep measures one full monitoring round at fleet size
// peers and window length 64: every member observes a fresh sample, then
// every member is classified — the per-tick cost of always-on peer
// detection.
func benchPeerFleetSweep(b *testing.B, peers int) {
	p := NewPeerSet(PeerConfig{WindowSamples: 64, Threshold: 0.7, MinPeers: 4})
	ids := make([]string, peers)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%03d", i)
	}
	for k := 0; k < 64; k++ {
		for i, id := range ids {
			p.Observe(id, float64(k), 100+float64(i%7))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(64 + i)
		for j, id := range ids {
			p.Observe(id, now, 100+float64((i+j)%7))
		}
		for _, id := range ids {
			p.Verdict(id, now)
		}
	}
}

func BenchmarkPeerSetFleetSweep8(b *testing.B)    { benchPeerFleetSweep(b, 8) }
func BenchmarkPeerSetFleetSweep64(b *testing.B)   { benchPeerFleetSweep(b, 64) }
func BenchmarkPeerSetFleetSweep256(b *testing.B)  { benchPeerFleetSweep(b, 256) }
func BenchmarkPeerSetFleetSweep4096(b *testing.B) { benchPeerFleetSweep(b, 4096) }

func BenchmarkTrendDetectorVerdictW64(b *testing.B) {
	d := NewTrendDetector(TrendConfig{WindowSamples: 64, DeclineFrac: 0.1})
	for i := 0; i < 64; i++ {
		d.Observe(float64(i), 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(64 + i)
		d.Observe(now, 100+float64(i%5))
		d.Verdict(now)
	}
}

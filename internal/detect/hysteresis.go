package detect

import (
	"fmt"

	"failstutter/internal/spec"
	"failstutter/internal/trace"
)

// Hysteresis wraps a detector and suppresses transient verdicts: the
// component is only *reported* performance-faulty after EnterAfter
// consecutive faulty observations, and only restored after ExitAfter
// consecutive nominal ones. This is the "persistent" filter the paper's
// notification discussion calls for — short-lived blips stay local, only
// sustained degradation is published.
//
// Absolute faults pass through immediately and latch: once a component is
// absolutely failed it never recovers without explicit replacement.
type Hysteresis struct {
	inner      Detector
	enterAfter int
	exitAfter  int

	faultyStreak  int
	nominalStreak int
	reported      spec.Verdict

	log       *trace.AuditLog
	component string
}

// NewHysteresis wraps inner with the given streak requirements.
func NewHysteresis(inner Detector, enterAfter, exitAfter int) *Hysteresis {
	if enterAfter < 1 || exitAfter < 1 {
		panic(fmt.Sprintf("detect: hysteresis streaks must be >= 1 (got %d, %d)", enterAfter, exitAfter))
	}
	return &Hysteresis{
		inner:      inner,
		enterAfter: enterAfter,
		exitAfter:  exitAfter,
		reported:   spec.Nominal,
	}
}

// EnableAudit logs every state-machine decision for the named component
// to log: real transitions, latched absolute faults, and suppressed
// (debounced) steps where the instantaneous verdict disagreed with the
// reported one but the streak had not yet run out. Steady-state agreement
// records nothing, keeping logs proportional to interesting activity.
func (h *Hysteresis) EnableAudit(log *trace.AuditLog, component string) {
	h.log = log
	h.component = component
}

// audit appends one record if auditing is enabled.
func (h *Hysteresis) audit(now float64, kind string, from, to spec.Verdict, streak, need int) {
	if h.log == nil {
		return
	}
	h.log.Add(trace.AuditRecord{
		Time: now, Component: h.component,
		Detector: DetectorName(h.inner), Kind: kind,
		From: from.String(), To: to.String(),
		Streak: streak, Need: need,
		Evidence: EvidenceOf(h.inner),
	})
}

// Observe implements Detector: it forwards the observation and advances
// the streak state machine using the inner detector's instantaneous
// verdict.
func (h *Hysteresis) Observe(now, rate float64) {
	h.inner.Observe(now, rate)
	if h.reported == spec.AbsoluteFaulty {
		return // latched
	}
	switch h.inner.Verdict(now) {
	case spec.AbsoluteFaulty:
		h.audit(now, trace.AuditLatch, h.reported, spec.AbsoluteFaulty, 0, 0)
		h.reported = spec.AbsoluteFaulty
	case spec.PerfFaulty:
		h.faultyStreak++
		h.nominalStreak = 0
		if h.reported == spec.Nominal {
			if h.faultyStreak >= h.enterAfter {
				h.audit(now, trace.AuditTransition, spec.Nominal, spec.PerfFaulty, h.faultyStreak, h.enterAfter)
				h.reported = spec.PerfFaulty
			} else {
				h.audit(now, trace.AuditDebounce, spec.Nominal, spec.PerfFaulty, h.faultyStreak, h.enterAfter)
			}
		}
	case spec.Nominal:
		h.nominalStreak++
		h.faultyStreak = 0
		if h.reported == spec.PerfFaulty {
			if h.nominalStreak >= h.exitAfter {
				h.audit(now, trace.AuditTransition, spec.PerfFaulty, spec.Nominal, h.nominalStreak, h.exitAfter)
				h.reported = spec.Nominal
			} else {
				h.audit(now, trace.AuditDebounce, spec.PerfFaulty, spec.Nominal, h.nominalStreak, h.exitAfter)
			}
		}
	}
}

// Verdict implements Detector, returning the debounced classification.
func (h *Hysteresis) Verdict(now float64) spec.Verdict {
	if h.reported == spec.AbsoluteFaulty {
		return h.reported
	}
	// Promotion can also arrive between observations (pure silence).
	if h.inner.Verdict(now) == spec.AbsoluteFaulty {
		h.audit(now, trace.AuditLatch, h.reported, spec.AbsoluteFaulty, 0, 0)
		h.reported = spec.AbsoluteFaulty
	}
	return h.reported
}

// Inner exposes the wrapped detector.
func (h *Hysteresis) Inner() Detector { return h.inner }

package detect

import (
	"fmt"

	"failstutter/internal/spec"
)

// Hysteresis wraps a detector and suppresses transient verdicts: the
// component is only *reported* performance-faulty after EnterAfter
// consecutive faulty observations, and only restored after ExitAfter
// consecutive nominal ones. This is the "persistent" filter the paper's
// notification discussion calls for — short-lived blips stay local, only
// sustained degradation is published.
//
// Absolute faults pass through immediately and latch: once a component is
// absolutely failed it never recovers without explicit replacement.
type Hysteresis struct {
	inner      Detector
	enterAfter int
	exitAfter  int

	faultyStreak  int
	nominalStreak int
	reported      spec.Verdict
}

// NewHysteresis wraps inner with the given streak requirements.
func NewHysteresis(inner Detector, enterAfter, exitAfter int) *Hysteresis {
	if enterAfter < 1 || exitAfter < 1 {
		panic(fmt.Sprintf("detect: hysteresis streaks must be >= 1 (got %d, %d)", enterAfter, exitAfter))
	}
	return &Hysteresis{
		inner:      inner,
		enterAfter: enterAfter,
		exitAfter:  exitAfter,
		reported:   spec.Nominal,
	}
}

// Observe implements Detector: it forwards the observation and advances
// the streak state machine using the inner detector's instantaneous
// verdict.
func (h *Hysteresis) Observe(now, rate float64) {
	h.inner.Observe(now, rate)
	if h.reported == spec.AbsoluteFaulty {
		return // latched
	}
	switch h.inner.Verdict(now) {
	case spec.AbsoluteFaulty:
		h.reported = spec.AbsoluteFaulty
	case spec.PerfFaulty:
		h.faultyStreak++
		h.nominalStreak = 0
		if h.reported == spec.Nominal && h.faultyStreak >= h.enterAfter {
			h.reported = spec.PerfFaulty
		}
	case spec.Nominal:
		h.nominalStreak++
		h.faultyStreak = 0
		if h.reported == spec.PerfFaulty && h.nominalStreak >= h.exitAfter {
			h.reported = spec.Nominal
		}
	}
}

// Verdict implements Detector, returning the debounced classification.
func (h *Hysteresis) Verdict(now float64) spec.Verdict {
	if h.reported == spec.AbsoluteFaulty {
		return h.reported
	}
	// Promotion can also arrive between observations (pure silence).
	if h.inner.Verdict(now) == spec.AbsoluteFaulty {
		h.reported = spec.AbsoluteFaulty
	}
	return h.reported
}

// Inner exposes the wrapped detector.
func (h *Hysteresis) Inner() Detector { return h.inner }

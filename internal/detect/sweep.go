package detect

import (
	"fmt"
	"math"
	"sort"

	"failstutter/internal/spec"
)

// This file is the parallel fleet-sweep engine: the multi-core path
// through a PeerSet monitoring sweep. A sweep has two phases — observe
// every member, then classify every member — and both are embarrassingly
// parallel once the shared sorted-median mirror is taken off the inner
// loop:
//
//   - SweepObserve partitions the fleet's members into contiguous dense
//     index ranges, one per worker; each member's window and cached
//     median are member-private, so workers touch disjoint state. The
//     mirror is not maintained incrementally — it is marked dirty once
//     and rebuilt at verdict time, exactly like the serial large-fleet
//     mode.
//   - The rebuild replaces the single-threaded O(P log P) sort with a
//     parallel sort of per-worker runs followed by a k-way merge. The
//     merged array is the same multiset in the same ascending order a
//     global sort would produce, so the rebuild is bit-identical to the
//     serial one at every worker count (a property test pins this on
//     random streams).
//   - SweepVerdicts fans the read-only exclude-one quantile
//     classification across the same index ranges, counting flags in
//     per-worker counters that are reduced in global member order after
//     the barrier, so the flag count never depends on goroutine timing.
//
// Byte-determinism therefore holds at every worker count: verdicts are
// pure functions of member state and the (unique) sorted mirror, and
// every reduction runs in dense member order.

// Parallel abstracts the worker pool the sweep engine fans across:
// Do(fn) must run fn(w) once for each worker w in [0, Workers()) and
// return when all have finished, imposing no ordering between workers.
// sim.WorkerPool implements it; Serial is the inline fallback.
type Parallel interface {
	Workers() int
	Do(fn func(worker int))
}

// Serial is the degenerate Parallel executor: one worker, run inline on
// the caller. A nil Parallel is treated as Serial everywhere.
var Serial Parallel = serialExec{}

type serialExec struct{}

func (serialExec) Workers() int           { return 1 }
func (serialExec) Do(fn func(worker int)) { fn(0) }

// sweepChunk returns worker w's dense index range [lo, hi): n members
// split into workers contiguous chunks, sized within one of each other.
func sweepChunk(n, workers, w int) (lo, hi int) {
	return n * w / workers, n * (w + 1) / workers
}

// Register adds the member if it is new and returns its dense sweep
// index — its position in registration order, the global member order
// the sweep engine partitions and reduces in. Registering every member
// up front lets SweepObserve run with no map lookups and no membership
// mutation inside the parallel region.
func (p *PeerSet) Register(id string) int {
	if m := p.members[id]; m != nil {
		return int(m.idx)
	}
	return int(p.addMember(id).idx)
}

// MemberCount returns the number of registered members — the length the
// sweep engine's rates and verdicts slices must have.
func (p *PeerSet) MemberCount() int { return len(p.list) }

// SweepObserve records one rate sample per member — rates[i] is dense
// member i's sample, all at the same timestamp — fanning the per-member
// window updates across the pool's workers. Equivalent to calling
// Observe for every member in dense order at the same now, and
// byte-identical at any worker count; the sorted mirror is deferred to
// the next verdict's rebuild, exactly like the serial large-fleet mode.
func (p *PeerSet) SweepObserve(par Parallel, now float64, rates []float64) {
	n := len(p.list)
	if len(rates) != n {
		panic(fmt.Sprintf("detect: SweepObserve got %d rates for %d members", len(rates), n))
	}
	if n == 0 {
		return
	}
	if par == nil {
		par = Serial
	}
	p.medsDirty = true
	workers := par.Workers()
	par.Do(func(w int) {
		lo, hi := sweepChunk(n, workers, w)
		for i := lo; i < hi; i++ {
			m := p.list[i]
			rate := rates[i]
			if !m.sawAnything {
				m.lastProgress = now
				m.sawAnything = true
			}
			if rate > 0 {
				m.lastProgress = now
			}
			m.window.Observe(rate)
			m.med = m.window.Median()
		}
	})
}

// SweepVerdicts classifies every member as of now, writing dense member
// i's verdict to out[i], and returns the number of non-nominal members.
// A stale mirror is rebuilt first — in parallel, via the sorted-run
// merge — then the exclude-one classification fans read-only across the
// workers; the per-worker flag counters are reduced in global member
// order, so the count and every byte of out are identical at any worker
// count.
func (p *PeerSet) SweepVerdicts(par Parallel, now float64, out []spec.Verdict) int {
	n := len(p.list)
	if len(out) != n {
		panic(fmt.Sprintf("detect: SweepVerdicts got %d verdict slots for %d members", len(out), n))
	}
	if n == 0 {
		return 0
	}
	if par == nil {
		par = Serial
	}
	if p.medsDirty {
		p.rebuildMedsParallel(par)
	}
	workers := par.Workers()
	if cap(p.flagCounts) < workers {
		p.flagCounts = make([]int, workers)
	}
	flags := p.flagCounts[:workers]
	par.Do(func(w int) {
		count := 0
		lo, hi := sweepChunk(n, workers, w)
		for i := lo; i < hi; i++ {
			m := p.list[i]
			v, done := p.quickVerdict(m, now)
			if !done {
				v = p.classify(m)
			}
			out[i] = v
			if v != spec.Nominal {
				count++
			}
		}
		flags[w] = count
	})
	total := 0
	for _, c := range flags {
		total += c
	}
	return total
}

// peerParallelRebuildMin is the fleet size below which the parallel
// rebuild falls back to the serial sort: under it the fork-join handshake
// costs more than the sort it would split. The fallback is invisible —
// both paths produce bit-identical mirrors.
const peerParallelRebuildMin = 1024

// rebuildMedsParallel regenerates the ascending medians mirror with the
// pool: every member's cached median is copied into its worker's
// contiguous run, each run is sorted in parallel under the serial
// rebuild's exact order (NaNs first, then ascending), and the sorted
// runs are combined by a k-way merge into the mirror. The merge emits
// the same multiset in the same total order as one global sort, so the
// result is bit-identical to rebuildMeds at every worker count.
func (p *PeerSet) rebuildMedsParallel(par Parallel) {
	n := len(p.list)
	workers := par.Workers()
	if workers <= 1 || n < peerParallelRebuildMin {
		p.rebuildMeds()
		return
	}
	if cap(p.runs) < n {
		p.runs = make([]float64, n, 2*n)
	}
	runs := p.runs[:n]
	if cap(p.runSorters) < workers {
		p.runSorters = make([]medsSorter, workers)
		p.runHeads = make([]int, workers)
		p.runEnds = make([]int, workers)
	}
	sorters := p.runSorters[:workers]
	heads := p.runHeads[:workers]
	ends := p.runEnds[:workers]
	par.Do(func(w int) {
		lo, hi := sweepChunk(n, workers, w)
		for i := lo; i < hi; i++ {
			runs[i] = p.list[i].med
		}
		sorters[w].s = runs[lo:hi]
		sort.Sort(&sorters[w])
	})
	for w := 0; w < workers; w++ {
		heads[w], ends[w] = sweepChunk(n, workers, w)
	}
	if cap(p.meds) < n {
		p.meds = make([]float64, n, 2*n)
	}
	meds := p.meds[:n]
	// k-way merge by linear scan over the run heads: the worker count is
	// small, so each pick is a handful of cache-resident compares. Ties
	// take the lowest run, which cannot change the emitted bytes — tied
	// heads hold equal values (NaNs included: the medians are window
	// medians, never distinct NaN payloads).
	for out := 0; out < n; out++ {
		best := -1
		var bestV float64
		for w := 0; w < workers; w++ {
			if heads[w] >= ends[w] {
				continue
			}
			v := runs[heads[w]]
			if best < 0 || medsLess(v, bestV) {
				best, bestV = w, v
			}
		}
		meds[out] = bestV
		heads[best]++
	}
	p.meds = meds
	p.medsDirty = false
}

// medsLess is the mirror's total order — sort.Float64s order, NaNs
// first — shared by the serial sorter and the parallel merge.
func medsLess(a, b float64) bool {
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

package detect

import (
	"testing"
	"testing/quick"

	"failstutter/internal/sim"
	"failstutter/internal/spec"
)

func specDet() Detector {
	return NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.2, PromotionTimeout: 50})
}

func TestHysteresisSuppressesTransients(t *testing.T) {
	h := NewHysteresis(specDet(), 3, 2)
	now := 0.0
	obs := func(r float64) {
		h.Observe(now, r)
		now++
	}
	obs(100)
	obs(10) // 1 faulty sample
	obs(10) // 2 faulty samples
	if h.Verdict(now) != spec.Nominal {
		t.Fatal("fired before enter streak")
	}
	obs(10) // 3rd: fires
	if h.Verdict(now) != spec.PerfFaulty {
		t.Fatal("did not fire after enter streak")
	}
	obs(100) // 1 nominal
	if h.Verdict(now) != spec.PerfFaulty {
		t.Fatal("recovered before exit streak")
	}
	obs(100) // 2nd: recovers
	if h.Verdict(now) != spec.Nominal {
		t.Fatal("did not recover after exit streak")
	}
}

func TestHysteresisBrokenStreakResets(t *testing.T) {
	h := NewHysteresis(specDet(), 3, 1)
	now := 0.0
	obs := func(r float64) {
		h.Observe(now, r)
		now++
	}
	obs(10)
	obs(10)
	obs(100) // streak broken
	obs(10)
	obs(10)
	if h.Verdict(now) != spec.Nominal {
		t.Fatal("broken streak still fired")
	}
}

func TestHysteresisAbsoluteLatches(t *testing.T) {
	h := NewHysteresis(specDet(), 3, 1)
	h.Observe(0, 0)
	// Silence past the promotion timeout, queried without new observations.
	if h.Verdict(100) != spec.AbsoluteFaulty {
		t.Fatal("promotion not passed through")
	}
	// Recovery observations must not clear an absolute fault.
	h.Observe(101, 100)
	if h.Verdict(102) != spec.AbsoluteFaulty {
		t.Fatal("absolute fault unlatched")
	}
}

func TestHysteresisInvalidStreaksPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero streak did not panic")
		}
	}()
	NewHysteresis(specDet(), 0, 1)
}

// Property: hysteresis never reports PerfFaulty unless the inner detector
// produced at least enterAfter consecutive faulty verdicts.
func TestHysteresisNeverEarlyProperty(t *testing.T) {
	f := func(pattern []bool, enter8 uint8) bool {
		enter := int(enter8%5) + 1
		h := NewHysteresis(specDet(), enter, 1)
		streak := 0
		now := 0.0
		for _, bad := range pattern {
			rate := 100.0
			if bad {
				rate = 10
				streak++
			} else {
				streak = 0
			}
			h.Observe(now, rate)
			got := h.Verdict(now)
			if got == spec.PerfFaulty && streak < enter {
				return false
			}
			now++
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryPublishesTransitionsOnly(t *testing.T) {
	r := NewRegistry()
	var events []Event
	r.Subscribe(func(e Event) { events = append(events, e) })
	r.Update(1, "d0", spec.Nominal) // no change from implicit nominal
	if len(events) != 0 {
		t.Fatal("nominal->nominal published")
	}
	r.Update(2, "d0", spec.PerfFaulty)
	r.Update(3, "d0", spec.PerfFaulty) // unchanged
	r.Update(4, "d0", spec.Nominal)
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].From != spec.Nominal || events[0].To != spec.PerfFaulty || events[0].At != 2 {
		t.Fatalf("first event = %+v", events[0])
	}
	if r.Notifications() != 2 {
		t.Fatalf("notifications = %d", r.Notifications())
	}
}

func TestRegistryStateAndFaulty(t *testing.T) {
	r := NewRegistry()
	r.Update(1, "b", spec.PerfFaulty)
	r.Update(1, "a", spec.AbsoluteFaulty)
	r.Update(1, "c", spec.Nominal)
	if r.State("b") != spec.PerfFaulty {
		t.Fatalf("state(b) = %v", r.State("b"))
	}
	if r.State("unknown") != spec.Nominal {
		t.Fatal("unknown component not nominal")
	}
	f := r.Faulty()
	if len(f) != 2 || f[0] != "a" || f[1] != "b" {
		t.Fatalf("faulty = %v", f)
	}
}

func TestRegistryEventsCopy(t *testing.T) {
	r := NewRegistry()
	r.Update(1, "x", spec.PerfFaulty)
	evs := r.Events()
	evs[0].Component = "mutated"
	if r.Events()[0].Component != "x" {
		t.Fatal("Events returned a mutable reference")
	}
}

func TestProbeComputesRates(t *testing.T) {
	s := sim.New()
	counter := 0.0
	// Counter advances 10 units/s via events every 0.5 s.
	var tick func()
	tick = func() {
		counter += 5
		if s.Now() < 10 {
			s.After(0.5, tick)
		}
	}
	s.After(0.5, tick)
	var rates []float64
	NewProbe(s, 1.0, func() float64 { return counter }, func(now, rate float64) {
		rates = append(rates, rate)
	})
	s.RunUntil(5)
	if len(rates) != 5 {
		t.Fatalf("samples = %d, want 5", len(rates))
	}
	// The first sample races the co-scheduled counter tick at t=1 and may
	// see only half the interval's progress; steady-state samples must be
	// exact.
	for _, r := range rates[1:] {
		if r != 10 {
			t.Fatalf("rates = %v, want steady 10", rates)
		}
	}
}

func TestProbeStop(t *testing.T) {
	s := sim.New()
	n := 0
	p := NewProbe(s, 1, func() float64 { return 0 }, func(now, rate float64) { n++ })
	s.RunUntil(3.5)
	p.Stop()
	s.RunUntil(10)
	if n != 3 {
		t.Fatalf("samples after stop = %d, want 3", n)
	}
	if p.Samples() != 3 {
		t.Fatalf("Samples() = %d", p.Samples())
	}
}

func TestProbeDecreasingCounterPanics(t *testing.T) {
	s := sim.New()
	counter := 100.0
	NewProbe(s, 1, func() float64 { counter -= 1; return counter }, func(now, rate float64) {})
	defer func() {
		if recover() == nil {
			t.Fatal("decreasing counter did not panic")
		}
	}()
	s.RunUntil(2)
}

func TestProbeInvalidIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	NewProbe(sim.New(), 0, func() float64 { return 0 }, nil)
}

// End-to-end: probe + detector + registry watching a simulated station
// that stutters.
func TestDetectionPipelineEndToEnd(t *testing.T) {
	s := sim.New()
	st := sim.NewStation(s, "d0", 100)
	// Keep the station saturated.
	var refill func()
	refill = func() {
		st.SubmitFunc(50, func(*sim.Request) { refill() })
	}
	refill()
	// Slow to 30% at t=60.
	s.At(60, func() { st.SetMultiplier(0.3) })

	det := NewHysteresis(NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.3, PromotionTimeout: 30}), 3, 3)
	reg := NewRegistry()
	var firedAt float64 = -1
	reg.Subscribe(func(e Event) {
		if e.To == spec.PerfFaulty && firedAt < 0 {
			firedAt = e.At
		}
	})
	NewProbe(s, 1, func() float64 { return float64(st.Completed()) * 50 }, func(now, rate float64) {
		det.Observe(now, rate)
		reg.Update(now, "d0", det.Verdict(now))
	})
	s.RunUntil(120)
	if firedAt < 60 {
		t.Fatalf("detector fired at %v, before the fault", firedAt)
	}
	if firedAt > 70 {
		t.Fatalf("detector fired at %v, too slow (fault at 60)", firedAt)
	}
	if reg.State("d0") != spec.PerfFaulty {
		t.Fatalf("final state = %v", reg.State("d0"))
	}
}

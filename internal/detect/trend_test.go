package detect

import (
	"math"
	"testing"

	"failstutter/internal/sim"
	"failstutter/internal/spec"
)

func trendDet() *TrendDetector {
	// 20-sample window with a 15% per-window decline threshold: wide
	// enough that 5% multiplicative noise cannot fire it (the Theil-Sen
	// slope noise over 20 samples is an order of magnitude below the
	// threshold), reactive enough to flag a steady ramp within a window.
	return NewTrendDetector(TrendConfig{WindowSamples: 20, DeclineFrac: 0.15})
}

func TestTrendDetectorFlagsDecline(t *testing.T) {
	d := trendDet()
	now := 0.0
	// Steady 100, then a persistent downward ramp.
	for i := 0; i < 20; i++ {
		d.Observe(now, 100)
		now++
	}
	if v := d.Verdict(now); v != spec.Nominal {
		t.Fatalf("steady rate verdict = %v", v)
	}
	rate := 100.0
	fired := false
	for i := 0; i < 30; i++ {
		rate -= 3
		d.Observe(now, rate)
		if d.Verdict(now) == spec.PerfFaulty {
			fired = true
			break
		}
		now++
	}
	if !fired {
		t.Fatal("trend detector never fired on a steep decline")
	}
}

func TestTrendDetectorIgnoresLowButStable(t *testing.T) {
	// The whole point: a component that is merely SLOW (not declining)
	// never fires — heterogeneous parts are tolerated.
	d := trendDet()
	now := 0.0
	for i := 0; i < 50; i++ {
		d.Observe(now, 20) // far below any nominal spec, but flat
		now++
	}
	if v := d.Verdict(now); v != spec.Nominal {
		t.Fatalf("flat-but-slow verdict = %v, want nominal", v)
	}
}

func TestTrendDetectorToleratesNoise(t *testing.T) {
	d := trendDet()
	rng := sim.NewRNG(11)
	now := 0.0
	for i := 0; i < 100; i++ {
		d.Observe(now, 100*(1+rng.Norm(0, 0.05)))
		if v := d.Verdict(now); v != spec.Nominal {
			t.Fatalf("noise fired trend detector at sample %d: %v", i, v)
		}
		now++
	}
}

func TestTrendDetectorRecovery(t *testing.T) {
	d := trendDet()
	now := 0.0
	rate := 100.0
	for i := 0; i < 22; i++ {
		rate -= 3
		d.Observe(now, rate)
		now++
	}
	if d.Verdict(now) != spec.PerfFaulty {
		t.Fatal("did not fire during decline")
	}
	// Rate stabilizes at the lower level: the decline is over.
	for i := 0; i < 25; i++ {
		d.Observe(now, rate)
		now++
	}
	if v := d.Verdict(now); v != spec.Nominal {
		t.Fatalf("verdict after stabilization = %v, want nominal", v)
	}
}

func TestTrendDetectorPromotion(t *testing.T) {
	d := NewTrendDetector(TrendConfig{WindowSamples: 5, DeclineFrac: 0.1, PromotionTimeout: 5})
	d.Observe(0, 100)
	d.Observe(1, 0)
	if v := d.Verdict(20); v != spec.AbsoluteFaulty {
		t.Fatalf("silent component verdict = %v", v)
	}
}

func TestTrendDetectorSilentWindow(t *testing.T) {
	d := trendDet()
	now := 0.0
	for i := 0; i < 25; i++ {
		d.Observe(now, 0)
		now++
	}
	if v := d.Verdict(now); v != spec.PerfFaulty {
		t.Fatalf("all-zero window verdict = %v, want perf-faulty", v)
	}
}

func TestTrendDetectorSlopeBeforeFull(t *testing.T) {
	d := trendDet()
	d.Observe(0, 100)
	if !math.IsNaN(d.Slope()) && d.Slope() != 0 {
		// Theil-Sen of one point is NaN; just ensure no panic and nominal.
	}
	if v := d.Verdict(1); v != spec.Nominal {
		t.Fatalf("partial-window verdict = %v", v)
	}
}

func TestTrendDetectorInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	NewTrendDetector(TrendConfig{WindowSamples: 2, DeclineFrac: 0.1})
}

package device

import (
	"math"
	"testing"

	"failstutter/internal/sim"
)

func testSwitch(s *sim.Simulator, ports int) *Switch {
	return NewSwitch(s, SwitchParams{
		Ports:       ports,
		LinkRate:    100, // bytes/s
		DrainRate:   100,
		BufferBytes: 50,
	})
}

func TestLinkDelivery(t *testing.T) {
	s := sim.New()
	l := NewLink(s, "l0", 100, 0.5)
	var lat float64
	l.Send(200, func(d float64) { lat = d })
	s.Run()
	// 200 bytes at 100 B/s + 0.5 s propagation = 2.5 s.
	if math.Abs(lat-2.5) > 1e-9 {
		t.Fatalf("latency = %v, want 2.5", lat)
	}
	if l.BytesDelivered() != 200 || l.Delivered() != 1 {
		t.Fatalf("delivered = %v/%d", l.BytesDelivered(), l.Delivered())
	}
}

func TestSwitchSimpleDelivery(t *testing.T) {
	s := sim.New()
	sw := testSwitch(s, 2)
	delivered := false
	sw.Sender(0).Enqueue([]Message{{Dst: 1, Size: 10, OnDelivered: func() { delivered = true }}}, nil)
	s.Run()
	if !delivered {
		t.Fatal("message not delivered")
	}
	if sw.DeliveredBytes(1) != 10 {
		t.Fatalf("delivered bytes = %v", sw.DeliveredBytes(1))
	}
	if sw.Sender(0).Sent() != 1 {
		t.Fatalf("sent = %d", sw.Sender(0).Sent())
	}
}

func TestSwitchInOrderPerSender(t *testing.T) {
	s := sim.New()
	sw := testSwitch(s, 2)
	var order []int
	msgs := make([]Message, 5)
	for i := range msgs {
		i := i
		msgs[i] = Message{Dst: 1, Size: 10, OnDelivered: func() { order = append(order, i) }}
	}
	sw.Sender(0).Enqueue(msgs, nil)
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("delivery order %v not FIFO", order)
		}
	}
}

func TestSwitchOnIdleFires(t *testing.T) {
	s := sim.New()
	sw := testSwitch(s, 2)
	idle := false
	sw.Sender(0).Enqueue([]Message{{Dst: 1, Size: 10}, {Dst: 1, Size: 10}}, func() { idle = true })
	s.Run()
	if !idle {
		t.Fatal("onIdle did not fire")
	}
	if sw.Sender(0).Backlog() != 0 {
		t.Fatal("backlog not drained")
	}
}

func TestSwitchHOLBlockingOnSlowReceiver(t *testing.T) {
	// Port 1's receiver is 100x slower. Sender 0 sends to port 1 first,
	// then to port 2; the second message is head-of-line blocked even
	// though port 2 is idle.
	s := sim.New()
	sw := testSwitch(s, 3)
	sw.ReceiverComposite(1).Set("slow", 0.01)

	var fastDelivered sim.Time
	// Fill port 1's buffer (50 bytes) plus one more to force blocking.
	msgs := []Message{
		{Dst: 1, Size: 40},
		{Dst: 1, Size: 40}, // must wait for buffer space (40+40 > 50)
		{Dst: 2, Size: 10, OnDelivered: func() { fastDelivered = s.Now() }},
	}
	sw.Sender(0).Enqueue(msgs, nil)
	s.Run()
	// Without blocking, the 10-byte message to the idle port would arrive
	// in well under a second. With HOL blocking it waits for the slow
	// receiver to drain 40 bytes at 1 B/s => tens of seconds.
	if fastDelivered < 10 {
		t.Fatalf("fast-port message arrived at %v; HOL blocking absent", fastDelivered)
	}
}

func TestSwitchWeightedUnfairness(t *testing.T) {
	// Two senders compete for one congested receiver; the favoured route
	// should complete far more traffic by a fixed horizon.
	s := sim.New()
	sw := NewSwitch(s, SwitchParams{Ports: 3, LinkRate: 1000, DrainRate: 10, BufferBytes: 20})
	sw.Sender(0).SetWeight(10)
	sw.Sender(1).SetWeight(1)
	mk := func(n int) []Message {
		ms := make([]Message, n)
		for i := range ms {
			ms[i] = Message{Dst: 2, Size: 10}
		}
		return ms
	}
	sw.Sender(0).Enqueue(mk(100), nil)
	sw.Sender(1).Enqueue(mk(100), nil)
	s.RunUntil(100) // receiver drains ~100 bytes = ~10 messages total
	s0, s1 := sw.Sender(0).Sent(), sw.Sender(1).Sent()
	if s0 <= s1*2 {
		t.Fatalf("favoured sender %d vs disfavoured %d: unfairness absent", s0, s1)
	}
}

func TestSwitchFairWithEqualWeights(t *testing.T) {
	s := sim.New()
	sw := NewSwitch(s, SwitchParams{Ports: 3, LinkRate: 1000, DrainRate: 10, BufferBytes: 20})
	mk := func(n int) []Message {
		ms := make([]Message, n)
		for i := range ms {
			ms[i] = Message{Dst: 2, Size: 10}
		}
		return ms
	}
	sw.Sender(0).Enqueue(mk(50), nil)
	sw.Sender(1).Enqueue(mk(50), nil)
	s.RunUntil(200)
	s0, s1 := float64(sw.Sender(0).Sent()), float64(sw.Sender(1).Sent())
	if math.Abs(s0-s1) > math.Max(2, 0.2*(s0+s1)/2) {
		t.Fatalf("equal-weight senders diverged: %v vs %v", s0, s1)
	}
}

func TestSwitchFreeze(t *testing.T) {
	s := sim.New()
	sw := testSwitch(s, 2)
	var done sim.Time
	sw.Sender(0).Enqueue([]Message{{Dst: 1, Size: 50, OnDelivered: func() { done = s.Now() }}}, nil)
	// Without freeze: 0.5 s link + 0.5 s drain = 1 s. Freeze 2 s in the
	// middle.
	sw.FreezeAt(0.25, 2)
	s.Run()
	if done < 2.9 {
		t.Fatalf("delivery at %v; freeze did not stall traffic", done)
	}
}

func TestSwitchOversizeMessagePanics(t *testing.T) {
	s := sim.New()
	sw := testSwitch(s, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize message did not panic")
		}
	}()
	sw.Sender(0).Enqueue([]Message{{Dst: 1, Size: 1000}}, nil)
	s.Run()
}

func TestSwitchInvalidDestPanics(t *testing.T) {
	s := sim.New()
	sw := testSwitch(s, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid destination did not panic")
		}
	}()
	sw.Sender(0).Enqueue([]Message{{Dst: 7, Size: 1}}, nil)
}

func TestSwitchConservation(t *testing.T) {
	// All enqueued bytes are eventually delivered, once, regardless of
	// contention.
	s := sim.New()
	sw := NewSwitch(s, SwitchParams{Ports: 4, LinkRate: 500, DrainRate: 50, BufferBytes: 30})
	total := 0.0
	for i := 0; i < 4; i++ {
		var msgs []Message
		for j := 0; j < 20; j++ {
			dst := (i + 1 + j) % 4
			if dst == i {
				dst = (dst + 1) % 4
			}
			msgs = append(msgs, Message{Dst: dst, Size: 10})
			total += 10
		}
		sw.Sender(i).Enqueue(msgs, nil)
	}
	s.Run()
	if math.Abs(sw.TotalDelivered()-total) > 1e-9 {
		t.Fatalf("delivered %v of %v bytes", sw.TotalDelivered(), total)
	}
}

package device

import (
	"fmt"

	"failstutter/internal/faults"
	"failstutter/internal/sim"
)

// Link is a point-to-point network link: messages are serialized at the
// link bandwidth, then delivered after a propagation latency. Performance
// faults modulate the serialization rate.
type Link struct {
	station *sim.Station
	comp    *faults.Composite
	s       *sim.Simulator
	latency sim.Duration

	bytesDone float64
	delivered uint64
}

// NewLink creates a link with the given bandwidth (bytes/s) and one-way
// propagation latency (seconds).
func NewLink(s *sim.Simulator, name string, bandwidth float64, latency sim.Duration) *Link {
	if latency < 0 {
		panic(fmt.Sprintf("device: link %q negative latency", name))
	}
	l := &Link{
		station: sim.NewStation(s, name, bandwidth),
		s:       s,
		latency: latency,
	}
	l.comp = faults.NewComposite(l.station)
	return l
}

// Composite exposes the fault target for injectors.
func (l *Link) Composite() *faults.Composite { return l.comp }

// Failed reports absolute failure.
func (l *Link) Failed() bool { return l.station.Failed() }

// BytesDelivered returns total bytes that completed delivery.
func (l *Link) BytesDelivered() float64 { return l.bytesDone }

// Delivered returns the count of delivered messages.
func (l *Link) Delivered() uint64 { return l.delivered }

// Send transmits `bytes` over the link; onDelivered (if non-nil) fires
// after serialization plus propagation.
func (l *Link) Send(bytes float64, onDelivered func(latency float64)) {
	start := l.s.Now()
	l.station.SubmitFunc(bytes, func(*sim.Request) {
		l.s.After(l.latency, func() {
			l.bytesDone += bytes
			l.delivered++
			if onDelivered != nil {
				onDelivered(l.s.Now() - start)
			}
		})
	})
}

// Package device implements simulated hardware components exhibiting the
// behaviours surveyed in Section 2 of the paper: multi-zone disks with
// bad-block remapping and aged on-disk layouts, network links and switches
// with bounded buffers, head-of-line blocking and route unfairness, and
// CPUs with fault-masked caches and interference-sensitive memory systems.
//
// Disks, links and switches run on the internal/sim discrete-event kernel;
// CPU behaviour is an analytic model (deterministic run-time functions),
// which is all the cache/interference experiments require.
package device

import (
	"fmt"
	"math"

	"failstutter/internal/faults"
	"failstutter/internal/sim"
	"failstutter/internal/trace"
)

// Zone describes one radial zone of a disk: a fraction of the capacity
// served at a given sequential bandwidth. Outer zones come first and are
// faster, per the multi-zone measurements cited by the paper (factor of
// two across zones).
type Zone struct {
	// CapacityFrac is this zone's share of total capacity, in (0, 1].
	CapacityFrac float64
	// Bandwidth is the sequential transfer rate within the zone, bytes/s.
	Bandwidth float64
}

// DiskParams configures a simulated disk.
type DiskParams struct {
	Name string
	// CapacityBlocks is the number of addressable blocks.
	CapacityBlocks int64
	// BlockBytes is the size of one block.
	BlockBytes float64
	// Zones lists the zone map, outermost first. CapacityFracs must sum to
	// 1 (within 1e-9). A single zone models a constant-bandwidth disk.
	Zones []Zone
	// SeekTime is the cost of a non-sequential access, seconds.
	SeekTime float64
	// RemappedBlocks is the number of blocks the drive has transparently
	// remapped; accessing one costs RemapPenalty. The remapped subset is a
	// deterministic pseudo-random function of RemapSeed.
	RemappedBlocks int64
	RemapPenalty   float64
	RemapSeed      uint64
	// AgingFactor scales effective bandwidth for aged file-system layouts:
	// 1 is a fresh layout; the survey reports factors down to 0.5.
	AgingFactor float64
}

// HawkParams returns parameters modelled on the paper's 5400-RPM Seagate
// Hawk example: 5.5 MB/s sequential reads on a healthy drive.
func HawkParams(name string) DiskParams {
	return DiskParams{
		Name:           name,
		CapacityBlocks: 1 << 20, // 1 Mi blocks of 4 KiB ~ 4 GiB
		BlockBytes:     4096,
		Zones: []Zone{
			{CapacityFrac: 0.4, Bandwidth: 5.5e6},
			{CapacityFrac: 0.35, Bandwidth: 4.5e6},
			{CapacityFrac: 0.25, Bandwidth: 3.2e6},
		},
		SeekTime:     0.011, // ~11 ms average seek+rotation
		RemapPenalty: 0.022, // remap = extra seek out and back
		AgingFactor:  1,
	}
}

// Disk is a simulated disk drive. Requests are serviced FCFS by an
// underlying station whose work units are seconds of nominal service time,
// so performance faults (multiplier < 1) stretch service uniformly while
// zone geometry, seeks, remaps and aging shape each request's nominal cost.
type Disk struct {
	params  DiskParams
	station *sim.Station
	comp    *faults.Composite
	s       *sim.Simulator

	zoneStartBlock []int64 // first block of each zone
	lastBlock      int64   // for sequential-access detection
	haveLast       bool

	bytesDone float64
	reads     uint64
	writes    uint64
	onFail    []func()

	tracer *trace.Tracer
	track  trace.TrackID
}

// SetMultiplier forwards a fault factor to the underlying station; Disk
// itself is the faults.Target so failure callbacks can be observed.
func (d *Disk) SetMultiplier(m float64) { d.station.SetMultiplier(m) }

// NewDisk validates params and builds the disk.
func NewDisk(s *sim.Simulator, p DiskParams) (*Disk, error) {
	if p.CapacityBlocks <= 0 || p.BlockBytes <= 0 {
		return nil, fmt.Errorf("device: disk %q needs positive capacity and block size", p.Name)
	}
	if len(p.Zones) == 0 {
		return nil, fmt.Errorf("device: disk %q has no zones", p.Name)
	}
	sum := 0.0
	for i, z := range p.Zones {
		if z.CapacityFrac <= 0 || z.Bandwidth <= 0 {
			return nil, fmt.Errorf("device: disk %q zone %d invalid", p.Name, i)
		}
		sum += z.CapacityFrac
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("device: disk %q zone fractions sum to %v, want 1", p.Name, sum)
	}
	if p.AgingFactor <= 0 || p.AgingFactor > 1 {
		return nil, fmt.Errorf("device: disk %q aging factor %v outside (0, 1]", p.Name, p.AgingFactor)
	}
	if p.RemappedBlocks < 0 || p.RemappedBlocks > p.CapacityBlocks {
		return nil, fmt.Errorf("device: disk %q remapped blocks %d out of range", p.Name, p.RemappedBlocks)
	}
	d := &Disk{
		params:  p,
		station: sim.NewStation(s, p.Name, 1), // units: seconds of service
		s:       s,
	}
	d.comp = faults.NewComposite(d)
	d.zoneStartBlock = make([]int64, len(p.Zones))
	start := int64(0)
	for i, z := range p.Zones {
		d.zoneStartBlock[i] = start
		start += int64(z.CapacityFrac * float64(p.CapacityBlocks))
	}
	return d, nil
}

// MustDisk is NewDisk for static configurations known to be valid.
func MustDisk(s *sim.Simulator, p DiskParams) *Disk {
	d, err := NewDisk(s, p)
	if err != nil {
		panic(err)
	}
	return d
}

// Params returns the construction parameters.
func (d *Disk) Params() DiskParams { return d.params }

// Composite exposes the fault-composition target for injectors.
func (d *Disk) Composite() *faults.Composite { return d.comp }

// Name returns the disk's label.
func (d *Disk) Name() string { return d.params.Name }

// SetTracer attaches a span tracer. The disk's access spans and its
// station's queue/service spans share one track (the disk name), so a
// disk-level "write" visually contains the station-level "service" slice
// beneath it in the exported trace.
func (d *Disk) SetTracer(t *trace.Tracer) {
	d.tracer = t
	if t != nil {
		d.track = t.Track(d.params.Name)
	}
	d.station.SetTracer(t)
}

// Failed reports whether the disk has absolutely failed.
func (d *Disk) Failed() bool { return d.station.Failed() }

// Fail fail-stops the disk, abandoning queued requests, and runs any
// registered failure callbacks exactly once.
func (d *Disk) Fail() {
	if d.station.Failed() {
		return
	}
	d.station.Fail()
	for _, fn := range d.onFail {
		fn()
	}
}

// OnFail registers a callback invoked when the disk absolutely fails.
func (d *Disk) OnFail(fn func()) { d.onFail = append(d.onFail, fn) }

// BytesCompleted returns the total bytes transferred so far.
func (d *Disk) BytesCompleted() float64 { return d.bytesDone }

// Reads and Writes return completed request counts.
func (d *Disk) Reads() uint64  { return d.reads }
func (d *Disk) Writes() uint64 { return d.writes }

// QueueLen returns the number of requests queued behind the one in
// service.
func (d *Disk) QueueLen() int { return d.station.QueueLen() }

// BusyTime returns cumulative seconds spent actively serving requests.
// Together with BytesCompleted it yields the disk's true service speed,
// independent of how much demand it received — the signal a detector
// needs to avoid flagging an idle disk as slow.
func (d *Disk) BusyTime() float64 { return d.station.BusyTime() }

// Pending returns the number of requests accepted but not yet completed,
// including the one in service.
func (d *Disk) Pending() int {
	n := d.station.QueueLen()
	if d.station.InService() != nil {
		n++
	}
	return n
}

// zoneOf returns the index of the zone containing block.
func (d *Disk) zoneOf(block int64) int {
	for i := len(d.zoneStartBlock) - 1; i >= 0; i-- {
		if block >= d.zoneStartBlock[i] {
			return i
		}
	}
	return 0
}

// ZoneBandwidth returns the nominal sequential bandwidth at the given
// block, before aging and fault modulation.
func (d *Disk) ZoneBandwidth(block int64) float64 {
	return d.params.Zones[d.zoneOf(block)].Bandwidth
}

// isRemapped reports whether the drive transparently remapped block. The
// subset is a deterministic hash-based sample of the requested density, so
// identical drives with different seeds remap different blocks — invisible
// to the file system, exactly as the paper describes.
func (d *Disk) isRemapped(block int64) bool {
	if d.params.RemappedBlocks == 0 {
		return false
	}
	h := uint64(block)*0x9e3779b97f4a7c15 + d.params.RemapSeed
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return int64(h%uint64(d.params.CapacityBlocks)) < d.params.RemappedBlocks
}

// serviceTime computes the nominal service seconds for an access.
func (d *Disk) serviceTime(block int64, blocks int64) float64 {
	if block < 0 || blocks <= 0 || block+blocks > d.params.CapacityBlocks {
		panic(fmt.Sprintf("device: disk %q access [%d, +%d) out of range", d.params.Name, block, blocks))
	}
	t := 0.0
	if !d.haveLast || block != d.lastBlock+1 {
		t += d.params.SeekTime
	}
	for i := int64(0); i < blocks; i++ {
		b := block + i
		bw := d.ZoneBandwidth(b) * d.params.AgingFactor
		t += d.params.BlockBytes / bw
		if d.isRemapped(b) {
			t += d.params.RemapPenalty
		}
	}
	d.lastBlock = block + blocks - 1
	d.haveLast = true
	return t
}

// Access submits a transfer of `blocks` blocks starting at `block`. The
// callback, if non-nil, receives the request latency when service
// completes. isWrite only affects accounting; the timing model is
// symmetric.
func (d *Disk) Access(block, blocks int64, isWrite bool, onDone func(latency float64)) {
	d.AccessSpan(0, block, blocks, isWrite, onDone)
}

// AccessSpan is Access with a caller-level parent span: the disk records
// an operation span (named "read" or "write", tagged with the block
// number) parented to the caller's span, and the station's queue/service
// spans parent to the operation span in turn.
func (d *Disk) AccessSpan(parent trace.SpanID, block, blocks int64, isWrite bool, onDone func(latency float64)) {
	size := d.serviceTime(block, blocks)
	bytes := float64(blocks) * d.params.BlockBytes
	var span trace.SpanID
	if d.tracer != nil {
		name := "read"
		if isWrite {
			name = "write"
		}
		span = d.tracer.BeginArg(d.track, name, "disk", parent, d.s.Now(), block)
	}
	r := &sim.Request{Size: size, ParentSpan: span, OnDone: func(r *sim.Request) {
		d.bytesDone += bytes
		if isWrite {
			d.writes++
		} else {
			d.reads++
		}
		if d.tracer != nil {
			d.tracer.End(span, d.s.Now())
		}
		if onDone != nil {
			onDone(r.Latency())
		}
	}}
	d.station.Submit(r)
}

// Read submits a read request.
func (d *Disk) Read(block, blocks int64, onDone func(latency float64)) {
	d.Access(block, blocks, false, onDone)
}

// Write submits a write request.
func (d *Disk) Write(block, blocks int64, onDone func(latency float64)) {
	d.Access(block, blocks, true, onDone)
}

// SequentialReadBandwidth measures the disk's delivered bandwidth by
// reading `blocks` blocks sequentially from `start` and running the
// simulation until completion. It is the microbenchmark the paper's disk
// survey uses ("a simple bandwidth experiment shows differing performance
// across drives"). The simulator must be otherwise idle.
func (d *Disk) SequentialReadBandwidth(start, blocks int64) float64 {
	begin := d.s.Now()
	done := false
	var finish sim.Time
	d.Read(start, blocks, func(float64) {
		done = true
		finish = d.s.Now()
		// Halt the run loop so open-ended injectors cannot keep the
		// benchmark's event queue alive forever.
		d.s.Stop()
	})
	d.s.Run()
	if !done {
		return 0 // disk failed mid-benchmark
	}
	elapsed := finish - begin
	if elapsed <= 0 {
		return math.Inf(1)
	}
	return float64(blocks) * d.params.BlockBytes / elapsed
}

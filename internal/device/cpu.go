package device

import (
	"fmt"
	"math"
)

// CacheSpec describes a processor cache level.
type CacheSpec struct {
	// SizeKB is the nominal capacity.
	SizeKB float64
	// Assoc is the set associativity (1 = direct-mapped).
	Assoc int
	// MissPenaltyCycles is the stall cost of a miss.
	MissPenaltyCycles float64
	// ColdMissRate is the compulsory miss floor.
	ColdMissRate float64
	// LocalityFactor in (0, 1] scales capacity misses: real reference
	// streams revisit hot lines, so only a fraction of accesses to the
	// non-fitting portion of the working set actually miss. 1 models a
	// scan with no reuse.
	LocalityFactor float64
}

// CPUParams configures an analytic processor model. Fault masking — the
// practice the paper documents on the Viking, PA-RISC, VAX and Univac
// lines of shipping chips with portions of the cache disabled — is
// expressed as MaskedFraction and MaskedAssoc: the *effective* cache a
// "identical" part actually has.
type CPUParams struct {
	Name     string
	ClockGHz float64
	BaseCPI  float64
	// MemRefsPerInstr is the fraction of instructions touching memory.
	MemRefsPerInstr float64
	Cache           CacheSpec
	// MaskedFraction in [0, 1) is the share of cache capacity disabled by
	// fault masking; 0 is a healthy part.
	MaskedFraction float64
	// MaskedAssoc, if positive, overrides associativity on the masked
	// part (the Viking study found a 16 KB 4-way spec behaving as 4 KB
	// direct-mapped).
	MaskedAssoc int
}

// CPU is a deterministic analytic processor model: given an application
// profile it predicts run time. Two CPUs with identical params except
// masking reproduce the paper's "identical processors, different
// performance" observation.
type CPU struct {
	p CPUParams
}

// NewCPU validates and builds the model.
func NewCPU(p CPUParams) (*CPU, error) {
	switch {
	case p.ClockGHz <= 0 || p.BaseCPI <= 0:
		return nil, fmt.Errorf("device: cpu %q needs positive clock and CPI", p.Name)
	case p.MemRefsPerInstr < 0 || p.MemRefsPerInstr > 1:
		return nil, fmt.Errorf("device: cpu %q mem refs per instr %v outside [0,1]", p.Name, p.MemRefsPerInstr)
	case p.Cache.SizeKB <= 0 || p.Cache.Assoc < 1:
		return nil, fmt.Errorf("device: cpu %q invalid cache %+v", p.Name, p.Cache)
	case p.Cache.ColdMissRate < 0 || p.Cache.ColdMissRate >= 1:
		return nil, fmt.Errorf("device: cpu %q cold miss rate %v outside [0,1)", p.Name, p.Cache.ColdMissRate)
	case p.Cache.LocalityFactor <= 0 || p.Cache.LocalityFactor > 1:
		return nil, fmt.Errorf("device: cpu %q locality factor %v outside (0,1]", p.Name, p.Cache.LocalityFactor)
	case p.MaskedFraction < 0 || p.MaskedFraction >= 1:
		return nil, fmt.Errorf("device: cpu %q masked fraction %v outside [0,1)", p.Name, p.MaskedFraction)
	}
	return &CPU{p: p}, nil
}

// MustCPU is NewCPU for static configurations.
func MustCPU(p CPUParams) *CPU {
	c, err := NewCPU(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Params returns the construction parameters.
func (c *CPU) Params() CPUParams { return c.p }

// EffectiveCacheKB returns the capacity after fault masking.
func (c *CPU) EffectiveCacheKB() float64 {
	return c.p.Cache.SizeKB * (1 - c.p.MaskedFraction)
}

// effectiveAssoc returns the associativity after masking.
func (c *CPU) effectiveAssoc() int {
	if c.p.MaskedFraction > 0 && c.p.MaskedAssoc > 0 {
		return c.p.MaskedAssoc
	}
	return c.p.Cache.Assoc
}

// MissRate predicts the cache miss rate for a working set of the given
// size: the compulsory floor, plus capacity misses for the portion of the
// working set that does not fit, inflated for low associativity (conflict
// misses).
func (c *CPU) MissRate(workingSetKB float64) float64 {
	if workingSetKB <= 0 {
		return c.p.Cache.ColdMissRate
	}
	eff := c.EffectiveCacheKB()
	capacity := 0.0
	if workingSetKB > eff {
		capacity = (workingSetKB - eff) / workingSetKB
	}
	// Conflict inflation: direct-mapped caches convert some hits to misses;
	// 4-way and above approach the fully associative capacity model.
	conflict := 1 + 0.5/float64(c.effectiveAssoc())
	m := c.p.Cache.ColdMissRate +
		(1-c.p.Cache.ColdMissRate)*math.Min(1, capacity*conflict*c.p.Cache.LocalityFactor)
	return m
}

// AppProfile characterizes an application for the analytic model.
type AppProfile struct {
	Instructions float64
	WorkingSetKB float64
}

// RunTime predicts execution time in seconds.
func (c *CPU) RunTime(app AppProfile) float64 {
	miss := c.MissRate(app.WorkingSetKB)
	cpi := c.p.BaseCPI + c.p.MemRefsPerInstr*miss*c.p.Cache.MissPenaltyCycles
	return app.Instructions * cpi / (c.p.ClockGHz * 1e9)
}

// MemorySystem is an analytic model of main memory under competing
// applications, for the memory-hog experiments: when an out-of-core
// process squeezes an interactive job's pages out, its accesses pay the
// disk-service cost.
type MemorySystem struct {
	// TotalMB is physical memory.
	TotalMB float64
	// PageFaultStretch is the average slowdown of a memory access that
	// must be served from disk, relative to a resident access.
	PageFaultStretch float64
}

// ResponseStretch predicts the multiplicative slowdown of an interactive
// job with the given working set when a hog keeps hogMB resident. With no
// hog pressure the stretch is 1.
func (m MemorySystem) ResponseStretch(interactiveWsMB, hogMB float64) float64 {
	if interactiveWsMB <= 0 {
		return 1
	}
	free := m.TotalMB - hogMB
	if free < 0 {
		free = 0
	}
	residentFrac := free / interactiveWsMB
	if residentFrac > 1 {
		residentFrac = 1
	}
	return residentFrac + (1-residentFrac)*m.PageFaultStretch
}

// FetchPredictor models the non-monotonic, effectively non-deterministic
// run-time behaviour Kushman documented on the UltraSPARC-I: the
// interaction of next-field prediction, fetch grouping and
// branch-prediction state can make "a program, executed twice on the same
// processor under identical conditions" run up to PathologyRange times
// slower. Each execution draws a multiplier: most runs land near 1, a
// minority hit the pathological alignments.
type FetchPredictor struct {
	// PathologyRange is the worst-case run-time multiplier (Kushman
	// observed up to 3).
	PathologyRange float64
}

// RunFactor returns the multiplier for one execution. The cubic skew
// concentrates mass near 1 — pathologies are the tail, not the norm.
func (f FetchPredictor) RunFactor(u float64) float64 {
	if f.PathologyRange < 1 {
		panic("device: pathology range must be >= 1")
	}
	if u < 0 || u >= 1 {
		panic(fmt.Sprintf("device: RunFactor input %v outside [0,1)", u))
	}
	return 1 + (f.PathologyRange-1)*u*u*u
}

// VectorMemory models scalar-vector memory-bank interference (Raghavan &
// Hayes): a vector stream achieves full efficiency alone; scalar
// perturbations at the given per-access probability collide with busy
// banks and stall the stream.
type VectorMemory struct {
	// BankBusyCycles is how long a bank is busy per access, in cycles; a
	// conflicting access stalls for the remainder.
	BankBusyCycles float64
}

// Efficiency returns delivered fraction of peak stream bandwidth for a
// perturbation probability in [0, 1].
func (v VectorMemory) Efficiency(perturbProb float64) float64 {
	if perturbProb < 0 || perturbProb > 1 {
		panic(fmt.Sprintf("device: perturbation probability %v outside [0,1]", perturbProb))
	}
	if v.BankBusyCycles < 1 {
		panic("device: bank busy cycles must be >= 1")
	}
	return 1 / (1 + perturbProb*(v.BankBusyCycles-1))
}

package device

import (
	"fmt"
	"sort"

	"failstutter/internal/faults"
	"failstutter/internal/sim"
	"failstutter/internal/trace"
)

// SwitchParams configures a simulated crossbar switch in the style of the
// Myrinet and CM-5 fabrics the paper surveys.
type SwitchParams struct {
	// Ports is the number of attached nodes (each both sender and
	// receiver).
	Ports int
	// LinkRate is each sender's injection bandwidth, bytes/s.
	LinkRate float64
	// DrainRate is each receiver's nominal drain bandwidth, bytes/s.
	DrainRate float64
	// BufferBytes is the buffering available per output port. When a
	// destination's buffer is full, senders block head-of-line — the flow
	// control mechanism behind the CM-5 transpose collapse.
	BufferBytes float64
	// WireLatency is the one-way propagation delay of every hop between a
	// node and the crossbar: reserve requests, buffer grants and message
	// heads each pay one wire crossing. Zero models an instantaneous
	// fabric — the only mode NewSwitch supports. NewShardedSwitch requires
	// it positive: the wire is the fabric's minimum cross-port delay and
	// therefore the conservative lookahead that lets ports run on
	// different shards.
	WireLatency sim.Duration
}

// Switch is a crossbar connecting Ports nodes. Each output port has a
// bounded buffer drained at the receiver's rate; senders reserve buffer
// space before transmitting and block (head-of-line) when the destination
// is full. Contended buffer space is granted by route weight, modelling
// the Myrinet unfairness observation; equal weights yield FIFO fairness.
//
// A switch runs in one of two modes. NewSwitch builds the serial mode:
// every port on one kernel, hops instantaneous. NewShardedSwitch spreads
// the port groups (sender i + output port i) across the shards of a
// ShardedSimulator by identity hash; every cross-port hop then travels
// one WireLatency over the cross-shard data path, and same-time arrivals
// at an output port are ordered by a placement-invariant mailbox key so
// results are byte-identical at any shard count.
type Switch struct {
	s      *sim.Simulator        // serial kernel; nil in sharded mode
	ss     *sim.ShardedSimulator // sharded coordinator; nil in serial mode
	params SwitchParams
	outs   []*outPort
	sends  []*Sender
	// shardOf maps port -> shard in sharded mode.
	shardOf []int
	seq     uint64
}

type outPort struct {
	kernel   *sim.Simulator
	station  *sim.Station
	comp     *faults.Composite
	mb       *sim.Mailbox // sharded mode: orders same-time arrivals
	origin   string
	buffered float64
	limit    float64
	waiters  []*bufWaiter
	// delivered tracks bytes fully drained by the receiver;
	// lastDeliveredAt is the instant of the most recent drain completion.
	delivered       float64
	lastDeliveredAt sim.Time
}

// bufWaiter is one blocked reservation. Admission order is (weight desc,
// request-arrival time asc, key asc); key embeds (sender port, sender
// event seq), so the order is placement-invariant — it never depends on
// which shard a contending sender happens to run on.
type bufWaiter struct {
	size   float64
	weight float64
	at     sim.Time
	key    uint64
	grant  func()
}

// NewSwitch builds the serial switch and its per-node senders: one
// kernel, instantaneous hops.
func NewSwitch(s *sim.Simulator, p SwitchParams) *Switch {
	validateSwitchParams(p)
	if p.WireLatency != 0 {
		panic("device: the serial switch models an instantaneous fabric; use NewShardedSwitch for WireLatency > 0")
	}
	sw := &Switch{s: s, params: p}
	for i := 0; i < p.Ports; i++ {
		sw.outs = append(sw.outs, newOutPort(s, i, p))
	}
	for i := 0; i < p.Ports; i++ {
		sw.sends = append(sw.sends, newSender(sw, s, i, p))
	}
	return sw
}

// NewShardedSwitch builds the switch across the shards of ss: port group
// i (sender i and output port i) lives on shard ShardFor("port-i"). The
// wire latency must be positive and at least the coordinator's lookahead
// — it is the delay every cross-port interaction pays, which is exactly
// what makes the parallel windows safe.
func NewShardedSwitch(ss *sim.ShardedSimulator, p SwitchParams) *Switch {
	validateSwitchParams(p)
	if p.WireLatency <= 0 {
		panic("device: sharded switch needs a positive WireLatency")
	}
	if ss.Lookahead() > p.WireLatency {
		panic(fmt.Sprintf("device: lookahead %v exceeds wire latency %v — cross-port sends would violate the bound",
			ss.Lookahead(), p.WireLatency))
	}
	sw := &Switch{ss: ss, params: p, shardOf: make([]int, p.Ports)}
	for i := 0; i < p.Ports; i++ {
		sw.shardOf[i] = ss.ShardFor(fmt.Sprintf("port-%d", i))
	}
	for i := 0; i < p.Ports; i++ {
		o := newOutPort(ss.Shard(sw.shardOf[i]), i, p)
		o.mb = sim.NewMailbox(o.kernel)
		sw.outs = append(sw.outs, o)
	}
	for i := 0; i < p.Ports; i++ {
		sw.sends = append(sw.sends, newSender(sw, ss.Shard(sw.shardOf[i]), i, p))
	}
	return sw
}

func validateSwitchParams(p SwitchParams) {
	if p.Ports < 2 || p.LinkRate <= 0 || p.DrainRate <= 0 || p.BufferBytes <= 0 || p.WireLatency < 0 {
		panic(fmt.Sprintf("device: invalid switch params %+v", p))
	}
}

func newOutPort(s *sim.Simulator, i int, p SwitchParams) *outPort {
	st := sim.NewStation(s, fmt.Sprintf("out-%d", i), p.DrainRate)
	return &outPort{
		kernel:  s,
		station: st,
		comp:    faults.NewComposite(st),
		origin:  fmt.Sprintf("out-%d", i),
		limit:   p.BufferBytes,
	}
}

func newSender(sw *Switch, s *sim.Simulator, i int, p SwitchParams) *Sender {
	link := sim.NewStation(s, fmt.Sprintf("link-%d", i), p.LinkRate)
	return &Sender{
		sw:     sw,
		id:     i,
		kernel: s,
		link:   link,
		comp:   faults.NewComposite(link),
		origin: fmt.Sprintf("sender-%d", i),
		weight: 1,
	}
}

// SetTracer attaches a span tracer to every port group's stations: the
// sender links ("link-<i>" tracks) and the output-port drains ("out-<i>"
// tracks). In sharded mode with per-shard collectors installed
// (sim.ShardedSimulator.SetTelemetry), port group i records into its home
// shard's collector and the deterministic merge folds everything into the
// tracer passed here; otherwise all stations record into it directly. A
// nil tracer detaches.
func (sw *Switch) SetTracer(t *trace.Tracer) {
	for i := range sw.outs {
		st := t
		if t != nil && sw.ss != nil {
			if shardT := sw.ss.ShardTracer(sw.shardOf[i]); shardT != nil {
				st = shardT
			}
		}
		sw.outs[i].station.SetTracer(st)
		sw.sends[i].link.SetTracer(st)
	}
}

// Params returns the construction parameters.
func (sw *Switch) Params() SwitchParams { return sw.params }

// Sender returns node i's sender.
func (sw *Switch) Sender(i int) *Sender { return sw.sends[i] }

// ReceiverComposite exposes the fault target for a receiver's drain rate;
// injectors slow or stall the receiver through it.
func (sw *Switch) ReceiverComposite(port int) *faults.Composite {
	return sw.outs[port].comp
}

// DeliveredBytes returns the bytes fully drained at the given receiver.
func (sw *Switch) DeliveredBytes(port int) float64 { return sw.outs[port].delivered }

// TotalDelivered returns bytes drained across all receivers.
func (sw *Switch) TotalDelivered() float64 {
	t := 0.0
	for _, o := range sw.outs {
		t += o.delivered
	}
	return t
}

// LastDeliveredAt returns the latest drain-completion instant across all
// receivers — the completion time of a fully drained workload. Safe to
// read at a barrier in sharded mode.
func (sw *Switch) LastDeliveredAt() sim.Time {
	t := sim.Time(0)
	for _, o := range sw.outs {
		if o.lastDeliveredAt > t {
			t = o.lastDeliveredAt
		}
	}
	return t
}

// FreezeAt schedules a whole-switch freeze: for the duration, no port
// drains and no link transmits. This reproduces the Myrinet
// deadlock-recovery behaviour the paper describes — "halting all switch
// traffic for two seconds". In sharded mode each port group freezes and
// thaws via events on its own shard, at the same instants on every
// shard count.
func (sw *Switch) FreezeAt(at sim.Time, duration sim.Duration) {
	const slot = "switch-freeze"
	if sw.ss != nil {
		for i := range sw.outs {
			o, sd := sw.outs[i], sw.sends[i]
			o.kernel.At(at, func() {
				o.comp.Set(slot, 0)
				sd.comp.Set(slot, 0)
			})
			o.kernel.At(at+duration, func() {
				o.comp.Clear(slot)
				sd.comp.Clear(slot)
			})
		}
		return
	}
	sw.s.At(at, func() {
		for _, o := range sw.outs {
			o.comp.Set(slot, 0)
		}
		for _, sd := range sw.sends {
			sd.comp.Set(slot, 0)
		}
		sw.s.After(duration, func() {
			for _, o := range sw.outs {
				o.comp.Clear(slot)
			}
			for _, sd := range sw.sends {
				sd.comp.Clear(slot)
			}
		})
	})
}

// wire sends fn across the fabric from srcPort's shard to dstPort's
// shard, one WireLatency ahead, attributed to origin in lookahead
// diagnostics.
func (sw *Switch) wire(srcPort, dstPort int, origin string, fn func()) {
	at := sw.sends[srcPort].kernel.Now() + sw.params.WireLatency
	sw.ss.Send(sw.shardOf[srcPort], sw.shardOf[dstPort], at, origin, fn)
}

// wireToOut is wire with mailbox ordering at the destination output port:
// same-time arrivals from different senders replay in (sender port,
// sender event) order regardless of the partition.
func (sw *Switch) wireToOut(srcPort, dstPort int, origin string, key uint64, fn func()) {
	o := sw.outs[dstPort]
	sw.wire(srcPort, dstPort, origin, func() { o.mb.Post(key, fn) })
}

// reserve asks for buffer space at the destination; it calls grant
// immediately if space is available, otherwise queues the request by
// weight. Serial mode only — the sharded path runs arriveReserve on the
// output port's own shard.
func (sw *Switch) reserve(dst int, size, weight float64, grant func()) {
	o := sw.outs[dst]
	if size > o.limit {
		panic(fmt.Sprintf("device: message of %v bytes exceeds port buffer %v", size, o.limit))
	}
	if o.buffered+size <= o.limit && len(o.waiters) == 0 {
		o.buffered += size
		grant()
		return
	}
	sw.seq++
	o.waiters = append(o.waiters, &bufWaiter{
		size: size, weight: weight, at: sw.s.Now(), key: sw.seq, grant: grant,
	})
}

// arriveReserve is the sharded reserve path, running on the output
// port's shard when the request crosses the wire.
func (o *outPort) arriveReserve(size, weight float64, key uint64, grant func()) {
	if size > o.limit {
		panic(fmt.Sprintf("device: message of %v bytes exceeds port buffer %v", size, o.limit))
	}
	if o.buffered+size <= o.limit && len(o.waiters) == 0 {
		o.buffered += size
		grant()
		return
	}
	o.waiters = append(o.waiters, &bufWaiter{
		size: size, weight: weight, at: o.kernel.Now(), key: key, grant: grant,
	})
}

// release returns drained bytes to the buffer pool and admits waiters,
// highest weight first, then earliest request, then lowest sender key.
func (sw *Switch) release(dst int, size float64) {
	o := sw.outs[dst]
	o.buffered -= size
	o.delivered += size
	o.lastDeliveredAt = o.kernel.Now()
	for len(o.waiters) > 0 {
		// Pick the best waiter by (weight desc, at asc, key asc).
		best := 0
		for i, w := range o.waiters[1:] {
			cand := w
			cur := o.waiters[best]
			if cand.weight > cur.weight ||
				(cand.weight == cur.weight && (cand.at < cur.at ||
					(cand.at == cur.at && cand.key < cur.key))) {
				best = i + 1
			}
		}
		w := o.waiters[best]
		if o.buffered+w.size > o.limit {
			return
		}
		o.waiters = append(o.waiters[:best], o.waiters[best+1:]...)
		o.buffered += w.size
		w.grant()
	}
}

// Message is one transfer from a sender to a destination port.
type Message struct {
	Dst  int
	Size float64
	// OnDelivered, if non-nil, fires when the receiver finishes draining
	// the message. In sharded mode it runs on the destination port's
	// shard and must only touch state owned by that shard; workloads that
	// need global completion detection read DeliveredBytes at a barrier
	// instead.
	OnDelivered func()
}

// Sender transmits an ordered queue of messages from one node. It is
// strictly in-order: a full destination buffer blocks every message behind
// it (head-of-line blocking).
type Sender struct {
	sw     *Switch
	id     int
	kernel *sim.Simulator
	link   *sim.Station
	comp   *faults.Composite
	origin string
	weight float64

	queue  []Message
	active bool
	onIdle func()
	// evSeq numbers this sender's wire events; with the port id it forms
	// the placement-invariant mailbox/waiter key.
	evSeq uint64

	sent      uint64
	bytesSent float64
}

// ID returns the sender's port number.
func (sd *Sender) ID() int { return sd.id }

// Composite exposes the sender link's fault target.
func (sd *Sender) Composite() *faults.Composite { return sd.comp }

// SetWeight sets the route priority used when competing for contended
// buffer space. The default is 1; higher wins.
func (sd *Sender) SetWeight(w float64) {
	if w <= 0 {
		panic("device: sender weight must be positive")
	}
	sd.weight = w
}

// Sent returns the number of messages fully transmitted onto the fabric.
func (sd *Sender) Sent() uint64 { return sd.sent }

// BytesSent returns bytes fully transmitted onto the fabric.
func (sd *Sender) BytesSent() float64 { return sd.bytesSent }

// Backlog returns the number of unsent queued messages.
func (sd *Sender) Backlog() int { return len(sd.queue) }

// nextKey mints the sender's next placement-invariant event key.
func (sd *Sender) nextKey() uint64 {
	k := uint64(sd.id)<<32 | sd.evSeq
	sd.evSeq++
	return k
}

// Enqueue appends messages to the send queue and starts transmission if
// idle. onIdle (optional, may be nil) replaces any previous idle callback
// and fires when the queue fully drains onto the fabric.
func (sd *Sender) Enqueue(msgs []Message, onIdle func()) {
	for _, m := range msgs {
		if m.Dst < 0 || m.Dst >= len(sd.sw.outs) {
			panic(fmt.Sprintf("device: message to invalid port %d", m.Dst))
		}
		if m.Size <= 0 {
			panic("device: message size must be positive")
		}
		if m.Size > sd.sw.params.BufferBytes {
			panic(fmt.Sprintf("device: message of %v bytes exceeds port buffer %v", m.Size, sd.sw.params.BufferBytes))
		}
	}
	sd.queue = append(sd.queue, msgs...)
	sd.onIdle = onIdle
	if !sd.active {
		sd.active = true
		sd.next()
	}
}

// next advances the in-order send loop.
func (sd *Sender) next() {
	if len(sd.queue) == 0 {
		sd.active = false
		if sd.onIdle != nil {
			cb := sd.onIdle
			sd.onIdle = nil
			cb()
		}
		return
	}
	m := sd.queue[0]
	sd.queue = sd.queue[1:]
	if sd.sw.ss != nil {
		sd.nextSharded(m)
		return
	}
	sd.sw.reserve(m.Dst, m.Size, sd.weight, func() {
		// Space reserved: serialize onto the fabric at link rate...
		sd.link.SubmitFunc(m.Size, func(*sim.Request) {
			sd.sent++
			sd.bytesSent += m.Size
			// ...then drain at the receiver.
			out := sd.sw.outs[m.Dst]
			out.station.SubmitFunc(m.Size, func(*sim.Request) {
				sd.sw.release(m.Dst, m.Size)
				if m.OnDelivered != nil {
					m.OnDelivered()
				}
			})
		})
		sd.next()
	})
}

// nextSharded runs one message through the sharded fabric: the reserve
// request crosses the wire to the output port's shard, the grant crosses
// back, the link serializes locally, and the message head crosses the
// wire again before draining at the receiver. Each crossing takes the
// batched lane path and lands in the port mailbox, so contention is
// resolved in placement-invariant order.
func (sd *Sender) nextSharded(m Message) {
	sw := sd.sw
	o := sw.outs[m.Dst]
	// Both keys are minted here, on the sender's shard: the waiter key
	// crosses the wire inside the closure rather than being derived on
	// the destination shard.
	waiterKey := sd.nextKey()
	sw.wireToOut(sd.id, m.Dst, sd.origin, sd.nextKey(), func() {
		o.arriveReserve(m.Size, sd.weight, waiterKey, func() {
			// Granted, on the output port's shard: notify the sender.
			sw.wire(m.Dst, sd.id, o.origin, func() {
				sd.link.SubmitFunc(m.Size, func(*sim.Request) {
					sd.sent++
					sd.bytesSent += m.Size
					sw.wireToOut(sd.id, m.Dst, sd.origin, sd.nextKey(), func() {
						o.station.SubmitFunc(m.Size, func(*sim.Request) {
							sw.release(m.Dst, m.Size)
							if m.OnDelivered != nil {
								m.OnDelivered()
							}
						})
					})
					sd.next()
				})
			})
		})
	})
}

// SortedBacklogs returns per-sender backlogs, useful for diagnosing which
// routes are starved under unfairness.
func (sw *Switch) SortedBacklogs() []int {
	out := make([]int, len(sw.sends))
	for i, sd := range sw.sends {
		out[i] = sd.Backlog()
	}
	sort.Ints(out)
	return out
}

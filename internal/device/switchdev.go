package device

import (
	"fmt"
	"sort"

	"failstutter/internal/faults"
	"failstutter/internal/sim"
)

// SwitchParams configures a simulated crossbar switch in the style of the
// Myrinet and CM-5 fabrics the paper surveys.
type SwitchParams struct {
	// Ports is the number of attached nodes (each both sender and
	// receiver).
	Ports int
	// LinkRate is each sender's injection bandwidth, bytes/s.
	LinkRate float64
	// DrainRate is each receiver's nominal drain bandwidth, bytes/s.
	DrainRate float64
	// BufferBytes is the buffering available per output port. When a
	// destination's buffer is full, senders block head-of-line — the flow
	// control mechanism behind the CM-5 transpose collapse.
	BufferBytes float64
}

// Switch is a crossbar connecting Ports nodes. Each output port has a
// bounded buffer drained at the receiver's rate; senders reserve buffer
// space before transmitting and block (head-of-line) when the destination
// is full. Contended buffer space is granted by route weight, modelling
// the Myrinet unfairness observation; equal weights yield FIFO fairness.
type Switch struct {
	s      *sim.Simulator
	params SwitchParams
	outs   []*outPort
	sends  []*Sender
	frozen *faults.Composite // unused placeholder; freezing drives slots directly
	seq    uint64
}

type outPort struct {
	station  *sim.Station
	comp     *faults.Composite
	buffered float64
	limit    float64
	waiters  []*bufWaiter
	// delivered tracks bytes fully drained by the receiver.
	delivered float64
}

type bufWaiter struct {
	size   float64
	weight float64
	seq    uint64
	grant  func()
}

// NewSwitch builds the switch and its per-node senders.
func NewSwitch(s *sim.Simulator, p SwitchParams) *Switch {
	if p.Ports < 2 || p.LinkRate <= 0 || p.DrainRate <= 0 || p.BufferBytes <= 0 {
		panic(fmt.Sprintf("device: invalid switch params %+v", p))
	}
	sw := &Switch{s: s, params: p}
	for i := 0; i < p.Ports; i++ {
		st := sim.NewStation(s, fmt.Sprintf("out-%d", i), p.DrainRate)
		sw.outs = append(sw.outs, &outPort{
			station: st,
			comp:    faults.NewComposite(st),
			limit:   p.BufferBytes,
		})
	}
	for i := 0; i < p.Ports; i++ {
		link := sim.NewStation(s, fmt.Sprintf("link-%d", i), p.LinkRate)
		sw.sends = append(sw.sends, &Sender{
			sw:     sw,
			id:     i,
			link:   link,
			comp:   faults.NewComposite(link),
			weight: 1,
		})
	}
	return sw
}

// Params returns the construction parameters.
func (sw *Switch) Params() SwitchParams { return sw.params }

// Sender returns node i's sender.
func (sw *Switch) Sender(i int) *Sender { return sw.sends[i] }

// ReceiverComposite exposes the fault target for a receiver's drain rate;
// injectors slow or stall the receiver through it.
func (sw *Switch) ReceiverComposite(port int) *faults.Composite {
	return sw.outs[port].comp
}

// DeliveredBytes returns the bytes fully drained at the given receiver.
func (sw *Switch) DeliveredBytes(port int) float64 { return sw.outs[port].delivered }

// TotalDelivered returns bytes drained across all receivers.
func (sw *Switch) TotalDelivered() float64 {
	t := 0.0
	for _, o := range sw.outs {
		t += o.delivered
	}
	return t
}

// FreezeAt schedules a whole-switch freeze: for the duration, no port
// drains and no link transmits. This reproduces the Myrinet
// deadlock-recovery behaviour the paper describes — "halting all switch
// traffic for two seconds".
func (sw *Switch) FreezeAt(at sim.Time, duration sim.Duration) {
	const slot = "switch-freeze"
	sw.s.At(at, func() {
		for _, o := range sw.outs {
			o.comp.Set(slot, 0)
		}
		for _, sd := range sw.sends {
			sd.comp.Set(slot, 0)
		}
		sw.s.After(duration, func() {
			for _, o := range sw.outs {
				o.comp.Clear(slot)
			}
			for _, sd := range sw.sends {
				sd.comp.Clear(slot)
			}
		})
	})
}

// reserve asks for buffer space at the destination; it calls grant
// immediately if space is available, otherwise queues the request by
// weight.
func (sw *Switch) reserve(dst int, size, weight float64, grant func()) {
	o := sw.outs[dst]
	if size > o.limit {
		panic(fmt.Sprintf("device: message of %v bytes exceeds port buffer %v", size, o.limit))
	}
	if o.buffered+size <= o.limit && len(o.waiters) == 0 {
		o.buffered += size
		grant()
		return
	}
	sw.seq++
	o.waiters = append(o.waiters, &bufWaiter{size: size, weight: weight, seq: sw.seq, grant: grant})
}

// release returns drained bytes to the buffer pool and admits waiters,
// highest weight first (FIFO within equal weights).
func (sw *Switch) release(dst int, size float64) {
	o := sw.outs[dst]
	o.buffered -= size
	o.delivered += size
	for len(o.waiters) > 0 {
		// Pick the best waiter by (weight desc, seq asc).
		best := 0
		for i, w := range o.waiters[1:] {
			cand := w
			cur := o.waiters[best]
			if cand.weight > cur.weight || (cand.weight == cur.weight && cand.seq < cur.seq) {
				best = i + 1
			}
		}
		w := o.waiters[best]
		if o.buffered+w.size > o.limit {
			return
		}
		o.waiters = append(o.waiters[:best], o.waiters[best+1:]...)
		o.buffered += w.size
		w.grant()
	}
}

// Message is one transfer from a sender to a destination port.
type Message struct {
	Dst  int
	Size float64
	// OnDelivered, if non-nil, fires when the receiver finishes draining
	// the message.
	OnDelivered func()
}

// Sender transmits an ordered queue of messages from one node. It is
// strictly in-order: a full destination buffer blocks every message behind
// it (head-of-line blocking).
type Sender struct {
	sw     *Switch
	id     int
	link   *sim.Station
	comp   *faults.Composite
	weight float64

	queue  []Message
	active bool
	onIdle func()

	sent      uint64
	bytesSent float64
}

// ID returns the sender's port number.
func (sd *Sender) ID() int { return sd.id }

// Composite exposes the sender link's fault target.
func (sd *Sender) Composite() *faults.Composite { return sd.comp }

// SetWeight sets the route priority used when competing for contended
// buffer space. The default is 1; higher wins.
func (sd *Sender) SetWeight(w float64) {
	if w <= 0 {
		panic("device: sender weight must be positive")
	}
	sd.weight = w
}

// Sent returns the number of messages fully transmitted onto the fabric.
func (sd *Sender) Sent() uint64 { return sd.sent }

// BytesSent returns bytes fully transmitted onto the fabric.
func (sd *Sender) BytesSent() float64 { return sd.bytesSent }

// Backlog returns the number of unsent queued messages.
func (sd *Sender) Backlog() int { return len(sd.queue) }

// Enqueue appends messages to the send queue and starts transmission if
// idle. onIdle (optional, may be nil) replaces any previous idle callback
// and fires when the queue fully drains onto the fabric.
func (sd *Sender) Enqueue(msgs []Message, onIdle func()) {
	for _, m := range msgs {
		if m.Dst < 0 || m.Dst >= len(sd.sw.outs) {
			panic(fmt.Sprintf("device: message to invalid port %d", m.Dst))
		}
		if m.Size <= 0 {
			panic("device: message size must be positive")
		}
	}
	sd.queue = append(sd.queue, msgs...)
	sd.onIdle = onIdle
	if !sd.active {
		sd.active = true
		sd.next()
	}
}

// next advances the in-order send loop.
func (sd *Sender) next() {
	if len(sd.queue) == 0 {
		sd.active = false
		if sd.onIdle != nil {
			cb := sd.onIdle
			sd.onIdle = nil
			cb()
		}
		return
	}
	m := sd.queue[0]
	sd.queue = sd.queue[1:]
	sd.sw.reserve(m.Dst, m.Size, sd.weight, func() {
		// Space reserved: serialize onto the fabric at link rate...
		sd.link.SubmitFunc(m.Size, func(*sim.Request) {
			sd.sent++
			sd.bytesSent += m.Size
			// ...then drain at the receiver.
			out := sd.sw.outs[m.Dst]
			out.station.SubmitFunc(m.Size, func(*sim.Request) {
				sd.sw.release(m.Dst, m.Size)
				if m.OnDelivered != nil {
					m.OnDelivered()
				}
			})
			sd.next()
		})
	})
}

// SortedBacklogs returns per-sender backlogs, useful for diagnosing which
// routes are starved under unfairness.
func (sw *Switch) SortedBacklogs() []int {
	out := make([]int, len(sw.sends))
	for i, sd := range sw.sends {
		out[i] = sd.Backlog()
	}
	sort.Ints(out)
	return out
}

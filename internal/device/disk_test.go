package device

import (
	"math"
	"testing"
	"testing/quick"

	"failstutter/internal/faults"
	"failstutter/internal/sim"
)

// flatDisk returns a single-zone disk for timing-exact tests.
func flatDisk(s *sim.Simulator, name string, bw float64) *Disk {
	return MustDisk(s, DiskParams{
		Name:           name,
		CapacityBlocks: 1 << 20,
		BlockBytes:     4096,
		Zones:          []Zone{{CapacityFrac: 1, Bandwidth: bw}},
		SeekTime:       0.01,
		AgingFactor:    1,
	})
}

func TestDiskValidation(t *testing.T) {
	s := sim.New()
	bad := []DiskParams{
		{},
		{CapacityBlocks: 10, BlockBytes: 1},
		{CapacityBlocks: 10, BlockBytes: 1, Zones: []Zone{{CapacityFrac: 0.5, Bandwidth: 1}}, AgingFactor: 1},
		{CapacityBlocks: 10, BlockBytes: 1, Zones: []Zone{{CapacityFrac: 1, Bandwidth: 1}}, AgingFactor: 0},
		{CapacityBlocks: 10, BlockBytes: 1, Zones: []Zone{{CapacityFrac: 1, Bandwidth: 1}}, AgingFactor: 1, RemappedBlocks: 11},
	}
	for i, p := range bad {
		if _, err := NewDisk(s, p); err == nil {
			t.Fatalf("bad params %d accepted", i)
		}
	}
	if _, err := NewDisk(s, HawkParams("ok")); err != nil {
		t.Fatalf("Hawk params rejected: %v", err)
	}
}

func TestDiskSequentialTiming(t *testing.T) {
	s := sim.New()
	d := flatDisk(s, "d0", 4096*100) // 100 blocks/s
	var lat float64
	d.Read(0, 100, func(l float64) { lat = l })
	s.Run()
	// One seek (10 ms) + 100 blocks at 100 blocks/s = 1.01 s.
	if math.Abs(lat-1.01) > 1e-9 {
		t.Fatalf("latency = %v, want 1.01", lat)
	}
	if d.Reads() != 1 || d.Writes() != 0 {
		t.Fatalf("reads/writes = %d/%d", d.Reads(), d.Writes())
	}
	if d.BytesCompleted() != 4096*100 {
		t.Fatalf("bytes = %v", d.BytesCompleted())
	}
}

func TestDiskSequentialAvoidsSeek(t *testing.T) {
	s := sim.New()
	d := flatDisk(s, "d0", 4096*100)
	var last sim.Time
	d.Read(0, 10, nil)
	d.Read(10, 10, func(float64) { last = s.Now() }) // continues at block 10: no seek
	s.Run()
	// seek 0.01 + 20 blocks / 100 = 0.21
	if math.Abs(last-0.21) > 1e-9 {
		t.Fatalf("sequential continuation ended at %v, want 0.21", last)
	}
}

func TestDiskRandomAccessPaysSeek(t *testing.T) {
	s := sim.New()
	d := flatDisk(s, "d0", 4096*100)
	var last sim.Time
	d.Read(0, 10, nil)
	d.Read(5000, 10, func(float64) { last = s.Now() })
	s.Run()
	// two seeks + 20 blocks: 0.02 + 0.2
	if math.Abs(last-0.22) > 1e-9 {
		t.Fatalf("random access ended at %v, want 0.22", last)
	}
}

func TestDiskZoneBandwidth(t *testing.T) {
	s := sim.New()
	d := MustDisk(s, DiskParams{
		Name: "z", CapacityBlocks: 1000, BlockBytes: 1,
		Zones: []Zone{
			{CapacityFrac: 0.5, Bandwidth: 100},
			{CapacityFrac: 0.5, Bandwidth: 50},
		},
		AgingFactor: 1,
	})
	if bw := d.ZoneBandwidth(0); bw != 100 {
		t.Fatalf("outer zone bw = %v", bw)
	}
	if bw := d.ZoneBandwidth(999); bw != 50 {
		t.Fatalf("inner zone bw = %v", bw)
	}
	// Outer reads are twice as fast as inner reads.
	outer := d.SequentialReadBandwidth(0, 100)
	s2 := sim.New()
	d2 := MustDisk(s2, d.Params())
	inner := d2.SequentialReadBandwidth(800, 100)
	ratio := outer / inner
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("zone ratio = %v, want ~2", ratio)
	}
}

func TestDiskRemappedBlocksSlowdown(t *testing.T) {
	s := sim.New()
	healthy := flatDisk(s, "h", 5.5e6/4096*4096) // ~5.5 MB/s in bytes/s
	healthyBW := healthy.SequentialReadBandwidth(0, 20000)

	s2 := sim.New()
	p := healthy.Params()
	p.Name = "faulty"
	p.RemappedBlocks = p.CapacityBlocks / 100 // 1% remapped
	p.RemapPenalty = 0.022
	p.RemapSeed = 99
	faulty := MustDisk(s2, p)
	faultyBW := faulty.SequentialReadBandwidth(0, 20000)

	if faultyBW >= healthyBW {
		t.Fatalf("remapped disk not slower: %v >= %v", faultyBW, healthyBW)
	}
	// The paper's example: 5.5 -> 5.0 MB/s, i.e. ~10% deficit; with 1%
	// remaps at 22 ms each the deficit should be noticeable but bounded.
	deficit := 1 - faultyBW/healthyBW
	if deficit < 0.02 || deficit > 0.6 {
		t.Fatalf("remap deficit = %v, want moderate", deficit)
	}
}

func TestDiskRemapDeterministicPerSeed(t *testing.T) {
	s := sim.New()
	p := HawkParams("a")
	p.RemappedBlocks = 1000
	p.RemapSeed = 5
	d1 := MustDisk(s, p)
	d2 := MustDisk(s, p)
	for b := int64(0); b < 5000; b++ {
		if d1.isRemapped(b) != d2.isRemapped(b) {
			t.Fatal("same seed produced different remap sets")
		}
	}
	p.RemapSeed = 6
	d3 := MustDisk(s, p)
	diff := 0
	for b := int64(0); b < 5000; b++ {
		if d1.isRemapped(b) != d3.isRemapped(b) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical remap sets")
	}
}

func TestDiskRemapDensityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := HawkParams("a")
		p.RemappedBlocks = p.CapacityBlocks / 10
		p.RemapSeed = seed
		d := MustDisk(sim.New(), p)
		hits := 0
		const n = 20000
		for b := int64(0); b < n; b++ {
			if d.isRemapped(b) {
				hits++
			}
		}
		frac := float64(hits) / n
		return frac > 0.05 && frac < 0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskAgingSlowsReads(t *testing.T) {
	fresh := flatDisk(sim.New(), "f", 1e6)
	freshBW := fresh.SequentialReadBandwidth(0, 10000)

	p := fresh.Params()
	p.Name = "aged"
	p.AgingFactor = 0.5
	aged := MustDisk(sim.New(), p)
	agedBW := aged.SequentialReadBandwidth(0, 10000)

	ratio := freshBW / agedBW
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("aging ratio = %v, want ~2", ratio)
	}
}

func TestDiskFaultInjection(t *testing.T) {
	s := sim.New()
	d := flatDisk(s, "d0", 4096*100)
	faults.Static{Factor: 0.5}.Install(s, d.Composite())
	var lat float64
	d.Read(0, 100, func(l float64) { lat = l })
	s.Run()
	// Nominal 1.01 s stretched 2x by the half-rate fault.
	if math.Abs(lat-2.02) > 1e-9 {
		t.Fatalf("degraded latency = %v, want 2.02", lat)
	}
}

func TestDiskFailStop(t *testing.T) {
	s := sim.New()
	d := flatDisk(s, "d0", 4096*100)
	completed := false
	d.Read(0, 100, func(float64) { completed = true })
	s.At(0.5, d.Fail)
	s.Run()
	if completed {
		t.Fatal("request completed on failed disk")
	}
	if !d.Failed() {
		t.Fatal("disk not failed")
	}
	if bw := d.SequentialReadBandwidth(0, 10); bw != 0 {
		t.Fatalf("failed disk bandwidth = %v, want 0", bw)
	}
}

func TestDiskOutOfRangePanics(t *testing.T) {
	s := sim.New()
	d := flatDisk(s, "d0", 4096*100)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	d.Read(d.Params().CapacityBlocks-5, 10, nil)
}

func TestHawkDeliversSpecBandwidth(t *testing.T) {
	d := MustDisk(sim.New(), HawkParams("hawk"))
	bw := d.SequentialReadBandwidth(0, 50000)
	// Outer zone: 5.5 MB/s nominal; long sequential read amortizes the seek.
	if bw < 5.3e6 || bw > 5.6e6 {
		t.Fatalf("Hawk outer-zone bandwidth = %v, want ~5.5e6", bw)
	}
}

package device

import (
	"testing"
	"testing/quick"
)

// vikingSpec models the paper's Viking example: a 16 KB 4-way L1 as
// specified, versus a masked part behaving as 4 KB direct-mapped.
func vikingSpec(masked bool) CPUParams {
	p := CPUParams{
		Name:            "viking",
		ClockGHz:        0.05,
		BaseCPI:         1.2,
		MemRefsPerInstr: 0.25,
		Cache: CacheSpec{
			SizeKB:            16,
			Assoc:             4,
			MissPenaltyCycles: 20,
			ColdMissRate:      0.01,
			LocalityFactor:    0.12,
		},
	}
	if masked {
		p.MaskedFraction = 0.75 // 16 KB -> 4 KB
		p.MaskedAssoc = 1       // direct-mapped
	}
	return p
}

func TestCPUValidation(t *testing.T) {
	bad := []CPUParams{
		{},
		{ClockGHz: 1, BaseCPI: 1, MemRefsPerInstr: 2, Cache: CacheSpec{SizeKB: 8, Assoc: 1}},
		{ClockGHz: 1, BaseCPI: 1, Cache: CacheSpec{SizeKB: 0, Assoc: 1}},
		{ClockGHz: 1, BaseCPI: 1, Cache: CacheSpec{SizeKB: 8, Assoc: 1, ColdMissRate: 1}},
		{ClockGHz: 1, BaseCPI: 1, Cache: CacheSpec{SizeKB: 8, Assoc: 1}, MaskedFraction: 1},
	}
	for i, p := range bad {
		if _, err := NewCPU(p); err == nil {
			t.Fatalf("bad cpu params %d accepted", i)
		}
	}
	if _, err := NewCPU(vikingSpec(false)); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
}

func TestCPUEffectiveCache(t *testing.T) {
	healthy := MustCPU(vikingSpec(false))
	masked := MustCPU(vikingSpec(true))
	if healthy.EffectiveCacheKB() != 16 {
		t.Fatalf("healthy effective = %v", healthy.EffectiveCacheKB())
	}
	if masked.EffectiveCacheKB() != 4 {
		t.Fatalf("masked effective = %v", masked.EffectiveCacheKB())
	}
}

func TestCPUMissRateShape(t *testing.T) {
	c := MustCPU(vikingSpec(false))
	if m := c.MissRate(8); m != c.Params().Cache.ColdMissRate {
		t.Fatalf("fitting working set miss rate = %v, want cold floor", m)
	}
	if c.MissRate(32) <= c.MissRate(8) {
		t.Fatal("overflowing working set not penalized")
	}
	if c.MissRate(64) > 1 || c.MissRate(64) < 0 {
		t.Fatalf("miss rate out of range: %v", c.MissRate(64))
	}
}

func TestCPUMaskedPartSlower(t *testing.T) {
	healthy := MustCPU(vikingSpec(false))
	masked := MustCPU(vikingSpec(true))
	app := AppProfile{Instructions: 1e9, WorkingSetKB: 12}
	th, tm := healthy.RunTime(app), masked.RunTime(app)
	if tm <= th {
		t.Fatalf("masked part not slower: %v vs %v", tm, th)
	}
	// The Viking study found application differences up to 40%; our model
	// should land in a comparable band for a cache-resident-vs-not split.
	ratio := tm / th
	if ratio < 1.1 || ratio > 3 {
		t.Fatalf("masked/healthy ratio = %v, want 1.1-3", ratio)
	}
}

func TestCPUIdenticalWhenWorkingSetFits(t *testing.T) {
	healthy := MustCPU(vikingSpec(false))
	masked := MustCPU(vikingSpec(true))
	app := AppProfile{Instructions: 1e9, WorkingSetKB: 2}
	if healthy.RunTime(app) != masked.RunTime(app) {
		t.Fatal("parts differ even when working set fits the masked cache")
	}
}

func TestCPUMissRateMonotoneProperty(t *testing.T) {
	c := MustCPU(vikingSpec(true))
	f := func(a, b uint16) bool {
		lo, hi := float64(a%512), float64(b%512)
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.MissRate(lo) <= c.MissRate(hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryResponseStretch(t *testing.T) {
	m := MemorySystem{TotalMB: 128, PageFaultStretch: 80}
	if s := m.ResponseStretch(32, 0); s != 1 {
		t.Fatalf("no-hog stretch = %v, want 1", s)
	}
	// Hog leaves 16 MB free for a 32 MB working set: half the accesses
	// page. Stretch = 0.5 + 0.5*80 = 40.5 — the paper's "up to 40 times
	// worse" regime.
	s := m.ResponseStretch(32, 112)
	if s < 35 || s > 45 {
		t.Fatalf("hog stretch = %v, want ~40", s)
	}
	// Hog consuming everything: full paging.
	if s := m.ResponseStretch(32, 200); s != 80 {
		t.Fatalf("full-paging stretch = %v, want 80", s)
	}
}

func TestMemoryStretchMonotoneInHogProperty(t *testing.T) {
	m := MemorySystem{TotalMB: 128, PageFaultStretch: 80}
	f := func(a, b uint8) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.ResponseStretch(32, lo) <= m.ResponseStretch(32, hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorMemoryEfficiency(t *testing.T) {
	v := VectorMemory{BankBusyCycles: 3}
	if e := v.Efficiency(0); e != 1 {
		t.Fatalf("unperturbed efficiency = %v, want 1", e)
	}
	// Raghavan & Hayes: perturbation can halve memory system efficiency.
	if e := v.Efficiency(0.5); e != 0.5 {
		t.Fatalf("perturbed efficiency = %v, want 0.5", e)
	}
	if e := v.Efficiency(1); e != 1.0/3 {
		t.Fatalf("fully perturbed efficiency = %v, want 1/3", e)
	}
}

func TestFetchPredictorRange(t *testing.T) {
	p := FetchPredictor{PathologyRange: 3}
	if f := p.RunFactor(0); f != 1 {
		t.Fatalf("best-case factor = %v, want 1", f)
	}
	near1 := p.RunFactor(0.999)
	if near1 < 2.9 || near1 >= 3 {
		t.Fatalf("worst-case factor = %v, want approaching 3", near1)
	}
	// Cubic skew: the median draw stays close to 1.
	if med := p.RunFactor(0.5); med > 1.3 {
		t.Fatalf("median factor = %v, want near 1", med)
	}
}

func TestFetchPredictorMonotoneProperty(t *testing.T) {
	p := FetchPredictor{PathologyRange: 3}
	f := func(a, b uint16) bool {
		ua := float64(a) / 65536
		ub := float64(b) / 65536
		if ua > ub {
			ua, ub = ub, ua
		}
		return p.RunFactor(ua) <= p.RunFactor(ub)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFetchPredictorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range input did not panic")
		}
	}()
	FetchPredictor{PathologyRange: 3}.RunFactor(1.5)
}

func TestVectorMemoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad perturbation did not panic")
		}
	}()
	VectorMemory{BankBusyCycles: 2}.Efficiency(2)
}

package raid

import (
	"fmt"

	"failstutter/internal/core"
	"failstutter/internal/trace"
)

// job tracks a striped write in progress, shared by all stripers.
type job struct {
	a         *Array
	name      string
	total     int64
	start     float64
	completed int64
	perPair   []int64
	reissued  int64
	onDone    func(Result)
	finished  bool
	span      trace.SpanID
}

func newJob(a *Array, name string, total int64, onDone func(Result)) *job {
	j := &job{
		a:       a,
		name:    name,
		total:   total,
		start:   a.s.Now(),
		perPair: make([]int64, len(a.pairs)),
		onDone:  onDone,
	}
	if a.tracer != nil {
		j.span = a.tracer.BeginArg(a.track, "job:"+name, "striper", 0, j.start, total)
	}
	return j
}

func (j *job) blockDone(pair int) {
	j.completed++
	j.perPair[pair]++
	if j.completed == j.total && !j.finished {
		j.finished = true
		if j.a.tracer != nil {
			j.a.tracer.End(j.span, j.a.s.Now())
		}
		makespan := j.a.s.Now() - j.start
		thr := 0.0
		if makespan > 0 {
			thr = float64(j.total) * j.a.blockBytes / makespan
		}
		j.onDone(Result{
			Policy:      j.name,
			Blocks:      j.total,
			Makespan:    makespan,
			Throughput:  thr,
			PerPair:     j.perPair,
			Bookkeeping: j.a.BookkeepingEntries(),
			Reissued:    j.reissued,
		})
	}
}

// StaticEqual is the paper's first scenario: the fail-stop design. Every
// pair receives exactly D/N blocks, because "since performance faults are
// not considered in the design, each pair is given the same number of
// blocks to write". A single slow pair drags the whole job: throughput
// N*b.
type StaticEqual struct{}

// Name implements Striper.
func (StaticEqual) Name() string { return "static-equal" }

// Run implements Striper.
func (StaticEqual) Run(a *Array, blocks int64, onDone func(Result)) {
	weights := make([]float64, len(a.pairs))
	for i := range weights {
		weights[i] = 1
	}
	shares := core.ProportionalShares(blocks, weights)
	runFixedShares(a, "static-equal", shares, blocks, onDone)
}

// GaugedProportional is the paper's second scenario: gauge each pair once
// "at installation", then stripe proportionally to the measured ratios.
// Correct for static performance faults; broken by any post-gauge drift.
type GaugedProportional struct {
	// ProbeBlocks is the size of the install-time microbenchmark per pair.
	ProbeBlocks int64
}

// Name implements Striper.
func (GaugedProportional) Name() string { return "gauged-proportional" }

// Run implements Striper. Gauging runs (and consumes simulated time)
// before the measured window opens.
func (g GaugedProportional) Run(a *Array, blocks int64, onDone func(Result)) {
	probe := g.ProbeBlocks
	if probe <= 0 {
		probe = 16
	}
	rates := a.GaugePairRates(probe)
	shares := core.MinMakespanAssign(blocks, rates)
	// The stored ratios are this policy's entire bookkeeping.
	for range a.pairs {
		a.recordPlacement(-1)
	}
	runFixedShares(a, "gauged-proportional", shares, blocks, onDone)
}

// runFixedShares enqueues a fixed per-pair share up-front. Blocks lost to
// a fully failed pair are not reissued — these are the static designs the
// paper criticizes — so the job simply never completes if a pair dies.
func runFixedShares(a *Array, name string, shares []int64, blocks int64, onDone func(Result)) {
	j := newJob(a, name, blocks, onDone)
	for i, n := range shares {
		i := i
		p := a.pairs[i]
		for k := int64(0); k < n; k++ {
			p.WriteBlockSpan(j.span, func() { j.blockDone(i) }, nil)
		}
	}
}

// AdaptivePull is the paper's third scenario in work-conserving form:
// instead of precomputing ratios, the controller keeps a small constant
// number of blocks outstanding per pair and hands each pair a new block
// the moment it completes one. Placement therefore tracks each pair's
// *current* rate with no explicit gauging, delivering the full available
// bandwidth under arbitrary rate changes; the block map records every
// placement — the "increased bookkeeping" the paper accepts in exchange.
// Blocks stranded on a failed pair are reissued to the survivors.
type AdaptivePull struct {
	// Depth is the per-pair outstanding-block window (default 2). Deeper
	// windows amortize issue latency but strand more work on a stalled
	// pair.
	Depth int
}

// Name implements Striper.
func (p AdaptivePull) Name() string { return fmt.Sprintf("adaptive-pull(depth=%d)", p.depth()) }

func (p AdaptivePull) depth() int {
	if p.Depth <= 0 {
		return 2
	}
	return p.Depth
}

// Run implements Striper.
func (p AdaptivePull) Run(a *Array, blocks int64, onDone func(Result)) {
	depth := p.depth()
	j := newJob(a, p.Name(), blocks, onDone)
	remaining := blocks
	outstanding := make([]int64, len(a.pairs))

	var pump func()
	issue := func(i int) {
		pair := a.pairs[i]
		remaining--
		outstanding[i]++
		a.recordPlacement(i)
		pair.WriteBlockSpan(
			j.span,
			func() {
				outstanding[i]--
				j.blockDone(i)
				pump()
			},
			func() {
				outstanding[i]--
				remaining++
				j.reissued++
				pump()
			},
		)
	}
	pump = func() {
		for i, pair := range a.pairs {
			if pair.Failed() {
				continue
			}
			for outstanding[i] < int64(depth) && remaining > 0 {
				issue(i)
			}
		}
	}
	pump()
}

// AdaptiveWave is the paper's third scenario in its literal form:
// "continually gauge performance and write blocks across mirror-pairs in
// proportion to their current rates". Every Interval seconds the
// controller measures each pair's completions since the previous wave and
// dispatches the next WaveBlocks proportionally. The re-gauge interval is
// ablated in experiment A2.
type AdaptiveWave struct {
	// Interval is the re-gauge period in seconds.
	Interval float64
	// WaveBlocks is how many blocks each wave dispatches.
	WaveBlocks int64
}

// Name implements Striper.
func (w AdaptiveWave) Name() string {
	return fmt.Sprintf("adaptive-wave(interval=%g)", w.Interval)
}

// Run implements Striper.
func (w AdaptiveWave) Run(a *Array, blocks int64, onDone func(Result)) {
	if w.Interval <= 0 || w.WaveBlocks <= 0 {
		panic("raid: AdaptiveWave requires positive Interval and WaveBlocks")
	}
	j := newJob(a, w.Name(), blocks, onDone)
	undispatched := blocks
	prev := a.pairCompletions()
	lastRates := make([]float64, len(a.pairs))

	dispatch := func(shares []int64) {
		for i, n := range shares {
			i := i
			pair := a.pairs[i]
			for k := int64(0); k < n; k++ {
				undispatched--
				a.recordPlacement(i)
				pair.WriteBlockSpan(
					j.span,
					func() { j.blockDone(i) },
					func() {
						undispatched++
						j.reissued++
					},
				)
			}
		}
	}

	// First wave: no measurements yet, split evenly.
	first := min64(w.WaveBlocks, undispatched)
	even := make([]float64, len(a.pairs))
	for i := range even {
		even[i] = 1
	}
	dispatch(core.ProportionalShares(first, even))

	var tick func()
	tick = func() {
		if j.finished {
			return
		}
		cur := a.pairCompletions()
		weights := make([]float64, len(a.pairs))
		maxRate := 0.0
		for i := range weights {
			rate := float64(cur[i]-prev[i]) / w.Interval
			if rate == 0 && lastRates[i] > 0 && !a.pairs[i].Failed() {
				// An idle-but-healthy pair keeps its last known rate so a
				// single empty interval cannot starve it forever.
				rate = lastRates[i]
			}
			lastRates[i] = rate
			weights[i] = rate
			if rate > maxRate {
				maxRate = rate
			}
			if a.pairs[i].Failed() {
				weights[i] = 0
			}
		}
		// Floor live pairs at a sliver of the leader so a slow pair still
		// receives probes and can demonstrate recovery.
		for i := range weights {
			if !a.pairs[i].Failed() && weights[i] < 0.02*maxRate {
				weights[i] = 0.02 * maxRate
			}
		}
		prev = cur
		n := min64(w.WaveBlocks, undispatched)
		if n > 0 {
			allZero := true
			for _, wt := range weights {
				if wt > 0 {
					allZero = false
					break
				}
			}
			if allZero {
				dispatch(core.ProportionalShares(n, even))
			} else {
				dispatch(core.MinMakespanAssign(n, weights))
			}
		}
		a.s.After(w.Interval, tick)
	}
	a.s.After(w.Interval, tick)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

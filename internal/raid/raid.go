// Package raid implements the RAID-10 storage substrate of the paper's
// Section 3.2 worked example: data blocks are striped (RAID-0) across a
// set of mirrored pairs (RAID-1). Three striping policies of increasing
// fail-stutter awareness — static equal, install-time gauged, and
// continuously adaptive — reproduce the paper's three design scenarios,
// and hot-spare reconstruction covers the fail-stop side of the model.
package raid

import (
	"fmt"
	"sort"

	"failstutter/internal/device"
	"failstutter/internal/sim"
	"failstutter/internal/trace"
)

// MirrorPair is a RAID-1 pair of disks. Writes go to every live member
// and complete when the slowest member finishes, so the pair's write rate
// is the minimum of its disks — the reason the paper suggests pairing
// disks that perform similarly.
type MirrorPair struct {
	ID int
	A  *device.Disk
	B  *device.Disk

	s           *sim.Simulator
	nextBlock   int64
	done        uint64
	lost        uint64
	outstanding map[*writeOp]struct{}
	opSeq       uint64

	tracer *trace.Tracer
	track  trace.TrackID
}

// writeOp tracks one logical mirrored write until it is durable on every
// live member, or lost because every member it reached has died.
type writeOp struct {
	pending   map[*device.Disk]bool
	completed int
	finished  bool
	onDone    func()
	onFail    func()
	// seq is the issue order within the pair; diskFailed resolves affected
	// ops in seq order so callback ordering (and with it span creation
	// order) never depends on map iteration order.
	seq  uint64
	span trace.SpanID
}

// NewMirrorPair builds a pair over two disks and wires failure
// accounting: when a disk dies, writes outstanding on it are resolved —
// completed if a surviving copy lands, lost otherwise — so stripers can
// reissue.
func NewMirrorPair(s *sim.Simulator, id int, a, b *device.Disk) *MirrorPair {
	p := &MirrorPair{ID: id, A: a, B: b, s: s, outstanding: make(map[*writeOp]struct{})}
	a.OnFail(func() { p.diskFailed(a) })
	b.OnFail(func() { p.diskFailed(b) })
	return p
}

// SetTracer attaches a span tracer: the pair records mirrored-write and
// mirrored-read spans on a "pair-<ID>" track, and both member disks are
// wired too.
func (p *MirrorPair) SetTracer(t *trace.Tracer) {
	p.tracer = t
	if t != nil {
		p.track = t.Track(fmt.Sprintf("pair-%d", p.ID))
	}
	p.A.SetTracer(t)
	p.B.SetTracer(t)
}

// diskFailed drops the dead disk from every outstanding write. Affected
// ops are resolved in issue order, not map order: resolve fires onFail
// callbacks that reissue work, so the order must be deterministic.
func (p *MirrorPair) diskFailed(d *device.Disk) {
	var affected []*writeOp
	for op := range p.outstanding {
		if op.pending[d] {
			affected = append(affected, op)
		}
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i].seq < affected[j].seq })
	for _, op := range affected {
		delete(op.pending, d)
		p.resolve(op)
	}
}

// resolve finishes an op whose pending set has drained.
func (p *MirrorPair) resolve(op *writeOp) {
	if op.finished || len(op.pending) != 0 {
		return
	}
	op.finished = true
	delete(p.outstanding, op)
	if p.tracer != nil {
		p.tracer.End(op.span, p.s.Now())
	}
	if op.completed > 0 {
		p.done++
		if op.onDone != nil {
			op.onDone()
		}
		return
	}
	p.lost++
	if op.onFail != nil {
		op.onFail()
	}
}

// Failed reports whether both members are dead (the pair, and with it the
// array, has lost data).
func (p *MirrorPair) Failed() bool { return p.A.Failed() && p.B.Failed() }

// Degraded reports whether exactly one member is dead.
func (p *MirrorPair) Degraded() bool { return p.A.Failed() != p.B.Failed() }

// BlocksWritten returns completed logical block writes.
func (p *MirrorPair) BlocksWritten() uint64 { return p.done }

// BlocksLost returns logical writes abandoned because every live member
// they were issued to failed before completion.
func (p *MirrorPair) BlocksLost() uint64 { return p.lost }

// live returns the pair's live members.
func (p *MirrorPair) live() []*device.Disk {
	var ds []*device.Disk
	if !p.A.Failed() {
		ds = append(ds, p.A)
	}
	if !p.B.Failed() {
		ds = append(ds, p.B)
	}
	return ds
}

// WriteBlock appends one logical block to the pair: a mirrored write to
// every live member. onDone fires when every live copy lands; onFail
// fires instead if every member the write reached dies first. Writing to
// a fully failed pair invokes onFail immediately (after the current
// event, to keep callback ordering sane).
func (p *MirrorPair) WriteBlock(onDone func(), onFail func()) {
	p.WriteBlockSpan(0, onDone, onFail)
}

// WriteBlockSpan is WriteBlock with a caller-level parent span (a striper
// job). The pair records a "mirrored-write" span covering issue to
// durability, and each member disk's write span parents to it.
func (p *MirrorPair) WriteBlockSpan(parent trace.SpanID, onDone func(), onFail func()) {
	targets := p.live()
	if len(targets) == 0 {
		p.lost++
		if p.tracer != nil {
			p.tracer.Instant(p.track, "write-to-dead-pair", "raid", p.s.Now())
		}
		if onFail != nil {
			p.s.After(0, onFail)
		}
		return
	}
	block := p.nextBlock
	p.nextBlock++
	op := &writeOp{pending: make(map[*device.Disk]bool, len(targets)), onDone: onDone, onFail: onFail}
	op.seq = p.opSeq
	p.opSeq++
	if p.tracer != nil {
		op.span = p.tracer.BeginArg(p.track, "mirrored-write", "raid", parent, p.s.Now(), block)
	}
	for _, d := range targets {
		op.pending[d] = true
	}
	p.outstanding[op] = struct{}{}
	for _, d := range targets {
		d := d
		d.AccessSpan(op.span, block, 1, true, func(float64) {
			if op.pending[d] {
				delete(op.pending, d)
				op.completed++
				p.resolve(op)
			}
		})
	}
}

// ReadBlock reads a previously appended logical block from the pair.
// The request goes to the live member with the shorter queue; if
// hedgeAfter is positive and the read has not completed within that many
// seconds, a duplicate is issued to the other live member and the first
// completion wins — the per-request promotion threshold of the
// fail-stutter model, applied to reads. Without a healthy mirror to hedge
// onto (a correlated fault, or a degraded pair) hedging cannot help,
// which is exactly the design-diversity argument of Section 3.3. onFail
// fires if no live member remains at issue time. Reading past the append
// point panics: it is always a caller bug.
func (p *MirrorPair) ReadBlock(block int64, hedgeAfter sim.Duration, onDone func(latency float64), onFail func()) {
	if block < 0 || block >= p.nextBlock {
		panic(fmt.Sprintf("raid: pair %d read of unwritten block %d", p.ID, block))
	}
	targets := p.live()
	if len(targets) == 0 {
		if onFail != nil {
			p.s.After(0, onFail)
		}
		return
	}
	best := targets[0]
	for _, d := range targets[1:] {
		if d.QueueLen() < best.QueueLen() {
			best = d
		}
	}
	start := p.s.Now()
	var span trace.SpanID
	if p.tracer != nil {
		span = p.tracer.BeginArg(p.track, "mirrored-read", "raid", 0, start, block)
	}
	finished := false
	finish := func(float64) {
		if finished {
			return
		}
		finished = true
		if p.tracer != nil {
			p.tracer.End(span, p.s.Now())
		}
		if onDone != nil {
			onDone(p.s.Now() - start)
		}
	}
	best.AccessSpan(span, block, 1, false, finish)
	if hedgeAfter > 0 {
		p.s.After(hedgeAfter, func() {
			if finished {
				return
			}
			for _, d := range p.live() {
				if d != best {
					if p.tracer != nil {
						p.tracer.Instant(p.track, "hedge", "raid", p.s.Now())
					}
					d.AccessSpan(span, block, 1, false, finish)
					return
				}
			}
		})
	}
}

// Array is a RAID-10 array: logical blocks striped over mirror pairs.
type Array struct {
	s          *sim.Simulator
	pairs      []*MirrorPair
	blockBytes float64

	// blockMap records, for each logical block written through a
	// bookkeeping policy, which pair holds it. Static policies do not
	// need it; the adaptive policy's map growth is the "increased
	// bookkeeping" cost the paper calls out, measured by ablation A2.
	blockMap []int

	tracer *trace.Tracer
	track  trace.TrackID
}

// NewArray builds an array over the given pairs.
func NewArray(s *sim.Simulator, pairs []*MirrorPair, blockBytes float64) *Array {
	if len(pairs) == 0 || blockBytes <= 0 {
		panic("raid: array needs pairs and a positive block size")
	}
	return &Array{s: s, pairs: pairs, blockBytes: blockBytes}
}

// Pairs returns the array's mirror pairs.
func (a *Array) Pairs() []*MirrorPair { return a.pairs }

// SetTracer attaches a span tracer to the array, every pair, and every
// member disk. Striper jobs record on the "array" track; each mirrored
// write parents its per-disk spans, giving the full causal chain
// job → mirrored-write → disk write → station queue/service.
func (a *Array) SetTracer(t *trace.Tracer) {
	a.tracer = t
	if t != nil {
		a.track = t.Track("array")
	}
	for _, p := range a.pairs {
		p.SetTracer(t)
	}
}

// BlockBytes returns the logical block size.
func (a *Array) BlockBytes() float64 { return a.blockBytes }

// Halted reports whether any pair has fully failed (RAID-10 data loss:
// "if two disks in a mirror-pair fail, operation is halted").
func (a *Array) Halted() bool {
	for _, p := range a.pairs {
		if p.Failed() {
			return true
		}
	}
	return false
}

// BookkeepingEntries returns the number of block-placement records the
// array currently holds.
func (a *Array) BookkeepingEntries() int { return len(a.blockMap) }

// recordPlacement appends a block->pair record.
func (a *Array) recordPlacement(pair int) { a.blockMap = append(a.blockMap, pair) }

// PairRates measures each pair's recent write rate in blocks/s from
// completion counters sampled over the given window by the caller; here
// it simply reports blocks written so callers can diff. (See
// Striper implementations for use.)
func (a *Array) pairCompletions() []uint64 {
	out := make([]uint64, len(a.pairs))
	for i, p := range a.pairs {
		out[i] = p.BlocksWritten()
	}
	return out
}

// GaugePairRates benchmarks each pair once with probeBlocks mirrored
// writes and returns per-pair rates in blocks/second. This is the paper's
// install-time gauging: it observes whatever the disks actually deliver,
// including any masked faults present at install time. The simulation
// runs during gauging; call before starting the measured workload.
func (a *Array) GaugePairRates(probeBlocks int64) []float64 {
	if probeBlocks <= 0 {
		panic("raid: probeBlocks must be positive")
	}
	rates := make([]float64, len(a.pairs))
	for i, p := range a.pairs {
		start := a.s.Now()
		remaining := probeBlocks
		finish := start
		done := false
		var issue func()
		issue = func() {
			if remaining == 0 {
				// The probe's own completion stamps the finish time and
				// halts the run: open-ended fault injectors may otherwise
				// keep the event queue alive indefinitely.
				finish = a.s.Now()
				done = true
				a.s.Stop()
				return
			}
			remaining--
			p.WriteBlock(issue, nil)
		}
		issue()
		a.s.Run()
		if done && finish > start {
			rates[i] = float64(probeBlocks) / (finish - start)
		}
	}
	return rates
}

// Result summarizes one striped write job.
type Result struct {
	Policy      string
	Blocks      int64
	Makespan    float64
	Throughput  float64 // bytes per second
	PerPair     []int64
	Bookkeeping int
	Reissued    int64
}

func (r Result) String() string {
	return fmt.Sprintf("%s: %d blocks in %.3fs = %.3g B/s (bookkeeping %d, reissued %d)",
		r.Policy, r.Blocks, r.Makespan, r.Throughput, r.Bookkeeping, r.Reissued)
}

// Striper is a placement policy for a striped write job.
type Striper interface {
	Name() string
	// Run writes `blocks` logical blocks through the array, invoking
	// onDone with the job summary when the last block lands. The caller
	// drives the simulator.
	Run(a *Array, blocks int64, onDone func(Result))
}

// WriteAndMeasure runs a striper to completion and returns its result.
// It is the convenience entry point used by experiments; it runs the
// simulator until the job finishes or no further progress is possible.
func WriteAndMeasure(s *sim.Simulator, a *Array, st Striper, blocks int64) (Result, error) {
	var res Result
	finished := false
	st.Run(a, blocks, func(r Result) {
		res = r
		finished = true
		// Halt the run loop: open-ended fault injectors may otherwise
		// keep scheduling events long after the job is done.
		s.Stop()
	})
	s.Run()
	if !finished {
		return Result{}, fmt.Errorf("raid: %s job did not complete (array halted: %v)", st.Name(), a.Halted())
	}
	return res, nil
}

package raid

import (
	"math"
	"testing"

	"failstutter/internal/device"
	"failstutter/internal/faults"
	"failstutter/internal/sim"
)

const blockBytes = 4096

// testDisk returns a flat single-zone disk with the given bandwidth in
// bytes/s.
func testDisk(s *sim.Simulator, name string, bw float64) *device.Disk {
	return device.MustDisk(s, device.DiskParams{
		Name:           name,
		CapacityBlocks: 1 << 22,
		BlockBytes:     blockBytes,
		Zones:          []device.Zone{{CapacityFrac: 1, Bandwidth: bw}},
		SeekTime:       0.001,
		AgingFactor:    1,
	})
}

// testArray builds an array with one pair per rate (both pair members at
// that rate), rates in bytes/s.
func testArray(s *sim.Simulator, rates []float64) *Array {
	pairs := make([]*MirrorPair, len(rates))
	for i, r := range rates {
		a := testDisk(s, pairName(i, "a"), r)
		b := testDisk(s, pairName(i, "b"), r)
		pairs[i] = NewMirrorPair(s, i, a, b)
	}
	return NewArray(s, pairs, blockBytes)
}

func pairName(i int, side string) string {
	return "pair" + string(rune('0'+i)) + "-" + side
}

func TestMirrorPairRateIsMinOfMembers(t *testing.T) {
	s := sim.New()
	fast := testDisk(s, "fast", 100*blockBytes) // 100 blocks/s
	slow := testDisk(s, "slow", 50*blockBytes)  // 50 blocks/s
	p := NewMirrorPair(s, 0, fast, slow)
	done := 0
	var issue func()
	issue = func() {
		if done >= 100 {
			return
		}
		p.WriteBlock(func() { done++; issue() }, nil)
	}
	issue()
	s.Run()
	// 100 blocks at the slow member's 50 blocks/s ~ 2 s.
	if s.Now() < 1.9 || s.Now() > 2.2 {
		t.Fatalf("pair of (100,50) blocks/s wrote 100 blocks in %v s, want ~2", s.Now())
	}
	if p.BlocksWritten() != 100 {
		t.Fatalf("blocks written = %d", p.BlocksWritten())
	}
}

func TestMirrorPairSurvivesSingleFailure(t *testing.T) {
	s := sim.New()
	a := testDisk(s, "a", 10*blockBytes)
	b := testDisk(s, "b", 10*blockBytes)
	p := NewMirrorPair(s, 0, a, b)
	completed, failed := 0, 0
	for i := 0; i < 50; i++ {
		p.WriteBlock(func() { completed++ }, func() { failed++ })
	}
	s.At(1, a.Fail) // ~10 blocks in; 40 queued writes on a abandoned
	s.Run()
	if failed != 0 {
		t.Fatalf("failures = %d, want 0 (mirror survives)", failed)
	}
	if completed != 50 {
		t.Fatalf("completed = %d, want all 50 via survivor", completed)
	}
	if !p.Degraded() || p.Failed() {
		t.Fatalf("pair state degraded=%v failed=%v", p.Degraded(), p.Failed())
	}
}

func TestMirrorPairDoubleFailureLosesWrites(t *testing.T) {
	s := sim.New()
	a := testDisk(s, "a", 10*blockBytes)
	b := testDisk(s, "b", 10*blockBytes)
	p := NewMirrorPair(s, 0, a, b)
	completed, failed := 0, 0
	for i := 0; i < 50; i++ {
		p.WriteBlock(func() { completed++ }, func() { failed++ })
	}
	s.At(1, a.Fail)
	s.At(1.5, b.Fail)
	s.Run()
	if !p.Failed() {
		t.Fatal("pair not failed after double failure")
	}
	if completed+failed != 50 {
		t.Fatalf("completed %d + failed %d != 50", completed, failed)
	}
	if failed == 0 {
		t.Fatal("no writes reported lost")
	}
	if p.BlocksLost() != uint64(failed) {
		t.Fatalf("BlocksLost = %d, callbacks = %d", p.BlocksLost(), failed)
	}
}

func TestWriteBlockOnDeadPairFailsImmediately(t *testing.T) {
	s := sim.New()
	a := testDisk(s, "a", 10*blockBytes)
	b := testDisk(s, "b", 10*blockBytes)
	p := NewMirrorPair(s, 0, a, b)
	a.Fail()
	b.Fail()
	failed := false
	p.WriteBlock(func() { t.Fatal("write completed on dead pair") }, func() { failed = true })
	s.Run()
	if !failed {
		t.Fatal("onFail not invoked")
	}
}

// Scenario 1 (E01): with N-1 pairs at B and one at b, static-equal
// striping delivers N*b.
func TestStaticEqualTracksSlowPair(t *testing.T) {
	s := sim.New()
	B, b := 1e6, 0.25e6
	a := testArray(s, []float64{B, B, B, b})
	res, err := WriteAndMeasure(s, a, StaticEqual{}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * b // N*b
	if math.Abs(res.Throughput-want)/want > 0.05 {
		t.Fatalf("static throughput = %v, want ~%v (N*b)", res.Throughput, want)
	}
	// Equal shares regardless of speed.
	for i, n := range res.PerPair {
		if n != 500 {
			t.Fatalf("pair %d wrote %d blocks, want 500", i, n)
		}
	}
	if res.Bookkeeping != 0 {
		t.Fatalf("static bookkeeping = %d, want 0", res.Bookkeeping)
	}
}

// Scenario 2 (E02): install-time gauging delivers (N-1)*B + b under
// static performance faults.
func TestGaugedProportionalUsesFullBandwidth(t *testing.T) {
	s := sim.New()
	B, b := 1e6, 0.25e6
	a := testArray(s, []float64{B, B, B, b})
	res, err := WriteAndMeasure(s, a, GaugedProportional{ProbeBlocks: 32}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	want := 3*B + b
	if math.Abs(res.Throughput-want)/want > 0.08 {
		t.Fatalf("gauged throughput = %v, want ~%v ((N-1)B+b)", res.Throughput, want)
	}
	// The slow pair gets ~1/13 of the blocks.
	if res.PerPair[3] > res.PerPair[0]/2 {
		t.Fatalf("slow pair share %d not proportional (fast share %d)", res.PerPair[3], res.PerPair[0])
	}
}

// Scenario 2's failure mode: performance drift after gauging reverts the
// design to tracking the slow disk.
func TestGaugedBrokenByPostGaugeDrift(t *testing.T) {
	B := 1e6
	run := func(st Striper) Result {
		s := sim.New()
		a := testArray(s, []float64{B, B, B, B})
		// Pair 0 degrades to 20% two seconds in — after gauging finishes.
		faults.StepAt{At: 2, Factor: 0.2}.Install(s, a.Pairs()[0].A.Composite())
		res, err := WriteAndMeasure(s, a, st, 4000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gauged := run(GaugedProportional{ProbeBlocks: 32})
	adaptive := run(AdaptivePull{Depth: 2})
	if adaptive.Throughput < 1.3*gauged.Throughput {
		t.Fatalf("adaptive %v not clearly better than drift-broken gauged %v",
			adaptive.Throughput, gauged.Throughput)
	}
}

// Scenario 3 (E03): adaptive placement matches the gauged optimum under
// static faults without any install-time step.
func TestAdaptivePullFullBandwidthStatic(t *testing.T) {
	s := sim.New()
	B, b := 1e6, 0.25e6
	a := testArray(s, []float64{B, B, B, b})
	res, err := WriteAndMeasure(s, a, AdaptivePull{Depth: 2}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	want := 3*B + b
	if res.Throughput < 0.9*want {
		t.Fatalf("adaptive throughput = %v, want >= 0.9*%v", res.Throughput, want)
	}
	if res.Bookkeeping != int(res.Blocks+res.Reissued) {
		t.Fatalf("bookkeeping = %d, want one entry per placement (%d)",
			res.Bookkeeping, res.Blocks+res.Reissued)
	}
}

func TestAdaptivePullReissuesAfterPairDeath(t *testing.T) {
	s := sim.New()
	B := 1e6
	a := testArray(s, []float64{B, B, B, B})
	// Pair 3 dies entirely mid-job.
	s.At(1, a.Pairs()[3].A.Fail)
	s.At(1.2, a.Pairs()[3].B.Fail)
	res, err := WriteAndMeasure(s, a, AdaptivePull{Depth: 2}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reissued == 0 {
		t.Fatal("no blocks reissued after pair death")
	}
	if !a.Halted() {
		t.Fatal("array not marked halted despite dead pair")
	}
	total := int64(0)
	for _, n := range res.PerPair {
		total += n
	}
	if total != res.Blocks {
		t.Fatalf("per-pair sum %d != blocks %d", total, res.Blocks)
	}
}

func TestAdaptiveWaveStatic(t *testing.T) {
	s := sim.New()
	B, b := 1e6, 0.25e6
	a := testArray(s, []float64{B, B, B, b})
	res, err := WriteAndMeasure(s, a, AdaptiveWave{Interval: 0.2, WaveBlocks: 400}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	want := 3*B + b
	if res.Throughput < 0.8*want {
		t.Fatalf("wave throughput = %v, want >= 0.8*%v", res.Throughput, want)
	}
}

func TestAdaptiveWaveTracksDynamicFault(t *testing.T) {
	B := 1e6
	run := func(st Striper) Result {
		s := sim.New()
		a := testArray(s, []float64{B, B, B, B})
		// Pair 0 oscillates: 20% for one second, recovered the next.
		faults.PeriodicStall{Period: 2, Duration: 1, Factor: 0.2, Until: 60}.
			Install(s, a.Pairs()[0].A.Composite())
		res, err := WriteAndMeasure(s, a, st, 6000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(StaticEqual{})
	wave := run(AdaptiveWave{Interval: 0.25, WaveBlocks: 500})
	if wave.Throughput < 1.2*static.Throughput {
		t.Fatalf("adaptive wave %v not clearly better than static %v under oscillation",
			wave.Throughput, static.Throughput)
	}
}

func TestGaugePairRates(t *testing.T) {
	s := sim.New()
	B, b := 1e6, 0.25e6
	a := testArray(s, []float64{B, b})
	rates := a.GaugePairRates(64)
	// Rates in blocks/s: ~B/blockBytes and ~b/blockBytes.
	r0, r1 := rates[0]*blockBytes, rates[1]*blockBytes
	if math.Abs(r0-B)/B > 0.1 {
		t.Fatalf("gauged pair0 = %v B/s, want ~%v", r0, B)
	}
	if math.Abs(r1-b)/b > 0.1 {
		t.Fatalf("gauged pair1 = %v B/s, want ~%v", r1, b)
	}
}

func TestReconstructionRestoresRedundancy(t *testing.T) {
	s := sim.New()
	B := 1e6
	a := testArray(s, []float64{B, B})
	spare := testDisk(s, "spare", B)
	pool := NewSparePool(spare)
	var ev ReconEvent
	got := false
	EnableReconstruction(a, pool, 64, func(e ReconEvent) { ev = e; got = true })

	// Write some data first, then kill pair 0's A member.
	res, err := WriteAndMeasure(s, a, StaticEqual{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	a.Pairs()[0].A.Fail()
	s.Run()
	if !got {
		t.Fatal("reconstruction did not complete")
	}
	if ev.PairID != 0 || ev.Blocks < 500 {
		t.Fatalf("recon event = %+v", ev)
	}
	if a.Pairs()[0].Degraded() {
		t.Fatal("pair still degraded after rebuild")
	}
	if pool.Remaining() != 0 {
		t.Fatalf("spares remaining = %d", pool.Remaining())
	}
	// The rebuilt pair accepts writes mirrored to the spare.
	done := false
	a.Pairs()[0].WriteBlock(func() { done = true }, nil)
	s.Run()
	if !done {
		t.Fatal("write after rebuild did not complete")
	}
	if spare.Writes() == 0 {
		t.Fatal("spare received no writes")
	}
}

func TestReconstructionWithoutSparesLeavesDegraded(t *testing.T) {
	s := sim.New()
	a := testArray(s, []float64{1e6})
	EnableReconstruction(a, NewSparePool(), 64, nil)
	if _, err := WriteAndMeasure(s, a, StaticEqual{}, 100); err != nil {
		t.Fatal(err)
	}
	a.Pairs()[0].A.Fail()
	s.Run()
	if !a.Pairs()[0].Degraded() {
		t.Fatal("pair should remain degraded with no spares")
	}
}

func TestStaticJobNeverCompletesIfPairDies(t *testing.T) {
	s := sim.New()
	B := 1e6
	a := testArray(s, []float64{B, B})
	s.At(0.5, a.Pairs()[1].A.Fail)
	s.At(0.6, a.Pairs()[1].B.Fail)
	_, err := WriteAndMeasure(s, a, StaticEqual{}, 2000)
	if err == nil {
		t.Fatal("static job completed despite dead pair")
	}
}

func TestReadBlockFromPair(t *testing.T) {
	s := sim.New()
	a := testDisk(s, "a", 100*blockBytes)
	b := testDisk(s, "b", 100*blockBytes)
	p := NewMirrorPair(s, 0, a, b)
	for i := 0; i < 10; i++ {
		p.WriteBlock(nil, nil)
	}
	s.Run()
	done := false
	p.ReadBlock(5, 0, func(lat float64) { done = lat > 0 }, nil)
	s.Run()
	if !done {
		t.Fatal("read did not complete")
	}
}

func TestReadBlockUnwrittenPanics(t *testing.T) {
	s := sim.New()
	p := NewMirrorPair(s, 0, testDisk(s, "a", blockBytes), testDisk(s, "b", blockBytes))
	defer func() {
		if recover() == nil {
			t.Fatal("read of unwritten block did not panic")
		}
	}()
	p.ReadBlock(0, 0, nil, nil)
}

func TestReadBlockHedgesOntoMirror(t *testing.T) {
	s := sim.New()
	a := testDisk(s, "a", 100*blockBytes)
	b := testDisk(s, "b", 100*blockBytes)
	p := NewMirrorPair(s, 0, a, b)
	for i := 0; i < 4; i++ {
		p.WriteBlock(nil, nil)
	}
	s.Run()
	// Stall member A completely; the hedge must complete the read via B.
	faults.Static{Factor: 0}.Install(s, a.Composite())
	// Give A the shorter queue so the initial pick lands on it.
	var lat float64 = -1
	p.ReadBlock(0, 0.5, func(l float64) { lat = l }, nil)
	s.RunUntil(10)
	if lat < 0 {
		t.Fatal("hedged read never completed")
	}
	if lat < 0.5 || lat > 1 {
		t.Fatalf("hedged read latency %v, want just over the 0.5 s hedge delay", lat)
	}
}

func TestReadBlockNoHedgeStaysStuck(t *testing.T) {
	s := sim.New()
	a := testDisk(s, "a", 100*blockBytes)
	b := testDisk(s, "b", 100*blockBytes)
	p := NewMirrorPair(s, 0, a, b)
	p.WriteBlock(nil, nil)
	s.Run()
	faults.Static{Factor: 0}.Install(s, a.Composite())
	done := false
	p.ReadBlock(0, 0, func(float64) { done = true }, nil)
	s.RunUntil(10)
	if done {
		t.Fatal("read completed despite a stalled target and no hedging")
	}
}

func TestReadBlockFirstCompletionWinsOnce(t *testing.T) {
	s := sim.New()
	a := testDisk(s, "a", 100*blockBytes)
	b := testDisk(s, "b", 100*blockBytes)
	p := NewMirrorPair(s, 0, a, b)
	p.WriteBlock(nil, nil)
	s.Run()
	completions := 0
	// Aggressive hedge: both copies will run; onDone must fire once.
	p.ReadBlock(0, 1e-6, func(float64) { completions++ }, nil)
	s.Run()
	if completions != 1 {
		t.Fatalf("completions = %d, want exactly 1", completions)
	}
}

func TestReadBlockDeadPairFails(t *testing.T) {
	s := sim.New()
	a := testDisk(s, "a", 100*blockBytes)
	b := testDisk(s, "b", 100*blockBytes)
	p := NewMirrorPair(s, 0, a, b)
	p.WriteBlock(nil, nil)
	s.Run()
	a.Fail()
	b.Fail()
	failed := false
	p.ReadBlock(0, 0, func(float64) { t.Fatal("read on dead pair completed") }, func() { failed = true })
	s.Run()
	if !failed {
		t.Fatal("onFail not invoked")
	}
}

func TestArrayValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty array did not panic")
		}
	}()
	NewArray(sim.New(), nil, blockBytes)
}

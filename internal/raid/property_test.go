package raid

import (
	"testing"
	"testing/quick"

	"failstutter/internal/faults"
	"failstutter/internal/sim"
)

// Property: under arbitrary (non-fatal) fault schedules, every adaptive
// job completes with exactly `blocks` logical writes, distributed across
// live pairs, and throughput never exceeds the aggregate nominal rate.
func TestAdaptiveConservationUnderRandomFaults(t *testing.T) {
	f := func(seed uint64, rawFaults []uint8) bool {
		s := sim.New()
		rates := []float64{1e6, 1e6, 1e6, 1e6}
		a := testArray(s, rates)
		rng := sim.NewRNG(seed)
		// Build a random non-fatal fault schedule from the fuzz input:
		// interval degradations and periodic stalls on random disks.
		for i, v := range rawFaults {
			if i >= 6 {
				break
			}
			pair := a.Pairs()[int(v)%len(rates)]
			disk := pair.A
			if v%2 == 1 {
				disk = pair.B
			}
			start := rng.Uniform(0, 5)
			switch v % 3 {
			case 0:
				faults.Interval{Start: start, End: start + rng.Uniform(0.5, 3), Factor: rng.Uniform(0.05, 0.8)}.
					Install(s, disk.Composite())
			case 1:
				faults.PeriodicStall{Period: rng.Uniform(1, 3), Duration: rng.Uniform(0.2, 0.8), Until: 60}.
					Install(s, disk.Composite())
			case 2:
				faults.StepAt{At: start, Factor: rng.Uniform(0.2, 0.9)}.
					Install(s, disk.Composite())
			}
		}
		const blocks = 1000
		res, err := WriteAndMeasure(s, a, AdaptivePull{Depth: 2}, blocks)
		if err != nil {
			return false
		}
		var sum int64
		for _, n := range res.PerPair {
			sum += n
		}
		if sum != blocks {
			return false
		}
		// Throughput can never beat the fault-free aggregate.
		aggregate := 4e6
		return res.Throughput <= aggregate*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: adaptive placement never loses to static-equal by more than
// the issue-granularity margin, across random single-pair degradations.
func TestAdaptiveNeverWorseThanStatic(t *testing.T) {
	f := func(deficit8 uint8, pair8 uint8) bool {
		deficit := 0.1 + 0.85*float64(deficit8)/255 // 0.1 .. 0.95
		pairIdx := int(pair8) % 4

		run := func(st Striper) float64 {
			s := sim.New()
			a := testArray(s, []float64{1e6, 1e6, 1e6, 1e6})
			faults.Static{Factor: 1 - deficit}.Install(s, a.Pairs()[pairIdx].A.Composite())
			res, err := WriteAndMeasure(s, a, st, 1500)
			if err != nil {
				return -1
			}
			return res.Throughput
		}
		static := run(StaticEqual{})
		adaptive := run(AdaptivePull{Depth: 2})
		if static < 0 || adaptive < 0 {
			return false
		}
		return adaptive >= static*0.98
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: gauged shares always sum to the job size and scale with the
// gauged rates (the slowest pair never receives the largest share when
// deficits are material).
func TestGaugedSharesReflectRates(t *testing.T) {
	f := func(deficit8 uint8) bool {
		deficit := 0.3 + 0.6*float64(deficit8)/255 // 0.3 .. 0.9
		s := sim.New()
		a := testArray(s, []float64{1e6, 1e6, 1e6, 1e6 * (1 - deficit)})
		res, err := WriteAndMeasure(s, a, GaugedProportional{ProbeBlocks: 32}, 2000)
		if err != nil {
			return false
		}
		var sum int64
		for _, n := range res.PerPair {
			sum += n
		}
		if sum != 2000 {
			return false
		}
		slow := res.PerPair[3]
		for _, n := range res.PerPair[:3] {
			if slow >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Failure injection: an adaptive job survives any single-disk crash (the
// mirror absorbs it) and any single-pair crash (reissue absorbs it).
func TestAdaptiveSurvivesCrashMatrix(t *testing.T) {
	for _, tc := range []struct {
		name   string
		crash  func(a *Array, s *sim.Simulator)
		halted bool
	}{
		{"single disk", func(a *Array, s *sim.Simulator) {
			s.At(1, a.Pairs()[1].A.Fail)
		}, false},
		{"both disks of one pair", func(a *Array, s *sim.Simulator) {
			s.At(1, a.Pairs()[1].A.Fail)
			s.At(1.5, a.Pairs()[1].B.Fail)
		}, true},
		{"one disk in each of two pairs", func(a *Array, s *sim.Simulator) {
			s.At(1, a.Pairs()[0].A.Fail)
			s.At(1.5, a.Pairs()[2].B.Fail)
		}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := sim.New()
			a := testArray(s, []float64{1e6, 1e6, 1e6, 1e6})
			tc.crash(a, s)
			res, err := WriteAndMeasure(s, a, AdaptivePull{Depth: 2}, 3000)
			if err != nil {
				t.Fatalf("job failed: %v", err)
			}
			var sum int64
			for _, n := range res.PerPair {
				sum += n
			}
			if sum != 3000 {
				t.Fatalf("per-pair sum %d != 3000", sum)
			}
			if a.Halted() != tc.halted {
				t.Fatalf("halted = %v, want %v", a.Halted(), tc.halted)
			}
		})
	}
}

package raid

import (
	"fmt"

	"failstutter/internal/device"
	"failstutter/internal/sim"
)

// SparePool holds hot-spare disks for reconstruction.
type SparePool struct {
	disks []*device.Disk
}

// NewSparePool builds a pool from the given spares.
func NewSparePool(disks ...*device.Disk) *SparePool {
	return &SparePool{disks: disks}
}

// Remaining returns the number of unused spares.
func (sp *SparePool) Remaining() int { return len(sp.disks) }

// take removes and returns a spare, or nil when empty.
func (sp *SparePool) take() *device.Disk {
	if len(sp.disks) == 0 {
		return nil
	}
	d := sp.disks[0]
	sp.disks = sp.disks[1:]
	return d
}

// ReconEvent describes a completed reconstruction.
type ReconEvent struct {
	PairID   int
	Blocks   int64
	Duration sim.Duration
}

// EnableReconstruction arms hot-spare rebuild on every pair of the array:
// when a member disk fails, a spare is taken from the pool and the
// survivor's contents are copied onto it chunk by chunk, sharing the
// survivor's queue with foreground traffic (so rebuild contends with the
// workload, as it does in real arrays — reconstruction is itself a
// performance fault from the workload's point of view). When the copy
// catches up with the pair's append point, the spare replaces the dead
// member.
//
// chunkBlocks sets the copy granularity; onComplete (optional) observes
// finished rebuilds.
func EnableReconstruction(a *Array, pool *SparePool, chunkBlocks int64, onComplete func(ReconEvent)) {
	if chunkBlocks <= 0 {
		panic("raid: chunkBlocks must be positive")
	}
	for _, p := range a.pairs {
		p := p
		arm := func(member *device.Disk) {
			member.OnFail(func() {
				survivor := p.other(member)
				if survivor == nil || survivor.Failed() {
					return // pair is gone; nothing to rebuild from
				}
				spare := pool.take()
				if spare == nil {
					return // administrator stocked too few spares
				}
				start := a.s.Now()
				var copied int64
				var step func()
				step = func() {
					if survivor.Failed() || spare.Failed() {
						return // rebuild source or target died
					}
					if copied >= p.nextBlock {
						// Caught up: promote the spare into the pair.
						p.adopt(member, spare)
						if onComplete != nil {
							onComplete(ReconEvent{PairID: p.ID, Blocks: copied, Duration: a.s.Now() - start})
						}
						return
					}
					n := min64(chunkBlocks, p.nextBlock-copied)
					from := copied
					survivor.Read(from, n, func(float64) {
						spare.Write(from, n, func(float64) {
							copied += n
							step()
						})
					})
				}
				step()
			})
		}
		arm(p.A)
		arm(p.B)
	}
}

// other returns the pair member that is not d, or nil if d is not a
// member.
func (p *MirrorPair) other(d *device.Disk) *device.Disk {
	switch d {
	case p.A:
		return p.B
	case p.B:
		return p.A
	default:
		return nil
	}
}

// adopt replaces the dead member with the rebuilt spare and wires the
// spare's failure hook into the pair's accounting.
func (p *MirrorPair) adopt(dead, spare *device.Disk) {
	switch dead {
	case p.A:
		p.A = spare
	case p.B:
		p.B = spare
	default:
		panic(fmt.Sprintf("raid: adopt for non-member disk %q", dead.Name()))
	}
	spare.OnFail(func() { p.diskFailed(spare) })
}

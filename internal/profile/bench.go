package profile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// BenchSchema identifies the benchmark artifact format.
const BenchSchema = "fstutter-bench/1"

// Bench is one benchmark's repeated measurements. Unit is "ns/op":
// samples are nanoseconds per operation as reported by testing.B.
type Bench struct {
	Name    string    `json:"name"`
	Unit    string    `json:"unit"`
	Samples []float64 `json:"samples"`
}

// Median returns the median sample in ns/op (NaN-free input assumed;
// zero when empty).
func (b Bench) Median() float64 {
	if len(b.Samples) == 0 {
		return 0
	}
	s := append([]float64(nil), b.Samples...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// BenchArtifact is a committed performance baseline: the output of
// `fstutter bench`, diffed over time by `fstutter perfdiff`.
//
// Shards, GoMaxProcs and NumCPU record the parallelism the samples were
// taken under: wall-clock benchmarks from a sharded run on a 16-core
// runner are not comparable to a serial run on a laptop, and perfdiff
// warns when the two sides of a diff disagree. Zero means the artifact
// predates the fields (unknown), which never warns.
type BenchArtifact struct {
	Schema     string `json:"schema"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`
	Shards     int    `json:"shards,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	NumCPU     int    `json:"numcpu,omitempty"`
	// SweepWorkers is the barrier sweep pool size the fleet benchmarks
	// ran with (the resolved -sweep-workers value).
	SweepWorkers int     `json:"sweepworkers,omitempty"`
	Benchmarks   []Bench `json:"benchmarks"`
}

// WriteJSON writes the artifact in canonical byte-deterministic form:
// benchmarks sorted by name, floats in shortest-roundtrip notation.
func (a *BenchArtifact) WriteJSON(w io.Writer) error {
	benches := append([]Bench(nil), a.Benchmarks...)
	sort.Slice(benches, func(i, j int) bool { return benches[i].Name < benches[j].Name })
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"schema":`)
	jstr(bw, BenchSchema)
	bw.WriteString(`,"seed":`)
	bw.WriteString(strconv.FormatUint(a.Seed, 10))
	bw.WriteString(`,"quick":`)
	bw.WriteString(strconv.FormatBool(a.Quick))
	if a.Shards > 0 {
		bw.WriteString(`,"shards":`)
		bw.WriteString(strconv.Itoa(a.Shards))
	}
	if a.GoMaxProcs > 0 {
		bw.WriteString(`,"gomaxprocs":`)
		bw.WriteString(strconv.Itoa(a.GoMaxProcs))
	}
	if a.NumCPU > 0 {
		bw.WriteString(`,"numcpu":`)
		bw.WriteString(strconv.Itoa(a.NumCPU))
	}
	if a.SweepWorkers > 0 {
		bw.WriteString(`,"sweepworkers":`)
		bw.WriteString(strconv.Itoa(a.SweepWorkers))
	}
	bw.WriteString(`,"benchmarks":[`)
	for i, b := range benches {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n")
		bw.WriteString(`{"name":`)
		jstr(bw, b.Name)
		bw.WriteString(`,"unit":`)
		jstr(bw, b.Unit)
		bw.WriteString(`,"samples":[`)
		for j, s := range b.Samples {
			if j > 0 {
				bw.WriteByte(',')
			}
			jnum(bw, s)
		}
		bw.WriteString(`]}`)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// ReadBench parses a benchmark artifact and validates its schema tag.
func ReadBench(r io.Reader) (*BenchArtifact, error) {
	var a BenchArtifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("profile: parsing bench artifact: %w", err)
	}
	if a.Schema != BenchSchema {
		return nil, fmt.Errorf("profile: bench artifact schema %q, want %q", a.Schema, BenchSchema)
	}
	return &a, nil
}

// ReadBenchFile reads a benchmark artifact from disk.
func ReadBenchFile(path string) (*BenchArtifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBench(f)
}

package profile

import (
	"bufio"
	"io"
	"math"
	"strconv"

	"failstutter/internal/trace"
)

// jnum writes a float in canonical shortest-roundtrip form; NaN and Inf
// export as null, matching the registry's JSON convention.
func jnum(bw *bufio.Writer, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		bw.WriteString("null")
		return
	}
	bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}

func jstr(bw *bufio.Writer, s string) {
	bw.WriteString(strconv.Quote(s))
}

func jint(bw *bufio.Writer, v int64) {
	bw.WriteString(strconv.FormatInt(v, 10))
}

// RunMeta identifies the run an artifact was derived from: the seed and
// workload scale that determine its virtual-time content, plus the
// parallelism (shard count, GOMAXPROCS, CPU count) it executed under —
// stamped into every artifact header the way fstutter-bench/1 already
// records them. The parallelism fields are omitted when zero, so readers
// of artifacts that predate the stamp (or of artifacts from contexts
// without a resolved shard count) see them as unknown rather than wrong.
type RunMeta struct {
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`
	Shards     int    `json:"shards,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	NumCPU     int    `json:"numcpu,omitempty"`
}

// writeHeader emits the meta fields after a schema tag: seed and quick
// always, the parallelism triple only when known (non-zero), matching the
// fstutter-bench/1 convention.
func (m RunMeta) writeHeader(bw *bufio.Writer) {
	bw.WriteString(`,"seed":`)
	bw.WriteString(strconv.FormatUint(m.Seed, 10))
	bw.WriteString(`,"quick":`)
	bw.WriteString(strconv.FormatBool(m.Quick))
	if m.Shards > 0 {
		bw.WriteString(`,"shards":`)
		bw.WriteString(strconv.Itoa(m.Shards))
	}
	if m.GoMaxProcs > 0 {
		bw.WriteString(`,"gomaxprocs":`)
		bw.WriteString(strconv.Itoa(m.GoMaxProcs))
	}
	if m.NumCPU > 0 {
		bw.WriteString(`,"numcpu":`)
		bw.WriteString(strconv.Itoa(m.NumCPU))
	}
}

// jhist writes a histogram summary object, or null for a nil histogram.
func jhist(bw *bufio.Writer, h *trace.Histogram) {
	if h == nil {
		bw.WriteString("null")
		return
	}
	bw.WriteString(`{"count":`)
	jint(bw, int64(h.Count()))
	bw.WriteString(`,"mean":`)
	jnum(bw, h.Mean())
	bw.WriteString(`,"min":`)
	jnum(bw, h.Min())
	bw.WriteString(`,"max":`)
	jnum(bw, h.Max())
	bw.WriteString(`,"p50":`)
	jnum(bw, h.Quantile(0.5))
	bw.WriteString(`,"p99":`)
	jnum(bw, h.Quantile(0.99))
	bw.WriteString(`}`)
}

// WriteJSON dumps the full report as byte-deterministic JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"schema":"fstutter-profile/1"`)
	r.Meta.writeHeader(bw)
	bw.WriteString(`,"window":{"start":`)
	jnum(bw, r.Start)
	bw.WriteString(`,"end":`)
	jnum(bw, r.End)
	bw.WriteString(`,"makespan":`)
	jnum(bw, r.Makespan)
	bw.WriteString(`},"critical_path":{"attributed":`)
	jnum(bw, r.CriticalLen)
	bw.WriteString(`,"idle":`)
	jnum(bw, r.Idle)
	bw.WriteString(`,"shares":[`)
	for i, s := range r.Shares {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(`{"component":`)
		jstr(bw, s.Component)
		bw.WriteString(`,"seconds":`)
		jnum(bw, s.Seconds)
		bw.WriteString(`,"fraction":`)
		jnum(bw, s.Fraction)
		bw.WriteString(`}`)
	}
	bw.WriteString(`],"segments":[`)
	for i, seg := range r.Segments {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n")
		bw.WriteString(`{"span":`)
		jint(bw, int64(seg.Span))
		bw.WriteString(`,"track":`)
		jstr(bw, seg.Track)
		bw.WriteString(`,"name":`)
		jstr(bw, seg.Name)
		bw.WriteString(`,"start":`)
		jnum(bw, seg.Start)
		bw.WriteString(`,"end":`)
		jnum(bw, seg.End)
		bw.WriteString(`}`)
	}
	bw.WriteString(`]},"frames":[`)
	for i, fs := range r.FrameStats {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n")
		bw.WriteString(`{"frame":`)
		jstr(bw, fs.Frame)
		bw.WriteString(`,"self":`)
		jnum(bw, fs.Self)
		bw.WriteString(`,"total":`)
		jnum(bw, fs.Total)
		bw.WriteString(`,"count":`)
		jint(bw, int64(fs.Count))
		bw.WriteString(`}`)
	}
	bw.WriteString(`],"components":[`)
	for i := range r.Components {
		c := &r.Components[i]
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n")
		bw.WriteString(`{"name":`)
		jstr(bw, c.Name)
		bw.WriteString(`,"spans":`)
		jint(bw, int64(c.Spans))
		bw.WriteString(`,"busy":`)
		jnum(bw, c.Busy)
		bw.WriteString(`,"utilization":`)
		jnum(bw, c.Utilization)
		bw.WriteString(`,"service":`)
		jhist(bw, c.Service)
		bw.WriteString(`,"wait":`)
		jhist(bw, c.Wait)
		bw.WriteString(`,"queue":`)
		if c.Queue == nil {
			bw.WriteString("null")
		} else {
			bw.WriteString(`{"samples":`)
			jint(bw, int64(c.Queue.Samples))
			bw.WriteString(`,"max_depth":`)
			jnum(bw, c.Queue.MaxDepth)
			bw.WriteString(`,"mean_depth":`)
			jnum(bw, c.Queue.MeanDepth)
			bw.WriteString(`,"max_backlog":`)
			jnum(bw, c.Queue.MaxBacklog)
			bw.WriteString(`,"mean_backlog":`)
			jnum(bw, c.Queue.MeanBacklog)
			bw.WriteString(`}`)
		}
		bw.WriteString(`}`)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// WriteJSON dumps the availability analysis as byte-deterministic JSON.
func (r *SLOReport) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"schema":"fstutter-slo/1"`)
	r.Meta.writeHeader(bw)
	bw.WriteString(`,"threshold":`)
	jnum(bw, r.Threshold)
	bw.WriteString(`,"auto":`)
	bw.WriteString(strconv.FormatBool(r.Auto))
	bw.WriteString(`,"category":`)
	jstr(bw, r.Category)
	bw.WriteString(`,"offered":`)
	jint(bw, int64(r.Offered))
	bw.WriteString(`,"within":`)
	jint(bw, int64(r.Within))
	bw.WriteString(`,"availability":`)
	jnum(bw, r.Availability)
	bw.WriteString(`,"scenarios":[`)
	for i := range r.Scenarios {
		sc := &r.Scenarios[i]
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n")
		bw.WriteString(`{"label":`)
		jstr(bw, sc.Label)
		bw.WriteString(`,"start":`)
		jnum(bw, sc.Start)
		bw.WriteString(`,"end":`)
		jnum(bw, sc.End)
		bw.WriteString(`,"offered":`)
		jint(bw, int64(sc.Offered))
		bw.WriteString(`,"within":`)
		jint(bw, int64(sc.Within))
		bw.WriteString(`,"availability":`)
		jnum(bw, sc.Availability)
		bw.WriteString(`,"p50":`)
		jnum(bw, sc.P50)
		bw.WriteString(`,"p99":`)
		jnum(bw, sc.P99)
		bw.WriteString(`,"windows":[`)
		for j, win := range sc.Windows {
			if j > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`{"start":`)
			jnum(bw, win.Start)
			bw.WriteString(`,"end":`)
			jnum(bw, win.End)
			bw.WriteString(`,"offered":`)
			jint(bw, int64(win.Offered))
			bw.WriteString(`,"within":`)
			jint(bw, int64(win.Within))
			bw.WriteString(`,"availability":`)
			jnum(bw, win.Availability)
			bw.WriteString(`}`)
		}
		bw.WriteString(`]}`)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

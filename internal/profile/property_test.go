package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"failstutter/internal/sim"
	"failstutter/internal/trace"
)

// randomWorkload drives a few traced stations with a random request
// pattern and returns the flushed tracer (and registry when sample is
// set).
func randomWorkload(seed uint64, sample bool) (*trace.Tracer, *trace.Registry) {
	rng := sim.NewRNG(seed)
	s := sim.New()
	tr := trace.NewTracer()
	var reg *trace.Registry
	if sample {
		reg = trace.NewRegistry()
		s.SetStationProbe(StationSampler(reg, "run-0"))
	}

	n := 2 + rng.Intn(3)
	stations := make([]*sim.Station, n)
	for i := range stations {
		stations[i] = sim.NewStation(s, fmt.Sprintf("st-%d", i), rng.Uniform(50, 200))
		stations[i].SetTracer(tr)
	}
	reqs := 5 + rng.Intn(25)
	for i := 0; i < reqs; i++ {
		st := stations[rng.Intn(n)]
		at := rng.Uniform(0, 2)
		size := rng.Uniform(1, 50)
		s.After(at, func() { st.SubmitFunc(size, nil) })
	}
	s.Run()
	tr.Flush(s.Now())
	return tr, reg
}

// TestCriticalPathProperty checks, across 1000 random seeds, the two
// defining bounds of the critical path: it can never exceed the
// makespan, and it can never undercut the busiest single component
// (whose busy time alone is a lower bound on the schedule).
func TestCriticalPathProperty(t *testing.T) {
	seeds := 1000
	if testing.Short() {
		seeds = 100
	}
	for seed := 0; seed < seeds; seed++ {
		tr, _ := randomWorkload(uint64(seed), false)
		r := Analyze(tr, nil)

		if r.CriticalLen > r.Makespan*(1+1e-9)+1e-9 {
			t.Fatalf("seed %d: critical path %v exceeds makespan %v", seed, r.CriticalLen, r.Makespan)
		}

		// Independent busy computation: union-sweep each track's spans.
		byTrack := map[trace.TrackID][][2]float64{}
		for _, sp := range tr.Spans() {
			if sp.Instant || sp.Open() {
				continue
			}
			byTrack[sp.Track] = append(byTrack[sp.Track], [2]float64{sp.Start, sp.End})
		}
		maxBusy := 0.0
		for _, ivals := range byTrack {
			sort.Slice(ivals, func(a, b int) bool { return ivals[a][0] < ivals[b][0] })
			covered, end := 0.0, math.Inf(-1)
			for _, iv := range ivals {
				if iv[0] > end {
					covered += iv[1] - iv[0]
					end = iv[1]
				} else if iv[1] > end {
					covered += iv[1] - end
					end = iv[1]
				}
			}
			if covered > maxBusy {
				maxBusy = covered
			}
		}
		if r.CriticalLen < maxBusy*(1-1e-9)-1e-9 {
			t.Fatalf("seed %d: critical path %v below max component busy %v", seed, r.CriticalLen, maxBusy)
		}
	}
}

// TestAnalysisDeterministic asserts every artifact is byte-identical
// across repeated simulate+analyze cycles of the same seed.
func TestAnalysisDeterministic(t *testing.T) {
	render := func() [3]string {
		tr, reg := randomWorkload(42, true)
		r := Analyze(tr, reg)
		var j, f, x strings.Builder
		if err := r.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteFolded(&f); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteText(&x, 10); err != nil {
			t.Fatal(err)
		}
		return [3]string{j.String(), f.String(), x.String()}
	}
	a, b := render(), render()
	for i, name := range []string{"profile JSON", "folded stacks", "text report"} {
		if a[i] != b[i] {
			t.Fatalf("%s not byte-identical across repeated runs", name)
		}
	}
}

// TestStationSamplerQueueStats runs a workload that definitely queues
// and checks the sampled series surface in the component profile.
func TestStationSamplerQueueStats(t *testing.T) {
	s := sim.New()
	tr := trace.NewTracer()
	reg := trace.NewRegistry()
	s.SetStationProbe(StationSampler(reg, "run-0"))
	st := sim.NewStation(s, "st-0", 100)
	st.SetTracer(tr)
	for i := 0; i < 5; i++ {
		st.SubmitFunc(100, nil) // 1s each, all submitted at t=0
	}
	s.Run()
	tr.Flush(s.Now())

	r := Analyze(tr, reg)
	var c *Component
	for i := range r.Components {
		if r.Components[i].Name == "st-0" {
			c = &r.Components[i]
		}
	}
	if c == nil || c.Queue == nil {
		t.Fatalf("st-0 has no queue stats: %+v", r.Components)
	}
	if c.Queue.MaxDepth != 5 {
		t.Fatalf("max depth %v, want 5 (all requests submitted at once)", c.Queue.MaxDepth)
	}
	if c.Queue.MeanDepth <= 1 || c.Queue.MeanDepth >= 5 {
		t.Fatalf("time-weighted mean depth %v, want within (1, 5)", c.Queue.MeanDepth)
	}
	if c.Queue.MaxBacklog < 400 {
		t.Fatalf("max backlog %v, want >= 400 work units", c.Queue.MaxBacklog)
	}
	if c.Utilization < 0.99 {
		t.Fatalf("utilization %v, want ~1 for a saturated station", c.Utilization)
	}
}

package profile

import (
	"sort"

	"failstutter/internal/sim"
	"failstutter/internal/trace"
)

// QueueStats summarizes the queue-depth and backlog series a
// StationSampler recorded for one component. Means are time-weighted
// over the sampled interval (the series are step functions: each sample
// holds until the next occupancy transition).
type QueueStats struct {
	Samples     int
	MaxDepth    float64
	MeanDepth   float64
	MaxBacklog  float64
	MeanBacklog float64
}

// Component is one track's profile: how busy it was, how long its
// service and queueing intervals ran, and how deep its queue got.
type Component struct {
	Name  string
	Spans int
	// Busy is the union coverage of the component's interval spans —
	// concurrent spans on one track (a queue interval under a service
	// interval) are not double counted.
	Busy        float64
	Utilization float64 // Busy over the whole trace window
	// Service holds the durations of the component's service-like spans
	// (spans named "service" when present, every interval span
	// otherwise); Wait holds "queue" span durations and is nil for
	// components that never queued.
	Service *trace.Histogram
	Wait    *trace.Histogram
	// Queue is non-nil when a StationSampler recorded occupancy series
	// for this component.
	Queue *QueueStats
}

// histOf builds a log-bucketed histogram over the given durations,
// choosing bounds from the data (trace.Histogram needs 0 < lo < hi up
// front). Returns nil when there is nothing positive to observe.
func histOf(durs []float64) *trace.Histogram {
	lo, hi := 0.0, 0.0
	for _, d := range durs {
		if d <= 0 {
			continue
		}
		if lo == 0 || d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi == 0 {
		return nil
	}
	if lo >= hi {
		hi = lo * (1 + 1e-9)
	}
	h := trace.NewHistogram(lo, hi, 40)
	for _, d := range durs {
		if d > 0 {
			h.Observe(d)
		}
	}
	return h
}

// buildComponents groups interval spans by track and folds in any
// sampled occupancy series from the registry. Components are returned
// sorted by name.
func buildComponents(t *tree, reg *trace.Registry) []Component {
	type acc struct {
		ivals   [][2]float64
		service []float64 // spans literally named "service"
		other   []float64 // everything that is neither service nor queue
		wait    []float64
		spans   int
	}
	byTrack := make(map[string]*acc)
	for i := range t.nodes {
		sp := t.nodes[i].span
		name := t.trackName(sp.Track)
		a := byTrack[name]
		if a == nil {
			a = &acc{}
			byTrack[name] = a
		}
		a.spans++
		a.ivals = append(a.ivals, [2]float64{sp.Start, sp.End})
		dur := sp.End - sp.Start
		switch sp.Name {
		case "service":
			a.service = append(a.service, dur)
		case "queue":
			a.wait = append(a.wait, dur)
		default:
			a.other = append(a.other, dur)
		}
	}

	window := t.hi - t.lo
	names := make([]string, 0, len(byTrack))
	for name := range byTrack {
		names = append(names, name)
	}
	sort.Strings(names)

	out := make([]Component, 0, len(names))
	for _, name := range names {
		a := byTrack[name]
		// A station track mixes queue+service spans: once real service
		// spans exist, the histogram measures service time alone. Tracks
		// without them (raid ops, DHT puts, striper jobs) profile every
		// non-queue interval as a service.
		svc := a.service
		if len(svc) == 0 {
			svc = a.other
		}
		c := Component{
			Name:    name,
			Spans:   a.spans,
			Busy:    unionCover(a.ivals),
			Service: histOf(svc),
			Wait:    histOf(a.wait),
		}
		if window > 0 {
			c.Utilization = c.Busy / window
		}
		out = append(out, c)
	}

	attachQueueStats(out, reg)
	return out
}

// attachQueueStats folds "queue-depth" and "backlog" series (one per
// run+component, as recorded by StationSampler) into the matching
// components, combining sub-runs by time-weighted average.
func attachQueueStats(comps []Component, reg *trace.Registry) {
	if reg == nil {
		return
	}
	ix := make(map[string]*Component, len(comps))
	for i := range comps {
		ix[comps[i].Name] = &comps[i]
	}
	type agg struct {
		wsum, wdur, vsum float64
		n                int
		max              float64
	}
	fold := func(name string) map[string]*agg {
		by := make(map[string]*agg)
		reg.VisitSeries(name, func(labels []trace.Label, s *trace.Series) {
			comp := ""
			for _, l := range labels {
				if l.Key == "component" {
					comp = l.Value
				}
			}
			if comp == "" || s.Len() == 0 {
				return
			}
			a := by[comp]
			if a == nil {
				a = &agg{}
				by[comp] = a
			}
			n := s.Len()
			a.n += n
			for i := 0; i < n; i++ {
				v := s.Values[i]
				a.vsum += v
				if v > a.max {
					a.max = v
				}
				if i+1 < n {
					a.wsum += v * (s.Times[i+1] - s.Times[i])
				}
			}
			a.wdur += s.Times[n-1] - s.Times[0]
		})
		return by
	}
	mean := func(a *agg) float64 {
		if a.wdur > 0 {
			return a.wsum / a.wdur
		}
		if a.n > 0 {
			return a.vsum / float64(a.n)
		}
		return 0
	}

	depth := fold("queue-depth")
	backlog := fold("backlog")
	for comp, a := range depth {
		c := ix[comp]
		if c == nil {
			continue
		}
		qs := &QueueStats{Samples: a.n, MaxDepth: a.max, MeanDepth: mean(a)}
		if b := backlog[comp]; b != nil {
			qs.MaxBacklog = b.max
			qs.MeanBacklog = mean(b)
		}
		c.Queue = qs
	}
}

// StationSampler returns a sim.StationProbe that records every station
// occupancy transition as two registry series — "queue-depth" (requests
// queued or in service) and "backlog" (work units outstanding, counting
// remaining service on the request in flight) — labeled by run and
// component. Attach it with Simulator.SetStationProbe before the run;
// when profiling is off the probe is nil and the hook costs one branch
// and zero allocations.
func StationSampler(reg *trace.Registry, run string) sim.StationProbe {
	type pair struct {
		depth, backlog *trace.Series
	}
	cache := make(map[*sim.Station]pair)
	return func(now sim.Time, st *sim.Station) {
		p, ok := cache[st]
		if !ok {
			labels := []trace.Label{trace.L("run", run), trace.L("component", st.Name())}
			p = pair{
				depth:   reg.Series("queue-depth", labels...),
				backlog: reg.Series("backlog", labels...),
			}
			cache[st] = p
		}
		p.depth.Add(now, float64(st.Occupancy()))
		p.backlog.Add(now, st.BacklogWork())
	}
}

package profile

import (
	"math"
	"strings"
	"testing"

	"failstutter/internal/trace"
)

const eps = 1e-9

// buildTrace records a three-level scenario with a known critical path:
//
//	track "job":    root span [0, 10]
//	track "disk-0": child [1, 4]
//	track "disk-1": child [2, 7]   <- ends later, owns [4,7] and [2,4]
//	track "disk-1": grandchild [3, 5] under the [2,7] child
//
// plus an unrelated root [12, 14] after an idle gap [10, 12].
func buildTrace(t *testing.T) *trace.Tracer {
	t.Helper()
	tr := trace.NewTracer()
	job := tr.Track("job")
	d0 := tr.Track("disk-0")
	d1 := tr.Track("disk-1")

	root := tr.Begin(job, "job:test", "striper", 0, 0)
	c0 := tr.Begin(d0, "write", "disk", root, 1)
	c1 := tr.Begin(d1, "write", "disk", root, 2)
	g := tr.Begin(d1, "service", "station", c1, 3)
	tr.End(g, 5)
	tr.End(c0, 4)
	tr.End(c1, 7)
	tr.End(root, 10)

	late := tr.Begin(job, "job:late", "striper", 0, 12)
	tr.End(late, 14)
	return tr
}

func TestCriticalPathAttribution(t *testing.T) {
	r := Analyze(buildTrace(t), nil)

	if got, want := r.Makespan, 14.0; math.Abs(got-want) > eps {
		t.Fatalf("makespan %v, want %v", got, want)
	}
	if math.Abs(r.Idle-2) > eps {
		t.Fatalf("idle %v, want 2 (the [10,12] gap)", r.Idle)
	}
	if math.Abs(r.CriticalLen-12) > eps {
		t.Fatalf("critical length %v, want 12", r.CriticalLen)
	}

	// Segments must tile the window exactly: contiguous, in order.
	prev := r.Start
	var sum float64
	for _, seg := range r.Segments {
		if math.Abs(seg.Start-prev) > eps {
			t.Fatalf("segment gap: previous ended %v, next starts %v", prev, seg.Start)
		}
		prev = seg.End
		sum += seg.Dur()
	}
	if math.Abs(prev-r.End) > eps || math.Abs(sum-r.Makespan) > eps {
		t.Fatalf("segments cover [%v..%v] sum %v, want window [%v..%v]", r.Start, prev, sum, r.Start, r.End)
	}

	// The backward sweep picks the latest-ending active span: disk-1's
	// child [2,7] owns [5,7] (after its grandchild) and [2,3]; the
	// grandchild owns [3,5]; disk-0 is fully shadowed except nothing —
	// its [1,4] interval is covered by disk-1's [2,7] walk only below
	// t=2, so disk-0 owns [1,2].
	want := map[string]float64{
		"job":    4 + 2, // [0,1]+[7,10] of the first job, [12,14] of the late job
		"disk-0": 1,     // [1,2]
		"disk-1": 3 + 2, // [2,3]+[5,7] child self, [3,5] grandchild
		"(idle)": 2,
	}
	got := map[string]float64{}
	for _, s := range r.Shares {
		got[s.Component] = s.Seconds
	}
	for comp, sec := range want {
		if math.Abs(got[comp]-sec) > eps {
			t.Fatalf("share[%s] = %v, want %v (all: %v)", comp, got[comp], sec, got)
		}
	}
}

func TestSelfTimesAndFoldedStacks(t *testing.T) {
	r := Analyze(buildTrace(t), nil)

	// Self time is duration minus child-union: the [2,7] disk-1 span has
	// a [3,5] child, so self = 5-2 = 3; the root [0,10] has children
	// covering [1,7], so self = 10-6 = 4.
	selfByFrame := map[string]float64{}
	for _, fs := range r.FrameStats {
		selfByFrame[fs.Frame] = fs.Self
	}
	want := map[string]float64{
		"job:job:test":   4,
		"job:job:late":   2,
		"disk-0:write":   3,
		"disk-1:write":   3,
		"disk-1:service": 2,
	}
	for frame, sec := range want {
		if math.Abs(selfByFrame[frame]-sec) > eps {
			t.Fatalf("self[%s] = %v, want %v", frame, selfByFrame[frame], sec)
		}
	}

	var sb strings.Builder
	if err := r.WriteFolded(&sb); err != nil {
		t.Fatal(err)
	}
	folded := sb.String()
	for _, line := range []string{
		"job:job:test 4000000000",
		"job:job:test;disk-1:write 3000000000",
		"job:job:test;disk-1:write;disk-1:service 2000000000",
		"job:job:test;disk-0:write 3000000000",
	} {
		if !strings.Contains(folded, line+"\n") {
			t.Fatalf("folded output missing %q:\n%s", line, folded)
		}
	}
	lines := strings.Split(strings.TrimSuffix(folded, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("folded output not sorted: %q then %q", lines[i-1], lines[i])
		}
	}
}

func TestComponentProfiles(t *testing.T) {
	r := Analyze(buildTrace(t), nil)
	byName := map[string]*Component{}
	for i := range r.Components {
		byName[r.Components[i].Name] = &r.Components[i]
	}
	d1 := byName["disk-1"]
	if d1 == nil {
		t.Fatal("no disk-1 component")
	}
	// disk-1 carries [2,7] and nested [3,5]: union 5s, not 7s.
	if math.Abs(d1.Busy-5) > eps {
		t.Fatalf("disk-1 busy %v, want 5 (union, not sum)", d1.Busy)
	}
	if math.Abs(d1.Utilization-5.0/14.0) > eps {
		t.Fatalf("disk-1 utilization %v, want 5/14", d1.Utilization)
	}
	// The station-cat "service" span wins the service histogram.
	if d1.Service == nil || d1.Service.Count() != 1 {
		t.Fatalf("disk-1 service histogram = %+v, want exactly the service span", d1.Service)
	}
	if math.Abs(d1.Service.Mean()-2) > eps {
		t.Fatalf("disk-1 service mean %v, want 2", d1.Service.Mean())
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	r := Analyze(trace.NewTracer(), nil)
	if r.Makespan != 0 || len(r.Segments) != 0 || len(r.Components) != 0 {
		t.Fatalf("empty trace produced non-empty report: %+v", r)
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&sb, 5); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteFolded(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestOpenSpansAndInstantsSkipped(t *testing.T) {
	tr := trace.NewTracer()
	tk := tr.Track("a")
	sp := tr.Begin(tk, "closed", "x", 0, 0)
	tr.End(sp, 2)
	tr.Begin(tk, "open", "x", 0, 1) // never ended
	tr.Instant(tk, "marker", "x", 1.5)
	r := Analyze(tr, nil)
	if math.Abs(r.Makespan-2) > eps {
		t.Fatalf("makespan %v, want 2 (open span and instant must not count)", r.Makespan)
	}
	if len(r.FrameStats) != 1 || r.FrameStats[0].Frame != "a:closed" {
		t.Fatalf("frames %+v, want only a:closed", r.FrameStats)
	}
}

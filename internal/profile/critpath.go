// Package profile is the virtual-time profiling plane: it consumes the
// span DAG recorded by trace.Tracer and the instruments in
// trace.Registry and answers "where did the makespan go?". It computes
// the critical path of an experiment (attributing every instant of the
// trace window to the component that bounded it), self/total time
// breakdowns exported as folded stacks, per-component utilization and
// queue profiles, windowed SLO availability after Gray & Reuter, and a
// perf-trajectory diff that turns the repo's own fail-stutter detectors
// on its own benchmarks.
//
// Everything is derived from virtual-time spans, so at a fixed seed all
// artifacts are byte-deterministic regardless of wall-clock scheduling.
package profile

import (
	"math"
	"sort"

	"failstutter/internal/trace"
)

// Segment is one contiguous stretch of the critical path. Span is 0 (and
// Track/Name empty) for idle stretches where nothing was recorded.
type Segment struct {
	Span  trace.SpanID
	Track string
	Name  string
	Start float64
	End   float64
}

// Dur returns the segment length.
func (s Segment) Dur() float64 { return s.End - s.Start }

// node is one interval span in the analysis tree.
type node struct {
	span     trace.Span
	children []int32 // indices into tree.nodes, in span-ID order
}

// tree indexes the closed interval spans of a trace for the backward
// critical-path sweep and the self-time fold.
type tree struct {
	nodes  []node
	roots  []int32
	tracks []string
	// byID maps span index (ID-1) to node index, -1 for instants and
	// open spans.
	byID   []int32
	lo, hi float64
}

// buildTree filters the trace down to closed interval spans and links
// children to parents. Spans whose parent is missing, open, or an
// instant are treated as roots, so a partially traced run still
// profiles. Open spans should not occur — the telemetry layer flushes
// before export — but are skipped defensively rather than poisoning the
// walk with NaNs.
func buildTree(spans []trace.Span, tracks []string) *tree {
	t := &tree{
		tracks: tracks,
		byID:   make([]int32, len(spans)),
		lo:     math.Inf(1),
		hi:     math.Inf(-1),
	}
	for i := range t.byID {
		t.byID[i] = -1
	}
	for i, sp := range spans {
		if sp.Instant || sp.Open() {
			continue
		}
		if sp.End < sp.Start {
			sp.End = sp.Start
		}
		t.byID[i] = int32(len(t.nodes))
		t.nodes = append(t.nodes, node{span: sp})
		if sp.Start < t.lo {
			t.lo = sp.Start
		}
		if sp.End > t.hi {
			t.hi = sp.End
		}
	}
	for i := range t.nodes {
		sp := t.nodes[i].span
		pi := int(sp.Parent) - 1
		if pi >= 0 && pi < len(t.byID) && t.byID[pi] >= 0 {
			p := t.byID[pi]
			t.nodes[p].children = append(t.nodes[p].children, int32(i))
		} else {
			t.roots = append(t.roots, int32(i))
		}
	}
	if len(t.nodes) == 0 {
		t.lo, t.hi = 0, 0
	}
	return t
}

func (t *tree) trackName(id trace.TrackID) string {
	if int(id) < len(t.tracks) {
		return t.tracks[id]
	}
	return "?"
}

// criticalPath performs the backward sweep: starting from the end of the
// trace window, at every instant the path is owned by the innermost span
// that ends last among those active. Children are visited in descending
// (End, ID) order and clip the remaining window as they are descended
// into, so each instant of [lo, hi] is attributed exactly once and the
// segment lengths telescope to the makespan. The walk is deterministic:
// ties on End break toward the higher span ID (the later-recorded span).
func (t *tree) criticalPath() []Segment {
	var segs []Segment
	emit := func(idx int32, start, end float64) {
		if end <= start {
			return
		}
		if idx < 0 {
			segs = append(segs, Segment{Start: start, End: end})
			return
		}
		sp := t.nodes[idx].span
		segs = append(segs, Segment{
			Span: sp.ID, Track: t.trackName(sp.Track), Name: sp.Name,
			Start: start, End: end,
		})
	}

	// sortDesc orders candidate children by (End desc, ID desc) — the
	// backward sweep always wants the latest-ending active span next.
	sortDesc := func(kids []int32) []int32 {
		out := make([]int32, len(kids))
		copy(out, kids)
		sort.Slice(out, func(a, b int) bool {
			na, nb := t.nodes[out[a]].span, t.nodes[out[b]].span
			if na.End != nb.End {
				return na.End > nb.End
			}
			return na.ID > nb.ID
		})
		return out
	}

	var walk func(owner int32, kids []int32, lo, hi float64)
	walk = func(owner int32, kids []int32, lo, hi float64) {
		cursor := hi
		for _, k := range sortDesc(kids) {
			sp := t.nodes[k].span
			ks := sp.Start
			if ks < lo {
				ks = lo
			}
			ke := sp.End
			if ke > cursor {
				ke = cursor
			}
			if ke <= ks {
				continue
			}
			// The stretch between this child's end and the cursor belongs
			// to the owner itself (or is idle at the top level).
			emit(owner, ke, cursor)
			walk(k, t.nodes[k].children, ks, ke)
			cursor = ks
			if cursor <= lo {
				break
			}
		}
		emit(owner, lo, cursor)
	}

	walk(-1, t.roots, t.lo, t.hi)

	// The sweep emits segments back-to-front; flip into timeline order.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return segs
}

// selfTimes returns, for each node, its duration minus the union of its
// children's overlap with it — the time the span itself was the deepest
// active frame.
func (t *tree) selfTimes() []float64 {
	self := make([]float64, len(t.nodes))
	var ivals [][2]float64
	for i := range t.nodes {
		sp := t.nodes[i].span
		dur := sp.End - sp.Start
		kids := t.nodes[i].children
		if len(kids) == 0 {
			self[i] = dur
			continue
		}
		ivals = ivals[:0]
		for _, k := range kids {
			c := t.nodes[k].span
			lo, hi := c.Start, c.End
			if lo < sp.Start {
				lo = sp.Start
			}
			if hi > sp.End {
				hi = sp.End
			}
			if hi > lo {
				ivals = append(ivals, [2]float64{lo, hi})
			}
		}
		sort.Slice(ivals, func(a, b int) bool {
			if ivals[a][0] != ivals[b][0] {
				return ivals[a][0] < ivals[b][0]
			}
			return ivals[a][1] < ivals[b][1]
		})
		covered, end := 0.0, math.Inf(-1)
		for _, iv := range ivals {
			if iv[0] > end {
				covered += iv[1] - iv[0]
				end = iv[1]
			} else if iv[1] > end {
				covered += iv[1] - end
				end = iv[1]
			}
		}
		s := dur - covered
		if s < 0 {
			s = 0
		}
		self[i] = s
	}
	return self
}

// unionCover returns the total time covered by the given intervals.
func unionCover(ivals [][2]float64) float64 {
	sort.Slice(ivals, func(a, b int) bool {
		if ivals[a][0] != ivals[b][0] {
			return ivals[a][0] < ivals[b][0]
		}
		return ivals[a][1] < ivals[b][1]
	})
	covered, end := 0.0, math.Inf(-1)
	for _, iv := range ivals {
		if iv[0] > end {
			covered += iv[1] - iv[0]
			end = iv[1]
		} else if iv[1] > end {
			covered += iv[1] - end
			end = iv[1]
		}
	}
	return covered
}

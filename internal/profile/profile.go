package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"failstutter/internal/trace"
)

// PathShare is one component's slice of the critical path.
type PathShare struct {
	Component string // track name, or "(idle)"
	Seconds   float64
	Fraction  float64
}

// Report is the full profiling analysis of one experiment trace.
type Report struct {
	// Meta stamps the run identity (seed, scale, parallelism) into the
	// artifact header; the zero value writes seed 0 and omits the
	// parallelism fields.
	Meta RunMeta
	// Start/End bound the trace window; Makespan is their difference.
	Start, End, Makespan float64
	// Segments is the critical path in timeline order: every instant of
	// the window attributed to exactly one span (or to idle).
	Segments []Segment
	// Shares aggregates the segments by component, sorted by seconds
	// descending; their seconds telescope to the makespan.
	Shares []PathShare
	// CriticalLen is the attributed (non-idle) path length; Idle is the
	// remainder of the window.
	CriticalLen float64
	Idle        float64
	// Frames is the folded-stack aggregation (sorted by stack);
	// FrameStats the per-frame self/total table (sorted by self desc).
	Frames     []Frame
	FrameStats []FrameStat
	// Components is the per-track utilization and queue profile, sorted
	// by name.
	Components []Component
}

// Analyze profiles a recorded trace: critical path, folded stacks, and
// per-component profiles. reg may be nil when no occupancy series were
// sampled. The result is deterministic for a deterministic trace.
func Analyze(tr *trace.Tracer, reg *trace.Registry) *Report {
	t := buildTree(tr.Spans(), tr.Tracks())
	r := &Report{Start: t.lo, End: t.hi, Makespan: t.hi - t.lo}
	r.Segments = t.criticalPath()

	shares := make(map[string]float64)
	for _, seg := range r.Segments {
		if seg.Span == 0 {
			r.Idle += seg.Dur()
			shares["(idle)"] += seg.Dur()
		} else {
			r.CriticalLen += seg.Dur()
			shares[seg.Track] += seg.Dur()
		}
	}
	for comp, sec := range shares {
		ps := PathShare{Component: comp, Seconds: sec}
		if r.Makespan > 0 {
			ps.Fraction = sec / r.Makespan
		}
		r.Shares = append(r.Shares, ps)
	}
	sort.Slice(r.Shares, func(a, b int) bool {
		if r.Shares[a].Seconds != r.Shares[b].Seconds {
			return r.Shares[a].Seconds > r.Shares[b].Seconds
		}
		return r.Shares[a].Component < r.Shares[b].Component
	})

	r.Frames, r.FrameStats = t.foldStacks(t.selfTimes())
	r.Components = buildComponents(t, reg)
	return r
}

// WriteText renders the critical-path attribution, the top-N hot frames
// by self time, and the component profile as an aligned text report.
func (r *Report) WriteText(w io.Writer, topN int) error {
	if topN <= 0 {
		topN = 15
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace window [%.6g, %.6g]s  makespan %.6gs  critical path %.6gs  idle %.6gs\n\n",
		r.Start, r.End, r.Makespan, r.CriticalLen, r.Idle)

	fmt.Fprintf(bw, "critical-path attribution by component:\n")
	fmt.Fprintf(bw, "  %-24s %12s %8s\n", "component", "seconds", "share")
	for _, s := range r.Shares {
		fmt.Fprintf(bw, "  %-24s %12.6g %7.2f%%\n", s.Component, s.Seconds, 100*s.Fraction)
	}

	fmt.Fprintf(bw, "\nhot frames by self time (top %d of %d):\n", topN, len(r.FrameStats))
	fmt.Fprintf(bw, "  %-36s %12s %12s %8s\n", "frame", "self", "total", "count")
	for i, fs := range r.FrameStats {
		if i >= topN {
			break
		}
		fmt.Fprintf(bw, "  %-36s %12.6g %12.6g %8d\n", fs.Frame, fs.Self, fs.Total, fs.Count)
	}

	fmt.Fprintf(bw, "\ncomponent profiles:\n")
	fmt.Fprintf(bw, "  %-24s %8s %9s %10s %10s %10s %10s\n",
		"component", "spans", "util", "svc-mean", "svc-p99", "q-mean", "q-max")
	for _, c := range r.Components {
		svcMean, svcP99 := "-", "-"
		if c.Service != nil {
			svcMean = fmt.Sprintf("%.4g", c.Service.Mean())
			svcP99 = fmt.Sprintf("%.4g", c.Service.Quantile(0.99))
		}
		qMean, qMax := "-", "-"
		if c.Queue != nil {
			qMean = fmt.Sprintf("%.3g", c.Queue.MeanDepth)
			qMax = fmt.Sprintf("%.3g", c.Queue.MaxDepth)
		}
		fmt.Fprintf(bw, "  %-24s %8d %8.2f%% %10s %10s %10s %10s\n",
			c.Name, c.Spans, 100*c.Utilization, svcMean, svcP99, qMean, qMax)
	}
	return bw.Flush()
}

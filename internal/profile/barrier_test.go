package profile

import (
	"strings"
	"testing"
)

func barrierFixture() *BarrierReport {
	return &BarrierReport{
		Experiment: "E99",
		Runs: []BarrierRun{
			{
				Run: "balanced", Shards: 4, Windows: 10, Fired: 400, Delivered: 100,
				SoloWindows: 1, MaxWindowFired: 80,
				PerShardFired: []uint64{100, 100, 100, 100},
				WindowNanos:   900, BarrierNanos: 100,
			},
			{
				Run: "skewed", Shards: 2, Windows: 5, Fired: 100, Delivered: 0,
				SoloWindows: 5, MaxWindowFired: 40,
				PerShardFired: []uint64{90, 10},
			},
		},
	}
}

func TestBarrierRunDerivedMetrics(t *testing.T) {
	r := barrierFixture()
	b := &r.Runs[0]
	if got := b.EventsPerWindow(); got != 40 {
		t.Errorf("events per window %v, want 40", got)
	}
	if got := b.CrossShardFrac(); got != 0.25 {
		t.Errorf("cross-shard fraction %v, want 0.25", got)
	}
	if got := b.Imbalance(); got != 1 {
		t.Errorf("balanced imbalance %v, want 1", got)
	}
	if got := b.BarrierFrac(); got != 0.1 {
		t.Errorf("barrier fraction %v, want 0.1", got)
	}
	s := &r.Runs[1]
	if got := s.Imbalance(); got != 1.8 {
		t.Errorf("skewed imbalance %v, want 1.8 (90 over mean 50)", got)
	}
	if got := s.BarrierFrac(); got != 0 {
		t.Errorf("untimed run barrier fraction %v, want 0", got)
	}
	var zero BarrierRun
	if zero.EventsPerWindow() != 0 || zero.CrossShardFrac() != 0 || zero.Imbalance() != 0 {
		t.Error("zero-value run must report zero derived metrics, not NaN")
	}
}

// TestBarrierReportJSONDeterministic checks the artifact is stable
// across writes and excludes the wall-clock nanosecond fields — the one
// nondeterministic part of the profile.
func TestBarrierReportJSONDeterministic(t *testing.T) {
	r := barrierFixture()
	var s1, s2 strings.Builder
	if err := r.WriteJSON(&s1); err != nil {
		t.Fatal(err)
	}
	jittered := barrierFixture()
	jittered.Runs[0].WindowNanos = 123456
	jittered.Runs[0].BarrierNanos = 654321
	if err := jittered.WriteJSON(&s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatalf("wall-clock nanos leaked into the deterministic artifact:\n%s\nvs\n%s", s1.String(), s2.String())
	}
	if !strings.Contains(s1.String(), `"schema":"fstutter-barrier/1"`) {
		t.Fatalf("schema tag missing:\n%s", s1.String())
	}
	if !strings.Contains(s1.String(), `"per_shard_fired":[100,100,100,100]`) {
		t.Fatalf("per-shard counts missing:\n%s", s1.String())
	}
}

func TestBarrierReportText(t *testing.T) {
	r := barrierFixture()
	var s strings.Builder
	if err := r.WriteText(&s); err != nil {
		t.Fatal(err)
	}
	out := s.String()
	for _, want := range []string{"barrier profile: E99", "balanced", "skewed", "10.0%", "25.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

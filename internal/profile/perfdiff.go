package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"failstutter/internal/detect"
	"failstutter/internal/spec"
	"failstutter/internal/trace"
)

// PerfDiffConfig parameterizes the perf-trajectory gate.
type PerfDiffConfig struct {
	// Threshold is the window-detector fraction: the diff flags a
	// benchmark whose new median throughput (ops/s) drops below
	// Threshold x the old median. Default 0.8 — a 25% slowdown flags, a
	// 2x slowdown flags loudly, run-to-run noise does not.
	Threshold float64
	// DeclineFrac feeds the Theil-Sen trend detector over the
	// concatenated sample sequence; a sustained decline emits a warning
	// even when the medians still pass. Default 0.1.
	DeclineFrac float64
	// Audit, when non-nil, records every detector verdict transition —
	// the same audit trail the simulated detectors write.
	Audit *trace.AuditLog
}

// Delta statuses.
const (
	DiffOK         = "ok"
	DiffRegression = "regression"
	DiffImproved   = "improved"
	DiffDeclining  = "declining"
	DiffMissing    = "missing"
	// DiffAdded marks a benchmark present only in the new artifact: an
	// informational line, never a regression — a fresh benchmark has no
	// baseline to regress against until the artifact is regenerated.
	DiffAdded = "added"
)

// BenchDelta is one benchmark's verdict.
type BenchDelta struct {
	Name      string
	Status    string
	OldMedian float64 // ns/op
	NewMedian float64 // ns/op
	// Ratio is new throughput over old throughput (old median ns over
	// new median ns): 1.0 unchanged, 0.5 means twice as slow.
	Ratio   float64
	Verdict string // the detector's verdict string
}

// PerfDiffReport is the full diff.
type PerfDiffReport struct {
	Threshold   float64
	Deltas      []BenchDelta
	Regressions int
	Improved    int
	Declining   int
	Added       int
	// Warnings flags artifacts whose parallelism metadata disagrees:
	// comparing wall-clock medians taken at different shard counts or on
	// different machines classifies the hardware delta, not the code's.
	// Warnings never fail the gate.
	Warnings []string
}

// Failed reports whether any benchmark regressed (including benchmarks
// that vanished from the new artifact).
func (r *PerfDiffReport) Failed() bool { return r.Regressions > 0 }

// PerfDiff compares two benchmark artifacts using the repo's own
// fail-stutter detection plane: per benchmark, the old samples gauge a
// WindowDetector baseline (install-time gauging), the new samples stream
// through its recent window, and the final verdict classifies the
// benchmark exactly as the simulator classifies a stuttering disk. A
// TrendDetector over the concatenated sequence additionally warns on
// sustained decline that has not yet crossed the threshold.
func PerfDiff(oldA, newA *BenchArtifact, cfg PerfDiffConfig) *PerfDiffReport {
	if cfg.Threshold <= 0 || cfg.Threshold >= 1 {
		cfg.Threshold = 0.8
	}
	if cfg.DeclineFrac <= 0 {
		cfg.DeclineFrac = 0.1
	}
	rep := &PerfDiffReport{Threshold: cfg.Threshold}

	// Parallelism metadata mismatch: warn, never fail. Zero on either side
	// means the artifact predates the field — unknown, not different.
	warnMeta := func(field string, o, n int) {
		if o > 0 && n > 0 && o != n {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf(
				"%s differs (old %d, new %d): wall-clock medians compare the run configurations, not just the code",
				field, o, n))
		}
	}
	warnMeta("shards", oldA.Shards, newA.Shards)
	warnMeta("GOMAXPROCS", oldA.GoMaxProcs, newA.GoMaxProcs)
	warnMeta("cpu count", oldA.NumCPU, newA.NumCPU)
	warnMeta("sweep workers", oldA.SweepWorkers, newA.SweepWorkers)

	newBy := make(map[string]Bench, len(newA.Benchmarks))
	for _, b := range newA.Benchmarks {
		newBy[b.Name] = b
	}
	oldBy := make(map[string]Bench, len(oldA.Benchmarks))
	names := make([]string, 0, len(oldA.Benchmarks))
	for _, b := range oldA.Benchmarks {
		oldBy[b.Name] = b
		names = append(names, b.Name)
	}
	for _, b := range newA.Benchmarks {
		if _, ok := oldBy[b.Name]; !ok {
			names = append(names, b.Name)
		}
	}
	sort.Strings(names)

	for _, name := range names {
		ob, hasOld := oldBy[name]
		nb, hasNew := newBy[name]
		switch {
		case !hasOld:
			rep.Added++
			rep.Deltas = append(rep.Deltas, BenchDelta{
				Name: name, Status: DiffAdded, NewMedian: nb.Median(),
			})
			continue
		case !hasNew || len(nb.Samples) == 0:
			rep.Regressions++
			rep.Deltas = append(rep.Deltas, BenchDelta{
				Name: name, Status: DiffMissing, OldMedian: ob.Median(),
				Verdict: spec.AbsoluteFaulty.String(),
			})
			continue
		}
		d := diffOne(name, ob, nb, cfg)
		switch d.Status {
		case DiffRegression:
			rep.Regressions++
		case DiffImproved:
			rep.Improved++
		case DiffDeclining:
			rep.Declining++
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	return rep
}

// rateOf converts ns/op to throughput (ops per second); non-positive or
// absurd samples count as zero progress, which the detector promotes.
func rateOf(ns float64) float64 {
	if ns <= 0 {
		return 0
	}
	return 1e9 / ns
}

// sampleRate converts one sample to a throughput the detectors can
// compare: units ending in "/s" (events/s, ops/s) are already rates —
// bigger is better — and pass through; anything else is treated as ns/op
// and inverted.
func sampleRate(unit string, s float64) float64 {
	if strings.HasSuffix(unit, "/s") {
		if s <= 0 {
			return 0
		}
		return s
	}
	return rateOf(s)
}

func diffOne(name string, ob, nb Bench, cfg PerfDiffConfig) BenchDelta {
	d := BenchDelta{Name: name, Status: DiffOK, OldMedian: ob.Median(), NewMedian: nb.Median()}
	if strings.HasSuffix(nb.Unit, "/s") {
		if d.OldMedian > 0 {
			d.Ratio = d.NewMedian / d.OldMedian
		}
	} else if d.NewMedian > 0 {
		d.Ratio = d.OldMedian / d.NewMedian
	}

	win := detect.NewWindowDetector(detect.WindowConfig{
		BaselineSamples:  len(ob.Samples),
		RecentSamples:    len(nb.Samples),
		Threshold:        cfg.Threshold,
		PromotionTimeout: float64(len(nb.Samples)) + 1,
	})
	var det detect.Detector = win
	if cfg.Audit != nil {
		det = detect.NewAudited(win, cfg.Audit, name)
	}
	t := 0.0
	for _, s := range ob.Samples {
		det.Observe(t, sampleRate(ob.Unit, s))
		t++
	}
	for _, s := range nb.Samples {
		det.Observe(t, sampleRate(nb.Unit, s))
		t++
	}
	v := det.Verdict(t - 1)
	d.Verdict = v.String()
	if v != spec.Nominal {
		d.Status = DiffRegression
		return d
	}
	if d.Ratio > 1/cfg.Threshold {
		d.Status = DiffImproved
		return d
	}

	// Medians pass: check for a sustained decline across the whole
	// old+new sequence — the wearing-out early indicator.
	total := len(ob.Samples) + len(nb.Samples)
	if total >= 4 {
		w := total
		if w > 32 {
			w = 32
		}
		tr := detect.NewTrendDetector(detect.TrendConfig{
			WindowSamples: w, DeclineFrac: cfg.DeclineFrac,
		})
		t = 0
		for _, s := range ob.Samples {
			tr.Observe(t, sampleRate(ob.Unit, s))
			t++
		}
		for _, s := range nb.Samples {
			tr.Observe(t, sampleRate(nb.Unit, s))
			t++
		}
		if tr.Verdict(t-1) != spec.Nominal {
			d.Status = DiffDeclining
		}
	}
	return d
}

// WriteText renders the diff as an aligned table plus a one-line
// summary.
func (r *PerfDiffReport) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "perfdiff (threshold %.2f: flag when new throughput < %.0f%% of old)\n",
		r.Threshold, 100*r.Threshold)
	for _, warn := range r.Warnings {
		fmt.Fprintf(bw, "  warning: %s\n", warn)
	}
	fmt.Fprintf(bw, "  %-44s %12s %12s %7s  %s\n", "benchmark", "old", "new", "ratio", "status")
	for _, d := range r.Deltas {
		ratio := "-"
		if d.Ratio > 0 {
			ratio = fmt.Sprintf("%.3f", d.Ratio)
		}
		fmt.Fprintf(bw, "  %-44s %12.4g %12.4g %7s  %s\n",
			d.Name, d.OldMedian, d.NewMedian, ratio, d.Status)
	}
	fmt.Fprintf(bw, "summary: %d benchmarks, %d regressed, %d improved, %d declining, %d added\n",
		len(r.Deltas), r.Regressions, r.Improved, r.Declining, r.Added)
	return bw.Flush()
}

package profile

import (
	"strings"
	"testing"

	"failstutter/internal/trace"
)

func art(benches ...Bench) *BenchArtifact {
	return &BenchArtifact{Schema: BenchSchema, Seed: 42, Quick: true, Benchmarks: benches}
}

func samples(base float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		// Small deterministic jitter so medians are realistic, ±2%.
		out[i] = base * (1 + 0.02*float64(i%3-1))
	}
	return out
}

func TestPerfDiffIdenticalInputsPass(t *testing.T) {
	a := art(
		Bench{Name: "BenchmarkKernel", Unit: "ns/op", Samples: samples(1000, 7)},
		Bench{Name: "BenchmarkStation", Unit: "ns/op", Samples: samples(250, 7)},
	)
	rep := PerfDiff(a, a, PerfDiffConfig{})
	if rep.Failed() {
		t.Fatalf("identical artifacts flagged: %+v", rep.Deltas)
	}
	for _, d := range rep.Deltas {
		if d.Status != DiffOK {
			t.Fatalf("benchmark %s status %s on identical inputs", d.Name, d.Status)
		}
	}
}

func TestPerfDiffFlagsTwoXSlower(t *testing.T) {
	old := art(Bench{Name: "BenchmarkKernel", Unit: "ns/op", Samples: samples(1000, 7)})
	slow := art(Bench{Name: "BenchmarkKernel", Unit: "ns/op", Samples: samples(2000, 7)})
	rep := PerfDiff(old, slow, PerfDiffConfig{})
	if !rep.Failed() || rep.Regressions != 1 {
		t.Fatalf("2x-slower fixture not flagged: %+v", rep)
	}
	d := rep.Deltas[0]
	if d.Status != DiffRegression {
		t.Fatalf("status %s, want regression", d.Status)
	}
	if d.Ratio > 0.55 || d.Ratio < 0.45 {
		t.Fatalf("throughput ratio %v, want ~0.5", d.Ratio)
	}
	if d.Verdict != "perf-faulty" {
		t.Fatalf("verdict %q, want perf-faulty", d.Verdict)
	}
}

func TestPerfDiffMissingAndNew(t *testing.T) {
	old := art(
		Bench{Name: "BenchmarkGone", Unit: "ns/op", Samples: samples(100, 5)},
		Bench{Name: "BenchmarkKept", Unit: "ns/op", Samples: samples(100, 5)},
	)
	now := art(
		Bench{Name: "BenchmarkKept", Unit: "ns/op", Samples: samples(100, 5)},
		Bench{Name: "BenchmarkAdded", Unit: "ns/op", Samples: samples(100, 5)},
	)
	rep := PerfDiff(old, now, PerfDiffConfig{})
	got := map[string]string{}
	for _, d := range rep.Deltas {
		got[d.Name] = d.Status
	}
	if got["BenchmarkGone"] != DiffMissing {
		t.Fatalf("vanished benchmark status %q, want missing", got["BenchmarkGone"])
	}
	if got["BenchmarkAdded"] != DiffAdded || got["BenchmarkKept"] != DiffOK {
		t.Fatalf("statuses %v", got)
	}
	if !rep.Failed() {
		t.Fatal("a vanished benchmark must fail the gate")
	}
}

func TestPerfDiffImprovedAndDeclining(t *testing.T) {
	old := art(Bench{Name: "BenchmarkFast", Unit: "ns/op", Samples: samples(1000, 7)})
	fast := art(Bench{Name: "BenchmarkFast", Unit: "ns/op", Samples: samples(500, 7)})
	rep := PerfDiff(old, fast, PerfDiffConfig{})
	if rep.Failed() || rep.Improved != 1 {
		t.Fatalf("2x-faster not reported improved: %+v", rep)
	}

	// A steady slide that stays above the 0.8 window threshold at the
	// median must still trip the trend warning.
	decl := make([]float64, 8)
	for i := range decl {
		decl[i] = 1000 * (1 + 0.025*float64(i)) // 1000 -> 1175 ns/op
	}
	oldD := art(Bench{Name: "BenchmarkDrift", Unit: "ns/op", Samples: decl[:4]})
	newD := art(Bench{Name: "BenchmarkDrift", Unit: "ns/op", Samples: decl[4:]})
	repD := PerfDiff(oldD, newD, PerfDiffConfig{})
	if repD.Failed() {
		t.Fatalf("drift inside threshold flagged as regression: %+v", repD.Deltas)
	}
	if repD.Declining != 1 {
		t.Fatalf("sustained decline not warned: %+v", repD.Deltas)
	}
}

func TestPerfDiffAuditTrail(t *testing.T) {
	log := trace.NewAuditLog()
	old := art(Bench{Name: "BenchmarkKernel", Unit: "ns/op", Samples: samples(1000, 7)})
	slow := art(Bench{Name: "BenchmarkKernel", Unit: "ns/op", Samples: samples(2000, 7)})
	PerfDiff(old, slow, PerfDiffConfig{Audit: log})
	saw := false
	for _, r := range log.Records() {
		if r.Component == "BenchmarkKernel" && strings.Contains(r.To, "perf") {
			saw = true
		}
	}
	if !saw {
		t.Fatalf("no audited verdict transition for the regressed benchmark (%d records)", log.Len())
	}
}

func TestBenchArtifactRoundTripCanonical(t *testing.T) {
	a := art(
		Bench{Name: "BenchmarkB", Unit: "ns/op", Samples: []float64{2.5, 3.125}},
		Bench{Name: "BenchmarkA", Unit: "ns/op", Samples: []float64{0.1}},
	)
	var s1 strings.Builder
	if err := a.WriteJSON(&s1); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBench(strings.NewReader(s1.String()))
	if err != nil {
		t.Fatal(err)
	}
	var s2 strings.Builder
	if err := back.WriteJSON(&s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatalf("bench artifact round trip not byte-identical:\n%s\nvs\n%s", s1.String(), s2.String())
	}
	// Canonical order: sorted by name regardless of input order.
	if strings.Index(s1.String(), "BenchmarkA") > strings.Index(s1.String(), "BenchmarkB") {
		t.Fatal("canonical artifact not sorted by benchmark name")
	}
	if _, err := ReadBench(strings.NewReader(`{"schema":"bogus/9"}`)); err == nil {
		t.Fatal("bogus schema accepted")
	}
}

// TestPerfDiffAddedInformational pins the defined behaviour for
// benchmarks present only in the new artifact: an informational "added"
// line and a counter, never a gate failure — the state every fresh
// benchmark passes through before the baseline is regenerated.
func TestPerfDiffAddedInformational(t *testing.T) {
	old := art(Bench{Name: "BenchmarkKept", Unit: "ns/op", Samples: samples(100, 5)})
	now := art(
		Bench{Name: "BenchmarkKept", Unit: "ns/op", Samples: samples(100, 5)},
		Bench{Name: "BenchmarkFresh", Unit: "ns/op", Samples: samples(777, 5)},
	)
	rep := PerfDiff(old, now, PerfDiffConfig{})
	if rep.Failed() {
		t.Fatalf("an added benchmark must not fail the gate: %+v", rep.Deltas)
	}
	if rep.Added != 1 {
		t.Fatalf("Added = %d, want 1", rep.Added)
	}
	var fresh *BenchDelta
	for i := range rep.Deltas {
		if rep.Deltas[i].Name == "BenchmarkFresh" {
			fresh = &rep.Deltas[i]
		}
	}
	if fresh == nil || fresh.Status != DiffAdded {
		t.Fatalf("added benchmark delta %+v, want status %q", fresh, DiffAdded)
	}
	if fresh.NewMedian != 777 {
		t.Fatalf("added benchmark median %v, want its new median 777", fresh.NewMedian)
	}
	var txt strings.Builder
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "added") {
		t.Fatalf("report text missing the added line:\n%s", txt.String())
	}
}

// TestPerfDiffRateUnits covers benchmarks whose unit is already a rate
// (events/s): samples pass straight to the detectors and the ratio is
// new-over-old, so halved throughput regresses and doubled improves —
// the mirror of the ns/op direction.
func TestPerfDiffRateUnits(t *testing.T) {
	old := art(Bench{Name: "fleet/events", Unit: "events/s", Samples: samples(50e6, 5)})
	slow := art(Bench{Name: "fleet/events", Unit: "events/s", Samples: samples(20e6, 5)})
	rep := PerfDiff(old, slow, PerfDiffConfig{})
	if !rep.Failed() || rep.Deltas[0].Status != DiffRegression {
		t.Fatalf("halved events/s not flagged: %+v", rep.Deltas)
	}
	if r := rep.Deltas[0].Ratio; r < 0.35 || r > 0.45 {
		t.Fatalf("rate-unit ratio %v, want ~0.4 (new/old)", r)
	}
	fast := art(Bench{Name: "fleet/events", Unit: "events/s", Samples: samples(110e6, 5)})
	rep = PerfDiff(old, fast, PerfDiffConfig{})
	if rep.Failed() || rep.Improved != 1 {
		t.Fatalf("doubled events/s not improved: %+v", rep.Deltas)
	}
}

// TestPerfDiffParallelismWarnings pins the metadata warning contract:
// both sides non-zero and different warns (and never fails the gate);
// a zero on either side — an artifact predating the fields — is
// unknown, not different, and stays silent.
func TestPerfDiffParallelismWarnings(t *testing.T) {
	bench := Bench{Name: "BenchmarkKernel", Unit: "ns/op", Samples: samples(1000, 5)}
	withMeta := func(shards, procs, cpus int) *BenchArtifact {
		a := art(bench)
		a.Shards, a.GoMaxProcs, a.NumCPU = shards, procs, cpus
		return a
	}

	rep := PerfDiff(withMeta(1, 1, 1), withMeta(8, 16, 16), PerfDiffConfig{})
	if len(rep.Warnings) != 3 {
		t.Fatalf("want 3 metadata warnings, got %d: %v", len(rep.Warnings), rep.Warnings)
	}
	if rep.Failed() {
		t.Fatal("metadata mismatch must warn, never fail the gate")
	}
	var text strings.Builder
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "warning: shards differs (old 1, new 8)") {
		t.Fatalf("warning missing from text report:\n%s", text.String())
	}

	for _, tc := range []struct {
		name     string
		old, new *BenchArtifact
	}{
		{"equal", withMeta(4, 4, 4), withMeta(4, 4, 4)},
		{"old-unknown", withMeta(0, 0, 0), withMeta(8, 16, 16)},
		{"new-unknown", withMeta(8, 16, 16), withMeta(0, 0, 0)},
	} {
		if rep := PerfDiff(tc.old, tc.new, PerfDiffConfig{}); len(rep.Warnings) != 0 {
			t.Errorf("%s: unexpected warnings %v", tc.name, rep.Warnings)
		}
	}
}

// TestBenchArtifactParallelismRoundTrip checks the metadata fields
// survive the canonical write/read cycle byte-identically.
func TestBenchArtifactParallelismRoundTrip(t *testing.T) {
	a := art(Bench{Name: "BenchmarkA", Unit: "ns/op", Samples: []float64{1}})
	a.Shards, a.GoMaxProcs, a.NumCPU = 8, 16, 32
	var s1 strings.Builder
	if err := a.WriteJSON(&s1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s1.String(), `"shards":8,"gomaxprocs":16,"numcpu":32`) {
		t.Fatalf("metadata missing from canonical artifact:\n%s", s1.String())
	}
	back, err := ReadBench(strings.NewReader(s1.String()))
	if err != nil {
		t.Fatal(err)
	}
	var s2 strings.Builder
	if err := back.WriteJSON(&s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatalf("parallelism metadata round trip not byte-identical:\n%s\nvs\n%s", s1.String(), s2.String())
	}
}

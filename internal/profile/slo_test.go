package profile

import (
	"math"
	"strings"
	"testing"

	"failstutter/internal/trace"
)

// sloTrace lays out two scenarios separated by the telemetry layer's 1s
// rebase gap: scenario 1 has 4 fast raid ops (0.1s), scenario 2 has 2
// fast and 2 slow (1.0s) ops.
func sloTrace() *trace.Tracer {
	tr := trace.NewTracer()
	raid := tr.Track("raid-10")
	job := tr.Track("jobs")

	j1 := tr.Begin(job, "job:steady", "striper", 0, 0)
	for i := 0; i < 4; i++ {
		at := float64(i) * 0.2
		sp := tr.Begin(raid, "mirrored-write", "raid", 0, at)
		tr.End(sp, at+0.1)
	}
	tr.End(j1, 0.8)

	base := 2.0 // 0.8 end + 1.2s gap
	j2 := tr.Begin(job, "job:stutter", "striper", 0, base)
	for i := 0; i < 4; i++ {
		at := base + float64(i)*0.3
		sp := tr.Begin(raid, "mirrored-write", "raid", 0, at)
		lat := 0.1
		if i >= 2 {
			lat = 1.0
		}
		tr.End(sp, at+lat)
	}
	tr.End(j2, base+1.9)
	return tr
}

func TestSLOScenarioGroupingAndAvailability(t *testing.T) {
	rep := AnalyzeSLO(sloTrace(), SLOConfig{Threshold: 0.5, Windows: 4})
	if rep.Category != "raid" {
		t.Fatalf("category %q, want raid", rep.Category)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("got %d scenarios, want 2: %+v", len(rep.Scenarios), rep.Scenarios)
	}
	s1, s2 := rep.Scenarios[0], rep.Scenarios[1]
	if s1.Offered != 4 || s1.Within != 4 || s1.Availability != 1 {
		t.Fatalf("scenario 1 = %+v, want fully available", s1)
	}
	if s2.Offered != 4 || s2.Within != 2 || math.Abs(s2.Availability-0.5) > eps {
		t.Fatalf("scenario 2 = %+v, want availability 0.5", s2)
	}
	if !strings.Contains(s1.Label, "steady") || !strings.Contains(s2.Label, "stutter") {
		t.Fatalf("labels %q / %q missing job names", s1.Label, s2.Label)
	}
	if rep.Offered != 8 || rep.Within != 6 || math.Abs(rep.Availability-0.75) > eps {
		t.Fatalf("overall %d/%d=%v, want 6/8", rep.Within, rep.Offered, rep.Availability)
	}

	// Windowed series: scenario 2's early windows are available, its
	// late windows are not.
	var sawGood, sawBad bool
	for _, w := range s2.Windows {
		if w.Offered == 0 {
			continue
		}
		if w.Availability == 1 {
			sawGood = true
		}
		if w.Availability == 0 {
			sawBad = true
		}
	}
	if !sawGood || !sawBad {
		t.Fatalf("scenario 2 windows lack the good->bad transition: %+v", s2.Windows)
	}
}

func TestSLOAutoThreshold(t *testing.T) {
	rep := AnalyzeSLO(sloTrace(), SLOConfig{})
	if !rep.Auto {
		t.Fatal("auto threshold not marked")
	}
	// Median latency is 0.1s (6 of 8 requests), so auto = 0.5s.
	if math.Abs(rep.Threshold-0.5) > eps {
		t.Fatalf("auto threshold %v, want 0.5", rep.Threshold)
	}
}

func TestSLOEmptyTrace(t *testing.T) {
	rep := AnalyzeSLO(trace.NewTracer(), SLOConfig{})
	if rep.Offered != 0 || len(rep.Scenarios) != 0 {
		t.Fatalf("empty trace produced scenarios: %+v", rep)
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestSLOJSONDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := AnalyzeSLO(sloTrace(), SLOConfig{Threshold: 0.5}).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := AnalyzeSLO(sloTrace(), SLOConfig{Threshold: 0.5}).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("SLO JSON not byte-identical across repeated analyses")
	}
	if !strings.Contains(a.String(), `"schema":"fstutter-slo/1"`) {
		t.Fatalf("missing schema tag:\n%s", a.String())
	}
}

package profile

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// Frame is one aggregated stack in the folded flame output: Stack joins
// the ancestry chain root-first with ';', each element "track:name".
// Self is the summed self time (seconds) of every span with this exact
// ancestry; Count is how many spans contributed.
type Frame struct {
	Stack string
	Self  float64
	Count int
}

// FrameStat aggregates all spans sharing a (track, name) identity
// regardless of ancestry — the rows of the top-N table.
type FrameStat struct {
	Frame string // "track:name"
	Self  float64
	Total float64
	Count int
}

// frameLabel renders one span as a stack frame.
func (t *tree) frameLabel(idx int32) string {
	sp := t.nodes[idx].span
	return t.trackName(sp.Track) + ":" + sp.Name
}

// foldStacks aggregates self time by full ancestry chain and by frame
// identity. Stacks are memoized per node, so the chain walk is linear in
// the span count.
func (t *tree) foldStacks(self []float64) ([]Frame, []FrameStat) {
	stacks := make([]string, len(t.nodes))
	var stackOf func(idx int32) string
	stackOf = func(idx int32) string {
		if stacks[idx] != "" {
			return stacks[idx]
		}
		sp := t.nodes[idx].span
		label := t.frameLabel(idx)
		pi := int(sp.Parent) - 1
		if pi >= 0 && pi < len(t.byID) && t.byID[pi] >= 0 {
			label = stackOf(t.byID[pi]) + ";" + label
		}
		stacks[idx] = label
		return label
	}

	byStack := make(map[string]*Frame)
	byFrame := make(map[string]*FrameStat)
	for i := range t.nodes {
		stack := stackOf(int32(i))
		f := byStack[stack]
		if f == nil {
			f = &Frame{Stack: stack}
			byStack[stack] = f
		}
		f.Self += self[i]
		f.Count++

		label := t.frameLabel(int32(i))
		fs := byFrame[label]
		if fs == nil {
			fs = &FrameStat{Frame: label}
			byFrame[label] = fs
		}
		sp := t.nodes[i].span
		fs.Self += self[i]
		fs.Total += sp.End - sp.Start
		fs.Count++
	}

	frames := make([]Frame, 0, len(byStack))
	for _, f := range byStack {
		frames = append(frames, *f)
	}
	sort.Slice(frames, func(a, b int) bool { return frames[a].Stack < frames[b].Stack })

	stats := make([]FrameStat, 0, len(byFrame))
	for _, fs := range byFrame {
		stats = append(stats, *fs)
	}
	sort.Slice(stats, func(a, b int) bool {
		if stats[a].Self != stats[b].Self {
			return stats[a].Self > stats[b].Self
		}
		return stats[a].Frame < stats[b].Frame
	})
	return frames, stats
}

// vtNanos converts virtual seconds to integer virtual nanoseconds — the
// sample unit of the folded output. Rounding to integers keeps the
// artifact byte-identical across platforms and friendly to flame-graph
// tooling that expects integral counts.
func vtNanos(sec float64) int64 {
	if sec <= 0 {
		return 0
	}
	return int64(sec*1e9 + 0.5)
}

// WriteFolded emits the Brendan Gregg collapsed-stack format, one
// "stack count" line per aggregated ancestry, counts in virtual
// nanoseconds, sorted by stack. speedscope, inferno and flamegraph.pl
// all ingest this directly.
func (r *Report) WriteFolded(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.Frames {
		n := vtNanos(f.Self)
		if n == 0 {
			continue
		}
		bw.WriteString(f.Stack)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(n, 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

package profile

import (
	"bufio"
	"fmt"
	"io"
)

// BarrierSchema identifies the barrier cost report format.
const BarrierSchema = "fstutter-barrier/1"

// BarrierRun is one sharded-kernel run's barrier cost profile: how many
// safe windows the run took, how much work they held, how much of that
// work crossed shards, and how evenly it spread. Everything here is
// byte-deterministic for a fixed seed and shard count except the two
// nanosecond fields, which are wall-clock and excluded from the JSON
// artifact.
type BarrierRun struct {
	// Run labels the sub-run within its experiment ("gc-adaptive",
	// "fleet-2048", "reissue-x3").
	Run string
	// Shards is the kernel's shard count.
	Shards int
	// Windows is the number of safe windows the run executed; Fired is
	// the events executed inside them.
	Windows uint64
	Fired   uint64
	// Delivered is the number of cross-shard events carried over a
	// barrier; Delivered/Fired is the cross-shard fraction of the
	// workload.
	Delivered uint64
	// SoloWindows counts windows in which at most one shard had eligible
	// work — windows with zero parallelism to harvest.
	SoloWindows uint64
	// MaxWindowFired is the largest single-window event count.
	MaxWindowFired uint64
	// PerShardFired is each shard's executed-event count — the imbalance
	// axis: a shard far above the mean is the parallel region's critical
	// path.
	PerShardFired []uint64
	// WindowNanos and BarrierNanos split the run's wall-clock between
	// the parallel window region and the single-threaded barrier.
	// DeliverNanos and SweepNanos split BarrierNanos further: the
	// cross-shard merge-and-push (the merge wall) versus the barrier hook
	// (the sweep wall — for the fleet, the parallel PeerSet sweep).
	// Wall-clock: nondeterministic, text report only.
	WindowNanos  int64
	BarrierNanos int64
	DeliverNanos int64
	SweepNanos   int64
}

// EventsPerWindow is the mean window payload — the quantity the batched
// delivery protocol exists to amortize the barrier handshake over.
func (r *BarrierRun) EventsPerWindow() float64 {
	if r.Windows == 0 {
		return 0
	}
	return float64(r.Fired) / float64(r.Windows)
}

// CrossShardFrac is the fraction of executed events that arrived over a
// barrier from another shard.
func (r *BarrierRun) CrossShardFrac() float64 {
	if r.Fired == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Fired)
}

// Imbalance is the hottest shard's event count over the per-shard mean:
// 1.0 is perfectly even, N means one shard did N times its fair share.
func (r *BarrierRun) Imbalance() float64 {
	if r.Fired == 0 || len(r.PerShardFired) == 0 {
		return 0
	}
	var max uint64
	for _, f := range r.PerShardFired {
		if f > max {
			max = f
		}
	}
	mean := float64(r.Fired) / float64(len(r.PerShardFired))
	if mean == 0 {
		return 0
	}
	return float64(max) / mean
}

// BarrierFrac is the single-threaded barrier's share of the measured
// wall-clock; zero when the run carried no timing.
func (r *BarrierRun) BarrierFrac() float64 {
	total := r.WindowNanos + r.BarrierNanos
	if total == 0 {
		return 0
	}
	return float64(r.BarrierNanos) / float64(total)
}

// DeliverFrac is the cross-shard merge wall's share of the barrier time;
// SweepFrac is the barrier hook's (the fleet sweep's). Zero when the run
// predates the split or carried no timing.
func (r *BarrierRun) DeliverFrac() float64 {
	if r.BarrierNanos == 0 {
		return 0
	}
	return float64(r.DeliverNanos) / float64(r.BarrierNanos)
}

// SweepFrac is the barrier hook's share of the barrier wall-clock.
func (r *BarrierRun) SweepFrac() float64 {
	if r.BarrierNanos == 0 {
		return 0
	}
	return float64(r.SweepNanos) / float64(r.BarrierNanos)
}

// BarrierReport is one experiment's barrier cost profile across its
// sub-runs: the per-run answer to "what did the conservative barrier
// cost, and was there parallelism to pay for it?".
type BarrierReport struct {
	Experiment string
	// Meta stamps the run identity (seed, scale, parallelism) into the
	// artifact header; the zero value writes seed 0 and omits the
	// parallelism fields.
	Meta RunMeta
	Runs []BarrierRun
}

// WriteJSON writes the deterministic fields in canonical form — runs in
// execution order, wall-clock nanoseconds omitted — so the artifact
// diffs cleanly across commits.
func (r *BarrierReport) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"schema":`)
	jstr(bw, BarrierSchema)
	r.Meta.writeHeader(bw)
	bw.WriteString(`,"experiment":`)
	jstr(bw, r.Experiment)
	bw.WriteString(`,"runs":[`)
	for i := range r.Runs {
		run := &r.Runs[i]
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n")
		bw.WriteString(`{"run":`)
		jstr(bw, run.Run)
		bw.WriteString(`,"shards":`)
		jint(bw, int64(run.Shards))
		bw.WriteString(`,"windows":`)
		jint(bw, int64(run.Windows))
		bw.WriteString(`,"fired":`)
		jint(bw, int64(run.Fired))
		bw.WriteString(`,"delivered":`)
		jint(bw, int64(run.Delivered))
		bw.WriteString(`,"solo_windows":`)
		jint(bw, int64(run.SoloWindows))
		bw.WriteString(`,"max_window_fired":`)
		jint(bw, int64(run.MaxWindowFired))
		bw.WriteString(`,"events_per_window":`)
		jnum(bw, run.EventsPerWindow())
		bw.WriteString(`,"cross_shard_frac":`)
		jnum(bw, run.CrossShardFrac())
		bw.WriteString(`,"imbalance":`)
		jnum(bw, run.Imbalance())
		bw.WriteString(`,"per_shard_fired":[`)
		for j, f := range run.PerShardFired {
			if j > 0 {
				bw.WriteByte(',')
			}
			jint(bw, int64(f))
		}
		bw.WriteString(`]}`)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// WriteText renders the report as an aligned table, including the
// wall-clock window/barrier split (nondeterministic — stdout only,
// never a committed artifact).
func (r *BarrierReport) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "barrier profile: %s\n", r.Experiment)
	fmt.Fprintf(bw, "  %-24s %6s %9s %9s %6s %6s %6s %9s %7s %7s\n",
		"run", "shards", "windows", "ev/win", "xshard", "imbal", "solo", "barrier%", "merge%", "sweep%")
	for i := range r.Runs {
		run := &r.Runs[i]
		solo := 0.0
		if run.Windows > 0 {
			solo = float64(run.SoloWindows) / float64(run.Windows)
		}
		barrier, merge, sweep := "-", "-", "-"
		if run.WindowNanos+run.BarrierNanos > 0 {
			barrier = fmt.Sprintf("%.1f%%", 100*run.BarrierFrac())
		}
		// merge% and sweep% are shares *of the barrier wall*, not of the
		// whole run: together they show which half of the handshake —
		// cross-shard delivery or the hook's fleet sweep — the barrier
		// spends its time in.
		if run.BarrierNanos > 0 {
			merge = fmt.Sprintf("%.1f%%", 100*run.DeliverFrac())
			sweep = fmt.Sprintf("%.1f%%", 100*run.SweepFrac())
		}
		fmt.Fprintf(bw, "  %-24s %6d %9d %9.1f %5.1f%% %6.2f %5.0f%% %9s %7s %7s\n",
			run.Run, run.Shards, run.Windows, run.EventsPerWindow(),
			100*run.CrossShardFrac(), run.Imbalance(), 100*solo, barrier, merge, sweep)
	}
	return bw.Flush()
}

package profile

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"failstutter/internal/trace"
)

// SLOConfig configures the availability analysis.
type SLOConfig struct {
	// Threshold is the acceptable request latency in virtual seconds —
	// Gray & Reuter's criterion: the system is available when it serves
	// requests within this bound. Zero or negative selects an automatic
	// threshold of 5x the median request latency of the whole trace.
	Threshold float64
	// Windows is the number of equal-width availability windows per
	// scenario (default 20).
	Windows int
	// Gap is the idle stretch (in trace seconds) that separates two
	// scenarios. The telemetry layer lays sub-runs out with a 1s gap, so
	// the default of 0.5 clusters each sub-run into its own scenario.
	Gap float64
}

// SLOWindow is one availability sample: of the requests offered in
// [Start, End), how many completed within the threshold. Availability is
// NaN when the window offered nothing.
type SLOWindow struct {
	Start, End   float64
	Offered      int
	Within       int
	Availability float64
}

// SLOScenario is the per-scenario summary: one RAID scenario, cluster
// run, or other sub-run of the experiment timeline.
type SLOScenario struct {
	Label        string
	Start, End   float64
	Offered      int
	Within       int
	Availability float64
	P50, P99     float64
	Windows      []SLOWindow
}

// SLOReport is the experiment-level availability analysis.
type SLOReport struct {
	// Meta stamps the run identity (seed, scale, parallelism) into the
	// artifact header; the zero value writes seed 0 and omits the
	// parallelism fields.
	Meta         RunMeta
	Threshold    float64
	Auto         bool // Threshold was derived from the data
	Category     string
	Offered      int
	Within       int
	Availability float64
	Scenarios    []SLOScenario
}

// requestCats is the preference order for which span category counts as
// "a request": array-level operations when present, then DHT puts, then
// raw device accesses, then bare station service intervals.
var requestCats = []string{"raid", "dht", "disk", "station"}

// AnalyzeSLO derives windowed availability from the span DAG: it picks
// the trace's request population, clusters requests into scenarios by
// timeline gaps, and scores each against the latency threshold.
func AnalyzeSLO(tr *trace.Tracer, cfg SLOConfig) *SLOReport {
	spans := tr.Spans()
	if cfg.Windows <= 0 {
		cfg.Windows = 20
	}
	if cfg.Gap <= 0 {
		cfg.Gap = 0.5
	}

	var reqs []trace.Span
	var category string
	for _, cat := range requestCats {
		for _, sp := range spans {
			if sp.Cat != cat || sp.Instant || sp.Open() {
				continue
			}
			if cat == "station" && sp.Name != "service" {
				continue
			}
			reqs = append(reqs, sp)
		}
		if len(reqs) > 0 {
			category = cat
			break
		}
	}
	rep := &SLOReport{Threshold: cfg.Threshold, Category: category}
	if len(reqs) == 0 {
		return rep
	}

	sort.SliceStable(reqs, func(a, b int) bool {
		if reqs[a].Start != reqs[b].Start {
			return reqs[a].Start < reqs[b].Start
		}
		return reqs[a].ID < reqs[b].ID
	})

	if cfg.Threshold <= 0 {
		lats := make([]float64, len(reqs))
		for i, sp := range reqs {
			lats[i] = sp.End - sp.Start
		}
		sort.Float64s(lats)
		rep.Threshold = 5 * quantileOf(lats, 0.5)
		rep.Auto = true
	}

	// Cluster into scenarios: a request starting more than Gap after
	// everything seen so far begins a new scenario.
	var groups [][]trace.Span
	cur := []trace.Span{reqs[0]}
	curEnd := reqs[0].End
	for _, sp := range reqs[1:] {
		if sp.Start > curEnd+cfg.Gap {
			groups = append(groups, cur)
			cur = nil
			curEnd = math.Inf(-1)
		}
		cur = append(cur, sp)
		if sp.End > curEnd {
			curEnd = sp.End
		}
	}
	groups = append(groups, cur)

	jobs := jobSpans(spans)
	for i, g := range groups {
		sc := scoreScenario(g, rep.Threshold, cfg.Windows)
		sc.Label = "scenario-" + strconv.Itoa(i+1)
		if names := jobsOverlapping(jobs, sc.Start, sc.End); names != "" {
			sc.Label += " (" + names + ")"
		}
		rep.Offered += sc.Offered
		rep.Within += sc.Within
		rep.Scenarios = append(rep.Scenarios, sc)
	}
	if rep.Offered > 0 {
		rep.Availability = float64(rep.Within) / float64(rep.Offered)
	}
	return rep
}

// scoreScenario scores one request cluster against the threshold.
func scoreScenario(g []trace.Span, threshold float64, windows int) SLOScenario {
	sc := SLOScenario{Start: g[0].Start, End: g[0].End}
	lats := make([]float64, 0, len(g))
	for _, sp := range g {
		if sp.End > sc.End {
			sc.End = sp.End
		}
		lats = append(lats, sp.End-sp.Start)
	}
	sc.Offered = len(g)
	for _, l := range lats {
		if l <= threshold {
			sc.Within++
		}
	}
	sc.Availability = float64(sc.Within) / float64(sc.Offered)
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	sc.P50 = quantileOf(sorted, 0.5)
	sc.P99 = quantileOf(sorted, 0.99)

	span := sc.End - sc.Start
	if span <= 0 {
		span = 1
	}
	wins := make([]SLOWindow, windows)
	for i := range wins {
		wins[i].Start = sc.Start + span*float64(i)/float64(windows)
		wins[i].End = sc.Start + span*float64(i+1)/float64(windows)
		wins[i].Availability = math.NaN()
	}
	for i, sp := range g {
		w := int((sp.Start - sc.Start) / span * float64(windows))
		if w >= windows {
			w = windows - 1
		}
		wins[w].Offered++
		if lats[i] <= threshold {
			wins[w].Within++
		}
	}
	for i := range wins {
		if wins[i].Offered > 0 {
			wins[i].Availability = float64(wins[i].Within) / float64(wins[i].Offered)
		}
	}
	sc.Windows = wins
	return sc
}

// quantileOf returns the nearest-rank quantile of an ascending slice.
func quantileOf(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// jobSpans extracts the striper job spans used to label scenarios.
func jobSpans(spans []trace.Span) []trace.Span {
	var out []trace.Span
	for _, sp := range spans {
		if sp.Cat == "striper" && !sp.Instant && !sp.Open() {
			out = append(out, sp)
		}
	}
	return out
}

// jobsOverlapping names the jobs whose spans overlap [start, end],
// joined with '+'.
func jobsOverlapping(jobs []trace.Span, start, end float64) string {
	var names []string
	seen := map[string]bool{}
	for _, j := range jobs {
		if j.Start < end && j.End > start {
			name := strings.TrimPrefix(j.Name, "job:")
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	return strings.Join(names, "+")
}

// Package faults implements the fault-injection library. Every phenomenon
// surveyed in Section 2 of the paper maps onto one of these injectors:
//
//   - fault masking (degraded caches, remapped blocks)  -> Static, StepAt
//   - aged file-system layout                           -> Static
//   - thermal recalibration, GC / cleaner pauses        -> PeriodicStall
//   - SCSI timeouts and parity errors                   -> PoissonStalls
//   - correlated SCSI bus resets across a chain         -> ChainResets
//   - CPU / memory hogs during an interval              -> Interval
//   - erratic, non-deterministic performance            -> RandomWalk
//   - wear-out preceding death                          -> LinearDrift + CrashAt
//   - absolute (fail-stop) failure                      -> CrashAt
//
// A performance fault is modelled as a multiplicative factor on a
// component's service rate: 1 is nominal, 0 is a stall, values above 1
// model faster-than-spec parts. Multiple injectors compose multiplicatively
// through a Composite.
package faults

import (
	"fmt"
	"math"

	"failstutter/internal/sim"
)

// Target is the component-side interface injectors drive. sim.Station
// satisfies it, as do the device wrappers.
type Target interface {
	// SetMultiplier sets the composed fault factor on the component.
	SetMultiplier(m float64)
	// Fail transitions the component to the absolutely-failed state.
	Fail()
}

// Composite composes any number of named fault factors onto one target by
// multiplying them. Each injector owns one slot; setting a slot recomputes
// the product and pushes it to the target.
type Composite struct {
	target  Target
	factors map[string]float64
	// slotSeq disambiguates multiple injectors of the same kind on this
	// composite. It is per-composite (not package-global) so that
	// simulations running concurrently — the parallel experiment runner —
	// never share mutable state.
	slotSeq int
}

// NewComposite wraps target for multi-injector composition.
func NewComposite(target Target) *Composite {
	return &Composite{target: target, factors: make(map[string]float64)}
}

// Set updates the factor in the named slot. Factors must be finite and
// non-negative.
func (c *Composite) Set(slot string, factor float64) {
	if factor < 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		panic(fmt.Sprintf("faults: invalid factor %v for slot %q", factor, slot))
	}
	c.factors[slot] = factor
	c.target.SetMultiplier(c.Product())
}

// Clear removes the named slot, restoring its contribution to 1.
func (c *Composite) Clear(slot string) {
	delete(c.factors, slot)
	c.target.SetMultiplier(c.Product())
}

// Product returns the current composed factor.
func (c *Composite) Product() float64 {
	p := 1.0
	for _, f := range c.factors {
		p *= f
	}
	return p
}

// Fail forwards an absolute failure to the target.
func (c *Composite) Fail() { c.target.Fail() }

// newSlot mints a fresh slot name for an injector of the given kind.
func (c *Composite) newSlot(kind string) string {
	c.slotSeq++
	return fmt.Sprintf("%s-%d", kind, c.slotSeq)
}

// Injector installs a fault behaviour onto a composite at simulation
// setup. Install must be called before the simulation runs (or at least
// before the injector's first event time).
type Injector interface {
	Install(s *sim.Simulator, c *Composite)
}

// Static applies a constant factor for the whole run: a component that was
// always slower than its twin (cache fault masking, bad-block remaps, aged
// file-system layout).
type Static struct {
	Factor float64
}

// Install implements Injector.
func (f Static) Install(s *sim.Simulator, c *Composite) {
	c.Set(c.newSlot("static"), f.Factor)
}

// StepAt permanently changes the factor at a point in time: a component
// that degrades once and stays degraded (e.g. a cache bank mapped out
// after a fault, or gradual remapping modelled coarsely).
type StepAt struct {
	At     sim.Time
	Factor float64
}

// Install implements Injector.
func (f StepAt) Install(s *sim.Simulator, c *Composite) {
	slot := c.newSlot("step")
	s.At(f.At, func() { c.Set(slot, f.Factor) })
}

// Interval applies a factor during [Start, End): interference from a
// co-located CPU or memory hog, or load imbalance brought by a new
// workload.
type Interval struct {
	Start, End sim.Time
	Factor     float64
}

// Install implements Injector.
func (f Interval) Install(s *sim.Simulator, c *Composite) {
	if f.End <= f.Start {
		panic("faults: Interval requires End > Start")
	}
	slot := c.newSlot("interval")
	s.At(f.Start, func() { c.Set(slot, f.Factor) })
	s.At(f.End, func() { c.Clear(slot) })
}

// PeriodicStall pauses the component for Duration every Period, with
// optional uniform jitter on the gap: thermal recalibrations in the Tiger
// video server, garbage-collection pauses in the DHT, log cleaner passes.
type PeriodicStall struct {
	Period   sim.Duration
	Duration sim.Duration
	// Factor is the rate factor during the stall; 0 (the zero value) is a
	// full stop.
	Factor float64
	// Jitter, if positive, spreads each gap uniformly over
	// [Period-Jitter, Period+Jitter].
	Jitter sim.Duration
	// RNG is required when Jitter > 0.
	RNG *sim.RNG
	// Until, if positive, stops injecting after this time.
	Until sim.Time
}

// Install implements Injector.
func (f PeriodicStall) Install(s *sim.Simulator, c *Composite) {
	if f.Period <= 0 || f.Duration <= 0 {
		panic("faults: PeriodicStall requires positive Period and Duration")
	}
	if f.Jitter > 0 && f.RNG == nil {
		panic("faults: PeriodicStall jitter requires an RNG")
	}
	slot := c.newSlot("periodic")
	var schedule func(next sim.Time)
	schedule = func(next sim.Time) {
		if f.Until > 0 && next > f.Until {
			return
		}
		s.At(next, func() {
			c.Set(slot, f.Factor)
			s.After(f.Duration, func() {
				c.Clear(slot)
				gap := f.Period
				if f.Jitter > 0 {
					gap += f.RNG.Uniform(-f.Jitter, f.Jitter)
					if gap < f.Duration {
						gap = f.Duration
					}
				}
				schedule(s.Now() + gap - f.Duration)
			})
		})
	}
	schedule(f.Period)
}

// PoissonStalls injects stalls with exponentially distributed gaps: SCSI
// timeouts and parity errors, which the Talagala & Patterson farm study
// found arriving roughly twice a day per chain.
type PoissonStalls struct {
	MeanInterval sim.Duration
	Duration     sim.Duration
	Factor       float64
	RNG          *sim.RNG
	Until        sim.Time
	// OnStall, if non-nil, is invoked at the start of each stall — used by
	// experiments to count error events.
	OnStall func(at sim.Time)
}

// Install implements Injector.
func (f PoissonStalls) Install(s *sim.Simulator, c *Composite) {
	if f.MeanInterval <= 0 || f.Duration <= 0 || f.RNG == nil {
		panic("faults: PoissonStalls requires positive intervals and an RNG")
	}
	slot := c.newSlot("poisson")
	var schedule func()
	schedule = func() {
		gap := f.RNG.Exp(f.MeanInterval)
		next := s.Now() + gap
		if f.Until > 0 && next > f.Until {
			return
		}
		s.At(next, func() {
			if f.OnStall != nil {
				f.OnStall(s.Now())
			}
			c.Set(slot, f.Factor)
			s.After(f.Duration, func() {
				c.Clear(slot)
				schedule()
			})
		})
	}
	schedule()
}

// ChainResets models correlated failure propagation: a timeout on any
// member of a group (a SCSI chain) stalls every member for the reset
// duration. Per the farm study, "these errors often lead to SCSI bus
// resets, affecting the performance of all disks on the degraded chain".
type ChainResets struct {
	MeanInterval sim.Duration // mean gap between resets for the whole chain
	Duration     sim.Duration
	RNG          *sim.RNG
	Until        sim.Time
	OnReset      func(at sim.Time)
}

// InstallGroup wires the reset schedule across all members. ChainResets is
// not a per-component Injector because its scope is the group.
func (f ChainResets) InstallGroup(s *sim.Simulator, members []*Composite) {
	if f.MeanInterval <= 0 || f.Duration <= 0 || f.RNG == nil {
		panic("faults: ChainResets requires positive intervals and an RNG")
	}
	// Each member gets a slot minted from its own composite, keeping slot
	// names unique per composite without any cross-simulation state.
	slots := make([]string, len(members))
	for i, m := range members {
		slots[i] = m.newSlot("chainreset")
	}
	var schedule func()
	schedule = func() {
		gap := f.RNG.Exp(f.MeanInterval)
		next := s.Now() + gap
		if f.Until > 0 && next > f.Until {
			return
		}
		s.At(next, func() {
			if f.OnReset != nil {
				f.OnReset(s.Now())
			}
			for i, m := range members {
				m.Set(slots[i], 0)
			}
			s.After(f.Duration, func() {
				for i, m := range members {
					m.Clear(slots[i])
				}
				schedule()
			})
		})
	}
	schedule()
}

// RandomWalk re-draws the factor every Interval as a bounded random walk:
// the catch-all for erratic, unexplained performance (UltraSPARC fetch
// logic, unexplained 30% I/O deficits).
type RandomWalk struct {
	Interval sim.Duration
	Sigma    float64 // per-step normal perturbation
	Min, Max float64 // clamp bounds, e.g. 0.3 and 1.0
	RNG      *sim.RNG
	Until    sim.Time
}

// Install implements Injector.
func (f RandomWalk) Install(s *sim.Simulator, c *Composite) {
	if f.Interval <= 0 || f.RNG == nil || f.Max < f.Min {
		panic("faults: RandomWalk requires positive Interval, RNG, Max >= Min")
	}
	slot := c.newSlot("walk")
	level := 1.0
	if level > f.Max {
		level = f.Max
	}
	if level < f.Min {
		level = f.Min
	}
	var tick func()
	tick = func() {
		level += f.RNG.Norm(0, f.Sigma)
		if level > f.Max {
			level = f.Max
		}
		if level < f.Min {
			level = f.Min
		}
		c.Set(slot, level)
		next := s.Now() + f.Interval
		if f.Until > 0 && next > f.Until {
			return
		}
		s.At(next, tick)
	}
	s.At(f.Interval, tick)
}

// LinearDrift ramps the factor linearly from From to To over [Start, End],
// then holds at To: progressive wear preceding failure, the paper's "erratic
// performance may be an early indicator of impending failure". Steps sets
// the schedule granularity.
type LinearDrift struct {
	Start, End sim.Time
	From, To   float64
	Steps      int
}

// Install implements Injector.
func (f LinearDrift) Install(s *sim.Simulator, c *Composite) {
	if f.End <= f.Start || f.Steps < 1 {
		panic("faults: LinearDrift requires End > Start and Steps >= 1")
	}
	slot := c.newSlot("drift")
	for i := 0; i <= f.Steps; i++ {
		frac := float64(i) / float64(f.Steps)
		at := f.Start + frac*(f.End-f.Start)
		factor := f.From + frac*(f.To-f.From)
		s.At(at, func() { c.Set(slot, factor) })
	}
}

// CrashAt fails the component absolutely at the given time (fail-stop).
type CrashAt struct {
	At sim.Time
}

// Install implements Injector.
func (f CrashAt) Install(s *sim.Simulator, c *Composite) {
	s.At(f.At, func() { c.Fail() })
}

// InstallAll installs each injector on the composite.
func InstallAll(s *sim.Simulator, c *Composite, injectors ...Injector) {
	for _, inj := range injectors {
		inj.Install(s, c)
	}
}

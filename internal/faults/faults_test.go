package faults

import (
	"math"
	"testing"

	"failstutter/internal/sim"
)

// fakeTarget records multiplier pushes and failure.
type fakeTarget struct {
	mult   float64
	failed bool
	sets   int
}

func newFakeTarget() *fakeTarget { return &fakeTarget{mult: 1} }

func (f *fakeTarget) SetMultiplier(m float64) { f.mult = m; f.sets++ }
func (f *fakeTarget) Fail()                   { f.failed = true }

func TestCompositeProduct(t *testing.T) {
	tgt := newFakeTarget()
	c := NewComposite(tgt)
	c.Set("a", 0.5)
	c.Set("b", 0.5)
	if tgt.mult != 0.25 {
		t.Fatalf("composed = %v, want 0.25", tgt.mult)
	}
	c.Clear("a")
	if tgt.mult != 0.5 {
		t.Fatalf("after clear = %v, want 0.5", tgt.mult)
	}
	c.Clear("b")
	if tgt.mult != 1 {
		t.Fatalf("all clear = %v, want 1", tgt.mult)
	}
}

func TestCompositeInvalidFactorPanics(t *testing.T) {
	c := NewComposite(newFakeTarget())
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("factor %v did not panic", bad)
				}
			}()
			c.Set("x", bad)
		}()
	}
}

func TestStatic(t *testing.T) {
	s := sim.New()
	tgt := newFakeTarget()
	c := NewComposite(tgt)
	Static{Factor: 0.9}.Install(s, c)
	if tgt.mult != 0.9 {
		t.Fatalf("static factor = %v", tgt.mult)
	}
}

func TestStepAt(t *testing.T) {
	s := sim.New()
	tgt := newFakeTarget()
	c := NewComposite(tgt)
	StepAt{At: 10, Factor: 0.5}.Install(s, c)
	s.RunUntil(9)
	if tgt.mult != 1 {
		t.Fatalf("stepped early: %v", tgt.mult)
	}
	s.RunUntil(11)
	if tgt.mult != 0.5 {
		t.Fatalf("step missing: %v", tgt.mult)
	}
}

func TestInterval(t *testing.T) {
	s := sim.New()
	tgt := newFakeTarget()
	c := NewComposite(tgt)
	Interval{Start: 5, End: 8, Factor: 0.25}.Install(s, c)
	s.RunUntil(6)
	if tgt.mult != 0.25 {
		t.Fatalf("during interval = %v", tgt.mult)
	}
	s.RunUntil(9)
	if tgt.mult != 1 {
		t.Fatalf("after interval = %v", tgt.mult)
	}
}

func TestIntervalInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted interval did not panic")
		}
	}()
	Interval{Start: 5, End: 5, Factor: 0.5}.Install(sim.New(), NewComposite(newFakeTarget()))
}

func TestPeriodicStall(t *testing.T) {
	s := sim.New()
	tgt := newFakeTarget()
	c := NewComposite(tgt)
	PeriodicStall{Period: 10, Duration: 2, Until: 50}.Install(s, c)
	// Stalls at t=10..12, 20..22, 30..32, 40..42, 50..52.
	s.RunUntil(11)
	if tgt.mult != 0 {
		t.Fatalf("not stalled at t=11: %v", tgt.mult)
	}
	s.RunUntil(13)
	if tgt.mult != 1 {
		t.Fatalf("not recovered at t=13: %v", tgt.mult)
	}
	s.RunUntil(200)
	if s.Pending() != 0 {
		t.Fatal("injector kept scheduling beyond Until")
	}
}

func TestPeriodicStallPartialFactor(t *testing.T) {
	s := sim.New()
	tgt := newFakeTarget()
	c := NewComposite(tgt)
	PeriodicStall{Period: 10, Duration: 2, Factor: 0.3, Until: 15}.Install(s, c)
	s.RunUntil(11)
	if tgt.mult != 0.3 {
		t.Fatalf("stall factor = %v, want 0.3", tgt.mult)
	}
}

func TestPeriodicStallJitterRequiresRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("jitter without RNG did not panic")
		}
	}()
	PeriodicStall{Period: 10, Duration: 1, Jitter: 2}.Install(sim.New(), NewComposite(newFakeTarget()))
}

func TestPoissonStallsRate(t *testing.T) {
	s := sim.New()
	tgt := newFakeTarget()
	c := NewComposite(tgt)
	stalls := 0
	rng := sim.NewRNG(1)
	PoissonStalls{
		MeanInterval: 100, Duration: 1, RNG: rng, Until: 100000,
		OnStall: func(sim.Time) { stalls++ },
	}.Install(s, c)
	s.RunUntil(100000)
	// Expect ~1000 stalls minus time lost in stall durations; accept a wide
	// but diagnostic band.
	if stalls < 800 || stalls > 1200 {
		t.Fatalf("poisson stall count = %d over 1000 mean intervals", stalls)
	}
	if tgt.failed {
		t.Fatal("poisson stalls must not fail the target")
	}
}

func TestChainResetsStallAllMembers(t *testing.T) {
	s := sim.New()
	targets := make([]*fakeTarget, 4)
	members := make([]*Composite, 4)
	for i := range targets {
		targets[i] = newFakeTarget()
		members[i] = NewComposite(targets[i])
	}
	resets := 0
	var resetTime sim.Time
	ChainResets{
		MeanInterval: 50, Duration: 2, RNG: sim.NewRNG(7), Until: 1000,
		OnReset: func(at sim.Time) {
			resets++
			if resets == 1 {
				resetTime = at
			}
		},
	}.InstallGroup(s, members)
	s.Run()
	if resets == 0 {
		t.Fatal("no resets fired")
	}
	// Replay to mid-first-reset and verify all members stalled together.
	s2 := sim.New()
	targets2 := make([]*fakeTarget, 4)
	members2 := make([]*Composite, 4)
	for i := range targets2 {
		targets2[i] = newFakeTarget()
		members2[i] = NewComposite(targets2[i])
	}
	ChainResets{MeanInterval: 50, Duration: 2, RNG: sim.NewRNG(7), Until: 1000}.InstallGroup(s2, members2)
	s2.RunUntil(resetTime + 1)
	for i, tg := range targets2 {
		if tg.mult != 0 {
			t.Fatalf("member %d not stalled during chain reset: %v", i, tg.mult)
		}
	}
	s2.RunUntil(resetTime + 3)
	for i, tg := range targets2 {
		if tg.mult != 1 {
			t.Fatalf("member %d not recovered after chain reset: %v", i, tg.mult)
		}
	}
}

func TestRandomWalkBounded(t *testing.T) {
	s := sim.New()
	tgt := newFakeTarget()
	c := NewComposite(tgt)
	var observed []float64
	RandomWalk{
		Interval: 1, Sigma: 0.2, Min: 0.3, Max: 1.0,
		RNG: sim.NewRNG(3), Until: 500,
	}.Install(s, c)
	for i := 1; i <= 500; i++ {
		s.RunUntil(float64(i))
		observed = append(observed, tgt.mult)
	}
	lo, hi := observed[0], observed[0]
	for _, v := range observed {
		if v < 0.3-1e-12 || v > 1.0+1e-12 {
			t.Fatalf("walk escaped bounds: %v", v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 0.2 {
		t.Fatalf("walk barely moved: range [%v, %v]", lo, hi)
	}
}

func TestLinearDrift(t *testing.T) {
	s := sim.New()
	tgt := newFakeTarget()
	c := NewComposite(tgt)
	LinearDrift{Start: 0, End: 100, From: 1.0, To: 0.2, Steps: 100}.Install(s, c)
	s.RunUntil(50)
	if math.Abs(tgt.mult-0.6) > 0.01 {
		t.Fatalf("drift midpoint = %v, want ~0.6", tgt.mult)
	}
	s.RunUntil(200)
	if math.Abs(tgt.mult-0.2) > 1e-9 {
		t.Fatalf("drift end = %v, want 0.2", tgt.mult)
	}
}

func TestCrashAt(t *testing.T) {
	s := sim.New()
	tgt := newFakeTarget()
	c := NewComposite(tgt)
	CrashAt{At: 42}.Install(s, c)
	s.RunUntil(41)
	if tgt.failed {
		t.Fatal("crashed early")
	}
	s.RunUntil(43)
	if !tgt.failed {
		t.Fatal("did not crash")
	}
}

func TestInstallAllComposes(t *testing.T) {
	s := sim.New()
	tgt := newFakeTarget()
	c := NewComposite(tgt)
	InstallAll(s, c,
		Static{Factor: 0.5},
		Interval{Start: 10, End: 20, Factor: 0.5},
	)
	s.RunUntil(15)
	if tgt.mult != 0.25 {
		t.Fatalf("composed factors = %v, want 0.25", tgt.mult)
	}
	s.RunUntil(25)
	if tgt.mult != 0.5 {
		t.Fatalf("after interval = %v, want 0.5", tgt.mult)
	}
}

func TestInjectorsOnStation(t *testing.T) {
	// End-to-end: a periodic stall against a real station delays work by
	// exactly the stalled time.
	s := sim.New()
	st := sim.NewStation(s, "d0", 10)
	c := NewComposite(st)
	PeriodicStall{Period: 5, Duration: 1, Until: 100}.Install(s, c)
	var finished sim.Time
	st.SubmitFunc(100, func(r *sim.Request) { finished = r.Finished })
	s.Run()
	// 10 s of service; stalls at 5,11(=10+1 shifted)... Work of 100 units at
	// rate 10 requires 10 busy seconds; each stall adds 1 s. The finish time
	// must exceed the no-fault baseline by the number of stalls encountered.
	if finished <= 10 {
		t.Fatalf("stalls had no effect: finished at %v", finished)
	}
	if math.Mod(finished, 1) > 1e-6 && math.Mod(finished, 1) < 1-1e-6 {
		// The schedule is integral, so completion lands on an integer.
		t.Logf("note: finish %v not integral (acceptable, informational)", finished)
	}
}

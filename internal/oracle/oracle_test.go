package oracle

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRowResidualAndPass(t *testing.T) {
	cases := []struct {
		name string
		row  Row
		res  float64
		pass bool
	}{
		{"two-sided inside", Row{Predicted: 100, Observed: 101, Bound: TwoSided, Tol: 0.02}, 0.01, true},
		{"two-sided outside", Row{Predicted: 100, Observed: 103, Bound: TwoSided, Tol: 0.02}, 0.03, false},
		{"upper ok below", Row{Predicted: 100, Observed: 90, Bound: Upper, Tol: 0}, -0.1, true},
		{"upper exact", Row{Predicted: 100, Observed: 100, Bound: Upper, Tol: 0}, 0, true},
		{"upper beaten", Row{Predicted: 100, Observed: 100.5, Bound: Upper, Tol: 0}, 0.005, false},
		{"lower ok above", Row{Predicted: 100, Observed: 110, Bound: Lower, Tol: 0}, 0.1, true},
		{"lower missed", Row{Predicted: 100, Observed: 99, Bound: Lower, Tol: 0}, -0.01, false},
		{"zero prediction holds", Row{Predicted: 0, Observed: 0, Bound: Upper, Tol: 0}, 0, true},
		{"zero prediction violated", Row{Predicted: 0, Observed: 3, Bound: Upper, Tol: 0}, 3, false},
	}
	for _, c := range cases {
		if got := c.row.Residual(); math.Abs(got-c.res) > 1e-12 {
			t.Errorf("%s: residual %g, want %g", c.name, got, c.res)
		}
		if got := c.row.Pass(); got != c.pass {
			t.Errorf("%s: pass %v, want %v", c.name, got, c.pass)
		}
	}
}

func TestMissingMetricFails(t *testing.T) {
	// A NaN observation (the missing-metric sentinel) must never pass, in
	// any bound direction.
	for _, b := range []Bound{TwoSided, Upper, Lower} {
		row := Row{Predicted: 1, Observed: math.NaN(), Bound: b, Tol: 10}
		if row.Pass() {
			t.Errorf("NaN observation passed under %s bound", b)
		}
	}
}

func TestReportFailures(t *testing.T) {
	r := &Report{Experiment: "E01"}
	r.add("m", "ok", 1, 1, TwoSided, 0.01)
	r.add("m", "bad", 1, 2, TwoSided, 0.01)
	if got := r.Failures(); got != 1 {
		t.Fatalf("Failures() = %d, want 1", got)
	}
}

func TestWriteJSONDeterministicAndNaNSafe(t *testing.T) {
	r := &Report{Experiment: "E99", Seed: 42, Quick: true}
	r.add("m", "a", 1.5, 1.5000001, TwoSided, 0.01)
	r.add("m", "b", 2, math.NaN(), Upper, 0)
	var one, two bytes.Buffer
	if err := r.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("repeated WriteJSON calls differ")
	}
	s := one.String()
	if !strings.Contains(s, `"schema":"fstutter-oracle/1"`) {
		t.Errorf("missing schema tag in %q", s)
	}
	if !strings.Contains(s, `"observed":null`) {
		t.Errorf("NaN observation not exported as null in %q", s)
	}
	if !strings.Contains(s, `"failures":1`) {
		t.Errorf("failure count wrong in %q", s)
	}
}

func TestCoveredMatchesPredictors(t *testing.T) {
	if len(coveredOrder) != len(predictors) {
		t.Fatalf("coveredOrder has %d ids, predictors %d", len(coveredOrder), len(predictors))
	}
	for _, id := range coveredOrder {
		if !Covers(id) {
			t.Errorf("covered id %s has no predictor", id)
		}
	}
	if Covers("E99") {
		t.Error("Covers(E99) = true")
	}
}

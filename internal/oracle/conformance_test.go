package oracle

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"failstutter/internal/experiments"
)

// analyzeQuick runs one covered experiment at quick scale with the
// profiling plane on (the configuration `fstutter oracle` uses) and
// returns its conformance report.
func analyzeQuick(t *testing.T, id string, seed uint64, shards int) *Report {
	t.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.Config{Seed: seed, Quick: true, Profile: true, Shards: shards}
	tbl := e.Run(cfg)
	in := Input{Table: tbl, Seed: seed, Quick: true}
	if tbl.Telemetry != nil {
		in.Metrics = tbl.Telemetry.Metrics
	}
	rep, err := Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// Every covered experiment must conform to its analytic model at the
// reference seeds: this is the repo-level guarantee that the simulation
// stays anchored to the physics it claims to reproduce.
func TestConformanceAtReferenceSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 42, 1337} {
		for _, id := range Covered() {
			rep := analyzeQuick(t, id, seed, 0)
			if len(rep.Rows) == 0 {
				t.Errorf("seed %d %s: no conformance rows", seed, id)
			}
			for _, row := range rep.Rows {
				if !row.Pass() {
					t.Errorf("seed %d %s: %s/%s out of band: predicted %g observed %g residual %+g (%s tol %g)",
						seed, id, row.Model, row.Quantity, row.Predicted, row.Observed,
						row.Residual(), row.Bound, row.Tol)
				}
			}
		}
	}
}

func reportBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The oracle artifact must be byte-identical across repeated runs, shard
// counts, and concurrent executions: the reports read only virtual-time
// quantities, so nothing about host parallelism may leak into them.
func TestArtifactDeterminism(t *testing.T) {
	ids := []string{"E05", "E23", "E29"}
	for _, seed := range []uint64{1, 42, 1337} {
		for _, id := range ids {
			want := reportBytes(t, analyzeQuick(t, id, seed, 0))
			// Repeated runs.
			if got := reportBytes(t, analyzeQuick(t, id, seed, 0)); !bytes.Equal(got, want) {
				t.Errorf("seed %d %s: repeated run artifact differs", seed, id)
			}
			// Shard counts.
			for _, shards := range []int{1, 2, 8} {
				if got := reportBytes(t, analyzeQuick(t, id, seed, shards)); !bytes.Equal(got, want) {
					t.Errorf("seed %d %s: artifact differs at %d shards", seed, id, shards)
				}
			}
		}
	}
}

// Concurrent experiment runs (the `all -parallel N` configuration) must
// not perturb each other's oracle reports.
func TestArtifactDeterminismUnderConcurrency(t *testing.T) {
	ids := []string{"E05", "E23", "E29"}
	want := map[string][]byte{}
	for _, id := range ids {
		want[id] = reportBytes(t, analyzeQuick(t, id, 42, 0))
	}
	var wg sync.WaitGroup
	errs := make(chan string, len(ids)*4)
	for round := 0; round < 4; round++ {
		for _, id := range ids {
			wg.Add(1)
			go func(id string, round int) {
				defer wg.Done()
				e, err := experiments.Get(id)
				if err != nil {
					errs <- err.Error()
					return
				}
				cfg := experiments.Config{Seed: 42, Quick: true, Profile: true}
				tbl := e.Run(cfg)
				in := Input{Table: tbl, Seed: 42, Quick: true}
				if tbl.Telemetry != nil {
					in.Metrics = tbl.Telemetry.Metrics
				}
				rep, err := Analyze(in)
				if err != nil {
					errs <- err.Error()
					return
				}
				var buf bytes.Buffer
				if err := rep.WriteJSON(&buf); err != nil {
					errs <- err.Error()
					return
				}
				if !bytes.Equal(buf.Bytes(), want[id]) {
					errs <- fmt.Sprintf("%s round %d: concurrent artifact differs", id, round)
				}
			}(id, round)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestE32SeedGatedRows pins the fleet predictor's seed gating: every
// seed gets the binomial-injection and conservation rows, but the
// exact-recall and zero-false-alarm equalities only apply at the
// committed seed 42 — at other seeds the detector is merely conservative,
// not provably perfect.
func TestE32SeedGatedRows(t *testing.T) {
	hasQuantity := func(rep *Report, q string) bool {
		for _, row := range rep.Rows {
			if row.Quantity == q {
				return true
			}
		}
		return false
	}
	at42 := analyzeQuick(t, "E32", 42, 0)
	if !hasQuantity(at42, "false_alarms_512") || !hasQuantity(at42, "lag_ticks_2048") {
		t.Errorf("seed 42: exact-count rows missing from report: %+v", at42.Rows)
	}
	at1 := analyzeQuick(t, "E32", 1, 0)
	if hasQuantity(at1, "false_alarms_512") {
		t.Error("seed 1: exact false-alarm row present; it is only provable at the committed seed")
	}
	if !hasQuantity(at1, "injected_stutter_2048") {
		t.Error("seed 1: binomial injection rows missing")
	}
}

func TestAnalyzeRejectsUncovered(t *testing.T) {
	tbl := experiments.NewTable("E99", "uncovered", "n/a", "col")
	if _, err := Analyze(Input{Table: tbl}); err == nil {
		t.Fatal("Analyze accepted an uncovered experiment")
	}
	if _, err := Analyze(Input{}); err == nil {
		t.Fatal("Analyze accepted a nil table")
	}
}

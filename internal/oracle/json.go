package oracle

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Schema identifies the conformance report format.
const Schema = "fstutter-oracle/1"

// jnum writes a float in canonical shortest-roundtrip form; NaN and Inf
// export as null, matching the registry's JSON convention.
func jnum(bw *bufio.Writer, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		bw.WriteString("null")
		return
	}
	bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}

func jstr(bw *bufio.Writer, s string) {
	bw.WriteString(strconv.Quote(s))
}

// WriteJSON writes the report in canonical byte-deterministic form. The
// header stamps only the run identity (seed, scale): predictions and
// observations are virtual-time quantities with no dependence on shard
// count or host parallelism, and the artifact's byte-identity across
// -shards and -parallel settings is itself part of the contract, so the
// parallelism triple other artifact headers carry is deliberately absent.
func (r *Report) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"schema":`)
	jstr(bw, Schema)
	bw.WriteString(`,"seed":`)
	bw.WriteString(strconv.FormatUint(r.Seed, 10))
	bw.WriteString(`,"quick":`)
	bw.WriteString(strconv.FormatBool(r.Quick))
	bw.WriteString(`,"experiment":`)
	jstr(bw, r.Experiment)
	bw.WriteString(`,"failures":`)
	bw.WriteString(strconv.Itoa(r.Failures()))
	bw.WriteString(`,"rows":[`)
	for i := range r.Rows {
		row := &r.Rows[i]
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n")
		bw.WriteString(`{"model":`)
		jstr(bw, row.Model)
		bw.WriteString(`,"quantity":`)
		jstr(bw, row.Quantity)
		bw.WriteString(`,"predicted":`)
		jnum(bw, row.Predicted)
		bw.WriteString(`,"observed":`)
		jnum(bw, row.Observed)
		bw.WriteString(`,"residual":`)
		jnum(bw, row.Residual())
		bw.WriteString(`,"bound":`)
		jstr(bw, row.Bound.String())
		bw.WriteString(`,"tol":`)
		jnum(bw, row.Tol)
		bw.WriteString(`,"pass":`)
		bw.WriteString(strconv.FormatBool(row.Pass()))
		bw.WriteString(`}`)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// WriteText renders the report as an aligned conformance table: one row
// per check, failures marked with FAIL in the status column.
func (r *Report) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	scale := "full"
	if r.Quick {
		scale = "quick"
	}
	fmt.Fprintf(bw, "oracle conformance: %s (seed %d, %s)\n", r.Experiment, r.Seed, scale)
	fmt.Fprintf(bw, "  %-18s %-28s %12s %12s %10s %9s %8s %6s\n",
		"model", "quantity", "predicted", "observed", "residual", "bound", "tol", "ok")
	for _, row := range r.Rows {
		status := "ok"
		if !row.Pass() {
			status = "FAIL"
		}
		fmt.Fprintf(bw, "  %-18s %-28s %12.6g %12.6g %+10.4g %9s %8.3g %6s\n",
			row.Model, row.Quantity, row.Predicted, row.Observed,
			row.Residual(), row.Bound, row.Tol, status)
	}
	if n := r.Failures(); n > 0 {
		fmt.Fprintf(bw, "  %d of %d rows out of band\n", n, len(r.Rows))
	} else {
		fmt.Fprintf(bw, "  all %d rows within tolerance\n", len(r.Rows))
	}
	return bw.Flush()
}

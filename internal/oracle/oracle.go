// Package oracle checks the simulator against closed-form performance
// models: for each covered experiment it derives analytic predictions —
// fork-join stripe bounds for the RAID scenarios (the paper's N*b claim
// as an executable inequality), the exact zone/seek/remap disk service
// model, Dwork-Halpern-Waarts total-work/waste bounds for the
// Shasha-Turek scheduler zoo, BSP superstep bounds, DHT op-capacity
// bounds, and deterministic-drain (M/D/1-style) station occupancy
// predictions checked against the sim.StationProbe profiles — and
// compares them to the simulated observations row by row, with residuals
// and tolerance bands.
//
// Byte-determinism tests compare a run only to itself; the oracle plane
// is the complementary check that results stay anchored to the physics
// the experiments claim to reproduce, so silent behavioural drift fails
// loudly instead of being reproduced faithfully.
//
// Everything here is offline: predictors read the finished experiment's
// table metrics and metrics registry (the station occupancy series the
// profiling plane already samples), never hooking the hot path, so the
// plane costs nothing when off.
package oracle

import "math"

// Bound is the direction a conformance row is judged in.
type Bound int

const (
	// TwoSided requires |residual| <= Tol: the prediction is a point
	// estimate with a symmetric band.
	TwoSided Bound = iota
	// Upper requires observed <= predicted*(1+Tol): the prediction is an
	// analytic ceiling the simulation must not beat.
	Upper
	// Lower requires observed >= predicted*(1-Tol): the prediction is an
	// analytic floor the simulation must reach.
	Lower
)

// String names the bound direction for artifacts and tables.
func (b Bound) String() string {
	switch b {
	case Upper:
		return "upper"
	case Lower:
		return "lower"
	default:
		return "two-sided"
	}
}

// Row is one predicted-vs-observed conformance check.
type Row struct {
	// Model names the analytic family the prediction comes from
	// ("fork-join", "disk-model", "dhw", "bsp", "station-occupancy", ...).
	Model string
	// Quantity names what is compared, normally a table metric key.
	Quantity string
	// Predicted is the analytic value; Observed the simulated one.
	Predicted float64
	Observed  float64
	// Bound is the judgement direction; Tol the tolerance band, relative
	// to Predicted (absolute when Predicted is zero).
	Bound Bound
	Tol   float64
}

// Residual is the relative deviation of observed from predicted:
// observed/predicted - 1, or the absolute difference when the prediction
// is zero (a zero prediction is a "must not happen at all" bound).
func (r Row) Residual() float64 {
	if r.Predicted == 0 {
		return r.Observed
	}
	return r.Observed/r.Predicted - 1
}

// Pass reports whether the observation is inside the tolerance band in
// the row's bound direction.
func (r Row) Pass() bool {
	res := r.Residual()
	if math.IsNaN(res) {
		return false
	}
	switch r.Bound {
	case Upper:
		return res <= r.Tol
	case Lower:
		return res >= -r.Tol
	default:
		return math.Abs(res) <= r.Tol
	}
}

// Report is one experiment's conformance record.
type Report struct {
	Experiment string
	Seed       uint64
	Quick      bool
	Rows       []Row
}

// add appends a conformance row.
func (r *Report) add(model, quantity string, predicted, observed float64, bound Bound, tol float64) {
	r.Rows = append(r.Rows, Row{
		Model: model, Quantity: quantity,
		Predicted: predicted, Observed: observed,
		Bound: bound, Tol: tol,
	})
}

// Failures counts rows whose observation fell outside its band.
func (r *Report) Failures() int {
	n := 0
	for _, row := range r.Rows {
		if !row.Pass() {
			n++
		}
	}
	return n
}

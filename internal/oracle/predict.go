package oracle

import (
	"fmt"
	"math"
	"strings"

	"failstutter/internal/experiments"
	"failstutter/internal/trace"
)

// Input carries one finished experiment's observables into the oracle:
// the result table (metrics) and, when the profiling plane was on, the
// metrics registry holding the station occupancy series. The predictors
// re-derive every constant they use from the experiment definitions in
// DESIGN.md rather than importing them from the packages under test —
// the whole point is an independent model to diverge from.
type Input struct {
	Table   *experiments.Table
	Metrics *trace.Registry // nil when the profiling plane was off
	Seed    uint64
	Quick   bool
}

// predictor appends one experiment's conformance rows.
type predictor func(in Input, r *Report)

var predictors = map[string]predictor{
	"E01": predictE01,
	"E02": predictE02,
	"E03": predictE03,
	"E04": predictE04,
	"E05": predictE05,
	"E07": predictE07,
	"E08": predictE08,
	"E13": predictE13,
	"E14": predictE14,
	"E15": predictE15,
	"E23": predictE23,
	"E29": predictE29,
	"E32": predictE32,
}

// coveredOrder is the display order of covered experiments.
var coveredOrder = []string{
	"E01", "E02", "E03", "E04", "E05", "E07", "E08", "E13", "E14", "E15", "E23", "E29", "E32",
}

// Covered lists the experiments the oracle has predictors for, in id
// order.
func Covered() []string { return append([]string(nil), coveredOrder...) }

// Covers reports whether the oracle has a predictor for the experiment.
func Covers(id string) bool { _, ok := predictors[id]; return ok }

// Analyze derives the analytic predictions for the experiment behind the
// input table and scores the observations against them.
func Analyze(in Input) (*Report, error) {
	if in.Table == nil {
		return nil, fmt.Errorf("oracle: nil table")
	}
	p := predictors[in.Table.ID]
	if p == nil {
		return nil, fmt.Errorf("oracle: no predictor for experiment %s (covered: %s)",
			in.Table.ID, strings.Join(Covered(), " "))
	}
	rep := &Report{Experiment: in.Table.ID, Seed: in.Seed, Quick: in.Quick}
	p(in, rep)
	return rep, nil
}

// Record registers every conformance row as an oracle instrument in the
// registry, so the metrics CSV/JSON dumps carry the
// predicted/observed/residual/band quadruple alongside the raw metrics.
func Record(rep *Report, reg *trace.Registry) {
	if reg == nil {
		return
	}
	for _, row := range rep.Rows {
		reg.Oracle("oracle",
			trace.L("experiment", rep.Experiment),
			trace.L("quantity", row.Quantity),
			trace.L("bound", row.Bound.String()),
		).Set(row.Predicted, row.Observed, row.Residual(), row.Tol)
	}
}

// check scores a table metric against a prediction. A missing metric
// scores as NaN, which never passes — a renamed metric is itself a
// divergence from the model.
func (r *Report) check(in Input, model, key string, predicted float64, bound Bound, tol float64) {
	v, ok := in.Table.Metric(key)
	if !ok {
		v = math.NaN()
	}
	r.add(model, key, predicted, v, bound, tol)
}

// ---------------------------------------------------------------------------
// Shared model constants. These restate the experiment configurations —
// deliberately duplicated from the experiment definitions so that a silent
// change on either side is flagged.

const (
	mBlockBytes = 4096   // storage experiments' logical block
	mPairs      = 4      // scenario mirror pairs
	mRateB      = 1e6    // healthy pair bandwidth, bytes/s
	mRateSmall  = 0.25e6 // slow pair bandwidth, bytes/s
	mFlatSeek   = 0.002  // flatDisk seek time, seconds
	mQuantum    = 50e-6  // cluster work-unit quantum, seconds
	mWorkers    = 4      // cluster pool size
)

// scale mirrors the experiments' quick/full workload switch.
func scale(quick bool, q, f int64) int64 {
	if quick {
		return q
	}
	return f
}

// ---------------------------------------------------------------------------
// Piecewise-constant rate model: time for a server whose rate follows the
// warm segments once and then repeats the cycle forever to serve a given
// amount of work.

type rateSeg struct {
	dur  float64 // segment length, seconds
	rate float64 // service rate during the segment (bytes/s or units/s)
}

// timeToServe integrates the piecewise rate until amount is served. The
// cycle must serve positive work per iteration.
func timeToServe(amount float64, warm, cycle []rateSeg) float64 {
	t := 0.0
	step := func(seg rateSeg) bool {
		can := seg.rate * seg.dur
		if can >= amount && seg.rate > 0 {
			t += amount / seg.rate
			amount = 0
			return true
		}
		amount -= can
		t += seg.dur
		return false
	}
	for _, seg := range warm {
		if step(seg) {
			return t
		}
	}
	perCycle, cycleDur := 0.0, 0.0
	for _, seg := range cycle {
		perCycle += seg.rate * seg.dur
		cycleDur += seg.dur
	}
	if perCycle <= 0 {
		return math.Inf(1)
	}
	if n := math.Floor(amount / perCycle); n > 1 {
		amount -= (n - 1) * perCycle
		t += (n - 1) * cycleDur
	}
	for amount > 0 {
		for _, seg := range cycle {
			if step(seg) {
				return t
			}
		}
	}
	return t
}

// ---------------------------------------------------------------------------
// Analytic disk model: zone geometry with the constructor's cumulative
// int64 truncation, one seek per non-sequential access, aging as a
// bandwidth scale, and remapping as an expected per-block penalty (the
// caller widens the band by the binomial spread).

type diskZone struct {
	frac float64
	bw   float64
}

type diskGeom struct {
	capacity     int64
	zones        []diskZone
	seek         float64
	aging        float64
	remapFrac    float64
	remapPenalty float64
}

// hawkGeom mirrors the paper-derived Seagate Hawk parameters.
func hawkGeom() diskGeom {
	return diskGeom{
		capacity: 1 << 20,
		zones: []diskZone{
			{0.4, 5.5e6}, {0.35, 4.5e6}, {0.25, 3.2e6},
		},
		seek:         0.011,
		aging:        1,
		remapPenalty: 0.022,
	}
}

// readSeconds predicts the elapsed time of one sequential read of blocks
// starting at start: a single seek plus per-block transfer at the zone
// bandwidth (scaled by aging) plus the expected remap penalty.
func (g diskGeom) readSeconds(start, blocks int64) float64 {
	starts := make([]int64, len(g.zones))
	acc := int64(0)
	for i, z := range g.zones {
		starts[i] = acc
		acc += int64(z.frac * float64(g.capacity))
	}
	t := g.seek
	lo, hi := start, start+blocks
	for i, z := range g.zones {
		zlo := starts[i]
		zhi := g.capacity
		if i+1 < len(starts) {
			zhi = starts[i+1]
		}
		a, b := max64(lo, zlo), min64(hi, zhi)
		if b > a {
			t += float64(b-a) * mBlockBytes / (z.bw * g.aging)
		}
	}
	t += g.remapPenalty * g.remapFrac * float64(blocks)
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Station occupancy series helpers: the StationSampler records a
// "queue-depth" step series per run+component; busy time is the measure
// of {depth > 0} and the mean depth is time-weighted over the series
// span.

// findSeries locates the named series for the given sub-run (matched as
// a suffix of the telemetry's "<seq>-<name>" run label) and component.
func findSeries(reg *trace.Registry, name, run, component string) *trace.Series {
	if reg == nil {
		return nil
	}
	var found *trace.Series
	reg.VisitSeries(name, func(labels []trace.Label, s *trace.Series) {
		runOK, compOK := false, false
		for _, l := range labels {
			switch l.Key {
			case "run":
				runOK = l.Value == run || strings.HasSuffix(l.Value, "-"+run)
			case "component":
				compOK = l.Value == component
			}
		}
		if runOK && compOK {
			found = s
		}
	})
	return found
}

// busySeconds integrates 1{depth>0} over a step series.
func busySeconds(s *trace.Series) float64 {
	busy := 0.0
	for i := 0; i+1 < s.Len(); i++ {
		if s.Values[i] > 0 {
			busy += s.Times[i+1] - s.Times[i]
		}
	}
	return busy
}

// meanDepth is the time-weighted mean of a step series over its span.
func meanDepth(s *trace.Series) float64 {
	if s.Len() < 2 {
		return math.NaN()
	}
	sum := 0.0
	for i := 0; i+1 < s.Len(); i++ {
		sum += s.Values[i] * (s.Times[i+1] - s.Times[i])
	}
	span := s.Times[s.Len()-1] - s.Times[0]
	if span <= 0 {
		return math.NaN()
	}
	return sum / span
}

// checkSeries scores a derived occupancy quantity when the series was
// recorded; with the profiling plane off the row is skipped rather than
// failed — the registry simply has nothing to check.
func (r *Report) checkSeries(in Input, model, quantity, run, component string,
	derive func(*trace.Series) float64, predicted float64, bound Bound, tol float64) {
	s := findSeries(in.Metrics, "queue-depth", run, component)
	if s == nil || s.Len() < 2 {
		return
	}
	r.add(model, quantity, predicted, derive(s), bound, tol)
}

// ---------------------------------------------------------------------------
// E01 — scenario 1, static equal striping: the paper's N*b ceiling as an
// executable inequality, the exact fork-join makespan, and the slow
// station's deterministic-drain occupancy profile.

func predictE01(in Input, r *Report) {
	blocks := scale(in.Quick, 2000, 20000)
	share := blocks / mPairs
	// Fork-join: every pair writes share blocks; the job ends when the
	// slow pair drains. One seek, then back-to-back sequential service.
	slowBusy := mFlatSeek + float64(share)*mBlockBytes/mRateSmall
	healthyBusy := mFlatSeek + float64(share)*mBlockBytes/mRateB
	thr := float64(blocks) * mBlockBytes / slowBusy
	// The paper's claim: perceived throughput N*b. The simulation must
	// never beat it (the seek keeps it strictly below).
	r.check(in, "fork-join", "throughput", mPairs*mRateSmall, Upper, 0)
	r.check(in, "fork-join", "throughput", thr, TwoSided, 0.005)

	// Occupancy: static striping enqueues the whole share up front, so a
	// member disk is busy exactly its service total and its queue drains
	// linearly — mean depth (share+1)/2 over the busy window.
	r.checkSeries(in, "station-occupancy", "busy[p3-a]", "static-equal", "p3-a",
		busySeconds, slowBusy, TwoSided, 0.02)
	r.checkSeries(in, "station-occupancy", "busy[p0-a]", "static-equal", "p0-a",
		busySeconds, healthyBusy, TwoSided, 0.02)
	r.checkSeries(in, "station-occupancy", "qmean[p3-a]", "static-equal", "p3-a",
		meanDepth, float64(share+1)/2, TwoSided, 0.05)
}

// ---------------------------------------------------------------------------
// E02 — scenario 2, install-time gauging: (N-1)B+b recovered under a
// static fault; drift after the gauge reverts toward the slow pair.

func predictE02(in Input, r *Report) {
	blocks := scale(in.Quick, 4000, 40000)
	avail := float64(mPairs-1)*mRateB + mRateSmall
	r.check(in, "fork-join", "throughput_static", avail, Upper, 0.005)
	r.check(in, "fork-join", "throughput_static", avail, TwoSided, 0.03)

	// Drift: gauged while healthy (equal shares), then pair 0 steps to b
	// at t=2. The gauge runs first and probes the pairs one at a time —
	// 32 blocks each, a seek plus sequential service at B — and the
	// measured job's makespan starts where the gauge ends; its writes
	// continue the probes' sequential addresses, so no further seek.
	gaugeEnd := mPairs * (mFlatSeek + 32*mBlockBytes/mRateB)
	share := float64(blocks / mPairs)
	warm := []rateSeg{{dur: 2 - gaugeEnd, rate: mRateB}}
	drift := timeToServe(share*mBlockBytes, warm, []rateSeg{{dur: 1, rate: mRateSmall}})
	thrDrift := float64(blocks) * mBlockBytes / drift
	r.check(in, "fork-join", "throughput_drift", thrDrift, TwoSided, 0.01)
	r.check(in, "fork-join", "throughput_drift", mPairs*mRateSmall, Lower, 0.02)
	r.check(in, "fork-join", "throughput_drift", avail, Upper, 0.005)
}

// ---------------------------------------------------------------------------
// E03 — scenario 3, continuous adaptation: capacity integrals under a
// periodic stutter (period 2s, 1.5s at 5% speed, first stall at t=2).

func predictE03(in Input, r *Report) {
	blocks := scale(in.Quick, 6000, 40000)
	avail := float64(mPairs-1)*mRateB + mRateSmall
	r.check(in, "fork-join", "throughput_static", avail, Upper, 0.005)
	r.check(in, "fork-join", "throughput_static", avail, TwoSided, 0.05)

	warm := []rateSeg{{dur: 2, rate: mRateB}}
	cycle := []rateSeg{{dur: 1.5, rate: 0.05 * mRateB}, {dur: 0.5, rate: mRateB}}

	// Static striping under the oscillation: the job ends when pair 0
	// drains its fixed quarter at the stuttering rate.
	share := float64(blocks / mPairs)
	staticSpan := mFlatSeek + timeToServe(share*mBlockBytes, warm, cycle)
	thrStatic := float64(blocks) * mBlockBytes / staticSpan
	r.check(in, "fork-join", "throughput_dyn_static", thrStatic, TwoSided, 0.03)

	// Adaptive pull rides the capacity integral: three healthy pairs plus
	// the stutterer's duty cycle.
	warmAll := []rateSeg{{dur: 2, rate: mPairs * mRateB}}
	cycleAll := []rateSeg{
		{dur: 1.5, rate: float64(mPairs-1)*mRateB + 0.05*mRateB},
		{dur: 0.5, rate: mPairs * mRateB},
	}
	adaptSpan := mFlatSeek + timeToServe(float64(blocks)*mBlockBytes, warmAll, cycleAll)
	thrAdapt := float64(blocks) * mBlockBytes / adaptSpan
	r.check(in, "fork-join", "throughput_dyn_adaptive", thrAdapt, TwoSided, 0.05)
	r.check(in, "fork-join", "throughput_dyn_adaptive", thrAdapt, Upper, 0.01)

	// The wave striper lands between the static floor and the capacity
	// ceiling: it adapts, but one re-gauge interval late.
	r.check(in, "fork-join", "throughput_dyn_wave", thrStatic, Lower, 0.05)
	r.check(in, "fork-join", "throughput_dyn_wave", thrAdapt, Upper, 0.01)

	// Bookkeeping: the adaptive design records one placement per block —
	// the cost the paper says the third scenario accepts. Exact.
	r.check(in, "fork-join", "bookkeeping_adaptive", float64(blocks), TwoSided, 0)
}

// ---------------------------------------------------------------------------
// E04 — striping tracks the slowest disk, per deficit level.

func predictE04(in Input, r *Report) {
	blocks := scale(in.Quick, 1500, 15000)
	share := float64(blocks / mPairs)
	for _, deficit := range []float64{0, 0.1, 0.25, 0.5, 0.75} {
		slowRate := mRateB * (1 - deficit)
		span := mFlatSeek + share*mBlockBytes/slowRate
		thr := float64(blocks) * mBlockBytes / span
		key := fmt.Sprintf("throughput_%.0f", deficit*100)
		r.check(in, "fork-join", key, mPairs*slowRate, Upper, 0)
		r.check(in, "fork-join", key, thr, TwoSided, 0.005)
	}
}

// ---------------------------------------------------------------------------
// E05 — bad-block remapping: the exact zone model plus an expected
// binomial remap count, with a 6-sigma band on the remap spread.

func predictE05(in Input, r *Report) {
	blocks := scale(in.Quick, 20000, 200000)
	for i, frac := range []float64{0, 0.004, 0.012, 0.04} {
		g := hawkGeom()
		g.remapFrac = float64(int64(frac*float64(g.capacity))) / float64(g.capacity)
		el := g.readSeconds(0, blocks)
		bw := float64(blocks) * mBlockBytes / el
		tol := 1e-9
		if p := g.remapFrac; p > 0 {
			sigma := math.Sqrt(float64(blocks) * p * (1 - p))
			tol += 1.1 * 6 * sigma * g.remapPenalty / el
		}
		r.check(in, "disk-model", fmt.Sprintf("bw_%d", i), bw, TwoSided, tol)
	}
	g := hawkGeom()
	healthy := float64(blocks) * mBlockBytes / g.readSeconds(0, blocks)
	r.check(in, "disk-model", "healthy_bw", healthy, TwoSided, 1e-9)
}

// ---------------------------------------------------------------------------
// E07 — thermal recalibrations vs streaming deadlines: a deterministic-
// drain (M/D/1-style) station model. The 2 MB/s stream offers one 0.5 MB
// read every 0.25 s (S ~ 95 ms, rho ~ 0.38); each stall of length R
// strands arrivals beyond the client buffer B and the post-stall backlog
// drains at rate factor rho/(1-rho).

func predictE07(in Input, r *Report) {
	seconds := float64(scale(in.Quick, 300, 3600))
	n := seconds / 0.25
	const period = 0.25
	s := 128 * mBlockBytes / 5.5e6
	rho := s / period
	drain := rho / (1 - rho)

	// Stall schedule: first at t=30, then gaps uniform in [25, 35]; the
	// injector disarms at seconds+10, and only stalls starting before the
	// last request can strand anything.
	maxStalls := math.Floor((seconds-30)/25) + 1

	for _, buffer := range []float64{0.5, 1, 2, 4} {
		for _, recal := range []float64{0.5, 1.5, 3.0} {
			key := fmt.Sprintf("miss_b%v_r%v", buffer, recal)
			// Per stall, at most the arrivals that must wait beyond the
			// buffer, the backlog-drain stragglers, and two boundary
			// requests can miss.
			perStall := math.Max(0, recal-buffer)/period + recal*drain/period + 2
			r.check(in, "md1-drain", key, maxStalls*perStall/n, Upper, 0)

			// A stall longer than the buffer must strand arrivals; count
			// only stalls early enough for their misses to land within
			// the offered window.
			if recal-buffer >= 0.5 {
				minStalls := math.Floor((seconds-30-(recal+buffer+1))/35) + 1
				perStallLow := math.Max(0, math.Floor((recal-buffer)/period)-1)
				if minStalls > 0 && perStallLow > 0 {
					r.check(in, "md1-drain", key, minStalls*perStallLow/n, Lower, 0)
				}
			}
		}
	}

	// Occupancy of the most lightly-stalled cell (buffer 4, recal 0.5):
	// busy time is bounded below by the pure service demand n*S plus one
	// seek per 1000-request address wrap, and above by that plus every
	// stall's full length (the station stays occupied through a stall it
	// entered busy).
	seeks := math.Ceil(n/1000) * mFlatSeek
	r.checkSeries(in, "station-occupancy", "busy[video,b4-r0.5]", "b4-r0.5", "video",
		busySeconds, n*s+seeks, Lower, 0.005)
	r.checkSeries(in, "station-occupancy", "busy[video,b4-r0.5]", "b4-r0.5", "video",
		busySeconds, n*s+seeks+maxStalls*0.5, Upper, 0.005)
}

// ---------------------------------------------------------------------------
// E08 — multi-zone geometry: the zone model is exact (no randomness).

func predictE08(in Input, r *Report) {
	blocks := scale(in.Quick, 20000, 100000)
	g := diskGeom{
		capacity: 1 << 22,
		zones:    []diskZone{{0.3, 10e6}, {0.4, 7.5e6}, {0.3, 5e6}},
		seek:     0.002,
		aging:    1,
	}
	bws := map[string]float64{}
	for _, pos := range []struct {
		name string
		frac float64
	}{{"outer", 0.0}, {"middle", 0.45}, {"inner", 0.75}} {
		start := int64(pos.frac * float64(g.capacity))
		bw := float64(blocks) * mBlockBytes / g.readSeconds(start, blocks)
		bws[pos.name] = bw
		r.check(in, "disk-model", "bw_"+pos.name, bw, TwoSided, 1e-9)
	}
	r.check(in, "disk-model", "zone_ratio", bws["outer"]/bws["inner"], TwoSided, 1e-9)
}

// ---------------------------------------------------------------------------
// E13 — aged layouts: aging scales bandwidth exactly; recreated-afresh
// drives must be identical.

func predictE13(in Input, r *Report) {
	blocks := scale(in.Quick, 20000, 100000)
	agings := []float64{1.0, 0.85, 0.65, 0.5}
	bw := make([]float64, len(agings))
	for i, ag := range agings {
		g := hawkGeom()
		g.aging = ag
		bw[i] = float64(blocks) * mBlockBytes / g.readSeconds(0, blocks)
		r.check(in, "disk-model", fmt.Sprintf("bw_%d", i), bw[i], TwoSided, 1e-9)
	}
	r.check(in, "disk-model", "age_ratio", bw[0]/bw[len(bw)-1], TwoSided, 1e-9)
	r.check(in, "disk-model", "fresh_identical", 1, TwoSided, 0)
}

// ---------------------------------------------------------------------------
// E14 — DHT under garbage collection: op-capacity ceilings. Four nodes
// serve one op per quantum; a put costs two replica ops (synchronous) or
// ~1.5 healthy-node acks once the stutterer is flagged (half the key
// space has node 0 as a replica). Node 0's GC runs 35 ms pauses every
// 40 ms starting at t=40ms.

func predictE14(in Input, r *Report) {
	dur := float64(scale(in.Quick, 300, 1500)) * 1e-3
	opsPerNode := dur / mQuantum
	healthy0 := gcHealthySeconds(dur) / mQuantum

	capHealthy := 4 * opsPerNode / 2
	r.check(in, "queue-capacity", "puts_healthy", capHealthy, Upper, 0.02)
	// The closed loop keeps the bricks near saturation; the floor is
	// calibrated, not derived (see DESIGN.md section 13).
	r.check(in, "queue-capacity", "puts_healthy", 0.6*capHealthy, Lower, 0)

	r.check(in, "queue-capacity", "puts_gc_sync", (3*opsPerNode+healthy0)/2, Upper, 0.05)
	r.check(in, "queue-capacity", "puts_gc_adaptive", (3*opsPerNode+healthy0)/1.5, Upper, 0.05)

	// The design claims: adaptive acks ride out the stutter (more puts
	// than synchronous replication), at a hinted-handoff cost that must
	// actually appear; and no GC variant beats the healthy run.
	gcSync, _ := in.Table.Metric("puts_gc_sync")
	healthyPuts, _ := in.Table.Metric("puts_healthy")
	r.check(in, "queue-capacity", "puts_gc_adaptive", gcSync, Lower, 0)
	r.check(in, "queue-capacity", "puts_gc_sync", healthyPuts, Upper, 0)
	r.check(in, "queue-capacity", "puts_gc_adaptive", healthyPuts, Upper, 0)
	r.check(in, "queue-capacity", "hints", 1, Lower, 0)
}

// gcHealthySeconds is node 0's un-paused time in [0, dur] under the E14
// GC schedule (35 ms pauses at t = 40ms, 80ms, ...).
func gcHealthySeconds(dur float64) float64 {
	healthy := dur
	for k := 1; ; k++ {
		start := 0.040 * float64(k)
		if start >= dur {
			break
		}
		end := start + 0.035
		if end > dur {
			end = dur
		}
		healthy -= end - start
	}
	return healthy
}

// ---------------------------------------------------------------------------
// E15 — distributed sort with a CPU hog: 64 equal partitions on 4
// workers; the hog halves node 0. Static partitioning pays exactly 2x;
// pull-based scheduling obeys list-scheduling bounds over the degraded
// speed vector.

func predictE15(in Input, r *Report) {
	records := scale(in.Quick, 1<<18, 1<<20)
	const partitions = 64
	u := float64(records / partitions) // units per task (n log n model is identity here)
	w := float64(partitions) * u       // total units
	perWorker := w / mWorkers * mQuantum * 1e3
	sTotal := 0.5 + float64(mWorkers-1) // hogged speed sum

	exact := func(sched string, healthy, hogged float64) {
		r.check(in, "list-schedule", "healthy_ms_"+sched, healthy, TwoSided, 0.01)
		r.check(in, "list-schedule", "hog_ms_"+sched, hogged, TwoSided, 0.01)
		r.check(in, "list-schedule", "slowdown_"+sched, hogged/healthy, TwoSided, 0.01)
	}
	// Static partitioning: node 0's fixed quarter at half speed is the
	// whole story — the paper's factor of two.
	exact("static-partition", perWorker, 2*perWorker)

	// Gauged partitioning: the probe measures speeds {0.5,1,1,1}; the
	// proportional split floors to {9,18,18} tasks and hands the
	// remainder (19) to the last worker, which becomes the makespan.
	r.check(in, "list-schedule", "healthy_ms_gauged-partition", perWorker, TwoSided, 0.01)
	r.check(in, "list-schedule", "hog_ms_gauged-partition", 19*u*mQuantum*1e3, TwoSided, 0.02)

	// Work queue: healthy is the perfect split; hogged obeys the
	// list-scheduling bracket [W/S, W/S + u/s_min].
	r.check(in, "list-schedule", "healthy_ms_work-queue", perWorker, TwoSided, 0.01)
	lower := w / sTotal * mQuantum * 1e3
	r.check(in, "list-schedule", "hog_ms_work-queue", lower, Lower, 0.005)
	r.check(in, "list-schedule", "hog_ms_work-queue", lower+u/0.5*mQuantum*1e3, Upper, 0.01)

	// Detect-avoid: healthy is the static split; under the hog it can do
	// no worse than never migrating (the static 2x) and no better than
	// the bandwidth floor.
	r.check(in, "list-schedule", "healthy_ms_detect-avoid", perWorker, TwoSided, 0.01)
	r.check(in, "list-schedule", "hog_ms_detect-avoid", lower, Lower, 0.005)
	r.check(in, "list-schedule", "hog_ms_detect-avoid", 2*perWorker, Upper, 0.01)
}

// ---------------------------------------------------------------------------
// E23 — Shasha-Turek slow-down failures: the Dwork-Halpern-Waarts-style
// total-work ledger. 48 tasks of u units on 4 workers; worker 0 drops to
// 2% speed at degradeAt = W*q/16. Reconciliation (at-most-once claims)
// bounds duplicate launches by MaxClones per task and wasted work by one
// task's units per duplicate.

func predictE23(in Input, r *Report) {
	const nTasks = 48
	u := float64(scale(in.Quick, 2048, 8192))
	w := nTasks * u
	degradeAt := w * mQuantum / 16
	lowerMs := w / mWorkers * mQuantum * 1e3
	drainMs := (degradeAt + w*mQuantum/3) * 1e3 // healthy trio drains the queue

	for _, sched := range []string{"work-queue", "hedged", "reissue"} {
		// DHW total-work bound: wasted work never exceeds the clone
		// budget times the required work, and per-duplicate never exceeds
		// one task.
		maxClones := 1.0
		if sched == "work-queue" {
			maxClones = 0
		}
		r.check(in, "dhw-waste", "wasted_"+sched, maxClones*w, Upper, 0)
		r.check(in, "dhw-waste", "dups_"+sched, maxClones*nTasks, Upper, 0)
		dups, _ := in.Table.Metric("dups_" + sched)
		r.check(in, "dhw-waste", "wasted_"+sched, dups*u, Upper, 0)
		r.check(in, "dhw-waste", "makespan_ms_"+sched, lowerMs, Lower, 0)
	}

	// Makespan ceilings: the un-replicated work queue strands its last
	// task on the stutterer (u/0.02); hedged clones it once the queue
	// drains; reissue requeues it after timeoutFactor (3) medians.
	r.check(in, "dhw-waste", "makespan_ms_work-queue",
		(degradeAt+u*mQuantum/0.02)*1e3+drainMs-degradeAt*1e3, Upper, 0.02)
	r.check(in, "dhw-waste", "makespan_ms_hedged", drainMs+2*u*mQuantum*1e3, Upper, 0.02)
	r.check(in, "dhw-waste", "makespan_ms_reissue", drainMs+(3+2.25)*u*mQuantum*1e3, Upper, 0.02)
}

// ---------------------------------------------------------------------------
// E29 — bulk-synchronous parallelism: every barrier pays the straggler.
// R rounds of V units per worker on 4 workers; the slow node runs at 25%.

func predictE29(in Input, r *Report) {
	rounds := float64(scale(in.Quick, 4, 8))
	v := float64(scale(in.Quick, 4096, 16384))
	grain := v / 16
	sTotal := 0.25 + float64(mWorkers-1)

	// Static rounds: healthy is R*V*q exactly; the slow node stretches
	// every round by 1/0.25.
	healthy := rounds * v * mQuantum * 1e3
	r.check(in, "bsp-superstep", "healthy_ms_static", healthy, TwoSided, 0.005)
	r.check(in, "bsp-superstep", "slow_ms_static", 4*healthy, TwoSided, 0.005)
	r.check(in, "bsp-superstep", "slowdown_static", 4, TwoSided, 0.01)

	// Elastic rounds: the barrier remains, but within a round the pool
	// obeys the list-scheduling bracket over grains.
	r.check(in, "bsp-superstep", "healthy_ms_elastic", healthy, TwoSided, 0.01)
	roundLower := mWorkers * v * mQuantum / sTotal
	roundUpper := roundLower + grain*mQuantum/0.25
	r.check(in, "bsp-superstep", "slow_ms_elastic", rounds*roundLower*1e3, Lower, 0.005)
	r.check(in, "bsp-superstep", "slow_ms_elastic", rounds*roundUpper*1e3, Upper, 0.01)
	r.check(in, "bsp-superstep", "slowdown_elastic", mWorkers/sTotal, Lower, 0.02)
	r.check(in, "bsp-superstep", "slowdown_elastic", roundUpper/(v*mQuantum), Upper, 0.02)
}

// ---------------------------------------------------------------------------
// E32 — fleet-scale peer detection. Fault injection is i.i.d. per disk
// (each disk's forked RNG stream draws once against the stutter and
// fail-stop fractions), so the injected counts are Binomial(n, p) and
// must sit within six sigma of n*p at any seed. Detection is conservative
// by construction — a detected fault was injected — and at the committed
// seed the detector is exact: every injected fault found, zero false
// alarms, at every fleet size in the suite.

func predictE32(in Input, r *Report) {
	fleets := []int{512, 2048}
	if !in.Quick {
		fleets = []int{1 << 14, 1 << 17, 1 << 20}
	}
	faults := []struct {
		kind string
		p    float64
	}{
		{"stutter", 1.0 / 512},
		{"fail", 1.0 / 1024},
	}
	for _, n := range fleets {
		for _, f := range faults {
			mean := float64(n) * f.p
			sigma := math.Sqrt(float64(n) * f.p * (1 - f.p))
			r.check(in, "binomial-injection", fmt.Sprintf("injected_%s_%d", f.kind, n),
				mean, TwoSided, 6*sigma/mean)

			// Detection never exceeds injection (a flagged healthy disk
			// counts as a false alarm, not a detection) — any seed.
			injected, _ := in.Table.Metric(fmt.Sprintf("injected_%s_%d", f.kind, n))
			detectedKey := fmt.Sprintf("detected_%s_%d", f.kind, n)
			r.check(in, "peer-detection", detectedKey, injected, Upper, 0)
			if in.Seed == 42 {
				// The committed seed: recall is exactly 1 at every scale.
				r.check(in, "peer-detection", detectedKey, injected, TwoSided, 0)
			}
		}
		if in.Seed == 42 {
			r.check(in, "peer-detection", fmt.Sprintf("false_alarms_%d", n), 0, TwoSided, 0)
			// Detection lag: the first degraded sample lands one tick after
			// mid-tick injection, and the 4-sample window median crosses the
			// threshold within two more — so the mean lag sits in [1, 3]
			// sweeps whenever anything was flagged.
			if injected, _ := in.Table.Metric(fmt.Sprintf("injected_fail_%d", n)); injected > 0 {
				lagKey := fmt.Sprintf("lag_ticks_%d", n)
				r.check(in, "peer-detection", lagKey, 1, Lower, 0)
				r.check(in, "peer-detection", lagKey, 3, Upper, 0)
			}
		}
	}
}

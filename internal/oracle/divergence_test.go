package oracle

import (
	"testing"

	"failstutter/internal/experiments"
	"failstutter/internal/raid"
	"failstutter/internal/sim"
)

// TestOracleDivergence proves the oracle actually bites: re-run the E01
// scenario with the slow pair's service rate perturbed to twice what the
// model assumes (0.5 MB/s instead of 0.25 MB/s) and feed the result
// through the E01 predictor. The analytic makespan no longer matches and
// the conformance report must flag it — this is the failure CI's gating
// leg exists to catch.
func TestOracleDivergence(t *testing.T) {
	s := sim.New()
	perturbed := testArray(s, []float64{1e6, 1e6, 1e6, 2 * mRateSmall})
	res, err := raid.WriteAndMeasure(s, perturbed, raid.StaticEqual{}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	tbl := experiments.NewTable("E01", "perturbed scenario 1", "divergence injection", "design")
	tbl.SetMetric("throughput", res.Throughput)

	rep, err := Analyze(Input{Table: tbl, Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures() == 0 {
		t.Fatal("doubled service rate produced a clean conformance report")
	}
	flagged := false
	for _, row := range rep.Rows {
		if row.Quantity == "throughput" && row.Bound == TwoSided && !row.Pass() {
			flagged = true
		}
	}
	if !flagged {
		t.Fatal("the two-sided throughput row did not flag the perturbation")
	}

	// The unperturbed run stays clean: the flag above is signal, not a
	// hair-trigger tolerance.
	s2 := sim.New()
	baseline := testArray(s2, []float64{1e6, 1e6, 1e6, mRateSmall})
	res2, err := raid.WriteAndMeasure(s2, baseline, raid.StaticEqual{}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	tbl2 := experiments.NewTable("E01", "baseline scenario 1", "control", "design")
	tbl2.SetMetric("throughput", res2.Throughput)
	rep2, err := Analyze(Input{Table: tbl2, Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep2.Rows {
		if row.Quantity == "throughput" && !row.Pass() {
			t.Fatalf("baseline run flagged: %s/%s residual %+g", row.Model, row.Quantity, row.Residual())
		}
	}
}

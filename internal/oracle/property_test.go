package oracle

import (
	"fmt"
	"testing"

	"failstutter/internal/cluster"
	"failstutter/internal/device"
	"failstutter/internal/raid"
	"failstutter/internal/sim"
)

// testArray builds a mirror-pair array of single-zone disks at the given
// per-pair bandwidths, mirroring the experiments' scenario substrate.
func testArray(s *sim.Simulator, rates []float64) *raid.Array {
	pairs := make([]*raid.MirrorPair, len(rates))
	for i, rate := range rates {
		mk := func(side string) *device.Disk {
			d, err := device.NewDisk(s, device.DiskParams{
				Name:           fmt.Sprintf("p%d-%s", i, side),
				CapacityBlocks: 1 << 24,
				BlockBytes:     mBlockBytes,
				Zones:          []device.Zone{{CapacityFrac: 1, Bandwidth: rate}},
				SeekTime:       mFlatSeek,
				AgingFactor:    1,
			})
			if err != nil {
				panic(err)
			}
			return d
		}
		pairs[i] = raid.NewMirrorPair(s, i, mk("a"), mk("b"))
	}
	return raid.NewArray(s, pairs, mBlockBytes)
}

// Property (1000 seeds): the fork-join bounds hold in the right direction
// for arbitrary slow-pair rates — throughput never beats N*slowest, and
// the exact makespan model lands within its band.
func TestPropertyForkJoinBounds(t *testing.T) {
	const blocks = 400
	for seed := uint64(0); seed < 1000; seed++ {
		rng := sim.NewRNG(seed)
		slow := rng.Uniform(0.1e6, 1e6)
		rates := []float64{1e6, 1e6, 1e6, slow}
		s := sim.New()
		res, err := raid.WriteAndMeasure(s, testArray(s, rates), raid.StaticEqual{}, blocks)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ceiling := Row{Predicted: 4 * slow, Observed: res.Throughput, Bound: Upper, Tol: 0}
		if !ceiling.Pass() {
			t.Fatalf("seed %d: throughput %g beats N*b ceiling %g", seed, res.Throughput, 4*slow)
		}
		span := mFlatSeek + float64(blocks/4)*mBlockBytes/slow
		exact := Row{
			Predicted: float64(blocks) * mBlockBytes / span,
			Observed:  res.Throughput, Bound: TwoSided, Tol: 0.005,
		}
		if !exact.Pass() {
			t.Fatalf("seed %d: throughput %g off exact model %g (residual %+g)",
				seed, res.Throughput, exact.Predicted, exact.Residual())
		}
	}
}

// Property (1000 seeds): the DHW-style waste ledger holds for arbitrary
// mid-job degradations — duplicates never exceed the clone budget, wasted
// work never exceeds one task's units per duplicate, and the makespan
// never beats the perfect-parallelism floor.
func TestPropertyDHWWasteBounds(t *testing.T) {
	const (
		nTasks  = 12
		units   = 64
		workers = 4
	)
	scheds := []cluster.Scheduler{
		cluster.Hedged{MaxClones: 1},
		cluster.Reissue{TimeoutFactor: 3, MaxClones: 1},
	}
	for seed := uint64(0); seed < 1000; seed++ {
		rng := sim.NewRNG(seed)
		at := rng.Uniform(0, float64(nTasks*units)*mQuantum/workers)
		factor := rng.Uniform(0.01, 0.5)
		sched := scheds[seed%2]
		s := sim.New()
		p := cluster.NewPool(s, workers, mQuantum)
		p.SetSpeedAt(0, at, factor)
		rep := sched.Run(p, cluster.UniformTasks(nTasks, units))

		if row := (Row{Predicted: nTasks, Observed: float64(rep.Duplicates), Bound: Upper, Tol: 0}); !row.Pass() {
			t.Fatalf("seed %d %s: %d duplicates beyond the clone budget", seed, rep.Scheduler, rep.Duplicates)
		}
		wasteCap := float64(rep.Duplicates) * units
		if row := (Row{Predicted: wasteCap, Observed: rep.WastedUnits, Bound: Upper, Tol: 1e-9}); !row.Pass() {
			t.Fatalf("seed %d %s: wasted %g > %g (dups %d)", seed, rep.Scheduler, rep.WastedUnits, wasteCap, rep.Duplicates)
		}
		floor := float64(nTasks*units) / workers * mQuantum
		if row := (Row{Predicted: floor, Observed: float64(rep.Makespan), Bound: Lower, Tol: 1e-9}); !row.Pass() {
			t.Fatalf("seed %d %s: makespan %g beats the %g floor", seed, rep.Scheduler, rep.Makespan, floor)
		}
	}
}

// Property (1000 seeds): the BSP superstep bounds hold for arbitrary slow
// speeds — static rounds pay exactly 1/speed, elastic rounds stay inside
// the list-scheduling bracket.
func TestPropertyBSPBounds(t *testing.T) {
	const (
		rounds  = 2
		v       = 256
		grain   = 16
		workers = 4
	)
	for seed := uint64(0); seed < 1000; seed++ {
		rng := sim.NewRNG(seed)
		speed := rng.Uniform(0.05, 1)

		run := func(elastic bool) float64 {
			s := sim.New()
			p := cluster.NewPool(s, workers, mQuantum)
			p.Workers()[0].SetSpeed(speed)
			rep := cluster.RunBSP(p, cluster.BSPParams{
				Rounds: rounds, UnitsPerWorkerRound: v, Elastic: elastic, Grain: grain,
			})
			return float64(rep.Makespan)
		}

		static := run(false)
		pred := rounds * v * mQuantum / speed
		if row := (Row{Predicted: pred, Observed: static, Bound: TwoSided, Tol: 0.01}); !row.Pass() {
			t.Fatalf("seed %d: static makespan %g, want %g (speed %g)", seed, static, pred, speed)
		}

		elastic := run(true)
		sTotal := speed + workers - 1
		lower := rounds * workers * v * mQuantum / sTotal
		upper := rounds * (workers*v*mQuantum/sTotal + grain*mQuantum/speed)
		if row := (Row{Predicted: lower, Observed: elastic, Bound: Lower, Tol: 0.005}); !row.Pass() {
			t.Fatalf("seed %d: elastic makespan %g beats capacity floor %g (speed %g)", seed, elastic, lower, speed)
		}
		if row := (Row{Predicted: upper, Observed: elastic, Bound: Upper, Tol: 0.01}); !row.Pass() {
			t.Fatalf("seed %d: elastic makespan %g above list bound %g (speed %g)", seed, elastic, upper, speed)
		}
	}
}

// Package stats implements the descriptive and online statistics used by
// the stutter detectors and the experiment harness: means, quantiles,
// robust dispersion (MAD), exponentially weighted moving averages, sliding
// windows, and least-squares trend estimation.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN for fewer than
// one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies xs, leaving the input
// unmodified, and returns NaN for an empty slice or out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted computes the q-quantile of an already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MAD returns the median absolute deviation from the median, a robust
// dispersion measure unaffected by a minority of wild outliers — exactly
// the property needed when a few components stutter.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return Median(devs)
}

// CoeffVar returns the coefficient of variation (stddev / mean), or NaN if
// the mean is zero or the slice is empty.
func CoeffVar(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 || math.IsNaN(m) {
		return math.NaN()
	}
	return Stddev(xs) / m
}

package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sameFloat reports bitwise-meaningful equality: equal values or both NaN.
func sameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func randSlice(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch rng.Intn(10) {
		case 0:
			xs[i] = float64(rng.Intn(5)) // force duplicates
		default:
			xs[i] = rng.NormFloat64() * 100
		}
	}
	return xs
}

// Property: Select returns exactly the k-th element of the sorted slice,
// for every k, on random data with duplicates.
func TestSelectMatchesSortProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(40)
		xs := randSlice(rng, n)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for k := 0; k < n; k++ {
			work := append([]float64(nil), xs...)
			got := Select(work, k)
			if got != sorted[k] {
				t.Fatalf("trial %d: Select(%v, %d) = %v, want %v", trial, xs, k, got, sorted[k])
			}
			// Partition invariant: xs[k] in place, halves on either side.
			for i := 0; i < k; i++ {
				if floatLess(work[k], work[i]) {
					t.Fatalf("trial %d: prefix element %v above selected %v", trial, work[i], work[k])
				}
			}
			for i := k + 1; i < n; i++ {
				if floatLess(work[i], work[k]) {
					t.Fatalf("trial %d: suffix element %v below selected %v", trial, work[i], work[k])
				}
			}
		}
	}
}

func TestSelectNaNOrdering(t *testing.T) {
	nan := math.NaN()
	xs := []float64{3, nan, 1, nan, 2}
	if got := Select(append([]float64(nil), xs...), 0); !math.IsNaN(got) {
		t.Fatalf("Select k=0 = %v, want NaN first like sort.Float64s", got)
	}
	if got := Select(append([]float64(nil), xs...), 2); got != 1 {
		t.Fatalf("Select k=2 = %v, want 1", got)
	}
	if got := Select(append([]float64(nil), xs...), 4); got != 3 {
		t.Fatalf("Select k=4 = %v, want 3", got)
	}
}

func TestSelectOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Select out of range did not panic")
		}
	}()
	Select([]float64{1, 2}, 2)
}

// Property: QuantileInPlace is bit-identical to the copy-and-sort
// Quantile, including interpolated positions, on random data.
func TestQuantileInPlaceMatchesQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(30)
		xs := randSlice(rng, n)
		q := rng.Float64()
		if trial%5 == 0 {
			q = []float64{0, 0.25, 0.5, 0.75, 1}[rng.Intn(5)]
		}
		want := Quantile(xs, q)
		got := QuantileInPlace(append([]float64(nil), xs...), q)
		if !sameFloat(got, want) {
			t.Fatalf("trial %d: QuantileInPlace(%v, %v) = %v, want %v", trial, xs, q, got, want)
		}
	}
	if !math.IsNaN(QuantileInPlace(nil, 0.5)) || !math.IsNaN(QuantileInPlace([]float64{1}, -0.1)) {
		t.Fatal("degenerate QuantileInPlace not NaN")
	}
	if !sameFloat(MedianInPlace([]float64{3, 1, 2}), 2) {
		t.Fatal("MedianInPlace wrong")
	}
}

func TestQuantileSortedMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 1000; trial++ {
		xs := randSlice(rng, 1+rng.Intn(20))
		sort.Float64s(xs)
		q := rng.Float64()
		if got, want := QuantileSorted(xs, q), Quantile(xs, q); !sameFloat(got, want) {
			t.Fatalf("QuantileSorted = %v, want %v", got, want)
		}
	}
}

// Property: a slice maintained through SortedInsert/SortedRemove always
// equals sorting the surviving multiset.
func TestSortedInsertRemoveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 1000; trial++ {
		var s []float64
		var live []float64
		for op := 0; op < 60; op++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				x := live[i]
				live = append(live[:i], live[i+1:]...)
				s = SortedRemove(s, x)
			} else {
				x := float64(rng.Intn(8))
				live = append(live, x)
				s = SortedInsert(s, x)
			}
			want := append([]float64(nil), live...)
			sort.Float64s(want)
			if len(s) != len(want) {
				t.Fatalf("trial %d: len %d, want %d", trial, len(s), len(want))
			}
			for i := range want {
				if s[i] != want[i] {
					t.Fatalf("trial %d: maintained %v, want %v", trial, s, want)
				}
			}
		}
	}
	if got := SortedRemove([]float64{1, 2}, 5); len(got) != 2 {
		t.Fatal("SortedRemove of absent value changed the slice")
	}
	nan := math.NaN()
	s := SortedInsert(SortedInsert(nil, 1), nan)
	if !math.IsNaN(s[0]) || s[1] != 1 {
		t.Fatalf("NaN not ordered first: %v", s)
	}
	if s = SortedRemove(s, nan); len(s) != 1 || s[0] != 1 {
		t.Fatalf("NaN not removed: %v", s)
	}
}

func TestSearchSorted(t *testing.T) {
	s := []float64{1, 2, 2, 4}
	for _, tc := range []struct {
		x    float64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 3}, {4, 3}, {5, 4}} {
		if got := SearchSorted(s, tc.x); got != tc.want {
			t.Fatalf("SearchSorted(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestSelectAndQuantileInPlaceDoNotAllocate(t *testing.T) {
	xs := benchData(1024)
	work := make([]float64, len(xs))
	if n := testing.AllocsPerRun(100, func() {
		copy(work, xs)
		Select(work, 512)
	}); n != 0 {
		t.Fatalf("Select allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		copy(work, xs)
		QuantileInPlace(work, 0.99)
	}); n != 0 {
		t.Fatalf("QuantileInPlace allocates %v per run", n)
	}
}

// Property: QuantileSortedExcluding equals copying the slice minus the
// skipped element and reading QuantileSorted off the copy, for every skip
// index and random q, on random data with duplicates.
func TestQuantileSortedExcludingMatchesCopyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1000; trial++ {
		xs := randSlice(rng, 2+rng.Intn(20))
		sort.Float64s(xs)
		skip := rng.Intn(len(xs))
		q := rng.Float64()
		rest := append(append([]float64(nil), xs[:skip]...), xs[skip+1:]...)
		if got, want := QuantileSortedExcluding(xs, skip, q), QuantileSorted(rest, q); !sameFloat(got, want) {
			t.Fatalf("trial %d: QuantileSortedExcluding(%v, %d, %v) = %v, want %v",
				trial, xs, skip, q, got, want)
		}
	}
	if !math.IsNaN(QuantileSortedExcluding([]float64{1}, 0, 0.5)) {
		t.Fatal("single-element exclusion should be NaN")
	}
	if !math.IsNaN(QuantileSortedExcluding([]float64{1, 2}, 2, 0.5)) {
		t.Fatal("out-of-range skip should be NaN")
	}
}

package stats

import "math"

// EWMA is an exponentially weighted moving average. With smoothing factor
// alpha in (0, 1], each observation contributes alpha of its value; higher
// alpha reacts faster but is noisier. The first observation initializes the
// average directly.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. It panics if
// alpha is outside (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Observe folds x into the average.
func (e *EWMA) Observe(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value += e.alpha * (x - e.value)
}

// Value returns the current average, or NaN before any observation.
func (e *EWMA) Value() float64 {
	if !e.init {
		return math.NaN()
	}
	return e.value
}

// Initialized reports whether at least one observation has been folded in.
func (e *EWMA) Initialized() bool { return e.init }

// Reset discards all history.
func (e *EWMA) Reset() { e.init = false; e.value = 0 }

// Welford maintains a numerically stable online mean and variance.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Observe folds x into the accumulator.
func (w *Welford) Observe(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean, or NaN with no observations.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the running population variance, or NaN with no
// observations.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the running population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

package stats

import "math"

// Window is a fixed-capacity sliding window over the most recent
// observations, backed by a ring buffer. Detectors use it to compare a
// component's recent behaviour against its performance specification.
type Window struct {
	buf  []float64
	head int
	n    int
}

// NewWindow returns a window holding up to capacity observations. It
// panics on a non-positive capacity.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic("stats: window capacity must be positive")
	}
	return &Window{buf: make([]float64, capacity)}
}

// Observe appends x, evicting the oldest observation when full.
func (w *Window) Observe(x float64) {
	w.buf[w.head] = x
	w.head = (w.head + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// Len returns the number of stored observations.
func (w *Window) Len() int { return w.n }

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Full reports whether the window has reached capacity.
func (w *Window) Full() bool { return w.n == len(w.buf) }

// Values returns the stored observations, oldest first, as a fresh slice.
func (w *Window) Values() []float64 {
	out := make([]float64, 0, w.n)
	start := w.head - w.n
	if start < 0 {
		start += len(w.buf)
	}
	for i := 0; i < w.n; i++ {
		out = append(out, w.buf[(start+i)%len(w.buf)])
	}
	return out
}

// Mean returns the mean of the stored observations, or NaN when empty.
func (w *Window) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	sum := 0.0
	start := w.head - w.n
	if start < 0 {
		start += len(w.buf)
	}
	for i := 0; i < w.n; i++ {
		sum += w.buf[(start+i)%len(w.buf)]
	}
	return sum / float64(w.n)
}

// Quantile returns the q-quantile of the stored observations.
func (w *Window) Quantile(q float64) float64 { return Quantile(w.Values(), q) }

// Median returns the 0.5-quantile of the stored observations.
func (w *Window) Median() float64 { return w.Quantile(0.5) }

// Reset discards all observations.
func (w *Window) Reset() { w.head, w.n = 0, 0 }

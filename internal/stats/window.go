package stats

import "math"

// Window is a fixed-capacity sliding window over the most recent
// observations, backed by a ring buffer. Detectors use it to compare a
// component's recent behaviour against its performance specification.
//
// All steady-state statistics are incremental and allocation-free:
//
//   - Mean and Variance come from running moments (Welford updated on
//     insert and evict, exactly recomputed every capacity evictions to
//     bound floating-point drift);
//   - Median and Quantile read a sorted companion of the ring, maintained
//     on insert/evict with a binary search plus a bounded memmove, so a
//     quantile query never copies or sorts.
//
// The companion keeps the same total order as sort.Float64s (NaNs first,
// then ascending), so quantiles are identical to sorting Values().
type Window struct {
	buf    []float64 // ring, arrival order
	sorted []float64 // same multiset, ascending; first n entries live
	head   int
	n      int

	mean   float64 // running mean of non-NaN values
	m2     float64 // running sum of squared deviations (non-NaN)
	mn     int     // non-NaN value count
	nan    int     // NaN value count
	evicts int     // evictions since the last exact moment recompute
}

// NewWindow returns a window holding up to capacity observations. It
// panics on a non-positive capacity.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic("stats: window capacity must be positive")
	}
	return &Window{
		buf:    make([]float64, capacity),
		sorted: make([]float64, capacity),
	}
}

// Observe appends x, evicting the oldest observation when full.
func (w *Window) Observe(x float64) {
	if w.n == len(w.buf) {
		old := w.buf[w.head]
		w.removeSorted(old)
		w.n--
		w.removeMoment(old) // after n--: a recompute must see only survivors
	}
	w.buf[w.head] = x
	w.head = (w.head + 1) % len(w.buf)
	w.insertSorted(x)
	w.addMoment(x)
	w.n++
}

// insertSorted places x into the sorted companion (w.n live entries).
func (w *Window) insertSorted(x float64) {
	idx := searchFirstGE(w.sorted[:w.n], x)
	copy(w.sorted[idx+1:w.n+1], w.sorted[idx:w.n])
	w.sorted[idx] = x
}

// removeSorted drops one occurrence of x from the sorted companion.
func (w *Window) removeSorted(x float64) {
	idx := searchFirstGE(w.sorted[:w.n], x)
	copy(w.sorted[idx:w.n-1], w.sorted[idx+1:w.n])
}

func (w *Window) addMoment(x float64) {
	if math.IsNaN(x) {
		w.nan++
		return
	}
	w.mn++
	d := x - w.mean
	w.mean += d / float64(w.mn)
	w.m2 += d * (x - w.mean)
}

func (w *Window) removeMoment(x float64) {
	if math.IsNaN(x) {
		w.nan--
		return
	}
	w.evicts++
	if w.mn == 1 {
		w.mn, w.mean, w.m2 = 0, 0, 0
		return
	}
	old := w.mean
	w.mean = (float64(w.mn)*w.mean - x) / float64(w.mn-1)
	w.m2 -= (x - old) * (x - w.mean)
	w.mn--
	if w.m2 < 0 {
		w.m2 = 0 // guard against drift below zero
	}
	if w.evicts >= len(w.buf) {
		w.recomputeMoments()
	}
}

// recomputeMoments rebuilds the running moments exactly from the live
// values. Called every capacity evictions, it bounds accumulated
// floating-point drift at amortized O(1) per observation.
func (w *Window) recomputeMoments() {
	w.evicts = 0
	w.mean, w.m2, w.mn = 0, 0, 0
	// Mid-eviction state: head not yet advanced, n already decremented, so
	// the usual head-n origin walks exactly the surviving values.
	start := w.head - w.n
	if start < 0 {
		start += len(w.buf)
	}
	for i := 0; i < w.n; i++ {
		x := w.buf[(start+i)%len(w.buf)]
		if math.IsNaN(x) {
			continue
		}
		w.mn++
		d := x - w.mean
		w.mean += d / float64(w.mn)
		w.m2 += d * (x - w.mean)
	}
}

// Len returns the number of stored observations.
func (w *Window) Len() int { return w.n }

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Full reports whether the window has reached capacity.
func (w *Window) Full() bool { return w.n == len(w.buf) }

// At returns the i-th oldest stored observation, 0 <= i < Len().
func (w *Window) At(i int) float64 {
	if i < 0 || i >= w.n {
		panic("stats: window index out of range")
	}
	start := w.head - w.n
	if start < 0 {
		start += len(w.buf)
	}
	return w.buf[(start+i)%len(w.buf)]
}

// Values returns the stored observations, oldest first, as a fresh slice.
// It allocates on every call; hot paths should use AppendValues with a
// reusable buffer instead.
func (w *Window) Values() []float64 {
	return w.AppendValues(make([]float64, 0, w.n))
}

// AppendValues appends the stored observations, oldest first, to dst and
// returns the extended slice. With a caller-owned dst of sufficient
// capacity it performs no allocation.
func (w *Window) AppendValues(dst []float64) []float64 {
	start := w.head - w.n
	if start < 0 {
		start += len(w.buf)
	}
	for i := 0; i < w.n; i++ {
		dst = append(dst, w.buf[(start+i)%len(w.buf)])
	}
	return dst
}

// Mean returns the mean of the stored observations, or NaN when empty or
// when any stored observation is NaN.
func (w *Window) Mean() float64 {
	if w.n == 0 || w.nan > 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the population variance of the stored observations,
// or NaN when empty or when any stored observation is NaN.
func (w *Window) Variance() float64 {
	if w.n == 0 || w.nan > 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.mn)
}

// Stddev returns the population standard deviation of the stored
// observations.
func (w *Window) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Quantile returns the q-quantile of the stored observations in O(1)
// from the sorted companion, without copying or sorting.
func (w *Window) Quantile(q float64) float64 {
	if w.n == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	return quantileSorted(w.sorted[:w.n], q)
}

// Median returns the 0.5-quantile of the stored observations.
func (w *Window) Median() float64 { return w.Quantile(0.5) }

// Reset discards all observations.
func (w *Window) Reset() {
	w.head, w.n = 0, 0
	w.mean, w.m2, w.mn, w.nan, w.evicts = 0, 0, 0, 0, 0
}

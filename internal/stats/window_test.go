package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWindowFillAndEvict(t *testing.T) {
	w := NewWindow(3)
	if w.Full() || w.Len() != 0 || w.Cap() != 3 {
		t.Fatal("fresh window state wrong")
	}
	w.Observe(1)
	w.Observe(2)
	if w.Full() {
		t.Fatal("window full too early")
	}
	w.Observe(3)
	if !w.Full() {
		t.Fatal("window not full at capacity")
	}
	w.Observe(4) // evicts 1
	vs := w.Values()
	want := []float64{2, 3, 4}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("Values = %v, want %v", vs, want)
		}
	}
}

func TestWindowMeanAndMedian(t *testing.T) {
	w := NewWindow(4)
	for _, v := range []float64{1, 2, 3, 4, 5} { // window holds 2..5
		w.Observe(v)
	}
	if got := w.Mean(); got != 3.5 {
		t.Fatalf("Mean = %v, want 3.5", got)
	}
	if got := w.Median(); got != 3.5 {
		t.Fatalf("Median = %v, want 3.5", got)
	}
}

func TestWindowEmptyStats(t *testing.T) {
	w := NewWindow(4)
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Median()) {
		t.Fatal("empty window stats not NaN")
	}
	if len(w.Values()) != 0 {
		t.Fatal("empty window Values not empty")
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(2)
	w.Observe(1)
	w.Observe(2)
	w.Reset()
	if w.Len() != 0 || len(w.Values()) != 0 {
		t.Fatal("Reset did not clear")
	}
	w.Observe(9)
	if w.Values()[0] != 9 {
		t.Fatal("window unusable after Reset")
	}
}

func TestWindowInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}

// Property: the window always reflects exactly the last min(n, cap)
// observations, in order.
func TestWindowKeepsTailProperty(t *testing.T) {
	f := func(raw []int16, c uint8) bool {
		capacity := int(c%16) + 1
		w := NewWindow(capacity)
		all := make([]float64, 0, len(raw))
		for _, v := range raw {
			x := float64(v)
			w.Observe(x)
			all = append(all, x)
		}
		start := len(all) - capacity
		if start < 0 {
			start = 0
		}
		tail := all[start:]
		got := w.Values()
		if len(got) != len(tail) {
			return false
		}
		for i := range tail {
			if got[i] != tail[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit := FitLine(xs, ys)
	if !close(fit.Slope, 2, 1e-12) || !close(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !close(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	fit := FitLine([]float64{1}, []float64{2})
	if !math.IsNaN(fit.Slope) {
		t.Fatal("single-point fit slope not NaN")
	}
	fit = FitLine([]float64{2, 2, 2}, []float64{1, 2, 3})
	if !math.IsNaN(fit.Slope) {
		t.Fatal("constant-x fit slope not NaN")
	}
}

func TestFitLineConstantY(t *testing.T) {
	fit := FitLine([]float64{1, 2, 3}, []float64{5, 5, 5})
	if !close(fit.Slope, 0, 1e-12) {
		t.Fatalf("constant-y slope = %v, want 0", fit.Slope)
	}
	if !math.IsNaN(fit.R2) {
		t.Fatalf("constant-y R2 = %v, want NaN", fit.R2)
	}
}

func TestTheilSenRobust(t *testing.T) {
	// A declining trend with one wild outlier: OLS gets dragged, Theil-Sen
	// does not.
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 100 - 2*x
	}
	ys[5] = 1000
	ts := TheilSen(xs, ys)
	if math.Abs(ts-(-2)) > 0.5 {
		t.Fatalf("Theil-Sen slope = %v, want ~-2 despite outlier", ts)
	}
	ols := FitLine(xs, ys).Slope
	if math.Abs(ols-(-2)) < 1 {
		t.Fatalf("OLS slope %v unexpectedly robust; test premise broken", ols)
	}
}

func TestTheilSenDegenerate(t *testing.T) {
	if !math.IsNaN(TheilSen([]float64{1}, []float64{1})) {
		t.Fatal("single point not NaN")
	}
	if !math.IsNaN(TheilSen([]float64{2, 2}, []float64{1, 5})) {
		t.Fatal("vertical pair not NaN")
	}
}

func TestFitLineRecoversSlopeProperty(t *testing.T) {
	f := func(m, b int8) bool {
		slope, intercept := float64(m), float64(b)
		xs := make([]float64, 20)
		ys := make([]float64, 20)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = slope*xs[i] + intercept
		}
		fit := FitLine(xs, ys)
		return close(fit.Slope, slope, 1e-9) && close(fit.Intercept, intercept, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package stats

import "math"

// LinearFit is the result of an ordinary-least-squares fit y = Slope*x +
// Intercept over paired samples.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination in [0, 1]; NaN when the
	// response is constant.
	R2 float64
	N  int
}

// FitLine performs an OLS fit of ys against xs. It returns a zero-valued
// fit with N recording the length when fewer than two points are supplied
// or the xs are all identical. The failure-prediction experiment (E22)
// uses a negative slope in a component's rate series as the early-warning
// signal the paper suggests stutter can provide.
func FitLine(xs, ys []float64) LinearFit {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return LinearFit{N: n, Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	mx := Mean(xs[:n])
	my := Mean(ys[:n])
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{N: n, Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := math.NaN()
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2, N: n}
}

// TheilSen estimates a robust trend slope as the median of pairwise
// slopes. It tolerates up to ~29% outliers, which matters when stutter
// events contaminate a rate series that is otherwise drifting. Returns NaN
// for fewer than two points.
func TheilSen(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return math.NaN()
	}
	slopes := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[j] - xs[i]
			if dx == 0 {
				continue
			}
			slopes = append(slopes, (ys[j]-ys[i])/dx)
		}
	}
	if len(slopes) == 0 {
		return math.NaN()
	}
	return Median(slopes)
}

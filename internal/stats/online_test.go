package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMAFirstObservation(t *testing.T) {
	e := NewEWMA(0.3)
	if !math.IsNaN(e.Value()) {
		t.Fatal("uninitialized EWMA not NaN")
	}
	if e.Initialized() {
		t.Fatal("Initialized before observation")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first observation = %v, want 10", e.Value())
	}
}

func TestEWMASmoothing(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(0)
	e.Observe(10) // 0 + 0.5*(10-0) = 5
	if e.Value() != 5 {
		t.Fatalf("EWMA = %v, want 5", e.Value())
	}
	e.Observe(10) // 5 + 0.5*5 = 7.5
	if e.Value() != 7.5 {
		t.Fatalf("EWMA = %v, want 7.5", e.Value())
	}
}

func TestEWMAConvergesToStep(t *testing.T) {
	e := NewEWMA(0.2)
	e.Observe(0)
	for i := 0; i < 200; i++ {
		e.Observe(100)
	}
	if math.Abs(e.Value()-100) > 1e-6 {
		t.Fatalf("EWMA did not converge: %v", e.Value())
	}
}

func TestEWMAAlphaOneTracksExactly(t *testing.T) {
	e := NewEWMA(1)
	for _, v := range []float64{3, 9, -2} {
		e.Observe(v)
		if e.Value() != v {
			t.Fatalf("alpha=1 EWMA = %v, want %v", e.Value(), v)
		}
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(5)
	e.Reset()
	if e.Initialized() || !math.IsNaN(e.Value()) {
		t.Fatal("Reset did not clear state")
	}
}

func TestEWMAInvalidAlphaPanics(t *testing.T) {
	for _, alpha := range []float64{0, -0.1, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha=%v did not panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestEWMABoundedByExtremesProperty(t *testing.T) {
	f := func(raw []int16, a uint8) bool {
		if len(raw) == 0 {
			return true
		}
		alpha := (float64(a%99) + 1) / 100
		e := NewEWMA(alpha)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			x := float64(v)
			e.Observe(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return e.Value() >= lo-1e-9 && e.Value() <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, v := range raw {
			xs[i] = float64(v)
			w.Observe(xs[i])
		}
		if w.N() != uint64(len(xs)) {
			return false
		}
		scale := 1.0 + math.Abs(Mean(xs)) + Variance(xs)
		return close(w.Mean(), Mean(xs), 1e-9*scale) &&
			close(w.Variance(), Variance(xs), 1e-6*scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) {
		t.Fatal("empty Welford not NaN")
	}
}

package stats

import "testing"

func benchData(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64((i*2654435761)%1000) / 10
	}
	return xs
}

func BenchmarkQuantile1k(b *testing.B) {
	xs := benchData(1000)
	for i := 0; i < b.N; i++ {
		Quantile(xs, 0.99)
	}
}

func BenchmarkMAD1k(b *testing.B) {
	xs := benchData(1000)
	for i := 0; i < b.N; i++ {
		MAD(xs)
	}
}

func BenchmarkTheilSen100(b *testing.B) {
	xs := benchData(100)
	ys := benchData(100)
	for i := 0; i < b.N; i++ {
		TheilSen(xs, ys)
	}
}

func BenchmarkQuantileInPlace1k(b *testing.B) {
	xs := benchData(1000)
	work := make([]float64, len(xs))
	for i := 0; i < b.N; i++ {
		copy(work, xs)
		QuantileInPlace(work, 0.99)
	}
}

func BenchmarkMedianInPlace1k(b *testing.B) {
	xs := benchData(1000)
	work := make([]float64, len(xs))
	for i := 0; i < b.N; i++ {
		copy(work, xs)
		MedianInPlace(work)
	}
}

func BenchmarkWindowObserve(b *testing.B) {
	w := NewWindow(64)
	for i := 0; i < b.N; i++ {
		w.Observe(float64(i))
	}
}

func BenchmarkWindowObserveMedian(b *testing.B) {
	w := NewWindow(64)
	for i := 0; i < 64; i++ {
		w.Observe(float64(i % 17))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(float64(i % 13))
		_ = w.Median()
		_ = w.Quantile(0.95)
	}
}

func BenchmarkEWMAObserve(b *testing.B) {
	e := NewEWMA(0.2)
	for i := 0; i < b.N; i++ {
		e.Observe(float64(i % 100))
	}
}

package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) not NaN")
	}
}

func TestVarianceAndStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !close(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := Stddev(xs); !close(got, 2, 1e-12) {
		t.Fatalf("Stddev = %v, want 2", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Fatalf("Min/Max/Sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty Min/Max not NaN")
	}
	if Sum(nil) != 0 {
		t.Fatal("Sum(nil) != 0")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3, 2},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !close(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
	if !math.IsNaN(Quantile([]float64{1}, -0.1)) {
		t.Fatal("q<0 not NaN")
	}
	if !math.IsNaN(Quantile([]float64{1}, 1.1)) {
		t.Fatal("q>1 not NaN")
	}
	if Quantile([]float64{42}, 0.7) != 42 {
		t.Fatal("single-element quantile wrong")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
}

func TestMADRobustToOutlier(t *testing.T) {
	base := []float64{10, 10, 10, 10, 10, 10, 10}
	if got := MAD(base); got != 0 {
		t.Fatalf("MAD of constants = %v", got)
	}
	withOutlier := append(append([]float64{}, base...), 1000)
	if got := MAD(withOutlier); got != 0 {
		t.Fatalf("MAD with one outlier = %v, want 0", got)
	}
}

func TestCoeffVar(t *testing.T) {
	if got := CoeffVar([]float64{10, 10, 10}); got != 0 {
		t.Fatalf("CV of constants = %v", got)
	}
	if !math.IsNaN(CoeffVar([]float64{1, -1})) {
		t.Fatal("CV with zero mean not NaN")
	}
}

// Properties.

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		q1 := float64(a%101) / 100
		q2 := float64(b%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileWithinRangeProperty(t *testing.T) {
	f := func(raw []int16, a uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		q := float64(a%101) / 100
		v := Quantile(xs, q)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBetweenMinMaxProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return Variance(xs) >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedianMatchesSortMidpoint(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		sorted := append([]float64{}, xs...)
		sort.Float64s(sorted)
		var want float64
		n := len(sorted)
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		return close(Median(xs), want, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package stats

import (
	"math"
	"math/rand"
	"testing"
)

// Property: across >= 10k random streams, the window's incremental
// median/quantile (sorted companion) is bit-identical to copying the
// values and sorting, at every step of the stream.
func TestWindowQuantilesMatchSortReferenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for stream := 0; stream < 10000; stream++ {
		capacity := 1 + rng.Intn(16)
		w := NewWindow(capacity)
		steps := 2 + rng.Intn(3*capacity)
		for i := 0; i < steps; i++ {
			var x float64
			if rng.Intn(4) == 0 {
				x = float64(rng.Intn(4)) // force duplicates
			} else {
				x = rng.NormFloat64() * 50
			}
			w.Observe(x)
			ref := w.Values()
			q := rng.Float64()
			if got, want := w.Quantile(q), Quantile(ref, q); !sameFloat(got, want) {
				t.Fatalf("stream %d step %d: Quantile(%v) = %v, want %v (window %v)",
					stream, i, q, got, want, ref)
			}
			if got, want := w.Median(), Median(ref); !sameFloat(got, want) {
				t.Fatalf("stream %d step %d: Median = %v, want %v (window %v)",
					stream, i, got, want, ref)
			}
		}
	}
}

// Property: the running mean/variance track the two-pass reference
// within floating-point noise, across evictions and periodic recomputes.
func TestWindowRunningMomentsMatchReferenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for stream := 0; stream < 500; stream++ {
		capacity := 1 + rng.Intn(32)
		w := NewWindow(capacity)
		scratch := make([]float64, 0, capacity)
		// Long streams exercise many evictions and several recomputes.
		for i := 0; i < 6*capacity; i++ {
			w.Observe(rng.NormFloat64() * 1000)
			scratch = w.AppendValues(scratch[:0])
			wantMean, wantVar := Mean(scratch), Variance(scratch)
			if diff := math.Abs(w.Mean() - wantMean); diff > 1e-9*(1+math.Abs(wantMean)) {
				t.Fatalf("stream %d step %d: Mean = %v, want %v (diff %g)",
					stream, i, w.Mean(), wantMean, diff)
			}
			tol := 1e-9 * (1 + wantVar + 1e6) // squares reach ~1e6-scale magnitudes
			if diff := math.Abs(w.Variance() - wantVar); diff > tol {
				t.Fatalf("stream %d step %d: Variance = %v, want %v (diff %g)",
					stream, i, w.Variance(), wantVar, diff)
			}
		}
	}
}

func TestWindowNaNObservations(t *testing.T) {
	w := NewWindow(3)
	w.Observe(1)
	w.Observe(math.NaN())
	w.Observe(3)
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) {
		t.Fatal("window containing NaN must report NaN moments")
	}
	// Quantiles still match the sort-based reference (NaNs order first).
	if got, want := w.Median(), Median(w.Values()); !sameFloat(got, want) {
		t.Fatalf("Median with NaN = %v, want %v", got, want)
	}
	// Once the NaN is evicted the moments recover exactly.
	w.Observe(5)
	w.Observe(7)
	if got := w.Mean(); got != 5 {
		t.Fatalf("Mean after NaN eviction = %v, want 5", got)
	}
	if got := w.Median(); got != 5 {
		t.Fatalf("Median after NaN eviction = %v, want 5", got)
	}
}

func TestWindowAtAndAppendValues(t *testing.T) {
	w := NewWindow(3)
	for _, v := range []float64{1, 2, 3, 4} {
		w.Observe(v)
	}
	for i, want := range []float64{2, 3, 4} {
		if got := w.At(i); got != want {
			t.Fatalf("At(%d) = %v, want %v", i, got, want)
		}
	}
	scratch := make([]float64, 0, 3)
	got := w.AppendValues(scratch)
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("AppendValues = %v", got)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("AppendValues did not reuse caller scratch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	w.At(3)
}

func TestWindowVarianceBasics(t *testing.T) {
	w := NewWindow(4)
	if !math.IsNaN(w.Variance()) {
		t.Fatal("empty window variance not NaN")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(v)
	}
	// Window holds 5, 5, 7, 9: mean 6.5, variance 2.75.
	if got := w.Variance(); math.Abs(got-2.75) > 1e-12 {
		t.Fatalf("Variance = %v, want 2.75", got)
	}
	if got := w.Stddev(); math.Abs(got-math.Sqrt(2.75)) > 1e-12 {
		t.Fatalf("Stddev = %v", got)
	}
}

// The steady-state observation and query path of a full window must not
// allocate: this is the per-completion-event cost of always-on detection.
func TestWindowSteadyStateDoesNotAllocate(t *testing.T) {
	w := NewWindow(64)
	for i := 0; i < 128; i++ {
		w.Observe(float64(i % 17))
	}
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		i++
		w.Observe(float64(i % 13))
		_ = w.Median()
		_ = w.Quantile(0.95)
		_ = w.Mean()
		_ = w.Variance()
	}); n != 0 {
		t.Fatalf("steady-state window path allocates %v per run", n)
	}
}

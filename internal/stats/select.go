package stats

import "math"

// floatLess is the total order used by sort.Float64s: NaNs order before
// every number, then ascending. Select and the Window's sorted companion
// share it so in-place and sort-based quantiles agree exactly.
func floatLess(a, b float64) bool {
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

// searchFirstGE returns the smallest index i with s[i] not less than x
// under floatLess — the insertion point keeping s sorted.
func searchFirstGE(s []float64, x float64) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if floatLess(s[mid], x) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Select partially reorders xs in place so that xs[k] holds the k-th
// order statistic (0-based, NaNs ordered first as in sort.Float64s),
// everything before index k is not greater and everything after is not
// smaller, and returns xs[k]. Quickselect with a median-of-three pivot:
// expected O(n), no allocation. It panics when k is out of range.
func Select(xs []float64, k int) float64 {
	if k < 0 || k >= len(xs) {
		panic("stats: Select index out of range")
	}
	lo, hi := 0, len(xs)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if floatLess(xs[mid], xs[lo]) {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if floatLess(xs[hi], xs[lo]) {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if floatLess(xs[hi], xs[mid]) {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for floatLess(xs[i], pivot) {
				i++
			}
			for floatLess(pivot, xs[j]) {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return xs[k]
		}
	}
	return xs[lo]
}

// QuantileInPlace returns the q-quantile of xs with the same
// interpolation as Quantile, but via quickselect on the caller's slice:
// no copy, no sort, no allocation. xs is partially reordered. Callers
// that need xs in its original order afterwards must copy first (that is
// what Quantile does); one-shot summary paths should prefer this.
func QuantileInPlace(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	n := len(xs)
	if n == 1 {
		return xs[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	a := Select(xs, lo)
	if lo == hi {
		return a
	}
	// hi == lo+1: after Select the suffix holds every element ranked
	// above lo, so the (lo+1)-th order statistic is its minimum.
	b := xs[lo+1]
	for _, v := range xs[lo+2:] {
		if floatLess(v, b) {
			b = v
		}
	}
	frac := pos - float64(lo)
	return a*(1-frac) + b*frac
}

// MedianInPlace returns the median of xs via QuantileInPlace, partially
// reordering xs.
func MedianInPlace(xs []float64) float64 { return QuantileInPlace(xs, 0.5) }

// SearchSorted returns the smallest index i with s[i] not less than x
// under the sort.Float64s order (NaNs first): the position of x's first
// occurrence when present, else its insertion point.
func SearchSorted(s []float64, x float64) int { return searchFirstGE(s, x) }

// SortedInsert inserts x into ascending-sorted s, returning the extended
// slice. Allocation-free while cap(s) > len(s).
func SortedInsert(s []float64, x float64) []float64 {
	idx := searchFirstGE(s, x)
	s = append(s, 0)
	copy(s[idx+1:], s[idx:])
	s[idx] = x
	return s
}

// SortedRemove removes one occurrence of x from ascending-sorted s,
// returning the shortened slice; s is returned unchanged when x is
// absent. NaNs match each other.
func SortedRemove(s []float64, x float64) []float64 {
	idx := searchFirstGE(s, x)
	if idx >= len(s) || (s[idx] != x && !(math.IsNaN(s[idx]) && math.IsNaN(x))) {
		return s
	}
	copy(s[idx:], s[idx+1:])
	return s[:len(s)-1]
}

// QuantileSorted returns the q-quantile of an already ascending-sorted
// slice in O(1), without copying. Callers that sort once and read several
// quantiles should prefer this over repeated Quantile calls.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	return quantileSorted(sorted, q)
}

// QuantileSortedExcluding returns the q-quantile of the sorted slice with
// the element at index skip removed, equal to copying the slice minus that
// element and calling QuantileSorted — but in O(1), with no copy. The
// peer-comparison detector reads an exclude-one fleet median per member
// this way, which is what makes million-member sweeps feasible.
func QuantileSortedExcluding(sorted []float64, skip int, q float64) float64 {
	n := len(sorted)
	if n <= 1 || skip < 0 || skip >= n || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	// at indexes the virtual n-1 element slice with sorted[skip] removed.
	at := func(i int) float64 {
		if i >= skip {
			i++
		}
		return sorted[i]
	}
	m := n - 1
	if m == 1 {
		return at(0)
	}
	pos := q * float64(m-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return at(lo)
	}
	frac := pos - float64(lo)
	return at(lo)*(1-frac) + at(hi)*frac
}

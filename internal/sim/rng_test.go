package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestForkDeterministicAndIndependent(t *testing.T) {
	root1, root2 := NewRNG(7), NewRNG(7)
	a1, a2 := root1.Fork("disk-0"), root2.Fork("disk-0")
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("same fork label diverged")
		}
	}
	b := NewRNG(7).Fork("disk-1")
	c := NewRNG(7).Fork("disk-0")
	same := 0
	for i := 0; i < 100; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatal("distinct fork labels produced correlated streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		v := r.Exp(2.0)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-2.0) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~2.0", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(13)
	n := 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.1 {
		t.Fatalf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(5, 8)
		if v < 5 || v >= 8 {
			t.Fatalf("Uniform(5,8) = %v out of range", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	f := func(n uint8) bool {
		size := int(n%32) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := NewRNG(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(29)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Rank 0 should receive roughly 1/H(100) ~ 19% of the mass.
	frac := float64(counts[0]) / 50000
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("Zipf rank-0 mass = %v, want ~0.19", frac)
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0 ranks) did not panic")
		}
	}()
	NewZipf(NewRNG(1), 0, 1)
}

package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(2, func() { got = append(got, 2) })
	s.At(1, func() { got = append(got, 1) })
	s.At(3, func() { got = append(got, 3) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v, want 3", s.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	s := New()
	var at Time
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.Run()
	if at != 15 {
		t.Fatalf("nested After fired at %v, want 15", at)
	}
}

func TestAfterNegativeClampsToNow(t *testing.T) {
	s := New()
	fired := false
	s.At(4, func() {
		s.After(-1, func() { fired = s.Now() == 4 })
	})
	s.Run()
	if !fired {
		t.Fatal("negative After did not fire at current time")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestTimerStop(t *testing.T) {
	s := New()
	fired := false
	tm := s.At(1, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer not pending after schedule")
	}
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if tm.Pending() {
		t.Fatal("stopped timer still pending")
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New()
	count := 0
	s.At(1, func() { count++; s.Stop() })
	s.At(2, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("ran %d events after Stop, want 1", count)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run() // resume
	if count != 2 {
		t.Fatalf("resume ran %d total, want 2", count)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2", fired)
	}
	if s.Now() != 2.5 {
		t.Fatalf("Now = %v, want 2.5", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 4 {
		t.Fatalf("fired %v after full run", fired)
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %v, want 10", s.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New()
	fired := false
	s.At(5, func() { fired = true })
	s.RunUntil(5)
	if !fired {
		t.Fatal("event at the horizon did not fire")
	}
}

func TestRunUntilSkipsStoppedEvents(t *testing.T) {
	s := New()
	tm := s.At(1, func() { t.Fatal("stopped event fired") })
	tm.Stop()
	s.RunUntil(2)
	if s.Now() != 2 {
		t.Fatalf("Now = %v, want 2", s.Now())
	}
}

func TestEventsFiredCounts(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.EventsFired() != 7 {
		t.Fatalf("EventsFired = %d, want 7", s.EventsFired())
	}
}

func TestCascadingEvents(t *testing.T) {
	// An event chain where each event schedules the next must run to the
	// requested depth.
	s := New()
	depth := 0
	var next func()
	next = func() {
		depth++
		if depth < 1000 {
			s.After(0.001, next)
		}
	}
	s.After(0, next)
	s.Run()
	if depth != 1000 {
		t.Fatalf("chain depth = %d, want 1000", depth)
	}
}

package sim_test

import (
	"fmt"

	"failstutter/internal/sim"
)

// A station serves work at a time-varying rate; a performance fault is
// just a multiplier.
func ExampleStation() {
	s := sim.New()
	st := sim.NewStation(s, "disk", 10) // 10 units/s
	st.SubmitFunc(100, func(r *sim.Request) {
		fmt.Printf("finished at t=%v\n", r.Finished)
	})
	// Halve the rate five seconds in: the remaining 50 units take 10 s.
	s.At(5, func() { st.SetMultiplier(0.5) })
	s.Run()
	// Output:
	// finished at t=15
}

// Deterministic random streams: forking by name isolates components.
func ExampleRNG_Fork() {
	root := sim.NewRNG(42)
	a := root.Fork("disk-0")
	b := sim.NewRNG(42).Fork("disk-0")
	fmt.Println(a.Uint64() == b.Uint64())
	// Output:
	// true
}

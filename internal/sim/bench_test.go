package sim

import "testing"

func BenchmarkScheduleAndFire(b *testing.B) {
	s := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, func() {})
		if s.Pending() > 1024 {
			s.Run()
		}
	}
	s.Run()
}

func BenchmarkEventChain(b *testing.B) {
	s := New()
	n := 0
	var next func()
	next = func() {
		n++
		if n < b.N {
			s.After(0.001, next)
		}
	}
	s.After(0, next)
	b.ResetTimer()
	s.Run()
}

func BenchmarkStationThroughput(b *testing.B) {
	s := New()
	st := NewStation(s, "bench", 1e6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.SubmitFunc(1, nil)
		if st.QueueLen() > 1024 {
			s.Run()
		}
	}
	s.Run()
}

func BenchmarkStationRateChanges(b *testing.B) {
	s := New()
	st := NewStation(s, "bench", 1e6)
	st.SubmitFunc(float64(b.N)+1e9, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.SetMultiplier(0.5 + float64(i%2)/2)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkRNGNorm(b *testing.B) {
	r := NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm(0, 1)
	}
	_ = sink
}

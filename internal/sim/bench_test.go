package sim

import (
	"testing"

	"failstutter/internal/trace"
)

func BenchmarkScheduleAndFire(b *testing.B) {
	s := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, func() {})
		if s.Pending() > 1024 {
			s.Run()
		}
	}
	s.Run()
}

func BenchmarkEventChain(b *testing.B) {
	s := New()
	n := 0
	var next func()
	next = func() {
		n++
		if n < b.N {
			s.After(0.001, next)
		}
	}
	s.After(0, next)
	b.ResetTimer()
	s.Run()
}

func BenchmarkStationThroughput(b *testing.B) {
	s := New()
	st := NewStation(s, "bench", 1e6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.SubmitFunc(1, nil)
		if st.QueueLen() > 1024 {
			s.Run()
		}
	}
	s.Run()
}

func BenchmarkStationRateChanges(b *testing.B) {
	s := New()
	st := NewStation(s, "bench", 1e6)
	st.SubmitFunc(float64(b.N)+1e9, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.SetMultiplier(0.5 + float64(i%2)/2)
	}
}

// BenchmarkSchedule measures the steady-state cost of scheduling one event
// that later fires: the kernel's hottest path. With the event arena this
// must run at 0 allocs/op once the arena has warmed up.
func BenchmarkSchedule(b *testing.B) {
	s := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, func() {})
		if s.Pending() > 1024 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkTimerStop measures schedule-then-cancel churn, the pattern
// Station.reschedule generates on every rate change.
func BenchmarkTimerStop(b *testing.B) {
	s := New()
	timers := make([]Timer, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		timers = append(timers, s.After(float64(i%64)+1, func() {}))
		if len(timers) == cap(timers) {
			for _, tm := range timers {
				tm.Stop()
			}
			timers = timers[:0]
			s.Run()
		}
	}
	b.StopTimer()
	for _, tm := range timers {
		tm.Stop()
	}
	s.Run()
}

// BenchmarkStationPipeline measures a deep FCFS queue draining end to end:
// the switch and RAID experiments push thousands of queued requests through
// a station, so dequeue cost dominates.
func BenchmarkStationPipeline(b *testing.B) {
	s := New()
	st := NewStation(s, "bench", 1e6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.SubmitFunc(1, nil)
		if st.QueueLen() >= 4096 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkStationPipelineTraced is BenchmarkStationPipeline with a span
// tracer attached — the enabled-cost comparison for the observability
// plane. The tracer is swapped out at each drain so accumulated spans
// don't dominate memory at large b.N; compare against the untraced
// benchmark for the per-request overhead of recording queue/service spans.
func BenchmarkStationPipelineTraced(b *testing.B) {
	s := New()
	st := NewStation(s, "bench", 1e6)
	st.SetTracer(trace.NewTracer())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.SubmitFunc(1, nil)
		if st.QueueLen() >= 4096 {
			s.Run()
			st.SetTracer(trace.NewTracer())
		}
	}
	s.Run()
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkRNGNorm(b *testing.B) {
	r := NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm(0, 1)
	}
	_ = sink
}

// benchSharded drives a fixed fleet of event chains through a sharded
// kernel; the workload is independent per component, so every window runs
// all shards in parallel. Reported per executed event.
func benchSharded(b *testing.B, shards int) {
	const components = 256
	ss := NewSharded(shards, 1.0)
	root := NewRNG(9)
	per := b.N/components + 1
	for c := 0; c < components; c++ {
		name := benchName(c)
		rng := root.Fork(name)
		sh := ss.Shard(ss.ShardFor(name))
		var step func()
		n := 0
		step = func() {
			if n++; n < per {
				sh.After(0.01+rng.Float64(), step)
			}
		}
		sh.At(rng.Float64(), step)
	}
	b.ResetTimer()
	ss.Run()
	b.StopTimer()
	if fired := ss.EventsFired(); fired < uint64(b.N) {
		b.Fatalf("fired %d events, want at least %d", fired, b.N)
	}
}

func benchName(c int) string { return "comp" + string(rune('a'+c/26%26)) + string(rune('a'+c%26)) }

func BenchmarkShardedEventChain1(b *testing.B) { benchSharded(b, 1) }
func BenchmarkShardedEventChain4(b *testing.B) { benchSharded(b, 4) }

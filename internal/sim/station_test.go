package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStationSingleRequest(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 10) // 10 units/s
	var done *Request
	st.SubmitFunc(50, func(r *Request) { done = r })
	s.Run()
	if done == nil {
		t.Fatal("request did not complete")
	}
	if !almostEqual(done.Finished, 5, 1e-9) {
		t.Fatalf("finished at %v, want 5", done.Finished)
	}
	if done.Wait() != 0 {
		t.Fatalf("wait = %v, want 0", done.Wait())
	}
	if st.Completed() != 1 {
		t.Fatalf("completed = %d", st.Completed())
	}
}

func TestStationFIFO(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		st.SubmitFunc(1, func(*Request) { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	if s.Now() != 5 {
		t.Fatalf("five unit jobs at rate 1 ended at %v, want 5", s.Now())
	}
}

func TestStationQueueingLatency(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 2)
	var second *Request
	st.SubmitFunc(4, nil)                             // served 0..2
	st.SubmitFunc(4, func(r *Request) { second = r }) // served 2..4
	s.Run()
	if second == nil {
		t.Fatal("second request did not finish")
	}
	if !almostEqual(second.Wait(), 2, 1e-9) {
		t.Fatalf("second wait = %v, want 2", second.Wait())
	}
	if !almostEqual(second.Latency(), 4, 1e-9) {
		t.Fatalf("second latency = %v, want 4", second.Latency())
	}
}

func TestStationRateChangeMidService(t *testing.T) {
	// 100 units at rate 10 takes 10 s; halving the multiplier at t=5 leaves
	// 50 units at rate 5 => finish at t=15.
	s := New()
	st := NewStation(s, "d0", 10)
	var finished Time
	st.SubmitFunc(100, func(r *Request) { finished = r.Finished })
	s.At(5, func() { st.SetMultiplier(0.5) })
	s.Run()
	if !almostEqual(finished, 15, 1e-9) {
		t.Fatalf("finished at %v, want 15", finished)
	}
}

func TestStationStallAndResume(t *testing.T) {
	// Stall (multiplier 0) pauses work without losing progress.
	s := New()
	st := NewStation(s, "d0", 10)
	var finished Time
	st.SubmitFunc(100, func(r *Request) { finished = r.Finished })
	s.At(3, func() { st.SetMultiplier(0) })
	s.At(7, func() { st.SetMultiplier(1) })
	s.Run()
	// 30 units done by t=3, 70 remain, resume at 7 => finish at 14.
	if !almostEqual(finished, 14, 1e-9) {
		t.Fatalf("finished at %v, want 14", finished)
	}
}

func TestStationMultiplierAboveOne(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 10)
	st.SetMultiplier(2)
	var finished Time
	st.SubmitFunc(100, func(r *Request) { finished = r.Finished })
	s.Run()
	if !almostEqual(finished, 5, 1e-9) {
		t.Fatalf("finished at %v, want 5 at doubled rate", finished)
	}
}

func TestStationFailAbandonsWork(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 1)
	completions := 0
	for i := 0; i < 3; i++ {
		st.SubmitFunc(10, func(*Request) { completions++ })
	}
	s.At(5, func() { st.Fail() })
	s.Run()
	if completions != 0 {
		t.Fatalf("completions after early failure = %d, want 0", completions)
	}
	if st.Abandoned() != 3 {
		t.Fatalf("abandoned = %d, want 3", st.Abandoned())
	}
	if !st.Failed() {
		t.Fatal("station not marked failed")
	}
	if st.EffectiveRate() != 0 {
		t.Fatal("failed station has non-zero rate")
	}
}

func TestStationSubmitAfterFail(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 1)
	st.Fail()
	st.SubmitFunc(1, func(*Request) { t.Fatal("completion on failed station") })
	s.Run()
	if st.Abandoned() != 1 {
		t.Fatalf("abandoned = %d, want 1", st.Abandoned())
	}
}

func TestStationRepair(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 1)
	st.Fail()
	st.Repair()
	if st.Failed() {
		t.Fatal("repaired station still failed")
	}
	done := false
	st.SubmitFunc(1, func(*Request) { done = true })
	s.Run()
	if !done {
		t.Fatal("repaired station did not serve")
	}
}

func TestStationBusyTimeAndUtilization(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 10)
	st.SubmitFunc(50, nil) // busy 0..5
	s.Run()
	s.RunUntil(10)
	if !almostEqual(st.BusyTime(), 5, 1e-9) {
		t.Fatalf("busy = %v, want 5", st.BusyTime())
	}
	if !almostEqual(st.Utilization(), 0.5, 1e-9) {
		t.Fatalf("utilization = %v, want 0.5", st.Utilization())
	}
}

func TestStationStalledTimeNotBusy(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 10)
	st.SubmitFunc(100, nil)
	s.At(3, func() { st.SetMultiplier(0) })
	s.At(7, func() { st.SetMultiplier(1) })
	s.Run()
	// Served 0..3 and 7..14: 10 busy seconds.
	if !almostEqual(st.BusyTime(), 10, 1e-9) {
		t.Fatalf("busy = %v, want 10 (stall must not count)", st.BusyTime())
	}
}

func TestStationInvalidSizePanics(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size request did not panic")
		}
	}()
	st.SubmitFunc(0, nil)
}

func TestStationInvalidRatePanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate did not panic")
		}
	}()
	NewStation(s, "d0", 0)
}

func TestStationInvalidMultiplierPanics(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative multiplier did not panic")
		}
	}()
	st.SetMultiplier(-0.5)
}

// Property: total completion time of a batch equals total work divided by
// rate, for any positive sizes, when the rate never changes.
func TestStationWorkConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		sizes := make([]float64, 0, len(raw))
		total := 0.0
		for _, v := range raw {
			sz := float64(v%1000) + 1
			sizes = append(sizes, sz)
			total += sz
		}
		if len(sizes) == 0 {
			return true
		}
		s := New()
		st := NewStation(s, "d0", 7)
		for _, sz := range sizes {
			st.SubmitFunc(sz, nil)
		}
		s.Run()
		return almostEqual(s.Now(), total/7, 1e-6*total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: progress is conserved across arbitrary multiplier schedules —
// the completion time satisfies integral(rate dt) = size.
func TestStationProgressConservedAcrossRateChanges(t *testing.T) {
	f := func(raw []uint8) bool {
		s := New()
		st := NewStation(s, "d0", 1)
		var finished Time = -1
		const size = 100.0
		st.SubmitFunc(size, func(r *Request) { finished = r.Finished })
		// Build a stepwise multiplier schedule from the fuzz input.
		at := 0.0
		type step struct {
			t Time
			m float64
		}
		var steps []step
		for _, v := range raw {
			at += float64(v%7) + 0.5
			m := float64(v%5) / 2 // 0, 0.5, 1, 1.5, 2
			steps = append(steps, step{at, m})
			mult := m
			s.At(at, func() { st.SetMultiplier(mult) })
		}
		// Ensure it eventually finishes.
		end := at + size + 1
		s.At(end, func() { st.SetMultiplier(2) })
		s.Run()
		if finished < 0 {
			return false
		}
		// Integrate the schedule up to the finish time.
		integral := 0.0
		prevT, prevM := 0.0, 1.0
		for _, sp := range steps {
			if sp.t >= finished {
				break
			}
			integral += (sp.t - prevT) * prevM
			prevT, prevM = sp.t, sp.m
		}
		if end < finished {
			integral += (end - prevT) * prevM
			prevT, prevM = end, 2
		}
		integral += (finished - prevT) * prevM
		return almostEqual(integral, size, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package sim

import (
	"fmt"
	"math"
	"testing"
)

// TestRecommendPlacementBalances checks the greedy LPT plan: every
// station lands on a real shard, and the resulting bin spread beats the
// pathological all-on-one split by a wide margin on a skewed load set.
func TestRecommendPlacementBalances(t *testing.T) {
	const shards = 4
	var loads []Load
	total := 0.0
	for i := 0; i < 64; i++ {
		cost := float64(1 + i%7)
		if i%16 == 0 {
			cost = 40 // a few heavy hitters LPT must spread out
		}
		loads = append(loads, Load{ID: fmt.Sprintf("s%02d", i), Cost: cost})
		total += cost
	}
	plan := RecommendPlacement(loads, shards)
	if len(plan) != len(loads) {
		t.Fatalf("plan has %d stations, want %d", len(plan), len(loads))
	}
	bins := make([]float64, shards)
	for _, l := range loads {
		shard, ok := plan[l.ID]
		if !ok || shard < 0 || shard >= shards {
			t.Fatalf("station %s mapped to invalid shard %d", l.ID, shard)
		}
		bins[shard] += l.Cost
	}
	mean := total / shards
	for s, b := range bins {
		if math.Abs(b-mean) > 0.25*mean {
			t.Fatalf("shard %d holds %.0f of mean %.0f — LPT spread too uneven: %v", s, b, mean, bins)
		}
	}
}

// TestRecommendPlacementDeterministic requires identical plans from
// identical loads regardless of input order: the sort key (cost desc, id
// asc) must fully determine the outcome.
func TestRecommendPlacementDeterministic(t *testing.T) {
	loads := []Load{
		{"a", 3}, {"b", 3}, {"c", 5}, {"d", 1}, {"e", 5}, {"f", 2},
	}
	ref := RecommendPlacement(loads, 3)
	reversed := make([]Load, len(loads))
	for i, l := range loads {
		reversed[len(loads)-1-i] = l
	}
	got := RecommendPlacement(reversed, 3)
	for id, shard := range ref {
		if got[id] != shard {
			t.Fatalf("station %s: shard %d from forward order, %d from reversed", id, shard, got[id])
		}
	}
	if _, didPanic := func() (m map[string]int, p bool) {
		defer func() { p = recover() != nil }()
		return RecommendPlacement(loads, 0), false
	}(); !didPanic {
		t.Fatal("RecommendPlacement with 0 shards did not panic")
	}
}

// TestPerShardLoads checks the observed-counts path: each shard's fired
// total splits evenly over its stations, empty shards contribute nothing,
// and mismatched lengths panic.
func TestPerShardLoads(t *testing.T) {
	byShard := [][]string{{"a", "b"}, {}, {"c"}}
	loads := PerShardLoads(byShard, []uint64{10, 99, 7})
	want := map[string]float64{"a": 5, "b": 5, "c": 7}
	if len(loads) != len(want) {
		t.Fatalf("got %d loads, want %d: %v", len(loads), len(want), loads)
	}
	for _, l := range loads {
		if w, ok := want[l.ID]; !ok || w != l.Cost {
			t.Fatalf("station %s cost %v, want %v", l.ID, l.Cost, want[l.ID])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PerShardLoads with mismatched lengths did not panic")
		}
	}()
	PerShardLoads(byShard, []uint64{1})
}

// TestSetPlacementRouting checks that ShardFor consults the plan,
// unplanned identities keep their hashed shard, and the construction-time
// guards fire.
func TestSetPlacementRouting(t *testing.T) {
	ss := NewSharded(4, 1)
	hashed := ss.ShardFor("station-x")
	target := (hashed + 1) % 4
	ss.SetPlacement(map[string]int{"station-x": target})
	if got := ss.ShardFor("station-x"); got != target {
		t.Fatalf("planned station routed to shard %d, want %d", got, target)
	}
	if got := ss.ShardFor("station-y"); got != ss.ShardFor("station-y") || got < 0 || got >= 4 {
		t.Fatalf("unplanned station routed inconsistently or out of range: %d", got)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetPlacement with out-of-range shard did not panic")
			}
		}()
		ss2 := NewSharded(2, 1)
		ss2.SetPlacement(map[string]int{"z": 5})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetPlacement after events fired did not panic")
			}
		}()
		ss3 := NewSharded(2, 1)
		fired := false
		ss3.Shard(0).At(0.5, func() { fired = true })
		ss3.RunUntil(1)
		if !fired {
			t.Fatal("scheduled event never fired")
		}
		ss3.SetPlacement(map[string]int{"z": 0})
	}()
}

package sim

import (
	"sort"
	"testing"
)

// TestKernelStressCrossCheck schedules 100k events at random times with
// random Stops — some from the top level, some from inside running
// callbacks, exercising arena slot reuse — and cross-checks the observed
// firing order against a reference ordering computed independently by
// sorting on (time, schedule order).
func TestKernelStressCrossCheck(t *testing.T) {
	const (
		topLevel = 60000
		nested   = 40000
		horizon  = 1000.0
	)
	rng := NewRNG(12345)
	s := New()

	type sched struct {
		at      Time
		id      int
		stopped bool
	}
	var all []sched
	var fired []int
	timers := make(map[int]Timer)

	schedule := func(at Time) {
		id := len(all)
		all = append(all, sched{at: at, id: id})
		timers[id] = s.At(at, func() { fired = append(fired, id) })
	}
	stopRandom := func() {
		// Pick a random id; if its timer is still pending, stop it and
		// record that it must never fire.
		id := rng.Intn(len(all))
		if timers[id].Stop() {
			all[id].stopped = true
		}
	}

	for i := 0; i < topLevel; i++ {
		schedule(rng.Uniform(0, horizon))
		if i%3 == 0 {
			stopRandom()
		}
	}
	// The remaining events are scheduled from inside callbacks, at times
	// at or after the running event, so slots freed by fired and stopped
	// events get reused while the run is in flight.
	var inject func()
	injected := 0
	inject = func() {
		if injected >= nested {
			return
		}
		injected++
		schedule(s.Now() + rng.Uniform(0, horizon/10))
		if injected%4 == 0 {
			stopRandom()
		}
		s.After(rng.Uniform(0, horizon/100), inject)
	}
	s.After(0, inject)
	s.Run()

	// Reference ordering: every unstopped event, sorted by (at, id).
	// Schedule order equals id order here, and the kernel breaks time
	// ties by schedule sequence, so this total order must match exactly.
	var want []sched
	for _, e := range all {
		if !e.stopped {
			want = append(want, e)
		}
	}
	sort.SliceStable(want, func(i, j int) bool {
		if want[i].at != want[j].at {
			return want[i].at < want[j].at
		}
		return want[i].id < want[j].id
	})
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, reference expects %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i].id {
			t.Fatalf("firing order diverges at position %d: got id %d (t=%v), want id %d (t=%v)",
				i, fired[i], all[fired[i]].at, want[i].id, want[i].at)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", s.Pending())
	}
}

// TestTimerHandleSafeAcrossArenaReuse pins the generation-counter
// guarantee: a handle to a fired (or stopped) event must stay dead even
// after its arena slot is recycled for a newer event, and must never be
// able to stop the newcomer.
func TestTimerHandleSafeAcrossArenaReuse(t *testing.T) {
	s := New()
	stale := s.At(1, func() {})
	s.Run() // fires the event and releases its slot

	newFired := false
	fresh := s.At(2, func() { newFired = true })
	if stale.Pending() {
		t.Fatal("handle to a fired event reports pending after slot reuse")
	}
	if stale.Stop() {
		t.Fatal("handle to a fired event stopped a recycled slot's new event")
	}
	s.Run()
	if !newFired {
		t.Fatal("new event did not fire — stale handle interfered with reused slot")
	}
	if fresh.Pending() || fresh.Stop() {
		t.Fatal("fired event's own handle still live")
	}

	// Same property for a stopped (never fired) event's handle.
	stopped := s.At(10, func() { t.Fatal("stopped event fired") })
	if !stopped.Stop() {
		t.Fatal("Stop on a pending timer returned false")
	}
	reused := false
	s.At(10, func() { reused = true })
	if stopped.Stop() || stopped.Pending() {
		t.Fatal("stopped handle came back to life after slot reuse")
	}
	s.Run()
	if !reused {
		t.Fatal("event in reused slot did not fire")
	}
}

// TestPendingCountsLiveEventsOnly pins the Pending semantics: stopped
// events are removed eagerly and never inflate the count.
func TestPendingCountsLiveEventsOnly(t *testing.T) {
	s := New()
	timers := make([]Timer, 10)
	for i := range timers {
		timers[i] = s.At(Time(i+1), func() {})
	}
	if s.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", s.Pending())
	}
	for _, i := range []int{2, 5, 9} {
		timers[i].Stop()
	}
	if s.Pending() != 7 {
		t.Fatalf("Pending = %d after 3 stops, want 7", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", s.Pending())
	}
	if s.EventsFired() != 7 {
		t.Fatalf("EventsFired = %d, want 7", s.EventsFired())
	}
}

// TestZeroTimer pins that the zero Timer behaves as already expired.
func TestZeroTimer(t *testing.T) {
	var tm Timer
	if tm.Pending() {
		t.Fatal("zero Timer reports pending")
	}
	if tm.Stop() {
		t.Fatal("zero Timer Stop returned true")
	}
}

// TestStationRepairResetsProgressClock pins the Repair fix: time spent in
// the failed state must never be charged to BusyTime or to the first
// post-repair request.
func TestStationRepairResetsProgressClock(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 10)
	st.SubmitFunc(100, nil) // would finish at t=10
	s.At(5, func() { st.Fail() })
	s.At(20, func() { st.Repair() })
	var finished Time
	s.At(20, func() { st.SubmitFunc(100, func(r *Request) { finished = r.Finished }) })
	s.Run()
	if !almostEqual(finished, 30, 1e-9) {
		t.Fatalf("post-repair request finished at %v, want 30", finished)
	}
	// Busy: 0..5 before the failure, 20..30 after repair.
	if !almostEqual(st.BusyTime(), 15, 1e-9) {
		t.Fatalf("busy = %v, want 15 (downtime must not be charged)", st.BusyTime())
	}
}

// TestStationDeepQueueFIFO pushes the ring buffer through several growth
// cycles and wraparounds and checks strict FIFO completion order.
func TestStationDeepQueueFIFO(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 1000)
	const n = 5000
	var order []int
	submitted := 0
	// Submit in bursts from inside the simulation so the ring drains and
	// refills, forcing head wraparound, not just growth.
	var burst func()
	burst = func() {
		for i := 0; i < 700 && submitted < n; i++ {
			id := submitted
			submitted++
			st.SubmitFunc(1, func(*Request) { order = append(order, id) })
		}
		if submitted < n {
			s.After(0.1, burst)
		}
	}
	s.After(0, burst)
	s.Run()
	if len(order) != n {
		t.Fatalf("completed %d requests, want %d", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated at %d: got %d", i, v)
		}
	}
	if st.Completed() != n {
		t.Fatalf("Completed = %d, want %d", st.Completed(), n)
	}
}

package sim

import (
	"fmt"
	"math"
	"sort"
	"testing"
)

// TestKWayMergeMatchesSortReference feeds randomized cross-shard sends —
// with deliberate time ties across source shards and within one source —
// through the lane/k-way-merge/batch delivery path and checks the firing
// order on every destination shard against an independently computed
// reference: the old single-sort delivery order (time, source shard,
// source sequence), byte for byte, at shards 1/2/3/8 and seeds 1/42/1337.
func TestKWayMergeMatchesSortReference(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		for _, seed := range []uint64{1, 42, 1337} {
			shards, seed := shards, seed
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				const n = 5000
				ss := NewSharded(shards, 1)
				rng := NewRNG(seed)
				type rec struct {
					at  Time
					src int
					seq int // per-source send index
					id  int
					dst int
				}
				recs := make([]rec, 0, n)
				perSrc := make([]int, shards)
				fired := make([][]int, shards) // firing order of ids per dst shard
				for i := 0; i < n; i++ {
					src := rng.Intn(shards)
					dst := rng.Intn(shards)
					// Quantized times force plenty of cross-source ties.
					at := math.Round(rng.Float64()*200) * 0.25
					id, d := i, dst
					ss.Send(src, dst, at, "gen", func() {
						fired[d] = append(fired[d], id)
					})
					recs = append(recs, rec{at: at, src: src, seq: perSrc[src], id: i, dst: dst})
					perSrc[src]++
				}
				ss.Run()
				// Reference delivery order: (time, source shard, source seq).
				sort.Slice(recs, func(i, j int) bool {
					a, b := recs[i], recs[j]
					if a.at != b.at {
						return a.at < b.at
					}
					if a.src != b.src {
						return a.src < b.src
					}
					return a.seq < b.seq
				})
				want := make([][]int, shards)
				for _, r := range recs {
					want[r.dst] = append(want[r.dst], r.id)
				}
				for d := 0; d < shards; d++ {
					if len(fired[d]) != len(want[d]) {
						t.Fatalf("dst %d fired %d events, reference has %d", d, len(fired[d]), len(want[d]))
					}
					for i := range want[d] {
						if fired[d][i] != want[d][i] {
							t.Fatalf("dst %d position %d: fired id %d, reference id %d",
								d, i, fired[d][i], want[d][i])
						}
					}
				}
			})
		}
	}
}

// TestLaneSortFallback exercises the rare non-monotone sender: one event
// emitting cross-shard sends at decreasing times must still deliver in
// (time, seq) order.
func TestLaneSortFallback(t *testing.T) {
	ss := NewSharded(2, 1)
	var got []Time
	ss.Shard(0).At(0, func() {
		for _, at := range []Time{5, 3, 4, 1.5, 3} {
			at := at
			ss.Send(0, 1, at, "backwards-sender", func() {
				got = append(got, ss.Shard(1).Now())
			})
		}
	})
	ss.Run()
	want := []Time{1.5, 3, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d fired at %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestScheduleBatchHeapOrder drives the batch push directly: interleaved
// batches and singleton At calls on one kernel must pop in exact
// (time, seq) order, covering both the ancestor-cone pass (non-empty heap)
// and the full-heapify path (empty heap).
func TestScheduleBatchHeapOrder(t *testing.T) {
	s := New()
	var got []int
	mk := func(id int) func() { return func() { got = append(got, id) } }
	// Batch onto an empty heap.
	s.scheduleBatch([]laneEvent{{at: 4, fn: mk(0)}, {at: 4, fn: mk(1)}, {at: 9, fn: mk(2)}})
	// Singletons, then a large batch straddling them.
	s.At(2, mk(3))
	s.At(6, mk(4))
	batch := make([]laneEvent, 0, 40)
	for i := 0; i < 40; i++ {
		batch = append(batch, laneEvent{at: Time(i) * 0.5, fn: mk(100 + i)})
	}
	s.scheduleBatch(batch)
	s.Run()
	if len(got) != 45 {
		t.Fatalf("fired %d events, want 45", len(got))
	}
	// Reference: (time, seq) where seq is allocation order above.
	type ev struct {
		at  Time
		seq int
		id  int
	}
	evs := []ev{{4, 0, 0}, {4, 1, 1}, {9, 2, 2}, {2, 3, 3}, {6, 4, 4}}
	for i := 0; i < 40; i++ {
		evs = append(evs, ev{Time(i) * 0.5, 5 + i, 100 + i})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].seq < evs[j].seq
	})
	for i, e := range evs {
		if got[i] != e.id {
			t.Fatalf("position %d fired id %d, want %d", i, got[i], e.id)
		}
	}
}

// TestShardForBalance hashes 1M identities and checks the max/min shard
// population stays within 2% of the mean — the placement balance the
// plane ports rely on.
func TestShardForBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-identity balance check skipped in -short")
	}
	for _, shards := range []int{4, 8} {
		ss := NewSharded(shards, 1)
		counts := make([]int, shards)
		const n = 1 << 20
		for i := 0; i < n; i++ {
			counts[ss.ShardFor(fmt.Sprintf("component-%07d", i))]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		mean := float64(n) / float64(shards)
		if spread := float64(max-min) / mean; spread > 0.02 {
			t.Fatalf("%d shards: population spread %.4f of mean (min %d, max %d) exceeds 2%%",
				shards, spread, min, max)
		}
	}
}

// TestMailboxOrdersSameTimeDeliveries posts same-time cross-shard
// deliveries from several source shards into one component's mailbox and
// checks the drain replays them in key order — the placement-invariant
// order — at every shard count.
func TestMailboxOrdersSameTimeDeliveries(t *testing.T) {
	run := func(shards int) []uint64 {
		ss := NewSharded(shards, 1)
		home := ss.ShardFor("component-under-test")
		mb := NewMailbox(ss.Shard(home))
		var got []uint64
		// Senders live on distinct identities (hence possibly distinct
		// shards) and all deliver at t=2.
		for i := 0; i < 6; i++ {
			key := uint64(i)
			src := ss.ShardFor(fmt.Sprintf("sender-%d", i))
			ss.Shard(src).At(0.5, func() {
				ss.Send(src, home, 2, "sender", func() {
					mb.Post(^key, func() { got = append(got, key) }) // reversed keys
				})
			})
		}
		ss.Run()
		return got
	}
	want := run(1)
	if len(want) != 6 {
		t.Fatalf("drain ran %d posts, want 6", len(want))
	}
	// Keys were bit-flipped, so replay order is descending original key.
	for i, k := range want {
		if k != uint64(5-i) {
			t.Fatalf("position %d replayed key %d, want %d (order %v)", i, k, 5-i, want)
		}
	}
	for _, shards := range []int{2, 3, 8} {
		got := run(shards)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%d shards: position %d key %d, serial %d", shards, i, got[i], want[i])
			}
		}
	}
}

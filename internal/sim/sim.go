// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, a cancelable event queue, seeded random-number streams,
// and first-come-first-served queueing stations with time-varying service
// rates.
//
// All device-level experiments in this repository (disks, switches, RAID
// arrays) run on this kernel so that months of simulated operation complete
// in milliseconds and every run is reproducible from a seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in seconds since the start of
// the simulation.
type Time = float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// event is a scheduled callback. Events are ordered by time, with ties
// broken by insertion sequence so that execution order is deterministic.
type event struct {
	at      Time
	seq     uint64
	fn      func()
	index   int // heap index, -1 once popped or canceled
	stopped bool
}

// Timer is a handle to a scheduled event that can be canceled before it
// fires.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the event was still pending;
// it returns false if the event already fired or was already stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.stopped || t.ev.index < 0 {
		return false
	}
	t.ev.stopped = true
	return true
}

// Pending reports whether the timer's event has yet to fire.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.stopped && t.ev.index >= 0
}

// eventHeap is a min-heap of events ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Simulator owns the virtual clock and the pending-event queue.
// The zero value is not ready for use; call New.
type Simulator struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	fired   uint64
}

// New returns a simulator with the clock at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// EventsFired returns the number of events executed so far, a useful
// determinism check in tests.
func (s *Simulator) EventsFired() uint64 { return s.fired }

// Pending returns the number of events still queued (including events that
// were stopped but not yet discarded).
func (s *Simulator) Pending() int { return len(s.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a logic error in the caller, and silently
// clamping would hide it.
func (s *Simulator) At(t Time, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: schedule at non-finite time %v", t))
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d seconds from now. A non-positive d runs the
// event at the current time, after events already queued for this instant.
func (s *Simulator) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
// Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// step pops and executes the next event. It reports false when the queue is
// empty.
func (s *Simulator) step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.stopped {
			continue
		}
		s.now = ev.at
		s.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to exactly t. Events scheduled after t remain queued.
func (s *Simulator) RunUntil(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, s.now))
	}
	s.stopped = false
	for !s.stopped {
		// Peek for the next runnable event within the horizon.
		idx := -1
		for len(s.events) > 0 && s.events[0].stopped {
			heap.Pop(&s.events)
		}
		if len(s.events) > 0 && s.events[0].at <= t {
			idx = 0
		}
		if idx < 0 {
			break
		}
		s.step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, a cancelable event queue, seeded random-number streams,
// and first-come-first-served queueing stations with time-varying service
// rates.
//
// All device-level experiments in this repository (disks, switches, RAID
// arrays) run on this kernel so that months of simulated operation complete
// in milliseconds and every run is reproducible from a seed.
//
// The kernel is built for the hot path: events live in a pooled arena and
// are ordered by a hand-rolled 4-ary min-heap of arena indices, so a
// schedule/fire cycle performs no heap allocation in steady state and no
// interface boxing ever. Timer handles are values carrying a generation
// counter, which keeps them safe against arena slot reuse: a handle whose
// event has fired, been stopped, or whose slot now holds a newer event
// reports not-pending and refuses to stop the newcomer.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in seconds since the start of
// the simulation.
type Time = float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// event is a scheduled callback, stored in the simulator's arena. Events
// are ordered by time, with ties broken by insertion sequence so that
// execution order is deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
	// pos is the event's position in the heap, -1 once fired or stopped.
	pos int32
	// gen increments every time the arena slot is released, invalidating
	// any Timer handles that still point at the slot.
	gen uint32
}

// Timer is a value handle to a scheduled event that can be canceled before
// it fires. The zero Timer is valid and behaves as an already-expired
// timer. Handles stay safe after their event fires or is stopped, even if
// the underlying arena slot is reused for a later event.
type Timer struct {
	s   *Simulator
	idx int32
	gen uint32
}

// Stop cancels the timer, removes the event from the queue, and releases
// the captured closure immediately. It reports whether the event was still
// pending; it returns false if the event already fired or was already
// stopped.
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	ev := &t.s.arena[t.idx]
	if ev.gen != t.gen || ev.pos < 0 {
		return false
	}
	t.s.removeAt(int(ev.pos))
	t.s.release(t.idx)
	return true
}

// Pending reports whether the timer's event has yet to fire.
func (t Timer) Pending() bool {
	if t.s == nil {
		return false
	}
	ev := &t.s.arena[t.idx]
	return ev.gen == t.gen && ev.pos >= 0
}

// heapArity is the branching factor of the event heap. A 4-ary heap halves
// the tree depth of a binary heap, trading slightly more comparisons per
// level for fewer cache-missing swaps — a win for the sift-down-dominated
// pop path.
const heapArity = 4

// StationProbe observes station occupancy transitions: it is called after
// every change to a station's queue or in-service state (submit, completion,
// failure), with the virtual time of the transition. Probes are the
// profiling plane's sampling hook — they must not mutate the station or
// schedule events.
type StationProbe func(now Time, st *Station)

// Simulator owns the virtual clock and the pending-event queue.
// The zero value is not ready for use; call New.
type Simulator struct {
	now Time
	// arena holds every event slot ever allocated; free lists the slots
	// currently available for reuse; heap holds arena indices of the live
	// (scheduled, unstopped) events ordered by (at, seq).
	arena   []event
	free    []int32
	heap    []int32
	seq     uint64
	stopped bool
	fired   uint64

	// stationProbe, when non-nil, is invoked on every station occupancy
	// transition in this simulation. Each transition costs one nil check
	// when no probe is installed.
	stationProbe StationProbe
}

// New returns a simulator with the clock at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// SetStationProbe installs (or, with nil, removes) the probe called on
// every station occupancy transition. Exactly one probe can be active per
// simulator; the profiling plane installs one that samples queue depth and
// backlog into time series.
func (s *Simulator) SetStationProbe(p StationProbe) { s.stationProbe = p }

// EventsFired returns the number of events executed so far, a useful
// determinism check in tests.
func (s *Simulator) EventsFired() uint64 { return s.fired }

// Pending returns the number of live events still queued. Stopped events
// are removed from the queue eagerly, so they never inflate this count.
func (s *Simulator) Pending() int { return len(s.heap) }

// alloc takes a slot from the free list (or grows the arena) and
// initializes it for a new event.
func (s *Simulator) alloc(t Time, fn func()) int32 {
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.arena = append(s.arena, event{})
		idx = int32(len(s.arena) - 1)
	}
	ev := &s.arena[idx]
	ev.at = t
	ev.seq = s.seq
	ev.fn = fn
	s.seq++
	return idx
}

// release returns a slot to the free list, dropping the closure so it can
// be collected immediately and bumping the generation so stale Timer
// handles go dead.
func (s *Simulator) release(idx int32) {
	ev := &s.arena[idx]
	ev.fn = nil
	ev.pos = -1
	ev.gen++
	s.free = append(s.free, idx)
}

// less orders heap entries by (at, seq).
func (s *Simulator) less(a, b int32) bool {
	ea, eb := &s.arena[a], &s.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// siftUp restores heap order from position i toward the root.
func (s *Simulator) siftUp(i int) {
	idx := s.heap[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		p := s.heap[parent]
		if !s.less(idx, p) {
			break
		}
		s.heap[i] = p
		s.arena[p].pos = int32(i)
		i = parent
	}
	s.heap[i] = idx
	s.arena[idx].pos = int32(i)
}

// siftDown restores heap order from position i toward the leaves.
func (s *Simulator) siftDown(i int) {
	idx := s.heap[i]
	n := len(s.heap)
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		best := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.less(s.heap[c], s.heap[best]) {
				best = c
			}
		}
		b := s.heap[best]
		if !s.less(b, idx) {
			break
		}
		s.heap[i] = b
		s.arena[b].pos = int32(i)
		i = best
	}
	s.heap[i] = idx
	s.arena[idx].pos = int32(i)
}

// removeAt deletes the heap entry at position i, preserving heap order.
func (s *Simulator) removeAt(i int) {
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap = s.heap[:n]
	if i == n {
		return
	}
	s.heap[i] = last
	s.arena[last].pos = int32(i)
	s.siftDown(i)
	s.siftUp(i)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a logic error in the caller, and silently
// clamping would hide it.
func (s *Simulator) At(t Time, fn func()) Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: schedule at non-finite time %v", t))
	}
	idx := s.alloc(t, fn)
	i := len(s.heap)
	s.heap = append(s.heap, idx)
	s.arena[idx].pos = int32(i)
	s.siftUp(i)
	return Timer{s: s, idx: idx, gen: s.arena[idx].gen}
}

// After schedules fn to run d seconds from now. A non-positive d runs the
// event at the current time, after events already queued for this instant.
func (s *Simulator) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
// Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// step pops and executes the next event. It reports false when the queue is
// empty. Stopped events never reach here: Timer.Stop removes them eagerly.
func (s *Simulator) step() bool {
	if len(s.heap) == 0 {
		return false
	}
	idx := s.heap[0]
	s.removeAt(0)
	ev := &s.arena[idx]
	s.now = ev.at
	fn := ev.fn
	s.release(idx)
	s.fired++
	fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
}

// nextAt returns the time of the earliest queued event, or +Inf when the
// queue is empty. The sharded coordinator polls it to pick each safe
// window's base time.
func (s *Simulator) nextAt() Time {
	if len(s.heap) == 0 {
		return math.Inf(1)
	}
	return s.arena[s.heap[0]].at
}

// runWindow executes every queued event with time strictly before h and
// not after limit, leaving the clock at the last executed event. It is the
// per-shard body of the sharded coordinator's safe window: events at or
// beyond the horizon h belong to a later window, because another shard may
// still deliver events ahead of them.
func (s *Simulator) runWindow(h, limit Time) {
	for len(s.heap) > 0 {
		at := s.arena[s.heap[0]].at
		if at >= h || at > limit {
			return
		}
		s.step()
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to exactly t. Events scheduled after t remain queued.
func (s *Simulator) RunUntil(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, s.now))
	}
	s.stopped = false
	for !s.stopped && len(s.heap) > 0 && s.arena[s.heap[0]].at <= t {
		s.step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

package sim

import (
	"testing"

	"failstutter/internal/trace"
)

// TestSetTelemetryInstallsPerShardCollectors checks the wiring contract:
// each non-nil sink gets one collector per shard, tracers are
// shard-qualified (distinct instances), and sinks left nil stay off.
func TestSetTelemetryInstallsPerShardCollectors(t *testing.T) {
	ss := NewSharded(3, 1)
	dst := trace.NewTracer()
	reg := trace.NewRegistry()
	ss.SetTelemetry(TelemetrySinks{Tracer: dst, Metrics: reg})
	seen := map[*trace.Tracer]bool{}
	for i := 0; i < 3; i++ {
		tr := ss.ShardTracer(i)
		if tr == nil || tr == dst {
			t.Fatalf("shard %d tracer = %v, want a fresh per-shard collector", i, tr)
		}
		if seen[tr] {
			t.Fatalf("shard %d shares a tracer collector with another shard", i)
		}
		seen[tr] = true
		if ss.ShardMetrics(i) == nil || ss.ShardMetrics(i) == reg {
			t.Fatalf("shard %d metrics collector missing or aliased to the sink", i)
		}
		if ss.ShardAudit(i) != nil {
			t.Fatalf("shard %d has an audit collector with the audit sink off", i)
		}
	}
}

// TestMergeTelemetryFoldsAtMaxClockAndDetaches runs uneven shard-local
// work, merges, and checks: spans from every shard land in the sink, the
// returned fold time is the maximum shard clock (the one end-of-run
// instant that is placement-invariant), and a second call is a no-op —
// the collectors detach on the first fold.
func TestMergeTelemetryFoldsAtMaxClockAndDetaches(t *testing.T) {
	ss := NewSharded(2, 1)
	dst := trace.NewTracer()
	ss.SetTelemetry(TelemetrySinks{Tracer: dst})
	a := NewStation(ss.Shard(0), "a", 1e6)
	b := NewStation(ss.Shard(1), "b", 1e6)
	a.SetTracer(ss.ShardTracer(0))
	b.SetTracer(ss.ShardTracer(1))
	a.SubmitFunc(1e6, nil) // 1 s of service on shard 0
	b.SubmitFunc(3e6, nil) // 3 s of service on shard 1
	ss.Run()
	end := ss.MergeTelemetry()
	if end < 3 {
		t.Fatalf("fold time %v, want the maximum shard clock (>= 3)", end)
	}
	n := dst.Len()
	if n == 0 {
		t.Fatal("merge delivered no spans to the sink tracer")
	}
	names := map[string]bool{}
	for _, sp := range dst.Spans() {
		names[sp.Name] = true
	}
	if !names["service"] {
		t.Fatalf("merged spans missing station activity: %v", names)
	}
	if again := ss.MergeTelemetry(); again != end {
		t.Fatalf("second MergeTelemetry returned %v, want %v (idempotent)", again, end)
	}
	if dst.Len() != n {
		t.Fatalf("second MergeTelemetry changed the sink: %d -> %d spans", n, dst.Len())
	}
	if ss.ShardTracer(0) != nil {
		t.Fatal("shard collectors still attached after MergeTelemetry")
	}
}

// TestShardedUntracedZeroAllocs pins the telemetry-off sharded hot path
// at zero allocations: with no SetTelemetry call, ShardTracer is nil,
// stations take the disabled-tracer branch, and the window loop reuses
// its buffers — submitting and running windows must not allocate once
// the arenas have warmed up. Only one shard carries work so the window
// runs inline; the multi-active case spawns per-window goroutines, a
// cost of the parallel schedule itself, not of telemetry.
func TestShardedUntracedZeroAllocs(t *testing.T) {
	ss := NewSharded(2, 1)
	a := NewStation(ss.Shard(0), "a", 1e6)
	if ss.ShardTracer(0) != nil || ss.ShardMetrics(1) != nil {
		t.Fatal("telemetry collectors present without SetTelemetry")
	}
	for i := 0; i < 4096; i++ { // warm rings, arenas, timer pools, window buffers
		a.SubmitFunc(1, nil)
	}
	limit := 8.0
	ss.RunUntil(limit)
	req := &Request{}
	allocs := testing.AllocsPerRun(500, func() {
		*req = Request{Size: 1}
		a.Submit(req)
		limit++
		ss.RunUntil(limit)
	})
	if allocs != 0 {
		t.Fatalf("telemetry-off sharded submit+window path allocates %v per op, want 0", allocs)
	}
}

package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
)

// ShardedSimulator runs one simulation on all cores: components are
// partitioned into shard groups, each shard owning a full event kernel
// (its own arena, 4-ary heap and sequence counter), and the shards advance
// together through conservative safe windows.
//
// The synchronization protocol is the bounded-lag variant of conservative
// (null-message) parallel discrete-event simulation. Let T be the earliest
// pending event time across all shards and L the lookahead — a lower bound
// on the delay of any cross-shard interaction (for simulated hardware, the
// minimum link latency or service time). Every event in [T, T+L) is safe
// to execute without coordination: an event at time u >= T can only
// influence another shard at or after u+L >= T+L, beyond the window. Each
// window therefore runs all shards in parallel up to the horizon H = T+L,
// then a barrier delivers the buffered cross-shard events and the next
// window begins.
//
// Determinism is by construction, at any shard count:
//
//   - each shard's events execute in (time, seq) order exactly as a
//     lone Simulator would execute them;
//   - cross-shard events are buffered per source shard and delivered at
//     the barrier in (time, source shard, source seq) order, so the
//     destination's tie-break sequence numbers never depend on goroutine
//     scheduling;
//   - the window horizon sequence depends only on the global event set
//     (the minimum next-event time is the same however components are
//     sharded), so barrier-driven logic fires identically at any shard
//     count.
//
// For results to be byte-identical across *different* shard counts, the
// usual kernel discipline applies, plus one rule: every component draws
// from its own RNG stream forked by component identity (the repository
// idiom), and same-timestamp events on *different* components must
// commute (their relative order is the one ordering that legitimately
// varies with the partition). The fleet experiments and the determinism
// suite enforce exactly this.
type ShardedSimulator struct {
	shards    []*Simulator
	lookahead Duration

	// outbox[src] buffers cross-shard events emitted by shard src during
	// the current window. Each shard appends only to its own buffer, so
	// the window needs no locks; the barrier drains all of them.
	outbox [][]crossEvent
	// merged is the barrier's reusable sort buffer.
	merged []crossEvent
	// sendSeq[src] numbers shard src's sends, the final tie-break of the
	// delivery order.
	sendSeq []uint64

	// barrier, when non-nil, runs single-threaded after every window with
	// the window horizon. Fleet-wide logic (peer detectors sweeping
	// samples gathered shard-locally) hangs off this hook; it may inspect
	// any shard and schedule new events at or after the horizon.
	barrier func(horizon Time)

	// inWindow marks the parallel section, in which cross-shard sends
	// must respect the lookahead bound and barrier-only calls must not
	// run.
	inWindow bool
}

// crossEvent is a buffered cross-shard message: fn will be scheduled on
// shard dst at time at. Delivery order is (at, src, seq).
type crossEvent struct {
	at  Time
	seq uint64
	src int32
	dst int32
	fn  func()
}

// NewSharded builds a simulator partitioned into the given number of
// shards with the given lookahead bound. A shard count of 1 degenerates to
// a windowed — but otherwise identical — serial simulation, which is the
// baseline the determinism suite compares against. The lookahead must be
// positive: it is the protocol's safety margin, derived from the minimum
// cross-shard interaction delay.
func NewSharded(shards int, lookahead Duration) *ShardedSimulator {
	if shards < 1 {
		panic(fmt.Sprintf("sim: sharded simulator needs at least 1 shard, got %d", shards))
	}
	if !(lookahead > 0) || math.IsInf(lookahead, 0) {
		panic(fmt.Sprintf("sim: sharded simulator needs a positive finite lookahead, got %v", lookahead))
	}
	ss := &ShardedSimulator{
		shards:    make([]*Simulator, shards),
		lookahead: lookahead,
		outbox:    make([][]crossEvent, shards),
		sendSeq:   make([]uint64, shards),
	}
	for i := range ss.shards {
		ss.shards[i] = New()
	}
	return ss
}

// Shards returns the shard count.
func (ss *ShardedSimulator) Shards() int { return len(ss.shards) }

// Lookahead returns the conservative lookahead bound.
func (ss *ShardedSimulator) Lookahead() Duration { return ss.lookahead }

// Shard returns shard i's kernel. Components pinned to shard i are built
// on it exactly as they would be on a lone Simulator; during a window,
// shard i's events must touch only state owned by shard i.
func (ss *ShardedSimulator) Shard(i int) *Simulator { return ss.shards[i] }

// ShardFor assigns a component key to a shard: a stable FNV-1a hash of the
// identity, never of execution order, so a component lands on the same
// shard in every run at a given shard count.
func (ss *ShardedSimulator) ShardFor(key string) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(len(ss.shards)))
}

// Send schedules fn on shard dst at absolute time at, from code running on
// shard src. The event is buffered and delivered at the next barrier in
// (time, source shard, source sequence) order. Inside a window the time
// must respect the lookahead bound (at >= source now + lookahead) — that
// bound is what makes the window safe to run in parallel, so violating it
// panics loudly rather than corrupting the timeline. Same-shard sends take
// the same buffered path, keeping delivery semantics uniform.
func (ss *ShardedSimulator) Send(src, dst int, at Time, fn func()) {
	s := ss.shards[src]
	if ss.inWindow {
		if min := s.now + ss.lookahead; at < min {
			panic(fmt.Sprintf("sim: cross-shard send at %v violates lookahead bound %v (now %v + lookahead %v)",
				at, min, s.now, ss.lookahead))
		}
	} else if at < s.now {
		panic(fmt.Sprintf("sim: cross-shard send at %v before source now %v", at, s.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("sim: cross-shard send at non-finite time %v", at))
	}
	ss.outbox[src] = append(ss.outbox[src], crossEvent{
		at: at, seq: ss.sendSeq[src], src: int32(src), dst: int32(dst), fn: fn,
	})
	ss.sendSeq[src]++
}

// SetBarrier installs (or, with nil, removes) the hook run single-threaded
// after every safe window with the window's horizon. All events before the
// horizon have executed on every shard when it runs, so it is the natural
// home for fleet-wide logic that must observe a consistent cut: it may
// read any shard's components and schedule follow-up events at or after
// the horizon.
func (ss *ShardedSimulator) SetBarrier(fn func(horizon Time)) { ss.barrier = fn }

// Now returns the committed global virtual time: the minimum of the shard
// clocks. Individual shards may be ahead within the current window.
func (ss *ShardedSimulator) Now() Time {
	t := ss.shards[0].now
	for _, s := range ss.shards[1:] {
		if s.now < t {
			t = s.now
		}
	}
	return t
}

// EventsFired returns the total events executed across all shards: the
// kernel fires exactly what was scheduled, at any shard count. Callers
// that schedule per-shard bookkeeping events (e.g. one sampler chain per
// shard) must subtract them before reporting a shard-invariant figure, as
// the fleet experiment does.
func (ss *ShardedSimulator) EventsFired() uint64 {
	var n uint64
	for _, s := range ss.shards {
		n += s.fired
	}
	return n
}

// Pending returns the number of live events queued across all shards plus
// any cross-shard events awaiting delivery.
func (ss *ShardedSimulator) Pending() int {
	n := 0
	for _, s := range ss.shards {
		n += len(s.heap)
	}
	for _, box := range ss.outbox {
		n += len(box)
	}
	return n
}

// nextTime returns the earliest pending event time across shards and
// undelivered cross-shard sends, or +Inf when everything is drained.
func (ss *ShardedSimulator) nextTime() Time {
	t := math.Inf(1)
	for _, s := range ss.shards {
		if at := s.nextAt(); at < t {
			t = at
		}
	}
	for _, box := range ss.outbox {
		for _, ev := range box {
			if ev.at < t {
				t = ev.at
			}
		}
	}
	return t
}

// Run executes safe windows until every shard's queue and every mailbox
// drains.
func (ss *ShardedSimulator) Run() { ss.RunUntil(math.Inf(1)) }

// RunUntil executes all events scheduled at or before limit, window by
// window, then advances every shard clock to exactly limit (when finite).
// Events scheduled after limit remain queued, exactly as Simulator.RunUntil
// leaves them.
func (ss *ShardedSimulator) RunUntil(limit Time) {
	for {
		t := ss.nextTime()
		if t > limit || math.IsInf(t, 1) {
			break
		}
		h := t + ss.lookahead
		ss.runOneWindow(h, limit)
		ss.deliver()
		if ss.barrier != nil {
			ss.barrier(h)
		}
	}
	if !math.IsInf(limit, 1) {
		for _, s := range ss.shards {
			if s.now < limit {
				s.now = limit
			}
		}
	}
}

// runOneWindow executes every shard's events in [now, h) ∩ [0, limit] —
// in parallel when more than one shard has eligible work, inline
// otherwise, so a single-shard configuration never pays goroutine
// overhead.
func (ss *ShardedSimulator) runOneWindow(h, limit Time) {
	ss.inWindow = true
	active := 0
	var only *Simulator
	for _, s := range ss.shards {
		if at := s.nextAt(); at < h && at <= limit {
			active++
			only = s
		}
	}
	switch {
	case active == 0:
		// Nothing eligible: all pending work is in mailboxes.
	case active == 1:
		only.runWindow(h, limit)
	default:
		var wg sync.WaitGroup
		for _, s := range ss.shards {
			if at := s.nextAt(); !(at < h && at <= limit) {
				continue
			}
			wg.Add(1)
			go func(s *Simulator) {
				defer wg.Done()
				s.runWindow(h, limit)
			}(s)
		}
		wg.Wait()
	}
	ss.inWindow = false
}

// deliver merges every outbox, orders the events by (time, source shard,
// source sequence) and inserts them into their destination shards. Running
// at the barrier, single-threaded, the destination sequence numbers —
// and with them every future tie-break — are deterministic.
func (ss *ShardedSimulator) deliver() {
	ss.merged = ss.merged[:0]
	for src, box := range ss.outbox {
		ss.merged = append(ss.merged, box...)
		// Release the delivered closures promptly.
		for i := range box {
			box[i].fn = nil
		}
		ss.outbox[src] = box[:0]
	}
	if len(ss.merged) == 0 {
		return
	}
	sortCrossEvents(ss.merged)
	for i := range ss.merged {
		ev := &ss.merged[i]
		ss.shards[ev.dst].At(ev.at, ev.fn)
		ev.fn = nil
	}
}

// sortCrossEvents orders by (time, source shard, source sequence) — the
// delivery tie-break. The key is unique (seq is per source), so an
// unstable sort is deterministic. Delivery runs once per barrier, off the
// per-event hot path, so sort.Slice's small bookkeeping cost is fine.
func sortCrossEvents(evs []crossEvent) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
}

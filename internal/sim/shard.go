package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"time"
)

// ShardedSimulator runs one simulation on all cores: components are
// partitioned into shard groups, each shard owning a full event kernel
// (its own arena, 4-ary heap and sequence counter), and the shards advance
// together through conservative safe windows.
//
// The synchronization protocol is the bounded-lag variant of conservative
// (null-message) parallel discrete-event simulation. Let T be the earliest
// pending event time across all shards and L the lookahead — a lower bound
// on the delay of any cross-shard interaction (for simulated hardware, the
// minimum link latency or service time). Every event in [T, T+L) is safe
// to execute without coordination: an event at time u >= T can only
// influence another shard at or after u+L >= T+L, beyond the window. Each
// window therefore runs all shards in parallel up to the horizon H = T+L,
// then a barrier delivers the buffered cross-shard events and the next
// window begins.
//
// Cross-shard sends take a batched data path built for throughput: each
// (source, destination) pair owns an outbox lane that the source appends
// to in send order — already sorted by construction when senders emit at
// monotone times, with a per-lane sort fallback otherwise. At the barrier
// the lanes feeding each destination are combined by a k-way streaming
// merge keyed on (time, source shard, source sequence) and the merged run
// is pushed into the destination heap as one batch, restoring heap order
// with a single bounded Floyd pass over the affected ancestor cone rather
// than a sift per event.
//
// Determinism is by construction, at any shard count:
//
//   - each shard's events execute in (time, seq) order exactly as a
//     lone Simulator would execute them;
//   - cross-shard events are buffered per (source, destination) lane and
//     delivered at the barrier in (time, source shard, source seq) order,
//     so the destination's tie-break sequence numbers never depend on
//     goroutine scheduling;
//   - the window horizon sequence depends only on the global event set
//     (the minimum next-event time is the same however components are
//     sharded), so barrier-driven logic fires identically at any shard
//     count.
//
// For results to be byte-identical across *different* shard counts, the
// usual kernel discipline applies, plus one rule: every component draws
// from its own RNG stream forked by component identity (the repository
// idiom), and same-timestamp events on *different* components must
// commute (their relative order is the one ordering that legitimately
// varies with the partition). Planes that cannot make same-time events
// commute order them explicitly instead: a Mailbox gathers same-time
// deliveries and replays them sorted by a placement-invariant key.
type ShardedSimulator struct {
	shards    []*Simulator
	lookahead Duration

	// lanes[src*k+dst] buffers cross-shard events emitted by shard src for
	// shard dst during the current window. Each shard appends only to its
	// own row of lanes, so the window needs no locks; the barrier drains
	// all of them with a per-destination k-way merge.
	lanes []lane
	// batch is the barrier's reusable per-destination merge buffer.
	batch []laneEvent
	// sendSeq[src] numbers shard src's sends, the final tie-break of the
	// delivery order.
	sendSeq []uint64

	// barrier, when non-nil, runs single-threaded after every window with
	// the window horizon. Fleet-wide logic (peer detectors sweeping
	// samples gathered shard-locally) hangs off this hook; it may inspect
	// any shard and schedule new events at or after the horizon.
	barrier func(horizon Time)

	// inWindow marks the parallel section, in which cross-shard sends
	// must respect the lookahead bound and barrier-only calls must not
	// run.
	inWindow bool

	// prof, when non-nil, accumulates barrier cost statistics.
	prof *BarrierStats

	// stopped requests that the window loop halt at the next barrier;
	// pending events stay queued, exactly as Simulator.Stop leaves them.
	stopped bool

	// placement, when non-nil, overrides the identity hash for the listed
	// stations — the construction-time rebalancing plan (SetPlacement).
	placement map[string]int

	// barrierWorkers and pool hold the reusable barrier worker pool
	// (BarrierPool), which fleet-wide barrier hooks fan sweeps across.
	barrierWorkers int
	pool           *WorkerPool

	// tel, when non-nil, holds the per-shard telemetry collectors
	// installed by SetTelemetry and folded into the destination sinks by
	// MergeTelemetry.
	tel *shardTelemetry
}

// lane is one (source, destination) outbox: events appended in source
// send order. sorted tracks whether the appended times are nondecreasing
// — the common case, since senders emit at now+latency with monotone now —
// letting the barrier skip the sort fallback.
type lane struct {
	evs    []laneEvent
	sorted bool
}

// laneEvent is a buffered cross-shard message within one lane: fn will be
// scheduled on the lane's destination at time at; seq is the source
// shard's send sequence, the final delivery tie-break.
type laneEvent struct {
	at  Time
	seq uint64
	fn  func()
}

// NewSharded builds a simulator partitioned into the given number of
// shards with the given lookahead bound. A shard count of 1 degenerates to
// a windowed — but otherwise identical — serial simulation, which is the
// baseline the determinism suite compares against. The lookahead must be
// positive: it is the protocol's safety margin, derived from the minimum
// cross-shard interaction delay.
func NewSharded(shards int, lookahead Duration) *ShardedSimulator {
	if shards < 1 {
		panic(fmt.Sprintf("sim: sharded simulator needs at least 1 shard, got %d", shards))
	}
	if !(lookahead > 0) || math.IsInf(lookahead, 0) {
		panic(fmt.Sprintf("sim: sharded simulator needs a positive finite lookahead, got %v", lookahead))
	}
	ss := &ShardedSimulator{
		shards:    make([]*Simulator, shards),
		lookahead: lookahead,
		lanes:     make([]lane, shards*shards),
		sendSeq:   make([]uint64, shards),
	}
	for i := range ss.lanes {
		ss.lanes[i].sorted = true
	}
	for i := range ss.shards {
		ss.shards[i] = New()
	}
	return ss
}

// Shards returns the shard count.
func (ss *ShardedSimulator) Shards() int { return len(ss.shards) }

// Lookahead returns the conservative lookahead bound.
func (ss *ShardedSimulator) Lookahead() Duration { return ss.lookahead }

// Shard returns shard i's kernel. Components pinned to shard i are built
// on it exactly as they would be on a lone Simulator; during a window,
// shard i's events must touch only state owned by shard i.
func (ss *ShardedSimulator) Shard(i int) *Simulator { return ss.shards[i] }

// ShardFor assigns a component key to a shard: the placement plan's
// entry when one was installed (SetPlacement), else a stable FNV-1a hash
// of the identity — never of execution order, so a component lands on
// the same shard in every run at a given shard count and plan.
func (ss *ShardedSimulator) ShardFor(key string) int {
	if shard, ok := ss.placement[key]; ok {
		return shard
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(len(ss.shards)))
}

// Send schedules fn on shard dst at absolute time at, from code running on
// shard src. The event is appended to the (src, dst) outbox lane and
// delivered at the next barrier in (time, source shard, source sequence)
// order. Inside a window the time must respect the lookahead bound
// (at >= source now + lookahead) — that bound is what makes the window
// safe to run in parallel, so violating it panics loudly, naming the
// offending component, rather than corrupting the timeline. origin
// identifies the sending component for that diagnostic; it is not part of
// the delivery order. Same-shard sends take the same buffered path,
// keeping delivery semantics uniform.
func (ss *ShardedSimulator) Send(src, dst int, at Time, origin string, fn func()) {
	s := ss.shards[src]
	if ss.inWindow {
		if min := s.now + ss.lookahead; at < min {
			panic(fmt.Sprintf("sim: %s: cross-shard send (shard %d -> %d) at %v violates lookahead bound %v (now %v + lookahead %v)",
				origin, src, dst, at, min, s.now, ss.lookahead))
		}
	} else if at < s.now {
		panic(fmt.Sprintf("sim: %s: cross-shard send (shard %d -> %d) at %v before source now %v",
			origin, src, dst, at, s.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("sim: %s: cross-shard send (shard %d -> %d) at non-finite time %v",
			origin, src, dst, at))
	}
	ln := &ss.lanes[src*len(ss.shards)+dst]
	if n := len(ln.evs); n > 0 && at < ln.evs[n-1].at {
		ln.sorted = false
	}
	ln.evs = append(ln.evs, laneEvent{at: at, seq: ss.sendSeq[src], fn: fn})
	ss.sendSeq[src]++
}

// SetBarrier installs (or, with nil, removes) the hook run single-threaded
// after every safe window with the window's horizon. All events before the
// horizon have executed on every shard when it runs, so it is the natural
// home for fleet-wide logic that must observe a consistent cut: it may
// read any shard's components and schedule follow-up events at or after
// the horizon.
func (ss *ShardedSimulator) SetBarrier(fn func(horizon Time)) { ss.barrier = fn }

// Now returns the committed global virtual time: the minimum of the shard
// clocks. Individual shards may be ahead within the current window.
func (ss *ShardedSimulator) Now() Time {
	t := ss.shards[0].now
	for _, s := range ss.shards[1:] {
		if s.now < t {
			t = s.now
		}
	}
	return t
}

// EventsFired returns the total events executed across all shards: the
// kernel fires exactly what was scheduled, at any shard count. Callers
// that schedule per-shard bookkeeping events (e.g. one sampler chain per
// shard) must subtract them before reporting a shard-invariant figure, as
// the fleet experiment does.
func (ss *ShardedSimulator) EventsFired() uint64 {
	var n uint64
	for _, s := range ss.shards {
		n += s.fired
	}
	return n
}

// Pending returns the number of live events queued across all shards plus
// any cross-shard events awaiting delivery.
func (ss *ShardedSimulator) Pending() int {
	n := 0
	for _, s := range ss.shards {
		n += len(s.heap)
	}
	for i := range ss.lanes {
		n += len(ss.lanes[i].evs)
	}
	return n
}

// nextTime returns the earliest pending event time across shards and
// undelivered cross-shard sends, or +Inf when everything is drained.
func (ss *ShardedSimulator) nextTime() Time {
	t := math.Inf(1)
	for _, s := range ss.shards {
		if at := s.nextAt(); at < t {
			t = at
		}
	}
	for i := range ss.lanes {
		for _, ev := range ss.lanes[i].evs {
			if ev.at < t {
				t = ev.at
			}
		}
	}
	return t
}

// Run executes safe windows until every shard's queue and every lane
// drains.
func (ss *ShardedSimulator) Run() { ss.RunUntil(math.Inf(1)) }

// Stop requests that the run halt after the current window's barrier.
// Only the barrier hook may call it — it is the single-threaded point with
// authority over the whole fleet — and pending events stay queued, exactly
// as Simulator.Stop leaves them. The next Run or RunUntil clears the
// request.
func (ss *ShardedSimulator) Stop() { ss.stopped = true }

// RunUntil executes all events scheduled at or before limit, window by
// window, then advances every shard clock to exactly limit (when finite).
// Events scheduled after limit remain queued, exactly as Simulator.RunUntil
// leaves them.
func (ss *ShardedSimulator) RunUntil(limit Time) {
	prof := ss.prof
	ss.stopped = false
	for !ss.stopped {
		t := ss.nextTime()
		if t > limit || math.IsInf(t, 1) {
			break
		}
		h := t + ss.lookahead
		var wall time.Time
		var fired0 uint64
		if prof != nil {
			wall = time.Now()
			fired0 = ss.EventsFired()
		}
		active := ss.runOneWindow(h, limit)
		if prof != nil {
			mid := time.Now()
			prof.WindowNanos += mid.Sub(wall).Nanoseconds()
			prof.Windows++
			if active <= 1 {
				prof.SoloWindows++
			}
			df := ss.EventsFired() - fired0
			prof.Fired += df
			if df > prof.MaxWindowFired {
				prof.MaxWindowFired = df
			}
			wall = mid
		}
		ss.deliver()
		var delivered time.Time
		if prof != nil {
			delivered = time.Now()
			prof.DeliverNanos += delivered.Sub(wall).Nanoseconds()
		}
		if ss.barrier != nil {
			ss.barrier(h)
		}
		if prof != nil {
			end := time.Now()
			prof.SweepNanos += end.Sub(delivered).Nanoseconds()
			prof.BarrierNanos += end.Sub(wall).Nanoseconds()
		}
	}
	if !ss.stopped && !math.IsInf(limit, 1) {
		for _, s := range ss.shards {
			if s.now < limit {
				s.now = limit
			}
		}
	}
}

// runOneWindow executes every shard's events in [now, h) ∩ [0, limit] —
// in parallel when more than one shard has eligible work, inline
// otherwise, so a single-shard configuration never pays goroutine
// overhead. It returns the number of shards that had eligible work.
func (ss *ShardedSimulator) runOneWindow(h, limit Time) int {
	ss.inWindow = true
	active := 0
	var only *Simulator
	for _, s := range ss.shards {
		if at := s.nextAt(); at < h && at <= limit {
			active++
			only = s
		}
	}
	switch {
	case active == 0:
		// Nothing eligible: all pending work is in outbox lanes.
	case active == 1:
		only.runWindow(h, limit)
	default:
		var wg sync.WaitGroup
		for _, s := range ss.shards {
			if at := s.nextAt(); !(at < h && at <= limit) {
				continue
			}
			wg.Add(1)
			go func(s *Simulator) {
				defer wg.Done()
				s.runWindow(h, limit)
			}(s)
		}
		wg.Wait()
	}
	ss.inWindow = false
	return active
}

// deliver drains every outbox lane into its destination shard. For each
// destination the k source lanes — each already in (time, seq) order — are
// combined by a streaming k-way merge keyed on (time, source shard, source
// seq), and the merged run is batch-pushed into the destination heap. The
// global delivery order this produces is exactly the old single-sort
// order: sequence numbers only break ties within one shard's heap, and
// within each destination the merge emits (time, src, seq) order.
func (ss *ShardedSimulator) deliver() {
	k := len(ss.shards)
	total := 0
	for i := range ss.lanes {
		ln := &ss.lanes[i]
		total += len(ln.evs)
		if !ln.sorted {
			sortLane(ln.evs)
			ln.sorted = true
		}
	}
	if total == 0 {
		return
	}
	if ss.prof != nil {
		ss.prof.Delivered += uint64(total)
	}
	for dst := 0; dst < k; dst++ {
		ss.batch = ss.batch[:0]
		ss.mergeForDst(dst)
		if len(ss.batch) > 0 {
			ss.shards[dst].scheduleBatch(ss.batch)
			for i := range ss.batch {
				ss.batch[i].fn = nil
			}
		}
	}
	for i := range ss.lanes {
		ln := &ss.lanes[i]
		for j := range ln.evs {
			ln.evs[j].fn = nil
		}
		ln.evs = ln.evs[:0]
	}
}

// mergeForDst appends destination dst's lanes to ss.batch in (time, source
// shard, source seq) order. Source count k is small (≤ GOMAXPROCS), so a
// linear scan of the lane heads beats a tournament tree: each pick is a
// handful of predictable compares over cache-resident heads.
func (ss *ShardedSimulator) mergeForDst(dst int) {
	k := len(ss.shards)
	// heads[src] indexes the next unconsumed event in lane (src, dst).
	var headsArr [16]int
	var heads []int
	if k <= len(headsArr) {
		heads = headsArr[:k]
		for i := range heads {
			heads[i] = 0
		}
	} else {
		heads = make([]int, k)
	}
	for {
		best := -1
		var bestAt Time
		for src := 0; src < k; src++ {
			evs := ss.lanes[src*k+dst].evs
			if heads[src] >= len(evs) {
				continue
			}
			at := evs[heads[src]].at
			// Strict < keeps the lowest source shard on ties: the
			// (time, src, seq) delivery key.
			if best < 0 || at < bestAt {
				best, bestAt = src, at
			}
		}
		if best < 0 {
			return
		}
		ss.batch = append(ss.batch, ss.lanes[best*k+dst].evs[heads[best]])
		heads[best]++
	}
}

// sortLane restores a lane's (time, seq) order — the fallback for the rare
// sender that emits at non-monotone times within one window. seq is unique
// within a lane, so the unstable sort is deterministic.
func sortLane(evs []laneEvent) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.at != b.at {
			return a.at < b.at
		}
		return a.seq < b.seq
	})
}

// scheduleBatch pushes a merged run of cross-shard events into the shard's
// heap as one batch: allocate and append every event — assigning sequence
// numbers in batch order, which is the delivery order — then restore heap
// order with one bounded Floyd pass over the ancestor cone of the appended
// region. The pass costs O(batch + log heap) instead of a sift per event,
// and any valid heap arrangement pops in identical (time, seq) order, so
// the batch path is byte-equivalent to per-event At calls.
func (s *Simulator) scheduleBatch(evs []laneEvent) {
	n0 := len(s.heap)
	for i := range evs {
		idx := s.alloc(evs[i].at, evs[i].fn)
		s.heap = append(s.heap, idx)
		s.arena[idx].pos = int32(n0 + i)
	}
	n := len(s.heap)
	if n == n0 {
		return
	}
	if n0 == 0 {
		for i := (n - 2) / heapArity; i >= 0; i-- {
			s.siftDown(i)
		}
		return
	}
	// Sift down every ancestor of the appended region, deepest level
	// first: when a node is processed its children's subtrees are already
	// valid heaps (appended leaves trivially, older nodes by induction).
	lo, hi := (n0-1)/heapArity, (n-2)/heapArity
	for {
		for i := hi; i >= lo; i-- {
			s.siftDown(i)
		}
		if lo == 0 {
			return
		}
		lo, hi = (lo-1)/heapArity, (hi-1)/heapArity
	}
}

// BarrierStats accumulates the cost profile of the sharded run: how many
// safe windows executed, how much work each held, how much of it crossed
// shards, and — wall-clock, so nondeterministic and excluded from
// deterministic artifacts — where the time went. Enable with Profile.
type BarrierStats struct {
	// Windows is the number of safe windows executed.
	Windows uint64
	// Fired is the number of events executed inside windows.
	Fired uint64
	// Delivered is the number of cross-shard events delivered at barriers.
	Delivered uint64
	// SoloWindows counts windows in which at most one shard had eligible
	// work — windows that ran inline, with zero parallelism to harvest.
	SoloWindows uint64
	// MaxWindowFired is the largest single-window event count.
	MaxWindowFired uint64
	// WindowNanos and BarrierNanos split the run's wall-clock between the
	// parallel window region and the barrier (delivery + barrier hook).
	// DeliverNanos and SweepNanos split BarrierNanos further: the
	// cross-shard merge-and-push (the merge wall) versus the barrier hook
	// (the sweep wall — where the fleet's detection sweep runs, the part
	// BarrierParallelism exists to shrink). BarrierNanos is always their
	// sum. Wall-clock: nondeterministic across runs and hosts.
	WindowNanos  int64
	BarrierNanos int64
	DeliverNanos int64
	SweepNanos   int64
}

// Profile enables barrier cost accounting (idempotent) and returns the
// live stats, which accumulate across RunUntil calls. Collection costs a
// couple of clock reads per window, so it is off by default.
func (ss *ShardedSimulator) Profile() *BarrierStats {
	if ss.prof == nil {
		ss.prof = &BarrierStats{}
	}
	return ss.prof
}

// PerShardFired returns the events executed by each shard so far — the
// imbalance axis of the barrier profile. Unlike BarrierStats it needs no
// enabling; the kernel counts fired events regardless.
func (ss *ShardedSimulator) PerShardFired() []uint64 {
	out := make([]uint64, len(ss.shards))
	for i, s := range ss.shards {
		out[i] = s.fired
	}
	return out
}

// Mailbox orders same-time cross-shard deliveries on one component by a
// placement-invariant key. Same-time events delivered from different
// source shards arrive in (source shard, source seq) order — which depends
// on the partition — so a component that cannot make them commute posts
// each delivery into its mailbox instead of acting on it directly. The
// mailbox schedules one drain event at the same instant; because every
// same-time delivery is batch-inserted at a barrier before the window that
// executes them, the drain's sequence number exceeds them all, and the
// drain replays the posts sorted by caller-supplied key. Keys must be
// unique per instant (the idiom is senderID<<32 | senderSeq).
type Mailbox struct {
	s         *Simulator
	pending   []mailboxItem
	scheduled bool
}

type mailboxItem struct {
	key uint64
	fn  func()
}

// NewMailbox builds a mailbox draining on the given shard kernel.
func NewMailbox(s *Simulator) *Mailbox { return &Mailbox{s: s} }

// Post enqueues fn under key at the current instant; the drain at the end
// of this instant runs all posts in ascending key order.
func (m *Mailbox) Post(key uint64, fn func()) {
	m.pending = append(m.pending, mailboxItem{key: key, fn: fn})
	if !m.scheduled {
		m.scheduled = true
		m.s.At(m.s.now, m.drain)
	}
}

// drain replays the pending posts in key order and resets the mailbox.
func (m *Mailbox) drain() {
	m.scheduled = false
	items := m.pending
	sort.Slice(items, func(i, j int) bool { return items[i].key < items[j].key })
	// Detach before running: a post during replay starts a fresh batch
	// with its own drain, in a fresh buffer.
	m.pending = nil
	for i := range items {
		items[i].fn()
		items[i].fn = nil
	}
	if m.pending == nil {
		m.pending = items[:0]
	}
}

package sim

import (
	"hash/fnv"
	"math"
)

// RNG is a small, fast, deterministic random-number generator
// (xoshiro256** seeded via splitmix64). Every stochastic component in the
// simulator draws from its own RNG stream, forked by name from a root seed,
// so adding a component never perturbs the random sequence seen by others.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given value. Any seed,
// including zero, yields a well-mixed state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the xoshiro state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork derives an independent stream identified by label. Forking is
// deterministic: the same parent seed and label always produce the same
// child stream.
func (r *RNG) Fork(label string) *RNG {
	h := fnv.New64a()
	// Mix in the parent state so sibling forks of distinct parents differ.
	var buf [8]byte
	for _, w := range r.s {
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> (8 * i))
		}
		h.Write(buf[:])
	}
	h.Write([]byte(label))
	return NewRNG(h.Sum64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean is not positive.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("sim: Exp with non-positive mean")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, as in the standard library.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf returns values in [0, n) with a Zipf(s) distribution, computed by
// inverse-CDF lookup over precomputed cumulative weights. Suitable for the
// modest n used by workload generators.
type Zipf struct {
	rng *RNG
	cum []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		panic("sim: NewZipf requires n > 0 and s > 0")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{rng: rng, cum: cum}
}

// Next draws the next rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cumulative weight >= u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

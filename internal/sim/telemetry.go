package sim

import "failstutter/internal/trace"

// TelemetrySinks names the destination collectors a traced sharded run
// folds into. Any sink may be nil to leave that plane off; the off path
// costs components exactly what an untraced run costs (one nil check,
// zero allocations).
type TelemetrySinks struct {
	Tracer  *trace.Tracer
	Metrics *trace.Registry
	Audit   *trace.AuditLog

	// FlightRecorder, when non-nil, bounds every per-shard tracer (and,
	// for the merge to reproduce single-collector selection, must match
	// the recorder configured on the destination Tracer): open spans are
	// tracked exactly, completed spans pass through the bounded
	// deterministic ring + reservoir selection instead of being retained
	// wholesale. This is how the fleet experiments trace 2^20 disks in
	// bounded memory.
	FlightRecorder *trace.RecorderConfig
}

// shardTelemetry is the per-shard collector set behind SetTelemetry.
// Each slice is either nil (plane off) or has one collector per shard;
// shard i's components append to index i without any cross-shard
// coordination, which keeps the traced window as lock-free as the
// untraced one.
type shardTelemetry struct {
	sinks   TelemetrySinks
	tracers []*trace.Tracer
	metrics []*trace.Registry
	audits  []*trace.AuditLog
}

// SetTelemetry installs per-shard telemetry collectors feeding the given
// destination sinks. Components placed on shard i record into that
// shard's collectors (ShardTracer/ShardMetrics/ShardAudit); at the end
// of the run MergeTelemetry folds everything into the sinks in canonical
// placement-invariant order, so the exported artifacts are byte-identical
// at any shard count.
//
// Call it before wiring components (they capture their shard's collector
// when attached) and outside the parallel window.
func (ss *ShardedSimulator) SetTelemetry(sinks TelemetrySinks) {
	if ss.inWindow {
		panic("sim: SetTelemetry inside the parallel window")
	}
	tel := &shardTelemetry{sinks: sinks}
	k := len(ss.shards)
	if sinks.Tracer != nil {
		tel.tracers = make([]*trace.Tracer, k)
		for i := range tel.tracers {
			t := trace.NewShardTracer(i)
			if sinks.FlightRecorder != nil {
				t.SetFlightRecorder(*sinks.FlightRecorder)
			}
			tel.tracers[i] = t
		}
	}
	if sinks.Metrics != nil {
		tel.metrics = make([]*trace.Registry, k)
		for i := range tel.metrics {
			tel.metrics[i] = trace.NewRegistry()
		}
	}
	if sinks.Audit != nil {
		tel.audits = make([]*trace.AuditLog, k)
		for i := range tel.audits {
			tel.audits[i] = trace.NewAuditLog()
		}
	}
	ss.tel = tel
}

// Telemetry returns the sinks installed by SetTelemetry (zero value when
// telemetry is off).
func (ss *ShardedSimulator) Telemetry() TelemetrySinks {
	if ss.tel == nil {
		return TelemetrySinks{}
	}
	return ss.tel.sinks
}

// ShardTracer returns shard i's trace collector, or nil when tracing is
// off — components pass it straight to their SetTracer hooks, whose nil
// path is the 0-alloc disabled path.
func (ss *ShardedSimulator) ShardTracer(i int) *trace.Tracer {
	if ss.tel == nil || ss.tel.tracers == nil {
		return nil
	}
	return ss.tel.tracers[i]
}

// ShardMetrics returns shard i's metrics collector, or nil when the
// metrics plane is off (a nil *Registry hands out unregistered
// instruments, so probe call sites need no branching).
func (ss *ShardedSimulator) ShardMetrics(i int) *trace.Registry {
	if ss.tel == nil || ss.tel.metrics == nil {
		return nil
	}
	return ss.tel.metrics[i]
}

// ShardAudit returns shard i's audit collector, or nil when auditing is
// off.
func (ss *ShardedSimulator) ShardAudit(i int) *trace.AuditLog {
	if ss.tel == nil || ss.tel.audits == nil {
		return nil
	}
	return ss.tel.audits[i]
}

// MergeTelemetry flushes every per-shard tracer and folds all per-shard
// collectors into the destination sinks, then detaches them: a second
// call is a no-op, so a run cannot double-count. It returns the flush
// time — the maximum shard clock, which is the placement-invariant
// choice: after RunUntil(limit) every clock equals the limit, and after
// a drained Run the clocks differ per shard by partition, so only the
// global maximum (the virtual time the whole simulation reached) reads
// the same at any shard count.
//
// Call it after the run, outside the parallel window; experiments then
// Rebase the destination tracer past the returned time before the next
// sub-run.
func (ss *ShardedSimulator) MergeTelemetry() Time {
	if ss.inWindow {
		panic("sim: MergeTelemetry inside the parallel window")
	}
	end := Time(0)
	for _, s := range ss.shards {
		if t := s.Now(); t > end {
			end = t
		}
	}
	tel := ss.tel
	if tel == nil {
		return end
	}
	ss.tel = nil
	if tel.tracers != nil {
		for _, t := range tel.tracers {
			t.Flush(end)
		}
		tel.sinks.Tracer.Merge(tel.tracers...)
	}
	if tel.metrics != nil {
		tel.sinks.Metrics.Merge(tel.metrics...)
	}
	if tel.audits != nil {
		tel.sinks.Audit.Merge(tel.audits...)
	}
	return end
}

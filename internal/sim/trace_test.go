package sim

import (
	"testing"

	"failstutter/internal/trace"
)

// TestStationSpanStructure drives two requests through a traced station and
// checks the exported span graph: the first request is served immediately
// (service span only), the second waits (queue span closed when service
// begins), and both link back to the caller's parent span.
func TestStationSpanStructure(t *testing.T) {
	s := New()
	st := NewStation(s, "disk0", 10)
	tr := trace.NewTracer()
	st.SetTracer(tr)

	parent := tr.Begin(tr.Track("caller"), "write", "raid", 0, 0)
	r1 := &Request{Size: 10, ParentSpan: parent} // 1 s of service
	st.Submit(r1)
	r2 := &Request{Size: 20, ParentSpan: parent} // queues behind r1
	st.Submit(r2)
	s.Run()
	tr.End(parent, s.Now())

	// SetTracer registered the station's track first, then the caller's.
	if got := tr.Tracks(); len(got) != 2 || got[0] != "disk0" || got[1] != "caller" {
		t.Fatalf("tracks = %v, want [disk0 caller]", got)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(spans), spans)
	}
	type want struct {
		name       string
		start, end float64
	}
	wants := []want{
		{"write", 0, 3},   // caller span, closed at the final virtual time
		{"service", 0, 1}, // r1 served immediately
		{"queue", 0, 1},   // r2 waits until r1 finishes
		{"service", 1, 3}, // r2 service
	}
	for i, w := range wants {
		sp := spans[i]
		if sp.Name != w.name || sp.Start != w.start || sp.End != w.end {
			t.Errorf("span %d = %s [%g,%g], want %s [%g,%g]",
				i, sp.Name, sp.Start, sp.End, w.name, w.start, w.end)
		}
		if sp.Open() {
			t.Errorf("span %d (%s) left open", i, sp.Name)
		}
		if i > 0 && sp.Parent != parent {
			t.Errorf("span %d (%s) parent = %d, want %d", i, sp.Name, sp.Parent, parent)
		}
	}
	if spans[1].Track != spans[3].Track {
		t.Errorf("service spans on different tracks: %d vs %d", spans[1].Track, spans[3].Track)
	}
}

// TestStationFailRepairSpans checks fail-stop tracing: failing a station
// ends the in-service and queued spans at the failure instant and records
// "fail"/"repair" markers.
func TestStationFailRepairSpans(t *testing.T) {
	s := New()
	st := NewStation(s, "disk0", 1)
	tr := trace.NewTracer()
	st.SetTracer(tr)

	st.SubmitFunc(100, nil) // in service, would finish at t=100
	st.SubmitFunc(100, nil) // queued
	s.After(5, st.Fail)
	s.After(7, st.Repair)
	s.Run()

	if got := st.Abandoned(); got != 2 {
		t.Fatalf("abandoned = %d, want 2", got)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(spans), spans)
	}
	for i, w := range []struct {
		name       string
		start, end float64
		instant    bool
	}{
		{"service", 0, 5, false},
		{"queue", 0, 5, false},
		{"fail", 5, 5, true},
		{"repair", 7, 7, true},
	} {
		sp := spans[i]
		if sp.Name != w.name || sp.Start != w.start || sp.End != w.end || sp.Instant != w.instant {
			t.Errorf("span %d = %s [%g,%g] instant=%v, want %s [%g,%g] instant=%v",
				i, sp.Name, sp.Start, sp.End, sp.Instant, w.name, w.start, w.end, w.instant)
		}
	}
}

// TestStationSetTracerNilDetaches confirms a station stops recording after
// SetTracer(nil), returning to the zero-cost path.
func TestStationSetTracerNilDetaches(t *testing.T) {
	s := New()
	st := NewStation(s, "disk0", 10)
	tr := trace.NewTracer()
	st.SetTracer(tr)
	st.SubmitFunc(10, nil)
	s.Run()
	n := tr.Len()
	if n == 0 {
		t.Fatal("traced request recorded no spans")
	}
	st.SetTracer(nil)
	st.SubmitFunc(10, nil)
	s.Run()
	if got := tr.Len(); got != n {
		t.Fatalf("detached station still recorded spans: %d -> %d", n, got)
	}
}

// TestScheduleUntracedZeroAllocs pins the kernel's schedule-and-fire path at
// zero allocations once the event arena has warmed up. The kernel has no
// tracer hooks at all, so this guards the BenchmarkSchedule figure against
// regression from any future observability plumbing.
func TestScheduleUntracedZeroAllocs(t *testing.T) {
	s := New()
	fn := func() {}
	for i := 0; i < 2048; i++ { // warm the arena past the benchmark batch size
		s.After(1, fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(1, fn)
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("schedule-and-fire path allocates %v per op, want 0", allocs)
	}
}

// TestStationUntracedZeroAllocs pins the full submit→serve→complete station
// path at zero allocations when no tracer is attached. The caller owns the
// Request allocation (reused here), so any allocation the loop observes
// would come from the station or kernel internals — including the
// disabled-tracer hooks, which must cost one nil check and nothing else.
func TestStationUntracedZeroAllocs(t *testing.T) {
	s := New()
	st := NewStation(s, "bench", 1e6)
	for i := 0; i < 8192; i++ { // warm the ring, arena, and timer pool
		st.SubmitFunc(1, nil)
	}
	s.Run()
	req := &Request{}
	allocs := testing.AllocsPerRun(1000, func() {
		*req = Request{Size: 1}
		st.Submit(req)
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("untraced station pipeline allocates %v per op, want 0", allocs)
	}
}

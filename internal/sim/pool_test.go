package sim

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestWorkerPoolRunsEveryWorker checks the fan-out contract — fn(w) runs
// exactly once per worker per Do — across repeated dispatches of the
// same pool (the parked-goroutine reuse path).
func TestWorkerPoolRunsEveryWorker(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		p := NewWorkerPool(n)
		if p.Workers() != n {
			t.Fatalf("Workers() = %d, want %d", p.Workers(), n)
		}
		counts := make([]int64, n)
		for round := 0; round < 50; round++ {
			p.Do(func(w int) { atomic.AddInt64(&counts[w], 1) })
		}
		for w, c := range counts {
			if c != 50 {
				t.Fatalf("n=%d: worker %d ran %d times, want 50", n, w, c)
			}
		}
		p.Close()
	}
}

// TestWorkerPoolDefaultSize pins the n<=0 default to GOMAXPROCS.
func TestWorkerPoolDefaultSize(t *testing.T) {
	p := NewWorkerPool(0)
	defer p.Close()
	if want := runtime.GOMAXPROCS(0); p.Workers() != want {
		t.Fatalf("NewWorkerPool(0).Workers() = %d, want GOMAXPROCS %d", p.Workers(), want)
	}
}

// TestWorkerPoolDisjointWrites checks the caller's intended usage: each
// worker filling a contiguous chunk of one shared slice, reduced by the
// caller after Do. Any lost update or torn barrier shows up as a wrong
// element.
func TestWorkerPoolDisjointWrites(t *testing.T) {
	const n = 4
	const items = 1000
	p := NewWorkerPool(n)
	defer p.Close()
	out := make([]int, items)
	for round := 1; round <= 20; round++ {
		r := round
		p.Do(func(w int) {
			lo, hi := items*w/n, items*(w+1)/n
			for i := lo; i < hi; i++ {
				out[i] = r * i
			}
		})
		for i, v := range out {
			if v != r*i {
				t.Fatalf("round %d: out[%d] = %d, want %d", r, i, v, r*i)
			}
		}
	}
}

// TestWorkerPoolCloseIdempotent closes twice (must not panic) and pins
// the Do-after-Close panic.
func TestWorkerPoolCloseIdempotent(t *testing.T) {
	p := NewWorkerPool(4)
	p.Do(func(int) {})
	p.Close()
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Do after Close did not panic")
		}
	}()
	p.Do(func(int) {})
}

// TestWorkerPoolSerialNoGoroutines pins the n=1 fast path: a one-worker
// pool must never start goroutines, so the serial sweep stays exactly as
// cheap as having no pool at all.
func TestWorkerPoolSerialNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewWorkerPool(1)
	for i := 0; i < 100; i++ {
		p.Do(func(w int) {
			if w != 0 {
				t.Fatalf("serial pool ran worker %d", w)
			}
		})
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("serial pool grew goroutine count %d -> %d", before, after)
	}
	p.Close()
}

// TestBarrierPoolLifecycle checks the kernel accessors: the fan-out set
// before first use sticks, and setting it after the pool exists panics.
func TestBarrierPoolLifecycle(t *testing.T) {
	ss := NewSharded(2, 1)
	ss.SetBarrierParallelism(3)
	pool := ss.BarrierPool()
	defer pool.Close()
	if pool.Workers() != 3 {
		t.Fatalf("barrier pool has %d workers, want 3", pool.Workers())
	}
	if ss.BarrierPool() != pool {
		t.Fatal("BarrierPool did not return the same pool on second call")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetBarrierParallelism after BarrierPool did not panic")
		}
	}()
	ss.SetBarrierParallelism(5)
}

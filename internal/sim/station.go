package sim

import (
	"fmt"
	"math"

	"failstutter/internal/trace"
)

// Request is one unit of work submitted to a Station. Size is measured in
// the station's work units (bytes for a disk, messages for a link); the
// station drains Size at its current effective rate.
type Request struct {
	// Size is the amount of work, in station units.
	Size float64
	// Tag is an opaque caller label carried through to completion.
	Tag any
	// OnDone, if non-nil, runs when the request finishes service.
	OnDone func(*Request)
	// ParentSpan optionally links the spans this request generates to a
	// caller-level span (a RAID write, a device access). Zero means root.
	ParentSpan trace.SpanID

	// Enqueued, Started and Finished record the request's timeline.
	Enqueued Time
	Started  Time
	Finished Time

	remaining float64
	// span is the currently open queue or service span for this request;
	// zero when the station has no tracer.
	span trace.SpanID
}

// Wait returns the time the request spent queued before service began.
func (r *Request) Wait() Duration { return r.Started - r.Enqueued }

// Latency returns the total time from submission to completion.
func (r *Request) Latency() Duration { return r.Finished - r.Enqueued }

// reqRing is a growable FIFO ring buffer of requests. The switch and RAID
// experiments hold thousands of queued requests, so dequeue must be O(1)
// rather than the O(n) slice-shift of copy(q, q[1:]).
type reqRing struct {
	buf  []*Request // capacity is always a power of two (or zero)
	head int
	n    int
}

func (q *reqRing) len() int { return q.n }

func (q *reqRing) push(r *Request) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = r
	q.n++
}

func (q *reqRing) pop() *Request {
	r := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return r
}

// grow doubles the capacity, unwrapping the ring into the new buffer.
func (q *reqRing) grow() {
	capNew := len(q.buf) * 2
	if capNew == 0 {
		capNew = 8
	}
	buf := make([]*Request, capNew)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = buf
	q.head = 0
}

// clear drops every queued request, releasing references for collection.
func (q *reqRing) clear() {
	for i := 0; i < q.n; i++ {
		q.buf[(q.head+i)&(len(q.buf)-1)] = nil
	}
	q.head = 0
	q.n = 0
}

// Station is a first-come-first-served single server with a time-varying
// service rate. The effective rate is baseRate x multiplier; a multiplier
// of zero stalls the server (work in progress is preserved and resumes when
// the rate becomes positive again). This is the building block for every
// simulated device: performance faults modulate the multiplier, absolute
// faults fail the station.
type Station struct {
	sim  *Simulator
	name string

	baseRate float64
	mult     float64
	failed   bool

	queue reqRing
	cur   *Request
	timer Timer
	// timerAt is the virtual time the pending completion timer fires at;
	// only meaningful while timer.Pending(). reschedule uses it to skip
	// the Stop/At churn when a rate change leaves the completion time
	// unchanged.
	timerAt Time
	// lastProgress is the time at which cur.remaining was last brought up
	// to date.
	lastProgress Time

	// Accounting.
	busy      Duration // time spent actively serving at a positive rate
	completed uint64
	abandoned uint64
	// queuedWork is the total Size of the requests waiting behind the one
	// in service, maintained incrementally so BacklogWork is O(1).
	queuedWork float64

	// tracer, when non-nil, records queue/service spans and fail/repair
	// instants. Every hot-path touch point guards with an explicit nil
	// check so the disabled path costs one predictable branch and zero
	// allocations.
	tracer *trace.Tracer
	track  trace.TrackID

	// finishFn is st.finish bound once at construction: passing a method
	// value to Simulator.At allocates a closure per call, which would put
	// one hidden allocation on every reschedule of the hot path.
	finishFn func()
}

// NewStation creates a station served at rate units/second.
func NewStation(s *Simulator, name string, rate float64) *Station {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("sim: station %q with invalid rate %v", name, rate))
	}
	st := &Station{sim: s, name: name, baseRate: rate, mult: 1}
	st.finishFn = st.finish
	return st
}

// Name returns the station's identifying label.
func (st *Station) Name() string { return st.name }

// SetTracer attaches a span tracer, recording this station's activity on
// a track named after the station. A nil tracer detaches (the default:
// tracing is off and costs nothing).
func (st *Station) SetTracer(t *trace.Tracer) {
	st.tracer = t
	if t != nil {
		st.track = t.Track(st.name)
	}
}

// BaseRate returns the station's nominal service rate.
func (st *Station) BaseRate() float64 { return st.baseRate }

// Multiplier returns the current fault multiplier.
func (st *Station) Multiplier() float64 { return st.mult }

// EffectiveRate returns the current service rate after fault modulation.
// A failed station has rate zero.
func (st *Station) EffectiveRate() float64 {
	if st.failed {
		return 0
	}
	return st.baseRate * st.mult
}

// QueueLen returns the number of requests waiting behind the one in
// service.
func (st *Station) QueueLen() int { return st.queue.len() }

// InService returns the request currently being served, or nil.
func (st *Station) InService() *Request { return st.cur }

// Completed returns the number of requests fully served.
func (st *Station) Completed() uint64 { return st.completed }

// Abandoned returns the number of requests dropped by Fail.
func (st *Station) Abandoned() uint64 { return st.abandoned }

// BusyTime returns the cumulative time the server spent draining work at a
// positive rate.
func (st *Station) BusyTime() Duration {
	st.progress()
	return st.busy
}

// Utilization returns BusyTime divided by elapsed simulation time.
func (st *Station) Utilization() float64 {
	if st.sim.Now() == 0 {
		return 0
	}
	return st.BusyTime() / st.sim.Now()
}

// Failed reports whether the station has absolutely failed.
func (st *Station) Failed() bool { return st.failed }

// BacklogWork returns the total outstanding work at the station in station
// units: the remaining size of the request in service plus the full size of
// everything queued behind it. It is O(1) — the queue's contribution is
// maintained incrementally on submit/dequeue.
func (st *Station) BacklogWork() float64 {
	st.progress()
	w := st.queuedWork
	if st.cur != nil {
		w += st.cur.remaining
	}
	return w
}

// Occupancy returns the number of requests at the station, counting the one
// in service: the queue-depth signal the profiling probe samples.
func (st *Station) Occupancy() int {
	n := st.queue.len()
	if st.cur != nil {
		n++
	}
	return n
}

// notifyProbe reports an occupancy transition to the simulator's station
// probe, if one is installed. One predictable branch when profiling is off.
func (st *Station) notifyProbe() {
	if p := st.sim.stationProbe; p != nil {
		p(st.sim.now, st)
	}
}

// ServedInCurrent returns the work already drained from the request in
// service at the current instant, or zero when the server is idle. Callers
// probing smooth progress counters (peer-relative detectors sampling
// mid-request) add this to their completed-work tally so a station busy on
// one long request does not look stalled between completions.
func (st *Station) ServedInCurrent() float64 {
	if st.cur == nil {
		return 0
	}
	st.progress()
	return st.cur.Size - st.cur.remaining
}

// Submit enqueues a request. It panics on non-positive sizes, which always
// indicate a workload-generator bug. Requests submitted to a failed station
// are counted as abandoned and their OnDone is never called.
func (st *Station) Submit(r *Request) {
	if r.Size <= 0 || math.IsNaN(r.Size) {
		panic(fmt.Sprintf("sim: station %q request with invalid size %v", st.name, r.Size))
	}
	if st.failed {
		st.abandoned++
		return
	}
	r.Enqueued = st.sim.Now()
	r.remaining = r.Size
	if st.cur == nil {
		st.start(r)
		st.notifyProbe()
		return
	}
	if st.tracer != nil {
		r.span = st.tracer.Begin(st.track, "queue", "station", r.ParentSpan, r.Enqueued)
	}
	st.queue.push(r)
	st.queuedWork += r.Size
	st.notifyProbe()
}

// SubmitFunc is a convenience wrapper building a Request from a size and a
// completion callback.
func (st *Station) SubmitFunc(size float64, onDone func(*Request)) *Request {
	r := &Request{Size: size, OnDone: onDone}
	st.Submit(r)
	return r
}

// SetMultiplier changes the fault multiplier, preserving progress on the
// request in service. Multipliers must be finite and non-negative; values
// above 1 model components faster than their nominal specification.
func (st *Station) SetMultiplier(m float64) {
	if m < 0 || math.IsNaN(m) || math.IsInf(m, 0) {
		panic(fmt.Sprintf("sim: station %q invalid multiplier %v", st.name, m))
	}
	if m == st.mult {
		return
	}
	st.progress()
	st.mult = m
	st.reschedule()
}

// Fail transitions the station to the absolutely-failed state, abandoning
// the queue and any request in service (fail-stop semantics: the component
// stops and does no further work).
func (st *Station) Fail() {
	if st.failed {
		return
	}
	st.progress()
	st.failed = true
	st.stopTimer()
	if st.tracer != nil {
		now := st.sim.Now()
		if st.cur != nil {
			st.tracer.End(st.cur.span, now)
		}
		for i := 0; i < st.queue.n; i++ {
			r := st.queue.buf[(st.queue.head+i)&(len(st.queue.buf)-1)]
			st.tracer.End(r.span, now)
		}
		st.tracer.Instant(st.track, "fail", "station", now)
	}
	if st.cur != nil {
		st.abandoned++
		st.cur = nil
	}
	st.abandoned += uint64(st.queue.len())
	st.queue.clear()
	st.queuedWork = 0
	st.notifyProbe()
}

// Repair returns a failed station to service with an empty queue, modeling
// replacement by a fresh component.
func (st *Station) Repair() {
	if !st.failed {
		return
	}
	st.failed = false
	st.mult = 1
	if st.tracer != nil {
		st.tracer.Instant(st.track, "repair", "station", st.sim.Now())
	}
	// Bring lastProgress up to the repair instant so the downtime between
	// Fail and Repair can never be charged to the first post-repair
	// request's progress or to BusyTime.
	st.lastProgress = st.sim.Now()
}

// progress charges elapsed service time against the current request and
// the busy-time account.
func (st *Station) progress() {
	now := st.sim.Now()
	if st.cur != nil {
		rate := st.EffectiveRate()
		if rate > 0 {
			elapsed := now - st.lastProgress
			st.cur.remaining -= elapsed * rate
			if st.cur.remaining < 0 {
				st.cur.remaining = 0
			}
			st.busy += elapsed
		}
	}
	st.lastProgress = now
}

// start begins service of r immediately.
func (st *Station) start(r *Request) {
	st.cur = r
	r.Started = st.sim.Now()
	st.lastProgress = r.Started
	if st.tracer != nil {
		// Close the queue span (if the request waited) and open the
		// service span in its place.
		st.tracer.End(r.span, r.Started)
		r.span = st.tracer.Begin(st.track, "service", "station", r.ParentSpan, r.Started)
	}
	st.reschedule()
}

// stopTimer cancels the completion timer if one is pending.
func (st *Station) stopTimer() {
	st.timer.Stop()
	st.timer = Timer{}
}

// reschedule (re)computes the completion event for the request in service
// under the current effective rate. It assumes progress() has already run
// at the current instant, so cur.remaining is up to date. When the
// completion time is unchanged the pending timer is kept, avoiding
// Stop/schedule churn on no-op rate transitions.
func (st *Station) reschedule() {
	if st.cur == nil {
		st.stopTimer()
		return
	}
	rate := st.EffectiveRate()
	if rate <= 0 {
		// Stalled: completion will be scheduled when the rate recovers.
		st.stopTimer()
		return
	}
	at := st.sim.Now() + st.cur.remaining/rate
	if st.timer.Pending() && at == st.timerAt {
		return
	}
	st.stopTimer()
	st.timer = st.sim.At(at, st.finishFn)
	st.timerAt = at
}

// CancelCurrent aborts the request in service at the current instant: the
// work already drained stays charged to BusyTime, the completion timer is
// stopped, the request counts as abandoned and its OnDone never runs, and
// the next queued request (if any) starts immediately. It returns the work
// the canceled request had drained and whether a request was in service —
// the hook the cluster plane's deterministic job-completion cut uses to
// settle in-flight work.
func (st *Station) CancelCurrent() (served float64, ok bool) {
	if st.cur == nil {
		return 0, false
	}
	st.progress()
	r := st.cur
	served = r.Size - r.remaining
	st.cur = nil
	st.stopTimer()
	st.abandoned++
	if st.tracer != nil {
		st.tracer.End(r.span, st.sim.Now())
		r.span = 0
	}
	if st.queue.len() > 0 {
		next := st.queue.pop()
		st.queuedWork -= next.Size
		st.start(next)
	}
	st.notifyProbe()
	return served, true
}

// finish completes the request in service and starts the next one.
func (st *Station) finish() {
	st.progress()
	r := st.cur
	st.cur = nil
	st.timer = Timer{}
	if r == nil {
		return
	}
	r.Finished = st.sim.Now()
	st.completed++
	if st.tracer != nil {
		st.tracer.End(r.span, r.Finished)
		r.span = 0
	}
	if st.queue.len() > 0 {
		next := st.queue.pop()
		st.queuedWork -= next.Size
		st.start(next)
	}
	st.notifyProbe()
	if r.OnDone != nil {
		r.OnDone(r)
	}
}

package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// WorkerPool is a reusable fixed-fan-out executor for barrier-time work:
// Do(fn) runs fn(w) once per worker w in [0, Workers()) and returns when
// every invocation has finished. Worker 0 always runs inline on the
// caller; the remaining workers run on persistent goroutines parked
// between calls, started lazily at the first parallel Do — so a pool of
// one worker never starts a goroutine at all, and a pool that is built
// but never used costs nothing.
//
// The pool exists for the conservative barrier's fleet sweeps: spawning
// goroutines per sweep would cost a allocation-and-schedule round trip
// every virtual tick, while parked workers cost one channel send each.
// Determinism is the caller's contract: Do imposes no ordering between
// workers, so fn must write only worker-private state (disjoint index
// ranges), with any cross-worker reduction performed by the caller after
// Do returns, in worker order.
//
// A WorkerPool is not itself safe for concurrent Do calls; one barrier
// hook owns it at a time, which is exactly how the sharded kernel runs.
type WorkerPool struct {
	n       int
	fn      func(int)
	wake    []chan struct{}
	done    sync.WaitGroup
	started bool
	closed  bool
}

// NewWorkerPool builds a pool of n workers; n <= 0 means GOMAXPROCS.
func NewWorkerPool(n int) *WorkerPool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &WorkerPool{n: n}
}

// Workers returns the pool's fan-out.
func (p *WorkerPool) Workers() int { return p.n }

// Do runs fn(w) for every worker w in [0, n) and blocks until all have
// returned. fn must confine its writes to worker-private state.
func (p *WorkerPool) Do(fn func(worker int)) {
	if p.closed {
		panic("sim: Do on a closed WorkerPool")
	}
	if p.n == 1 {
		fn(0)
		return
	}
	if !p.started {
		p.started = true
		p.wake = make([]chan struct{}, p.n)
		for w := 1; w < p.n; w++ {
			ch := make(chan struct{}, 1)
			p.wake[w] = ch
			go func(w int, ch chan struct{}) {
				for range ch {
					p.fn(w)
					p.done.Done()
				}
			}(w, ch)
		}
	}
	p.fn = fn
	p.done.Add(p.n - 1)
	for w := 1; w < p.n; w++ {
		p.wake[w] <- struct{}{}
	}
	fn(0)
	p.done.Wait()
	p.fn = nil
}

// Close parks the pool permanently, stopping its goroutines. Idempotent;
// Do after Close panics.
func (p *WorkerPool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for w := 1; w < len(p.wake); w++ {
		close(p.wake[w])
	}
}

// SetBarrierParallelism sets the size of the kernel's barrier worker
// pool (0 = GOMAXPROCS, the default). It must be called before the first
// BarrierPool call; the pool's fan-out is fixed once built.
func (ss *ShardedSimulator) SetBarrierParallelism(n int) {
	if ss.pool != nil {
		panic(fmt.Sprintf("sim: SetBarrierParallelism(%d) after the barrier pool was built", n))
	}
	ss.barrierWorkers = n
}

// BarrierPool returns the kernel's reusable barrier worker pool, built at
// first use with the SetBarrierParallelism fan-out. Barrier hooks fan
// fleet-wide work (the PeerSet sweep) across it; because the hook runs
// single-threaded between windows, the pool needs no locking of its own.
// Callers that finish with the kernel should Close the pool to release
// its parked goroutines (the fleet experiment defers exactly that).
func (ss *ShardedSimulator) BarrierPool() *WorkerPool {
	if ss.pool == nil {
		ss.pool = NewWorkerPool(ss.barrierWorkers)
	}
	return ss.pool
}

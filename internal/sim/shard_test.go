package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestShardedBasics(t *testing.T) {
	ss := NewSharded(4, 0.5)
	if ss.Shards() != 4 || ss.Lookahead() != 0.5 {
		t.Fatalf("shards/lookahead: %d/%v", ss.Shards(), ss.Lookahead())
	}
	var order []string
	for i := 0; i < 4; i++ {
		i := i
		ss.Shard(i).At(float64(4-i), func() { order = append(order, fmt.Sprintf("s%d@%g", i, float64(4-i))) })
	}
	ss.Run()
	// Each event is on its own shard at a distinct time: global execution
	// order follows virtual time because every window's horizon bounds it.
	want := "s3@1 s2@2 s1@3 s0@4"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("execution order %q, want %q", got, want)
	}
	if ss.EventsFired() != 4 {
		t.Fatalf("events fired %d, want 4", ss.EventsFired())
	}
	if ss.Pending() != 0 {
		t.Fatalf("pending %d after drain", ss.Pending())
	}
}

func TestShardedRunUntilAdvancesClocks(t *testing.T) {
	ss := NewSharded(3, 1)
	fired := 0
	ss.Shard(0).At(1, func() { fired++ })
	ss.Shard(1).At(2.5, func() { fired++ })
	ss.Shard(2).At(7, func() { fired++ })
	ss.RunUntil(2.5)
	if fired != 2 {
		t.Fatalf("fired %d events by 2.5, want 2 (the 7s event must wait)", fired)
	}
	for i := 0; i < 3; i++ {
		if now := ss.Shard(i).Now(); now != 2.5 {
			t.Fatalf("shard %d clock %v after RunUntil(2.5)", i, now)
		}
	}
	if ss.Pending() != 1 {
		t.Fatalf("pending %d, want the 7s event still queued", ss.Pending())
	}
	ss.Run()
	if fired != 3 {
		t.Fatalf("fired %d after drain, want 3", fired)
	}
}

func TestShardedEventAtExactLimitRuns(t *testing.T) {
	ss := NewSharded(2, 0.25)
	fired := false
	ss.Shard(1).At(3, func() { fired = true })
	ss.RunUntil(3)
	if !fired {
		t.Fatal("event scheduled exactly at the RunUntil limit did not run")
	}
}

// TestShardedCrossShardDelivery bounces a token between shards through
// Send: each hop re-sends to the next shard one lookahead later, and the
// observed hop times must follow the lookahead chain exactly.
func TestShardedCrossShardDelivery(t *testing.T) {
	const hops = 16
	ss := NewSharded(4, 1)
	var log []string
	var hop func(n int) func()
	hop = func(n int) func() {
		return func() {
			src := n % 4
			log = append(log, fmt.Sprintf("hop%d@%g on s%d", n, ss.Shard(src).Now(), src))
			if n+1 < hops {
				dst := (n + 1) % 4
				ss.Send(src, dst, ss.Shard(src).Now()+1, "token", hop(n+1))
			}
		}
	}
	ss.Shard(0).At(1, hop(0))
	ss.Run()
	if len(log) != hops {
		t.Fatalf("saw %d hops, want %d: %v", len(log), hops, log)
	}
	for n, entry := range log {
		want := fmt.Sprintf("hop%d@%g on s%d", n, float64(n+1), n%4)
		if entry != want {
			t.Fatalf("hop %d: got %q, want %q", n, entry, want)
		}
	}
}

func TestShardedSendLookaheadViolationPanics(t *testing.T) {
	ss := NewSharded(2, 1)
	ss.Shard(0).At(5, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("in-window send inside the lookahead bound did not panic")
				return
			}
			// The diagnostic must name the offending component.
			if msg := fmt.Sprint(r); !strings.Contains(msg, "offender-x") {
				t.Errorf("lookahead panic %q does not name the origin component", msg)
			}
		}()
		ss.Send(0, 1, 5.5, "offender-x", func() {}) // < now+lookahead = 6
	})
	ss.Run()
}

func TestShardedSetupSendDelivered(t *testing.T) {
	ss := NewSharded(2, 1)
	fired := 0.0
	// A send buffered before the run starts (setup, not in a window) only
	// needs to be in the source's future.
	ss.Send(0, 1, 0.25, "setup", func() { fired = ss.Shard(1).Now() })
	ss.Run()
	if fired != 0.25 {
		t.Fatalf("setup send fired at %v, want 0.25", fired)
	}
}

// TestShardedBarrierHook asserts the barrier hook runs after every window
// with strictly increasing horizons, and that everything executed so far
// is strictly before the reported horizon.
func TestShardedBarrierHook(t *testing.T) {
	ss := NewSharded(3, 0.5)
	// Each shard writes only its own slot during a window; the barrier,
	// single-threaded, reads them all.
	lastFired := [3]Time{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for i := 0; i < 3; i++ {
		i := i
		sh := ss.Shard(i)
		var tick func()
		n := 0
		tick = func() {
			lastFired[i] = sh.Now()
			if n++; n < 5 {
				sh.After(0.7, tick)
			}
		}
		sh.At(float64(i)*0.2, tick)
	}
	prev := math.Inf(-1)
	calls := 0
	ss.SetBarrier(func(h Time) {
		calls++
		if h <= prev {
			t.Fatalf("barrier horizon %v not increasing past %v", h, prev)
		}
		for i, last := range lastFired {
			if last >= h {
				t.Fatalf("shard %d event at %v executed at or beyond its window horizon %v", i, last, h)
			}
		}
		prev = h
	})
	ss.Run()
	if calls == 0 {
		t.Fatal("barrier hook never ran")
	}
	if ss.EventsFired() != 15 {
		t.Fatalf("events fired %d, want 15", ss.EventsFired())
	}
}

// componentChecksums runs the same multi-component workload at the given
// shard count and returns one checksum per component, folding together
// each component's RNG draws and event times. Components interact only
// with themselves, draw from identity-forked RNG streams, and are
// assigned to shards by identity hash — the discipline under which
// results must be bitwise identical at any shard count.
func componentChecksums(t *testing.T, shards int) ([]uint64, uint64) {
	t.Helper()
	const components = 64
	ss := NewSharded(shards, 0.25)
	sums := make([]uint64, components)
	root := NewRNG(42)
	for c := 0; c < components; c++ {
		c := c
		name := fmt.Sprintf("c%02d", c)
		rng := root.Fork(name)
		sh := ss.Shard(ss.ShardFor(name))
		var step func()
		n := 0
		step = func() {
			draw := rng.Uint64()
			sums[c] = sums[c]*1099511628211 ^ draw ^ math.Float64bits(sh.Now())
			if n++; n < 50 {
				sh.After(0.01+rng.Float64(), step)
			}
		}
		sh.At(rng.Float64(), step)
	}
	ss.Run()
	return sums, ss.EventsFired()
}

// TestShardedDeterminismAcrossShardCounts is the kernel-level version of
// the suite's byte-identity guarantee: per-component results and the
// total event count are identical at 1, 2, 4 and 8 shards.
func TestShardedDeterminismAcrossShardCounts(t *testing.T) {
	baseSums, baseFired := componentChecksums(t, 1)
	for _, shards := range []int{2, 4, 8} {
		sums, fired := componentChecksums(t, shards)
		if fired != baseFired {
			t.Fatalf("%d shards fired %d events, 1 shard fired %d", shards, fired, baseFired)
		}
		for c := range sums {
			if sums[c] != baseSums[c] {
				t.Fatalf("component %d checksum differs at %d shards: %x vs %x",
					c, shards, sums[c], baseSums[c])
			}
		}
	}
}

func TestShardedConstructionPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero shards", func() { NewSharded(0, 1) }},
		{"zero lookahead", func() { NewSharded(2, 0) }},
		{"negative lookahead", func() { NewSharded(2, -1) }},
		{"infinite lookahead", func() { NewSharded(2, math.Inf(1)) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// TestShardedStationsPerShard runs real stations pinned to shards and
// checks completions match a serial run — the station layer needs no
// changes to run sharded, because each shard is a full kernel.
func TestShardedStationsPerShard(t *testing.T) {
	run := func(shards int) []uint64 {
		ss := NewSharded(shards, 0.5)
		const n = 12
		stations := make([]*Station, n)
		for i := range stations {
			name := fmt.Sprintf("st%02d", i)
			sh := ss.Shard(ss.ShardFor(name))
			st := NewStation(sh, name, float64(i+1))
			stations[i] = st
			var pump func(r *Request)
			left := 20
			pump = func(r *Request) {
				if left--; left > 0 {
					st.SubmitFunc(1, pump)
				}
			}
			st.SubmitFunc(1, pump)
		}
		ss.Run()
		out := make([]uint64, n)
		for i, st := range stations {
			out[i] = st.Completed()
		}
		return out
	}
	serial := run(1)
	for _, shards := range []int{2, 4} {
		got := run(shards)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("station %d completed %d at %d shards, %d serial", i, got[i], shards, serial[i])
			}
		}
	}
}

package sim

import (
	"fmt"
	"sort"
	"testing"
)

// shardStressResult is one run's observable outcome: the per-key firing
// sequences (times in order) plus the total event count.
type shardStressResult struct {
	observed [][]float64
	fired    uint64
}

// runShardStress drives ~100k events through a sharded kernel: 64 keyed
// components assigned to shards by identity hash, each growing a local
// event chain (with random Stops exercising arena reuse mid-run), plus
// cross-shard sends through the lookahead mailbox. It mirrors
// TestKernelStressCrossCheck, with the cross-shard dimension added.
//
// Every decision draws from a per-key RNG stream in the key's own event
// order, so the workload is identical at any shard count.
func runShardStress(t *testing.T, shards int) (shardStressResult, [][]float64) {
	t.Helper()
	const (
		keys     = 64
		initial  = 8
		capLocal = 1300
		capCross = 200
	)
	ss := NewSharded(shards, 1.0)
	root := NewRNG(777)

	observed := make([][]float64, keys)     // appended only by key's own shard
	localAt := make([][]float64, keys)      // every locally scheduled time
	localStopped := make([][]bool, keys)    // which of those were stopped
	crossSent := make([][][2]float64, keys) // per sender: (dstKey, at)
	timers := make([]map[int]Timer, keys)
	rngs := make([]*RNG, keys)
	localCount := make([]int, keys)
	crossCount := make([]int, keys)
	shardOf := make([]int, keys)
	for k := 0; k < keys; k++ {
		rngs[k] = root.Fork(fmt.Sprintf("key%02d", k))
		timers[k] = make(map[int]Timer)
		shardOf[k] = ss.ShardFor(fmt.Sprintf("key%02d", k))
	}

	var fire func(k, id int) func()
	schedule := func(k int, at Time) {
		sh := ss.Shard(shardOf[k])
		id := len(localAt[k])
		localAt[k] = append(localAt[k], at)
		localStopped[k] = append(localStopped[k], false)
		timers[k][id] = sh.At(at, fire(k, id))
		localCount[k]++
	}
	fire = func(k, id int) func() {
		return func() {
			sh := ss.Shard(shardOf[k])
			now := sh.Now()
			observed[k] = append(observed[k], now)
			delete(timers[k], id)
			rng := rngs[k]
			// Grow the local chain: two follow-ups until the key's budget
			// is spent, so slots churn while the run is in flight.
			for i := 0; i < 2 && localCount[k] < capLocal; i++ {
				schedule(k, now+0.01+rng.Float64()*2)
			}
			// Randomly stop one pending local timer.
			if rng.Float64() < 0.25 && len(localAt[k]) > 0 {
				victim := rng.Intn(len(localAt[k]))
				if tm, ok := timers[k][victim]; ok && tm.Stop() {
					localStopped[k][victim] = true
					delete(timers[k], victim)
				}
			}
			// Cross-shard send to another key, one lookahead or more ahead.
			if rng.Float64() < 0.2 && crossCount[k] < capCross {
				dst := (k + 1 + rng.Intn(keys-1)) % keys
				at := now + ss.Lookahead() + rng.Float64()
				crossSent[k] = append(crossSent[k], [2]float64{float64(dst), at})
				crossCount[k]++
				ss.Send(shardOf[k], shardOf[dst], at, fmt.Sprintf("key%02d", k), func() {
					observed[dst] = append(observed[dst], ss.Shard(shardOf[dst]).Now())
				})
			}
		}
	}
	for k := 0; k < keys; k++ {
		for i := 0; i < initial; i++ {
			schedule(k, rngs[k].Float64()*2)
		}
	}
	ss.Run()

	// Reference: per key, every locally scheduled un-stopped time plus
	// every time cross-sent to it, sorted ascending. Times are continuous
	// draws from independent streams, so per-key ties never arise and the
	// sorted order is the one legal firing order.
	want := make([][]float64, keys)
	for k := 0; k < keys; k++ {
		for id, at := range localAt[k] {
			if !localStopped[k][id] {
				want[k] = append(want[k], at)
			}
		}
	}
	for k := 0; k < keys; k++ {
		for _, s := range crossSent[k] {
			dst := int(s[0])
			want[dst] = append(want[dst], s[1])
		}
	}
	for k := 0; k < keys; k++ {
		sort.Float64s(want[k])
	}
	return shardStressResult{observed: observed, fired: ss.EventsFired()}, want
}

// TestShardedKernelStressCrossCheck runs ~100k events at 1 and 4 shards:
// each key's observed firing sequence must match the independently
// computed time-sorted reference, and the two shard counts must agree
// bitwise with each other.
func TestShardedKernelStressCrossCheck(t *testing.T) {
	results := map[int]shardStressResult{}
	for _, shards := range []int{1, 4} {
		res, want := runShardStress(t, shards)
		total := 0
		for k := range res.observed {
			if len(res.observed[k]) != len(want[k]) {
				t.Fatalf("%d shards: key %d fired %d events, reference has %d",
					shards, k, len(res.observed[k]), len(want[k]))
			}
			for i := range want[k] {
				if res.observed[k][i] != want[k][i] {
					t.Fatalf("%d shards: key %d event %d fired at %v, reference %v",
						shards, k, i, res.observed[k][i], want[k][i])
				}
			}
			total += len(res.observed[k])
		}
		if total < 80000 {
			t.Fatalf("%d shards: stress run fired only %d keyed events, want ~100k — workload shrank", shards, total)
		}
		if res.fired != uint64(total) {
			t.Fatalf("%d shards: kernel counted %d fired events, keyed logs hold %d", shards, res.fired, total)
		}
		results[shards] = res
	}
	a, b := results[1], results[4]
	if a.fired != b.fired {
		t.Fatalf("event totals differ across shard counts: %d vs %d", a.fired, b.fired)
	}
	for k := range a.observed {
		for i := range a.observed[k] {
			if a.observed[k][i] != b.observed[k][i] {
				t.Fatalf("key %d event %d: fired at %v with 1 shard, %v with 4", k, i, a.observed[k][i], b.observed[k][i])
			}
		}
	}
}

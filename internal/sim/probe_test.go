package sim

import (
	"math"
	"testing"
)

// TestStationProbeTransitions drives a station through submit, queueing,
// completion and failure, and checks the probe sees every occupancy
// transition with consistent depth/backlog readings.
func TestStationProbeTransitions(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 100) // 100 units/s
	type sample struct {
		now     Time
		depth   int
		backlog float64
	}
	var got []sample
	s.SetStationProbe(func(now Time, p *Station) {
		if p != st {
			t.Fatalf("probe saw unexpected station %q", p.Name())
		}
		got = append(got, sample{now, p.Occupancy(), p.BacklogWork()})
	})

	st.Submit(&Request{Size: 100}) // service 1 s
	st.Submit(&Request{Size: 50})  // queued 0.5 s
	st.Submit(&Request{Size: 50})  // queued 0.5 s
	s.Run()

	want := []sample{
		{0, 1, 100},  // first request enters service
		{0, 2, 150},  // second queued
		{0, 3, 200},  // third queued
		{1, 2, 100},  // first completes, second starts
		{1.5, 1, 50}, // second completes, third starts
		{2, 0, 0},    // third completes, station idle
	}
	if len(got) != len(want) {
		t.Fatalf("probe fired %d times, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		g := got[i]
		if g.now != w.now || g.depth != w.depth || math.Abs(g.backlog-w.backlog) > 1e-9 {
			t.Errorf("transition %d: got %+v, want %+v", i, g, w)
		}
	}
}

// TestStationProbeFail checks that failing a station reports the queue
// drop as a single transition to empty.
func TestStationProbeFail(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 10)
	st.Submit(&Request{Size: 100})
	st.Submit(&Request{Size: 100})
	fired := 0
	s.SetStationProbe(func(now Time, p *Station) {
		fired++
		if p.Occupancy() != 0 || p.BacklogWork() != 0 {
			t.Errorf("after Fail: occupancy %d backlog %v, want 0/0",
				p.Occupancy(), p.BacklogWork())
		}
	})
	st.Fail()
	if fired != 1 {
		t.Fatalf("Fail fired the probe %d times, want 1", fired)
	}
}

// TestBacklogWorkTracksProgress checks the in-service remainder drains in
// virtual time while queued work stays at full size.
func TestBacklogWorkTracksProgress(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 100)
	st.Submit(&Request{Size: 100})
	st.Submit(&Request{Size: 40})
	s.RunUntil(0.5) // half of the first request served
	if got, want := st.BacklogWork(), 50.0+40.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("BacklogWork at t=0.5: got %v, want %v", got, want)
	}
	st.SetMultiplier(0) // stall: backlog frozen
	s.RunUntil(2)
	if got, want := st.BacklogWork(), 90.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("BacklogWork while stalled: got %v, want %v", got, want)
	}
	st.SetMultiplier(1)
	s.Run()
	if got := st.BacklogWork(); got != 0 {
		t.Fatalf("BacklogWork after drain: got %v, want 0", got)
	}
}

// TestStationProbeOffZeroAlloc pins the unprofiled submit/serve/complete
// cycle at zero allocations: with no probe installed the hook must cost
// one branch, nothing more.
func TestStationProbeOffZeroAlloc(t *testing.T) {
	s := New()
	st := NewStation(s, "d0", 1e6)
	req := &Request{Size: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		req.Size = 1
		st.Submit(req)
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("probe-off station cycle allocates %v/op, want 0", allocs)
	}
}

// TestStationProbeNoEventOverhead checks installing a probe does not
// change virtual-time behavior: completion times and event counts match a
// probe-free run exactly.
func TestStationProbeNoEventOverhead(t *testing.T) {
	run := func(probe bool) (Time, uint64) {
		s := New()
		if probe {
			s.SetStationProbe(func(Time, *Station) {})
		}
		st := NewStation(s, "d0", 3)
		for i := 0; i < 10; i++ {
			st.Submit(&Request{Size: float64(i + 1)})
		}
		s.Run()
		return s.Now(), s.EventsFired()
	}
	bareT, bareN := run(false)
	probeT, probeN := run(true)
	if bareT != probeT || bareN != probeN {
		t.Fatalf("probe changed the run: (%v, %d) vs (%v, %d)",
			bareT, bareN, probeT, probeN)
	}
}

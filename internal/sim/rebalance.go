package sim

import (
	"fmt"
	"sort"
)

// Load is one station's observed (or analytically estimated) cost: the
// event count it is expected to contribute to its shard. The unit does
// not matter — only the ratios do.
type Load struct {
	ID   string
	Cost float64
}

// RecommendPlacement balances stations across shards from per-station
// costs: greedy longest-processing-time — stations in (cost descending,
// id ascending) order each go to the currently lightest shard, lowest
// index on ties — so the plan is deterministic for a given load set. The
// returned station→shard plan is meant for SetPlacement, applied only at
// construction: placement is just another partition of the components,
// and the kernel's results are partition-invariant by the determinism
// protocol, so rebalancing trades wall-clock imbalance for nothing.
//
// Costs typically come from a prior run's per-shard event accounting
// (PerShardFired spread over the stations each shard hosted — see
// PerShardLoads) or from an analytic per-station event model, as the
// fleet experiment uses.
func RecommendPlacement(loads []Load, shards int) map[string]int {
	if shards < 1 {
		panic(fmt.Sprintf("sim: RecommendPlacement needs at least 1 shard, got %d", shards))
	}
	sorted := append([]Load(nil), loads...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Cost != sorted[j].Cost {
			return sorted[i].Cost > sorted[j].Cost
		}
		return sorted[i].ID < sorted[j].ID
	})
	bins := make([]float64, shards)
	plan := make(map[string]int, len(sorted))
	for _, l := range sorted {
		best := 0
		for s := 1; s < shards; s++ {
			if bins[s] < bins[best] {
				best = s
			}
		}
		bins[best] += l.Cost
		plan[l.ID] = best
	}
	return plan
}

// PerShardLoads converts one run's observed per-shard fired counts into
// per-station cost estimates: each shard's total is split evenly across
// the stations it hosted. The estimate is coarse — it cannot see
// heterogeneity *within* a shard — but it is exactly the accounting the
// kernel already keeps (PerShardFired), so a caller can feed an observed
// run into RecommendPlacement for the next construction without any
// extra instrumentation.
func PerShardLoads(byShard [][]string, perShardFired []uint64) []Load {
	if len(byShard) != len(perShardFired) {
		panic(fmt.Sprintf("sim: PerShardLoads got %d shards of stations but %d fired counts",
			len(byShard), len(perShardFired)))
	}
	var loads []Load
	for shard, ids := range byShard {
		if len(ids) == 0 {
			continue
		}
		cost := float64(perShardFired[shard]) / float64(len(ids))
		for _, id := range ids {
			loads = append(loads, Load{ID: id, Cost: cost})
		}
	}
	return loads
}

// SetPlacement installs an explicit station→shard plan consulted by
// ShardFor before the identity hash; identities absent from the plan
// keep their hashed shard. Placement is construction-time only — a plan
// installed after events have fired would split a component's state
// across shards — so installing one mid-run panics. Every target shard
// must exist.
func (ss *ShardedSimulator) SetPlacement(plan map[string]int) {
	if ss.inWindow || ss.EventsFired() > 0 {
		panic("sim: SetPlacement after the run started; placement is construction-time only")
	}
	for id, shard := range plan {
		if shard < 0 || shard >= len(ss.shards) {
			panic(fmt.Sprintf("sim: placement maps %q to shard %d, have %d shards", id, shard, len(ss.shards)))
		}
	}
	ss.placement = plan
}
